package snap1_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	snap1 "snap1"
)

func smallKB(t *testing.T) (*snap1.KB, snap1.NodeID, snap1.RelType) {
	t.Helper()
	kb := snap1.NewKB()
	class := kb.ColorFor("class")
	rel := kb.Relation("is-a")
	animal := kb.MustAddNode("animal", class)
	dog := kb.MustAddNode("dog", class)
	kb.MustAddLink(dog, rel, 1, animal)
	return kb, dog, rel
}

// TestErrKBNotLoaded asserts Run before LoadKB returns the sentinel.
func TestErrKBNotLoaded(t *testing.T) {
	m, err := snap1.New(snap1.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := snap1.NewProgram()
	p.CollectNode(1)
	if _, err := m.Run(p); !errors.Is(err, snap1.ErrKBNotLoaded) {
		t.Fatalf("Run = %v, want ErrKBNotLoaded", err)
	}
	if _, err := m.RunContext(context.Background(), p); !errors.Is(err, snap1.ErrKBNotLoaded) {
		t.Fatalf("RunContext = %v, want ErrKBNotLoaded", err)
	}
}

// TestErrNodeCapacity asserts LoadKB surfaces the capacity sentinel when
// the array is too small for the network.
func TestErrNodeCapacity(t *testing.T) {
	kb := snap1.NewKB()
	class := kb.ColorFor("class")
	for i := 0; i < 64; i++ {
		kb.MustAddNode("n"+strings.Repeat("x", i+1), class)
	}
	m, err := snap1.New(snap1.WithClusters(2), snap1.WithNodesPerCluster(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); !errors.Is(err, snap1.ErrNodeCapacity) {
		t.Fatalf("LoadKB = %v, want ErrNodeCapacity", err)
	}
}

// TestErrBadProgram asserts both validation and assembly failures wrap
// the bad-program sentinel.
func TestErrBadProgram(t *testing.T) {
	kb, dog, _ := smallKB(t)
	m, err := snap1.New(snap1.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}

	p := snap1.NewProgram()
	if err := p.Add(snap1.Instruction{Op: snap1.Opcode(250)}); !errors.Is(err, snap1.ErrBadProgram) {
		t.Fatalf("Add bad opcode = %v, want ErrBadProgram", err)
	}

	bad := snap1.NewProgram()
	bad.SearchNode(dog, 1, 0)
	bad.Instrs[0].M1 = 200 // corrupt after the builder's validation
	if _, err := m.Run(bad); !errors.Is(err, snap1.ErrBadProgram) {
		t.Fatalf("Run invalid program = %v, want ErrBadProgram", err)
	}
}

// TestErrBadProgramFromAssembler asserts assembly errors wrap the
// sentinel too.
func TestErrBadProgramFromAssembler(t *testing.T) {
	kb, _, _ := smallKB(t)
	asm := snap1.NewAssembler(kb)
	if _, err := asm.Assemble(strings.NewReader("bogus-op node=dog")); !errors.Is(err, snap1.ErrBadProgram) {
		t.Fatalf("Assemble = %v, want ErrBadProgram", err)
	}
}

// TestFunctionalOptions exercises the options constructor and its
// equivalence with the struct form.
func TestFunctionalOptions(t *testing.T) {
	m, err := snap1.New(
		snap1.WithClusters(8),
		snap1.WithMarkerUnits(2, 4),
		snap1.WithPartition("round-robin"),
		snap1.WithDeterministic(true),
		snap1.WithCapacityFor(10000),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Clusters != 8 || cfg.MUsPerCluster != 2 || cfg.ExtraMUClusters != 4 {
		t.Errorf("options not applied: %+v", cfg)
	}
	if !cfg.Deterministic {
		t.Error("WithDeterministic not applied")
	}
	if cfg.NodesPerCluster != 1250 {
		t.Errorf("WithCapacityFor: NodesPerCluster = %d, want 1250", cfg.NodesPerCluster)
	}

	// The struct form still works, including as a base for refinement.
	m2, err := snap1.New(snap1.PaperConfig(), snap1.WithDeterministic(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Config(); got.Clusters != 16 || !got.Deterministic {
		t.Errorf("struct+option composition broken: %+v", got)
	}

	// Unknown partition names surface at construction.
	if _, err := snap1.New(snap1.WithPartition("nonesuch")); err == nil {
		t.Error("unknown partition name silently accepted")
	}
}

// TestEngineFacade drives a query through the facade's engine surface.
func TestEngineFacade(t *testing.T) {
	kb, dog, rel := smallKB(t)
	eng, err := snap1.NewEngine(kb, snap1.WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	p := snap1.NewProgram()
	p.SearchNode(dog, 1, 0)
	p.Propagate(1, 2, snap1.PathRule(rel), snap1.FuncAdd)
	p.CollectNode(2)
	res, err := eng.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Names(0); len(got) != 1 || got[0] != "animal" {
		t.Errorf("engine result %v, want [animal]", got)
	}
	if st := eng.Stats(); st.Batches == 0 || st.Completed != 1 {
		t.Errorf("engine stats %+v, want 1 completed in ≥1 batch", st)
	}
}
