// discourse runs DMSNAP-style multi-sentence understanding: each parsed
// event's role fillers persist as discourse entities, and pronouns in
// later sentences resolve against them by upward marker propagation with
// agreement checking.
//
// Usage:
//
//	discourse [-nodes 3000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
)

func main() {
	nodes := flag.Int("nodes", 3000, "knowledge-base size in nodes")
	flag.Parse()

	g, err := kbgen.Generate(kbgen.Params{Nodes: *nodes, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	g.KB.Preprocess()
	m, err := machine.NewFromOptions(machine.PaperConfig(),
		machine.WithDeterministic(true),
		machine.WithCapacityFor(g.KB.NumNodes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		log.Fatal(err)
	}
	d := nlu.NewDiscourse(nlu.NewParser(m, g))

	story := []kbgen.Sentence{
		{ID: "T1", Text: "Guerrillas bombed the embassy.",
			Words: []string{"guerrillas", "bombed", "the", "embassy"}},
		{ID: "T2", Text: "They attacked the mayor.",
			Words: []string{"they", "attacked", "the", "mayor"}},
		{ID: "T3", Text: "Yesterday they kidnapped the mayor.",
			Words: []string{"yesterday", "they", "kidnapped", "the", "mayor"}},
	}
	for _, s := range story {
		res, roles, err := d.Parse(s)
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		fmt.Printf("%s %q\n", s.ID, s.Text)
		if res.Winner == "" {
			fmt.Println("  (no parse)")
			continue
		}
		var parts []string
		for _, r := range roles {
			parts = append(parts, fmt.Sprintf("slot%d=%s", r.Slot, r.Word))
		}
		fmt.Printf("  meaning: %s  [%s]\n", res.Winner, strings.Join(parts, " "))
		fmt.Printf("  discourse entities: %v\n", d.Entities())
		fmt.Printf("  parse %v + reference resolution so far %v\n\n", res.Total(), d.ResolveTime)
	}
}
