// inheritance runs the Fig. 15 experiment interactively: root-to-leaf
// property inheritance over growing knowledge bases on SNAP-1's MIMD
// selective propagation versus the CM-2-style SIMD step-loop model.
//
// Usage:
//
//	inheritance [-max 25600]
package main

import (
	"flag"
	"fmt"
	"log"

	"snap1/internal/baseline"
	"snap1/internal/inherit"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

func main() {
	max := flag.Int("max", 25600, "largest knowledge base in the sweep")
	flag.Parse()

	cm2 := baseline.DefaultCM2()
	fmt.Printf("%-10s %-8s %-6s %-12s %-12s %s\n",
		"KB nodes", "reached", "depth", "SNAP-1", "CM-2 model", "advantage")
	for n := 400; n <= *max; n *= 2 {
		g, err := kbgen.Generate(kbgen.Params{Nodes: n, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		g.KB.Preprocess()
		m, err := machine.NewFromOptions(machine.PaperConfig(),
			machine.WithDeterministic(true),
			machine.WithCapacityFor(g.KB.NumNodes()))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadKB(g.KB); err != nil {
			log.Fatal(err)
		}

		snap, err := inherit.Inheritance(m, g)
		if err != nil {
			log.Fatal(err)
		}
		cm, err := cm2.Inherit(g.KB, g.HierRoot, g.Rel.Subsumes)
		if err != nil {
			log.Fatal(err)
		}
		if snap.Reached != cm.Reached {
			log.Fatalf("functional divergence: SNAP reached %d, CM-2 %d", snap.Reached, cm.Reached)
		}
		fmt.Printf("%-10d %-8d %-6d %-12v %-12v %.1fx\n",
			n, snap.Reached, cm.Steps, snap.Time, cm.Time,
			float64(cm.Time)/float64(snap.Time))
	}
	fmt.Println("\nSNAP-1's MIMD marker units propagate selectively under local control;")
	fmt.Println("the SIMD model pays a controller round trip on every step of the")
	fmt.Println("critical path, so SNAP-1 wins here — but its per-node slope is steeper,")
	fmt.Println("and the curves cross beyond the prototype's 32K-node capacity (Fig. 15).")

	exceptionsDemo()
}

// exceptionsDemo shows inheritance with exceptions (block/restore cancel
// markers) on the canonical penguin lattice.
func exceptionsDemo() {
	kb := semnet.NewKB()
	col := kb.ColorFor("class")
	down := kb.Relation("subsumes")
	names := []struct{ name, parent string }{
		{"animal", ""}, {"bird", "animal"}, {"sparrow", "bird"},
		{"penguin", "bird"}, {"rockhopper", "penguin"}, {"magic-penguin", "penguin"},
	}
	ids := map[string]semnet.NodeID{}
	for _, n := range names {
		ids[n.name] = kb.MustAddNode(n.name, col)
		if n.parent != "" {
			kb.MustAddLink(ids[n.parent], down, 1, ids[n.name])
		}
	}
	m, err := machine.NewFromOptions(machine.PaperConfig(), machine.WithDeterministic(true))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		log.Fatal(err)
	}
	g := &kbgen.Generated{KB: kb}
	g.Rel.Subsumes = down

	fmt.Println("\nInheritance with exceptions: \"birds fly\", cancelled at penguin,")
	fmt.Println("restored at magic-penguin (cancel-marker propagation):")
	res, err := inherit.InheritWithExceptions(m, g, inherit.PropertyQuery{
		Source: ids["bird"],
		Exceptions: []inherit.Exception{
			{At: ids["penguin"]},
			{At: ids["magic-penguin"], Restore: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("  flies:")
	for _, it := range res.Collected {
		fmt.Printf(" %s", kb.Name(kb.Canonical(it.Node)))
	}
	fmt.Printf("   (%v simulated)\n", res.Time)
}
