// classification runs concept classification by constraint intersection:
// each query property spreads down the concept hierarchy under its own
// marker (β-overlapped by the PU), and a global AND retrieves the
// concepts subsumed by all of them — one of the paper's basic inferencing
// operations.
//
// Usage:
//
//	classification [-nodes 4000]
package main

import (
	"flag"
	"fmt"
	"log"

	"snap1/internal/inherit"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

func main() {
	nodes := flag.Int("nodes", 4000, "knowledge-base size in nodes")
	flag.Parse()

	g, err := kbgen.Generate(kbgen.Params{Nodes: *nodes, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	g.KB.Preprocess()
	m, err := machine.NewFromOptions(machine.PaperConfig(),
		machine.WithDeterministic(true),
		machine.WithCapacityFor(g.KB.NumNodes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		log.Fatal(err)
	}

	// Classify against the hand-built ontology: which concepts are both
	// physical things and animate? Which are animate groups? Which
	// buildings exist?
	queries := [][]string{
		{"physical-thing", "animate"},
		{"animate", "group"},
		{"inanimate", "building"},
		{"abstract", "place"},
	}
	for _, q := range queries {
		props := make([]semnet.NodeID, len(q))
		for i, name := range q {
			id, ok := g.KB.Lookup(name)
			if !ok {
				log.Fatalf("property %q not in knowledge base", name)
			}
			props[i] = id
		}
		res, err := inherit.Classification(m, g, props)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, it := range res.Collected {
			names = append(names, g.KB.Name(g.KB.Canonical(it.Node)))
		}
		fmt.Printf("concepts under %v (%d found, %v simulated):\n", q, res.Reached, res.Time)
		for i, n := range names {
			if i == 12 {
				fmt.Printf("  … and %d more\n", len(names)-i)
				break
			}
			fmt.Printf("  %s\n", n)
		}
		fmt.Println()
	}
}
