// nlu_parse runs the paper's headline application: two-stage natural
// language understanding of newswire sentences over a synthetic
// "terrorism in Latin America" knowledge base — a serial phrasal parser
// on the controller followed by the marker-propagation memory-based
// parser on the array.
//
// Usage:
//
//	nlu_parse [-nodes 9000] [-clusters 16] [-profile]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
)

// indent prefixes every line for nested display.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func main() {
	nodes := flag.Int("nodes", 9000, "knowledge-base size in nodes")
	clusters := flag.Int("clusters", 16, "array cluster count")
	profile := flag.Bool("profile", false, "print the merged instruction profile")
	flag.Parse()

	g, err := kbgen.Generate(kbgen.Params{Nodes: *nodes, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	g.KB.Preprocess()
	st := g.Summarize()
	fmt.Printf("knowledge base: %d nodes, %d links (%d-word lexicon, %d concept sequences)\n",
		st.Nodes, st.Links, st.Words, st.Roots)

	m, err := machine.NewFromOptions(machine.PaperConfig(),
		machine.WithClusters(*clusters),
		machine.WithDeterministic(true),
		machine.WithCapacityFor(g.KB.NumNodes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		log.Fatal(err)
	}
	cfg := m.Config()
	fmt.Printf("machine: %d clusters, %d PEs (%d marker units)\n\n",
		cfg.Clusters, cfg.PEs(), cfg.MarkerUnits())

	parser := nlu.NewParser(m, g)
	for _, s := range g.Domain.Sentences {
		res, err := parser.Parse(s)
		if err != nil {
			log.Fatalf("%s: %v", s.ID, err)
		}
		fmt.Printf("%s %q\n", s.ID, s.Text)
		fmt.Printf("  phrases:")
		for _, ph := range res.Phrases {
			fmt.Printf(" [%v %v]", ph.Type, ph.Tokens)
		}
		fmt.Println()
		fmt.Printf("  meaning: %s (score %.0f)", res.Winner, res.Score)
		if len(res.Cases) > 0 {
			fmt.Printf(" + cases %v", res.Cases)
		}
		fmt.Println()
		fmt.Printf("  P.P. time %v + M.B. time %v = %v (%d SNAP instructions)\n",
			res.PPTime, res.MBTime, res.Total(), res.Instructions)
		if tpl, err := parser.ExtractTemplate(res); err == nil {
			fmt.Printf("  extracted template:\n%s", indent(tpl.String()))
		}
		if *profile {
			fmt.Print(res.Profile)
		}
		fmt.Println()
	}
}
