// Quickstart: build a six-concept semantic network, run one
// marker-propagation program on a simulated SNAP-1 array, and read the
// result back — the complete API surface in ~60 lines.
package main

import (
	"fmt"
	"log"

	snap1 "snap1"
)

func main() {
	// 1. Build the knowledge base on the host.
	kb := snap1.NewKB()
	class := kb.ColorFor("class")
	isa := kb.Relation("is-a")

	thing := kb.MustAddNode("thing", class)
	animal := kb.MustAddNode("animal", class)
	mammal := kb.MustAddNode("mammal", class)
	dog := kb.MustAddNode("dog", class)
	cat := kb.MustAddNode("cat", class)
	rock := kb.MustAddNode("rock", class)

	kb.MustAddLink(animal, isa, 1, thing)
	kb.MustAddLink(mammal, isa, 1, animal)
	kb.MustAddLink(dog, isa, 1, mammal)
	kb.MustAddLink(cat, isa, 1, mammal)
	kb.MustAddLink(rock, isa, 1, thing)

	// 2. Construct the machine (the paper's 16-cluster, 72-PE
	// evaluation configuration) and download the network into the array.
	// Deterministic mode gives exactly reproducible virtual times.
	m, err := snap1.New(snap1.PaperConfig(), snap1.WithDeterministic(true))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		log.Fatal(err)
	}

	// 3. Write a SNAP program: activate "dog", spread a marker up the
	// is-a chain accumulating link weights, and collect the result.
	const mSrc, mUp = snap1.MarkerID(1), snap1.MarkerID(2)
	p := snap1.NewProgram()
	p.SearchNode(dog, mSrc, 0)
	p.Propagate(mSrc, mUp, snap1.PathRule(isa), snap1.FuncAdd)
	p.CollectNode(mUp)

	// 4. Run it and inspect the collection.
	res, err := m.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dog is-a: %v\n", res.Names(0))
	for _, item := range res.Collected(0) {
		fmt.Printf("  %-8s distance %.0f (origin %s)\n",
			kb.Name(item.Node), item.Value, kb.Name(item.Origin))
	}
	fmt.Printf("simulated execution time: %v on %d PEs\n", res.Time, m.Config().PEs())
	fmt.Printf("instruction profile:\n%v", res.Profile)
}
