// speech runs the PASS-style speech understanding workload: noisy word
// lattices (per time slot, several acoustically scored hypotheses) are
// rescored by marker propagation over the linguistic knowledge base.
// Competing hypotheses spread their constraints under independent markers
// — the β-parallelism the paper measured at 2.8-6 for the PASS program —
// and the best-completing concept sequence picks each slot's word,
// overturning acoustics when semantics demand it.
//
// Usage:
//
//	speech [-nodes 4000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/speech"
)

func main() {
	nodes := flag.Int("nodes", 4000, "knowledge-base size in nodes")
	seed := flag.Int64("seed", 7, "lattice corruption seed")
	flag.Parse()

	g, err := kbgen.Generate(kbgen.Params{Nodes: *nodes, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	g.KB.Preprocess()
	m, err := machine.NewFromOptions(machine.PaperConfig(),
		machine.WithDeterministic(true),
		machine.WithCapacityFor(g.KB.NumNodes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		log.Fatal(err)
	}
	dec := speech.NewDecoder(m, g)

	truths := [][]string{
		{"guerrillas", "bombed", "embassy"},
		{"police", "killed", "terrorists"},
		{"terrorists", "attacked", "mayor"},
	}
	for _, truth := range truths {
		lat, err := speech.Confuse(g, truth, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("truth: %s\n", strings.Join(truth, " "))
		for i, slot := range lat {
			fmt.Printf("  slot %d:", i)
			for _, alt := range slot {
				fmt.Printf("  %s(%.2f)", alt.Word, alt.Acoustic)
			}
			fmt.Println()
		}
		res, err := dec.Decode(lat)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for i := range truth {
			if res.Transcript[i] == truth[i] {
				correct++
			}
		}
		fmt.Printf("  decoded: %s  (meaning %s, score %.2f)\n",
			strings.Join(res.Transcript, " "), res.Winner, res.Score)
		fmt.Printf("  %d/%d slots correct, %v simulated, %d instructions, mean β %.1f\n\n",
			correct, len(truth), res.Time, res.Instructions, res.MeanBeta)
	}
}
