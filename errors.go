package snap1

import (
	"snap1/internal/engine"
	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

// Typed sentinel errors of the public API. Branch with errors.Is:
//
//	if errors.Is(err, snap1.ErrKBNotLoaded) { ... }
var (
	// ErrKBNotLoaded is returned by Run/RunContext/Clone before a
	// knowledge base has been loaded with LoadKB.
	ErrKBNotLoaded = machine.ErrNoKB

	// ErrNodeCapacity is returned when a knowledge base or a cluster's
	// node table exceeds its configured capacity (LoadKB, KB building).
	ErrNodeCapacity = semnet.ErrCapacity

	// ErrBadProgram is returned for any rejected program: out-of-range
	// operands, an unknown rule token, assembly text that does not
	// parse, or (from an Engine) a topology-mutating query.
	ErrBadProgram = isa.ErrBadProgram

	// ErrEngineClosed is returned by Engine.Submit after Engine.Close.
	ErrEngineClosed = engine.ErrClosed

	// ErrEngineOverloaded is returned by Engine.Submit when admission
	// control sheds the query: the submit queue is full or the in-flight
	// ceiling is reached. Retry after backoff.
	ErrEngineOverloaded = engine.ErrOverloaded

	// ErrFaultInjected marks a run poisoned by injected ICN corruption
	// under an active fault plan. The failure is transient by
	// construction — a clean re-run returns the bit-identical result —
	// so the engine retries it automatically and HTTP clients see
	// retryable=true.
	ErrFaultInjected = fault.ErrInjected

	// ErrWritesDisabled is returned by Engine.SubmitWrite when the engine
	// was built without WithWrites(true).
	ErrWritesDisabled = engine.ErrWritesDisabled

	// ErrWriteConflict marks a write refused by current topology state
	// (relation slots full, unknown node); retrying verbatim cannot
	// succeed until the topology changes.
	ErrWriteConflict = engine.ErrWriteConflict

	// ErrWriteFailed marks a write whose execution failed after admission
	// for any other reason; a committed prefix of its mutations may have
	// published.
	ErrWriteFailed = engine.ErrWriteFailed
)
