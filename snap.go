// Package snap1 is a software reconstruction of SNAP-1, the Semantic
// Network Array Processor prototype (DeMara & Moldovan, 1991): a parallel
// architecture for knowledge representation and reasoning with the
// marker-propagation paradigm.
//
// The package is a facade over the internal subsystems:
//
//   - build a knowledge base with NewKB (internal/semnet),
//   - write a marker-propagation program with NewProgram (internal/isa),
//   - construct a machine with New and functional options — or a whole
//     Config, which is itself an Option (internal/machine),
//   - LoadKB, Run or RunContext, and inspect the Result and its
//     instrumentation Profile,
//   - or serve many concurrent queries from a replica pool with
//     NewEngine and Engine.Submit (internal/engine).
//
// A minimal session:
//
//	kb := snap1.NewKB()
//	animal := kb.MustAddNode("animal", kb.ColorFor("class"))
//	dog := kb.MustAddNode("dog", kb.ColorFor("class"))
//	kb.MustAddLink(dog, kb.Relation("is-a"), 1, animal)
//
//	m, _ := snap1.New(snap1.WithClusters(16), snap1.WithPartition("semantic"))
//	_ = m.LoadKB(kb)
//
//	p := snap1.NewProgram()
//	p.SearchNode(dog, 1, 0)
//	p.Propagate(1, 2, snap1.PathRule(kb.Relation("is-a")), snap1.FuncAdd)
//	p.CollectNode(2)
//	res, _ := m.Run(p)
//	fmt.Println(res.Names(0)) // [animal]
//
// A concurrent serving session over the same knowledge base:
//
//	eng, _ := snap1.NewEngine(kb, snap1.WithReplicas(8))
//	defer eng.Close()
//	res, _ = eng.Submit(ctx, p)
package snap1

import (
	"snap1/internal/engine"
	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Knowledge-base types.
type (
	// KB is the logical semantic network built on the host.
	KB = semnet.KB
	// NodeID identifies a semantic network node.
	NodeID = semnet.NodeID
	// Color is a node's concept-class tag (256 available).
	Color = semnet.Color
	// RelType is a relation (link) type (64K available).
	RelType = semnet.RelType
	// MarkerID names one of the 128 marker registers per node.
	MarkerID = semnet.MarkerID
	// FuncCode is the per-step marker arithmetic/logic operation.
	FuncCode = semnet.FuncCode
	// Link is one outgoing relation-table entry.
	Link = semnet.Link
)

// Machine types.
type (
	// Machine is a configured SNAP-1 array instance.
	Machine = machine.Machine
	// Config sizes a machine (clusters, marker units, capacities, costs).
	Config = machine.Config
	// Result is one program run's outcome.
	Result = machine.Result
	// Collection is one retrieval instruction's rows.
	Collection = machine.Collection
	// Item is one retrieved row.
	Item = machine.Item
)

// Program types.
type (
	// Program is a stream of SNAP instructions plus its rule table.
	Program = isa.Program
	// Instruction is a single SNAP instruction.
	Instruction = isa.Instruction
	// Opcode names one of the twenty SNAP instructions.
	Opcode = isa.Opcode
	// Condition is the NOT-MARKER comparison.
	Condition = isa.Condition
	// RuleSpec names a propagation rule to be compiled.
	RuleSpec = rules.Spec
	// Time is simulated virtual time.
	Time = timing.Time
)

// Engine types.
type (
	// Engine is a concurrent query-serving layer: a pool of machine
	// replicas sharing one knowledge base behind a batching submit
	// queue. Construct with NewEngine; serve with Engine.Submit /
	// Engine.SubmitSource; inspect with Engine.Stats.
	Engine = engine.Engine
	// EngineStats is a snapshot of an engine's serving counters.
	EngineStats = engine.Stats
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// RetryPolicy bounds re-execution of retryable query failures
	// (injected faults, per-attempt timeouts).
	RetryPolicy = engine.RetryPolicy
	// HealthPolicy governs replica quarantine and reintegration.
	HealthPolicy = engine.HealthPolicy
	// EngineHealth is the engine's per-replica quarantine report.
	EngineHealth = engine.HealthReport
	// FaultPlan is a declarative, seeded fault-injection schedule for
	// the simulated hardware (see internal/fault and docs/RESILIENCE.md).
	FaultPlan = fault.Plan
	// FaultRule is one site's injection schedule within a FaultPlan.
	FaultRule = fault.Rule
)

// NewKB returns an empty knowledge base.
func NewKB() *KB { return semnet.NewKB() }

// NewProgram returns an empty SNAP program.
func NewProgram() *Program { return isa.NewProgram() }

// Assembler parses textual SNAP assembly against a knowledge base.
type Assembler = isa.Assembler

// NewAssembler returns an assembler resolving names against kb.
func NewAssembler(kb *KB) *Assembler { return isa.NewAssembler(kb) }

// Option configures a machine under construction (see WithClusters,
// WithPartition, ...). A whole Config is itself an Option, so the
// original struct form New(PaperConfig()) keeps working.
type Option = machine.Option

// New constructs a machine from DefaultConfig refined by opts, applied
// in order:
//
//	m, err := snap1.New(snap1.WithClusters(16), snap1.WithPartition("semantic"))
//	m, err := snap1.New(snap1.PaperConfig())            // struct form
//	m, err := snap1.New(cfg, snap1.WithDeterministic(true))
func New(opts ...Option) (*Machine, error) { return machine.NewFromOptions(opts...) }

// NewEngine builds a concurrent query engine over kb: the knowledge base
// is preprocessed, partitioned, and downloaded once, then cloned to every
// pool replica. kb must not be mutated afterwards.
func NewEngine(kb *KB, opts ...EngineOption) (*Engine, error) {
	return engine.New(kb, opts...)
}

// DefaultConfig is the full 32-cluster, 144-PE prototype configuration.
func DefaultConfig() Config { return machine.DefaultConfig() }

// PaperConfig is the 16-cluster, 72-PE evaluation configuration.
func PaperConfig() Config { return machine.PaperConfig() }

// Machine construction options (see internal/machine for the full set).
var (
	// WithClusters sets the array size.
	WithClusters = machine.WithClusters
	// WithMarkerUnits sets per-cluster MU count and the extra-MU cluster count.
	WithMarkerUnits = machine.WithMarkerUnits
	// WithNodesPerCluster sets each cluster's node-table capacity.
	WithNodesPerCluster = machine.WithNodesPerCluster
	// WithCapacityFor grows capacity to fit a knowledge base of N nodes.
	WithCapacityFor = machine.WithCapacityFor
	// WithPartition selects node allocation by name: "sequential",
	// "round-robin", or "semantic".
	WithPartition = machine.WithPartition
	// WithDeterministic selects the lockstep measurement engine.
	WithDeterministic = machine.WithDeterministic
	// WithSeed sets the arbiter tie-break seed.
	WithSeed = machine.WithSeed
	// WithMaxDepth bounds propagation path length.
	WithMaxDepth = machine.WithMaxDepth
	// WithMonitor attaches a performance-collection board.
	WithMonitor = machine.WithMonitor
)

// Engine construction options.
var (
	// WithReplicas sets the engine's machine-pool size.
	WithReplicas = engine.WithReplicas
	// WithMaxBatch bounds queries dispatched per replica round.
	WithMaxBatch = engine.WithMaxBatch
	// WithFusion bounds queries coalesced into one fused machine run
	// (marker-plane query fusion); n <= 1 disables fusion.
	WithFusion = engine.WithFusion
	// WithOptLevel sets the engine's compile-tier optimizer level
	// (OptBasic or OptFull, the default); n <= 0 runs queries as written.
	WithOptLevel = engine.WithOptLevel
	// WithWrites enables the online write path: Engine.SubmitWrite
	// commits topology-mutating programs on a serialized writer and
	// publishes epoch-versioned KB snapshots; serving replicas catch up
	// by incremental delta replay at their next batch boundary.
	WithWrites = engine.WithWrites
	// WithQueueCap sets the engine's submit-queue capacity.
	WithQueueCap = engine.WithQueueCap
	// WithCacheCap bounds the engine's compile cache.
	WithCacheCap = engine.WithCacheCap
	// WithResultCache bounds the engine's query result cache; n <= 0
	// disables result caching and singleflight deduplication.
	WithResultCache = engine.WithResultCache
	// WithMaxInFlight caps admitted-but-unfinished queries; beyond it
	// submissions fail fast with ErrEngineOverloaded.
	WithMaxInFlight = engine.WithMaxInFlight
	// WithMachineOptions refines the engine's replica configuration.
	WithMachineOptions = engine.WithMachineOptions
	// WithEngineMonitor attaches a performance-collection board to the engine.
	WithEngineMonitor = engine.WithMonitor
	// WithQueryTimeout bounds each execution attempt of a query.
	WithQueryTimeout = engine.WithQueryTimeout
	// WithRetryPolicy bounds automatic re-execution of retryable
	// failures (injected faults, per-attempt timeouts).
	WithRetryPolicy = engine.WithRetryPolicy
	// WithHealthPolicy tunes replica quarantine and reintegration.
	WithHealthPolicy = engine.WithHealthPolicy
	// WithFaultPlan arms deterministic, seeded fault injection in every
	// pool replica's simulated hardware.
	WithFaultPlan = engine.WithFaultPlan
	// LoadFaultPlan reads and validates a JSON fault plan from a file.
	LoadFaultPlan = fault.Load
)

// Optimizer levels (engine WithOptLevel; library Optimize).
const (
	// OptNone runs programs as written.
	OptNone = isa.OptNone
	// OptBasic runs peephole folding and dead-plane elimination.
	OptBasic = isa.OptBasic
	// OptFull adds marker-plane renaming and overlap list scheduling.
	OptFull = isa.OptFull
)

// OptConfig parameterizes Optimize.
type OptConfig = isa.OptConfig

// Optimized is an optimization product: the rewritten program plus the
// metadata mapping its results back onto the original instruction
// stream (see Optimized.OrigIndex and Result collections' Instr).
type Optimized = isa.Optimized

// Optimize rewrites a program under the compile-tier optimizer
// (peephole folding, dead-plane elimination, marker-plane renaming,
// overlap scheduling). Collections are bit-identical to the original
// program's; set OptConfig.PreserveMarkers when final marker state must
// be preserved too. Ineligible programs pass through unchanged.
func Optimize(p *Program, cfg OptConfig) *Optimized { return isa.Optimize(p, cfg) }

// Marker function codes.
const (
	FuncNop = semnet.FuncNop
	FuncAdd = semnet.FuncAdd
	FuncMin = semnet.FuncMin
	FuncMax = semnet.FuncMax
	FuncMul = semnet.FuncMul
	FuncDec = semnet.FuncDec
)

// NOT-MARKER conditions.
const (
	CondNone = isa.CondNone
	CondLT   = isa.CondLT
	CondLE   = isa.CondLE
	CondGT   = isa.CondGT
	CondGE   = isa.CondGE
	CondEQ   = isa.CondEQ
	CondNE   = isa.CondNE
)

// Binary returns the i'th binary (set-membership) marker.
func Binary(i int) MarkerID { return semnet.Binary(i) }

// StepRule follows a single link of type r1.
func StepRule(r1 RelType) RuleSpec { return rules.Step(r1) }

// PathRule follows chains of r1 links.
func PathRule(r1 RelType) RuleSpec { return rules.Path(r1) }

// SpreadRule follows r1 chains until an r2 link is met, then r2 chains.
func SpreadRule(r1, r2 RelType) RuleSpec { return rules.Spread(r1, r2) }

// SeqRule follows exactly one r1 link then one r2 link.
func SeqRule(r1, r2 RelType) RuleSpec { return rules.Seq(r1, r2) }

// CombRule follows links of either type freely.
func CombRule(r1, r2 RelType) RuleSpec { return rules.Comb(r1, r2) }
