package snap1_test

import (
	"testing"

	snap1 "snap1"
)

// TestQuickstart exercises the documented public-API session end to end.
func TestQuickstart(t *testing.T) {
	kb := snap1.NewKB()
	class := kb.ColorFor("class")
	isa := kb.Relation("is-a")
	animal := kb.MustAddNode("animal", class)
	mammal := kb.MustAddNode("mammal", class)
	dog := kb.MustAddNode("dog", class)
	kb.MustAddLink(dog, isa, 1, mammal)
	kb.MustAddLink(mammal, isa, 1, animal)

	cfg := snap1.PaperConfig()
	cfg.Deterministic = true
	m, err := snap1.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}

	p := snap1.NewProgram()
	p.SearchNode(dog, 1, 0)
	p.Propagate(1, 2, snap1.PathRule(isa), snap1.FuncAdd)
	p.CollectNode(2)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Names(0)
	if len(names) != 2 || names[0] != "animal" || names[1] != "mammal" {
		t.Fatalf("collected %v, want [animal mammal]", names)
	}
	if res.Time <= 0 {
		t.Error("no simulated time")
	}
	if m.MarkerValue(animal, 2) != 2 {
		t.Errorf("animal inherited distance %v, want 2", m.MarkerValue(animal, 2))
	}
}

// TestConfigsExposed verifies the facade's configuration surface.
func TestConfigsExposed(t *testing.T) {
	full := snap1.DefaultConfig()
	if full.Clusters != 32 || full.PEs() != 144 || full.MarkerUnits() != 80 {
		t.Fatalf("prototype configuration drifted: %d clusters, %d PEs, %d MUs",
			full.Clusters, full.PEs(), full.MarkerUnits())
	}
	eval := snap1.PaperConfig()
	if eval.Clusters != 16 || eval.PEs() != 72 {
		t.Fatalf("evaluation configuration drifted: %d clusters, %d PEs",
			eval.Clusters, eval.PEs())
	}
}

// TestRuleConstructors touches every predefined rule shape through the
// facade.
func TestRuleConstructors(t *testing.T) {
	kb := snap1.NewKB()
	r1, r2 := kb.Relation("a"), kb.Relation("b")
	p := snap1.NewProgram()
	p.Propagate(0, 1, snap1.StepRule(r1), snap1.FuncNop)
	p.Propagate(2, 3, snap1.PathRule(r1), snap1.FuncNop)
	p.Propagate(4, 5, snap1.SpreadRule(r1, r2), snap1.FuncNop)
	p.Propagate(6, 7, snap1.SeqRule(r1, r2), snap1.FuncNop)
	p.Propagate(8, 9, snap1.CombRule(r1, r2), snap1.FuncNop)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rules.Len() != 5 {
		t.Fatalf("rule table has %d entries", p.Rules.Len())
	}
	if snap1.Binary(0) != 64 {
		t.Error("Binary(0) must be the first binary marker")
	}
}
