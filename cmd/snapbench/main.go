// Command snapbench runs the canonical propagation-phase host benchmarks
// (the same workloads as BenchmarkPropagatePhase and
// BenchmarkEngineThroughput in bench_test.go) and writes the results as
// machine-readable JSON. The checked-in BENCH_PROPAGATE.json at the repo
// root is regenerated with:
//
//	go run ./cmd/snapbench -o BENCH_PROPAGATE.json
//
// See docs/PERF.md for the measurement methodology and the history of
// what these numbers looked like before the host hot-path overhaul.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"snap1/internal/engine"
	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Result is one benchmark's outcome in the JSON report.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	TasksPerOp  float64 `json:"tasks_per_phase,omitempty"`
	NsPerTask   float64 `json:"ns_per_task,omitempty"`
}

// Report is the full BENCH_PROPAGATE.json document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workload   string   `json:"workload"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapbench: ")
	testing.Init() // registers test.* flags so benchtime is settable
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	benchtime := flag.Duration("benchtime", 0, "minimum run time per benchmark (0 = testing default of 1s)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
			log.Fatal(err)
		}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "alpha=256 depth-10 chains, PaperConfig (16 clusters), PATH/add propagation",
	}
	for _, eng := range []struct {
		name string
		det  bool
	}{{"propagate_phase/concurrent", false}, {"propagate_phase/lockstep", true}} {
		rep.Results = append(rep.Results, toResult(eng.name, testing.Benchmark(phaseBench(eng.det))))
	}
	rep.Results = append(rep.Results, toResult("engine_throughput", testing.Benchmark(throughputBench)))

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func toResult(name string, br testing.BenchmarkResult) Result {
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if v, ok := br.Extra["tasks/phase"]; ok {
		r.TasksPerOp = v
	}
	if v, ok := br.Extra["ns/task"]; ok {
		r.NsPerTask = v
	}
	return r
}

// phaseBench mirrors BenchmarkPropagatePhase: one overlap-window flush of
// α=256 depth-10 chains on the paper's 16-cluster array, machine reused
// across iterations so the steady state is measured.
func phaseBench(det bool) func(b *testing.B) {
	return func(b *testing.B) {
		w := kbgen.Chains(1, 256, 10, 1)
		w.KB.Preprocess()
		cfg := machine.PaperConfig()
		cfg.Deterministic = det
		m, err := machine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadKB(w.KB); err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		p := isa.NewProgram()
		p.SearchColor(w.Seeds[0], 0, 0)
		p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
		p.Barrier()

		var tasks int64
		run := func() {
			m.ClearMarkers()
			res, err := m.Run(p)
			if err != nil {
				b.Fatal(err)
			}
			tasks = res.Profile.PropSteps
		}
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
		b.StopTimer()
		if tasks > 0 {
			b.ReportMetric(float64(tasks), "tasks/phase")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tasks), "ns/task")
		}
	}
}

// throughputBench mirrors BenchmarkEngineThroughput: parallel submitters
// over a pooled replica set.
func throughputBench(b *testing.B) {
	w := kbgen.Chains(1, 128, 8, 1)
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	e, err := engine.New(w.KB, engine.WithReplicas(4), engine.WithMachineConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, 0)
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := e.Submit(context.Background(), p)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Collected(0)) == 0 {
				b.Error("empty collection")
				return
			}
		}
	})
}
