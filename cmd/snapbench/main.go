// Command snapbench runs the canonical propagation-phase host benchmarks
// (the same workloads as BenchmarkPropagatePhase and
// BenchmarkEngineThroughput in bench_test.go) and writes the results as
// machine-readable JSON. The checked-in BENCH_PROPAGATE.json at the repo
// root is regenerated with:
//
//	go run ./cmd/snapbench -o BENCH_PROPAGATE.json
//
// With -engine-o it additionally runs the sharded query-serving suite
// (the BenchmarkEngineSharded workloads: 1/4/16 replicas, hot / cold /
// mixed temperature) and writes BENCH_ENGINE.json:
//
//	go run ./cmd/snapbench -engine-o BENCH_ENGINE.json
//
// With -kernel-o it runs the single-store marker-kernel and CSR
// relation-arena micro-benchmarks (boolean sweeps, SET/CLEAR fills,
// sparse and dense frontier scans, the packed link-slab walk) and
// writes BENCH_KERNEL.json:
//
//	go run ./cmd/snapbench -kernel-o BENCH_KERNEL.json
//
// With -partition-o it scores every partitioning strategy (and the
// refined strategy with hop-aware placement) on the 6K-node MUC-4-style
// knowledge base — link cut ratio, weighted hop cost, partition time,
// and machine bring-up time — and writes BENCH_PARTITION.json:
//
//	go run ./cmd/snapbench -partition-o BENCH_PARTITION.json
//
// With -fusion-o it runs the query-fusion suite (SubmitBatch of K
// distinct queries per op at K = 1/2/4/8, cold and mixed temperature,
// fused vs fusion-disabled serving) and writes BENCH_FUSION.json:
//
//	go run ./cmd/snapbench -fusion-o BENCH_FUSION.json
//
// With -opt-o it runs the program-optimizer suite (the same cold query
// pool served with the compile-tier optimizer off and at full level)
// and writes BENCH_OPT.json:
//
//	go run ./cmd/snapbench -opt-o BENCH_OPT.json
//
// With -write-o it runs the online write-path suite on the 16K-node
// MUC-4-style knowledge base at the paper's 16-cluster, 16-replica
// configuration: per-replica incremental delta replay against a full
// LoadKB re-download for a <=1% topology mutation, and read latency
// under sustained write churn against quiet serving, and writes
// BENCH_WRITE.json:
//
//	go run ./cmd/snapbench -write-o BENCH_WRITE.json
//
// -fence-hot-allocs N makes the run fail if the steady-state hot
// serving path (16 replicas, result-cache hits) allocates more than N
// times per query — the CI regression fence for the serving layer.
// -fence-kernel-allocs N likewise fails the run if any store kernel
// allocates more than N times per op (the kernels are expected to stay
// at exactly zero). -fence-partition-cut F fails the run unless the
// refined strategy's cut ratio undercuts semantic's by at least the
// fraction F (CI uses 0.30). -fence-fusion-speedup F fails the run
// unless fused cold serving at batch >= 4 delivers at least F times the
// unfused cold throughput (CI uses 1.5). -fence-opt-speedup F fails the
// run unless optimized (O2) cold serving delivers at least F times the
// unoptimized (O0) cold throughput (CI uses 1.1). -fence-delta-speedup F
// fails the run unless per-replica delta replay of the <=1% mutation
// batch is at least F times faster than the full LoadKB re-download it
// replaces (CI uses 20); the write suite also fails unconditionally if
// any read errors under write churn.
//
// See docs/PERF.md for the measurement methodology and the history of
// what these numbers looked like before the host hot-path overhaul.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snap1/internal/engine"
	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Result is one benchmark's outcome in the JSON report.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	TasksPerOp    float64 `json:"tasks_per_phase,omitempty"`
	NsPerTask     float64 `json:"ns_per_task,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	VTimeMicros   float64 `json:"vtime_us,omitempty"`
	MeanOverlap   float64 `json:"mean_overlap,omitempty"`
}

// Report is the full BENCH_PROPAGATE.json document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workload   string   `json:"workload"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapbench: ")
	testing.Init() // registers test.* flags so benchtime is settable
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	engineOut := flag.String("engine-o", "", "also run the sharded engine suite and write its JSON report here")
	kernelOut := flag.String("kernel-o", "", "also run the store-kernel suite and write its JSON report here")
	partitionOut := flag.String("partition-o", "", "also score the partition strategies and write their JSON report here")
	fusionOut := flag.String("fusion-o", "", "also run the query-fusion suite and write its JSON report here")
	optOut := flag.String("opt-o", "", "also run the program-optimizer suite and write its JSON report here")
	writeOut := flag.String("write-o", "", "also run the online write-path suite and write its JSON report here")
	fence := flag.Int64("fence-hot-allocs", -1, "fail if the hot serving path at 16 replicas exceeds this allocs/query (-1 disables)")
	kernelFence := flag.Int64("fence-kernel-allocs", -1, "fail if any store kernel exceeds this allocs/op (-1 disables)")
	partitionFence := flag.Float64("fence-partition-cut", -1, "fail unless refined beats semantic's cut ratio by at least this fraction (-1 disables)")
	fusionFence := flag.Float64("fence-fusion-speedup", -1, "fail unless fused cold serving at batch >= 4 beats unfused cold throughput by at least this factor (-1 disables)")
	optFence := flag.Float64("fence-opt-speedup", -1, "fail unless optimized (O2) cold serving beats unoptimized (O0) cold throughput by at least this factor (-1 disables)")
	deltaFence := flag.Float64("fence-delta-speedup", -1, "fail unless per-replica delta replay beats the full LoadKB re-download by at least this factor (-1 disables)")
	benchtime := flag.Duration("benchtime", 0, "minimum run time per benchmark (0 = testing default of 1s)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the -test.benchtime flag.
		if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
			log.Fatal(err)
		}
	}

	// The propagate report keeps its historical default (stdout); it is
	// skipped only when the run asks solely for the engine, kernel, or
	// partition report.
	if *out != "" || (*engineOut == "" && *kernelOut == "" && *partitionOut == "" && *fusionOut == "" && *optOut == "" && *writeOut == "") {
		rep := Report{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workload:   "chains: alpha=256 depth-10, PaperConfig (16 clusters), PATH/add propagation; dense: 6K-node MUC-4-style KB, SET-MARKER frontier (every node a source); dense_refined: same KB under the refined partition + hop-aware placement",
		}
		for _, eng := range []struct {
			name string
			det  bool
		}{{"propagate_phase/concurrent", false}, {"propagate_phase/lockstep", true}} {
			suffix := eng.name[len("propagate_phase/"):]
			rep.Results = append(rep.Results, toResult(eng.name, testing.Benchmark(phaseBench(eng.det))))
			rep.Results = append(rep.Results, toResult("propagate_phase/dense/"+suffix, testing.Benchmark(densePhaseBench(eng.det))))
			rep.Results = append(rep.Results, toResult("propagate_phase/dense_refined/"+suffix,
				testing.Benchmark(densePhaseBench(eng.det,
					machine.WithPartitionFunc(partition.Refined), machine.WithPlacement(true)))))
		}
		rep.Results = append(rep.Results, toResult("engine_throughput", testing.Benchmark(throughputBench)))
		writeReport(rep, *out)
	}

	if *partitionOut != "" || *partitionFence >= 0 {
		runPartitionSuite(*partitionOut, *partitionFence)
	}

	if *fusionOut != "" || *fusionFence >= 0 {
		runFusionSuite(*fusionOut, *fusionFence)
	}

	if *optOut != "" || *optFence >= 0 {
		runOptSuite(*optOut, *optFence)
	}

	if *writeOut != "" || *deltaFence >= 0 {
		runWriteSuite(*writeOut, *deltaFence)
	}

	if *kernelOut != "" {
		rep := Report{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workload:   "single 1024-node cluster store: 64-bit marker kernels over the status slab, frontier scans sparse (1/97 set) and dense (all set), CSR relation-arena walk (4 links/node)",
		}
		var worst int64
		for _, k := range kernelBenches() {
			br := testing.Benchmark(k.fn)
			rep.Results = append(rep.Results, toResult("store_kernel/"+k.name, br))
			if a := br.AllocsPerOp(); a > worst {
				worst = a
			}
		}
		writeReport(rep, *kernelOut)
		if *kernelFence >= 0 && worst > *kernelFence {
			log.Fatalf("alloc fence: a store kernel allocates %d/op, fence is %d", worst, *kernelFence)
		}
	}

	if *engineOut != "" {
		rep := Report{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workload:   "alpha=128 depth-8 chains, PaperConfig (16 clusters), sharded dispatch; hot=result-cache hits, cold=256 distinct uncached queries, mixed=50% hot + 1024-query sweep over a 128-entry cache",
		}
		w := kbgen.Chains(1, 128, 8, 1)
		var hotAllocs int64 = -1
		for _, replicas := range []int{1, 4, 16} {
			for _, mix := range []string{"hot", "cold", "mixed"} {
				br := testing.Benchmark(engineShardedBench(w, replicas, mix))
				r := toResult(fmt.Sprintf("engine_sharded/r=%d/%s", replicas, mix), br)
				r.QueriesPerSec = float64(br.N) / br.T.Seconds()
				rep.Results = append(rep.Results, r)
				if replicas == 16 && mix == "hot" {
					hotAllocs = br.AllocsPerOp()
				}
			}
		}
		writeReport(rep, *engineOut)
		if *fence >= 0 && hotAllocs > *fence {
			log.Fatalf("alloc fence: hot serving path at 16 replicas allocates %d/query, fence is %d", hotAllocs, *fence)
		}
	}
}

func writeReport(rep Report, path string) {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if path == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func toResult(name string, br testing.BenchmarkResult) Result {
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if v, ok := br.Extra["tasks/phase"]; ok {
		r.TasksPerOp = v
	}
	if v, ok := br.Extra["ns/task"]; ok {
		r.NsPerTask = v
	}
	if v, ok := br.Extra["vtime_us"]; ok {
		r.VTimeMicros = v
	}
	return r
}

// phaseBench mirrors BenchmarkPropagatePhase: one overlap-window flush of
// α=256 depth-10 chains on the paper's 16-cluster array, machine reused
// across iterations so the steady state is measured.
func phaseBench(det bool) func(b *testing.B) {
	return func(b *testing.B) {
		w := kbgen.Chains(1, 256, 10, 1)
		w.KB.Preprocess()
		p := isa.NewProgram()
		p.SearchColor(w.Seeds[0], 0, 0)
		p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
		p.Barrier()
		phaseRun(b, det, w.KB, p)
	}
}

// densePhaseBench mirrors BenchmarkPropagatePhase/dense: a MUC-4-style
// generated knowledge base with SET-MARKER making every node a source,
// so the frontier scan is fully dense. Extra machine options select the
// partition/placement variant.
func densePhaseBench(det bool, opts ...machine.Option) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := kbgen.Generate(kbgen.Params{Nodes: 6000, Seed: 42, WithDomain: true})
		if err != nil {
			b.Fatal(err)
		}
		g.KB.Preprocess()
		p := isa.NewProgram()
		p.Set(0, 0)
		p.Propagate(0, 1, rules.Path(g.Rel.IsA), semnet.FuncAdd)
		p.Barrier()
		phaseRun(b, det, g.KB, p, opts...)
	}
}

func phaseRun(b *testing.B, det bool, kb *semnet.KB, p *isa.Program, opts ...machine.Option) {
	cfg := machine.PaperConfig()
	cfg.Deterministic = det
	cfg = machine.ApplyOptions(cfg, opts...)
	if need := (kb.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	var tasks int64
	run := func() {
		m.ClearMarkers()
		res, err := m.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		tasks = res.Profile.PropSteps
	}
	run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	if tasks > 0 {
		b.ReportMetric(float64(tasks), "tasks/phase")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tasks), "ns/task")
	}
}

// PartitionResult is one strategy's score in BENCH_PARTITION.json.
type PartitionResult struct {
	Strategy    string  `json:"strategy"`
	CutRatio    float64 `json:"cut_ratio"`
	HopCost     float64 `json:"hop_cost"`
	PartitionMs float64 `json:"partition_ms"`
	BringUpMs   float64 `json:"bringup_ms"`
}

// PartitionReport is the full BENCH_PARTITION.json document.
type PartitionReport struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Workload   string            `json:"workload"`
	Results    []PartitionResult `json:"results"`
}

// runPartitionSuite scores every strategy on the canonical 6K-node
// MUC-4-style knowledge base at the paper's 16-cluster configuration:
// link cut ratio, weighted hop cost (mean hops per link), partitioning
// wall time, and full machine bring-up (New + LoadKB) wall time. The
// "refined+place" row is the refined partition followed by the
// hop-aware placement stage — identical cut, lower hop cost.
func runPartitionSuite(path string, fenceFrac float64) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: 6000, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	kb := g.KB
	kb.Preprocess()
	cfg := machine.PaperConfig()
	if need := (kb.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}

	rep := PartitionReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf("6K-node MUC-4-style KB (%d nodes, %d links post-preprocess), %d clusters x %d capacity",
			kb.NumNodes(), kb.NumLinks(), cfg.Clusters, cfg.NodesPerCluster),
	}

	strategies := []struct {
		name  string
		fn    partition.Func
		place bool
	}{
		{"sequential", partition.Sequential, false},
		{"round-robin", partition.RoundRobin, false},
		{"semantic", partition.Semantic, false},
		{"refined", partition.Refined, false},
		{"refined+place", partition.Refined, true},
	}
	cuts := map[string]float64{}
	for _, s := range strategies {
		// Partition time: best of a few runs, so the score is the
		// strategy's cost rather than a scheduling hiccup.
		var a partition.Assignment
		partNs := int64(1 << 62)
		for i := 0; i < 5; i++ {
			start := time.Now()
			a, err = s.fn(kb, cfg.Clusters, cfg.NodesPerCluster)
			if err != nil {
				log.Fatal(err)
			}
			if s.place {
				a = partition.Place(kb, a, cfg.Clusters)
			}
			if d := time.Since(start).Nanoseconds(); d < partNs {
				partNs = d
			}
		}

		bringNs := int64(1 << 62)
		for i := 0; i < 3; i++ {
			mcfg := cfg
			mcfg.Partition = s.fn
			mcfg.Placement = s.place
			start := time.Now()
			m, err := machine.New(mcfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.LoadKB(kb); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start).Nanoseconds(); d < bringNs {
				bringNs = d
			}
			m.Close()
		}

		cut := partition.CutRatio(kb, a)
		cuts[s.name] = cut
		rep.Results = append(rep.Results, PartitionResult{
			Strategy:    s.name,
			CutRatio:    cut,
			HopCost:     partition.HopCost(kb, a, cfg.Clusters),
			PartitionMs: float64(partNs) / 1e6,
			BringUpMs:   float64(bringNs) / 1e6,
		})
	}

	if path != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if fenceFrac >= 0 {
		sem, ref := cuts["semantic"], cuts["refined"]
		if ref > sem*(1-fenceFrac) {
			log.Fatalf("partition fence: refined cut ratio %.4f does not beat semantic %.4f by %.0f%%",
				ref, sem, fenceFrac*100)
		}
	}
}

// runFusionSuite measures marker-plane query fusion end to end through
// the engine: SubmitBatch of K distinct queries per op on a
// single-replica engine, fused (default coalescing, Fusion=8) against
// fusion-disabled (WithFusion(1)) serving of the identical batches.
// Cold rows cycle 256 uncached queries with the result cache off;
// mixed rows interleave cache-hit members with cold members, so half
// the batch never reaches a machine. The fence compares fused cold
// throughput at batch 4 and 8 against the unfused cold batch-4
// baseline: fusion pays the array bring-up (clear, broadcast, topology
// sweep) once per batch instead of once per query, and the fence fails
// the run if that stops buying at least the given factor.
func runFusionSuite(path string, fence float64) {
	w := kbgen.Chains(1, 128, 8, 1)
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "alpha=128 depth-8 chains, PaperConfig (16 clusters), 1 replica, SubmitBatch of K distinct queries per op; cold = result cache off, mixed = every other member a warm cache hit; fused = default coalescing (Fusion=8), unfused = WithFusion(1) solo serving",
	}
	qps := map[string]float64{}
	for _, mix := range []string{"cold", "mixed"} {
		for _, k := range []int{1, 2, 4, 8} {
			for _, fused := range []bool{false, true} {
				mode := "unfused"
				if fused {
					mode = "fused"
				}
				name := fmt.Sprintf("query_fusion/%s/batch=%d/%s", mix, k, mode)
				br := testing.Benchmark(fusionBench(w, k, mix, fused))
				r := toResult(name, br)
				r.QueriesPerSec = float64(br.N*k) / br.T.Seconds()
				qps[name] = r.QueriesPerSec
				rep.Results = append(rep.Results, r)
			}
		}
	}
	writeReport(rep, path)
	if fence >= 0 {
		base := qps["query_fusion/cold/batch=4/unfused"]
		best := qps["query_fusion/cold/batch=4/fused"]
		if v := qps["query_fusion/cold/batch=8/fused"]; v > best {
			best = v
		}
		if best < base*fence {
			log.Fatalf("fusion fence: fused cold throughput %.0f q/s is only %.2fx the unfused %.0f q/s, fence is %.2fx",
				best, best/base, base, fence)
		}
	}
}

// fusionBench builds one query-fusion benchmark: per op, one
// SubmitBatch of k programs against a single-replica engine. Cold
// batches cycle a 256-program uncached pool; mixed batches alternate
// warm cache hits with cold members.
func fusionBench(w *kbgen.Workload, k int, mix string, fused bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := machine.PaperConfig()
		cfg.Deterministic = true
		opts := []engine.Option{engine.WithReplicas(1), engine.WithMachineConfig(cfg), engine.WithQueueCap(4096)}
		if !fused {
			opts = append(opts, engine.WithFusion(1))
		}
		hotSize := 0
		if mix == "mixed" {
			opts = append(opts, engine.WithResultCache(128))
			hotSize = 64
		} else {
			opts = append(opts, engine.WithResultCache(0))
		}
		e, err := engine.New(w.KB, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()

		const poolSize = 256
		pool := make([]*isa.Program, poolSize)
		for i := range pool {
			pool[i] = shardedProgram(w, i)
		}
		hot := make([]*isa.Program, hotSize)
		for i := range hot {
			hot[i] = shardedProgram(w, -2-i)
			if _, err := e.Submit(context.Background(), hot[i]); err != nil {
				b.Fatal(err)
			}
		}

		batch := make([]*isa.Program, k)
		next := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				if hotSize > 0 && j%2 == 1 {
					batch[j] = hot[(next+j)%hotSize]
				} else {
					batch[j] = pool[next%poolSize]
					next++
				}
			}
			results, errs := e.SubmitBatch(context.Background(), batch)
			for j := range errs {
				if errs[j] != nil {
					b.Fatal(errs[j])
				}
				if len(results[j].Collected(0)) == 0 {
					b.Fatal("empty collection")
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/query")
	}
}

// runOptSuite measures the compile-tier program optimizer end to end
// through the engine: one cold query pool served with optimization off
// (O0: queries run exactly as written) and at full level (O2: peephole
// folding, dead-plane elimination, marker-plane renaming, overlap
// scheduling). The pool's programs carry the redundancy a defensive
// query frontend emits — a SET/FUNC scratch initialization, a
// diagnostic propagation sweep nothing ever collects, and a
// snapshot/clear/re-sweep sequence that reuses its sweep plane — so the
// comparison spans every pass: dead code the machine would otherwise
// execute faithfully, and a false WAR/WAW dependence whose removal lets
// the scheduler pair the two live sweeps in one PU overlap window. Each
// row also reports the workload's mean virtual time (vtime_us) and the
// program's mean β-overlap degree (mean_overlap, O2 measured on the
// rewrite). The fence fails the run unless O2 cold throughput is at
// least the given factor times O0's and the mean overlap degree
// strictly increased.
func runOptSuite(path string, fence float64) {
	w := kbgen.Chains(1, 128, 8, 1)
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "alpha=128 depth-8 chains, PaperConfig (16 clusters), 1 replica, cold serving (result cache off) of 256 distinct queries; each query carries a SET/FUNC scratch pair, a dead diagnostic PATH sweep, and a snapshot/clear/re-sweep plane reuse; O0 = optimizer off, O2 = full pass pipeline",
	}
	sample := optProgram(w, 0)
	overlap := map[int]float64{
		0: meanOverlap(sample),
		2: meanOverlap(isa.Optimize(sample, isa.OptConfig{Level: isa.OptFull}).Program),
	}
	qps := map[int]float64{}
	for _, lvl := range []int{0, 2} {
		br := testing.Benchmark(optBench(w, lvl))
		r := toResult(fmt.Sprintf("opt_serving/cold/O%d", lvl), br)
		r.QueriesPerSec = float64(br.N) / br.T.Seconds()
		r.MeanOverlap = overlap[lvl]
		qps[lvl] = r.QueriesPerSec
		rep.Results = append(rep.Results, r)
	}
	writeReport(rep, path)
	if fence >= 0 {
		if qps[2] < qps[0]*fence {
			log.Fatalf("opt fence: O2 cold throughput %.0f q/s is only %.2fx the O0 %.0f q/s, fence is %.2fx",
				qps[2], qps[2]/qps[0], qps[0], fence)
		}
		if overlap[2] <= overlap[0] {
			log.Fatalf("opt fence: mean overlap degree did not increase (O0 %.3f, O2 %.3f)",
				overlap[0], overlap[2])
		}
	}
}

// meanOverlap reports the program's mean β-overlap degree: the average,
// over all instructions, of how many immediately preceding instructions
// each can share the PU's issue window with.
func meanOverlap(p *isa.Program) float64 {
	sum := 0
	for _, d := range isa.OverlapDegrees(p) {
		sum += d
	}
	return float64(sum) / float64(p.Len())
}

// optBench builds one optimizer-suite benchmark: sequential cold
// serving of a 256-query pool on a single replica at the given
// optimizer level.
func optBench(w *kbgen.Workload, lvl int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := machine.PaperConfig()
		cfg.Deterministic = true
		e, err := engine.New(w.KB,
			engine.WithReplicas(1), engine.WithMachineConfig(cfg),
			engine.WithQueueCap(4096), engine.WithResultCache(0),
			engine.WithOptLevel(lvl))
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()

		const poolSize = 256
		pool := make([]*isa.Program, poolSize)
		for i := range pool {
			pool[i] = optProgram(w, i)
		}
		// One pass over the pool up front: pool bring-up and the one-time
		// optimization of each program happen off the clock, so the
		// measured loop is pure cold serving.
		for _, p := range pool {
			if _, err := e.Submit(context.Background(), p); err != nil {
				b.Fatal(err)
			}
		}

		var vtime timing.Time
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Submit(context.Background(), pool[i%poolSize])
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Collected(0)) == 0 {
				b.Fatal("empty collection")
			}
			vtime += res.Time
		}
		b.StopTimer()
		b.ReportMetric(timing.Time(float64(vtime)/float64(b.N)).Microseconds(), "vtime_us")
	}
}

// optProgram builds one pool member for the optimizer suite: the
// canonical chain query wrapped in the redundancy a defensive frontend
// emits — a scratch plane initialized with a SET/FUNC pair, a
// diagnostic PATH sweep onto it that nothing ever collects, and a
// snapshot/clear/re-sweep sequence that reuses the sweep plane. The
// reuse is a false WAR/WAW dependence: once renaming moves the second
// sweep onto its own plane, the scheduler can pair it with the first in
// one PU overlap window. The variant value makes members hash
// distinctly at identical execution cost.
func optProgram(w *kbgen.Workload, variant int) *isa.Program {
	p := isa.NewProgram()
	p.Set(3, 0)
	p.Func(3, semnet.FuncAdd, 1)
	p.SearchColor(w.Seeds[0], 0, float32(variant))
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Propagate(0, 3, rules.Path(w.Rel), semnet.FuncAdd) // diagnostic sweep: dead
	p.Or(1, 1, 2, semnet.FuncAdd)                        // snapshot the first sweep
	p.ClearM(1)                                          // reuse the sweep plane
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd) // re-derivation sweep
	p.Barrier()
	p.CollectNode(2)
	p.CollectNode(1)
	return p
}

// WriteReport is the full BENCH_WRITE.json document: the online
// write-path suite's two measurements — per-replica incremental delta
// replay against the full LoadKB re-download it replaces, and read
// latency under sustained write churn against quiet serving.
type WriteReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workload   string `json:"workload"`

	// Delta replay vs full re-download, one serving replica.
	DeltaRecords int     `json:"delta_records"`  // mutation batch size (<=1% of nodes)
	DeltaApplyUs float64 `json:"delta_apply_us"` // replaying one batch in place
	FullReloadUs float64 `json:"full_reload_us"` // full LoadKB re-download
	DeltaSpeedup float64 `json:"delta_speedup"`

	// Read latency under write churn, 16-replica serving.
	ReadsPerPhase    int     `json:"reads_per_phase"`
	QuietP50Us       float64 `json:"quiet_p50_us"`
	QuietP99Us       float64 `json:"quiet_p99_us"`
	QuietReadsPerSec float64 `json:"quiet_reads_per_sec"`
	ChurnP50Us       float64 `json:"churn_p50_us"`
	ChurnP99Us       float64 `json:"churn_p99_us"`
	ChurnReadsPerSec float64 `json:"churn_reads_per_sec"`
	P99Ratio         float64 `json:"p99_ratio"`
	FailedReads      int     `json:"failed_reads"`
	Writes           uint64  `json:"writes"`
	WriteCommits     uint64  `json:"write_commits"`
	DeltasApplied    uint64  `json:"deltas_applied"`
	FullReloads      uint64  `json:"full_reloads"`
}

// runWriteSuite measures the online write path on the 16K-node
// MUC-4-style knowledge base at the paper's 16-cluster configuration.
//
// Part one is the tentpole economics: a <=1% topology mutation batch
// (one percent of the nodes each gaining or losing a link) is brought
// onto a loaded replica two ways — replaying the KB's delta records in
// place (what syncReplica does at a batch boundary) against a full
// LoadKB re-download (what every write used to cost every replica) —
// and the fence fails the run unless replay wins by the given factor.
//
// Part two serves 16 replicas with the result cache off and compares
// read latency quantiles over an identical read set, quiet versus under
// sustained SubmitWrite churn from background writers. Reads never
// block on writes by construction, so the suite fails unconditionally
// if any read errors under churn; the p50/p99 quantiles and the ratio
// land in the report for the record.
func runWriteSuite(path string, fence float64) {
	const nodes = 16000
	g, err := kbgen.Generate(kbgen.Params{Nodes: nodes, Seed: 42, WithDomain: true})
	if err != nil {
		log.Fatal(err)
	}
	kb := g.KB
	kb.EnableDeltaLog(0)
	kb.Preprocess()
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	if need := (kb.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	n := kb.NumNodes()
	batch := nodes / 100 // the <=1% mutation batch

	rep := WriteReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf("16K-node MUC-4-style KB (%d nodes post-preprocess), PaperConfig (%d clusters); delta = %d-link mutation batch replayed on one replica vs full LoadKB; churn = 16-replica serving, result cache off, reads measured quiet then under background SubmitWrite link toggles",
			n, cfg.Clusters, batch),
		DeltaRecords:  batch,
		ReadsPerPhase: 12000,
	}

	// --- Part 1: delta replay vs full re-download, one replica. ---
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		log.Fatal(err)
	}
	// Mutation sources need slot headroom: the array cannot split
	// subnodes at runtime, so a link added to a node whose 16 relation
	// slots are full is a conflict the write path refuses. The bench
	// targets what the write path would admit.
	var cand []semnet.NodeID
	for id := 0; id < n; id++ {
		nd, err := kb.Node(semnet.NodeID(id))
		if err != nil {
			log.Fatal(err)
		}
		if len(nd.Out) <= semnet.RelationSlots-2 {
			cand = append(cand, semnet.NodeID(id))
		}
	}
	if len(cand) < batch {
		log.Fatalf("write suite: only %d nodes with relation-slot headroom, need %d", len(cand), batch)
	}
	rel := kb.Relation("bench-write")
	pairAt := func(k, i int) (semnet.NodeID, semnet.NodeID) {
		return cand[(k*batch+i)%len(cand)], semnet.NodeID((k*batch + i*7 + 1) % n)
	}
	const rounds = 32 // even count: every added link is removed again
	var deltaNs int64
	for r := 0; r < rounds; r++ {
		from := m.KBGeneration()
		for i := 0; i < batch; i++ {
			a, b := pairAt(r/2, i)
			if r%2 == 0 {
				if err := kb.AddLink(a, rel, 1, b); err != nil {
					log.Fatal(err)
				}
			} else if !kb.RemoveLink(a, rel, b) {
				log.Fatalf("write suite: link %d->%d vanished before removal", a, b)
			}
		}
		to := kb.Generation()
		recs, ok := kb.DeltaRange(from, to)
		if !ok {
			log.Fatal("write suite: delta log truncated under one mutation batch")
		}
		start := time.Now()
		if err := m.ApplyDelta(recs, to); err != nil {
			log.Fatal(err)
		}
		deltaNs += time.Since(start).Nanoseconds()
	}
	m.Close()
	deltaPerOp := float64(deltaNs) / rounds

	// Full re-download: best of a few runs (the conservative comparison —
	// replay is scored on its mean, reload on its floor).
	m2, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reloadNs := int64(1 << 62)
	for i := 0; i < 4; i++ {
		start := time.Now()
		if err := m2.LoadKB(kb); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); i > 0 && d < reloadNs {
			reloadNs = d // first run warms; best of the rest
		}
	}
	m2.Close()

	rep.DeltaApplyUs = deltaPerOp / 1e3
	rep.FullReloadUs = float64(reloadNs) / 1e3
	rep.DeltaSpeedup = float64(reloadNs) / deltaPerOp

	// --- Part 2: read latency quiet vs under write churn, 16 replicas. ---
	e, err := engine.New(kb,
		engine.WithReplicas(16), engine.WithMachineConfig(cfg),
		engine.WithQueueCap(4096), engine.WithResultCache(0),
		engine.WithWrites(true))
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	readProg := func(variant int) *isa.Program {
		p := isa.NewProgram()
		p.SearchNode(g.Leaves[variant%len(g.Leaves)], 0, float32(variant))
		p.Propagate(0, 1, rules.Path(g.Rel.IsA), semnet.FuncAdd)
		p.Barrier()
		p.CollectNode(1)
		return p
	}
	// The collector stays off for both measured phases (and each starts
	// from a freshly collected heap): a GC cycle landing inside one
	// ~250ms phase but not the other would swamp the quantile it hits,
	// and the comparison targets write-path interference, not
	// GC-scheduling luck. Both phases get identical treatment, so the
	// ratio stays an honest churn-vs-quiet measure.
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)

	// Open-loop measurement: each reader paces its submissions well
	// under serving capacity, so a latency sample is the engine's
	// response to that read alone — if reads never block on writes, the
	// churn quantiles match the quiet ones. (A closed-loop reader pool
	// instead couples every sample to total machine load: any slowdown
	// stretches the phase, admits more churn, and compounds — a
	// feedback measurement of the host, not of write blocking.)
	const workers = 4
	const readPace = 250 * time.Microsecond
	measure := func() (lat []float64, persec float64, failed int) {
		runtime.GC()
		total := rep.ReadsPerPhase
		lat = make([]float64, total)
		var fail atomic.Int64
		var wg sync.WaitGroup
		per := total / workers
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					time.Sleep(readPace)
					p := readProg(w*per + i)
					t0 := time.Now()
					_, err := e.Submit(context.Background(), p)
					lat[w*per+i] = float64(time.Since(t0).Nanoseconds()) / 1e3
					if err != nil {
						fail.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		sort.Float64s(lat)
		return lat, float64(total) / time.Since(start).Seconds(), int(fail.Load())
	}

	// Warm the pool, then the quiet baseline.
	for i := 0; i < workers; i++ {
		if _, err := e.Submit(context.Background(), readProg(i)); err != nil {
			log.Fatal(err)
		}
	}
	quiet, quietQPS, quietFail := measure()

	// Background write churn: each writer toggles its own link pairs
	// through SubmitWrite, so every commit publishes a new epoch and
	// every serving replica pays a delta replay at its next boundary.
	// Writers are paced to a few hundred mutations per second — online
	// KB maintenance traffic, orders of magnitude rarer than queries.
	// An unthrottled tight loop instead measures CPU starvation, and a
	// commit every serving round splinters rounds into per-generation
	// fusion cohorts, measuring fusion loss rather than write blocking.
	const writePace = 20 * time.Millisecond
	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	var writeErrs atomic.Int64
	wrel := kb.Relation("churn-write")
	for w := 0; w < 2; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				case <-time.After(writePace):
				}
				pair := k / 2
				a := cand[(w*len(cand)/2+pair*3)%len(cand)]
				b := semnet.NodeID((w*nodes/2 + pair*11 + 5) % n)
				p := isa.NewProgram()
				if k%2 == 0 {
					p.Create(a, wrel, 1, b)
				} else {
					p.Delete(a, wrel, b)
				}
				if _, err := e.SubmitWrite(context.Background(), p); err != nil {
					writeErrs.Add(1)
				}
			}
		}(w)
	}
	// Let churn reach steady state off the clock: the first commits make
	// each replica pay its one-time copy-on-write table materialization
	// before the measured phase starts.
	for i := 0; i < 400; i++ {
		_, _ = e.Submit(context.Background(), readProg(i))
	}
	churn, churnQPS, churnFail := measure()
	close(stop)
	writerWg.Wait()
	st := e.Stats()

	pct := func(sorted []float64, p float64) float64 {
		return sorted[int(p*float64(len(sorted)-1))]
	}
	rep.QuietP50Us, rep.QuietP99Us = pct(quiet, 0.50), pct(quiet, 0.99)
	rep.ChurnP50Us, rep.ChurnP99Us = pct(churn, 0.50), pct(churn, 0.99)
	rep.QuietReadsPerSec, rep.ChurnReadsPerSec = quietQPS, churnQPS
	rep.P99Ratio = rep.ChurnP99Us / rep.QuietP99Us
	rep.FailedReads = quietFail + churnFail
	rep.Writes = st.Writes
	rep.WriteCommits = st.WriteCommits
	rep.DeltasApplied = st.DeltasApplied
	rep.FullReloads = st.FullReloads

	if path != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if rep.FailedReads > 0 {
		log.Fatalf("write suite: %d read(s) failed (%d quiet, %d under churn); reads must never fail under write churn",
			rep.FailedReads, quietFail, churnFail)
	}
	if n := writeErrs.Load(); n > 0 {
		log.Fatalf("write suite: %d background write(s) failed", n)
	}
	if fence >= 0 && rep.DeltaSpeedup < fence {
		log.Fatalf("delta fence: replaying the %d-record batch takes %.0fus vs %.0fus full reload — only %.1fx, fence is %.1fx",
			batch, rep.DeltaApplyUs, rep.FullReloadUs, rep.DeltaSpeedup, fence)
	}
}

// kernelBench is one entry of the store-kernel suite.
type kernelBench struct {
	name string
	fn   func(b *testing.B)
}

// kernelStore builds the canonical 1024-node store the kernel suite runs
// on: marker 0 set at every third node, marker 1 at every second, binary
// marker 0 dense (every node), binary marker 1 sparse (every 97th), and
// four relation links per node in the CSR arena.
func kernelStore(b *testing.B) *semnet.Store {
	b.Helper()
	const n = 1024
	s := semnet.NewStore(n)
	links := make([]semnet.Link, 4)
	for i := 0; i < n; i++ {
		if _, err := s.AddNode(semnet.NodeID(i), 0, semnet.FuncNop); err != nil {
			b.Fatal(err)
		}
		if i%3 == 0 {
			s.Set(i, 0)
		}
		if i%2 == 0 {
			s.Set(i, 1)
		}
		s.Set(i, semnet.Binary(0))
		if i%97 == 0 {
			s.Set(i, semnet.Binary(1))
		}
		for j := range links {
			links[j] = semnet.Link{Rel: semnet.RelType(j), Weight: 1, To: semnet.NodeID((i + j + 1) % n)}
		}
		if err := s.SetLinks(i, links); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// kernelBenches returns the store-kernel suite tracked in
// BENCH_KERNEL.json. Every kernel must stay allocation-free: the suite
// runs under -fence-kernel-allocs 0 in CI.
func kernelBenches() []kernelBench {
	count := 0
	return []kernelBench{
		{"and", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.And(0, 1, 2, semnet.FuncNop)
			}
		}},
		{"or", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Or(0, 1, 2, semnet.FuncNop)
			}
		}},
		{"set_all", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SetAll(3, 1)
			}
		}},
		{"clear_all", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ClearAll(3)
			}
		}},
		{"foreach_set/sparse", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ForEachSet(semnet.Binary(1), func(local int) { count += local })
			}
		}},
		{"foreach_set/dense", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ForEachSet(semnet.Binary(0), func(local int) { count += local })
			}
		}},
		{"count_set", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count += s.CountSet(0)
			}
		}},
		{"csr_scan", func(b *testing.B) {
			s := kernelStore(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for local := 0; local < s.NumNodes(); local++ {
					for _, l := range s.Links(local) {
						count += int(l.To)
					}
				}
			}
		}},
	}
}

// engineShardedBench mirrors BenchmarkEngineSharded: parallel submitters
// over a sharded work-stealing pool at the given size, with the workload
// temperature selecting how much of the traffic the result cache can
// serve (hot: all of it; cold: none — caching off; mixed: half).
func engineShardedBench(w *kbgen.Workload, replicas int, mix string) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := machine.PaperConfig()
		cfg.Deterministic = true
		opts := []engine.Option{engine.WithReplicas(replicas), engine.WithMachineConfig(cfg), engine.WithQueueCap(4096)}
		poolSize := 0
		switch mix {
		case "cold":
			opts = append(opts, engine.WithResultCache(0))
			poolSize = 256
		case "mixed":
			opts = append(opts, engine.WithResultCache(128))
			poolSize = 1024
		}
		e, err := engine.New(w.KB, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()

		hot := shardedProgram(w, -1)
		pool := make([]*isa.Program, poolSize)
		for i := range pool {
			pool[i] = shardedProgram(w, i)
		}
		if _, err := e.Submit(context.Background(), hot); err != nil {
			b.Fatal(err)
		}

		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				p := hot
				if poolSize > 0 {
					n := next.Add(1)
					if mix == "cold" || n%2 == 0 {
						p = pool[int(n)%poolSize]
					}
				}
				res, err := e.Submit(context.Background(), p)
				if err != nil {
					b.Error(err)
					return
				}
				if len(res.Collected(0)) == 0 {
					b.Error("empty collection")
					return
				}
			}
		})
	}
}

// shardedProgram builds the canonical chain-propagation query with a
// distinguishing initial marker value: variants hash differently but
// cost the same to execute.
func shardedProgram(w *kbgen.Workload, variant int) *isa.Program {
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, float32(variant))
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	return p
}

// throughputBench mirrors BenchmarkEngineThroughput: parallel submitters
// over a pooled replica set.
func throughputBench(b *testing.B) {
	w := kbgen.Chains(1, 128, 8, 1)
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	e, err := engine.New(w.KB, engine.WithReplicas(4), engine.WithMachineConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	p := isa.NewProgram()
	p.SearchColor(w.Seeds[0], 0, 0)
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := e.Submit(context.Background(), p)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.Collected(0)) == 0 {
				b.Error("empty collection")
				return
			}
		}
	})
}
