// Command mucparse regenerates Table IV: execution times for parsing the
// evaluation's newswire sentences (standing in for the MUC-4 inputs of
// Table III) at two knowledge-base sizes on the 16-cluster array, split
// into phrasal-parser and memory-based-parser time.
package main

import (
	"fmt"
	"log"

	"snap1/internal/experiments"
)

func main() {
	log.SetFlags(0)
	res, err := experiments.TableIV()
	if err != nil {
		log.Fatalf("mucparse: %v", err)
	}
	fmt.Print(res)
	fmt.Println("\nThe phrasal parser is a serial controller program, so its time is")
	fmt.Println("independent of knowledge-base size; memory-based parse time grows")
	fmt.Println("gradually as knowledge is added, and total time tracks sentence length.")
}
