// Command snapd serves SNAP-1 marker-propagation queries over HTTP: a
// resident knowledge base, a pool of simulated array replicas behind
// sharded work-stealing run queues, and a result-caching query engine
// behind a JSON API.
//
// Usage:
//
//	snapd -gen 4000 -domain -addr :8080
//	snapd -kb network.kb -replicas 8 -max-inflight 512
//
// Endpoints:
//
//	POST /v1/query   {"program": "<SNAP assembly>", "timeout_ms": 1000}
//	                 (or Content-Type: text/plain with raw assembly)
//	POST /v1/mutate  topology-mutating programs (requires -writes);
//	                 commits through the serialized writer and publishes
//	                 a new KB epoch before answering
//	GET  /v1/stats   serving counters, batch/steal/shed stats, cache
//	                 hit rates, per-stage latency, write/delta counters
//	GET  /v1/health  per-replica quarantine state and overall status
//
// Every non-2xx response carries the typed error envelope
// {"error":{"code":...,"message":...,"retryable":...}} (see
// docs/RESILIENCE.md). Overloaded submissions (full queue or in-flight
// ceiling) answer 503 with a Retry-After header estimated from the
// live queue depth and drain rate. SIGINT/SIGTERM drains in-flight
// queries before exit.
//
// A fault plan (-fault-plan plan.json) arms seeded fault injection in
// the simulated hardware for resilience drills; pair it with
// -query-timeout and -retries to exercise degraded serving.
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"program":
//	  "search-node node=dog marker=c1 value=0\n
//	   propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n
//	   collect-node marker=c2"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snap1/internal/engine"
	"snap1/internal/fault"
	"snap1/internal/kbfile"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapd: ")

	addr := flag.String("addr", ":8080", "listen address")
	kbPath := flag.String("kb", "", "knowledge-base file (kbfile format)")
	gen := flag.Int("gen", 0, "generate a synthetic knowledge base of N nodes instead")
	domain := flag.Bool("domain", false, "embed the newswire micro-domain in the generated network")
	seed := flag.Int64("seed", 42, "generation seed")
	replicas := flag.Int("replicas", 4, "machine-pool size (one run-queue shard per replica)")
	maxBatch := flag.Int("max-batch", 8, "max queries one replica drains or steals per round")
	queueCap := flag.Int("queue-cap", 256, "submit-queue capacity; beyond it queries shed with 503")
	cacheCap := flag.Int("cache-cap", 128, "compile-cache entry bound")
	resultCache := flag.Int("result-cache", 1024, "result-cache entry bound (0 disables result caching)")
	maxInFlight := flag.Int("max-inflight", 0, "in-flight query ceiling, 0 = no ceiling beyond -queue-cap")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight queries")
	clusters := flag.Int("clusters", 16, "cluster count per replica")
	part := flag.String("partition", "semantic", "partitioning: sequential, round-robin, semantic, or refined")
	place := flag.Bool("place", false, "follow partitioning with hop-aware hypercube placement")
	monCap := flag.Int("monitor", 4096, "perfmon FIFO capacity (0 disables)")
	faultPlan := flag.String("fault-plan", "", "seeded fault-injection plan (JSON file; see docs/RESILIENCE.md)")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-attempt query deadline (0 disables)")
	retries := flag.Int("retries", 3, "total execution attempts per query (1 disables retries)")
	fusion := flag.Int("fusion", 8, "max queries coalesced into one fused run (1 disables query fusion)")
	optLevel := flag.Int("opt", 2, "program optimizer level: 0 runs queries as written, 1 folds and eliminates dead planes, 2 adds plane renaming and overlap scheduling")
	writes := flag.Bool("writes", false, "accept topology-mutating programs on POST /v1/mutate (epoch-versioned online KB writes)")
	flag.Parse()

	kb, err := loadKB(*kbPath, *gen, *domain, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opts := []engine.Option{
		engine.WithReplicas(*replicas),
		engine.WithMaxBatch(*maxBatch),
		engine.WithQueueCap(*queueCap),
		engine.WithCacheCap(*cacheCap),
		engine.WithResultCache(*resultCache),
		engine.WithMaxInFlight(*maxInFlight),
		engine.WithQueryTimeout(*queryTimeout),
		engine.WithRetryPolicy(engine.RetryPolicy{MaxAttempts: *retries}),
		engine.WithFusion(*fusion),
		engine.WithOptLevel(*optLevel),
		engine.WithWrites(*writes),
		engine.WithMachineOptions(
			machine.WithClusters(*clusters),
			machine.WithMarkerUnits(2, 0),
			machine.WithPartition(*part),
			machine.WithPlacement(*place),
			machine.WithDeterministic(true),
		),
	}
	if *monCap > 0 {
		opts = append(opts, engine.WithMonitor(perfmon.NewCollector(*monCap)))
	}
	if *faultPlan != "" {
		plan, err := fault.Load(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("fault plan armed: seed %d, %d rule(s)", plan.Seed, len(plan.Rules))
		opts = append(opts, engine.WithFaultPlan(plan))
	}
	start := time.Now()
	eng, err := engine.New(kb, opts...)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: engine.NewServer(eng)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d-node knowledge base on %d replicas at %s (pool up in %v)",
		kb.NumNodes(), *replicas, *addr, time.Since(start).Round(time.Millisecond))

	// Graceful shutdown: stop accepting, let in-flight queries drain
	// within the deadline, then retire the replica pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	eng.Close()
	log.Printf("bye")
}

func loadKB(path string, gen int, domain bool, seed int64) (*semnet.KB, error) {
	switch {
	case path != "" && gen != 0:
		return nil, fmt.Errorf("-kb and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kbfile.Parse(f)
	case gen != 0:
		g, err := kbgen.Generate(kbgen.Params{Nodes: gen, Seed: seed, WithDomain: domain})
		if err != nil {
			return nil, err
		}
		return g.KB, nil
	default:
		return nil, fmt.Errorf("need -kb file or -gen N")
	}
}
