// Command snapd serves SNAP-1 marker-propagation queries over HTTP: a
// resident knowledge base, a pool of simulated array replicas, and a
// batching query engine behind a JSON API.
//
// Usage:
//
//	snapd -gen 4000 -domain -addr :8080
//	snapd -kb network.kb -replicas 8
//
// Endpoints:
//
//	POST /v1/query   {"program": "<SNAP assembly>", "timeout_ms": 1000}
//	                 (or Content-Type: text/plain with raw assembly)
//	GET  /v1/stats   serving counters, batch stats, per-stage latency
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"program":
//	  "search-node node=dog marker=c1 value=0\n
//	   propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n
//	   collect-node marker=c2"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"snap1/internal/engine"
	"snap1/internal/kbfile"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapd: ")

	addr := flag.String("addr", ":8080", "listen address")
	kbPath := flag.String("kb", "", "knowledge-base file (kbfile format)")
	gen := flag.Int("gen", 0, "generate a synthetic knowledge base of N nodes instead")
	domain := flag.Bool("domain", false, "embed the newswire micro-domain in the generated network")
	seed := flag.Int64("seed", 42, "generation seed")
	replicas := flag.Int("replicas", 4, "machine-pool size")
	maxBatch := flag.Int("max-batch", 8, "max queries dispatched to one replica per round")
	clusters := flag.Int("clusters", 16, "cluster count per replica")
	part := flag.String("partition", "semantic", "partitioning: sequential, round-robin, or semantic")
	monCap := flag.Int("monitor", 4096, "perfmon FIFO capacity (0 disables)")
	flag.Parse()

	kb, err := loadKB(*kbPath, *gen, *domain, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opts := []engine.Option{
		engine.WithReplicas(*replicas),
		engine.WithMaxBatch(*maxBatch),
		engine.WithMachineOptions(
			machine.WithClusters(*clusters),
			machine.WithMarkerUnits(2, 0),
			machine.WithPartition(*part),
			machine.WithDeterministic(true),
		),
	}
	if *monCap > 0 {
		opts = append(opts, engine.WithMonitor(perfmon.NewCollector(*monCap)))
	}
	eng, err := engine.New(kb, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	log.Printf("serving %d-node knowledge base on %d replicas at %s",
		kb.NumNodes(), *replicas, *addr)
	if err := http.ListenAndServe(*addr, engine.NewServer(eng)); err != nil {
		log.Fatal(err)
	}
}

func loadKB(path string, gen int, domain bool, seed int64) (*semnet.KB, error) {
	switch {
	case path != "" && gen != 0:
		return nil, fmt.Errorf("-kb and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kbfile.Parse(f)
	case gen != 0:
		g, err := kbgen.Generate(kbgen.Params{Nodes: gen, Seed: seed, WithDomain: domain})
		if err != nil {
			return nil, err
		}
		return g.KB, nil
	default:
		return nil, fmt.Errorf("need -kb file or -gen N")
	}
}
