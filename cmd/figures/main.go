// Command figures regenerates the tables and figures of the SNAP-1
// paper's evaluation section as text, using the deterministic measurement
// engine.
//
// Usage:
//
//	figures            # everything
//	figures -fig 15    # one figure
//	figures -fig table4
package main

import (
	"flag"
	"fmt"
	"os"

	"snap1/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", `which figure to regenerate: table4, 6, 8, 15, 16, 17, 18, 19, 20, 21, partition, mus, speech, scale, or "all"`)
	million := flag.Bool("million", false, "include the million-concept point in -fig scale")
	flag.Parse()

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	jobs := []job{
		{"table4", func() (fmt.Stringer, error) { return experiments.TableIV() }},
		{"6", func() (fmt.Stringer, error) { return experiments.Fig6() }},
		{"8", func() (fmt.Stringer, error) { return experiments.Fig8() }},
		{"15", func() (fmt.Stringer, error) { return experiments.Fig15(nil) }},
		{"16", func() (fmt.Stringer, error) { return experiments.Fig16() }},
		{"17", func() (fmt.Stringer, error) { return experiments.Fig17() }},
		{"18", func() (fmt.Stringer, error) { return experiments.Fig18(nil) }},
		{"19", func() (fmt.Stringer, error) { return experiments.Fig19(nil) }},
		{"20", func() (fmt.Stringer, error) { return experiments.Fig20(nil, 3) }},
		{"21", func() (fmt.Stringer, error) { return experiments.Fig21(nil) }},
		{"partition", func() (fmt.Stringer, error) { return experiments.AblationPartition() }},
		{"mus", func() (fmt.Stringer, error) { return experiments.AblationMUs() }},
		{"speech", func() (fmt.Stringer, error) { return experiments.SpeechStudy() }},
		{"scale", func() (fmt.Stringer, error) {
			points := experiments.DefaultScalePoints
			if *million {
				points = append(points, experiments.MillionPoint)
			}
			return experiments.Scale(points)
		}},
	}

	ran := false
	for _, j := range jobs {
		if *fig != "all" && *fig != j.name {
			continue
		}
		ran = true
		res, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
