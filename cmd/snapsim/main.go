// Command snapsim runs SNAP assembly programs on the simulated SNAP-1
// array.
//
// Usage:
//
//	snapsim -kb network.kb program.snap
//	snapsim -gen 4000 -domain program.snap
//
// The knowledge base comes either from a text network file (-kb, see
// internal/kbfile) or a generated synthetic network (-gen N, optionally
// with the newswire micro-domain embedded via -domain). The program is
// SNAP assembly (see internal/isa's Assembler): one instruction per line,
// key=value operands, names resolved against the knowledge base.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"snap1/internal/isa"
	"snap1/internal/kbfile"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapsim: ")

	kbPath := flag.String("kb", "", "knowledge-base file (kbfile format)")
	gen := flag.Int("gen", 0, "generate a synthetic knowledge base of N nodes instead")
	domain := flag.Bool("domain", false, "embed the newswire micro-domain in the generated network")
	seed := flag.Int64("seed", 42, "generation seed")
	clusters := flag.Int("clusters", 16, "cluster count")
	mus := flag.Int("mus", 2, "marker units per cluster")
	part := flag.String("partition", "semantic", "partitioning: sequential, round-robin, semantic, or refined")
	place := flag.Bool("place", false, "follow partitioning with hop-aware hypercube placement")
	det := flag.Bool("det", true, "use the deterministic measurement engine")
	optLevel := flag.Int("opt", 0, "optimizer level: 0 runs the program as written (canonical timing), 1 folds and eliminates dead planes, 2 adds plane renaming and overlap scheduling")
	verbose := flag.Bool("v", false, "print the instruction profile")
	repeat := flag.Int("repeat", 1, "run the program N times (markers cleared between runs; useful with profiling)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the runs to this file")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: snapsim [-kb file | -gen N] program.snap")
	}

	kb, err := loadKB(*kbPath, *gen, *domain, *seed)
	if err != nil {
		log.Fatal(err)
	}
	kb.Preprocess()

	progFile, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer progFile.Close()
	prog, err := isa.NewAssembler(kb).Assemble(progFile)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}

	m, err := machine.NewFromOptions(machine.DefaultConfig(),
		machine.WithClusters(*clusters),
		machine.WithMarkerUnits(*mus, 0),
		machine.WithPartition(*part),
		machine.WithPlacement(*place),
		machine.WithDeterministic(*det),
		machine.WithCapacityFor(kb.NumNodes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		log.Fatal(err)
	}

	defer m.Close()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Optimize under the simulator profile: markers are not read back
	// after the run, so final-state dead writes are fair game. The
	// machine's strict mode backstops the rewrite — an origin-ambiguous
	// tie discards the optimized run and re-runs the program as written.
	opt := isa.Optimize(prog, isa.OptConfig{Level: *optLevel})
	if opt.Changed() {
		fmt.Printf("optimizer (O%d): %d -> %d instructions, %d plane rows freed\n",
			opt.Level, prog.Len(), opt.Program.Len(), opt.PlanesFreed)
	}

	if *repeat < 1 {
		*repeat = 1
	}
	var res *machine.Result
	for i := 0; i < *repeat; i++ {
		if i > 0 {
			m.ClearMarkers()
		}
		if opt.Changed() {
			res, err = m.RunOptimized(context.Background(), opt.Program)
			if errors.Is(err, machine.ErrOptAmbiguous) {
				m.ClearMarkers()
				res, err = m.Run(prog)
			} else if err == nil {
				res.RemapInstrs(opt.OrigIndex)
			}
		} else {
			res, err = m.Run(prog)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	cfg := m.Config()
	fmt.Printf("ran %d instructions on %d clusters (%d PEs) over %d nodes in %v simulated\n",
		prog.Len(), cfg.Clusters, cfg.PEs(), kb.NumNodes(), res.Time)
	for i, coll := range res.Collections {
		fmt.Printf("collection %d (%v, instruction %d): %d items\n",
			i, coll.Op, coll.Instr, len(coll.Items))
		for _, it := range coll.Items {
			switch coll.Op {
			case isa.OpCollectRelation:
				fmt.Printf("  %s -%s(%g)-> %s\n",
					kb.Name(kb.Canonical(it.Node)), kb.RelationName(it.Rel),
					it.Weight, kb.Name(kb.Canonical(it.To)))
			case isa.OpCollectColor:
				fmt.Printf("  %s : %s\n",
					kb.Name(kb.Canonical(it.Node)), kb.ColorName(it.Color))
			default:
				fmt.Printf("  %s = %g (origin %s)\n",
					kb.Name(kb.Canonical(it.Node)), it.Value,
					kb.Name(kb.Canonical(it.Origin)))
			}
		}
	}
	if *verbose {
		fmt.Print(res.Profile)
	}
}

func loadKB(path string, gen int, domain bool, seed int64) (*semnet.KB, error) {
	switch {
	case path != "" && gen != 0:
		return nil, fmt.Errorf("-kb and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return kbfile.Parse(f)
	case gen != 0:
		g, err := kbgen.Generate(kbgen.Params{Nodes: gen, Seed: seed, WithDomain: domain})
		if err != nil {
			return nil, err
		}
		return g.KB, nil
	default:
		return nil, fmt.Errorf("need -kb file or -gen N")
	}
}
