package perfmon

import (
	"testing"

	"snap1/internal/timing"
)

func TestEmitTimestampsSerialOccupancy(t *testing.T) {
	c := NewCollector(16)
	// Two back-to-back events from the same PE: the second record's
	// timestamp must trail by one 32-bit shift at 2 Mb/s (16 µs).
	c.Emit(3, EvMsgSend, 7, 0)
	c.Emit(3, EvMsgSend, 8, 0)
	recs := c.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d records", len(recs))
	}
	want := timing.Time(32) * timing.Second / LinkRate
	if recs[0].Timestamp != want {
		t.Errorf("first arrival %v, want %v", recs[0].Timestamp, want)
	}
	if recs[1].Timestamp != 2*want {
		t.Errorf("second arrival %v, want %v (serial link occupancy)", recs[1].Timestamp, 2*want)
	}
}

func TestEmitIndependentLinks(t *testing.T) {
	c := NewCollector(16)
	c.Emit(0, EvInstrStart, 1, 0)
	c.Emit(1, EvInstrStart, 2, 0)
	recs := c.Drain()
	if recs[0].Timestamp != recs[1].Timestamp {
		t.Error("distinct PEs have independent serial links")
	}
}

func TestStatusMaskedTo24Bits(t *testing.T) {
	c := NewCollector(4)
	c.Emit(0, EvCollect, 0xFFFFFFFF, 0)
	if got := c.Drain()[0].Status; got != 0xFFFFFF {
		t.Errorf("status = %#x, want 24-bit mask", got)
	}
}

func TestFIFOOverflowDrops(t *testing.T) {
	c := NewCollector(2)
	for i := 0; i < 5; i++ {
		c.Emit(0, EvMsgSend, uint32(i), 0)
	}
	if c.Len() != 2 {
		t.Fatalf("FIFO holds %d", c.Len())
	}
	if c.Dropped() != 3 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
}

func TestDisabledCollectorIsSilent(t *testing.T) {
	c := NewCollector(4)
	c.SetEnabled(false)
	c.Emit(0, EvMsgSend, 1, 0)
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatal("disabled collector must record nothing")
	}
	c.SetEnabled(true)
	c.Emit(0, EvMsgSend, 1, 0)
	if c.Len() != 1 {
		t.Fatal("re-enabled collector must record")
	}
}

func TestEventCodeNames(t *testing.T) {
	codes := []EventCode{
		EvInstrStart, EvInstrEnd, EvPropTaskRun, EvMsgSend, EvMsgRecv,
		EvBarrierEnter, EvBarrierDone, EvCollect, EvQueueFull,
	}
	seen := make(map[string]bool)
	for _, ec := range codes {
		name := ec.String()
		if name == "none" || seen[name] {
			t.Errorf("event %d name %q", ec, name)
		}
		seen[name] = true
	}
	if EvNone.String() != "none" {
		t.Error("EvNone name")
	}
}
