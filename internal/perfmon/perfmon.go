// Package perfmon implements SNAP-1's performance collection network: an
// instrumentation path independent of the primary interconnect so that
// measurement does not degrade communication bandwidth.
//
// Each PE, when a monitoring event triggers, writes an 8-bit event code
// and a 24-bit status word to its serial-port register and resumes
// execution without delay; the serial controller shifts the record out
// over a 2 Mb/s link to the central collection board, which timestamps it
// into a FIFO for analysis.
package perfmon

import (
	"sync"

	"snap1/internal/timing"
)

// EventCode is the 8-bit monitoring event identifier.
type EventCode uint8

// Event codes used by the simulator's instrumentation.
const (
	EvNone         EventCode = iota
	EvInstrStart             // status: opcode
	EvInstrEnd               // status: opcode
	EvPropTaskRun            // status: local node count touched
	EvMsgSend                // status: destination cluster
	EvMsgRecv                // status: source level
	EvBarrierEnter           // status: tier
	EvBarrierDone            // status: messages this barrier (low 24 bits)
	EvCollect                // status: nodes collected
	EvQueueFull              // status: queue depth

	// Engine-level events, emitted by the query-serving layer rather
	// than a PE. The "PE index" is the replica that served the query
	// (-1 while still queued).
	EvQuerySubmit   // status: submit-queue depth after enqueue
	EvBatchDispatch // status: batch size dispatched to one replica
	EvQueryDone     // status: low 24 bits of the query's virtual time
	EvQueryCancel   // status: submit-queue depth at cancellation
	EvWorkSteal     // status: batch size stolen from a loaded shard
	EvQueryShed     // status: in-flight count at admission rejection
	EvResultHit     // status: low 24 bits of the cached virtual time
	EvQueryFused    // status: queries coalesced into one fused run

	// Resilience events, emitted by the fault layer and the engine's
	// health machinery.
	EvFaultInjected      // status: fault site index
	EvReplicaQuarantined // status: consecutive timeouts at quarantine
	EvQueryRetried       // status: attempt number of the retry
	EvReplicaRestored    // status: probe successes at restoration

	// Interconnect locality events, emitted once per propagation phase at
	// the barrier — the counters the partitioning/placement work targets.
	EvCutTraffic // status: inter-cluster activations this phase (cut links exercised)
	EvHopTraffic // status: port-to-port ICN transfers this phase

	// EvProgramOptimized is emitted by the engine once per distinct
	// program its compile-tier optimizer rewrote; status carries the
	// instruction count the rewrite deleted.
	EvProgramOptimized

	// Online write-path events. EvKBDeltaApplied is emitted by a
	// serving replica that patched its cluster tables forward by delta
	// replay; status carries the record count. EvWriteCommitted is
	// emitted by the writer once per epoch publish; status carries the
	// group-commit size.
	EvKBDeltaApplied
	EvWriteCommitted
)

func (e EventCode) String() string {
	switch e {
	case EvInstrStart:
		return "instr-start"
	case EvInstrEnd:
		return "instr-end"
	case EvPropTaskRun:
		return "prop-task"
	case EvMsgSend:
		return "msg-send"
	case EvMsgRecv:
		return "msg-recv"
	case EvBarrierEnter:
		return "barrier-enter"
	case EvBarrierDone:
		return "barrier-done"
	case EvCollect:
		return "collect"
	case EvQueueFull:
		return "queue-full"
	case EvQuerySubmit:
		return "query-submit"
	case EvBatchDispatch:
		return "batch-dispatch"
	case EvQueryDone:
		return "query-done"
	case EvQueryCancel:
		return "query-cancel"
	case EvWorkSteal:
		return "work-steal"
	case EvQueryShed:
		return "query-shed"
	case EvResultHit:
		return "result-hit"
	case EvQueryFused:
		return "query-fused"
	case EvFaultInjected:
		return "fault-injected"
	case EvReplicaQuarantined:
		return "replica-quarantined"
	case EvQueryRetried:
		return "query-retried"
	case EvReplicaRestored:
		return "replica-restored"
	case EvCutTraffic:
		return "cut-traffic"
	case EvHopTraffic:
		return "hop-traffic"
	case EvProgramOptimized:
		return "program-optimized"
	case EvKBDeltaApplied:
		return "kb-delta-applied"
	case EvWriteCommitted:
		return "write-committed"
	default:
		return "none"
	}
}

// Record is one collected monitoring event: the 8-bit code, the 24-bit
// status word, the emitting PE, and the central-board arrival timestamp.
type Record struct {
	Source    int // PE index
	Code      EventCode
	Status    uint32 // 24 bits significant
	Timestamp timing.Time
}

// LinkRate is the per-PE serial link speed (2 Mb/s).
const LinkRate = 2_000_000 // bits per second

// recordBits is the on-wire record size: 8-bit code + 24-bit status.
const recordBits = 32

// shiftTime is the serial shift-out time for one record at LinkRate.
const shiftTime = timing.Time(recordBits) * timing.Second / LinkRate

// Collector is the central collection board: a timestamping FIFO fed by
// per-PE serial links.
type Collector struct {
	mu       sync.Mutex
	enabled  bool
	fifo     []Record
	capacity int
	dropped  int64
	busy     map[int]timing.Time // per-PE link busy-until
}

// NewCollector returns an enabled collector whose FIFO holds capacity
// records; records arriving at a full FIFO are counted as dropped, as a
// saturated instrumentation system would.
func NewCollector(capacity int) *Collector {
	return &Collector{enabled: true, capacity: capacity, busy: make(map[int]timing.Time)}
}

// SetEnabled turns collection on or off (off = zero perturbation and zero
// records, the hardware's disabled monitoring state).
func (c *Collector) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Emit records an event from a PE at virtual time now. The PE resumes
// without delay; the record's timestamp reflects serial-link occupancy
// (back-to-back events from one PE arrive at least one shift time apart).
func (c *Collector) Emit(pe int, code EventCode, status uint32, now timing.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	start := now
	if b, ok := c.busy[pe]; ok && b > start {
		start = b
	}
	arrive := start + shiftTime
	c.busy[pe] = arrive
	if len(c.fifo) >= c.capacity {
		c.dropped++
		return
	}
	c.fifo = append(c.fifo, Record{Source: pe, Code: code, Status: status & 0xFFFFFF, Timestamp: arrive})
}

// Drain removes and returns all collected records (transfer to mass
// storage, in the prototype's terms).
func (c *Collector) Drain() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.fifo
	c.fifo = nil
	return out
}

// Dropped reports records lost to FIFO overflow.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Len reports the records currently buffered.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fifo)
}
