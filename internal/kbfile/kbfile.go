// Package kbfile reads and writes semantic networks in a plain text
// format, the host-side interchange for cmd/snapsim:
//
//	# comment
//	node <name> <color-name> [fn]
//	link <from> <relation-name> <weight> <to>
//
// Node and color names are free-form words; relations and colors are
// interned in declaration order, so a network round-trips exactly.
package kbfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"snap1/internal/semnet"
)

// Parse reads a knowledge base from r.
func Parse(r io.Reader) (*semnet.KB, error) {
	kb := semnet.NewKB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(kb, fields); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return kb, nil
}

func parseLine(kb *semnet.KB, fields []string) error {
	switch fields[0] {
	case "node":
		if len(fields) < 3 || len(fields) > 4 {
			return fmt.Errorf("node wants <name> <color> [fn], got %d operands", len(fields)-1)
		}
		id, err := kb.AddNode(fields[1], kb.ColorFor(fields[2]))
		if err != nil {
			return err
		}
		if len(fields) == 4 {
			fn, err := parseFn(fields[3])
			if err != nil {
				return err
			}
			if err := kb.SetFn(id, fn); err != nil {
				return err
			}
		}
		return nil
	case "link":
		if len(fields) != 5 {
			return fmt.Errorf("link wants <from> <rel> <weight> <to>, got %d operands", len(fields)-1)
		}
		from, ok := kb.Lookup(fields[1])
		if !ok {
			return fmt.Errorf("unknown node %q", fields[1])
		}
		to, ok := kb.Lookup(fields[4])
		if !ok {
			return fmt.Errorf("unknown node %q", fields[4])
		}
		w, err := strconv.ParseFloat(fields[3], 32)
		if err != nil {
			return fmt.Errorf("bad weight %q", fields[3])
		}
		return kb.AddLink(from, kb.Relation(fields[2]), float32(w), to)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func parseFn(s string) (semnet.FuncCode, error) {
	switch s {
	case "nop":
		return semnet.FuncNop, nil
	case "add":
		return semnet.FuncAdd, nil
	case "min":
		return semnet.FuncMin, nil
	case "max":
		return semnet.FuncMax, nil
	case "mul":
		return semnet.FuncMul, nil
	case "dec":
		return semnet.FuncDec, nil
	}
	return 0, fmt.Errorf("unknown function %q", s)
}

// Write renders kb in the text format, nodes before links, in ID order.
// Preprocessor subnodes are skipped: they are regenerated on load.
func Write(w io.Writer, kb *semnet.KB) error {
	bw := bufio.NewWriter(w)
	for id := 0; id < kb.NumNodes(); id++ {
		n, err := kb.Node(semnet.NodeID(id))
		if err != nil {
			return err
		}
		if n.IsSubnode() {
			continue
		}
		if n.Fn != semnet.FuncNop {
			fmt.Fprintf(bw, "node %s %s %s\n", n.Name, kb.ColorName(n.Color), n.Fn)
		} else {
			fmt.Fprintf(bw, "node %s %s\n", n.Name, kb.ColorName(n.Color))
		}
	}
	for id := 0; id < kb.NumNodes(); id++ {
		n, err := kb.Node(semnet.NodeID(id))
		if err != nil {
			return err
		}
		if n.IsSubnode() {
			continue
		}
		if err := writeLinks(bw, kb, semnet.NodeID(id), n); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeLinks emits a node's links, flattening continuation subnodes back
// into direct links so the file holds the logical network.
func writeLinks(w io.Writer, kb *semnet.KB, owner semnet.NodeID, n *semnet.Node) error {
	for _, l := range n.Out {
		if l.Rel == semnet.RelCont {
			sub, err := kb.Node(l.To)
			if err != nil {
				return err
			}
			if err := writeLinks(w, kb, owner, sub); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(w, "link %s %s %s %s\n",
			kb.Name(owner), kb.RelationName(l.Rel),
			strconv.FormatFloat(float64(l.Weight), 'g', -1, 32),
			kb.Name(kb.Canonical(l.To)))
	}
	return nil
}
