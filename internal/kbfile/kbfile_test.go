package kbfile

import (
	"strings"
	"testing"

	"snap1/internal/semnet"
)

const sample = `
# a small hierarchy
node thing class
node animal class add
node dog class
link animal is-a 1 thing
link dog is-a 0.5 animal
`

func TestParse(t *testing.T) {
	kb, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if kb.NumNodes() != 3 || kb.NumLinks() != 2 {
		t.Fatalf("parsed %d nodes, %d links", kb.NumNodes(), kb.NumLinks())
	}
	animal, ok := kb.Lookup("animal")
	if !ok {
		t.Fatal("animal missing")
	}
	n, _ := kb.Node(animal)
	if n.Fn != semnet.FuncAdd {
		t.Error("node fn")
	}
	dog, _ := kb.Lookup("dog")
	dn, _ := kb.Node(dog)
	if len(dn.Out) != 1 || dn.Out[0].Weight != 0.5 {
		t.Fatalf("dog links %+v", dn.Out)
	}
	if err := kb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node onlyname",
		"node a b c d e",
		"node a col bogusfn",
		"link a r 1 b",                 // unknown nodes
		"node a c\nlink a r 1 missing", // unknown target
		"node a c\nlink a r weight a",  // bad weight
		"node a c\nlink a r 1",         // arity
		"frobnicate x",                 // unknown directive
		"node dup c\nnode dup c",       // duplicate
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	kb, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Write(&out, kb); err != nil {
		t.Fatal(err)
	}
	kb2, err := Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("reparse:\n%s\n%v", out.String(), err)
	}
	if kb2.NumNodes() != kb.NumNodes() || kb2.NumLinks() != kb.NumLinks() {
		t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
			kb.NumNodes(), kb.NumLinks(), kb2.NumNodes(), kb2.NumLinks())
	}
}

// A preprocessed network with subnodes must write back as the logical
// network (subnodes flattened) and reload equivalently.
func TestWriteFlattensSubnodes(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	hub := kb.MustAddNode("hub", col)
	for i := 0; i < 40; i++ {
		id := kb.MustAddNode("leaf"+string(rune('A'+i%26))+string(rune('0'+i/26)), col)
		kb.MustAddLink(hub, rel, 1, id)
	}
	kb.Preprocess()

	var out strings.Builder
	if err := Write(&out, kb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "~") {
		t.Fatal("subnode names leaked into the file")
	}
	kb2, err := Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if kb2.NumNodes() != 41 {
		t.Fatalf("reloaded %d nodes, want 41 logical", kb2.NumNodes())
	}
	h2, _ := kb2.Lookup("hub")
	n, _ := kb2.Node(h2)
	if len(n.Out) != 40 {
		t.Fatalf("hub reloaded with %d links", len(n.Out))
	}
	_ = hub
}
