package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/trace"
)

// Fig6Row is one instruction class's share of executed instructions and
// of total execution time, the two bars per class of the paper's Fig. 6.
type Fig6Row struct {
	Group     isa.Group
	Count     int64
	CountFrac float64
	TimeFrac  float64
}

// Fig6Result is the regenerated instruction profile.
type Fig6Result struct {
	Rows    []Fig6Row
	Profile *trace.Profile
}

// Fig6 profiles the NLU application on a single processor (one cluster,
// one marker unit), as the paper's Fig. 6 measurement was made, and
// reports relative instruction frequency against relative execution time.
// The paper's headline: PROPAGATE is ~17% of the instruction count but
// ~64.5% of the time.
func Fig6() (*Fig6Result, error) {
	cfg := machine.DefaultConfig()
	cfg.MUsPerCluster = 1
	cfg.ExtraMUClusters = 0
	m, g, err := nluSetup(4000, 1, cfg)
	if err != nil {
		return nil, err
	}
	p := newParser(m, g)
	prof, _, err := parseBatch(p, g, 2)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Profile: prof}
	for gi := 0; gi < isa.NumGroups; gi++ {
		grp := isa.Group(gi)
		if prof.GroupCount[gi] == 0 {
			continue
		}
		cf, tf := prof.GroupShare(grp)
		out.Rows = append(out.Rows, Fig6Row{
			Group:     grp,
			Count:     prof.GroupCount[gi],
			CountFrac: cf,
			TimeFrac:  tf,
		})
	}
	return out, nil
}

// PropagateShares returns PROPAGATE's count and time fractions.
func (f *Fig6Result) PropagateShares() (countFrac, timeFrac float64) {
	for _, r := range f.Rows {
		if r.Group == isa.GroupPropagate {
			return r.CountFrac, r.TimeFrac
		}
	}
	return 0, 0
}

// String renders the profile.
func (f *Fig6Result) String() string {
	header := []string{"Instruction class", "Count", "Freq %", "Time %"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Group.String(),
			fmt.Sprint(r.Count),
			fmt.Sprintf("%5.1f", r.CountFrac*100),
			fmt.Sprintf("%5.1f", r.TimeFrac*100),
		})
	}
	return "Fig. 6: relative instruction frequency and execution time (single PE)\n" +
		table(header, rows)
}
