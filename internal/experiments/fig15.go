package experiments

import (
	"fmt"
	"math"

	"snap1/internal/baseline"
	"snap1/internal/inherit"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/timing"
)

// Fig15Row compares SNAP-1 and the CM-2 model on root-to-leaf property
// inheritance at one knowledge-base size.
type Fig15Row struct {
	Nodes   int // requested knowledge-base size
	Reached int // concepts that inherited the property (identical on both)
	Depth   int // propagation depth
	SNAP    timing.Time
	CM2     timing.Time
}

// Fig15Result is the regenerated scalability comparison.
type Fig15Result struct {
	Rows []Fig15Row
	// CrossoverNodes extrapolates where the SNAP-1 line would cross the
	// CM-2 line (linear extrapolation of the last two points); 0 when the
	// slopes never converge. The paper: "the lines will cross when larger
	// knowledge bases are used".
	CrossoverNodes int
}

// DefaultFig15Sizes sweeps 0.4K..25.6K nodes (the paper shows up to 6.4K).
var DefaultFig15Sizes = []int{400, 800, 1600, 3200, 6400, 12800, 25600}

// Fig15 runs inheritance on the 16-cluster SNAP-1 and on the CM-2 model
// over the same generated knowledge bases, verifying that both reach the
// same concept set.
func Fig15(sizes []int) (*Fig15Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig15Sizes
	}
	cm2 := baseline.DefaultCM2()
	out := &Fig15Result{}
	for _, n := range sizes {
		g, err := kbgen.Generate(kbgen.Params{Nodes: n, Seed: kbSeed})
		if err != nil {
			return nil, err
		}
		g.KB.Preprocess()
		cfg := machine.PaperConfig()
		cfg.Deterministic = true
		if need := (g.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
			cfg.NodesPerCluster = need
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.LoadKB(g.KB); err != nil {
			return nil, err
		}
		snap, err := inherit.Inheritance(m, g)
		if err != nil {
			return nil, err
		}
		cm, err := cm2.Inherit(g.KB, g.HierRoot, g.Rel.Subsumes)
		if err != nil {
			return nil, err
		}
		if snap.Reached != cm.Reached {
			return nil, fmt.Errorf("fig15: SNAP reached %d concepts, CM-2 model %d at %d nodes",
				snap.Reached, cm.Reached, n)
		}
		out.Rows = append(out.Rows, Fig15Row{
			Nodes:   n,
			Reached: snap.Reached,
			Depth:   cm.Steps,
			SNAP:    snap.Time,
			CM2:     cm.Time,
		})
	}
	out.CrossoverNodes = extrapolateCrossover(out.Rows)
	return out, nil
}

// extrapolateCrossover estimates the knowledge-base size where the SNAP-1
// line crosses the CM-2 line. SNAP-1 time is extended linearly from the
// last segment (its per-node work is linear in N); the CM-2 model is
// dominated by its fixed per-step overhead times a depth that grows one
// step per 4× size (the hierarchy's branching factor), so its curve is
// extended logarithmically. Returns 0 if no crossing within 1024× the
// measured range.
func extrapolateCrossover(rows []Fig15Row) int {
	if len(rows) < 2 {
		return 0
	}
	a, b := rows[len(rows)-2], rows[len(rows)-1]
	sSlope := float64(b.SNAP-a.SNAP) / float64(b.Nodes-a.Nodes)
	stepCost := float64(b.CM2) / float64(b.Depth)
	for n := b.Nodes; n < b.Nodes*1024; n += b.Nodes / 4 {
		snap := float64(b.SNAP) + sSlope*float64(n-b.Nodes)
		depth := float64(b.Depth) + math.Log(float64(n)/float64(b.Nodes))/math.Log(4)
		cm2 := stepCost * depth
		if snap >= cm2 {
			return n
		}
	}
	return 0
}

// String renders the comparison.
func (f *Fig15Result) String() string {
	header := []string{"KB nodes", "Reached", "Depth", "SNAP-1", "CM-2 model", "CM-2 / SNAP"}
	var rows [][]string
	for _, r := range f.Rows {
		ratio := float64(r.CM2) / float64(r.SNAP)
		rows = append(rows, []string{
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.Reached),
			fmt.Sprint(r.Depth),
			r.SNAP.String(),
			r.CM2.String(),
			fmt.Sprintf("%.1fx", ratio),
		})
	}
	s := "Fig. 15: property inheritance time vs knowledge-base size\n" + table(header, rows)
	if f.CrossoverNodes > 0 {
		s += fmt.Sprintf("extrapolated crossover at ~%d nodes (beyond the %d-node prototype capacity)\n",
			f.CrossoverNodes, 32*1024)
	}
	return s
}
