package experiments

import (
	"fmt"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
	"snap1/internal/timing"
)

// TableIVRow is one sentence's execution-time breakdown: the serial
// phrasal-parser time (independent of knowledge-base size) and the
// memory-based parser time at the 5K- and 9K-node knowledge bases, as in
// the paper's Table IV.
type TableIVRow struct {
	ID     string
	Text   string
	Words  int
	PPTime timing.Time
	MB5K   timing.Time
	MB9K   timing.Time
	Instr  int // SNAP instructions executed at the 9K knowledge base
}

// TableIVResult is the regenerated Table IV.
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIV parses the four evaluation sentences against 5K- and 9K-node
// knowledge bases on the 16-cluster evaluation configuration.
func TableIV() (*TableIVResult, error) {
	type pass struct {
		nodes int
		res   []*nlu.ParseResult
	}
	passes := []pass{{nodes: 5000}, {nodes: 9000}}
	for i := range passes {
		m, g, err := nluSetup(passes[i].nodes, 16, machine.PaperConfig())
		if err != nil {
			return nil, err
		}
		p := nlu.NewParser(m, g)
		_, res, err := parseBatch(p, g, 1)
		if err != nil {
			return nil, err
		}
		passes[i].res = res
	}

	out := &TableIVResult{}
	sentences := kbgen.EvaluationSentences()
	for i, r5 := range passes[0].res {
		r9 := passes[1].res[i]
		s := sentences[i]
		out.Rows = append(out.Rows, TableIVRow{
			ID:     s.ID,
			Text:   s.Text,
			Words:  len(s.Words),
			PPTime: r5.PPTime,
			MB5K:   r5.MBTime,
			MB9K:   r9.MBTime,
			Instr:  r9.Instructions,
		})
	}
	return out, nil
}

// String renders the regenerated table.
func (t *TableIVResult) String() string {
	header := []string{"Input", "Words", "P.P. time", "M.B. time (5K)", "M.B. time (9K)", "Total (9K)", "Instrs"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.ID,
			fmt.Sprint(r.Words),
			r.PPTime.String(),
			r.MB5K.String(),
			r.MB9K.String(),
			(r.PPTime + r.MB9K).String(),
			fmt.Sprint(r.Instr),
		})
	}
	return "Table IV: execution times for newswire sentence parsing\n" + table(header, rows)
}
