package experiments

import (
	"fmt"
	"strings"

	"snap1/internal/machine"
	"snap1/internal/partition"
	"snap1/internal/speech"
	"snap1/internal/timing"
)

// The paper's Section II describes an "integrated measurement system for
// evaluating marker-propagation algorithms, partitioning functions,
// communication traffic, and synchronization protocols", and motivates
// two design choices the ablations below quantify: the semantically-based
// partitioning option and the 2-3 marker units per cluster ("a good
// balance between PE utilization and communication overhead").

// PartitionRow is one partitioning strategy's cost on the parse workload.
type PartitionRow struct {
	Name     string
	Cut      float64 // fraction of links crossing clusters
	HopCost  float64 // mean hypercube hops per link
	Messages int64   // inter-cluster marker activations
	Hops     int64   // port-to-port transfers those activations took
	Time     timing.Time
}

// PartitionResult compares the partitioning functions.
type PartitionResult struct {
	Rows []PartitionRow
}

// AblationPartition parses the sentence batch under each partitioning
// strategy on the 16-cluster array.
func AblationPartition() (*PartitionResult, error) {
	out := &PartitionResult{}
	for _, s := range []struct {
		name  string
		f     partition.Func
		place bool
	}{
		{"sequential", partition.Sequential, false},
		{"round-robin", partition.RoundRobin, false},
		{"semantic", partition.Semantic, false},
		{"refined", partition.Refined, false},
		{"refined+place", partition.Refined, true},
	} {
		cfg := machine.PaperConfig()
		cfg.Partition = s.f
		cfg.Placement = s.place
		m, g, err := nluSetup(4000, 16, cfg)
		if err != nil {
			return nil, err
		}
		assign, err := s.f(g.KB, 16, 1024*1024)
		if err != nil {
			return nil, err
		}
		if s.place {
			assign = partition.Place(g.KB, assign, 16)
		}
		p := newParser(m, g)
		prof, _, err := parseBatch(p, g, 1)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, PartitionRow{
			Name:     s.name,
			Cut:      partition.CutRatio(g.KB, assign),
			HopCost:  partition.HopCost(g.KB, assign, 16),
			Messages: prof.PropMessages,
			Hops:     prof.PropHops,
			Time:     prof.Elapsed,
		})
	}
	return out, nil
}

// String renders the comparison.
func (r *PartitionResult) String() string {
	header := []string{"Partition", "Link cut", "Hop cost", "ICN messages", "ICN hops", "Parse batch time"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.1f%%", row.Cut*100),
			fmt.Sprintf("%.2f", row.HopCost),
			fmt.Sprint(row.Messages),
			fmt.Sprint(row.Hops),
			row.Time.String(),
		})
	}
	return "Ablation: partitioning function vs communication traffic (16 clusters)\n" +
		table(header, rows)
}

// MURow is one marker-unit count's parse cost.
type MURow struct {
	MUsPerCluster int
	PEs           int
	Time          timing.Time
	Speedup       float64 // vs one MU per cluster
}

// MUResult sweeps marker units per cluster.
type MUResult struct {
	Rows []MURow
}

// AblationMUs parses the sentence batch with 1..4 marker units per
// cluster at 16 clusters — the tradeoff behind the prototype's
// four-to-five-PE cluster design.
func AblationMUs() (*MUResult, error) {
	out := &MUResult{}
	var base timing.Time
	for mus := 1; mus <= 4; mus++ {
		cfg := machine.PaperConfig()
		cfg.MUsPerCluster = mus
		cfg.ExtraMUClusters = 0
		m, g, err := nluSetup(4000, 16, cfg)
		if err != nil {
			return nil, err
		}
		p := newParser(m, g)
		prof, _, err := parseBatch(p, g, 1)
		if err != nil {
			return nil, err
		}
		if mus == 1 {
			base = prof.Elapsed
		}
		out.Rows = append(out.Rows, MURow{
			MUsPerCluster: mus,
			PEs:           cfg.PEs(),
			Time:          prof.Elapsed,
			Speedup:       float64(base) / float64(prof.Elapsed),
		})
	}
	return out, nil
}

// String renders the sweep.
func (r *MUResult) String() string {
	header := []string{"MUs/cluster", "PEs", "Parse batch time", "Speedup vs 1 MU"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.MUsPerCluster),
			fmt.Sprint(row.PEs),
			row.Time.String(),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	return "Ablation: marker units per cluster (16 clusters)\n" + table(header, rows)
}

// SpeechRow is one lattice's decode outcome for the PASS-style workload.
type SpeechRow struct {
	Truth      string
	Decoded    string
	Winner     string
	SlotsRight int
	Slots      int
	MeanBeta   float64
	Time       timing.Time
}

// SpeechResult summarizes the speech-understanding workload: the measured
// β-overlap should land in the paper's PASS range (β_min 2.8, β_max 6).
type SpeechResult struct {
	Rows     []SpeechRow
	MeanBeta float64
}

// SpeechStudy decodes noisy lattices for three ground-truth utterances on
// the evaluation configuration.
func SpeechStudy() (*SpeechResult, error) {
	m, g, err := nluSetup(4000, 16, machine.PaperConfig())
	if err != nil {
		return nil, err
	}
	dec := speech.NewDecoder(m, g)
	truths := [][]string{
		{"guerrillas", "bombed", "embassy"},
		{"police", "killed", "terrorists"},
		{"terrorists", "attacked", "mayor"},
	}
	out := &SpeechResult{}
	var betaSum float64
	for i, truth := range truths {
		lat, err := speech.Confuse(g, truth, kbSeed+int64(i))
		if err != nil {
			return nil, err
		}
		res, err := dec.Decode(lat)
		if err != nil {
			return nil, err
		}
		right := 0
		for j := range truth {
			if res.Transcript[j] == truth[j] {
				right++
			}
		}
		out.Rows = append(out.Rows, SpeechRow{
			Truth:      strings.Join(truth, " "),
			Decoded:    strings.Join(res.Transcript, " "),
			Winner:     res.Winner,
			SlotsRight: right,
			Slots:      len(truth),
			MeanBeta:   res.MeanBeta,
			Time:       res.Time,
		})
		betaSum += res.MeanBeta
	}
	out.MeanBeta = betaSum / float64(len(truths))
	return out, nil
}

// String renders the study.
func (r *SpeechResult) String() string {
	header := []string{"Truth", "Decoded", "Meaning", "Correct", "β", "Time"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Truth,
			row.Decoded,
			row.Winner,
			fmt.Sprintf("%d/%d", row.SlotsRight, row.Slots),
			fmt.Sprintf("%.1f", row.MeanBeta),
			row.Time.String(),
		})
	}
	return fmt.Sprintf("PASS-style speech understanding (mean β %.1f; paper's PASS: 2.8-6)\n",
		r.MeanBeta) + table(header, rows)
}
