package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Fig17Betas are the overlapped-PROPAGATE degrees swept. 32 is the
// binary-marker budget limit (two markers per overlapped statement).
var Fig17Betas = []int{1, 2, 4, 8, 16, 32}

// Fig17Row is one β degree's overlap speedup.
type Fig17Row struct {
	Beta       int
	Overlapped timing.Time // β PROPAGATEs issued into one overlap window
	Serialized timing.Time // the same β PROPAGATEs with barriers between
	Speedup    float64
}

// Fig17Result is the regenerated β-parallelism study: speedup saturates
// once the overlapped statements exhaust the marker-unit pool (the paper:
// "increasing the degree of β-parallelism above 16 had little impact").
type Fig17Result struct {
	Rows []Fig17Row
}

// Fig17 measures inter-propagation overlap on the 72-PE configuration.
func Fig17() (*Fig17Result, error) {
	const alpha, depth = 32, 10
	maxBeta := Fig17Betas[len(Fig17Betas)-1]
	w := kbgen.Chains(maxBeta, alpha, depth, kbSeed)
	w.KB.Preprocess()

	out := &Fig17Result{}
	for _, beta := range Fig17Betas {
		over, err := betaRun(w, beta, maxBeta, false)
		if err != nil {
			return nil, err
		}
		serial, err := betaRun(w, beta, maxBeta, true)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig17Row{
			Beta:       beta,
			Overlapped: over,
			Serialized: serial,
			Speedup:    float64(serial) / float64(over),
		})
	}
	return out, nil
}

// betaRun times beta independent PROPAGATEs, either overlapped in one
// issue window or serialized with explicit barriers. The active groups
// are strided across the group space so that connectivity partitioning
// places them in distinct clusters — the overlap benefit then saturates
// exactly when the overlapped statements exhaust the marker-unit pool.
func betaRun(w *kbgen.Workload, beta, maxBeta int, serialize bool) (timing.Time, error) {
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	cfg.Partition = partition.Semantic
	if need := (w.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		return 0, err
	}
	if err := m.LoadKB(w.KB); err != nil {
		return 0, err
	}
	group := func(i int) int { return i * maxBeta / beta }
	p := isa.NewProgram()
	for b := 0; b < beta; b++ {
		p.SearchColor(w.Seeds[group(b)], semnet.Binary(2*b), 0)
	}
	for b := 0; b < beta; b++ {
		p.Propagate(semnet.Binary(2*b), semnet.Binary(2*b+1), rules.Path(w.Rel), semnet.FuncNop)
		if serialize {
			p.Barrier()
		}
	}
	p.Barrier()
	res, err := m.Run(p)
	if err != nil {
		return 0, err
	}
	for b := 0; b < beta; b++ {
		if got, want := m.MarkerCount(semnet.Binary(2*b+1)), w.Alpha*w.Depth; got != want {
			return 0, fmt.Errorf("fig17: group %d reached %d nodes, want %d", b, got, want)
		}
	}
	return res.Time, nil
}

// String renders the overlap study.
func (f *Fig17Result) String() string {
	header := []string{"β", "Overlapped", "Serialized", "Speedup"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Beta),
			r.Overlapped.String(),
			r.Serialized.String(),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return "Fig. 17: speedup vs β (overlapped PROPAGATE statements)\n" + table(header, rows)
}
