package experiments

import (
	"fmt"
	"strings"

	"snap1/internal/machine"
)

// Fig8Result is the marker-traffic time distribution: inter-cluster
// marker activation messages at each barrier synchronization point during
// a parse (the paper measures a mean of 11.49 with bursts over 30).
type Fig8Result struct {
	Series []int64 // messages per synchronization point, in program order
	Mean   float64
	Max    int64
	Bursts int // synchronization points with more than 30 messages
}

// Fig8 parses the evaluation sentences on the 16-cluster configuration
// and reports the per-barrier message series.
func Fig8() (*Fig8Result, error) {
	m, g, err := nluSetup(9000, 16, machine.PaperConfig())
	if err != nil {
		return nil, err
	}
	p := newParser(m, g)
	prof, _, err := parseBatch(p, g, 1)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Series: prof.MessagesPerBarrier(), Mean: prof.MeanMessagesPerBarrier()}
	for _, v := range out.Series {
		if v > out.Max {
			out.Max = v
		}
		if v > 30 {
			out.Bursts++
		}
	}
	return out, nil
}

// String renders the series as a text sparkline plus summary statistics.
func (f *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8: marker activation messages per barrier synchronization point\n")
	fmt.Fprintf(&b, "sync points %d, mean %.2f msgs, max %d, bursts>30: %d\n",
		len(f.Series), f.Mean, f.Max, f.Bursts)
	for i, v := range f.Series {
		fmt.Fprintf(&b, "%4d %6d %s\n", i, v, strings.Repeat("#", scaleBar(v, f.Max, 50)))
	}
	return b.String()
}

func scaleBar(v, max int64, width int) int {
	if max <= 0 || v <= 0 {
		return 0
	}
	n := int(v * int64(width) / max)
	if n == 0 {
		n = 1
	}
	return n
}
