// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section IV) on the simulated SNAP-1: Table IV and
// Figs. 6, 8, 15, 16, 17, 18, 19, 20, and 21. Each experiment returns
// structured rows plus a text rendering; cmd/figures and the repository's
// benchmarks are thin wrappers over these functions.
//
// All experiments run the deterministic lockstep engine so regenerated
// numbers are exactly reproducible.
package experiments

import (
	"fmt"
	"strings"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
	"snap1/internal/trace"
)

// kbSeed keeps every experiment's knowledge bases reproducible.
const kbSeed = 42

// nluSetup builds a linguistic KB of about `nodes` nodes with the
// newswire domain embedded, and a machine with the given cluster count
// sized to hold it.
func nluSetup(nodes, clusters int, base machine.Config) (*machine.Machine, *kbgen.Generated, error) {
	g, err := kbgen.Generate(kbgen.Params{Nodes: nodes, Seed: kbSeed, WithDomain: true})
	if err != nil {
		return nil, nil, err
	}
	g.KB.Preprocess()
	cfg := base
	cfg.Clusters = clusters
	cfg.Deterministic = true
	need := (g.KB.NumNodes() + clusters - 1) / clusters
	if need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := m.LoadKB(g.KB); err != nil {
		return nil, nil, err
	}
	return m, g, nil
}

// newParser binds the memory-based parser to a loaded machine.
func newParser(m *machine.Machine, g *kbgen.Generated) *nlu.Parser {
	return nlu.NewParser(m, g)
}

// parseBatch parses every evaluation sentence `repeat` times, merging
// profiles, and returns the merged profile and per-sentence results from
// the final pass.
func parseBatch(p *nlu.Parser, g *kbgen.Generated, repeat int) (*trace.Profile, []*nlu.ParseResult, error) {
	prof := &trace.Profile{}
	var last []*nlu.ParseResult
	for r := 0; r < repeat; r++ {
		last = last[:0]
		for _, s := range g.Domain.Sentences {
			res, err := p.Parse(s)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", s.ID, err)
			}
			if res.Winner != s.Expect {
				return nil, nil, fmt.Errorf("%s: parsed %q, want %q", s.ID, res.Winner, s.Expect)
			}
			prof.Merge(res.Profile)
			last = append(last, res)
		}
	}
	return prof, last, nil
}

// table renders aligned columns: header row then data rows.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
