package experiments

import (
	"strings"
	"testing"
)

func TestAblationPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("full parse runs")
	}
	res, err := AblationPartition()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]PartitionRow)
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	// Round-robin cuts nearly every link; the semantic partition must cut
	// far fewer and send fewer inter-cluster messages.
	if byName["semantic"].Cut >= byName["round-robin"].Cut {
		t.Errorf("semantic cut %.2f >= round-robin cut %.2f",
			byName["semantic"].Cut, byName["round-robin"].Cut)
	}
	if byName["semantic"].Messages >= byName["round-robin"].Messages {
		t.Errorf("semantic messages %d >= round-robin %d",
			byName["semantic"].Messages, byName["round-robin"].Messages)
	}
	// The refinement pass must improve on plain semantic BFS growth, and
	// the placement stage must not worsen the mean hop distance.
	if byName["refined"].Cut >= byName["semantic"].Cut {
		t.Errorf("refined cut %.2f >= semantic cut %.2f",
			byName["refined"].Cut, byName["semantic"].Cut)
	}
	if byName["refined"].Hops >= byName["semantic"].Hops {
		t.Errorf("refined hops %d >= semantic hops %d",
			byName["refined"].Hops, byName["semantic"].Hops)
	}
	if byName["refined+place"].HopCost > byName["refined"].HopCost {
		t.Errorf("placement raised hop cost: %.4f > %.4f",
			byName["refined+place"].HopCost, byName["refined"].HopCost)
	}
	for _, r := range res.Rows {
		if r.Time <= 0 || r.Messages == 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Error("rendering")
	}
}

func TestAblationMUs(t *testing.T) {
	if testing.Short() {
		t.Skip("full parse runs")
	}
	res, err := AblationMUs()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// More marker units never hurt, and the second MU is the big win —
	// the design rationale for 2-3 MUs per cluster.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Speedup < res.Rows[i-1].Speedup*0.98 {
			t.Errorf("speedup regressed at %d MUs: %.2f after %.2f",
				res.Rows[i].MUsPerCluster, res.Rows[i].Speedup, res.Rows[i-1].Speedup)
		}
	}
	gain2 := res.Rows[1].Speedup - res.Rows[0].Speedup
	gain4 := res.Rows[3].Speedup - res.Rows[2].Speedup
	if gain4 >= gain2 {
		t.Errorf("diminishing returns expected: 2nd MU gain %.2f, 4th MU gain %.2f", gain2, gain4)
	}
	if !strings.Contains(res.String(), "marker units") {
		t.Error("rendering")
	}
}

func TestSpeechStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full decode runs")
	}
	res, err := SpeechStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's PASS program ran β between 2.8 and 6; our hypothesis
	// overlap must land in a comparable multi-statement regime.
	if res.MeanBeta < 2 || res.MeanBeta > 8 {
		t.Errorf("mean β = %.1f, want the PASS range", res.MeanBeta)
	}
	// Semantic rescoring must beat chance: at least half the slots right
	// overall against acoustically competitive confusions.
	right, total := 0, 0
	for _, r := range res.Rows {
		right += r.SlotsRight
		total += r.Slots
		if r.Winner == "" {
			t.Errorf("lattice %q completed no sequence", r.Truth)
		}
	}
	if right*2 < total {
		t.Errorf("only %d/%d slots decoded correctly", right, total)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Error("rendering")
	}
}
