package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// Fig21Row is the overhead breakdown at one cluster count.
type Fig21Row struct {
	Clusters int
	Overhead trace.Overhead
}

// Fig21Result reproduces the parallel-overhead study: instruction
// broadcast stays constant, message communication grows ~log N, barrier
// synchronization grows linearly but shallowly, and result collection
// grows linearly and steepest.
type Fig21Result struct {
	Rows []Fig21Row
}

// DefaultFig21Clusters sweeps 1..32 clusters.
var DefaultFig21Clusters = []int{1, 2, 4, 8, 16, 32}

// Fig21 runs a fixed four-phase workload (configure, propagate,
// synchronize, collect) at each cluster count with round-robin
// partitioning, so propagation chains cross clusters and exercise the
// interconnect.
func Fig21(clusterCounts []int) (*Fig21Result, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = DefaultFig21Clusters
	}
	// 131 chains: prime, so round-robin placement is never congruent to
	// the cluster count and chain hops genuinely cross clusters.
	const alpha, depth = 131, 8
	w := kbgen.Chains(1, alpha, depth, kbSeed)
	w.KB.Preprocess()

	out := &Fig21Result{}
	for _, c := range clusterCounts {
		cfg := machine.DefaultConfig()
		cfg.Clusters = c
		cfg.Deterministic = true
		cfg.Partition = partition.RoundRobin
		if need := (w.KB.NumNodes() + c - 1) / c; need > cfg.NodesPerCluster {
			cfg.NodesPerCluster = need
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.LoadKB(w.KB); err != nil {
			return nil, err
		}
		p := isa.NewProgram()
		src, dst := semnet.MarkerID(0), semnet.MarkerID(1)
		p.SearchColor(w.Seeds[0], src, 0)
		p.Propagate(src, dst, rules.Path(w.Rel), semnet.FuncAdd)
		p.Barrier()
		p.CollectNode(dst)
		res, err := m.Run(p)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig21Row{Clusters: c, Overhead: res.Profile.Overhead})
	}
	return out, nil
}

// String renders the breakdown.
func (f *Fig21Result) String() string {
	header := []string{"Clusters", "broadcast", "communication", "synchronization", "collection"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Clusters),
			r.Overhead.Broadcast.String(),
			r.Overhead.Communication.String(),
			r.Overhead.Synchronization.String(),
			r.Overhead.Collection.String(),
		})
	}
	return "Fig. 21: parallel overhead components vs number of clusters\n" + table(header, rows)
}

// Component accessors for shape assertions.
func (f *Fig21Result) Series(pick func(trace.Overhead) timing.Time) []timing.Time {
	out := make([]timing.Time, len(f.Rows))
	for i, r := range f.Rows {
		out[i] = pick(r.Overhead)
	}
	return out
}
