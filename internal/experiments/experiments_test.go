package experiments

import (
	"strings"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/trace"
)

// These tests assert the SHAPES the paper reports — who wins, what grows,
// where curves flatten — not absolute prototype numbers.

func TestTableIVShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration")
	}
	res, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The phrasal parser is serial and independent of KB size; the
		// memory-based parser slows as knowledge is added.
		if r.MB9K <= r.MB5K {
			t.Errorf("%s: M.B. time must grow with the knowledge base (5K %v, 9K %v)",
				r.ID, r.MB5K, r.MB9K)
		}
		// Paper: 400-900 SNAP instructions for most sentences.
		if r.Instr < 200 || r.Instr > 1200 {
			t.Errorf("%s: %d instructions, want the paper's few-hundred range", r.ID, r.Instr)
		}
		// "Real-time performance": total well under a second.
		if (r.PPTime + r.MB9K).Seconds() > 1 {
			t.Errorf("%s: not real-time: %v", r.ID, r.PPTime+r.MB9K)
		}
	}
	// Overall time roughly proportional to sentence length: the longest
	// sentence must cost more than the shortest.
	var shortest, longest TableIVRow
	shortest, longest = res.Rows[0], res.Rows[0]
	for _, r := range res.Rows {
		if r.Words < shortest.Words {
			shortest = r
		}
		if r.Words > longest.Words {
			longest = r
		}
	}
	if longest.PPTime+longest.MB9K <= shortest.PPTime+shortest.MB9K {
		t.Errorf("longest sentence (%d words, %v) not slower than shortest (%d words, %v)",
			longest.Words, longest.PPTime+longest.MB9K, shortest.Words, shortest.PPTime+shortest.MB9K)
	}
	if !strings.Contains(res.String(), "Table IV") {
		t.Error("rendering")
	}
}

func TestFig6PropagateDominatesTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full profile run")
	}
	res, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	countFrac, timeFrac := res.PropagateShares()
	// Paper: 17.0% of instructions, 64.5% of time.
	if countFrac < 0.08 || countFrac > 0.30 {
		t.Errorf("propagate count share = %.1f%%, paper ≈17%%", countFrac*100)
	}
	if timeFrac < 0.45 || timeFrac > 0.85 {
		t.Errorf("propagate time share = %.1f%%, paper ≈64.5%%", timeFrac*100)
	}
	if timeFrac < 2*countFrac {
		t.Errorf("propagation must dominate time (%.1f%%) far beyond its frequency (%.1f%%)",
			timeFrac*100, countFrac*100)
	}
	// Data movement + bitwise ops dominate the COUNT (the processor-
	// selection rationale).
	var boolSC float64
	for _, r := range res.Rows {
		if r.Group == isa.GroupBoolean || r.Group == isa.GroupSetClear {
			boolSC += r.CountFrac
		}
	}
	if boolSC < 0.5 {
		t.Errorf("boolean+set/clear count share = %.1f%%, want the majority", boolSC*100)
	}
}

func TestFig8BurstyTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("full parse run")
	}
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 10 {
		t.Fatalf("only %d sync points", len(res.Series))
	}
	if res.Bursts == 0 {
		t.Error("parsing must generate bursts of marker activation")
	}
	// Burstiness: the peak must tower over the mean, and quiet barriers
	// must exist (the paper's plot swings between ~0 and >30).
	if float64(res.Max) < 3*res.Mean {
		t.Errorf("max %d not bursty vs mean %.1f", res.Max, res.Mean)
	}
	quiet := 0
	for _, v := range res.Series {
		if float64(v) < res.Mean/2 {
			quiet++
		}
	}
	if quiet == 0 {
		t.Error("no quiet synchronization points")
	}
}

func TestFig15SNAPWinsWithSteeperSlope(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig15(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.SNAP >= r.CM2 {
			t.Errorf("%d nodes: SNAP (%v) must beat the CM-2 model (%v) in range", r.Nodes, r.SNAP, r.CM2)
		}
	}
	// Around the paper's 6.4K point the gap is about an order of
	// magnitude.
	for _, r := range res.Rows {
		if r.Nodes == 6400 {
			ratio := float64(r.CM2) / float64(r.SNAP)
			if ratio < 5 || ratio > 30 {
				t.Errorf("6.4K ratio = %.1fx, paper ≈10x", ratio)
			}
		}
	}
	// SNAP's slope is steeper: its relative growth across the sweep
	// exceeds the CM-2 model's.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	snapGrowth := float64(last.SNAP) / float64(first.SNAP)
	cm2Growth := float64(last.CM2) / float64(first.CM2)
	if snapGrowth <= cm2Growth {
		t.Errorf("SNAP growth %.1fx must exceed CM-2 growth %.1fx", snapGrowth, cm2Growth)
	}
	// "The lines will cross when larger knowledge bases are used" —
	// beyond the 32K prototype capacity.
	if res.CrossoverNodes != 0 && res.CrossoverNodes < 32768 {
		t.Errorf("crossover at %d nodes, inside prototype capacity", res.CrossoverNodes)
	}
	if res.CrossoverNodes == 0 {
		t.Error("no extrapolated crossover found")
	}
}

func TestFig16AlphaSpeedupShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.PEs != 72 {
		t.Fatalf("final config has %d PEs, want 72", last.PEs)
	}
	// More α, more speedup at full configuration.
	if !(last.Speedup[1000] >= last.Speedup[100] && last.Speedup[100] > last.Speedup[10]) {
		t.Errorf("α ordering violated at 72 PEs: %v", last.Speedup)
	}
	// Paper: ~20-fold around α=100; typical α gives 18-33x at 72 PEs.
	if s := last.Speedup[100]; s < 15 || s > 40 {
		t.Errorf("α=100 speedup = %.1fx at 72 PEs, paper ≈20x", s)
	}
	if s := last.Speedup[1000]; s < 25 {
		t.Errorf("α=1000 speedup = %.1fx, want near-linear scaling", s)
	}
	// α=10 saturates early: its speedup at 72 PEs is far below α=1000's.
	if last.Speedup[10] > 0.8*last.Speedup[1000] {
		t.Errorf("α=10 did not saturate: %.1fx vs %.1fx", last.Speedup[10], last.Speedup[1000])
	}
	// Speedup for α=1000 is monotone in machine size.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Speedup[1000] < res.Rows[i-1].Speedup[1000]*0.95 {
			t.Errorf("α=1000 speedup regressed at %d PEs", res.Rows[i].PEs)
		}
	}
}

func TestFig17BetaSaturatesAbove16(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	byBeta := make(map[int]float64)
	for _, r := range res.Rows {
		byBeta[r.Beta] = r.Speedup
	}
	// Strong gains up to 16.
	if byBeta[16] < 4*byBeta[2] {
		t.Errorf("β=16 speedup %.1fx shows no overlap benefit over β=2 (%.1fx)", byBeta[16], byBeta[2])
	}
	// "Increasing the degree of β-parallelism above 16 had little impact".
	if byBeta[32] > 1.35*byBeta[16] {
		t.Errorf("β=32 (%.2fx) must not improve much over β=16 (%.2fx)", byBeta[32], byBeta[16])
	}
	// β=1 compares a program against itself plus one barrier: ≈1.
	if byBeta[1] < 0.98 || byBeta[1] > 1.02 {
		t.Errorf("β=1 speedup = %v, want ≈1", byBeta[1])
	}
}

func TestFig18PropagationDropsCollectGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig18(nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if ratio := res.PropagateRatio(); ratio < 3 {
		t.Errorf("propagation time dropped only %.1fx from 1 to 16 clusters (paper ≈10x)", ratio)
	}
	if last.GroupTime[isa.GroupCollect] <= first.GroupTime[isa.GroupCollect] {
		t.Error("collection must take slightly longer as clusters increase")
	}
	if last.Total >= first.Total {
		t.Error("total time must fall with more clusters")
	}
	// Propagation stays the dominant class at every size.
	for _, r := range res.Rows {
		if r.GroupTime[isa.GroupPropagate] < r.GroupTime[isa.GroupSetClear] {
			t.Errorf("at %d clusters propagation lost dominance", r.Clusters)
		}
	}
}

func TestFig19PropagationDominatesAndGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig19(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Rows {
		// Propagation dominates at every size (paper's Fig. 19 headline;
		// our non-propagation share moves a few points the other way —
		// see EXPERIMENTS.md — but dominance holds throughout).
		if r.PropFrac < 0.45 {
			t.Errorf("%d nodes: propagation share %.1f%%, must dominate", r.Nodes, r.PropFrac*100)
		}
		if r.GroupTime[isa.GroupPropagate] < r.GroupTime[isa.GroupBoolean] {
			t.Errorf("%d nodes: propagation not the largest class", r.Nodes)
		}
		if i > 0 && r.Total <= res.Rows[i-1].Total {
			t.Errorf("total time must grow with the knowledge base (%d nodes)", r.Nodes)
		}
	}
}

func TestFig20PropagationsGrowThenSaturate(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig20(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Propagates <= first.Propagates {
		t.Error("propagation count must grow with knowledge-base size")
	}
	if last.PropSteps <= first.PropSteps {
		t.Error("propagation steps must grow with knowledge-base size")
	}
	// Saturation: the final doubling must grow the propagate count far
	// less than the first doubling did (cancel-marker cap).
	growEarly := float64(res.Rows[1].Propagates) / float64(res.Rows[0].Propagates)
	growLate := float64(res.Rows[len(res.Rows)-1].Propagates) / float64(res.Rows[len(res.Rows)-2].Propagates)
	if growLate > growEarly {
		t.Errorf("no saturation: early growth %.2fx, late growth %.2fx", growEarly, growLate)
	}
	// Non-propagation counts stay in a narrow band relative to
	// propagation-step explosion.
	if float64(last.SetClear)/float64(first.SetClear) > 3 {
		t.Error("set/clear counts must stay roughly constant")
	}
}

func TestFig21OverheadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res, err := Fig21(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	first, last := rows[0], rows[len(rows)-1]
	// Broadcast: small and constant (global bus).
	if first.Overhead.Broadcast != last.Overhead.Broadcast {
		t.Errorf("broadcast overhead must stay constant: %v -> %v",
			first.Overhead.Broadcast, last.Overhead.Broadcast)
	}
	// Communication: zero on one cluster, grows slowly after.
	if first.Overhead.Communication != 0 {
		t.Error("single cluster has no inter-cluster communication")
	}
	if last.Overhead.Communication == 0 {
		t.Error("32 clusters must communicate")
	}
	// Synchronization: grows with cluster count but stays small.
	for i := 1; i < len(rows); i++ {
		if rows[i].Overhead.Synchronization <= rows[i-1].Overhead.Synchronization {
			t.Error("barrier overhead must grow with cluster count")
			break
		}
	}
	if last.Overhead.Synchronization > last.Overhead.Collection {
		t.Error("collection must be the most expensive overhead")
	}
	// Collection: the steepest-growing component.
	if last.Overhead.Collection <= first.Overhead.Collection {
		t.Error("collection overhead must grow with cluster count")
	}
}

func TestRenderings(t *testing.T) {
	// The text renderers must produce non-empty aligned tables without
	// re-running experiments.
	var f18 Fig18Result
	f18.Rows = append(f18.Rows, groupRow(4, &trace.Profile{}))
	if !strings.Contains(f18.String(), "Fig. 18") {
		t.Error("Fig18 rendering")
	}
	f8 := Fig8Result{Series: []int64{5, 40, 0}, Mean: 15, Max: 40, Bursts: 1}
	if !strings.Contains(f8.String(), "bursts>30: 1") {
		t.Error("Fig8 rendering")
	}
}
