package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/timing"
)

// Fig19Row is one knowledge-base size's per-class execution time.
type Fig19Row struct {
	Nodes     int
	GroupTime map[isa.Group]timing.Time
	Total     timing.Time
	PropFrac  float64 // propagation's share of total instruction time
}

// Fig19Result shows the profile against knowledge-base size: propagation
// dominates throughout and its share grows as the network grows.
type Fig19Result struct {
	Rows []Fig19Row
}

// DefaultFig19Sizes sweeps 1K..16K-node knowledge bases.
var DefaultFig19Sizes = []int{1000, 2000, 4000, 8000, 16000}

// Fig19 runs the parse workload at each knowledge-base size on the
// 16-cluster configuration.
func Fig19(sizes []int) (*Fig19Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig19Sizes
	}
	out := &Fig19Result{}
	for _, n := range sizes {
		prof, err := nluProfile(n, 16, 1)
		if err != nil {
			return nil, err
		}
		r18 := groupRow(0, prof)
		row := Fig19Row{Nodes: n, GroupTime: r18.GroupTime, Total: r18.Total}
		if row.Total > 0 {
			row.PropFrac = float64(row.GroupTime[isa.GroupPropagate]) / float64(row.Total)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the sweep.
func (f *Fig19Result) String() string {
	return renderGroupSweep("Fig. 19: instruction time vs knowledge-base size (16 clusters)",
		"KB nodes", f.Rows, func(r Fig19Row) string { return fmt.Sprint(r.Nodes) })
}
