package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// Fig18Row is one cluster count's per-instruction-class execution time on
// a fixed NLU workload.
type Fig18Row struct {
	Clusters  int
	GroupTime map[isa.Group]timing.Time
	Total     timing.Time
}

// Fig18Result shows how the instruction profile shifts as the array grows
// from 1 to 16 clusters (the paper: propagation time drops by nearly an
// order of magnitude while collection grows slightly).
type Fig18Result struct {
	Rows []Fig18Row
}

// DefaultFig18Clusters sweeps the paper's 1..16 cluster range.
var DefaultFig18Clusters = []int{1, 2, 4, 8, 16}

// profiledGroups are the classes plotted in Figs. 18 and 19.
var profiledGroups = []isa.Group{
	isa.GroupPropagate, isa.GroupSetClear, isa.GroupBoolean,
	isa.GroupSearch, isa.GroupCollect, isa.GroupNodeMaint,
}

// Fig18 runs the same parse workload at each cluster count.
func Fig18(clusterCounts []int) (*Fig18Result, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = DefaultFig18Clusters
	}
	out := &Fig18Result{}
	for _, c := range clusterCounts {
		prof, err := nluProfile(4000, c, 1)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, groupRow(c, prof))
	}
	return out, nil
}

func groupRow(clusters int, prof *trace.Profile) Fig18Row {
	row := Fig18Row{Clusters: clusters, GroupTime: make(map[isa.Group]timing.Time)}
	for _, g := range profiledGroups {
		row.GroupTime[g] = prof.GroupTime[g]
		row.Total += prof.GroupTime[g]
	}
	return row
}

// nluProfile parses the sentence batch on a fresh machine and returns the
// merged profile.
func nluProfile(nodes, clusters, repeat int) (*trace.Profile, error) {
	m, g, err := nluSetup(nodes, clusters, machine.PaperConfig())
	if err != nil {
		return nil, err
	}
	p := newParser(m, g)
	prof, _, err := parseBatch(p, g, repeat)
	return prof, err
}

// PropagateRatio reports first-row propagate time over last-row propagate
// time (the near-order-of-magnitude reduction headline).
func (f *Fig18Result) PropagateRatio() float64 {
	if len(f.Rows) < 2 {
		return 1
	}
	a := f.Rows[0].GroupTime[isa.GroupPropagate]
	b := f.Rows[len(f.Rows)-1].GroupTime[isa.GroupPropagate]
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// String renders the sweep.
func (f *Fig18Result) String() string {
	return renderGroupSweep("Fig. 18: instruction time vs number of clusters",
		"Clusters", f.Rows, func(r Fig18Row) string { return fmt.Sprint(r.Clusters) })
}

func renderGroupSweep[T any](title, axis string, rowsIn []T, label func(T) string) string {
	header := []string{axis}
	for _, g := range profiledGroups {
		header = append(header, g.String())
	}
	header = append(header, "total")
	var rows [][]string
	for _, r := range rowsIn {
		var gt map[isa.Group]timing.Time
		var total timing.Time
		switch v := any(r).(type) {
		case Fig18Row:
			gt, total = v.GroupTime, v.Total
		case Fig19Row:
			gt, total = v.GroupTime, v.Total
		}
		row := []string{label(r)}
		for _, g := range profiledGroups {
			row = append(row, gt[g].String())
		}
		row = append(row, total.String())
		rows = append(rows, row)
	}
	return title + "\n" + table(header, rows)
}
