package experiments

import (
	"fmt"

	"snap1/internal/isa"
)

// Fig20Row counts operations executed for the parse workload at one
// knowledge-base size.
type Fig20Row struct {
	Nodes      int
	Propagates int64 // PROPAGATE instructions (hypothesis verification grows these)
	PropSteps  int64 // individual marker propagation steps
	SetClear   int64
	Boolean    int64
	Collect    int64
	Search     int64
}

// Fig20Result shows the operation counts against knowledge-base size: the
// number of propagations grows as larger networks activate more
// irrelevant candidates that must be removed with cancel markers, while
// set/clear, boolean, and collection counts stay roughly constant.
type Fig20Result struct {
	Rows []Fig20Row
}

// Fig20 counts operations over a repeated parse batch per KB size.
func Fig20(sizes []int, repeat int) (*Fig20Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig19Sizes
	}
	if repeat <= 0 {
		repeat = 3
	}
	out := &Fig20Result{}
	for _, n := range sizes {
		prof, err := nluProfile(n, 16, repeat)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig20Row{
			Nodes:      n,
			Propagates: prof.GroupCount[isa.GroupPropagate],
			PropSteps:  prof.PropSteps,
			SetClear:   prof.GroupCount[isa.GroupSetClear],
			Boolean:    prof.GroupCount[isa.GroupBoolean],
			Collect:    prof.GroupCount[isa.GroupCollect],
			Search:     prof.GroupCount[isa.GroupSearch],
		})
	}
	return out, nil
}

// String renders the counts.
func (f *Fig20Result) String() string {
	header := []string{"KB nodes", "propagates", "prop steps", "set/clear", "boolean", "search", "collect"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.Propagates),
			fmt.Sprint(r.PropSteps),
			fmt.Sprint(r.SetClear),
			fmt.Sprint(r.Boolean),
			fmt.Sprint(r.Collect),
			fmt.Sprint(r.Search),
		})
	}
	return "Fig. 20: operation counts vs knowledge-base size\n" + table(header, rows)
}
