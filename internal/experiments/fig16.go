package experiments

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Fig16Alphas are the α-parallelism levels swept (source activations per
// PROPAGATE), matching the paper's 10..1000 range.
var Fig16Alphas = []int{10, 100, 1000}

// fig16Config is one point on the processor axis.
type fig16Config struct {
	clusters, mus, extra int
}

// fig16Configs sweeps the array from a single 3-PE cluster to the full
// 72-PE evaluation configuration.
var fig16Configs = []fig16Config{
	{1, 1, 0},  // 3 PEs
	{1, 2, 0},  // 4
	{2, 2, 0},  // 8
	{4, 2, 0},  // 16
	{4, 2, 4},  // 20
	{8, 2, 0},  // 32
	{8, 2, 8},  // 40
	{16, 2, 0}, // 64
	{16, 2, 8}, // 72
}

// Fig16Row is one machine size's speedup per α level.
type Fig16Row struct {
	PEs      int
	Clusters int
	MUs      int
	Speedup  map[int]float64 // α -> speedup vs the 3-PE configuration
}

// Fig16Result is the regenerated α-parallelism speedup study.
type Fig16Result struct {
	Rows  []Fig16Row
	Depth int
}

// Fig16 measures propagation speedup under α-parallelism: α chains of
// fixed depth propagate simultaneously from a single PROPAGATE statement,
// across machine sizes from 3 to 72 PEs. The network stays at its full
// α=1000 size for every run; smaller α levels activate nested subsets of
// the chain sources, as the paper varied activation over a fixed
// knowledge base.
func Fig16() (*Fig16Result, error) {
	const depth = 12
	w, err := kbgen.NestedChains(Fig16Alphas, depth, kbSeed)
	if err != nil {
		return nil, err
	}
	w.KB.Preprocess()
	out := &Fig16Result{Depth: depth}
	base := make(map[int]timing.Time)

	for _, fc := range fig16Configs {
		cfg := machine.DefaultConfig()
		cfg.Clusters = fc.clusters
		cfg.MUsPerCluster = fc.mus
		cfg.ExtraMUClusters = fc.extra
		cfg.Deterministic = true
		cfg.Partition = partition.Semantic
		row := Fig16Row{
			PEs:      cfg.PEs(),
			Clusters: fc.clusters,
			MUs:      cfg.MarkerUnits(),
			Speedup:  make(map[int]float64),
		}
		for ai, alpha := range Fig16Alphas {
			t, err := alphaRun(cfg, w, ai, alpha, depth)
			if err != nil {
				return nil, err
			}
			if fc == fig16Configs[0] {
				base[alpha] = t
			}
			row.Speedup[alpha] = float64(base[alpha]) / float64(t)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// alphaRun times one PROPAGATE activating the first levelIdx+1 nested
// seed-color sets (alpha chain sources in total).
func alphaRun(cfg machine.Config, w *kbgen.Workload, levelIdx, alpha, depth int) (timing.Time, error) {
	if need := (w.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		return 0, err
	}
	if err := m.LoadKB(w.KB); err != nil {
		return 0, err
	}
	p := isa.NewProgram()
	src, dst := semnet.MarkerID(0), semnet.MarkerID(1)
	for j := 0; j <= levelIdx; j++ {
		p.SearchColor(w.Seeds[j], src, 0)
	}
	p.Propagate(src, dst, rules.Path(w.Rel), semnet.FuncAdd)
	p.Barrier()
	res, err := m.Run(p)
	if err != nil {
		return 0, err
	}
	if got, want := m.MarkerCount(dst), alpha*depth; got != want {
		return 0, fmt.Errorf("fig16: propagation reached %d nodes, want %d", got, want)
	}
	return res.Time, nil
}

// String renders the speedup table.
func (f *Fig16Result) String() string {
	header := []string{"PEs", "Clusters", "MUs"}
	for _, a := range Fig16Alphas {
		header = append(header, fmt.Sprintf("α=%d", a))
	}
	var rows [][]string
	for _, r := range f.Rows {
		row := []string{fmt.Sprint(r.PEs), fmt.Sprint(r.Clusters), fmt.Sprint(r.MUs)}
		for _, a := range Fig16Alphas {
			row = append(row, fmt.Sprintf("%.1fx", r.Speedup[a]))
		}
		rows = append(rows, row)
	}
	return "Fig. 16: speedup vs processors under α-parallelism\n" + table(header, rows)
}
