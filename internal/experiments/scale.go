package experiments

import (
	"fmt"

	"snap1/internal/inherit"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/nlu"
	"snap1/internal/timing"
)

// The paper's introduction positions SNAP-1 as "a testbed for an
// architecture which is being designed to handle a one-million concept
// knowledge base". This study runs that design exploration on the
// simulator: the array grows with the knowledge base (constant
// nodes-per-cluster load where possible), and the question is how
// inference time scales when hardware tracks knowledge.

// ScalePoint is one (knowledge base, array) size.
type ScalePoint struct {
	Nodes           int
	Clusters        int
	NodesPerCluster int
}

// DefaultScalePoints grows from the evaluation configuration to a
// quarter-million concepts. The million-concept point (256 clusters ×
// 4096 nodes) is included by cmd/figures -fig scale -million.
var DefaultScalePoints = []ScalePoint{
	{16_000, 16, 1024},
	{32_000, 32, 1024}, // the SNAP-1 prototype's full capacity
	{128_000, 64, 2048},
	{256_000, 128, 2048},
}

// MillionPoint is the SNAP-2 design target.
var MillionPoint = ScalePoint{1_000_000, 256, 4096}

// ScaleRow is one point's measurements.
type ScaleRow struct {
	Point       ScalePoint
	PEs         int
	InheritTime timing.Time
	InheritNode int         // concepts reached
	ParseTime   timing.Time // one representative sentence, M.B. stage
	ParseMsgs   int64
}

// ScaleResult is the scaling exploration.
type ScaleResult struct {
	Rows []ScaleRow
}

// Scale runs inheritance and one sentence parse at every point.
func Scale(points []ScalePoint) (*ScaleResult, error) {
	if len(points) == 0 {
		points = DefaultScalePoints
	}
	out := &ScaleResult{}
	for _, pt := range points {
		g, err := kbgen.Generate(kbgen.Params{Nodes: pt.Nodes, Seed: kbSeed, WithDomain: true})
		if err != nil {
			return nil, err
		}
		g.KB.Preprocess()
		cfg := machine.DefaultConfig()
		cfg.Clusters = pt.Clusters
		cfg.NodesPerCluster = pt.NodesPerCluster
		cfg.ExtraMUClusters = pt.Clusters / 2
		cfg.Deterministic = true
		if need := (g.KB.NumNodes() + pt.Clusters - 1) / pt.Clusters; need > cfg.NodesPerCluster {
			cfg.NodesPerCluster = need
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.LoadKB(g.KB); err != nil {
			return nil, err
		}

		inh, err := inherit.Inheritance(m, g)
		if err != nil {
			return nil, err
		}
		m.ClearMarkers()
		parser := nlu.NewParser(m, g)
		s := g.Domain.Sentences[1] // "Guerrillas bombed the embassy."
		pres, err := parser.Parse(s)
		if err != nil {
			return nil, err
		}
		if pres.Winner != s.Expect {
			return nil, fmt.Errorf("scale %d: parsed %q, want %q", pt.Nodes, pres.Winner, s.Expect)
		}
		out.Rows = append(out.Rows, ScaleRow{
			Point:       pt,
			PEs:         cfg.PEs(),
			InheritTime: inh.Time,
			InheritNode: inh.Reached,
			ParseTime:   pres.MBTime,
			ParseMsgs:   pres.Profile.PropMessages,
		})
	}
	return out, nil
}

// String renders the exploration.
func (r *ScaleResult) String() string {
	header := []string{"KB nodes", "Clusters", "PEs", "Inherit (concepts)", "Inherit time", "Parse time", "Parse msgs"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Point.Nodes),
			fmt.Sprint(row.Point.Clusters),
			fmt.Sprint(row.PEs),
			fmt.Sprint(row.InheritNode),
			row.InheritTime.String(),
			row.ParseTime.String(),
			fmt.Sprint(row.ParseMsgs),
		})
	}
	return "Scaling study: array growing with the knowledge base (the paper's million-concept goal)\n" +
		table(header, rows)
}
