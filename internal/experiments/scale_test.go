package experiments

import "testing"

func TestScaleStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large generated networks")
	}
	res, err := Scale(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(DefaultScalePoints) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]

	// The knowledge base grows 16x across the sweep...
	if last.InheritNode < 10*first.InheritNode {
		t.Errorf("hierarchy did not scale: %d -> %d concepts", first.InheritNode, last.InheritNode)
	}
	// ...but with the array growing alongside it, inference time grows
	// far sublinearly — the design argument for the million-concept
	// machine. Allow generous slack; the claim is "not ∝ KB".
	inheritGrowth := float64(last.InheritTime) / float64(first.InheritTime)
	if inheritGrowth > 8 {
		t.Errorf("inheritance time grew %.1fx over a 16x KB (want strongly sublinear)", inheritGrowth)
	}
	parseGrowth := float64(last.ParseTime) / float64(first.ParseTime)
	if parseGrowth > 8 {
		t.Errorf("parse time grew %.1fx over a 16x KB (want strongly sublinear)", parseGrowth)
	}
	// Parsing stays real-time at every scale.
	for _, r := range res.Rows {
		if r.ParseTime.Seconds() > 1 {
			t.Errorf("%d nodes: parse %v is not real-time", r.Point.Nodes, r.ParseTime)
		}
	}
	// Inter-cluster traffic grows with scale (the cost that motivates
	// the paper's interconnect discussion).
	if last.ParseMsgs <= first.ParseMsgs {
		t.Error("message traffic must grow with scale")
	}
}
