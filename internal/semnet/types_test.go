package semnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarkerClasses(t *testing.T) {
	if NumMarkers != 128 || NumComplexMarkers != 64 || NumBinaryMarkers != 64 {
		t.Fatal("marker capacity constants drifted from the paper")
	}
	for i := 0; i < NumComplexMarkers; i++ {
		if !MarkerID(i).IsComplex() {
			t.Fatalf("marker %d should be complex", i)
		}
	}
	for i := 0; i < NumBinaryMarkers; i++ {
		m := Binary(i)
		if m.IsComplex() {
			t.Fatalf("Binary(%d) = %d should not be complex", i, m)
		}
		if !m.Valid() {
			t.Fatalf("Binary(%d) invalid", i)
		}
	}
	if MarkerID(128).Valid() {
		t.Error("marker 128 must be invalid")
	}
}

func TestFuncApply(t *testing.T) {
	cases := []struct {
		fn   FuncCode
		v, w float32
		want float32
	}{
		{FuncNop, 3, 9, 3},
		{FuncAdd, 3, 9, 12},
		{FuncMin, 3, 9, 3},
		{FuncMin, 9, 3, 3},
		{FuncMax, 3, 9, 9},
		{FuncMul, 3, 9, 27},
		{FuncDec, 9, 3, 6},
	}
	for _, c := range cases {
		if got := c.fn.Apply(c.v, c.w); got != c.want {
			t.Errorf("%v.Apply(%v,%v) = %v, want %v", c.fn, c.v, c.w, got, c.want)
		}
	}
}

func TestFuncValid(t *testing.T) {
	for _, fn := range []FuncCode{FuncNop, FuncAdd, FuncMin, FuncMax, FuncMul, FuncDec} {
		if !fn.Valid() {
			t.Errorf("%v should be valid", fn)
		}
		if fn.String() == "" {
			t.Errorf("%v has empty name", fn)
		}
	}
	if FuncCode(250).Valid() {
		t.Error("function 250 must be invalid")
	}
}

// Merge must be commutative and associative for every function code so
// that final marker state is independent of message arrival order.
func TestMergeOrderFree(t *testing.T) {
	fns := []FuncCode{FuncNop, FuncAdd, FuncMin, FuncMax, FuncMul, FuncDec}
	f := func(a, b, c float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) || math.IsNaN(float64(c)) {
			return true
		}
		for _, fn := range fns {
			if fn.Merge(a, b) != fn.Merge(b, a) {
				return false
			}
			if fn.Merge(fn.Merge(a, b), c) != fn.Merge(a, fn.Merge(b, c)) {
				return false
			}
			// Idempotence: re-delivery of the same value is a no-op.
			if fn.Merge(a, a) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
