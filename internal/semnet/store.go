package semnet

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Store holds one cluster's partition of the knowledge base in the three
// physical tables of the paper's Fig. 4:
//
//   - the node table (color, function, complex-marker value and origin
//     registers, indexed by local node number),
//   - the marker status table (one bit per node per marker; the simulated
//     machine processes W=32 nodes per status-word operation and all
//     timing charges that width, while the host packs the rows into one
//     contiguous slab of 64-bit words and sweeps two simulated words per
//     load),
//   - the relation table (up to 16 outgoing links per node), stored as a
//     CSR arena: one packed []Link slab plus per-node offset and count
//     columns, so a node's links are a contiguous sub-slice of one
//     allocation instead of a pointer-chased per-node heap slice.
//
// A Store is owned by a single cluster and is not safe for concurrent
// mutation; the cluster's multiport-memory discipline (internal/mpmem)
// serializes writers exactly as the hardware arbiter does.
type Store struct {
	capacity int
	n        int // local nodes stored

	// Node table.
	color  []Color
	fn     []FuncCode
	global []NodeID // local -> global ID

	// Marker status table: one backing slab holding all NumMarkers rows,
	// each rowWords 64-bit host words long (sized by capacity, so rows
	// never reallocate and a clone is a single allocation + memclr).
	// status[m] is the row sub-slice; bit b of word w in row m means
	// marker m is set at local node w*HostWordBits+b. Bits at or beyond
	// n are always zero — every whole-row kernel masks the tail.
	statusSlab []uint64
	rowWords   int
	status     [NumMarkers][]uint64

	// Complex-marker registers, allocated on first use per marker.
	value  [NumComplexMarkers][]float32
	origin [NumComplexMarkers][]NodeID

	// Relation table: CSR arena. Node local's links occupy
	// relLinks[relOff[local] : relOff[local]+relCnt[local]]. Mutators
	// patch blocks in place when they fit (or sit at the slab tail) and
	// otherwise relocate the block to the tail, leaving a hole; holes
	// are compacted away once they dominate the slab. Unlike a strict
	// n+1-offset CSR, the explicit count column makes single-node
	// mutation O(degree) instead of O(total links).
	relOff   []int32
	relCnt   []int32
	relLinks []Link
	relHoles int // dead slots abandoned by relocating mutators

	// sharedTopo marks the node and relation tables as aliased with at
	// least one other store (CloneTopologyShared). A shared store treats
	// those tables as immutable: any topology mutator first materializes
	// a private copy (copy-on-write), so siblings never observe writes.
	// Atomic because a pool brings replicas up concurrently, and every
	// clone of one prototype store marks the prototype shared.
	sharedTopo atomic.Bool
}

// NewStore returns a store with room for capacity local nodes.
func NewStore(capacity int) *Store {
	s := &Store{
		capacity: capacity,
		color:    make([]Color, 0, capacity),
		fn:       make([]FuncCode, 0, capacity),
		global:   make([]NodeID, 0, capacity),
		relOff:   make([]int32, 0, capacity),
		relCnt:   make([]int32, 0, capacity),
	}
	s.initStatus()
	return s
}

// initStatus allocates the status slab and carves the per-marker rows.
func (s *Store) initStatus() {
	s.rowWords = (s.capacity + HostWordBits - 1) / HostWordBits
	s.statusSlab = make([]uint64, NumMarkers*s.rowWords)
	for m := range s.status {
		s.status[m] = s.statusSlab[m*s.rowWords : (m+1)*s.rowWords : (m+1)*s.rowWords]
	}
}

// Words reports the number of simulated W=32-bit status words per marker
// row — the unit every status-sweep instruction charges, regardless of
// the wider words the host kernels actually load.
func (s *Store) Words() int { return (s.n + WordBits - 1) / WordBits }

// hostWords reports how many 64-bit host words cover the node range.
func (s *Store) hostWords() int { return (s.n + HostWordBits - 1) / HostWordBits }

// CloneTopology returns a new store holding the same node and relation
// tables but entirely fresh (cleared) marker state. The relation arena is
// deep-copied (and compacted) so the clone's mutation instructions cannot
// alias the original's slab. This is the download-once/replicate step of
// a query-serving pool: replicas share one partitioned network without
// repeating preprocessing or partitioning.
func (s *Store) CloneTopology() *Store {
	c := &Store{
		capacity: s.capacity,
		n:        s.n,
		color:    append([]Color(nil), s.color...),
		fn:       append([]FuncCode(nil), s.fn...),
		global:   append([]NodeID(nil), s.global...),
		relOff:   make([]int32, len(s.relOff)),
		relCnt:   append([]int32(nil), s.relCnt...),
		relLinks: make([]Link, 0, len(s.relLinks)-s.relHoles),
	}
	for i := 0; i < s.n; i++ {
		off := s.relOff[i]
		c.relOff[i] = int32(len(c.relLinks))
		c.relLinks = append(c.relLinks, s.relLinks[off:off+s.relCnt[i]]...)
	}
	c.initStatus()
	return c
}

// CloneTopologyShared is CloneTopology's zero-copy fast path: the clone
// aliases the source's node and relation tables instead of deep-copying
// them, allocating only fresh (cleared) marker state — with the slab
// layout, one allocation. Both stores are marked shared; the first
// topology mutation on either side materializes a private copy first
// (copy-on-write), so the stores stay semantically independent while the
// common read-only case — a query-serving pool stamping out replicas of
// one downloaded network — costs O(markers) instead of O(nodes + links)
// per replica.
func (s *Store) CloneTopologyShared() *Store {
	s.sharedTopo.Store(true)
	c := &Store{
		capacity: s.capacity,
		n:        s.n,
		color:    s.color,
		fn:       s.fn,
		global:   s.global,
		relOff:   s.relOff,
		relCnt:   s.relCnt,
		relLinks: s.relLinks,
		relHoles: s.relHoles,
	}
	c.sharedTopo.Store(true)
	c.initStatus()
	return c
}

// own materializes a private copy of the shared node and relation tables
// before a topology mutation. No-op on an unshared store.
func (s *Store) own() {
	if !s.sharedTopo.Load() {
		return
	}
	color := make([]Color, len(s.color), s.capacity)
	copy(color, s.color)
	fn := make([]FuncCode, len(s.fn), s.capacity)
	copy(fn, s.fn)
	global := make([]NodeID, len(s.global), s.capacity)
	copy(global, s.global)
	relOff := make([]int32, len(s.relOff), s.capacity)
	copy(relOff, s.relOff)
	relCnt := make([]int32, len(s.relCnt), s.capacity)
	copy(relCnt, s.relCnt)
	relLinks := append([]Link(nil), s.relLinks...)
	s.color, s.fn, s.global = color, fn, global
	s.relOff, s.relCnt, s.relLinks = relOff, relCnt, relLinks
	s.sharedTopo.Store(false)
}

// NumNodes reports the number of local nodes stored.
func (s *Store) NumNodes() int { return s.n }

// Capacity reports the store's local node capacity.
func (s *Store) Capacity() int { return s.capacity }

// AddNode appends a node to the node table and returns its local index.
func (s *Store) AddNode(global NodeID, color Color, fn FuncCode) (int, error) {
	if s.n >= s.capacity {
		return 0, fmt.Errorf("%w: cluster store full (%d nodes)", ErrCapacity, s.capacity)
	}
	s.own()
	local := s.n
	s.n++
	s.color = append(s.color, color)
	s.fn = append(s.fn, fn)
	s.global = append(s.global, global)
	s.relOff = append(s.relOff, int32(len(s.relLinks)))
	s.relCnt = append(s.relCnt, 0)
	return local, nil
}

// SetLinks installs the relation-table entries for a local node. The
// links are copied into the store's CSR arena; the caller keeps ownership
// of the argument slice.
func (s *Store) SetLinks(local int, links []Link) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	if len(links) > RelationSlots {
		return fmt.Errorf("%w: %d links exceed %d relation slots", ErrCapacity, len(links), RelationSlots)
	}
	s.own()
	s.setBlock(local, links)
	return nil
}

// setBlock replaces node local's arena block with links: shrinking in
// place when the new block fits, extending in place when the block sits
// at the slab tail, and otherwise relocating to the tail.
func (s *Store) setBlock(local int, links []Link) {
	off, cnt := s.relOff[local], s.relCnt[local]
	switch {
	case len(links) <= int(cnt):
		copy(s.relLinks[off:], links)
		s.relHoles += int(cnt) - len(links)
	case int(off)+int(cnt) == len(s.relLinks):
		s.relLinks = append(s.relLinks[:off], links...)
	default:
		s.relHoles += int(cnt)
		s.relOff[local] = int32(len(s.relLinks))
		s.relLinks = append(s.relLinks, links...)
	}
	s.relCnt[local] = int32(len(links))
	s.maybeCompact()
}

// maybeCompact repacks the arena once relocation holes dominate it.
// Only called from mutators, after own(), so aliased slabs are never
// rewritten.
func (s *Store) maybeCompact() {
	if s.relHoles > 64 && s.relHoles*2 > len(s.relLinks) {
		s.compact()
	}
}

// compact rebuilds the slab densely in local-node order.
func (s *Store) compact() {
	packed := make([]Link, 0, len(s.relLinks)-s.relHoles)
	for i := 0; i < s.n; i++ {
		off := s.relOff[i]
		s.relOff[i] = int32(len(packed))
		packed = append(packed, s.relLinks[off:off+s.relCnt[i]]...)
	}
	s.relLinks, s.relHoles = packed, 0
}

// Global returns the global NodeID of a local node.
func (s *Store) Global(local int) NodeID { return s.global[local] }

// Globals returns the local→global ID column of the node table. The
// returned slice is owned by the store and must not be modified.
func (s *Store) Globals() []NodeID { return s.global }

// Color returns the node-table color of a local node.
func (s *Store) Color(local int) Color { return s.color[local] }

// Fn returns the node-table propagation function of a local node.
func (s *Store) Fn(local int) FuncCode { return s.fn[local] }

// Links returns the relation-table entries of a local node: a contiguous
// sub-slice of the CSR arena. The returned slice is owned by the store
// and must not be modified.
func (s *Store) Links(local int) []Link {
	off, end := s.relOff[local], s.relOff[local]+s.relCnt[local]
	return s.relLinks[off:end:end]
}

// NumLinks reports the number of live relation-table entries.
func (s *Store) NumLinks() int { return len(s.relLinks) - s.relHoles }

func (s *Store) ensureValues(m MarkerID) {
	if s.value[m] == nil {
		s.value[m] = make([]float32, s.capacity)
		s.origin[m] = make([]NodeID, s.capacity)
	}
}

// Set sets marker m at a local node and reports whether the bit was
// previously clear (the "newly activated" signal that drives propagation).
func (s *Store) Set(local int, m MarkerID) bool {
	w, b := local/HostWordBits, uint(local%HostWordBits)
	old := s.status[m][w]
	s.status[m][w] = old | 1<<b
	return old&(1<<b) == 0
}

// Clear clears marker m at a local node.
func (s *Store) Clear(local int, m MarkerID) {
	w, b := local/HostWordBits, uint(local%HostWordBits)
	s.status[m][w] &^= 1 << b
}

// Test reports whether marker m is set at a local node.
func (s *Store) Test(local int, m MarkerID) bool {
	w, b := local/HostWordBits, uint(local%HostWordBits)
	return s.status[m][w]&(1<<b) != 0
}

// StatusRow returns marker m's packed status row (64-bit host words,
// ascending locals; bits at or beyond NumNodes are zero). Read-only:
// the slice is owned by the store.
func (s *Store) StatusRow(m MarkerID) []uint64 {
	return s.status[m][:s.hostWords()]
}

// ValueRow returns marker m's value-register column, or nil when m is
// binary or the registers were never written (all values zero either
// way). Read-only: the slice is owned by the store.
func (s *Store) ValueRow(m MarkerID) []float32 {
	if !m.IsComplex() {
		return nil
	}
	return s.value[m]
}

// SetValue writes the complex-marker value and origin registers.
// Binary markers have no registers; the call is ignored for them.
func (s *Store) SetValue(local int, m MarkerID, v float32, origin NodeID) {
	if !m.IsComplex() {
		return
	}
	s.ensureValues(m)
	s.value[m][local] = v
	s.origin[m][local] = origin
}

// Value reads a complex marker's value register (0 for binary markers or
// never-written registers).
func (s *Store) Value(local int, m MarkerID) float32 {
	if !m.IsComplex() || s.value[m] == nil {
		return 0
	}
	return s.value[m][local]
}

// Origin reads a complex marker's origin-address register.
func (s *Store) Origin(local int, m MarkerID) NodeID {
	if !m.IsComplex() || s.origin[m] == nil {
		return 0
	}
	return s.origin[m][local]
}

// lastHostWordMask returns the valid-bit mask for the final host word.
func (s *Store) lastHostWordMask() uint64 {
	r := uint(s.n % HostWordBits)
	if r == 0 {
		return ^uint64(0)
	}
	return (1 << r) - 1
}

// And computes m3 = m1 AND m2 over the whole partition and returns the
// number of simulated W=32 status words processed, the MU's unit of work
// for global boolean operations (the host sweeps 64-bit words). For a
// complex m3, fn combines the operand values at every newly-set node.
func (s *Store) And(m1, m2, m3 MarkerID, fn FuncCode) int {
	r1, r2, r3 := s.status[m1], s.status[m2], s.status[m3]
	complex3 := m3.IsComplex()
	for w := s.hostWords() - 1; w >= 0; w-- {
		w1, w2 := r1[w], r2[w]
		res := w1 & w2
		r3[w] = res
		if res != 0 && complex3 {
			s.combineValues(w, res, w1, w2, m1, m2, m3, fn)
		}
	}
	return s.Words()
}

// Or computes m3 = m1 OR m2 over the whole partition and returns simulated
// words processed. Values for a complex m3 are merged from whichever
// operand is set (m1 preferred when both are).
func (s *Store) Or(m1, m2, m3 MarkerID, fn FuncCode) int {
	r1, r2, r3 := s.status[m1], s.status[m2], s.status[m3]
	complex3 := m3.IsComplex()
	for w := s.hostWords() - 1; w >= 0; w-- {
		w1, w2 := r1[w], r2[w]
		res := w1 | w2
		r3[w] = res
		if res != 0 && complex3 {
			s.combineValues(w, res, w1, w2, m1, m2, m3, fn)
		}
	}
	return s.Words()
}

// Not computes m2 = NOT m1 over the valid node range and returns simulated
// words processed. Bits beyond the partition's node count remain clear.
func (s *Store) Not(m1, m2 MarkerID) int {
	r1, r2 := s.status[m1], s.status[m2]
	hw := s.hostWords()
	for w := 0; w < hw; w++ {
		mask := ^uint64(0)
		if w == hw-1 {
			mask = s.lastHostWordMask()
		}
		r2[w] = ^r1[w] & mask
	}
	return s.Words()
}

// combineValues fills m3's value registers for every set bit in host word
// w. w1 and w2 are the operands' status words sampled BEFORE m3 was
// written, so the guard is correct even when m3 aliases an operand. Value
// registers of markers that were not set contribute zero: a cleared
// marker's stale register contents must not leak into results.
func (s *Store) combineValues(w int, set, w1, w2 uint64, m1, m2, m3 MarkerID, fn FuncCode) {
	s.ensureValues(m3)
	for set != 0 {
		b := bits.TrailingZeros64(set)
		set &^= 1 << uint(b)
		local := w*HostWordBits + b
		set1 := w1&(1<<uint(b)) != 0
		set2 := w2&(1<<uint(b)) != 0
		// The function combines only values that exist: where a single
		// operand is set (OR), its value passes through unchanged, so
		// min/mul combinations are not poisoned by a phantom zero.
		var res float32
		switch {
		case set1 && set2:
			res = fn.Apply(s.Value(local, m1), s.Value(local, m2))
		case set1:
			res = s.Value(local, m1)
		default:
			res = s.Value(local, m2)
		}
		switch {
		case m1.IsComplex() && set1:
			s.origin[m3][local] = s.Origin(local, m1)
		case m2.IsComplex() && set2:
			s.origin[m3][local] = s.Origin(local, m2)
		}
		s.value[m3][local] = res
	}
}

// SetAll sets marker m at every node with the given value and returns
// simulated words processed (the SET-MARKER sweep). The status row is
// word-filled with the tail masked; the value registers are filled with
// a doubling memmove rather than a per-node scalar loop.
func (s *Store) SetAll(m MarkerID, v float32) int {
	row := s.status[m]
	hw := s.hostWords()
	for w := 0; w < hw; w++ {
		mask := ^uint64(0)
		if w == hw-1 {
			mask = s.lastHostWordMask()
		}
		row[w] = mask
	}
	if m.IsComplex() {
		s.ensureValues(m)
		fillFloat32(s.value[m][:s.n], v)
	}
	return s.Words()
}

// fillFloat32 sets every element of dst to v by doubling copy (memmove),
// the scalar-row analogue of the status table's word fill.
func fillFloat32(dst []float32, v float32) {
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	for i := 1; i < len(dst); i *= 2 {
		copy(dst[i:], dst[:i])
	}
}

// ClearAll clears marker m everywhere and returns simulated words
// processed.
func (s *Store) ClearAll(m MarkerID) int {
	clear(s.status[m][:s.hostWords()])
	return s.Words()
}

// ClearAllMarkers clears every marker row — the host fast path behind
// Machine.ClearMarkers (per-instruction CLEAR-MARKER timing still goes
// through ClearAll). A well-filled store clears the whole slab in one
// memclr; a store holding far fewer nodes than its capacity clears only
// each row's used prefix (bits past n are zero by invariant).
func (s *Store) ClearAllMarkers() {
	hw := s.hostWords()
	if hw*2 >= s.rowWords {
		clear(s.statusSlab)
		return
	}
	for m := range s.status {
		clear(s.status[m][:hw])
	}
}

// ClearRows clears only the marker rows named by the (lo, hi) plane
// mask — bit i of lo selects complex marker i, bit i of hi selects
// binary marker 64+i — and returns the number of rows cleared. This is
// the masked analogue of ClearAllMarkers used between fused queries:
// a fused run dirties at most its programs' write sets, so the machine
// clears those planes instead of memclr'ing the whole 128-row slab.
func (s *Store) ClearRows(lo, hi uint64) int {
	hw := s.hostWords()
	rows := 0
	for w, word := range [2]uint64{lo, hi} {
		base := w * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			clear(s.status[base+b][:hw])
			rows++
		}
	}
	return rows
}

// RowsEqual reports whether markers a and b have bit-identical status
// rows — the runtime precondition for executing clone propagates from a
// fused plane group as one wide task stream.
func (s *Store) RowsEqual(a, b MarkerID) bool {
	ra, rb := s.status[a], s.status[b]
	for w := 0; w < s.hostWords(); w++ {
		if ra[w] != rb[w] {
			return false
		}
	}
	return true
}

// FuncAll applies fn with the given operand to the value register of every
// node where m is set (FUNC-MARKER) and returns simulated words processed.
// The bit row is scanned word-wise; the value updates are inherently
// per-node scalar work.
func (s *Store) FuncAll(m MarkerID, fn FuncCode, operand float32) int {
	if !m.IsComplex() {
		return s.Words()
	}
	s.ensureValues(m)
	vals := s.value[m]
	hw := s.hostWords()
	for w := 0; w < hw; w++ {
		set := s.status[m][w]
		for set != 0 {
			b := bits.TrailingZeros64(set)
			set &^= 1 << uint(b)
			local := w*HostWordBits + b
			vals[local] = fn.Apply(vals[local], operand)
		}
	}
	return s.Words()
}

// denseWordBits is the per-word popcount at which frontier scans switch
// from iterating set bits (TrailingZeros) to a linear lane walk: once a
// word is mostly full, stepping every lane in order touches the node
// table and CSR arena sequentially instead of re-deriving each position
// from the bit mask (the direction-optimizing dense sweep).
const denseWordBits = HostWordBits / 4

// ForEachSet calls f for every local node where m is set, in ascending
// order, and returns the number of simulated status words scanned. The
// scan is frontier-adaptive: sparse words iterate set bits, dense words
// switch to a sequential lane walk.
func (s *Store) ForEachSet(m MarkerID, f func(local int)) int {
	row := s.status[m]
	hw := s.hostWords()
	for w := 0; w < hw; w++ {
		word := row[w]
		if word == 0 {
			continue
		}
		base := w * HostWordBits
		if bits.OnesCount64(word) >= denseWordBits {
			for b := 0; word != 0; b, word = b+1, word>>1 {
				if word&1 != 0 {
					f(base + b)
				}
			}
		} else {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				f(base + b)
			}
		}
	}
	return s.Words()
}

// CountSet reports how many local nodes have m set.
func (s *Store) CountSet(m MarkerID) int {
	n := 0
	for _, w := range s.status[m][:s.hostWords()] {
		n += bits.OnesCount64(w)
	}
	return n
}
