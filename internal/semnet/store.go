package semnet

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Store holds one cluster's partition of the knowledge base in the three
// physical tables of the paper's Fig. 4:
//
//   - the node table (color, function, complex-marker value and origin
//     registers, indexed by local node number),
//   - the marker status table (one bit per node per marker, packed into
//     32-bit status words so W=32 nodes are processed per word operation),
//   - the relation table (up to 16 outgoing links per node).
//
// A Store is owned by a single cluster and is not safe for concurrent
// mutation; the cluster's multiport-memory discipline (internal/mpmem)
// serializes writers exactly as the hardware arbiter does.
type Store struct {
	capacity int
	n        int // local nodes stored

	// Node table.
	color  []Color
	fn     []FuncCode
	global []NodeID // local -> global ID

	// Marker status table: status[m][w] bit b = marker m set at local
	// node w*32+b.
	status [NumMarkers][]uint32

	// Complex-marker registers, allocated on first use per marker.
	value  [NumComplexMarkers][]float32
	origin [NumComplexMarkers][]NodeID

	// Relation table.
	rel [][]Link

	// sharedTopo marks the node and relation tables as aliased with at
	// least one other store (CloneTopologyShared). A shared store treats
	// those tables as immutable: any topology mutator first materializes
	// a private copy (copy-on-write), so siblings never observe writes.
	// Atomic because a pool brings replicas up concurrently, and every
	// clone of one prototype store marks the prototype shared.
	sharedTopo atomic.Bool
}

// NewStore returns a store with room for capacity local nodes.
func NewStore(capacity int) *Store {
	return &Store{
		capacity: capacity,
		color:    make([]Color, 0, capacity),
		fn:       make([]FuncCode, 0, capacity),
		global:   make([]NodeID, 0, capacity),
		rel:      make([][]Link, 0, capacity),
	}
}

// Words reports the number of 32-bit status words per marker row.
func (s *Store) Words() int { return (s.n + WordBits - 1) / WordBits }

// CloneTopology returns a new store holding the same node and relation
// tables but entirely fresh (cleared) marker state. The relation table is
// deep-copied so the clone's mutation instructions cannot alias the
// original's link slices. This is the download-once/replicate step of a
// query-serving pool: replicas share one partitioned network without
// repeating preprocessing or partitioning.
func (s *Store) CloneTopology() *Store {
	c := &Store{
		capacity: s.capacity,
		n:        s.n,
		color:    append([]Color(nil), s.color...),
		fn:       append([]FuncCode(nil), s.fn...),
		global:   append([]NodeID(nil), s.global...),
		rel:      make([][]Link, len(s.rel)),
	}
	for i, links := range s.rel {
		if len(links) > 0 {
			c.rel[i] = append([]Link(nil), links...)
		}
	}
	words := s.Words()
	for m := range c.status {
		c.status[m] = make([]uint32, words)
	}
	return c
}

// CloneTopologyShared is CloneTopology's zero-copy fast path: the clone
// aliases the source's node and relation tables instead of deep-copying
// them, allocating only fresh (cleared) marker state. Both stores are
// marked shared; the first topology mutation on either side materializes
// a private copy first (copy-on-write), so the stores stay semantically
// independent while the common read-only case — a query-serving pool
// stamping out replicas of one downloaded network — costs O(markers)
// instead of O(nodes + links) per replica.
func (s *Store) CloneTopologyShared() *Store {
	s.sharedTopo.Store(true)
	c := &Store{
		capacity: s.capacity,
		n:        s.n,
		color:    s.color,
		fn:       s.fn,
		global:   s.global,
		rel:      s.rel,
	}
	c.sharedTopo.Store(true)
	words := s.Words()
	for m := range c.status {
		c.status[m] = make([]uint32, words)
	}
	return c
}

// own materializes a private copy of the shared node and relation tables
// before a topology mutation. No-op on an unshared store.
func (s *Store) own() {
	if !s.sharedTopo.Load() {
		return
	}
	color := make([]Color, len(s.color), s.capacity)
	copy(color, s.color)
	fn := make([]FuncCode, len(s.fn), s.capacity)
	copy(fn, s.fn)
	global := make([]NodeID, len(s.global), s.capacity)
	copy(global, s.global)
	rel := make([][]Link, len(s.rel), s.capacity)
	for i, links := range s.rel {
		if len(links) > 0 {
			rel[i] = append([]Link(nil), links...)
		}
	}
	s.color, s.fn, s.global, s.rel = color, fn, global, rel
	s.sharedTopo.Store(false)
}

// NumNodes reports the number of local nodes stored.
func (s *Store) NumNodes() int { return s.n }

// Capacity reports the store's local node capacity.
func (s *Store) Capacity() int { return s.capacity }

// AddNode appends a node to the node table and returns its local index.
func (s *Store) AddNode(global NodeID, color Color, fn FuncCode) (int, error) {
	if s.n >= s.capacity {
		return 0, fmt.Errorf("%w: cluster store full (%d nodes)", ErrCapacity, s.capacity)
	}
	s.own()
	local := s.n
	s.n++
	s.color = append(s.color, color)
	s.fn = append(s.fn, fn)
	s.global = append(s.global, global)
	s.rel = append(s.rel, nil)
	if s.n > len(s.status[0])*WordBits {
		for m := range s.status {
			s.status[m] = append(s.status[m], 0)
		}
		for m := range s.value {
			if s.value[m] != nil {
				s.value[m] = append(s.value[m], make([]float32, WordBits)...)
				s.origin[m] = append(s.origin[m], make([]NodeID, WordBits)...)
			}
		}
	}
	return local, nil
}

// SetLinks installs the relation-table entries for a local node.
func (s *Store) SetLinks(local int, links []Link) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	if len(links) > RelationSlots {
		return fmt.Errorf("%w: %d links exceed %d relation slots", ErrCapacity, len(links), RelationSlots)
	}
	s.own()
	s.rel[local] = links
	return nil
}

// Global returns the global NodeID of a local node.
func (s *Store) Global(local int) NodeID { return s.global[local] }

// Color returns the node-table color of a local node.
func (s *Store) Color(local int) Color { return s.color[local] }

// Fn returns the node-table propagation function of a local node.
func (s *Store) Fn(local int) FuncCode { return s.fn[local] }

// Links returns the relation-table entries of a local node. The returned
// slice is owned by the store and must not be modified.
func (s *Store) Links(local int) []Link { return s.rel[local] }

func (s *Store) ensureValues(m MarkerID) {
	if s.value[m] == nil {
		words := len(s.status[m])
		s.value[m] = make([]float32, words*WordBits)
		s.origin[m] = make([]NodeID, words*WordBits)
	}
}

// Set sets marker m at a local node and reports whether the bit was
// previously clear (the "newly activated" signal that drives propagation).
func (s *Store) Set(local int, m MarkerID) bool {
	w, b := local/WordBits, uint(local%WordBits)
	old := s.status[m][w]
	s.status[m][w] = old | 1<<b
	return old&(1<<b) == 0
}

// Clear clears marker m at a local node.
func (s *Store) Clear(local int, m MarkerID) {
	w, b := local/WordBits, uint(local%WordBits)
	s.status[m][w] &^= 1 << b
}

// Test reports whether marker m is set at a local node.
func (s *Store) Test(local int, m MarkerID) bool {
	w, b := local/WordBits, uint(local%WordBits)
	return s.status[m][w]&(1<<b) != 0
}

// SetValue writes the complex-marker value and origin registers.
// Binary markers have no registers; the call is ignored for them.
func (s *Store) SetValue(local int, m MarkerID, v float32, origin NodeID) {
	if !m.IsComplex() {
		return
	}
	s.ensureValues(m)
	s.value[m][local] = v
	s.origin[m][local] = origin
}

// Value reads a complex marker's value register (0 for binary markers or
// never-written registers).
func (s *Store) Value(local int, m MarkerID) float32 {
	if !m.IsComplex() || s.value[m] == nil {
		return 0
	}
	return s.value[m][local]
}

// Origin reads a complex marker's origin-address register.
func (s *Store) Origin(local int, m MarkerID) NodeID {
	if !m.IsComplex() || s.origin[m] == nil {
		return 0
	}
	return s.origin[m][local]
}

// lastWordMask returns the valid-bit mask for the final status word.
func (s *Store) lastWordMask() uint32 {
	r := uint(s.n % WordBits)
	if r == 0 {
		return ^uint32(0)
	}
	return (1 << r) - 1
}

// And computes m3 = m1 AND m2 over the whole partition, one status word
// (32 nodes) at a time. For a complex m3, fn combines the operand values
// at every newly-set node. It returns the number of words processed, the
// MU's unit of work for global boolean operations.
func (s *Store) And(m1, m2, m3 MarkerID, fn FuncCode) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		w1, w2 := s.status[m1][w], s.status[m2][w]
		res := w1 & w2
		s.status[m3][w] = res
		if res != 0 && m3.IsComplex() {
			s.combineValues(w, res, w1, w2, m1, m2, m3, fn)
		}
	}
	return words
}

// Or computes m3 = m1 OR m2 over the whole partition and returns words
// processed. Values for a complex m3 are merged from whichever operand is
// set (m1 preferred when both are).
func (s *Store) Or(m1, m2, m3 MarkerID, fn FuncCode) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		w1, w2 := s.status[m1][w], s.status[m2][w]
		res := w1 | w2
		s.status[m3][w] = res
		if res != 0 && m3.IsComplex() {
			s.combineValues(w, res, w1, w2, m1, m2, m3, fn)
		}
	}
	return words
}

// Not computes m2 = NOT m1 over the valid node range and returns words
// processed. Bits beyond the partition's node count remain clear.
func (s *Store) Not(m1, m2 MarkerID) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		mask := ^uint32(0)
		if w == words-1 {
			mask = s.lastWordMask()
		}
		s.status[m2][w] = ^s.status[m1][w] & mask
	}
	return words
}

// combineValues fills m3's value registers for every set bit in word w.
// w1 and w2 are the operands' status words sampled BEFORE m3 was written,
// so the guard is correct even when m3 aliases an operand. Value registers
// of markers that were not set contribute zero: a cleared marker's stale
// register contents must not leak into results.
func (s *Store) combineValues(w int, set, w1, w2 uint32, m1, m2, m3 MarkerID, fn FuncCode) {
	s.ensureValues(m3)
	for set != 0 {
		b := bits.TrailingZeros32(set)
		set &^= 1 << uint(b)
		local := w*WordBits + b
		set1 := w1&(1<<uint(b)) != 0
		set2 := w2&(1<<uint(b)) != 0
		// The function combines only values that exist: where a single
		// operand is set (OR), its value passes through unchanged, so
		// min/mul combinations are not poisoned by a phantom zero.
		var res float32
		switch {
		case set1 && set2:
			res = fn.Apply(s.Value(local, m1), s.Value(local, m2))
		case set1:
			res = s.Value(local, m1)
		default:
			res = s.Value(local, m2)
		}
		switch {
		case m1.IsComplex() && set1:
			s.origin[m3][local] = s.Origin(local, m1)
		case m2.IsComplex() && set2:
			s.origin[m3][local] = s.Origin(local, m2)
		}
		s.value[m3][local] = res
	}
}

// SetAll sets marker m at every node with the given value and returns
// words processed (the SET-MARKER sweep).
func (s *Store) SetAll(m MarkerID, v float32) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		mask := ^uint32(0)
		if w == words-1 {
			mask = s.lastWordMask()
		}
		s.status[m][w] = mask
	}
	if m.IsComplex() {
		s.ensureValues(m)
		for i := 0; i < s.n; i++ {
			s.value[m][i] = v
		}
	}
	return words
}

// ClearAll clears marker m everywhere and returns words processed.
func (s *Store) ClearAll(m MarkerID) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		s.status[m][w] = 0
	}
	return words
}

// FuncAll applies fn with the given operand to the value register of every
// node where m is set (FUNC-MARKER) and returns words processed.
func (s *Store) FuncAll(m MarkerID, fn FuncCode, operand float32) int {
	words := s.Words()
	if !m.IsComplex() {
		return words
	}
	s.ensureValues(m)
	for w := 0; w < words; w++ {
		set := s.status[m][w]
		for set != 0 {
			b := bits.TrailingZeros32(set)
			set &^= 1 << uint(b)
			local := w*WordBits + b
			s.value[m][local] = fn.Apply(s.value[m][local], operand)
		}
	}
	return words
}

// ForEachSet calls f for every local node where m is set, in ascending
// order, and returns the number of status words scanned.
func (s *Store) ForEachSet(m MarkerID, f func(local int)) int {
	words := s.Words()
	for w := 0; w < words; w++ {
		set := s.status[m][w]
		for set != 0 {
			b := bits.TrailingZeros32(set)
			set &^= 1 << uint(b)
			f(w*WordBits + b)
		}
	}
	return words
}

// CountSet reports how many local nodes have m set.
func (s *Store) CountSet(m MarkerID) int {
	n := 0
	for _, w := range s.status[m] {
		n += bits.OnesCount32(w)
	}
	return n
}
