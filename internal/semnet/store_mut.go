package semnet

import "fmt"

// Runtime node-maintenance operations (the CREATE / DELETE / SET-COLOR and
// MARKER-CREATE / MARKER-DELETE instruction group). They mutate a loaded
// partition in place; the machine serializes them against in-flight
// propagation exactly as the PU does.

// SetColor rewrites the node-table color of a local node.
func (s *Store) SetColor(local int, c Color) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	s.own()
	s.color[local] = c
	return nil
}

// SetFn rewrites the node-table propagation function of a local node
// (delta-sync replay of a host-side KB.SetFn; there is no ISA
// instruction for it).
func (s *Store) SetFn(local int, fn FuncCode) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	s.own()
	s.fn[local] = fn
	return nil
}

// AddLink appends one relation-table entry at runtime. Unlike the host
// preprocessor, the array cannot split subnodes on the fly, so exceeding
// the slot budget is an error — the same limit the hardware has. In the
// CSR arena the node's block grows in place when it sits at the slab
// tail and is otherwise relocated there, leaving a hole for the next
// compaction.
func (s *Store) AddLink(local int, l Link) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	if int(s.relCnt[local]) >= RelationSlots {
		return fmt.Errorf("%w: node %d relation slots full", ErrCapacity, s.global[local])
	}
	s.own()
	off, cnt := s.relOff[local], s.relCnt[local]
	if int(off)+int(cnt) == len(s.relLinks) {
		s.relLinks = append(s.relLinks, l)
	} else {
		s.relHoles += int(cnt)
		s.relOff[local] = int32(len(s.relLinks))
		s.relLinks = append(s.relLinks, s.relLinks[off:off+cnt]...)
		s.relLinks = append(s.relLinks, l)
	}
	s.relCnt[local] = cnt + 1
	s.maybeCompact()
	return nil
}

// RemoveLink deletes the first relation-table entry matching (rel, to) and
// reports whether one was found. The block shrinks in place; the vacated
// tail slot becomes a hole unless the block ends the slab.
func (s *Store) RemoveLink(local int, rel RelType, to NodeID) bool {
	if local < 0 || local >= s.n {
		return false
	}
	off, cnt := int(s.relOff[local]), int(s.relCnt[local])
	for i := off; i < off+cnt; i++ {
		if s.relLinks[i].Rel == rel && s.relLinks[i].To == to {
			s.own()
			// own() may have re-materialized the slab; the offsets are
			// copied verbatim, so i stays valid.
			copy(s.relLinks[i:off+cnt-1], s.relLinks[i+1:off+cnt])
			if off+cnt == len(s.relLinks) {
				s.relLinks = s.relLinks[:off+cnt-1]
			} else {
				s.relHoles++
			}
			s.relCnt[local] = int32(cnt - 1)
			s.maybeCompact()
			return true
		}
	}
	return false
}
