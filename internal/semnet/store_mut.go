package semnet

import "fmt"

// Runtime node-maintenance operations (the CREATE / DELETE / SET-COLOR and
// MARKER-CREATE / MARKER-DELETE instruction group). They mutate a loaded
// partition in place; the machine serializes them against in-flight
// propagation exactly as the PU does.

// SetColor rewrites the node-table color of a local node.
func (s *Store) SetColor(local int, c Color) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	s.own()
	s.color[local] = c
	return nil
}

// AddLink appends one relation-table entry at runtime. Unlike the host
// preprocessor, the array cannot split subnodes on the fly, so exceeding
// the slot budget is an error — the same limit the hardware has.
func (s *Store) AddLink(local int, l Link) error {
	if local < 0 || local >= s.n {
		return fmt.Errorf("%w: local %d", ErrUnknownNode, local)
	}
	if len(s.rel[local]) >= RelationSlots {
		return fmt.Errorf("%w: node %d relation slots full", ErrCapacity, s.global[local])
	}
	s.own()
	s.rel[local] = append(s.rel[local], l)
	return nil
}

// RemoveLink deletes the first relation-table entry matching (rel, to) and
// reports whether one was found.
func (s *Store) RemoveLink(local int, rel RelType, to NodeID) bool {
	if local < 0 || local >= s.n {
		return false
	}
	s.own()
	links := s.rel[local]
	for i, l := range links {
		if l.Rel == rel && l.To == to {
			s.rel[local] = append(links[:i], links[i+1:]...)
			return true
		}
	}
	return false
}
