package semnet

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestKBBuild(t *testing.T) {
	kb := NewKB()
	col := kb.ColorFor("class")
	isa := kb.Relation("is-a")
	a := kb.MustAddNode("a", col)
	b := kb.MustAddNode("b", col)
	kb.MustAddLink(a, isa, 1.5, b)

	if kb.NumNodes() != 2 || kb.NumLinks() != 1 {
		t.Fatalf("counts: %d nodes, %d links", kb.NumNodes(), kb.NumLinks())
	}
	id, ok := kb.Lookup("a")
	if !ok || id != a {
		t.Fatal("Lookup(a) failed")
	}
	n, err := kb.Node(a)
	if err != nil || n.Name != "a" || len(n.Out) != 1 {
		t.Fatalf("Node(a) = %+v, %v", n, err)
	}
	if n.Out[0] != (Link{Rel: isa, Weight: 1.5, To: b}) {
		t.Fatalf("link = %+v", n.Out[0])
	}
	if err := kb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestKBErrors(t *testing.T) {
	kb := NewKB()
	col := kb.ColorFor("c")
	a := kb.MustAddNode("a", col)
	if _, err := kb.AddNode("a", col); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node: %v", err)
	}
	if err := kb.AddLink(a, 0, 1, NodeID(99)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad link target: %v", err)
	}
	if err := kb.SetFn(NodeID(99), FuncAdd); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SetFn on missing node: %v", err)
	}
	if _, err := kb.Node(NodeID(99)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Node on missing id: %v", err)
	}
	if got := kb.Name(NodeID(99)); got != "node#99" {
		t.Errorf("Name placeholder = %q", got)
	}
}

func TestInterning(t *testing.T) {
	kb := NewKB()
	r1 := kb.Relation("is-a")
	if kb.Relation("is-a") != r1 {
		t.Error("relation interning must be stable")
	}
	if kb.RelationName(r1) != "is-a" {
		t.Error("RelationName round trip failed")
	}
	if kb.RelationName(RelCont) != "<cont>" {
		t.Error("RelCont name")
	}
	c1 := kb.ColorFor("word")
	if kb.ColorFor("word") != c1 || kb.ColorName(c1) != "word" {
		t.Error("color interning round trip failed")
	}
	if kb.ColorName(ColorSubnode) != "<subnode>" {
		t.Error("subnode color name")
	}
	if kb.ColorName(Color(200)) != "color#200" {
		t.Error("unknown color placeholder")
	}
	if kb.RelationName(RelType(900)) != "rel#900" {
		t.Error("unknown relation placeholder")
	}
}

// buildFan returns a KB with one hub of the given fanout.
func buildFan(t *testing.T, fanout int) (*KB, NodeID) {
	t.Helper()
	kb := NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	hub := kb.MustAddNode("hub", col)
	for i := 0; i < fanout; i++ {
		id := kb.MustAddNode(fmt.Sprintf("leaf%d", i), col)
		kb.MustAddLink(hub, rel, float32(i), id)
	}
	return kb, hub
}

func TestPreprocessSplitsFanout(t *testing.T) {
	for _, fanout := range []int{1, 16, 17, 40, 256, 300, 1000} {
		kb, hub := buildFan(t, fanout)
		kb.Preprocess()
		if err := kb.Validate(); err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		// Every original destination must remain reachable through cont
		// links, and every subnode must canonicalize to the hub.
		reached := make(map[NodeID]bool)
		var walk func(id NodeID, depth int)
		var maxDepth int
		walk = func(id NodeID, depth int) {
			if depth > maxDepth {
				maxDepth = depth
			}
			n, err := kb.Node(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range n.Out {
				if l.Rel == RelCont {
					if kb.Canonical(l.To) != hub {
						t.Fatalf("fanout %d: subnode %d canonicalizes to %d", fanout, l.To, kb.Canonical(l.To))
					}
					walk(l.To, depth+1)
				} else {
					reached[l.To] = true
				}
			}
		}
		walk(hub, 0)
		if len(reached) != fanout {
			t.Fatalf("fanout %d: %d destinations reachable after split", fanout, len(reached))
		}
		// The subnode structure must be a shallow tree, not a chain:
		// depth grows with log16(fanout), and 1000 links fit in 3 levels.
		if fanout <= 16 && maxDepth != 0 {
			t.Errorf("fanout %d needlessly split", fanout)
		}
		if fanout == 1000 && maxDepth > 3 {
			t.Errorf("fanout 1000 split into depth %d, want a shallow tree", maxDepth)
		}
	}
}

func TestPreprocessIdempotent(t *testing.T) {
	kb, _ := buildFan(t, 100)
	kb.Preprocess()
	nodes, links := kb.NumNodes(), kb.NumLinks()
	kb.Preprocess()
	if kb.NumNodes() != nodes || kb.NumLinks() != links {
		t.Fatalf("second Preprocess changed the network: %d/%d -> %d/%d",
			nodes, links, kb.NumNodes(), kb.NumLinks())
	}
}

func TestNumConcepts(t *testing.T) {
	kb, _ := buildFan(t, 40)
	before := kb.NumNodes()
	kb.Preprocess()
	if kb.NumConcepts() != before {
		t.Errorf("NumConcepts = %d, want %d (subnodes excluded)", kb.NumConcepts(), before)
	}
	if kb.NumNodes() <= before {
		t.Error("Preprocess should have added subnodes")
	}
}

func TestNamesDedupSubnodes(t *testing.T) {
	kb, hub := buildFan(t, 40)
	kb.Preprocess()
	var ids []NodeID
	ids = append(ids, hub)
	// Find a subnode and include it: Names must canonicalize and dedup.
	for i := 0; i < kb.NumNodes(); i++ {
		if n, _ := kb.Node(NodeID(i)); n.IsSubnode() {
			ids = append(ids, NodeID(i))
			break
		}
	}
	names := kb.Names(ids)
	if len(names) != 1 || names[0] != "hub" {
		t.Fatalf("Names = %v, want [hub]", names)
	}
}

func TestValidateCatchesOverFanout(t *testing.T) {
	kb, _ := buildFan(t, 20)
	err := kb.Validate()
	if err == nil || !strings.Contains(err.Error(), "fanout") {
		t.Fatalf("Validate must reject un-preprocessed over-fanout, got %v", err)
	}
}

// Preprocess over random graphs: total non-cont out-degree is preserved
// and no node exceeds the slot budget.
func TestPreprocessRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		kb := NewKB()
		col := kb.ColorFor("c")
		rel := kb.Relation("r")
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			kb.MustAddNode(fmt.Sprintf("n%d", i), col)
		}
		links := rng.Intn(300)
		for i := 0; i < links; i++ {
			from := NodeID(rng.Intn(n))
			to := NodeID(rng.Intn(n))
			kb.MustAddLink(from, rel, 1, to)
		}
		kb.Preprocess()
		if err := kb.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Count non-cont links; must equal the original count.
		real := 0
		for id := 0; id < kb.NumNodes(); id++ {
			node, _ := kb.Node(NodeID(id))
			for _, l := range node.Out {
				if l.Rel != RelCont {
					real++
				}
			}
		}
		if real != links {
			t.Fatalf("trial %d: %d real links after preprocess, want %d", trial, real, links)
		}
	}
}
