package semnet

import (
	"math/rand"
	"testing"
)

// refTopo is a naive slice-of-slices relation table plus per-marker bit
// sets — the layout the store used before the CSR arena, kept here as the
// differential reference. The arena (with its in-place patches, tail
// relocations, hole compaction and COW slab sharing) must be observably
// identical to it under arbitrary mutation sequences.
type refTopo struct {
	rel    [][]Link
	colors []Color
	marks  map[[2]int]bool // (marker, local)
}

func newRefTopo() *refTopo { return &refTopo{marks: make(map[[2]int]bool)} }

func (r *refTopo) addNode(c Color) {
	r.rel = append(r.rel, nil)
	r.colors = append(r.colors, c)
}

func (r *refTopo) setLinks(local int, links []Link) {
	r.rel[local] = append([]Link(nil), links...)
}

func (r *refTopo) addLink(local int, l Link) bool {
	if len(r.rel[local]) >= RelationSlots {
		return false
	}
	r.rel[local] = append(r.rel[local], l)
	return true
}

func (r *refTopo) removeLink(local int, rel RelType, to NodeID) bool {
	links := r.rel[local]
	for i, l := range links {
		if l.Rel == rel && l.To == to {
			r.rel[local] = append(links[:i:i], links[i+1:]...)
			return true
		}
	}
	return false
}

// clone deep-copies the reference, mirroring either CloneTopology or
// CloneTopologyShared (marker state always starts cleared).
func (r *refTopo) clone() *refTopo {
	c := newRefTopo()
	c.colors = append([]Color(nil), r.colors...)
	for _, links := range r.rel {
		c.rel = append(c.rel, append([]Link(nil), links...))
	}
	return c
}

// checkAgainst compares every observable of the store with the reference:
// node count, colors, Links content, ForEachSet order and membership,
// CountSet, and the live-link census.
func (r *refTopo) checkAgainst(t *testing.T, s *Store, tag string) {
	t.Helper()
	if s.NumNodes() != len(r.rel) {
		t.Fatalf("%s: NumNodes=%d want %d", tag, s.NumNodes(), len(r.rel))
	}
	total := 0
	for i := range r.rel {
		if s.Color(i) != r.colors[i] {
			t.Fatalf("%s: node %d color=%d want %d", tag, i, s.Color(i), r.colors[i])
		}
		got, want := s.Links(i), r.rel[i]
		if len(got) != len(want) {
			t.Fatalf("%s: node %d has %d links, want %d", tag, i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: node %d link %d = %+v, want %+v", tag, i, j, got[j], want[j])
			}
		}
		total += len(want)
	}
	if s.NumLinks() != total {
		t.Fatalf("%s: NumLinks=%d want %d", tag, s.NumLinks(), total)
	}
	for _, m := range []MarkerID{0, 3, Binary(0), Binary(5)} {
		count := 0
		prev := -1
		s.ForEachSet(m, func(local int) {
			if local <= prev {
				t.Fatalf("%s: ForEachSet(%d) out of order: %d after %d", tag, m, local, prev)
			}
			prev = local
			if !r.marks[[2]int{int(m), local}] {
				t.Fatalf("%s: ForEachSet(%d) visited unset node %d", tag, m, local)
			}
			count++
		})
		want := 0
		for k, set := range r.marks {
			if set && k[0] == int(m) {
				want++
			}
		}
		if count != want {
			t.Fatalf("%s: ForEachSet(%d) visited %d nodes, want %d", tag, m, count, want)
		}
		if got := s.CountSet(m); got != want {
			t.Fatalf("%s: CountSet(%d)=%d want %d", tag, m, got, want)
		}
	}
}

// pair is one store under test with its reference shadow.
type pair struct {
	s   *Store
	ref *refTopo
}

// mutateCSR applies one decoded operation to a pair. Every path of the
// arena is reachable: in-place shrink, tail extend, relocation (hole
// creation), compaction, and the COW materialization of shared slabs.
func mutateCSR(t *testing.T, rng *rand.Rand, p *pair, op int) {
	t.Helper()
	n := p.s.NumNodes()
	randLinks := func() []Link {
		links := make([]Link, rng.Intn(RelationSlots+1))
		for i := range links {
			links[i] = Link{Rel: RelType(rng.Intn(4)), Weight: float32(rng.Intn(8)), To: NodeID(rng.Intn(64))}
		}
		return links
	}
	switch op {
	case 0:
		c := Color(rng.Intn(4))
		if _, err := p.s.AddNode(NodeID(n), c, FuncNop); err == nil {
			p.ref.addNode(c)
		}
	case 1:
		if n == 0 {
			return
		}
		local, links := rng.Intn(n), randLinks()
		if err := p.s.SetLinks(local, links); err != nil {
			t.Fatalf("SetLinks: %v", err)
		}
		p.ref.setLinks(local, links)
	case 2:
		if n == 0 {
			return
		}
		local := rng.Intn(n)
		l := Link{Rel: RelType(rng.Intn(4)), Weight: 1, To: NodeID(rng.Intn(64))}
		err := p.s.AddLink(local, l)
		if ok := p.ref.addLink(local, l); ok != (err == nil) {
			t.Fatalf("AddLink: store err=%v, ref ok=%v", err, ok)
		}
	case 3:
		if n == 0 {
			return
		}
		local := rng.Intn(n)
		rel, to := RelType(rng.Intn(4)), NodeID(rng.Intn(64))
		if got, want := p.s.RemoveLink(local, rel, to), p.ref.removeLink(local, rel, to); got != want {
			t.Fatalf("RemoveLink: store=%v ref=%v", got, want)
		}
	case 4:
		if n == 0 {
			return
		}
		local := rng.Intn(n)
		m := []MarkerID{0, 3, Binary(0), Binary(5)}[rng.Intn(4)]
		if rng.Intn(3) == 0 {
			p.s.Clear(local, m)
			delete(p.ref.marks, [2]int{int(m), local})
		} else {
			p.s.Set(local, m)
			p.ref.marks[[2]int{int(m), local}] = true
		}
	case 5:
		m := []MarkerID{0, 3, Binary(0), Binary(5)}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			p.s.SetAll(m, 1)
			for i := 0; i < n; i++ {
				p.ref.marks[[2]int{int(m), i}] = true
			}
		} else {
			p.s.ClearAll(m)
			for i := 0; i < n; i++ {
				delete(p.ref.marks, [2]int{int(m), i})
			}
		}
	case 6:
		if n == 0 {
			return
		}
		local, c := rng.Intn(n), Color(rng.Intn(4))
		if err := p.s.SetColor(local, c); err != nil {
			t.Fatalf("SetColor: %v", err)
		}
		p.ref.colors[local] = c
	}
}

// TestCSRStoreDifferential drives random topology mutations and marker
// operations through the CSR store and the slice-of-slices reference,
// forking clone pairs (both deep and shared/COW) mid-sequence, and
// compares every observable after each step. A mutation leaking through
// an aliased slab, a relocation corrupting a neighbor's block, or a
// compaction reordering links all surface as a divergence.
func TestCSRStoreDifferential(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cap := 8 + rng.Intn(120)
		pairs := []*pair{{s: NewStore(cap), ref: newRefTopo()}}
		for step := 0; step < 400; step++ {
			i := rng.Intn(len(pairs))
			p := pairs[i]
			op := rng.Intn(9)
			switch {
			case op < 7:
				mutateCSR(t, rng, p, op)
			case len(pairs) < 4:
				// Fork a clone and keep mutating both sides.
				var cs *Store
				if op == 7 {
					cs = p.s.CloneTopology()
				} else {
					cs = p.s.CloneTopologyShared()
				}
				pairs = append(pairs, &pair{s: cs, ref: p.ref.clone()})
			}
			for j, q := range pairs {
				q.ref.checkAgainst(t, q.s, trialTag(trial, step, j))
			}
		}
	}
}

func trialTag(trial, step, pair int) string {
	return "trial " + itoa(trial) + " step " + itoa(step) + " pair " + itoa(pair)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// FuzzCSRStore is the coverage-guided entry point over the same model:
// the fuzzer's byte string is the operation tape.
func FuzzCSRStore(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 7, 1, 8, 2, 4, 5, 3, 0, 1, 6})
	f.Add([]byte{0, 0, 0, 8, 1, 1, 7, 2, 2, 3, 3, 5, 4, 4})
	f.Fuzz(func(t *testing.T, tape []byte) {
		rng := rand.New(rand.NewSource(99))
		pairs := []*pair{{s: NewStore(64), ref: newRefTopo()}}
		for _, b := range tape {
			i := int(b>>4) % len(pairs)
			p := pairs[i]
			op := int(b & 0x0F)
			switch {
			case op < 7:
				mutateCSR(t, rng, p, op)
			case op < 9 && len(pairs) < 4:
				var cs *Store
				if op == 7 {
					cs = p.s.CloneTopology()
				} else {
					cs = p.s.CloneTopologyShared()
				}
				pairs = append(pairs, &pair{s: cs, ref: p.ref.clone()})
			}
		}
		for j, q := range pairs {
			q.ref.checkAgainst(t, q.s, "pair "+itoa(j))
		}
	})
}
