package semnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Node is the logical (host-side) view of a semantic network concept:
// a name, a color, the propagation function stored in the node table,
// and its outgoing links.
type Node struct {
	Name   string
	Color  Color
	Fn     FuncCode
	Out    []Link
	parent NodeID // parent concept for preprocessor subnodes, else InvalidNode
}

// IsSubnode reports whether n was created by the fanout preprocessor.
func (n *Node) IsSubnode() bool { return n.parent != InvalidNode }

// KB is the logical knowledge base constructed on the host and downloaded
// into the array. It owns the name tables for nodes, relations and colors;
// the array stores only the binary-encoded tables.
//
// The KB is safe for concurrent use: a single writer may mutate it while
// readers resolve names or compile programs against it (mu). The online
// write path depends on this — the engine's dedicated writer machine
// mutates the master KB while replica compiles and collection name
// resolution keep reading it.
type KB struct {
	mu     sync.RWMutex
	nodes  []Node
	byName map[string]NodeID

	relNames   map[RelType]string
	relByName  map[string]RelType
	nextRel    RelType
	colorNames map[Color]string
	colorByNm  map[string]Color
	nextColor  Color

	numLinks int

	// gen counts structural revisions: every mutation that could change a
	// query's result (node, link, color, function, or preprocessor change)
	// bumps it. Result caches key on it so entries from an older topology
	// can never satisfy a query against a newer one.
	gen atomic.Uint64

	// delta is the bounded mutation log for incremental replica sync
	// (delta.go; disabled until EnableDeltaLog).
	delta deltaLog

	// csrCache holds the generation-keyed flat adjacency snapshot (csr.go).
	csrCache
}

// Generation reports the knowledge base's structural revision counter.
// Two calls returning the same value bracket a span with no topology
// mutations, so any query result computed inside the span is still valid.
func (kb *KB) Generation() uint64 { return kb.gen.Load() }

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{
		byName:     make(map[string]NodeID),
		relNames:   make(map[RelType]string),
		relByName:  make(map[string]RelType),
		colorNames: make(map[Color]string),
		colorByNm:  make(map[string]Color),
	}
}

// Errors reported by knowledge-base construction.
var (
	ErrDuplicateNode = errors.New("semnet: duplicate node name")
	ErrUnknownNode   = errors.New("semnet: unknown node")
	ErrCapacity      = errors.New("semnet: capacity exceeded")
)

// AddNode creates a node with the given name and color and returns its ID.
// Node creation reshapes the partition assignment, so it is logged as a
// rebuild record: loaded machines must re-download rather than patch.
func (kb *KB) AddNode(name string, color Color) (NodeID, error) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if _, ok := kb.byName[name]; ok {
		return InvalidNode, fmt.Errorf("%w: %q", ErrDuplicateNode, name)
	}
	id := NodeID(len(kb.nodes))
	kb.nodes = append(kb.nodes, Node{Name: name, Color: color, parent: InvalidNode})
	kb.byName[name] = id
	kb.gen.Add(1)
	kb.record(DeltaRec{Op: DeltaRebuild, Node: id})
	return id, nil
}

// MustAddNode is AddNode for construction code where duplicates are bugs.
func (kb *KB) MustAddNode(name string, color Color) NodeID {
	id, err := kb.AddNode(name, color)
	if err != nil {
		panic(err)
	}
	return id
}

// SetFn sets the node-table propagation function of node id.
func (kb *KB) SetFn(id NodeID, fn FuncCode) error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if int(id) >= len(kb.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	kb.nodes[id].Fn = fn
	kb.gen.Add(1)
	kb.record(DeltaRec{Op: DeltaSetFn, Node: id, Fn: fn})
	return nil
}

// SetColor rewrites the node-table color of node id. This is the KB-side
// mirror of the SET-COLOR instruction; the machine routes runtime color
// writes through it so the master KB and the loaded array stay equal.
func (kb *KB) SetColor(id NodeID, c Color) error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if int(id) >= len(kb.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if kb.nodes[id].Color == c {
		return nil
	}
	kb.nodes[id].Color = c
	kb.gen.Add(1)
	kb.record(DeltaRec{Op: DeltaSetColor, Node: id, Color: c})
	return nil
}

// AddLink appends an outgoing relation from -> to with the given type and
// weight. Fanout beyond RelationSlots is legal here; the Preprocess pass
// splits such nodes before download, as the paper's preprocessor does.
func (kb *KB) AddLink(from NodeID, rel RelType, weight float32, to NodeID) error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if int(from) >= len(kb.nodes) || int(to) >= len(kb.nodes) {
		return fmt.Errorf("%w: link %d->%d", ErrUnknownNode, from, to)
	}
	kb.nodes[from].Out = append(kb.nodes[from].Out, Link{Rel: rel, Weight: weight, To: to})
	kb.numLinks++
	kb.gen.Add(1)
	kb.record(DeltaRec{Op: DeltaAddLink, Node: from, Link: Link{Rel: rel, Weight: weight, To: to}})
	return nil
}

// MustAddLink is AddLink for construction code where failures are bugs.
func (kb *KB) MustAddLink(from NodeID, rel RelType, weight float32, to NodeID) {
	if err := kb.AddLink(from, rel, weight, to); err != nil {
		panic(err)
	}
}

// RemoveLink deletes from's first outgoing link matching (rel, to),
// preserving the order of the remaining links (mirroring the relation
// arena's first-match DELETE semantics), and reports whether a link was
// removed.
func (kb *KB) RemoveLink(from NodeID, rel RelType, to NodeID) bool {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if int(from) >= len(kb.nodes) {
		return false
	}
	out := kb.nodes[from].Out
	for i, l := range out {
		if l.Rel == rel && l.To == to {
			kb.nodes[from].Out = append(out[:i], out[i+1:]...)
			kb.numLinks--
			kb.gen.Add(1)
			kb.record(DeltaRec{Op: DeltaRemoveLink, Node: from, Link: Link{Rel: rel, To: to}})
			return true
		}
	}
	return false
}

// Lookup resolves a node name to its ID.
func (kb *KB) Lookup(name string) (NodeID, bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	id, ok := kb.byName[name]
	return id, ok
}

// Node returns the node record for id. The returned pointer stays valid
// until the next AddNode or Preprocess call; under concurrent writes the
// caller must hold the topology quiescent (the engine's write lock does).
func (kb *KB) Node(id NodeID) (*Node, error) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if int(id) >= len(kb.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return &kb.nodes[id], nil
}

// Name returns the node's name, or a synthesized placeholder for IDs out
// of range (collection results are never fatal).
func (kb *KB) Name(id NodeID) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.nameLocked(id)
}

func (kb *KB) nameLocked(id NodeID) string {
	if int(id) < len(kb.nodes) {
		return kb.nodes[id].Name
	}
	return fmt.Sprintf("node#%d", id)
}

// Canonical maps a preprocessor subnode back to the concept it continues;
// non-subnode IDs map to themselves.
func (kb *KB) Canonical(id NodeID) NodeID {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.canonicalLocked(id)
}

func (kb *KB) canonicalLocked(id NodeID) NodeID {
	for int(id) < len(kb.nodes) && kb.nodes[id].parent != InvalidNode {
		id = kb.nodes[id].parent
	}
	return id
}

// NumNodes reports the node count including preprocessor subnodes.
func (kb *KB) NumNodes() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.nodes)
}

// NumConcepts reports the node count excluding preprocessor subnodes.
func (kb *KB) NumConcepts() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	n := 0
	for i := range kb.nodes {
		if kb.nodes[i].parent == InvalidNode {
			n++
		}
	}
	return n
}

// NumLinks reports the total number of relation-table entries.
func (kb *KB) NumLinks() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.numLinks
}

// Relation interns a relation-type name, assigning the next free type.
func (kb *KB) Relation(name string) RelType {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if r, ok := kb.relByName[name]; ok {
		return r
	}
	r := kb.nextRel
	if r == RelCont {
		panic("semnet: relation type space exhausted")
	}
	kb.nextRel++
	kb.relByName[name] = r
	kb.relNames[r] = name
	return r
}

// RelationName returns the interned name for r, or a numeric placeholder.
func (kb *KB) RelationName(r RelType) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if n, ok := kb.relNames[r]; ok {
		return n
	}
	if r == RelCont {
		return "<cont>"
	}
	return fmt.Sprintf("rel#%d", r)
}

// ColorFor interns a color name, assigning the next free color.
func (kb *KB) ColorFor(name string) Color {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if c, ok := kb.colorByNm[name]; ok {
		return c
	}
	c := kb.nextColor
	if c == ColorSubnode {
		panic("semnet: color space exhausted")
	}
	kb.nextColor++
	kb.colorByNm[name] = c
	kb.colorNames[c] = name
	return c
}

// ColorName returns the interned name for c, or a numeric placeholder.
func (kb *KB) ColorName(c Color) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if n, ok := kb.colorNames[c]; ok {
		return n
	}
	if c == ColorSubnode {
		return "<subnode>"
	}
	return fmt.Sprintf("color#%d", c)
}

// Names resolves a set of node IDs to sorted canonical concept names,
// deduplicating preprocessor subnodes.
func (kb *KB) Names(ids []NodeID) []string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	seen := make(map[NodeID]bool, len(ids))
	var out []string
	for _, id := range ids {
		c := kb.canonicalLocked(id)
		if !seen[c] {
			seen[c] = true
			out = append(out, kb.nameLocked(c))
		}
	}
	sort.Strings(out)
	return out
}

// Preprocess splits every node whose fanout exceeds RelationSlots into a
// tree of continuation subnodes, as the paper's knowledge-base
// preprocessor does ("Nodes with fanout greater than 16 are divided into
// subnodes"). The original links are grouped into full subnode slot
// banks and the node keeps zero-weight RelCont links to them; groups of
// subnodes that still exceed the slot budget split again, so expansion of
// a wide node proceeds through a shallow tree whose subnodes can be
// processed in parallel rather than down a serial chain. Each subnode
// carries ColorSubnode and inherits the parent's propagation function.
// Preprocess is idempotent.
func (kb *KB) Preprocess() {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	before := len(kb.nodes)
	for id := 0; id < len(kb.nodes); id++ {
		// Appended subnodes extend the loop range and are re-checked;
		// a node whose continuation fanout still exceeds the budget is
		// revisited immediately.
		n := &kb.nodes[id]
		if len(n.Out) <= RelationSlots {
			continue
		}
		links := n.Out
		canonical := kb.nameLocked(kb.canonicalLocked(NodeID(id)))
		fn := n.Fn
		var conts []Link
		for start := 0; start < len(links); start += RelationSlots {
			end := start + RelationSlots
			if end > len(links) {
				end = len(links)
			}
			group := append([]Link(nil), links[start:end]...)
			subID := NodeID(len(kb.nodes))
			subName := fmt.Sprintf("%s~%d", canonical, subID)
			kb.nodes = append(kb.nodes, Node{
				Name:   subName,
				Color:  ColorSubnode,
				Fn:     fn,
				Out:    group,
				parent: NodeID(id),
			})
			kb.byName[subName] = subID
			conts = append(conts, Link{Rel: RelCont, Weight: 0, To: subID})
		}
		kb.nodes[id].Out = conts // reacquired: appends moved the backing array
		kb.numLinks += len(conts)
		if len(conts) > RelationSlots {
			id-- // split this node's continuation links again
		}
	}
	if len(kb.nodes) != before {
		kb.gen.Add(1)
		kb.record(DeltaRec{Op: DeltaRebuild})
	}
}

// Validate checks structural invariants: link targets exist, colors and
// markers are in range, and no post-Preprocess node exceeds the slot
// budget. It returns the first violation found.
func (kb *KB) Validate() error {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	for id := range kb.nodes {
		n := &kb.nodes[id]
		if len(n.Out) > RelationSlots {
			return fmt.Errorf("semnet: node %q fanout %d exceeds %d slots (run Preprocess)",
				n.Name, len(n.Out), RelationSlots)
		}
		for _, l := range n.Out {
			if int(l.To) >= len(kb.nodes) {
				return fmt.Errorf("semnet: node %q links to missing node %d", n.Name, l.To)
			}
		}
		if !n.Fn.Valid() {
			return fmt.Errorf("semnet: node %q has invalid function %d", n.Name, n.Fn)
		}
	}
	return nil
}
