package semnet

import "sync"

// CSRView is a flat compressed-sparse-row snapshot of the knowledge
// base's link structure, in both directions:
//
//   - node id's outgoing links occupy Links[Off[id]:Off[id+1]];
//   - the ids of the nodes linking INTO id occupy InFrom[InOff[id]:InOff[id+1]],
//     with InRel holding the corresponding relation types.
//
// Partitioning strategies and cut metrics walk these slabs instead of
// issuing one error-checked KB.Node call per node: the whole network is
// a handful of contiguous arrays, so a full sweep is a linear scan with
// no per-node overhead. The view is a snapshot — it reflects the KB at
// the generation it was built for and is immutable afterwards; callers
// must not modify the slices.
type CSRView struct {
	Off   []int32 // len NumNodes+1: out-link offsets into Links
	Links []Link  // all out-links, packed in ascending node order

	InOff  []int32   // len NumNodes+1: in-link offsets into InFrom/InRel
	InFrom []NodeID  // source node of each in-link
	InRel  []RelType // relation type of each in-link
}

// NumNodes reports the node count the view was built over.
func (v *CSRView) NumNodes() int { return len(v.Off) - 1 }

// Out returns node id's outgoing links (a sub-slice of the shared slab).
func (v *CSRView) Out(id NodeID) []Link {
	return v.Links[v.Off[id]:v.Off[id+1]]
}

// OutDegree reports node id's outgoing link count.
func (v *CSRView) OutDegree(id NodeID) int { return int(v.Off[id+1] - v.Off[id]) }

// InDegree reports node id's incoming link count.
func (v *CSRView) InDegree(id NodeID) int { return int(v.InOff[id+1] - v.InOff[id]) }

// Degree reports node id's total (in + out) link count.
func (v *CSRView) Degree(id NodeID) int { return v.OutDegree(id) + v.InDegree(id) }

// CSR returns the flat adjacency view of the knowledge base, building it
// on first use and caching it until the next structural mutation (the
// cache is keyed on the KB's generation counter). Building is O(nodes +
// links) with a fixed handful of allocations; subsequent calls within
// one generation are a lock and a pointer read, so every partitioning
// pass, cut metric, and placement stage of one LoadKB shares a single
// snapshot.
func (kb *KB) CSR() *CSRView {
	kb.csrMu.Lock()
	defer kb.csrMu.Unlock()
	// Lock order is csrMu then kb.mu; KB mutators never build the view,
	// so the reverse order cannot occur.
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	gen := kb.gen.Load()
	if kb.csr != nil && kb.csrGen == gen {
		return kb.csr
	}
	n := len(kb.nodes)
	v := &CSRView{
		Off:   make([]int32, n+1),
		Links: make([]Link, 0, kb.numLinks),
		InOff: make([]int32, n+1),
	}
	// Out-links: one append pass, offsets as we go.
	for id := 0; id < n; id++ {
		v.Off[id] = int32(len(v.Links))
		v.Links = append(v.Links, kb.nodes[id].Out...)
	}
	v.Off[n] = int32(len(v.Links))
	// In-links: counting sort over the out slab.
	for _, l := range v.Links {
		v.InOff[l.To+1]++
	}
	for id := 0; id < n; id++ {
		v.InOff[id+1] += v.InOff[id]
	}
	v.InFrom = make([]NodeID, len(v.Links))
	v.InRel = make([]RelType, len(v.Links))
	fill := make([]int32, n)
	for id := 0; id < n; id++ {
		for _, l := range kb.nodes[id].Out {
			at := v.InOff[l.To] + fill[l.To]
			v.InFrom[at] = NodeID(id)
			v.InRel[at] = l.Rel
			fill[l.To]++
		}
	}
	kb.csr, kb.csrGen = v, gen
	return v
}

// csrCache is the KB-embedded cache state for CSR (kept in its own file
// with the view logic; the zero value is ready to use).
type csrCache struct {
	csrMu  sync.Mutex
	csr    *CSRView
	csrGen uint64
}
