package semnet

import "testing"

// deltaKB builds a small KB with the delta log already enabled, so every
// subsequent mutation is recorded.
func deltaKB(t *testing.T, nodes int) (*KB, []NodeID) {
	t.Helper()
	kb := NewKB()
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = kb.MustAddNode(string(rune('a'+i%26))+string(rune('0'+i/26)), kb.ColorFor("c"))
	}
	kb.EnableDeltaLog(0)
	return kb, ids
}

// TestDeltaLogRecordsMutations checks that each mutating KB call appends
// exactly one record carrying the right op, strictly ascending
// generations, and the mutation payload.
func TestDeltaLogRecordsMutations(t *testing.T) {
	kb, ids := deltaKB(t, 4)
	rel := kb.Relation("is-a")
	base := kb.Generation()

	kb.MustAddLink(ids[0], rel, 2, ids[1])
	if !kb.RemoveLink(ids[0], rel, ids[1]) {
		t.Fatal("RemoveLink missed the link just added")
	}
	if err := kb.SetColor(ids[2], kb.ColorFor("other")); err != nil {
		t.Fatal(err)
	}
	if err := kb.SetFn(ids[3], FuncMax); err != nil {
		t.Fatal(err)
	}

	recs, ok := kb.DeltaSince(base)
	if !ok {
		t.Fatal("DeltaSince not ok on an enabled, untruncated log")
	}
	wantOps := []DeltaOp{DeltaAddLink, DeltaRemoveLink, DeltaSetColor, DeltaSetFn}
	if len(recs) != len(wantOps) {
		t.Fatalf("%d records, want %d: %+v", len(recs), len(wantOps), recs)
	}
	for i, r := range recs {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %s, want %s", i, r.Op, wantOps[i])
		}
		if r.Gen != base+uint64(i)+1 {
			t.Errorf("record %d gen = %d, want %d (strictly ascending)", i, r.Gen, base+uint64(i)+1)
		}
		if !r.Replayable() {
			t.Errorf("record %d (%s) reported non-replayable", i, r.Op)
		}
	}
	if recs[0].Node != ids[0] || recs[0].Link.To != ids[1] || recs[0].Link.Weight != 2 {
		t.Errorf("add-link payload %+v", recs[0])
	}
	if recs[2].Color != kb.ColorFor("other") {
		t.Errorf("set-color payload %+v", recs[2])
	}
	if recs[3].Fn != FuncMax {
		t.Errorf("set-fn payload %+v", recs[3])
	}
}

// TestDeltaLogNoOpMutations: mutations that change nothing must neither
// bump the generation nor append a record, or replicas would churn on
// phantom deltas.
func TestDeltaLogNoOpMutations(t *testing.T) {
	kb, ids := deltaKB(t, 2)
	base := kb.Generation()

	// Same-color SetColor is a no-op.
	if err := kb.SetColor(ids[0], kb.ColorFor("c")); err != nil {
		t.Fatal(err)
	}
	// RemoveLink of a link that does not exist is a no-op.
	if kb.RemoveLink(ids[0], kb.Relation("is-a"), ids[1]) {
		t.Fatal("RemoveLink reported success on a missing link")
	}
	if g := kb.Generation(); g != base {
		t.Errorf("generation moved %d -> %d on no-op mutations", base, g)
	}
	if recs, ok := kb.DeltaSince(base); !ok || len(recs) != 0 {
		t.Errorf("no-op mutations recorded: ok=%v recs=%+v", ok, recs)
	}
}

// TestDeltaRangeWindows pins the (from, to] slicing contract and the
// disabled-log behavior.
func TestDeltaRangeWindows(t *testing.T) {
	kb, ids := deltaKB(t, 2)
	rel := kb.Relation("r")
	base := kb.Generation()
	for i := 0; i < 5; i++ {
		kb.MustAddLink(ids[0], rel, float32(i), ids[1])
	}
	head := kb.Generation() // base+5

	recs, ok := kb.DeltaRange(base+1, base+3)
	if !ok || len(recs) != 2 {
		t.Fatalf("mid window: ok=%v len=%d, want 2 records", ok, len(recs))
	}
	if recs[0].Gen != base+2 || recs[1].Gen != base+3 {
		t.Errorf("mid window gens %d,%d, want %d,%d (from exclusive, to inclusive)",
			recs[0].Gen, recs[1].Gen, base+2, base+3)
	}
	if recs, ok := kb.DeltaRange(head, head); !ok || len(recs) != 0 {
		t.Errorf("empty window: ok=%v len=%d", ok, len(recs))
	}
	if recs, ok := kb.DeltaSince(base); !ok || len(recs) != 5 {
		t.Errorf("full window: ok=%v len=%d, want 5", ok, len(recs))
	}

	// A KB that never enabled its log answers ok=false.
	cold := NewKB()
	if _, ok := cold.DeltaSince(0); ok {
		t.Error("disabled log reported ok=true")
	}
}

// TestDeltaLogTruncation: overflowing the bounded log drops the oldest
// half, raises the floor so stale readers are refused (full-reload
// fallback), and keeps recent windows servable.
func TestDeltaLogTruncation(t *testing.T) {
	small := NewKB()
	a := small.MustAddNode("a", small.ColorFor("c"))
	b := small.MustAddNode("b", small.ColorFor("c"))
	small.EnableDeltaLog(8)
	base := small.Generation()
	for i := 0; i < 20; i++ {
		small.MustAddLink(a, small.Relation("r"), float32(i), b)
	}
	if small.DeltaTruncated() == 0 {
		t.Fatal("20 records through a cap-8 log never truncated")
	}
	if _, ok := small.DeltaSince(base); ok {
		t.Error("window starting below the truncation floor reported ok=true")
	}
	head := small.Generation()
	recs, ok := small.DeltaRange(head-2, head)
	if !ok || len(recs) != 2 {
		t.Errorf("recent window after truncation: ok=%v len=%d, want 2", ok, len(recs))
	}

	// Re-enabling never re-arms a fresh log (the floor must not regress);
	// it only raises capacity.
	drop := small.DeltaTruncated()
	small.EnableDeltaLog(1024)
	if small.DeltaTruncated() != drop {
		t.Error("re-enable reset truncation accounting")
	}
	if _, ok := small.DeltaSince(base); ok {
		t.Error("re-enable lowered the truncation floor")
	}
	for i := 0; i < 20; i++ {
		small.MustAddLink(a, small.Relation("r2"), float32(i), b)
	}
	if small.DeltaTruncated() != drop {
		t.Error("raised capacity still truncating at the old bound")
	}
}

// TestDeltaRebuildRecords: node creation and preprocessor reshapes
// change the partition assignment, so they must be logged as
// non-replayable rebuild markers forcing the full-reload fallback.
func TestDeltaRebuildRecords(t *testing.T) {
	kb, ids := deltaKB(t, 2)
	base := kb.Generation()

	kb.MustAddNode("late-arrival", kb.ColorFor("c"))
	recs, ok := kb.DeltaSince(base)
	if !ok || len(recs) != 1 {
		t.Fatalf("ok=%v len=%d, want the AddNode rebuild record", ok, len(recs))
	}
	if recs[0].Op != DeltaRebuild || recs[0].Replayable() {
		t.Errorf("AddNode logged %s replayable=%v, want rebuild/non-replayable",
			recs[0].Op, recs[0].Replayable())
	}

	// A preprocessor pass that splits a high-fanout node must mark a
	// rebuild too.
	fat, rest := ids[0], ids[1]
	rel := kb.Relation("r")
	for i := 0; i < RelationSlots+4; i++ {
		kb.MustAddLink(fat, rel, 1, rest)
	}
	pre := kb.Generation()
	kb.Preprocess()
	recs, ok = kb.DeltaSince(pre)
	if !ok {
		t.Fatal("DeltaSince(pre) not ok")
	}
	found := false
	for _, r := range recs {
		if r.Op == DeltaRebuild {
			found = true
		}
	}
	if !found {
		t.Errorf("preprocessor reshape logged no rebuild record: %+v", recs)
	}
}
