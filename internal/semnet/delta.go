package semnet

import (
	"errors"
	"fmt"
	"sort"
)

// Topology delta log: the write path's unit of replication. Every KB
// mutation that could change a query's result appends one compact record
// tagged with the generation that produced it, so a replica holding the
// topology of generation g can be patched forward to generation g' by
// replaying DeltaRange(g, g') — cost proportional to the delta, not the
// knowledge base — instead of paying a full per-replica re-download.
//
// The log is bounded: once it outgrows its capacity the oldest records
// are dropped and the truncation floor rises; a replica whose generation
// has fallen below the floor must fall back to a full re-download
// (DeltaRange reports ok=false). Records that cannot be replayed in
// place on a loaded array — node creation and preprocessor reshapes,
// which change the partition assignment — are logged as DeltaRebuild
// markers that force the same fallback.

// DeltaOp identifies one topology delta record kind.
type DeltaOp uint8

const (
	// DeltaAddLink appends one relation-table entry at Node.
	DeltaAddLink DeltaOp = iota
	// DeltaRemoveLink deletes Node's first entry matching (Link.Rel, Link.To).
	DeltaRemoveLink
	// DeltaSetColor rewrites Node's node-table color.
	DeltaSetColor
	// DeltaSetFn rewrites Node's propagation function.
	DeltaSetFn
	// DeltaRebuild marks a mutation that cannot be replayed in place
	// (node creation, preprocessor reshape): the partition assignment
	// itself may have changed, so a replica crossing this record must
	// re-download the knowledge base in full.
	DeltaRebuild
)

// String names the delta op for diagnostics.
func (op DeltaOp) String() string {
	switch op {
	case DeltaAddLink:
		return "add-link"
	case DeltaRemoveLink:
		return "remove-link"
	case DeltaSetColor:
		return "set-color"
	case DeltaSetFn:
		return "set-fn"
	case DeltaRebuild:
		return "rebuild"
	}
	return fmt.Sprintf("delta-op#%d", uint8(op))
}

// DeltaRec is one packed topology mutation record. Gen is the KB
// generation the mutation produced (each record owns one generation;
// the log is strictly ascending in Gen).
type DeltaRec struct {
	Gen   uint64
	Op    DeltaOp
	Node  NodeID
	Link  Link // AddLink / RemoveLink payload
	Color Color
	Fn    FuncCode
}

// Replayable reports whether the record can be applied in place to a
// loaded partition (false forces a full re-download).
func (r *DeltaRec) Replayable() bool { return r.Op != DeltaRebuild }

// ErrDeltaUnsupported is returned when a delta record cannot be replayed
// in place on a loaded store (the caller must fall back to a full
// re-download).
var ErrDeltaUnsupported = errors.New("semnet: delta record not replayable in place")

// deltaLog is the KB-embedded bounded mutation log (zero value: disabled).
type deltaLog struct {
	on      bool
	cap     int
	recs    []DeltaRec
	floor   uint64 // highest generation dropped by truncation (or the enable point)
	dropped uint64 // lifetime truncated record count
}

// DefaultDeltaLogCap bounds the delta log when EnableDeltaLog is called
// with a non-positive capacity.
const DefaultDeltaLogCap = 4096

// EnableDeltaLog starts recording topology mutations into a bounded
// in-memory log (capacity <= 0 selects DefaultDeltaLogCap). The
// truncation floor starts at the current generation: deltas are
// available from this point forward. Enabling an already-enabled log
// only raises its capacity.
func (kb *KB) EnableDeltaLog(capacity int) {
	if capacity <= 0 {
		capacity = DefaultDeltaLogCap
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.delta.on {
		if capacity > kb.delta.cap {
			kb.delta.cap = capacity
		}
		return
	}
	kb.delta = deltaLog{on: true, cap: capacity, floor: kb.gen.Load()}
}

// DeltaLogEnabled reports whether mutations are being recorded.
func (kb *KB) DeltaLogEnabled() bool {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.delta.on
}

// record appends one mutation record. Caller holds kb.mu and has already
// bumped the generation; the record is stamped with the new value.
func (kb *KB) record(rec DeltaRec) {
	if !kb.delta.on {
		return
	}
	rec.Gen = kb.gen.Load()
	kb.delta.recs = append(kb.delta.recs, rec)
	if len(kb.delta.recs) > kb.delta.cap {
		// Drop down to half capacity in one move so truncation cost is
		// amortized O(1) per append rather than O(cap).
		drop := len(kb.delta.recs) - kb.delta.cap/2
		kb.delta.floor = kb.delta.recs[drop-1].Gen
		kb.delta.dropped += uint64(drop)
		kb.delta.recs = append(kb.delta.recs[:0], kb.delta.recs[drop:]...)
	}
}

// DeltaRange returns a copy of the records with from < Gen <= to, in
// ascending generation order. ok is false when the log is disabled or
// truncation has dropped records after from — the caller's snapshot is
// too old to patch forward and must be re-downloaded in full.
func (kb *KB) DeltaRange(from, to uint64) (recs []DeltaRec, ok bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	if !kb.delta.on || from < kb.delta.floor {
		return nil, false
	}
	log := kb.delta.recs
	lo := sort.Search(len(log), func(i int) bool { return log[i].Gen > from })
	hi := sort.Search(len(log), func(i int) bool { return log[i].Gen > to })
	return append([]DeltaRec(nil), log[lo:hi]...), true
}

// DeltaSince returns every retained record newer than generation from
// (see DeltaRange).
func (kb *KB) DeltaSince(from uint64) ([]DeltaRec, bool) {
	return kb.DeltaRange(from, ^uint64(0))
}

// DeltaTruncated reports the lifetime number of records dropped by log
// truncation (observability; a non-zero value means slow replicas may
// be forced into full re-downloads).
func (kb *KB) DeltaTruncated() uint64 {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.delta.dropped
}

// ApplyDelta applies one routed delta record to the store's local node
// (the machine routes each record to the cluster owning rec.Node). The
// CSR arena patches in place in O(degree); a non-replayable record
// returns ErrDeltaUnsupported and the caller falls back to a full
// re-download.
func (s *Store) ApplyDelta(local int, rec *DeltaRec) error {
	switch rec.Op {
	case DeltaAddLink:
		return s.AddLink(local, rec.Link)
	case DeltaRemoveLink:
		s.RemoveLink(local, rec.Link.Rel, rec.Link.To)
		return nil
	case DeltaSetColor:
		return s.SetColor(local, rec.Color)
	case DeltaSetFn:
		return s.SetFn(local, rec.Fn)
	default:
		return fmt.Errorf("%w: %s", ErrDeltaUnsupported, rec.Op)
	}
}
