package semnet

import (
	"fmt"
	"math/rand"
	"testing"
)

// refModel is a naive map-based reference implementation of the marker
// status and value registers; the bit-packed Store must track it exactly
// under arbitrary operation sequences.
type refModel struct {
	n      int
	status map[[2]int]bool    // (marker, local)
	value  map[[2]int]float32 // complex markers only
}

func newRefModel(n int) *refModel {
	return &refModel{n: n, status: make(map[[2]int]bool), value: make(map[[2]int]float32)}
}

func (r *refModel) set(local int, m MarkerID)   { r.status[[2]int{int(m), local}] = true }
func (r *refModel) clear(local int, m MarkerID) { delete(r.status, [2]int{int(m), local}) }
func (r *refModel) test(local int, m MarkerID) bool {
	return r.status[[2]int{int(m), local}]
}
func (r *refModel) setValue(local int, m MarkerID, v float32) {
	if m.IsComplex() {
		r.value[[2]int{int(m), local}] = v
	}
}
func (r *refModel) val(local int, m MarkerID) float32 {
	return r.value[[2]int{int(m), local}]
}

func (r *refModel) setAll(m MarkerID, v float32) {
	for i := 0; i < r.n; i++ {
		r.set(i, m)
		r.setValue(i, m, v)
	}
}

func (r *refModel) clearAll(m MarkerID) {
	for i := 0; i < r.n; i++ {
		r.clear(i, m)
	}
}

func (r *refModel) and(m1, m2, m3 MarkerID, fn FuncCode) {
	for i := 0; i < r.n; i++ {
		s := r.test(i, m1) && r.test(i, m2)
		if s {
			r.set(i, m3)
			if m3.IsComplex() {
				r.setValue(i, m3, fn.Apply(r.val(i, m1), r.val(i, m2)))
			}
		} else {
			r.clear(i, m3)
		}
	}
}

func (r *refModel) or(m1, m2, m3 MarkerID, fn FuncCode) {
	for i := 0; i < r.n; i++ {
		s1, s2 := r.test(i, m1), r.test(i, m2)
		// Read operand values before touching m3 (aliasing).
		v1, v2 := r.val(i, m1), r.val(i, m2)
		switch {
		case s1 && s2:
			r.set(i, m3)
			if m3.IsComplex() {
				r.setValue(i, m3, fn.Apply(v1, v2))
			}
		case s1:
			r.set(i, m3)
			if m3.IsComplex() {
				r.setValue(i, m3, v1)
			}
		case s2:
			r.set(i, m3)
			if m3.IsComplex() {
				r.setValue(i, m3, v2)
			}
		default:
			r.clear(i, m3)
		}
	}
}

func (r *refModel) not(m1, m2 MarkerID) {
	for i := 0; i < r.n; i++ {
		if r.test(i, m1) {
			r.clear(i, m2)
		} else {
			r.set(i, m2)
		}
	}
}

func (r *refModel) funcAll(m MarkerID, fn FuncCode, operand float32) {
	if !m.IsComplex() {
		return
	}
	for i := 0; i < r.n; i++ {
		if r.test(i, m) {
			r.setValue(i, m, fn.Apply(r.val(i, m), operand))
		}
	}
}

// TestStoreAgainstReferenceModel drives random operation sequences
// (including the aliased m3==m1 forms the parser relies on) through both
// implementations and compares full state after every step.
func TestStoreAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	fns := []FuncCode{FuncNop, FuncAdd, FuncMin, FuncMax, FuncMul}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(90)
		s := NewStore(n)
		for i := 0; i < n; i++ {
			if _, err := s.AddNode(NodeID(i), 0, FuncNop); err != nil {
				t.Fatal(err)
			}
		}
		ref := newRefModel(n)
		markers := []MarkerID{0, 1, 2, 3, Binary(0), Binary(1)}
		mk := func() MarkerID { return markers[rng.Intn(len(markers))] }
		fn := func() FuncCode { return fns[rng.Intn(len(fns))] }

		for step := 0; step < 300; step++ {
			local := rng.Intn(n)
			switch rng.Intn(9) {
			case 0:
				m := mk()
				s.Set(local, m)
				ref.set(local, m)
			case 1:
				m := mk()
				s.Clear(local, m)
				ref.clear(local, m)
			case 2:
				m := mk()
				v := float32(rng.Intn(16))
				// Only meaningful when the marker is (or becomes) set:
				// mirror the Store semantics of an unconditional register
				// write.
				s.Set(local, m)
				s.SetValue(local, m, v, 0)
				ref.set(local, m)
				ref.setValue(local, m, v)
			case 3:
				m := mk()
				v := float32(rng.Intn(16))
				s.SetAll(m, v)
				ref.setAll(m, v)
			case 4:
				m := mk()
				s.ClearAll(m)
				ref.clearAll(m)
			case 5:
				m1, m2, m3, f := mk(), mk(), mk(), fn()
				s.And(m1, m2, m3, f)
				ref.and(m1, m2, m3, f)
			case 6:
				m1, m2, f := mk(), mk(), fn()
				// Exercise the aliased accumulate form half the time.
				m3 := mk()
				if rng.Intn(2) == 0 {
					m3 = m1
				}
				s.Or(m1, m2, m3, f)
				ref.or(m1, m2, m3, f)
			case 7:
				m1, m2 := mk(), mk()
				if m1 != m2 { // NOT with m2==m1 is not used by any caller
					s.Not(m1, m2)
					ref.not(m1, m2)
				}
			default:
				m, f := mk(), fn()
				op := float32(rng.Intn(8))
				s.FuncAll(m, f, op)
				ref.funcAll(m, f, op)
			}
			compareModel(t, trial, step, s, ref, markers)
		}
	}
}

func compareModel(t *testing.T, trial, step int, s *Store, ref *refModel, markers []MarkerID) {
	t.Helper()
	for _, m := range markers {
		for i := 0; i < ref.n; i++ {
			if s.Test(i, m) != ref.test(i, m) {
				t.Fatalf("trial %d step %d: marker %d at %d: store=%v ref=%v",
					trial, step, m, i, s.Test(i, m), ref.test(i, m))
			}
			if m.IsComplex() && s.Test(i, m) {
				if got, want := s.Value(i, m), ref.val(i, m); got != want {
					t.Fatalf("trial %d step %d: value %d at %d: store=%v ref=%v",
						trial, step, m, i, got, want)
				}
			}
		}
	}
}

func TestStoreModelSanity(t *testing.T) {
	// The reference model itself must agree with hand truths.
	r := newRefModel(4)
	r.set(1, 0)
	r.setValue(1, 0, 5)
	r.set(1, 1)
	r.setValue(1, 1, 3)
	r.and(0, 1, 2, FuncAdd)
	if !r.test(1, 2) || r.val(1, 2) != 8 {
		t.Fatal("reference AND")
	}
	r.not(2, 3)
	if r.test(1, 3) || !r.test(0, 3) {
		t.Fatal("reference NOT")
	}
	_ = fmt.Sprint(r.n)
}
