package semnet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore(n)
	for i := 0; i < n; i++ {
		if _, err := s.AddNode(NodeID(i), Color(i%7), FuncAdd); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStoreBasics(t *testing.T) {
	s := newStore(t, 70) // crosses two status words + partial third
	if s.NumNodes() != 70 || s.Capacity() != 70 {
		t.Fatal("size bookkeeping")
	}
	if s.Words() != 3 {
		t.Fatalf("Words() = %d, want 3", s.Words())
	}
	if s.Global(5) != NodeID(5) || s.Color(5) != Color(5) || s.Fn(5) != FuncAdd {
		t.Fatal("node table round trip")
	}
	if _, err := s.AddNode(NodeID(99), 0, FuncNop); !errors.Is(err, ErrCapacity) {
		t.Fatalf("overfill: %v", err)
	}
}

func TestStoreMarkerBits(t *testing.T) {
	s := newStore(t, 70)
	m := MarkerID(3)
	if !s.Set(33, m) {
		t.Error("first Set must report newly-set")
	}
	if s.Set(33, m) {
		t.Error("second Set must report already-set")
	}
	if !s.Test(33, m) || s.Test(34, m) {
		t.Error("Test after Set")
	}
	if got := s.CountSet(m); got != 1 {
		t.Errorf("CountSet = %d", got)
	}
	s.Clear(33, m)
	if s.Test(33, m) || s.CountSet(m) != 0 {
		t.Error("Clear failed")
	}
}

func TestStoreValueRegisters(t *testing.T) {
	s := newStore(t, 40)
	m := MarkerID(1)
	s.Set(7, m)
	s.SetValue(7, m, 2.5, NodeID(3))
	if s.Value(7, m) != 2.5 || s.Origin(7, m) != NodeID(3) {
		t.Fatal("value/origin registers")
	}
	// Binary markers have no registers.
	b := Binary(0)
	s.SetValue(7, b, 9, NodeID(1))
	if s.Value(7, b) != 0 || s.Origin(7, b) != 0 {
		t.Error("binary markers must not store values")
	}
}

func TestSetAllClearAll(t *testing.T) {
	s := newStore(t, 70)
	m := MarkerID(2)
	words := s.SetAll(m, 1.5)
	if words != 3 {
		t.Fatalf("SetAll words = %d", words)
	}
	if s.CountSet(m) != 70 {
		t.Fatalf("SetAll count = %d", s.CountSet(m))
	}
	for i := 0; i < 70; i++ {
		if s.Value(i, m) != 1.5 {
			t.Fatalf("value at %d = %v", i, s.Value(i, m))
		}
	}
	s.ClearAll(m)
	if s.CountSet(m) != 0 {
		t.Error("ClearAll")
	}
}

func TestNotMasksTail(t *testing.T) {
	s := newStore(t, 70)
	m1, m2 := MarkerID(0), MarkerID(1)
	s.Set(0, m1)
	s.Not(m1, m2)
	// NOT of a single set bit over 70 nodes: 69 set, and crucially no
	// phantom bits beyond node 69 in the partial third word.
	if got := s.CountSet(m2); got != 69 {
		t.Fatalf("NOT count = %d, want 69", got)
	}
}

func TestAndOrValues(t *testing.T) {
	s := newStore(t, 64)
	a, b, out := MarkerID(0), MarkerID(1), MarkerID(2)
	s.Set(5, a)
	s.SetValue(5, a, 3, NodeID(50))
	s.Set(5, b)
	s.SetValue(5, b, 4, NodeID(51))
	s.Set(9, a)
	s.SetValue(9, a, 7, NodeID(52))

	s.And(a, b, out, FuncAdd)
	if s.CountSet(out) != 1 || !s.Test(5, out) {
		t.Fatal("AND bits")
	}
	if s.Value(5, out) != 7 {
		t.Errorf("AND value = %v, want 3+4", s.Value(5, out))
	}
	if s.Origin(5, out) != NodeID(50) {
		t.Errorf("AND origin = %v, want m1's", s.Origin(5, out))
	}

	s.Or(a, b, out, FuncAdd)
	if s.CountSet(out) != 2 {
		t.Fatal("OR bits")
	}
	if s.Value(9, out) != 7 {
		t.Errorf("OR value at 9 = %v (only m1 set: stale m2 register must not leak)", s.Value(9, out))
	}
}

// The critical aliasing case: OR accumulating into its own first operand
// must not resurrect stale value registers of cleared markers.
func TestOrAliasingNoStaleValues(t *testing.T) {
	s := newStore(t, 32)
	acc, x := MarkerID(0), MarkerID(1)
	// Pollute acc's register at node 3, then clear it.
	s.Set(3, acc)
	s.SetValue(3, acc, 100, 0)
	s.ClearAll(acc)

	s.Set(3, x)
	s.SetValue(3, x, 2, 0)
	s.Or(acc, x, acc, FuncAdd) // acc |= x, values accumulate
	if got := s.Value(3, acc); got != 2 {
		t.Fatalf("aliased OR value = %v, want 2 (stale 100 leaked)", got)
	}
	// Second accumulation now legitimately adds.
	s.Or(acc, x, acc, FuncAdd)
	if got := s.Value(3, acc); got != 4 {
		t.Fatalf("second aliased OR = %v, want 4", got)
	}
}

func TestFuncAll(t *testing.T) {
	s := newStore(t, 40)
	m := MarkerID(0)
	s.Set(3, m)
	s.SetValue(3, m, 10, 0)
	s.Set(20, m)
	s.SetValue(20, m, 1, 0)
	s.FuncAll(m, FuncAdd, 5)
	if s.Value(3, m) != 15 || s.Value(20, m) != 6 {
		t.Fatalf("FuncAll: %v, %v", s.Value(3, m), s.Value(20, m))
	}
	// Binary marker: no-op but still sweeps.
	if words := s.FuncAll(Binary(0), FuncAdd, 5); words != s.Words() {
		t.Error("FuncAll word count")
	}
}

func TestForEachSetAscending(t *testing.T) {
	s := newStore(t, 100)
	m := MarkerID(4)
	want := []int{0, 31, 32, 33, 64, 99}
	for _, i := range want {
		s.Set(i, m)
	}
	var got []int
	s.ForEachSet(m, func(local int) { got = append(got, local) })
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet order %v, want %v", got, want)
		}
	}
}

func TestStoreMutations(t *testing.T) {
	s := newStore(t, 8)
	l := Link{Rel: 4, Weight: 1, To: NodeID(2)}
	if err := s.AddLink(1, l); err != nil {
		t.Fatal(err)
	}
	if len(s.Links(1)) != 1 {
		t.Fatal("AddLink")
	}
	if !s.RemoveLink(1, 4, NodeID(2)) {
		t.Fatal("RemoveLink should find the link")
	}
	if s.RemoveLink(1, 4, NodeID(2)) {
		t.Fatal("RemoveLink should report missing")
	}
	for i := 0; i < RelationSlots; i++ {
		if err := s.AddLink(1, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddLink(1, l); !errors.Is(err, ErrCapacity) {
		t.Fatalf("slot overflow: %v", err)
	}
	if err := s.SetColor(1, Color(9)); err != nil || s.Color(1) != Color(9) {
		t.Fatal("SetColor")
	}
	if err := s.SetColor(99, 0); err == nil {
		t.Fatal("SetColor out of range must fail")
	}
}

// Word-level bit scanning (CountSet, ForEachSet) must agree with per-node
// Test over arbitrary marker patterns.
func TestBitScanQuick(t *testing.T) {
	f := func(pattern uint64, span uint8) bool {
		n := 1 + int(span)%100
		s := NewStore(n)
		for i := 0; i < n; i++ {
			if _, err := s.AddNode(NodeID(i), 0, FuncNop); err != nil {
				return false
			}
			if pattern&(1<<(uint(i)%64)) != 0 {
				s.Set(i, 0)
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if s.Test(i, 0) {
				want++
			}
		}
		got := 0
		prev := -1
		s.ForEachSet(0, func(local int) {
			if local <= prev || !s.Test(local, 0) {
				got = -1 << 30 // order or membership violation
			}
			prev = local
			got++
		})
		return s.CountSet(0) == want && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Boolean table ops must match a per-bit reference model on random state.
func TestBooleanOpsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(130)
		s := newStore(t, n)
		a, b, out := MarkerID(0), MarkerID(1), MarkerID(2)
		ref := make(map[int][2]bool)
		for i := 0; i < n; i++ {
			sa, sb := rng.Intn(2) == 1, rng.Intn(2) == 1
			if sa {
				s.Set(i, a)
			}
			if sb {
				s.Set(i, b)
			}
			ref[i] = [2]bool{sa, sb}
		}
		s.And(a, b, out, FuncNop)
		for i := 0; i < n; i++ {
			if s.Test(i, out) != (ref[i][0] && ref[i][1]) {
				t.Fatalf("AND mismatch at %d", i)
			}
		}
		s.Or(a, b, out, FuncNop)
		for i := 0; i < n; i++ {
			if s.Test(i, out) != (ref[i][0] || ref[i][1]) {
				t.Fatalf("OR mismatch at %d", i)
			}
		}
		s.Not(a, out)
		for i := 0; i < n; i++ {
			if s.Test(i, out) != !ref[i][0] {
				t.Fatalf("NOT mismatch at %d", i)
			}
		}
	}
}

func TestClearRowsMasked(t *testing.T) {
	s := newStore(t, 70)
	for _, m := range []MarkerID{0, 5, 63, Binary(0), Binary(7)} {
		s.Set(13, m)
		s.Set(69, m)
	}
	// Clear complex 5 and binary 7 only.
	if rows := s.ClearRows(1<<5, 1<<7); rows != 2 {
		t.Fatalf("ClearRows = %d rows, want 2", rows)
	}
	for _, m := range []MarkerID{5, Binary(7)} {
		if s.Test(13, m) || s.Test(69, m) {
			t.Fatalf("marker %d not cleared", m)
		}
	}
	for _, m := range []MarkerID{0, 63, Binary(0)} {
		if !s.Test(13, m) || !s.Test(69, m) {
			t.Fatalf("marker %d spuriously cleared", m)
		}
	}
	// Full mask == ClearAllMarkers.
	if rows := s.ClearRows(^uint64(0), ^uint64(0)); rows != NumMarkers {
		t.Fatalf("full ClearRows = %d rows", rows)
	}
	for _, m := range []MarkerID{0, 63, Binary(0)} {
		if s.CountSet(m) != 0 {
			t.Fatalf("marker %d survives full clear", m)
		}
	}
}

func TestRowsEqual(t *testing.T) {
	s := newStore(t, 70)
	s.Set(3, 1)
	s.Set(69, 1)
	s.Set(3, 2)
	if s.RowsEqual(1, 2) {
		t.Fatal("rows differ in word 2")
	}
	s.Set(69, 2)
	if !s.RowsEqual(1, 2) {
		t.Fatal("identical rows reported unequal")
	}
	if !s.RowsEqual(3, Binary(0)) {
		t.Fatal("two empty rows must be equal")
	}
}
