// Package semnet implements the SNAP-1 semantic network knowledge base:
// the logical network of colored nodes joined by typed, weighted relations,
// and the three physical per-cluster tables of the paper's Fig. 4 — the
// node table, the bit-packed marker status table, and the relation table.
package semnet

import "fmt"

// NodeID identifies a node in the global semantic network address space.
// The paper packs a 5-bit cluster number and local node number into the
// destination-node field; this reproduction keeps IDs logical and lets the
// partition function (internal/partition) assign physical placement.
type NodeID uint32

// InvalidNode is the zero-like sentinel for "no node".
const InvalidNode NodeID = ^NodeID(0)

// Color distinguishes the type or class of a concept node. The paper
// provides 256 colors.
type Color uint8

// Capacity limits taken directly from the paper (Section II-B, Fig. 4).
const (
	NumColors         = 256   // node colors
	NumRelationTypes  = 65536 // distinct relation types (R = 64K)
	NumComplexMarkers = 64    // M_C: value-carrying markers
	NumBinaryMarkers  = 64    // M_B: set-membership markers
	NumMarkers        = NumComplexMarkers + NumBinaryMarkers
	RelationSlots     = 16 // outgoing relation slots per node
	WordBits          = 32 // W: the paper's status-word width, the unit all timing charges
)

// HostWordBits is the width of the host words the marker status table is
// actually packed into. The simulated machine processes W=32 nodes per
// status-word operation and every "words processed" figure keeps charging
// that width (see Store.Words), but the host kernels sweep two simulated
// words per 64-bit load — an implementation detail invisible to the
// timing model.
const HostWordBits = 64

// ColorSubnode is the reserved color assigned by the fanout preprocessor
// to continuation subnodes; color searches never match it.
const ColorSubnode Color = 255

// RelType identifies a relation (link) type. 64K types are supported.
type RelType uint16

// RelCont is the reserved relation type used by the fanout preprocessor to
// chain a node to its continuation subnodes. Propagation follows RelCont
// links transparently: no rule transition is consumed and no marker
// function is applied.
const RelCont RelType = 0xFFFF

// MarkerID names one of the 128 marker registers at every node.
// IDs 0..63 are complex markers (32-bit float value plus origin address);
// IDs 64..127 are binary markers (a single status bit).
type MarkerID uint8

// IsComplex reports whether m carries a value and origin register.
func (m MarkerID) IsComplex() bool { return m < NumComplexMarkers }

// Valid reports whether m names an existing marker register.
func (m MarkerID) Valid() bool { return m < NumMarkers }

// Binary returns the i'th binary marker (i in [0, NumBinaryMarkers)).
func Binary(i int) MarkerID { return MarkerID(NumComplexMarkers + i) }

// FuncCode selects the lightweight arithmetic or logical operation a
// marker performs along each propagation step (Section I-C: markers
// "carry a lightweight arithmetic or logical operation which is performed
// along each propagation step").
type FuncCode uint8

// Marker propagation functions. Apply combines the marker's current value
// with the weight of the traversed link.
const (
	FuncNop FuncCode = iota // keep value unchanged
	FuncAdd                 // value += link weight (path cost accumulation)
	FuncMin                 // value = min(value, link weight)
	FuncMax                 // value = max(value, link weight)
	FuncMul                 // value *= link weight (probability chaining)
	FuncDec                 // value -= link weight (budget-limited spread)
	numFuncCodes
)

// Valid reports whether f is a defined function code.
func (f FuncCode) Valid() bool { return f < numFuncCodes }

// Apply performs f on a marker value and a traversed link weight.
func (f FuncCode) Apply(value, weight float32) float32 {
	switch f {
	case FuncAdd:
		return value + weight
	case FuncMin:
		if weight < value {
			return weight
		}
		return value
	case FuncMax:
		if weight > value {
			return weight
		}
		return value
	case FuncMul:
		return value * weight
	case FuncDec:
		return value - weight
	default:
		return value
	}
}

// Merge combines two values arriving at the same node for the same marker
// so that the final network state is independent of message interleaving.
// Cost-accumulating functions keep the cheaper path; FuncMax keeps the
// larger value.
func (f FuncCode) Merge(a, b float32) float32 {
	switch f {
	case FuncMax:
		if a > b {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

func (f FuncCode) String() string {
	switch f {
	case FuncNop:
		return "nop"
	case FuncAdd:
		return "add"
	case FuncMin:
		return "min"
	case FuncMax:
		return "max"
	case FuncMul:
		return "mul"
	case FuncDec:
		return "dec"
	default:
		return fmt.Sprintf("func(%d)", uint8(f))
	}
}

// Link is one outgoing relation-table entry: the relation type, the
// 32-bit floating point weight, and the destination node.
type Link struct {
	Rel    RelType
	Weight float32
	To     NodeID
}
