package semnet

import (
	"sync"
	"testing"
)

// cowFixture builds a small populated store: 40 nodes, a link chain,
// alternating colors.
func cowFixture(t *testing.T) *Store {
	t.Helper()
	s := NewStore(64)
	for i := 0; i < 40; i++ {
		local, err := s.AddNode(NodeID(i), Color(i%3), FuncAdd)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := s.SetLinks(local, []Link{{Rel: 1, Weight: 1, To: NodeID(i - 1)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// topoEqual compares the full node and relation tables of two stores.
func topoEqual(a, b *Store) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Global(i) != b.Global(i) || a.Color(i) != b.Color(i) || a.Fn(i) != b.Fn(i) {
			return false
		}
		la, lb := a.Links(i), b.Links(i)
		if len(la) != len(lb) {
			return false
		}
		for j := range la {
			if la[j] != lb[j] {
				return false
			}
		}
	}
	return true
}

// TestCloneTopologySharedEquivalent verifies the zero-copy clone is
// observationally identical to the deep clone: same tables, fresh
// marker state.
func TestCloneTopologySharedEquivalent(t *testing.T) {
	s := cowFixture(t)
	s.Set(3, 0)
	s.SetValue(3, 4, 2.5, 9)

	shared := s.CloneTopologyShared()
	deep := s.CloneTopology()
	if !topoEqual(shared, deep) {
		t.Fatal("shared clone's topology differs from deep clone")
	}
	if shared.Test(3, 0) || shared.Value(3, 4) != 0 {
		t.Error("shared clone inherited marker state")
	}
	// Marker state is private: setting on the clone must not leak back.
	shared.Set(5, 1)
	if s.Test(5, 1) {
		t.Error("clone marker write visible in source store")
	}
}

// TestCloneTopologySharedCopyOnWrite mutates topology on each side of a
// shared clone and requires the other side to be unaffected.
func TestCloneTopologySharedCopyOnWrite(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(t *testing.T, s *Store)
	}{
		{"set-color", func(t *testing.T, s *Store) {
			if err := s.SetColor(2, 7); err != nil {
				t.Fatal(err)
			}
		}},
		{"add-link", func(t *testing.T, s *Store) {
			if err := s.AddLink(0, Link{Rel: 2, Weight: 3, To: 99}); err != nil {
				t.Fatal(err)
			}
		}},
		{"remove-link", func(t *testing.T, s *Store) {
			if !s.RemoveLink(1, 1, 0) {
				t.Fatal("link to remove not found")
			}
		}},
		{"set-links", func(t *testing.T, s *Store) {
			if err := s.SetLinks(4, []Link{{Rel: 5, Weight: 2, To: 11}}); err != nil {
				t.Fatal(err)
			}
		}},
		{"add-node", func(t *testing.T, s *Store) {
			if _, err := s.AddNode(1000, 1, FuncMin); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, mutateClone := range []bool{true, false} {
		for _, m := range mutations {
			name := m.name + "/on-source"
			if mutateClone {
				name = m.name + "/on-clone"
			}
			t.Run(name, func(t *testing.T) {
				src := cowFixture(t)
				clone := src.CloneTopologyShared()
				before := src.CloneTopology() // deep snapshot for comparison

				target, other := src, clone
				if mutateClone {
					target, other = clone, src
				}
				m.mut(t, target)
				if !topoEqual(other, before) {
					t.Error("mutation leaked across the shared-topology boundary")
				}
				if topoEqual(target, before) {
					t.Error("mutation had no observable effect on its own store")
				}
			})
		}
	}
}

// TestCloneTopologySharedConcurrent stamps out clones of one prototype
// concurrently — the pool bring-up pattern — while each clone then
// mutates its own copy. Run under -race this pins the atomicity of the
// shared-topology flag.
func TestCloneTopologySharedConcurrent(t *testing.T) {
	src := cowFixture(t)
	before := src.CloneTopology()

	const clones = 8
	var wg sync.WaitGroup
	for i := 0; i < clones; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := src.CloneTopologyShared()
			if err := c.SetColor(i%src.NumNodes(), Color(20+i)); err != nil {
				t.Error(err)
				return
			}
			if c.Color(i%src.NumNodes()) != Color(20+i) {
				t.Errorf("clone %d lost its own mutation", i)
			}
		}(i)
	}
	wg.Wait()
	if !topoEqual(src, before) {
		t.Error("clone mutations leaked into the prototype")
	}
}

// TestKBGeneration pins the structural-generation counter the engine's
// result cache keys on: every topology mutation must bump it, and reads
// must not.
func TestKBGeneration(t *testing.T) {
	kb := NewKB()
	g0 := kb.Generation()
	a := kb.MustAddNode("a", 0)
	b := kb.MustAddNode("b", 0)
	if kb.Generation() == g0 {
		t.Error("AddNode did not bump the generation")
	}
	g1 := kb.Generation()
	kb.MustAddLink(a, 1, 1, b)
	if kb.Generation() == g1 {
		t.Error("AddLink did not bump the generation")
	}
	g2 := kb.Generation()
	if err := kb.SetFn(a, FuncAdd); err != nil {
		t.Fatal(err)
	}
	if kb.Generation() == g2 {
		t.Error("SetFn did not bump the generation")
	}
	g3 := kb.Generation()
	_, _ = kb.Lookup("a")
	_ = kb.NumNodes()
	if kb.Generation() != g3 {
		t.Error("read-only accessors bumped the generation")
	}
	kb.Preprocess()
	gp := kb.Generation()
	kb.Preprocess()
	if kb.Generation() != gp {
		t.Error("idempotent re-preprocess bumped the generation")
	}
}
