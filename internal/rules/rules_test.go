package rules

import (
	"strings"
	"testing"

	"snap1/internal/semnet"
)

const (
	rA semnet.RelType = 1
	rB semnet.RelType = 2
	rC semnet.RelType = 3
)

func compile(t *testing.T, spec Spec) *Compiled {
	t.Helper()
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStepRule(t *testing.T) {
	c := compile(t, Step(rA))
	next, ok := c.Next(0, rA)
	if !ok || next != 1 {
		t.Fatalf("step: Next(0,rA) = %d,%v", next, ok)
	}
	if _, ok := c.Next(0, rB); ok {
		t.Error("step must not follow other relations")
	}
	if !c.Terminal(1) {
		t.Error("step state 1 must be terminal")
	}
	if c.Terminal(0) {
		t.Error("step state 0 must not be terminal")
	}
}

func TestPathRule(t *testing.T) {
	c := compile(t, Path(rA))
	next, ok := c.Next(0, rA)
	if !ok || next != 0 {
		t.Fatal("path must loop in state 0")
	}
	if c.Terminal(0) {
		t.Error("path state 0 is never terminal")
	}
}

func TestSpreadRule(t *testing.T) {
	c := compile(t, Spread(rA, rB))
	if next, ok := c.Next(0, rA); !ok || next != 0 {
		t.Error("spread state 0 follows r1 chains")
	}
	if next, ok := c.Next(0, rB); !ok || next != 1 {
		t.Error("spread state 0 switches on r2")
	}
	if next, ok := c.Next(1, rB); !ok || next != 1 {
		t.Error("spread state 1 follows r2 chains")
	}
	if _, ok := c.Next(1, rA); ok {
		t.Error("after the switch, r1 links must not be followed")
	}
}

func TestSeqRule(t *testing.T) {
	c := compile(t, Seq(rA, rB))
	s1, ok := c.Next(0, rA)
	if !ok || s1 != 1 {
		t.Fatal("seq first hop")
	}
	s2, ok := c.Next(1, rB)
	if !ok || s2 != 2 {
		t.Fatal("seq second hop")
	}
	if !c.Terminal(2) {
		t.Error("seq ends after two hops")
	}
	if _, ok := c.Next(0, rB); ok {
		t.Error("seq must not take r2 first")
	}
}

func TestCombRule(t *testing.T) {
	c := compile(t, Comb(rA, rB))
	for _, r := range []semnet.RelType{rA, rB} {
		if next, ok := c.Next(0, r); !ok || next != 0 {
			t.Errorf("comb must follow %d freely", r)
		}
	}
	if _, ok := c.Next(0, rC); ok {
		t.Error("comb must not follow unrelated types")
	}
}

func TestCompileUnknownKind(t *testing.T) {
	if _, err := Compile(Spec{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindStep, KindPath, KindSpread, KindSeq, KindComb} {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
}

func TestBuilderCustomRule(t *testing.T) {
	// Walk one rA then chains of rB, with an rC escape back to start.
	c, err := NewBuilder("custom").
		On(0, rA, 1).
		On(1, rB, 1).
		On(1, rC, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Fatalf("states = %d", c.NumStates())
	}
	if next, _ := c.Next(1, rC); next != 0 {
		t.Error("escape transition")
	}
	if c.Name() != "custom" {
		t.Error("name")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("dup").On(0, rA, 0).On(0, rA, 1).Build(); err == nil {
		t.Error("duplicate transition must fail")
	}
	if _, err := NewBuilder("big").On(MaxStates, rA, 0).Build(); err == nil {
		t.Error("state overflow must fail")
	}
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty rule must fail")
	}
}

func TestTableInterning(t *testing.T) {
	tbl := NewTable()
	tok1, err := tbl.Add(Spread(rA, rB))
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := tbl.Add(Spread(rA, rB))
	if err != nil {
		t.Fatal(err)
	}
	if tok1 != tok2 {
		t.Error("identical specs must share a token")
	}
	tok3, _ := tbl.Add(Spread(rA, rC))
	if tok3 == tok1 {
		t.Error("different specs must not share a token")
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if tbl.Rule(0) != nil {
		t.Error("token 0 is reserved")
	}
	if tbl.Rule(Token(200)) != nil {
		t.Error("unknown token must resolve to nil")
	}
	if tbl.Rule(tok1).Name() == "" {
		t.Error("rule name")
	}
}

func TestTableCustomAndCapacity(t *testing.T) {
	tbl := NewTable()
	c, _ := NewBuilder("x").On(0, rA, 0).Build()
	tok, err := tbl.AddCustom(c)
	if err != nil || tbl.Rule(tok) != c {
		t.Fatal("custom rule round trip")
	}
	// Fill to capacity: 255 rules total.
	for i := tbl.Len(); i < 255; i++ {
		if _, err := tbl.Add(Spec{Kind: KindPath, R1: semnet.RelType(i)}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := tbl.Add(Spec{Kind: KindPath, R1: 60000}); err == nil {
		t.Error("table overflow must fail")
	}
}

func TestNextOutOfRangeState(t *testing.T) {
	c := compile(t, Path(rA))
	if _, ok := c.Next(7, rA); ok {
		t.Error("out-of-range state must not follow")
	}
	if !c.Terminal(7) {
		t.Error("out-of-range state is terminal")
	}
}
