// Package rules implements SNAP-1 propagation rules: the microcode that
// guides marker flow through the semantic network.
//
// A rule is a small finite-state machine over relation types. At each node
// a marker holds a rule state; every outgoing link whose relation type has
// a transition from that state is followed, moving the marker to the
// transition's next state at the destination node. A state with no
// transitions is terminal — the marker rests there.
//
// Rules are compiled into a table that is downloaded at program-load time
// (the paper downloads the microcode table at compile time), so in-flight
// marker activation messages need to carry only a single-byte rule token
// plus the current state, keeping messages fixed-size regardless of rule
// complexity.
package rules

import (
	"fmt"

	"snap1/internal/semnet"
)

// Kind selects one of the predefined rule shapes from the paper's
// rule-type(r1,r2) notation.
type Kind uint8

// Predefined rule kinds.
const (
	// KindStep follows a single link of type R1 and stops.
	KindStep Kind = iota
	// KindPath follows chains of R1 links.
	KindPath
	// KindSpread follows chains of R1 links until a link of type R2 is
	// encountered, at which point it switches to chains of R2 links —
	// the paper's example rule spread(r1,r2).
	KindSpread
	// KindSeq follows exactly one R1 link then exactly one R2 link.
	KindSeq
	// KindComb follows links of either type freely.
	KindComb
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindStep:
		return "step"
	case KindPath:
		return "path"
	case KindSpread:
		return "spread"
	case KindSeq:
		return "seq"
	case KindComb:
		return "comb"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Spec names a rule to be compiled: a predefined kind over one or two
// relation types. R2 is ignored by single-relation kinds.
type Spec struct {
	Kind   Kind
	R1, R2 semnet.RelType
}

// Step returns the spec for a single R1 hop.
func Step(r1 semnet.RelType) Spec { return Spec{Kind: KindStep, R1: r1} }

// Path returns the spec for chains of R1 hops.
func Path(r1 semnet.RelType) Spec { return Spec{Kind: KindPath, R1: r1} }

// Spread returns the paper's spread(r1,r2) rule.
func Spread(r1, r2 semnet.RelType) Spec { return Spec{Kind: KindSpread, R1: r1, R2: r2} }

// Seq returns the one-R1-then-one-R2 rule.
func Seq(r1, r2 semnet.RelType) Spec { return Spec{Kind: KindSeq, R1: r1, R2: r2} }

// Comb returns the follow-either rule over R1 and R2.
func Comb(r1, r2 semnet.RelType) Spec { return Spec{Kind: KindComb, R1: r1, R2: r2} }

// State is a rule FSM state index carried by in-flight markers.
type State uint8

// Token identifies a compiled rule in the downloaded table. Messages carry
// the token, never the rule body ("each marker only needs to carry a
// single-byte token indicating the function to be performed").
type Token uint8

// MaxStates bounds rule FSM size so states pack into the fixed message.
const MaxStates = 16

// Transition is one FSM edge: on a link of type Rel, move to state Next.
type Transition struct {
	Rel  semnet.RelType
	Next State
}

// Compiled is a rule FSM ready for the marker units.
type Compiled struct {
	name   string
	states [][]Transition
}

// Name returns the rule's diagnostic name.
func (c *Compiled) Name() string { return c.name }

// NumStates reports the FSM size.
func (c *Compiled) NumStates() int { return len(c.states) }

// Next reports whether a link of type rel is followed from state s and,
// if so, the state the marker assumes at the destination.
func (c *Compiled) Next(s State, rel semnet.RelType) (State, bool) {
	if int(s) >= len(c.states) {
		return 0, false
	}
	for _, t := range c.states[s] {
		if t.Rel == rel {
			return t.Next, true
		}
	}
	return 0, false
}

// Terminal reports whether state s has no outgoing transitions.
func (c *Compiled) Terminal(s State) bool {
	return int(s) >= len(c.states) || len(c.states[s]) == 0
}

// Fingerprint returns a 64-bit FNV-1a digest of the FSM's transition
// structure. Two rules with equal fingerprints follow exactly the same
// links, so the digest participates in program content hashing.
func (c *Compiled) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(c.states)))
	for s, ts := range c.states {
		mix(uint64(s))
		for _, t := range ts {
			mix(uint64(t.Rel)<<8 | uint64(t.Next))
		}
	}
	return h
}

// Compile lowers a Spec to its FSM.
func Compile(spec Spec) (*Compiled, error) {
	name := fmt.Sprintf("%s(%d,%d)", spec.Kind, spec.R1, spec.R2)
	switch spec.Kind {
	case KindStep:
		return &Compiled{name: name, states: [][]Transition{
			{{Rel: spec.R1, Next: 1}},
			nil,
		}}, nil
	case KindPath:
		return &Compiled{name: name, states: [][]Transition{
			{{Rel: spec.R1, Next: 0}},
		}}, nil
	case KindSpread:
		return &Compiled{name: name, states: [][]Transition{
			{{Rel: spec.R1, Next: 0}, {Rel: spec.R2, Next: 1}},
			{{Rel: spec.R2, Next: 1}},
		}}, nil
	case KindSeq:
		return &Compiled{name: name, states: [][]Transition{
			{{Rel: spec.R1, Next: 1}},
			{{Rel: spec.R2, Next: 2}},
			nil,
		}}, nil
	case KindComb:
		return &Compiled{name: name, states: [][]Transition{
			{{Rel: spec.R1, Next: 0}, {Rel: spec.R2, Next: 0}},
		}}, nil
	default:
		return nil, fmt.Errorf("rules: unknown kind %d", spec.Kind)
	}
}

// Builder assembles a custom rule FSM state by state.
type Builder struct {
	name   string
	states [][]Transition
	err    error
}

// NewBuilder starts a custom rule with the given diagnostic name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// On adds a transition from state s: follow links of type rel and assume
// state next at the destination. States are created on demand.
func (b *Builder) On(s State, rel semnet.RelType, next State) *Builder {
	if b.err != nil {
		return b
	}
	if s >= MaxStates || next >= MaxStates {
		b.err = fmt.Errorf("rules: state exceeds MaxStates (%d)", MaxStates)
		return b
	}
	hi := s
	if next > hi {
		hi = next
	}
	for len(b.states) <= int(hi) {
		b.states = append(b.states, nil)
	}
	for _, t := range b.states[s] {
		if t.Rel == rel {
			b.err = fmt.Errorf("rules: duplicate transition on relation %d from state %d", rel, s)
			return b
		}
	}
	b.states[s] = append(b.states[s], Transition{Rel: rel, Next: next})
	return b
}

// Build finalizes the custom rule.
func (b *Builder) Build() (*Compiled, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.states) == 0 {
		return nil, fmt.Errorf("rules: rule %q has no states", b.name)
	}
	return &Compiled{name: b.name, states: b.states}, nil
}

// Table is the per-program rule microcode table, downloaded to every
// cluster before execution. Token 0 is reserved as "no rule".
type Table struct {
	rules []*Compiled
	bySig map[string]Token
}

// NewTable returns an empty rule table.
func NewTable() *Table {
	return &Table{rules: []*Compiled{nil}, bySig: make(map[string]Token)}
}

// Add compiles and interns spec, returning its message token. Identical
// specs share a token.
func (t *Table) Add(spec Spec) (Token, error) {
	sig := fmt.Sprintf("%d/%d/%d", spec.Kind, spec.R1, spec.R2)
	if tok, ok := t.bySig[sig]; ok {
		return tok, nil
	}
	c, err := Compile(spec)
	if err != nil {
		return 0, err
	}
	return t.addCompiled(sig, c)
}

// AddCustom interns a custom-built rule under its own token.
func (t *Table) AddCustom(c *Compiled) (Token, error) {
	return t.addCompiled(fmt.Sprintf("custom/%p", c), c)
}

func (t *Table) addCompiled(sig string, c *Compiled) (Token, error) {
	if len(t.rules) >= 256 {
		return 0, fmt.Errorf("rules: table full (255 rules)")
	}
	tok := Token(len(t.rules))
	t.rules = append(t.rules, c)
	t.bySig[sig] = tok
	return tok, nil
}

// Rule resolves a token to its compiled FSM, or nil for token 0 or an
// unknown token.
func (t *Table) Rule(tok Token) *Compiled {
	if int(tok) >= len(t.rules) {
		return nil
	}
	return t.rules[tok]
}

// Len reports the number of interned rules (excluding the reserved 0).
func (t *Table) Len() int { return len(t.rules) - 1 }
