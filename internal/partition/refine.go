package partition

import (
	"sort"

	"snap1/internal/semnet"
)

// refinePasses bounds the label-propagation sweeps before and after the
// boundary-swap pass; refinement cost stays O(passes × links) no matter
// how slowly a pathological network converges.
const (
	refinePasses     = 6
	postSwapPasses   = 2
	swapCandidateCap = 96
)

// Refined is the cut-minimizing strategy: degree-ordered BFS seeding
// followed by bounded label-propagation and boundary-swap refinement.
//
// Seeding grows one connected region per cluster, like Semantic, but
// each region starts from the highest-weighted-degree node still
// unassigned — hubs become region cores instead of being swept in at
// whatever cluster the scan happens to be filling — and a region that
// reaches its balanced share is abandoned where it stands rather than
// spilling its frontier into the next cluster.
//
// Refinement then sweeps all nodes in ID order for a bounded number of
// passes, moving each node to the neighboring cluster holding the most
// link weight, provided the destination stays under a small slack above
// the balanced share (never above capacity) and the source cluster keeps
// at least one node. Nodes whose best cluster is full get one
// boundary-swap pass: the node trades places with a member of the full
// cluster when the exchange shrinks the weighted cut. Preprocessor
// continuation links weigh 4× (see linkWeight), so subnode trees stick
// to their parent concept throughout.
//
// The whole pipeline reads only the CSR snapshot and iterates in fixed
// ID or sorted order, so the same knowledge base, cluster count, and
// capacity always produce the same assignment.
func Refined(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	v := kb.CSR()
	n := v.NumNodes()
	a := make(Assignment, n)
	if n == 0 {
		return a, nil
	}
	for i := range a {
		a[i] = -1
	}
	share := (n + clusters - 1) / clusters
	if share > capacity {
		share = capacity
	}

	// Weighted degree of every node (both directions, continuation ×4).
	deg := make([]int64, n)
	for id := 0; id < n; id++ {
		for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
			w := linkWeight(l.Rel)
			deg[id] += w
			deg[l.To] += w
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		x, y := order[i], order[j]
		if deg[x] != deg[y] {
			return deg[x] > deg[y]
		}
		return x < y
	})

	// Region growing: BFS from each seed, both link directions, stopping
	// at the balanced share. The last cluster absorbs any remainder
	// (check() guarantees it fits capacity when share == capacity, and
	// the remainder is at most share otherwise).
	size := make([]int, clusters)
	cur := 0
	queue := make([]int32, 0, 256)
	assign := func(id int32) bool {
		if a[id] != -1 || (size[cur] >= share && cur != clusters-1) {
			return false
		}
		a[id] = cur
		size[cur]++
		return true
	}
	for _, seed := range order {
		if a[seed] != -1 {
			continue
		}
		if size[cur] >= share && cur < clusters-1 {
			cur++
		}
		assign(seed)
		queue = append(queue[:0], seed)
		for qi := 0; qi < len(queue); qi++ {
			if size[cur] >= share && cur != clusters-1 {
				break // region full: the next seed opens the next cluster
			}
			id := queue[qi]
			for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
				if assign(int32(l.To)) {
					queue = append(queue, int32(l.To))
				}
			}
			for _, from := range v.InFrom[v.InOff[id]:v.InOff[id+1]] {
				if assign(int32(from)) {
					queue = append(queue, int32(from))
				}
			}
		}
	}

	// Refinement. limit allows a little imbalance in exchange for cut:
	// share plus one eighth, never above capacity.
	limit := share + (share+7)/8
	if limit > capacity {
		limit = capacity
	}

	// wbuf[c] accumulates the link weight node id holds in cluster c;
	// touched records which entries to zero afterwards (linkWeight ≥ 1,
	// so a zero entry always means untouched).
	wbuf := make([]int64, clusters)
	touched := make([]int32, 0, clusters)
	gather := func(id int) {
		for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
			c := a[l.To]
			if wbuf[c] == 0 {
				touched = append(touched, int32(c))
			}
			wbuf[c] += linkWeight(l.Rel)
		}
		for k := v.InOff[id]; k < v.InOff[id+1]; k++ {
			c := a[v.InFrom[k]]
			if wbuf[c] == 0 {
				touched = append(touched, int32(c))
			}
			wbuf[c] += linkWeight(v.InRel[k])
		}
	}
	clearbuf := func() {
		for _, c := range touched {
			wbuf[c] = 0
		}
		touched = touched[:0]
	}
	// edgeW is the direct link weight between two specific nodes, needed
	// to correct the gain of a swap (a shared edge stays cut after one).
	edgeW := func(u, w int) int64 {
		var sum int64
		for _, l := range v.Links[v.Off[u]:v.Off[u+1]] {
			if int(l.To) == w {
				sum += linkWeight(l.Rel)
			}
		}
		for k := v.InOff[u]; k < v.InOff[u+1]; k++ {
			if int(v.InFrom[k]) == w {
				sum += linkWeight(v.InRel[k])
			}
		}
		return sum
	}

	// labelPass moves each node (ID order) to the neighboring cluster
	// with the most link weight, under the balance limit; reports moves.
	labelPass := func() int {
		moved := 0
		for id := 0; id < n; id++ {
			home := a[id]
			if size[home] <= 1 {
				continue // keep every cluster populated
			}
			gather(id)
			best, bestW := home, wbuf[home]
			for _, c := range touched {
				ci := int(c)
				if ci == home || size[ci] >= limit {
					continue
				}
				w := wbuf[ci]
				if w > bestW || (w == bestW && best != home && ci < best) {
					best, bestW = ci, w
				}
			}
			clearbuf()
			if best != home {
				a[id] = best
				size[home]--
				size[best]++
				moved++
			}
		}
		return moved
	}

	// swapPass handles nodes whose best cluster is at the balance limit:
	// trade places with a member of that cluster when the exchange
	// shrinks the weighted cut. Sizes are unchanged by a swap. Member
	// lists are built once per pass; entries gone stale from an earlier
	// swap in the same pass are skipped (a missed opportunity, not an
	// error), keeping the pass deterministic and single-scan.
	swapPass := func() int {
		members := make([][]int32, clusters)
		for id := 0; id < n; id++ {
			members[a[id]] = append(members[a[id]], int32(id))
		}
		swapped := 0
		for id := 0; id < n; id++ {
			home := a[id]
			gather(id)
			wHome := wbuf[home]
			best, bestW := -1, wHome
			for _, c := range touched {
				ci := int(c)
				if ci == home {
					continue
				}
				w := wbuf[ci]
				if w > bestW || (w == bestW && best != -1 && ci < best) {
					best, bestW = ci, w
				}
			}
			clearbuf()
			if best == -1 || size[best] < limit {
				continue // unblocked moves belong to labelPass
			}
			gain := bestW - wHome
			tried := 0
			for _, cand := range members[best] {
				if int(cand) == id || a[cand] != best {
					continue
				}
				if tried++; tried > swapCandidateCap {
					break
				}
				gather(int(cand))
				candGain := wbuf[home] - wbuf[best]
				clearbuf()
				if gain+candGain-2*edgeW(id, int(cand)) > 0 {
					a[id] = best
					a[cand] = home
					swapped++
					break
				}
			}
		}
		return swapped
	}

	for pass := 0; pass < refinePasses; pass++ {
		if labelPass() == 0 {
			break
		}
	}
	if swapPass() > 0 {
		for pass := 0; pass < postSwapPasses; pass++ {
			if labelPass() == 0 {
				break
			}
		}
	}
	return a, nil
}
