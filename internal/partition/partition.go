// Package partition implements the knowledge-base partitioning functions
// that divide the semantic network into regions, one region per cluster
// (Section II-A: "The mapping function is variable with up to 1024 nodes
// per cluster using sequential, round-robin, or semantically-based
// allocation").
package partition

import (
	"fmt"

	"snap1/internal/semnet"
)

// Assignment maps each global node index to its cluster.
type Assignment []int

// Func is a partitioning strategy: it assigns every node of kb to one of
// the clusters without exceeding the per-cluster node capacity.
type Func func(kb *semnet.KB, clusters, capacity int) (Assignment, error)

// ErrTooLarge is wrapped when the network does not fit the array. It
// wraps semnet.ErrCapacity so every node-capacity failure — whether
// caught here or at a cluster store — answers to one public sentinel.
var ErrTooLarge = fmt.Errorf("partition: knowledge base exceeds array capacity: %w", semnet.ErrCapacity)

func check(kb *semnet.KB, clusters, capacity int) error {
	if n := kb.NumNodes(); n > clusters*capacity {
		return fmt.Errorf("%w: %d nodes > %d clusters × %d", ErrTooLarge, n, clusters, capacity)
	}
	return nil
}

// Sequential assigns consecutive node IDs to the same cluster in blocks,
// balancing block sizes across clusters.
func Sequential(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	n := kb.NumNodes()
	a := make(Assignment, n)
	block := (n + clusters - 1) / clusters
	if block == 0 {
		block = 1
	}
	for i := 0; i < n; i++ {
		c := i / block
		if c >= clusters {
			c = clusters - 1
		}
		a[i] = c
	}
	return a, nil
}

// RoundRobin deals node IDs across clusters modulo the cluster count,
// spreading every region of the network over the whole array.
func RoundRobin(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	n := kb.NumNodes()
	a := make(Assignment, n)
	for i := 0; i < n; i++ {
		a[i] = i % clusters
	}
	return a, nil
}

// Semantic allocates connected regions of the network to the same cluster:
// a breadth-first traversal fills each cluster to its balanced share
// before moving on, so propagation chains tend to stay cluster-local.
// Preprocessor subnodes always co-locate with the concept they continue.
func Semantic(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	n := kb.NumNodes()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	share := (n + clusters - 1) / clusters
	if share > capacity {
		share = capacity
	}
	cluster, filled := 0, 0
	place := func(id int) bool {
		if a[id] != -1 {
			return false
		}
		if filled >= share && cluster < clusters-1 {
			cluster++
			filled = 0
		}
		a[id] = cluster
		filled++
		return true
	}

	queue := make([]int, 0, 64)
	for seed := 0; seed < n; seed++ {
		if a[seed] != -1 {
			continue
		}
		queue = append(queue[:0], seed)
		place(seed)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			node, err := kb.Node(semnet.NodeID(id))
			if err != nil {
				return nil, err
			}
			for _, l := range node.Out {
				if place(int(l.To)) {
					queue = append(queue, int(l.To))
				}
			}
		}
	}
	return a, nil
}

// Balance reports the per-cluster node counts of an assignment.
func Balance(a Assignment, clusters int) []int {
	counts := make([]int, clusters)
	for _, c := range a {
		if c >= 0 && c < clusters {
			counts[c]++
		}
	}
	return counts
}

// CutRatio reports the fraction of links whose endpoints land in different
// clusters — the traffic a partition sends through the interconnect.
func CutRatio(kb *semnet.KB, a Assignment) float64 {
	total, cut := 0, 0
	for id := 0; id < kb.NumNodes(); id++ {
		node, err := kb.Node(semnet.NodeID(id))
		if err != nil {
			continue
		}
		for _, l := range node.Out {
			total++
			if a[id] != a[l.To] {
				cut++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// ByName resolves a strategy name for command-line tools.
func ByName(name string) (Func, error) {
	switch name {
	case "sequential", "seq":
		return Sequential, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	case "semantic", "sem":
		return Semantic, nil
	default:
		return nil, fmt.Errorf("partition: unknown strategy %q", name)
	}
}
