// Package partition implements the knowledge-base partitioning functions
// that divide the semantic network into regions, one region per cluster
// (Section II-A: "The mapping function is variable with up to 1024 nodes
// per cluster using sequential, round-robin, or semantically-based
// allocation"), plus the cut and hop metrics that score them and a
// hop-aware placement stage (place.go) that maps regions onto hypercube
// addresses.
//
// Every strategy is deterministic: the same knowledge base, cluster
// count, and capacity always yield the same assignment. Partitioning is
// a pure performance knob — query results are bit-identical across
// strategies; only virtual-time communication charges differ.
package partition

import (
	"fmt"

	"snap1/internal/icn"
	"snap1/internal/semnet"
)

// Assignment maps each global node index to its cluster.
type Assignment []int

// Func is a partitioning strategy: it assigns every node of kb to one of
// the clusters without exceeding the per-cluster node capacity.
type Func func(kb *semnet.KB, clusters, capacity int) (Assignment, error)

// ErrTooLarge is wrapped when the network does not fit the array. It
// wraps semnet.ErrCapacity so every node-capacity failure — whether
// caught here or at a cluster store — answers to one public sentinel.
var ErrTooLarge = fmt.Errorf("partition: knowledge base exceeds array capacity: %w", semnet.ErrCapacity)

func check(kb *semnet.KB, clusters, capacity int) error {
	if n := kb.NumNodes(); n > clusters*capacity {
		return fmt.Errorf("%w: %d nodes > %d clusters × %d", ErrTooLarge, n, clusters, capacity)
	}
	return nil
}

// linkWeight scores a link for locality decisions. Preprocessor
// continuation links weigh heavier than semantic relations: a subnode
// split from its parent costs a remote expansion on every activation of
// the parent, so co-locating continuation trees matters more than
// co-locating any single semantic neighbor.
func linkWeight(rel semnet.RelType) int64 {
	if rel == semnet.RelCont {
		return 4
	}
	return 1
}

// Sequential assigns consecutive node IDs to the same cluster in blocks,
// balancing block sizes across clusters.
func Sequential(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	n := kb.NumNodes()
	a := make(Assignment, n)
	block := (n + clusters - 1) / clusters
	if block == 0 {
		block = 1
	}
	for i := 0; i < n; i++ {
		c := i / block
		if c >= clusters {
			c = clusters - 1
		}
		a[i] = c
	}
	return a, nil
}

// RoundRobin deals node IDs across clusters modulo the cluster count,
// spreading every region of the network over the whole array.
func RoundRobin(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	n := kb.NumNodes()
	a := make(Assignment, n)
	for i := 0; i < n; i++ {
		a[i] = i % clusters
	}
	return a, nil
}

// Semantic allocates connected regions of the network to the same cluster:
// a breadth-first traversal fills each cluster to its balanced share
// before moving on, so propagation chains tend to stay cluster-local.
// The traversal follows links in both directions — a high-fanin hub is
// reached from the nodes that point at it, not only through its own
// out-links — so hubs co-locate with their neighborhoods. Preprocessor
// subnodes always co-locate with the concept they continue (the
// continuation link is an ordinary out-link and is followed like one).
func Semantic(kb *semnet.KB, clusters, capacity int) (Assignment, error) {
	if err := check(kb, clusters, capacity); err != nil {
		return nil, err
	}
	v := kb.CSR()
	n := v.NumNodes()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	share := (n + clusters - 1) / clusters
	if share > capacity {
		share = capacity
	}
	cluster, filled := 0, 0
	place := func(id int) bool {
		if a[id] != -1 {
			return false
		}
		if filled >= share && cluster < clusters-1 {
			cluster++
			filled = 0
		}
		a[id] = cluster
		filled++
		return true
	}

	queue := make([]int, 0, 64)
	for seed := 0; seed < n; seed++ {
		if a[seed] != -1 {
			continue
		}
		queue = append(queue[:0], seed)
		place(seed)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			for _, l := range v.Out(semnet.NodeID(id)) {
				if place(int(l.To)) {
					queue = append(queue, int(l.To))
				}
			}
			for _, from := range v.InFrom[v.InOff[id]:v.InOff[id+1]] {
				if place(int(from)) {
					queue = append(queue, int(from))
				}
			}
		}
	}
	return a, nil
}

// Balance reports the per-cluster node counts of an assignment.
func Balance(a Assignment, clusters int) []int {
	counts := make([]int, clusters)
	for _, c := range a {
		if c >= 0 && c < clusters {
			counts[c]++
		}
	}
	return counts
}

// CutRatio reports the fraction of links whose endpoints land in different
// clusters — the traffic a partition sends through the interconnect. It
// walks the knowledge base's flat CSR adjacency snapshot, so a full sweep
// is a linear scan of one link slab.
func CutRatio(kb *semnet.KB, a Assignment) float64 {
	v := kb.CSR()
	if len(v.Links) == 0 {
		return 0
	}
	cut := 0
	for id, n := 0, v.NumNodes(); id < n; id++ {
		home := a[id]
		for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
			if a[l.To] != home {
				cut++
			}
		}
	}
	return float64(cut) / float64(len(v.Links))
}

// HopCost reports the mean number of hypercube hops a message sent down
// each link would take under the given assignment — 0 for cluster-local
// links, 1 for links between clusters one digit apart, and so on. Where
// CutRatio only counts whether a link crosses the interconnect, HopCost
// also scores how far it travels, which is what the placement stage
// (Place) minimizes.
func HopCost(kb *semnet.KB, a Assignment, clusters int) float64 {
	v := kb.CSR()
	if len(v.Links) == 0 {
		return 0
	}
	t := icn.NewTopology(clusters)
	hops := hopTable(t)
	var total int64
	for id, n := 0, v.NumNodes(); id < n; id++ {
		home := a[id] * clusters
		for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
			total += int64(hops[home+a[l.To]])
		}
	}
	return float64(total) / float64(len(v.Links))
}

// hopTable precomputes the pairwise hop counts of a topology as one flat
// clusters×clusters array (row = source).
func hopTable(t icn.Topology) []int8 {
	c := t.Clusters()
	tab := make([]int8, c*c)
	for from := 0; from < c; from++ {
		for to := 0; to < c; to++ {
			tab[from*c+to] = int8(t.Hops(from, to))
		}
	}
	return tab
}

// ByName resolves a strategy name for command-line tools.
func ByName(name string) (Func, error) {
	switch name {
	case "sequential", "seq":
		return Sequential, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	case "semantic", "sem":
		return Semantic, nil
	case "refined", "ref":
		return Refined, nil
	default:
		return nil, fmt.Errorf("partition: unknown strategy %q", name)
	}
}
