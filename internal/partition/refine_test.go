package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"snap1/internal/semnet"
)

// blobKB builds k dense communities of size each, joined by a sparse
// ring of bridge links — the workload shape where a refinement pass
// should pull far ahead of plain BFS growth.
func blobKB(t *testing.T, k, size int) *semnet.KB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	n := k * size
	for i := 0; i < n; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	// Node IDs are shuffled across communities so block partitioners
	// can't win by accident of numbering.
	perm := rng.Perm(n)
	member := func(blob, j int) semnet.NodeID { return semnet.NodeID(perm[blob*size+j]) }
	for b := 0; b < k; b++ {
		for j := 0; j < size*4; j++ {
			u := member(b, rng.Intn(size))
			v := member(b, rng.Intn(size))
			if u != v {
				kb.MustAddLink(u, rel, 1, v)
			}
		}
		// One bridge to the next community.
		kb.MustAddLink(member(b, 0), rel, 1, member((b+1)%k, 0))
	}
	return kb
}

func TestRefinedDeterministic(t *testing.T) {
	kb := blobKB(t, 4, 64)
	a, err := Refined(kb, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		b, err := Refined(kb, 4, 80)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: node %d assigned %d then %d", trial, i, a[i], b[i])
			}
		}
	}
}

func TestRefinedBeatsSemanticOnCommunities(t *testing.T) {
	kb := blobKB(t, 8, 48)
	ref, err := Refined(kb, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	sem, err := Semantic(kb, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	cutRef, cutSem := CutRatio(kb, ref), CutRatio(kb, sem)
	if cutRef >= cutSem {
		t.Fatalf("refined cut %.4f >= semantic cut %.4f", cutRef, cutSem)
	}
	// Eight communities with one bridge each: refinement should leave
	// only a handful of cross-cluster links.
	if cutRef > 0.15 {
		t.Errorf("refined cut of a community graph = %.4f, want near zero", cutRef)
	}
}

func TestRefinedRespectsBalance(t *testing.T) {
	// One giant community plus a tail: label propagation must not herd
	// everything into a single cluster past the balance limit.
	kb := blobKB(t, 1, 200)
	clusters, capacity := 4, 64
	a, err := Refined(kb, clusters, capacity)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, "refined", a, 200, clusters, capacity)
}

func TestPlacePreservesPartition(t *testing.T) {
	kb := blobKB(t, 8, 32)
	a, err := Refined(kb, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	placed := Place(kb, a, 8)

	// Placement only relabels regions: co-residence and therefore the
	// link cut are untouched.
	if CutRatio(kb, placed) != CutRatio(kb, a) {
		t.Fatalf("placement changed cut: %.4f vs %.4f", CutRatio(kb, placed), CutRatio(kb, a))
	}
	for i := range a {
		for j := range a {
			if (a[i] == a[j]) != (placed[i] == placed[j]) {
				t.Fatalf("placement split/merged regions at nodes %d,%d", i, j)
			}
		}
	}

	// The relabeling must be a permutation of cluster addresses.
	order := PlaceOrder(kb, a, 8)
	seen := make([]bool, 8)
	for _, addr := range order {
		if addr < 0 || addr >= 8 || seen[addr] {
			t.Fatalf("PlaceOrder not a permutation: %v", order)
		}
		seen[addr] = true
	}

	// Placement exists to shorten routes: hop cost must not get worse.
	if hp, ha := HopCost(kb, placed, 8), HopCost(kb, a, 8); hp > ha {
		t.Fatalf("placement raised hop cost: %.4f > %.4f", hp, ha)
	}
}

func TestPlaceIdentityWhenTrivial(t *testing.T) {
	kb := lineKB(t, 16)
	a, _ := Sequential(kb, 2, 8)
	for i, addr := range PlaceOrder(kb, a, 2) {
		if addr != i {
			t.Fatalf("2-cluster placement must be identity, got %v", PlaceOrder(kb, a, 2))
		}
	}
}

func TestHopCost(t *testing.T) {
	kb := lineKB(t, 64)
	local, _ := Semantic(kb, 4, 16)
	spread, _ := RoundRobin(kb, 4, 16)
	hl, hs := HopCost(kb, local, 4), HopCost(kb, spread, 4)
	if hl >= hs {
		t.Fatalf("semantic hop cost %.4f >= round-robin %.4f", hl, hs)
	}
	if one := HopCost(kb, make(Assignment, 64), 4); one != 0 {
		t.Fatalf("all-local assignment hop cost = %.4f, want 0", one)
	}
}
