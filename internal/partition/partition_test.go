package partition

import (
	"errors"
	"fmt"
	"testing"

	"snap1/internal/semnet"
)

// lineKB builds a linear chain of n nodes.
func lineKB(t *testing.T, n int) *semnet.KB {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	for i := 0; i < n; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	for i := 0; i+1 < n; i++ {
		kb.MustAddLink(semnet.NodeID(i), rel, 1, semnet.NodeID(i+1))
	}
	return kb
}

func checkAssignment(t *testing.T, name string, a Assignment, n, clusters, capacity int) {
	t.Helper()
	if len(a) != n {
		t.Fatalf("%s: assignment length %d, want %d", name, len(a), n)
	}
	counts := Balance(a, clusters)
	total := 0
	for c, cnt := range counts {
		if cnt > capacity {
			t.Errorf("%s: cluster %d holds %d > capacity %d", name, c, cnt, capacity)
		}
		total += cnt
	}
	if total != n {
		t.Errorf("%s: %d nodes assigned, want %d", name, total, n)
	}
}

func TestAllStrategiesRespectCapacity(t *testing.T) {
	for _, tc := range []struct{ n, clusters, capacity int }{
		{100, 4, 30},
		{128, 4, 32}, // exactly full
		{1, 8, 4},
		{33, 2, 17},
	} {
		kb := lineKB(t, tc.n)
		for name, f := range map[string]Func{
			"sequential": Sequential, "round-robin": RoundRobin,
			"semantic": Semantic, "refined": Refined,
		} {
			a, err := f(kb, tc.clusters, tc.capacity)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, tc, err)
			}
			checkAssignment(t, name, a, tc.n, tc.clusters, tc.capacity)
		}
	}
}

func TestTooLarge(t *testing.T) {
	kb := lineKB(t, 100)
	for _, f := range []Func{Sequential, RoundRobin, Semantic, Refined} {
		if _, err := f(kb, 4, 10); !errors.Is(err, ErrTooLarge) {
			t.Errorf("expected ErrTooLarge, got %v", err)
		}
	}
}

func TestSequentialIsBlocky(t *testing.T) {
	kb := lineKB(t, 100)
	a, err := Sequential(kb, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster index must be non-decreasing over node IDs.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("sequential not blocky at %d", i)
		}
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	kb := lineKB(t, 100)
	a, _ := RoundRobin(kb, 4, 30)
	for i, c := range a {
		if c != i%4 {
			t.Fatalf("round-robin at %d = %d", i, c)
		}
	}
}

func TestSemanticKeepsChainsLocal(t *testing.T) {
	// A chain is maximally connected: a connectivity-based partition
	// must cut far fewer links than round-robin.
	kb := lineKB(t, 256)
	sem, _ := Semantic(kb, 4, 64)
	rr, _ := RoundRobin(kb, 4, 64)
	cutSem, cutRR := CutRatio(kb, sem), CutRatio(kb, rr)
	if cutSem >= cutRR {
		t.Fatalf("semantic cut %.2f >= round-robin cut %.2f", cutSem, cutRR)
	}
	if cutSem > 0.05 {
		t.Errorf("semantic cut of a chain = %.2f, want near zero", cutSem)
	}
	if cutRR < 0.9 {
		t.Errorf("round-robin cut of a chain = %.2f, want near one", cutRR)
	}
}

func TestCutRatioEmpty(t *testing.T) {
	kb := semnet.NewKB()
	kb.MustAddNode("solo", 0)
	a, _ := Sequential(kb, 2, 4)
	if CutRatio(kb, a) != 0 {
		t.Error("no links → zero cut")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sequential", "seq", "round-robin", "rr", "semantic", "sem", "refined", "ref"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("mystery"); err == nil {
		t.Error("unknown strategy must fail")
	}
}
