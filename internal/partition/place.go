package partition

import (
	"snap1/internal/icn"
	"snap1/internal/semnet"
)

// placeSwapPasses bounds the pairwise-swap improvement loop; placement
// stays O(passes × clusters³) in the worst case.
const placeSwapPasses = 8

// placeMaxClusters gates the O(clusters³) placement search. Arrays past
// this size get the identity placement — the paper's machine tops out at
// 32 clusters, so the gate only guards degenerate configurations.
const placeMaxClusters = 128

// Place maps partition regions onto hypercube cluster addresses so that
// region pairs exchanging the most link weight land few hops apart — the
// quadratic-assignment step between partitioning (which decides the cut)
// and routing (which pays per hop). It measures the weighted inter-region
// traffic of every cut link, seeds a greedy placement (heaviest-traffic
// region first, each following region on the free address closest to the
// regions it talks to), then runs bounded pairwise-swap improvement.
//
// The result is a new assignment with regions relabeled to their
// addresses; region contents are untouched, so cut ratio is invariant
// while hop cost drops. Place is deterministic and a no-op when no link
// crosses regions (or when clusters exceeds the search gate).
func Place(kb *semnet.KB, a Assignment, clusters int) Assignment {
	out := make(Assignment, len(a))
	perm := PlaceOrder(kb, a, clusters)
	for i, c := range a {
		out[i] = perm[c]
	}
	return out
}

// PlaceOrder computes the region→address permutation Place applies:
// perm[region] is the hypercube address the region should occupy. The
// identity permutation means placement found nothing to improve.
func PlaceOrder(kb *semnet.KB, a Assignment, clusters int) []int {
	perm := make([]int, clusters)
	for i := range perm {
		perm[i] = i
	}
	if clusters <= 2 || clusters > placeMaxClusters {
		return perm
	}

	// Weighted inter-region traffic of cut links (symmetric matrix).
	v := kb.CSR()
	w := make([]int64, clusters*clusters)
	cross := false
	for id, n := 0, v.NumNodes(); id < n; id++ {
		home := a[id]
		for _, l := range v.Links[v.Off[id]:v.Off[id+1]] {
			if dst := a[l.To]; dst != home {
				lw := linkWeight(l.Rel)
				w[home*clusters+dst] += lw
				w[dst*clusters+home] += lw
				cross = true
			}
		}
	}
	if !cross {
		return perm
	}

	t := icn.NewTopology(clusters)
	hops := hopTable(t)
	// h sums both directions once, so pair costs are symmetric even on
	// incomplete arrays whose fallback routes are not.
	h := func(x, y int) int64 {
		return int64(hops[x*clusters+y]) + int64(hops[y*clusters+x])
	}

	// Greedy seeding. attach[r] tracks r's traffic to already-placed
	// regions; the heaviest-total region anchors address 0.
	placed := make([]bool, clusters)  // region placed?
	usedAddr := make([]bool, clusters)
	addrOf := make([]int, clusters) // region -> address
	attach := make([]int64, clusters)
	total := make([]int64, clusters)
	for r := 0; r < clusters; r++ {
		for s := 0; s < clusters; s++ {
			total[r] += w[r*clusters+s]
		}
	}
	anchor := 0
	for r := 1; r < clusters; r++ {
		if total[r] > total[anchor] {
			anchor = r
		}
	}
	place := func(r, addr int) {
		placed[r], usedAddr[addr], addrOf[r] = true, true, addr
		for s := 0; s < clusters; s++ {
			if !placed[s] {
				attach[s] += w[r*clusters+s]
			}
		}
	}
	place(anchor, 0)
	for step := 1; step < clusters; step++ {
		next := -1
		for r := 0; r < clusters; r++ {
			if !placed[r] && (next == -1 || attach[r] > attach[next]) {
				next = r
			}
		}
		bestAddr, bestCost := -1, int64(0)
		for addr := 0; addr < clusters; addr++ {
			if usedAddr[addr] {
				continue
			}
			var cost int64
			for s := 0; s < clusters; s++ {
				if placed[s] {
					cost += w[next*clusters+s] * h(addr, addrOf[s])
				}
			}
			if bestAddr == -1 || cost < bestCost {
				bestAddr, bestCost = addr, cost
			}
		}
		place(next, bestAddr)
	}

	// Pairwise-swap improvement: exchange two regions' addresses when it
	// lowers total traffic×hops; first-improvement, fixed scan order.
	contrib := func(r, addr, skip int) int64 {
		var cost int64
		for s := 0; s < clusters; s++ {
			if s != r && s != skip {
				cost += w[r*clusters+s] * h(addr, addrOf[s])
			}
		}
		return cost
	}
	for pass := 0; pass < placeSwapPasses; pass++ {
		improved := false
		for r1 := 0; r1 < clusters; r1++ {
			for r2 := r1 + 1; r2 < clusters; r2++ {
				a1, a2 := addrOf[r1], addrOf[r2]
				old := contrib(r1, a1, r2) + contrib(r2, a2, r1)
				swapped := contrib(r1, a2, r2) + contrib(r2, a1, r1)
				if swapped < old {
					addrOf[r1], addrOf[r2] = a2, a1
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	copy(perm, addrOf)
	return perm
}
