// Package nlu implements the paper's two-stage natural language
// understanding application: a serial phrasal parser that runs on the
// controller and breaks the input sentence into phrases, and a
// memory-based parser that recognizes concept sequences in the knowledge
// base by marker propagation (Section IV, Tables III/IV).
package nlu

import (
	"fmt"
	"strings"

	"snap1/internal/kbgen"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// PhraseType classifies a chunk produced by the phrasal parser.
type PhraseType uint8

// Phrase types.
const (
	PhraseNP  PhraseType = iota // noun phrase
	PhraseVP                    // verb phrase
	PhrasePP                    // prepositional phrase
	PhraseAdv                   // adverbial
	PhraseOther
)

func (t PhraseType) String() string {
	switch t {
	case PhraseNP:
		return "NP"
	case PhraseVP:
		return "VP"
	case PhrasePP:
		return "PP"
	case PhraseAdv:
		return "ADVP"
	default:
		return "X"
	}
}

// Phrase is one chunk: its type, surface tokens, and the content words the
// memory-based parser will activate (determiners and auxiliaries are
// absorbed here and never reach the array).
type Phrase struct {
	Type    PhraseType
	Tokens  []string
	Content []semnet.NodeID
}

// Phrasal parser cost model (controller clock domain). The phrasal parser
// is a serial program on the controller, so its time is set by sentence
// length and is independent of knowledge-base size — the property Table IV
// separates P.P. time from M.B. time to show.
const (
	ppCyclesPerToken  = 1400 // lexicon lookup + tag
	ppCyclesPerPhrase = 900  // chunk assembly
	ppCyclesFixed     = 2200 // sentence setup and teardown
)

// Chunk runs the phrasal parser over the token sequence, resolving
// parts of speech against the knowledge base's lexicon and grouping
// tokens into NP/VP/PP/ADVP chunks. It returns the phrases and the
// simulated serial controller time consumed.
func Chunk(g *kbgen.Generated, words []string) ([]Phrase, timing.Time, error) {
	var phrases []Phrase
	var cur *Phrase
	flush := func() {
		if cur != nil && len(cur.Tokens) > 0 {
			phrases = append(phrases, *cur)
		}
		cur = nil
	}
	start := func(t PhraseType) {
		flush()
		cur = &Phrase{Type: t}
	}

	cycles := int64(ppCyclesFixed)
	for _, w := range words {
		cycles += ppCyclesPerToken
		id, ok := g.KB.Lookup(w)
		if !ok {
			return nil, 0, fmt.Errorf("nlu: word %q not in lexicon", w)
		}
		cat := posOf(g, id)
		content := true
		switch cat {
		case "det", "aux-verb":
			content = false
			if cur == nil || cur.Type != PhraseNP {
				start(PhraseNP)
			}
		case "noun", "adj", "pronoun":
			if cur == nil || (cur.Type != PhraseNP && cur.Type != PhrasePP) {
				start(PhraseNP)
			}
		case "verb":
			start(PhraseVP)
		case "prep":
			start(PhrasePP)
		case "adv":
			start(PhraseAdv)
		default:
			start(PhraseOther)
		}
		if cur == nil {
			start(PhraseOther)
		}
		cur.Tokens = append(cur.Tokens, w)
		if content {
			cur.Content = append(cur.Content, id)
		}
	}
	flush()
	cycles += ppCyclesPerPhrase * int64(len(phrases))
	return phrases, timing.ControllerClock.Cycles(cycles), nil
}

// posOf resolves a lexical node's part of speech: the is-a link whose
// target carries the syntax color.
func posOf(g *kbgen.Generated, word semnet.NodeID) string {
	node, err := g.KB.Node(word)
	if err != nil {
		return ""
	}
	for _, l := range node.Out {
		if l.Rel != g.Rel.IsA {
			continue
		}
		target, err := g.KB.Node(l.To)
		if err != nil {
			continue
		}
		if target.Color == g.Col.Syntax {
			return rootCat(g, l.To)
		}
	}
	return ""
}

// rootCat walks filler syntax categories up to the core category they
// specialize.
func rootCat(g *kbgen.Generated, cat semnet.NodeID) string {
	for hops := 0; hops < 8; hops++ {
		name := g.KB.Name(cat)
		if !strings.HasPrefix(name, "syn-") {
			return name
		}
		node, err := g.KB.Node(cat)
		if err != nil {
			return name
		}
		advanced := false
		for _, l := range node.Out {
			if l.Rel == g.Rel.IsA {
				cat = l.To
				advanced = true
				break
			}
		}
		if !advanced {
			return name
		}
	}
	return g.KB.Name(cat)
}

// ContentWords flattens the phrases' content words in sentence order.
func ContentWords(phrases []Phrase) []semnet.NodeID {
	var out []semnet.NodeID
	for _, p := range phrases {
		out = append(out, p.Content...)
	}
	return out
}
