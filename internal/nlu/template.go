package nlu

import (
	"fmt"
	"math"
	"strings"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Template is the MUC-style output of the information-extraction
// application [12]: "it accepts newswire text as input and generates the
// meaning of the sentence as output". The winning concept sequence names
// the incident; its slot fillers and the completed auxiliary case
// sequences fill the rest.
type Template struct {
	Incident    string // winning basic concept sequence
	Perpetrator string // agent slot filler
	Action      string // act slot filler
	Target      string // target/victim slot filler
	Location    string // place filler of a completed location-case
	Time        string // time filler of a completed time-case
}

// String renders the template in MUC answer-key style.
func (t Template) String() string {
	var b strings.Builder
	row := func(k, v string) {
		if v == "" {
			v = "-"
		}
		fmt.Fprintf(&b, "  %-12s %s\n", k+":", v)
	}
	row("INCIDENT", t.Incident)
	row("PERP", t.Perpetrator)
	row("ACTION", t.Action)
	row("TARGET", t.Target)
	row("LOCATION", t.Location)
	row("TIME", t.Time)
	return b.String()
}

// ExtractTemplate builds the template for the most recent successful
// Parse: slot fillers come from the winner's elements, location and time
// from the completed auxiliary case sequences.
func (p *Parser) ExtractTemplate(res *ParseResult) (Template, error) {
	if res == nil || res.Winner == "" {
		return Template{}, fmt.Errorf("nlu: no parse to extract a template from")
	}
	t := Template{Incident: res.Winner}
	roles, err := p.ExtractRoles()
	if err != nil {
		return t, err
	}
	for _, r := range roles {
		switch r.Slot {
		case 0:
			t.Perpetrator = r.Word
		case 1:
			t.Action = r.Word
		case 2:
			t.Target = r.Word
		}
	}
	for _, c := range res.Cases {
		root, ok := p.g.KB.Lookup(c)
		if !ok {
			continue
		}
		caseRoles, err := p.extractRolesOf(root, 0)
		if err != nil {
			return t, err
		}
		switch c {
		case "location-case":
			// Slot 1 is the place (slot 0 is the spatial preposition).
			for _, r := range caseRoles {
				if r.Slot == 1 {
					t.Location = r.Word
				}
			}
		case "time-case":
			for _, r := range caseRoles {
				if r.Slot == 0 {
					t.Time = r.Word
				}
			}
		}
	}
	return t, nil
}

// ExtractRoles reads back which content word filled each element slot of
// the winning sequence of the most recent successful Parse.
func (p *Parser) ExtractRoles() ([]Role, error) {
	if !p.lastValid {
		return nil, fmt.Errorf("nlu: no successful parse to extract roles from")
	}
	return p.extractRolesOf(p.lastWinner, -1)
}

// extractRolesOf runs the role-extraction program against any sequence
// root whose element activations are still planted. minGate >= 0 relaxes
// the temporal gating floor: auxiliary case sequences attach anywhere in
// the sentence, so their slot k is gated at word index >= minGate+k
// rather than the basic sequence's >= k... a gate of 0 keeps plain slot
// alignment. Passing -1 applies the basic-sequence rule (slot k needs
// word index >= k).
func (p *Parser) extractRolesOf(root semnet.NodeID, minGate int) ([]Role, error) {
	g := p.g
	pr := isa.NewProgram()
	pr.ClearM(bRoleSel)
	pr.ClearM(bRoleEl)
	pr.SearchNode(root, bRoleSel, 0)
	pr.Propagate(bRoleSel, bRoleEl, rules.Step(g.Rel.Elem), semnet.FuncNop)
	gate := func(k int) int {
		if minGate < 0 {
			return k // slot k may only be filled by word index >= k
		}
		return minGate
	}
	for k := 0; k < kbgen.MaxSeqElements; k++ {
		pr.ClearM(bRoleK)
		pr.And(bRoleEl, bElemK(k), bRoleK, semnet.FuncNop)
		for i := gate(k); i < len(p.lastContent); i++ {
			pr.ClearM(mRoleEx)
			pr.And(mSemBase+semnet.MarkerID(i), bRoleK, mRoleEx, semnet.FuncMax)
			pr.CollectNode(mRoleEx)
		}
	}
	res, err := p.m.Run(pr)
	if err != nil {
		return nil, err
	}
	var roles []Role
	coll := 0
	for k := 0; k < kbgen.MaxSeqElements; k++ {
		best := float32(math.Inf(1))
		bestI := -1
		for i := gate(k); i < len(p.lastContent); i++ {
			for _, it := range res.Collected(coll) {
				if it.Value < best {
					best, bestI = it.Value, i
				}
			}
			coll++
		}
		if bestI >= 0 {
			roles = append(roles, Role{
				Slot:  k,
				Word:  g.KB.Name(p.lastContent[bestI]),
				Node:  p.lastContent[bestI],
				Score: best,
			})
		}
	}
	return roles, nil
}
