package nlu

import (
	"testing"

	"snap1/internal/kbgen"
)

func TestExtractRoles(t *testing.T) {
	p, g := newTestParser(t, 2000, true)
	s := g.Domain.Sentences[1] // "Guerrillas bombed the embassy."
	res, err := p.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "bombing-event" {
		t.Fatalf("winner %q", res.Winner)
	}
	roles, err := p.ExtractRoles()
	if err != nil {
		t.Fatal(err)
	}
	bySlot := make(map[int]string)
	for _, r := range roles {
		bySlot[r.Slot] = r.Word
	}
	want := map[int]string{0: "guerrillas", 1: "bombed", 2: "embassy"}
	for k, w := range want {
		if bySlot[k] != w {
			t.Errorf("slot %d filled by %q, want %q (roles %v)", k, bySlot[k], w, roles)
		}
	}
}

func TestExtractRolesWithoutParse(t *testing.T) {
	p, _ := newTestParser(t, 512, true)
	if _, err := p.ExtractRoles(); err == nil {
		t.Fatal("role extraction without a parse must fail")
	}
}

func TestDiscoursePronounResolution(t *testing.T) {
	p, g := newTestParser(t, 2000, true)
	d := NewDiscourse(p)

	// Establish the referent: "Guerrillas bombed the embassy."
	res1, roles1, err := d.Parse(g.Domain.Sentences[1])
	if err != nil {
		t.Fatal(err)
	}
	if res1.Winner != "bombing-event" || len(roles1) == 0 {
		t.Fatalf("setup parse: %q, %d roles", res1.Winner, len(roles1))
	}

	// "They attacked the mayor." — "they" must resolve to the guerrillas
	// (the most recent animate entity) for agent(group) to complete.
	s2 := kbgen.Sentence{
		ID:     "D2",
		Text:   "They attacked the mayor.",
		Words:  []string{"they", "attacked", "the", "mayor"},
		Expect: "attack-event",
	}
	res2, roles2, err := d.Parse(s2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Winner != "attack-event" {
		t.Fatalf("pronoun sentence parsed as %q, want attack-event", res2.Winner)
	}
	agent := ""
	for _, r := range roles2 {
		if r.Slot == 0 {
			agent = r.Word
		}
	}
	if agent != "guerrillas" {
		t.Fatalf("agent resolved to %q, want guerrillas (entities %v)", agent, d.Entities())
	}
	if d.ResolveTime <= 0 {
		t.Error("reference resolution must consume array time")
	}
}

func TestDiscourseUnresolvedPronounFailsToParse(t *testing.T) {
	p, _ := newTestParser(t, 2000, true)
	d := NewDiscourse(p)
	// No context: "they bombed the embassy" leaves "they" unresolved and
	// the agent slot unsatisfied (the pronoun itself only reaches
	// animate, never group).
	s := kbgen.Sentence{
		ID:    "D0",
		Words: []string{"they", "bombed", "the", "embassy"},
	}
	res, _, err := d.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "" {
		t.Fatalf("unresolved pronoun parsed as %q", res.Winner)
	}
}

func TestDiscourseAgreementSelectsCompatibleAntecedent(t *testing.T) {
	p, g := newTestParser(t, 2000, true)
	d := NewDiscourse(p)

	// "A car bomb exploded near the government office yesterday."
	// Entities (recent first) include inanimate nouns (office, car, bomb)
	// and the animate government.
	if _, _, err := d.Parse(g.Domain.Sentences[3]); err != nil {
		t.Fatal(err)
	}
	// "They kidnapped the mayor": "they" is animate, so it must skip the
	// more recent inanimate fillers and bind the government group.
	s := kbgen.Sentence{
		ID:     "D3",
		Words:  []string{"they", "kidnapped", "the", "mayor"},
		Expect: "kidnap-event",
	}
	res, roles, err := d.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "kidnap-event" {
		t.Fatalf("parsed %q (entities %v)", res.Winner, d.Entities())
	}
	agent := ""
	for _, r := range roles {
		if r.Slot == 0 {
			agent = r.Word
		}
	}
	if agent != "government" {
		t.Fatalf("agent = %q, want government (entities %v)", agent, d.Entities())
	}
}
