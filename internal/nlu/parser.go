package nlu

import (
	"fmt"
	"math"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// MaxContentWords bounds the per-sentence marker allocation: each content
// word needs three complex markers (activation, semantic spread, syntactic
// spread) out of the 64 available.
const MaxContentWords = 12

// Marker allocation for the memory-based parser.
const (
	mWordBase = semnet.MarkerID(0)  // cW_i: word i activation
	mSemBase  = semnet.MarkerID(12) // cSem_i: semantic spread of word i
	mSynBase  = semnet.MarkerID(24) // cSyn_i: syntactic spread of word i

	mElem   = semnet.MarkerID(40) // merged semantic element activation
	mSat    = semnet.MarkerID(41) // sem-activated elements with scores
	mRoot   = semnet.MarkerID(42) // candidate root scores (max over elems)
	mFinal  = semnet.MarkerID(43) // complete candidates with scores
	mResult = semnet.MarkerID(44) // resolution survivors with scores
)

func bElemK(k int) semnet.MarkerID { return semnet.Binary(k) } // 0..3

var (
	bAllElem   = semnet.Binary(4)
	bSlotTmp   = semnet.Binary(5)
	bSatElems  = semnet.Binary(6)
	bNotAct    = semnet.Binary(7)
	bCand      = semnet.Binary(20)
	bCandElems = semnet.Binary(21)
	bUnsat     = semnet.Binary(22)
	bCancel    = semnet.Binary(23)
	bOK        = semnet.Binary(24)
	bWin1      = semnet.Binary(25)
	bNotBest   = semnet.Binary(26)
	bLoserRaw  = semnet.Binary(27)
	bAuxRoot   = semnet.Binary(28)
	bNotAux    = semnet.Binary(29)
	bLoser     = semnet.Binary(30)
	bCancel2   = semnet.Binary(31)
	bNotLoser  = semnet.Binary(32)
	bWin       = semnet.Binary(33)
)

func bSat(i int) semnet.MarkerID { return semnet.Binary(40 + i) } // per-word strict satisfaction

// Verification-stage markers: verPairs rotating complex-marker pairs so
// the PU overlaps the per-candidate structure walks.
const verPairs = 8

func bVerA(j int) semnet.MarkerID { return semnet.MarkerID(45 + j%verPairs) }
func bVerB(j int) semnet.MarkerID { return semnet.MarkerID(53 + j%verPairs) }

var (
	bVerTmp = semnet.Binary(62)
	bVerBad = semnet.Binary(63)
	// bCancel3 reuses the stage-1 cancel slot, which is dead by the time
	// verification runs (bWin1 already folded it in).
	bCancel3 = bCancel
)

// MaxVerify caps the number of candidate hypotheses individually verified
// per sentence; the paper notes the resulting propagation count "is not
// expected to exceed much more than 5000" because irrelevant candidates
// saturate.
const MaxVerify = 128

// Parser is the memory-based parser bound to a machine with a loaded
// linguistic knowledge base.
type Parser struct {
	m *machine.Machine
	g *kbgen.Generated

	utterance int // cycles through the utterance anchor nodes

	// State of the most recent Parse, for role extraction: the content
	// words whose markers are still planted in the array, and the
	// winning root.
	lastContent []semnet.NodeID
	lastWinner  semnet.NodeID
	lastValid   bool
}

// NewParser returns a parser over m, which must already hold g.KB.
func NewParser(m *machine.Machine, g *kbgen.Generated) *Parser {
	return &Parser{m: m, g: g}
}

// ParseResult is one sentence's outcome with the Table IV time split.
type ParseResult struct {
	Phrases    []Phrase
	Winner     string        // winning basic concept sequence ("" if none parsed)
	WinnerNode semnet.NodeID // its node (InvalidNode if none)
	Score      float32       // winner's specificity score (lower = better)
	Cases      []string      // completed auxiliary case sequences

	PPTime       timing.Time // phrasal parser (serial, controller)
	MBTime       timing.Time // memory-based parser (array)
	Instructions int
	Profile      *trace.Profile
}

// Total reports the end-to-end parse time.
func (r *ParseResult) Total() timing.Time { return r.PPTime + r.MBTime }

// Parse runs the full two-stage pipeline on a sentence.
func (p *Parser) Parse(s kbgen.Sentence) (*ParseResult, error) {
	phrases, ppTime, err := Chunk(p.g, s.Words)
	if err != nil {
		return nil, err
	}
	content := ContentWords(phrases)
	if len(content) > MaxContentWords {
		content = content[:MaxContentWords]
	}
	if len(content) == 0 {
		return nil, fmt.Errorf("nlu: sentence %q has no content words", s.ID)
	}
	res := &ParseResult{Phrases: phrases, PPTime: ppTime, Profile: &trace.Profile{}, WinnerNode: semnet.InvalidNode}
	p.lastValid = false

	// Stage 1: activate, spread, match, and collect candidates.
	p1 := p.matchProgram(content)
	r1, err := p.m.Run(p1)
	if err != nil {
		return nil, err
	}
	res.MBTime += r1.Time
	res.Instructions += p1.Len()
	res.Profile.Merge(r1.Profile)

	if _, any := p.bestScore(r1.Collected(1)); !any {
		// No complete basic candidate: the sentence does not parse.
		return res, nil
	}

	// Stage 1.5: multiple-hypothesis verification. Every activated
	// candidate's sequence structure is walked (root → elements → next
	// chain) and candidates with unsatisfied elements are cancelled.
	// The number of these propagations grows with knowledge-base size
	// as larger networks activate more irrelevant candidates (Fig. 20).
	candidates := p.candidateRoots(r1.Collected(0))
	pv := p.verifyProgram(candidates)
	rv, err := p.m.Run(pv)
	if err != nil {
		return nil, err
	}
	res.MBTime += rv.Time
	res.Instructions += pv.Len()
	res.Profile.Merge(rv.Profile)

	theta, ok := p.bestScore(rv.Collected(0))
	if !ok {
		return res, nil
	}

	// Stage 2 (program control processor role): resolve the multiple
	// hypotheses against the threshold, cancel the losers, bind the
	// winners to an utterance anchor, and retrieve them.
	anchor := p.g.Utterances[p.utterance%len(p.g.Utterances)]
	p.utterance++
	p2 := p.resolveProgram(theta, anchor)
	r2, err := p.m.Run(p2)
	if err != nil {
		return nil, err
	}
	res.MBTime += r2.Time
	res.Instructions += p2.Len()
	res.Profile.Merge(r2.Profile)

	p.extractWinners(r2.Collected(0), res)
	if res.Winner != "" {
		p.lastContent = append(p.lastContent[:0], content...)
		p.lastWinner = res.WinnerNode
		p.lastValid = true
	}
	return res, nil
}

// matchProgram builds stage 1: lexical activation, constraint spread,
// per-slot order-checked satisfaction, candidate scoring, incompleteness
// cancellation, and candidate collection.
func (p *Parser) matchProgram(content []semnet.NodeID) *isa.Program {
	g := p.g
	pr := isa.NewProgram()
	L := len(content)

	// Configuration phase: clear every working marker.
	for i := 0; i < L; i++ {
		pr.ClearM(mWordBase + semnet.MarkerID(i))
		pr.ClearM(mSemBase + semnet.MarkerID(i))
		pr.ClearM(mSynBase + semnet.MarkerID(i))
		pr.ClearM(bSat(i))
	}
	for _, m := range []semnet.MarkerID{
		mElem, mSat, mRoot, mFinal, mResult,
		bElemK(0), bElemK(1), bElemK(2), bElemK(3),
		bAllElem, bSlotTmp, bSatElems, bNotAct,
		bCand, bCandElems, bUnsat, bCancel, bOK, bWin1,
		bNotBest, bLoserRaw, bAuxRoot, bNotAux, bLoser,
		bCancel2, bNotLoser, bWin,
	} {
		pr.ClearM(m)
	}

	// Lexical activation.
	for i, w := range content {
		pr.SearchNode(w, mWordBase+semnet.MarkerID(i), 0)
	}

	// Constraint spread: semantic (is-a chains switching onto sem-of
	// reverse-constraint links) and syntactic (is-a onto syn-of), one
	// independent PROPAGATE pair per word — the program's α- and
	// β-parallelism source.
	semRule := rules.Spread(g.Rel.IsA, g.Rel.SemOf)
	synRule := rules.Spread(g.Rel.IsA, g.Rel.SynOf)
	for i := range content {
		mi := semnet.MarkerID(i)
		pr.Propagate(mWordBase+mi, mSemBase+mi, semRule, semnet.FuncAdd)
		pr.Propagate(mWordBase+mi, mSynBase+mi, synRule, semnet.FuncAdd)
	}

	// Element masks by slot color.
	for k := 0; k < kbgen.MaxSeqElements; k++ {
		pr.SearchColor(g.Col.Element[k], bElemK(k), 0)
	}
	pr.Or(bElemK(0), bElemK(1), bAllElem, semnet.FuncNop)
	pr.Or(bAllElem, bElemK(2), bAllElem, semnet.FuncNop)
	pr.Or(bAllElem, bElemK(3), bAllElem, semnet.FuncNop)

	// Strict per-word satisfaction: the same word must meet both the
	// semantic and the syntactic constraint of an element.
	for i := range content {
		mi := semnet.MarkerID(i)
		pr.And(mSemBase+mi, mSynBase+mi, bSat(i), semnet.FuncNop)
	}

	// Slot-order check: slot k may only be satisfied by word index >= k
	// (agent before act before target).
	for k := 0; k < kbgen.MaxSeqElements && k < L; k++ {
		for i := k; i < L; i++ {
			pr.And(bSat(i), bElemK(k), bSlotTmp, semnet.FuncNop)
			pr.Or(bSatElems, bSlotTmp, bSatElems, semnet.FuncNop)
		}
	}

	// Merged semantic scores (specificity distances) over all words.
	// The first OR copies with max (Apply(v,v)=v); the rest accumulate.
	pr.Or(mSemBase, mSemBase, mElem, semnet.FuncMax)
	for i := 1; i < L; i++ {
		pr.Or(mElem, mSemBase+semnet.MarkerID(i), mElem, semnet.FuncAdd)
	}
	pr.And(mElem, bAllElem, mSat, semnet.FuncAdd)

	// Candidate activation: every sequence root with at least one
	// sem-activated element becomes a hypothesis, scored by the worst
	// (largest) element distance.
	pr.Propagate(mSat, mRoot, rules.Path(g.Rel.ElemOf), semnet.FuncMax)
	pr.And(mRoot, mRoot, bCand, semnet.FuncNop)

	// Incompleteness cancellation: spread down to the candidates'
	// elements, find the unsatisfied ones, and cancel their roots — the
	// propagation traffic that grows with knowledge-base size (Fig. 20).
	pr.Propagate(bCand, bCandElems, rules.Path(g.Rel.Elem), semnet.FuncNop)
	pr.Not(bSatElems, bNotAct, 0, isa.CondNone)
	pr.And(bCandElems, bNotAct, bUnsat, semnet.FuncNop)
	pr.Propagate(bUnsat, bCancel, rules.Path(g.Rel.ElemOf), semnet.FuncNop)
	pr.Not(bCancel, bOK, 0, isa.CondNone)
	pr.And(bCand, bOK, bWin1, semnet.FuncNop)

	// Accumulation phase: every activated candidate (for the controller's
	// verification list), then the complete ones with scores.
	pr.CollectNode(mRoot)
	pr.And(mRoot, bWin1, mFinal, semnet.FuncMax)
	pr.CollectNode(mFinal)
	return pr
}

// candidateRoots extracts the candidate node list from the stage-1
// collection, capped at MaxVerify (basic sequences first).
func (p *Parser) candidateRoots(items []machine.Item) []semnet.NodeID {
	var basic, aux []semnet.NodeID
	for _, it := range items {
		switch it.Color {
		case p.g.Col.Root:
			basic = append(basic, it.Node)
		case p.g.Col.Aux:
			aux = append(aux, it.Node)
		}
	}
	out := append(basic, aux...)
	if len(out) > MaxVerify {
		out = out[:MaxVerify]
	}
	return out
}

// verifyProgram builds stage 1.5: per-candidate sequence-structure walks.
// Each candidate root is activated and its element slots are touched in
// one propagation step; elements the match stage left unsatisfied
// accumulate into a cancel source that is propagated back up to the
// offending roots.
func (p *Parser) verifyProgram(candidates []semnet.NodeID) *isa.Program {
	g := p.g
	pr := isa.NewProgram()
	chain := rules.Step(g.Rel.Elem)
	pr.ClearM(bVerTmp)
	pr.ClearM(bVerBad)
	pr.ClearM(bCancel3)
	// Candidates verify in batches of verPairs: all the batch's walks are
	// issued back-to-back so the PU overlaps them (β-parallelism), then
	// the unsatisfied-element checks drain the window.
	for base := 0; base < len(candidates); base += verPairs {
		batch := candidates[base:]
		if len(batch) > verPairs {
			batch = batch[:verPairs]
		}
		for j := range batch {
			pr.ClearM(bVerA(j))
			pr.ClearM(bVerB(j))
		}
		for j, r := range batch {
			pr.SearchNode(r, bVerA(j), 0)
		}
		for j := range batch {
			pr.Propagate(bVerA(j), bVerB(j), chain, semnet.FuncNop)
		}
		for j := range batch {
			pr.And(bVerB(j), bNotAct, bVerTmp, semnet.FuncNop)
			pr.Or(bVerBad, bVerTmp, bVerBad, semnet.FuncNop)
		}
	}
	pr.Propagate(bVerBad, bCancel3, rules.Path(g.Rel.ElemOf), semnet.FuncNop)
	pr.Not(bCancel3, bOK, 0, isa.CondNone)
	pr.And(bWin1, bOK, bWin1, semnet.FuncNop)
	pr.And(mRoot, bWin1, mFinal, semnet.FuncMax)
	pr.CollectNode(mFinal)
	return pr
}

// resolveProgram builds stage 2: threshold resolution, loser cancellation,
// utterance binding, and final retrieval.
func (p *Parser) resolveProgram(theta float32, anchor semnet.NodeID) *isa.Program {
	g := p.g
	pr := isa.NewProgram()

	pr.Not(mFinal, bNotBest, theta, isa.CondLE)
	pr.And(bWin1, bNotBest, bLoserRaw, semnet.FuncNop)
	pr.SearchColor(g.Col.Aux, bAuxRoot, 0)
	pr.Not(bAuxRoot, bNotAux, 0, isa.CondNone)
	pr.And(bLoserRaw, bNotAux, bLoser, semnet.FuncNop)
	pr.Propagate(bLoser, bCancel2, rules.Path(g.Rel.Elem), semnet.FuncNop)
	pr.Not(bLoser, bNotLoser, 0, isa.CondNone)
	pr.And(bWin1, bNotLoser, bWin, semnet.FuncNop)
	pr.MarkerCreate(bWin, g.Rel.Instance, anchor, 0, false)
	pr.And(mFinal, bWin, mResult, semnet.FuncMax)
	pr.CollectNode(mResult)
	pr.MarkerDelete(bWin, g.Rel.Instance, anchor, 0, false)
	return pr
}

// bestScore finds the winning threshold: the minimum score over complete
// basic (non-auxiliary) candidates.
func (p *Parser) bestScore(items []machine.Item) (float32, bool) {
	best := float32(math.Inf(1))
	found := false
	for _, it := range items {
		if it.Color != p.g.Col.Root {
			continue
		}
		if it.Value < best {
			best = it.Value
			found = true
		}
	}
	return best, found
}

// extractWinners splits the surviving candidates into the winning basic
// sequence and completed auxiliary cases.
func (p *Parser) extractWinners(items []machine.Item, res *ParseResult) {
	best := float32(math.Inf(1))
	var bestNode semnet.NodeID
	haveBest := false
	for _, it := range items {
		switch it.Color {
		case p.g.Col.Root:
			if !haveBest || it.Value < best ||
				(it.Value == best && it.Node < bestNode) {
				best, bestNode, haveBest = it.Value, it.Node, true
			}
		case p.g.Col.Aux:
			res.Cases = append(res.Cases, p.g.KB.Name(p.g.KB.Canonical(it.Node)))
		}
	}
	if haveBest {
		res.Winner = p.g.KB.Name(p.g.KB.Canonical(bestNode))
		res.WinnerNode = p.g.KB.Canonical(bestNode)
		res.Score = best
	}
}
