package nlu

import (
	"testing"

	"snap1/internal/kbgen"
)

func domainOnly(t *testing.T) *kbgen.Generated {
	t.Helper()
	g, err := kbgen.Generate(kbgen.Params{Nodes: 300, Seed: 1, WithDomain: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChunkAllSentences(t *testing.T) {
	g := domainOnly(t)
	for _, s := range g.Domain.Sentences {
		phrases, ppTime, err := Chunk(g, s.Words)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if len(phrases) == 0 || ppTime <= 0 {
			t.Fatalf("%s: degenerate chunking", s.ID)
		}
		// Every token must land in exactly one phrase.
		total := 0
		for _, p := range phrases {
			total += len(p.Tokens)
		}
		if total != len(s.Words) {
			t.Errorf("%s: %d tokens chunked of %d", s.ID, total, len(s.Words))
		}
	}
}

func TestChunkCostIsLengthLinear(t *testing.T) {
	g := domainOnly(t)
	short := []string{"guerrillas", "bombed", "embassy"}
	long := []string{"terrorists", "attacked", "the", "mayor", "home", "in", "bogota", "yesterday"}
	_, tShort, err := Chunk(g, short)
	if err != nil {
		t.Fatal(err)
	}
	_, tLong, err := Chunk(g, long)
	if err != nil {
		t.Fatal(err)
	}
	if tLong <= tShort {
		t.Fatalf("phrasal time must grow with length: %v vs %v", tShort, tLong)
	}
}

func TestChunkUnknownWord(t *testing.T) {
	g := domainOnly(t)
	if _, _, err := Chunk(g, []string{"zxqj"}); err == nil {
		t.Fatal("unknown word must fail")
	}
}

func TestChunkTypes(t *testing.T) {
	g := domainOnly(t)
	phrases, _, err := Chunk(g, []string{"the", "police", "killed", "the", "terrorists", "in", "bogota", "yesterday"})
	if err != nil {
		t.Fatal(err)
	}
	types := make([]PhraseType, len(phrases))
	for i, p := range phrases {
		types[i] = p.Type
	}
	want := []PhraseType{PhraseNP, PhraseVP, PhraseNP, PhrasePP, PhraseAdv}
	if len(types) != len(want) {
		t.Fatalf("phrases %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("phrases %v, want %v", types, want)
		}
	}
	// PP absorbs its object noun.
	if len(phrases[3].Tokens) != 2 || phrases[3].Tokens[1] != "bogota" {
		t.Errorf("PP = %v", phrases[3].Tokens)
	}
	// Determiners never reach the array.
	for _, id := range ContentWords(phrases) {
		name := g.KB.Name(id)
		if name == "the" || name == "a" {
			t.Error("determiner leaked into content words")
		}
	}
}

func TestPhraseTypeStrings(t *testing.T) {
	for _, pt := range []PhraseType{PhraseNP, PhraseVP, PhrasePP, PhraseAdv, PhraseOther} {
		if pt.String() == "" {
			t.Error("empty phrase type name")
		}
	}
}

func TestParseNoContentWords(t *testing.T) {
	p, g := newTestParser(t, 512, true)
	_ = g
	if _, err := p.Parse(kbgen.Sentence{ID: "X", Words: []string{"the", "a"}}); err == nil {
		t.Fatal("all-determiner sentence must fail")
	}
}

func TestParseNoCandidates(t *testing.T) {
	p, _ := newTestParser(t, 512, true)
	// Preposition-only input activates nothing that completes a sequence.
	res, err := p.Parse(kbgen.Sentence{ID: "Y", Words: []string{"in", "of"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "" {
		t.Fatalf("nonsense parsed as %q", res.Winner)
	}
	if res.MBTime <= 0 {
		t.Error("the match stage still ran and must cost time")
	}
}

func TestLongSentenceTruncation(t *testing.T) {
	p, g := newTestParser(t, 1000, true)
	// 14 content words exceed the MaxContentWords marker budget; the
	// parser must truncate and still succeed on the prefix.
	words := []string{
		"terrorists", "attacked", "mayor", "home", "bogota", "yesterday",
		"guerrillas", "bombed", "embassy", "police", "killed", "soldiers",
		"government", "office",
	}
	res, err := p.Parse(kbgen.Sentence{ID: "Z", Words: words, Expect: "attack-event"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == "" {
		t.Fatal("truncated parse found no meaning")
	}
	_ = g
}

func TestRepeatedParsingIsStable(t *testing.T) {
	// Parsing the same batch twice must give identical winners and
	// identical simulated times (the deterministic engine plus correct
	// inter-parse state reset).
	p, g := newTestParser(t, 2000, true)
	type key struct {
		winner string
		instrs int
	}
	var first []key
	for round := 0; round < 3; round++ {
		for i, s := range g.Domain.Sentences {
			res, err := p.Parse(s)
			if err != nil {
				t.Fatal(err)
			}
			k := key{res.Winner, res.Instructions}
			if round == 0 {
				first = append(first, k)
			} else if first[i] != k {
				t.Fatalf("round %d %s: %+v != %+v", round, s.ID, k, first[i])
			}
		}
	}
}
