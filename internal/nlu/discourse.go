package nlu

import (
	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Discourse-level processing in the DMSNAP style (the paper's NLU program
// [8]): role fillers extracted from each parsed event persist as
// discourse entities, and pronouns in later sentences resolve against
// them by marker propagation — the antecedent's is-a chain must reach the
// pronoun's agreement class.

// Role is one filled slot of a parsed event.
type Role struct {
	Slot  int    // element slot index (0 = agent, 1 = act, 2 = target, …)
	Word  string // the filling word
	Node  semnet.NodeID
	Score float32 // how specifically the word satisfied the slot
}

// Markers reserved for role extraction and reference resolution; they
// reuse the verification scratch range, which is dead after a parse.
var (
	mRoleEx  = semnet.MarkerID(45)
	bRoleSel = semnet.Binary(52)
	bRoleEl  = semnet.Binary(53)
	bRoleK   = semnet.Binary(54)
	mRefA    = semnet.MarkerID(46)
	mRefB    = semnet.MarkerID(47)
)

// Discourse parses sentence sequences, resolving pronouns against role
// fillers of earlier events (most recent first).
type Discourse struct {
	p *Parser
	// entities holds antecedent candidate word nodes, most recent first.
	entities []semnet.NodeID
	// ResolveTime accumulates the array time spent on reference checks.
	ResolveTime timing.Time
}

// NewDiscourse starts an empty discourse context over p.
func NewDiscourse(p *Parser) *Discourse { return &Discourse{p: p} }

// Entities returns the current antecedent candidates, most recent first.
func (d *Discourse) Entities() []string {
	out := make([]string, len(d.entities))
	for i, e := range d.entities {
		out[i] = d.p.g.KB.Name(e)
	}
	return out
}

// Parse resolves any pronouns in the sentence against the discourse
// context, parses the resolved sentence, and pushes the new event's role
// fillers into the context.
func (d *Discourse) Parse(s kbgen.Sentence) (*ParseResult, []Role, error) {
	resolved := make([]string, len(s.Words))
	copy(resolved, s.Words)
	for i, w := range s.Words {
		id, ok := d.p.g.KB.Lookup(w)
		if !ok {
			continue
		}
		if !d.isPronoun(id) {
			continue
		}
		ante, err := d.resolve(id)
		if err != nil {
			return nil, nil, err
		}
		if ante != semnet.InvalidNode {
			resolved[i] = d.p.g.KB.Name(ante)
		}
	}
	s.Words = resolved
	res, err := d.p.Parse(s)
	if err != nil {
		return nil, nil, err
	}
	if res.Winner == "" {
		return res, nil, nil
	}
	roles, err := d.p.ExtractRoles()
	if err != nil {
		return nil, nil, err
	}
	// Noun fillers become antecedent candidates, most recent first;
	// verbs and pronouns do not refer, and re-mentions move to the front
	// rather than duplicating.
	for _, r := range roles {
		if d.isPronoun(r.Node) || posOf(d.p.g, r.Node) != "noun" {
			continue
		}
		filtered := d.entities[:0]
		for _, e := range d.entities {
			if e != r.Node {
				filtered = append(filtered, e)
			}
		}
		d.entities = append([]semnet.NodeID{r.Node}, filtered...)
	}
	const maxEntities = 8
	if len(d.entities) > maxEntities {
		d.entities = d.entities[:maxEntities]
	}
	return res, roles, nil
}

// isPronoun reports whether the lexical node's syntactic category is the
// pronoun class.
func (d *Discourse) isPronoun(word semnet.NodeID) bool {
	pronounCat, ok := d.p.g.KB.Lookup("pronoun")
	if !ok {
		return false
	}
	node, err := d.p.g.KB.Node(word)
	if err != nil {
		return false
	}
	for _, l := range node.Out {
		if l.Rel == d.p.g.Rel.IsA && l.To == pronounCat {
			return true
		}
	}
	return false
}

// agreementClass returns the pronoun's is-a class constraint (the
// non-syntax is-a target).
func (d *Discourse) agreementClass(word semnet.NodeID) semnet.NodeID {
	node, err := d.p.g.KB.Node(word)
	if err != nil {
		return semnet.InvalidNode
	}
	for _, l := range node.Out {
		if l.Rel != d.p.g.Rel.IsA {
			continue
		}
		target, err := d.p.g.KB.Node(l.To)
		if err != nil {
			continue
		}
		if target.Color != d.p.g.Col.Syntax {
			return l.To
		}
	}
	return semnet.InvalidNode
}

// resolve finds the most recent discourse entity whose is-a chain reaches
// the pronoun's agreement class — an upward marker propagation per
// candidate, checked on the array.
func (d *Discourse) resolve(pronoun semnet.NodeID) (semnet.NodeID, error) {
	agree := d.agreementClass(pronoun)
	if agree == semnet.InvalidNode {
		return semnet.InvalidNode, nil
	}
	g := d.p.g
	for _, cand := range d.entities {
		pr := isa.NewProgram()
		pr.ClearM(mRefA)
		pr.ClearM(mRefB)
		pr.SearchNode(cand, mRefA, 0)
		pr.Propagate(mRefA, mRefB, rules.Path(g.Rel.IsA), semnet.FuncNop)
		pr.Barrier()
		res, err := d.p.m.Run(pr)
		if err != nil {
			return semnet.InvalidNode, err
		}
		d.ResolveTime += res.Time
		if d.p.m.TestMarker(agree, mRefB) {
			return cand, nil
		}
	}
	return semnet.InvalidNode, nil
}
