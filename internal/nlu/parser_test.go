package nlu

import (
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
)

func newTestParser(t *testing.T, nodes int, det bool) (*Parser, *kbgen.Generated) {
	t.Helper()
	g, err := kbgen.Generate(kbgen.Params{Nodes: nodes, Seed: 7, WithDomain: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := machine.PaperConfig()
	cfg.Deterministic = det
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		t.Fatalf("LoadKB: %v", err)
	}
	return NewParser(m, g), g
}

func TestParseEvaluationSentences(t *testing.T) {
	for _, det := range []bool{true, false} {
		p, g := newTestParser(t, 2000, det)
		for _, s := range g.Domain.Sentences {
			res, err := p.Parse(s)
			if err != nil {
				t.Fatalf("det=%v %s: %v", det, s.ID, err)
			}
			if res.Winner != s.Expect {
				t.Errorf("det=%v %s %q: winner %q (score %v), want %q; cases %v",
					det, s.ID, s.Text, res.Winner, res.Score, s.Expect, res.Cases)
				continue
			}
			for _, aux := range s.Aux {
				found := false
				for _, c := range res.Cases {
					if c == aux {
						found = true
					}
				}
				if !found {
					t.Errorf("det=%v %s: missing auxiliary case %q (got %v)", det, s.ID, aux, res.Cases)
				}
			}
			if res.PPTime <= 0 || res.MBTime <= 0 {
				t.Errorf("det=%v %s: nonpositive times PP=%v MB=%v", det, s.ID, res.PPTime, res.MBTime)
			}
		}
	}
}

func TestChunkPhrases(t *testing.T) {
	_, g := newTestParser(t, 512, true)
	s := g.Domain.Sentences[0] // "Terrorists attacked the mayor's home in Bogota yesterday."
	phrases, ppTime, err := Chunk(g, s.Words)
	if err != nil {
		t.Fatal(err)
	}
	if ppTime <= 0 {
		t.Error("phrasal parse consumed no time")
	}
	if len(phrases) < 3 {
		t.Fatalf("expected at least NP/VP/NP, got %d phrases: %+v", len(phrases), phrases)
	}
	if phrases[0].Type != PhraseNP {
		t.Errorf("first phrase %v, want NP", phrases[0].Type)
	}
	if phrases[1].Type != PhraseVP {
		t.Errorf("second phrase %v, want VP", phrases[1].Type)
	}
	content := ContentWords(phrases)
	// "the" must be absorbed: 8 tokens, 7 content words.
	if len(content) != 7 {
		t.Errorf("content words = %d, want 7", len(content))
	}
}
