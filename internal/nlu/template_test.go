package nlu

import (
	"strings"
	"testing"

	"snap1/internal/kbgen"
)

func TestExtractTemplateFullSentence(t *testing.T) {
	p, g := newTestParser(t, 2000, true)
	// "Terrorists attacked the mayor's home in Bogota yesterday."
	s := g.Domain.Sentences[0]
	res, err := p.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := p.ExtractTemplate(res)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Incident != "attack-event" {
		t.Errorf("incident %q", tpl.Incident)
	}
	if tpl.Perpetrator != "terrorists" {
		t.Errorf("perpetrator %q", tpl.Perpetrator)
	}
	if tpl.Action != "attacked" {
		t.Errorf("action %q", tpl.Action)
	}
	if tpl.Target != "mayor" && tpl.Target != "home" {
		t.Errorf("target %q, want mayor or home", tpl.Target)
	}
	if tpl.Location != "bogota" {
		t.Errorf("location %q", tpl.Location)
	}
	if tpl.Time != "yesterday" {
		t.Errorf("time %q", tpl.Time)
	}
	out := tpl.String()
	for _, want := range []string{"INCIDENT", "PERP", "LOCATION"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %s:\n%s", want, out)
		}
	}
}

func TestExtractTemplateNoCases(t *testing.T) {
	p, g := newTestParser(t, 2000, true)
	res, err := p.Parse(g.Domain.Sentences[1]) // "Guerrillas bombed the embassy."
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := p.ExtractTemplate(res)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Incident != "bombing-event" || tpl.Perpetrator != "guerrillas" || tpl.Target != "embassy" {
		t.Errorf("template %+v", tpl)
	}
	if tpl.Location != "" || tpl.Time != "" {
		t.Errorf("no cases completed, got location %q time %q", tpl.Location, tpl.Time)
	}
	// Empty fields render as dashes.
	if !strings.Contains(tpl.String(), "LOCATION:    -") {
		t.Errorf("rendering:\n%s", tpl.String())
	}
}

func TestExtractTemplateWithoutParse(t *testing.T) {
	p, _ := newTestParser(t, 512, true)
	if _, err := p.ExtractTemplate(nil); err == nil {
		t.Fatal("nil result")
	}
	if _, err := p.ExtractTemplate(&ParseResult{}); err == nil {
		t.Fatal("failed parse")
	}
}

func TestTemplatesAcrossAllSentences(t *testing.T) {
	p, g := newTestParser(t, 4000, true)
	for _, s := range g.Domain.Sentences {
		res, err := p.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		tpl, err := p.ExtractTemplate(res)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if tpl.Incident != s.Expect {
			t.Errorf("%s: incident %q, want %q", s.ID, tpl.Incident, s.Expect)
		}
		if tpl.Perpetrator == "" || tpl.Action == "" {
			t.Errorf("%s: incomplete template %+v", s.ID, tpl)
		}
		for _, aux := range s.Aux {
			if aux == "time-case" && tpl.Time == "" {
				t.Errorf("%s: time case completed but no time filler", s.ID)
			}
			if aux == "location-case" && tpl.Location == "" {
				t.Errorf("%s: location case completed but no location filler", s.ID)
			}
		}
	}
	_ = kbgen.MaxSeqElements
}
