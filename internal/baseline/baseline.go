// Package baseline implements the comparison systems of the paper's
// evaluation: a CM-2-style SIMD machine model for the Fig. 15 inheritance
// comparison, and the single-PE sequential configuration used as the
// speedup denominator in Figs. 16-18.
//
// The CM-2 disadvantage the paper identifies is structural, not raw speed:
// a SIMD machine "had to iterate between the controller and array after
// each propagation step on the critical path", paying a fixed front-end
// round trip per step and sweeping the whole array regardless of how few
// nodes are active, while SNAP-1's MIMD marker units propagate selectively
// under local control. The model reproduces exactly that cost structure.
package baseline

import (
	"fmt"

	"snap1/internal/machine"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// CM2 models a Connection Machine-style SIMD array running a
// marker-propagation step loop.
type CM2 struct {
	// Procs is the array width (the CM-2 of [2] has 16K single-bit PEs).
	Procs int
	// StepOverhead is the front-end/controller round trip paid on every
	// propagation step of the critical path.
	StepOverhead timing.Time
	// PerNode is the per-node cost of one full-array sweep step
	// (virtual processors fold N/Procs nodes onto each PE).
	PerNode timing.Time
	// PerActive is the per-active-node marker update cost within a step.
	PerActive timing.Time
}

// DefaultCM2 is calibrated so the Fig. 15 relationship holds against this
// repository's SNAP-1 cost model: roughly an order of magnitude slower
// than SNAP-1 at a 6.4K-node knowledge base, with a much flatter slope
// (per-step fixed overhead × logarithmic depth), so the curves cross only
// beyond the prototype's 32K-node capacity — the paper's "the lines will
// cross when larger knowledge bases are used".
func DefaultCM2() CM2 {
	return CM2{
		Procs:        16384,
		StepOverhead: 4 * timing.Millisecond,
		PerNode:      600 * timing.Nanosecond,
		PerActive:    250 * timing.Nanosecond,
	}
}

// InheritResult reports one CM-2 model run.
type InheritResult struct {
	Time    timing.Time
	Steps   int // propagation steps = controller round trips
	Reached int // nodes that received the marker
}

// Inherit runs root-to-leaf inheritance along rel: a level-synchronous
// BFS where every level costs one controller round trip plus a full-array
// sweep. The functional result (the reached set) matches SNAP-1's, so the
// two systems are verified against each other.
func (c CM2) Inherit(kb *semnet.KB, root semnet.NodeID, rel semnet.RelType) (*InheritResult, error) {
	n := kb.NumNodes()
	if int(root) >= n {
		return nil, fmt.Errorf("baseline: root %d not in knowledge base", root)
	}
	visited := make([]bool, n)
	frontier := []semnet.NodeID{root}
	visited[root] = true
	var t timing.Time
	steps, reached := 0, 0
	for len(frontier) > 0 {
		// One SIMD step: front-end round trip, then every physical PE
		// sweeps its fold of vp = ceil(N/Procs) virtual nodes in
		// lockstep, then the active nodes pay the marker update.
		vp := (n + c.Procs - 1) / c.Procs
		t += c.StepOverhead + timing.Time(vp)*c.PerNode
		t += timing.Time(len(frontier)) * c.PerActive
		var next []semnet.NodeID
		for _, id := range frontier {
			node, err := kb.Node(id)
			if err != nil {
				return nil, err
			}
			for _, l := range node.Out {
				follow := l.Rel == rel || l.Rel == semnet.RelCont
				if follow && !visited[l.To] {
					visited[l.To] = true
					next = append(next, l.To)
				}
			}
		}
		reached += len(next)
		frontier = next
		steps++
	}
	return &InheritResult{Time: t, Steps: steps, Reached: reached}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SequentialConfig returns the single-marker-unit, single-cluster SNAP-1
// configuration used as the uniprocessor reference for speedup curves.
// The per-cluster capacity is widened so knowledge bases that normally
// span the array still fit one cluster.
func SequentialConfig(capacity int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Clusters = 1
	cfg.MUsPerCluster = 1
	cfg.ExtraMUClusters = 0
	if capacity > cfg.NodesPerCluster {
		cfg.NodesPerCluster = capacity
	}
	cfg.Deterministic = true
	return cfg
}
