package baseline

import (
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

func TestCM2InheritChain(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("down")
	var prev semnet.NodeID
	for i := 0; i < 5; i++ {
		id := kb.MustAddNode(string(rune('a'+i)), col)
		if i > 0 {
			kb.MustAddLink(prev, rel, 1, id)
		}
		prev = id
	}
	cm2 := DefaultCM2()
	root, _ := kb.Lookup("a")
	res, err := cm2.Inherit(kb, root, rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 4 {
		t.Fatalf("reached %d, want 4", res.Reached)
	}
	if res.Steps != 5 {
		t.Fatalf("steps %d, want 5 (4 levels + final empty check costs nothing... )", res.Steps)
	}
	// The step loop charges one controller round trip per level.
	if res.Time < timing.Time(res.Steps)*cm2.StepOverhead {
		t.Fatalf("time %v below %d step overheads", res.Time, res.Steps)
	}
}

func TestCM2MatchesSNAPReachability(t *testing.T) {
	g := kbgen.MustGenerate(kbgen.Params{Nodes: 800, Seed: 9})
	g.KB.Preprocess()
	cm2 := DefaultCM2()
	res, err := cm2.Inherit(g.KB, g.HierRoot, g.Rel.Subsumes)
	if err != nil {
		t.Fatal(err)
	}
	// Count hierarchy descendants by direct traversal for reference.
	want := countReachable(g.KB, g.HierRoot, g.Rel.Subsumes)
	if res.Reached != want {
		t.Fatalf("CM-2 reached %d, reference %d", res.Reached, want)
	}
}

func countReachable(kb *semnet.KB, root semnet.NodeID, rel semnet.RelType) int {
	visited := map[semnet.NodeID]bool{root: true}
	stack := []semnet.NodeID{root}
	n := 0
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, _ := kb.Node(id)
		for _, l := range node.Out {
			if (l.Rel == rel || l.Rel == semnet.RelCont) && !visited[l.To] {
				visited[l.To] = true
				stack = append(stack, l.To)
				n++
			}
		}
	}
	return n
}

func TestCM2BadRoot(t *testing.T) {
	kb := semnet.NewKB()
	kb.MustAddNode("only", 0)
	if _, err := DefaultCM2().Inherit(kb, semnet.NodeID(5), 0); err == nil {
		t.Fatal("missing root must fail")
	}
}

func TestCM2StepCostsGrowWithVirtualization(t *testing.T) {
	// With fewer processors than nodes, the per-step sweep must fold.
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	root := kb.MustAddNode("root", col)
	for i := 0; i < 100; i++ {
		id := kb.MustAddNode(string(rune('A'))+string(rune('0'+i%10))+string(rune('0'+i/10)), col)
		kb.MustAddLink(root, rel, 1, id)
	}
	kb.Preprocess()
	small := CM2{Procs: 8, StepOverhead: 0, PerNode: 1 * timing.Microsecond}
	big := CM2{Procs: 1 << 20, StepOverhead: 0, PerNode: 1 * timing.Microsecond}
	rs, err := small.Inherit(kb, root, rel)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Inherit(kb, root, rel)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Time <= rb.Time {
		t.Fatalf("8-PE sweep (%v) must cost more than wide array (%v)", rs.Time, rb.Time)
	}
}

func TestSequentialConfig(t *testing.T) {
	cfg := SequentialConfig(5000)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Clusters != 1 || cfg.MarkerUnits() != 1 {
		t.Fatal("sequential reference must be one cluster, one MU")
	}
	if cfg.NodesPerCluster < 5000 {
		t.Fatal("capacity widening")
	}
	if cfg.PEs() != 3 {
		t.Fatalf("PEs = %d, want 3 (PU+MU+CU)", cfg.PEs())
	}
	m, err := machine.New(cfg)
	if err != nil || m == nil {
		t.Fatal(err)
	}
}
