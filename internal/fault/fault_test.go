package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func intp(v int) *int { return &v }

func TestParseSiteRoundTrip(t *testing.T) {
	for s := Site(0); s < numSites; s++ {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestParsePlan(t *testing.T) {
	src := `{"seed": 42, "rules": [
		{"site": "icn-drop", "rate": 0.01},
		{"site": "machine-wedge", "rate": 1, "replica": 2, "count": 3}
	]}`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Rules) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Rules[1].Replica == nil || *p.Rules[1].Replica != 2 {
		t.Fatalf("replica rule: %+v", p.Rules[1])
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"seed": 1, "frequency": 2}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPlanValidateReportsAllErrors(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Site: "bogus", Rate: 0.5},
		{Site: "icn-drop", Rate: 1.5},
		{Site: "icn-dup", Rate: 0.1, After: -1},
		{Site: "icn-delay", Rate: 0.1, Replica: intp(-3)},
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	for _, want := range []string{"unknown site", "outside [0, 1]", "after -1", "replica -3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{Seed: 7, Rules: []Rule{{Site: "icn-drop", Rate: 0.1}}}
	draw := func(replica int) []bool {
		in := plan.Injector(replica)
		out := make([]bool, 5000)
		for i := range out {
			out[i] = in.DropICN()
		}
		return out
	}
	a, b := draw(0), draw(0)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires < 300 || fires > 700 {
		t.Errorf("rate 0.1 over 5000 draws fired %d times", fires)
	}
	c := draw(1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("replica streams are not independent")
	}
}

func TestAfterAndCountSchedule(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Site: "machine-wedge", Rate: 1, After: 10, Count: 2}}}
	in := plan.Injector(0)
	for i := 0; i < 10; i++ {
		if in.WedgeRun() {
			t.Fatalf("fired during the after window (decision %d)", i)
		}
	}
	if !in.WedgeRun() || !in.WedgeRun() {
		t.Fatal("count budget not honored")
	}
	for i := 0; i < 20; i++ {
		if in.WedgeRun() {
			t.Fatal("fired past the count budget")
		}
	}
	if in.Total() != 2 {
		t.Errorf("total = %d", in.Total())
	}
}

func TestReplicaFilter(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Site: "icn-drop", Rate: 1, Replica: intp(1)}}}
	if plan.Injector(0).DropICN() {
		t.Error("rule fired on wrong replica")
	}
	if !plan.Injector(1).DropICN() {
		t.Error("rule did not fire on its replica")
	}
}

func TestDelayAndStallMagnitudes(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{
		{Site: "icn-delay", Rate: 1, DelayPs: 123},
		{Site: "arb-stall", Rate: 1, StallUs: 5},
		{Site: "machine-slow", Rate: 1},
	}}
	in := plan.Injector(0)
	if d, ok := in.DelayICN(); !ok || d != 123 {
		t.Errorf("delay = %d, %v", d, ok)
	}
	if d := in.StallArb(); d != 5*time.Microsecond {
		t.Errorf("stall = %v", d)
	}
	if d := in.SlowRun(); d != DefaultStall {
		t.Errorf("default slow = %v", d)
	}
	if in.Corrupting() != 1 {
		t.Errorf("corrupting = %d (stalls must not poison)", in.Corrupting())
	}
}

func TestHookFiresPerInjection(t *testing.T) {
	plan := &Plan{Seed: 3, Rules: []Rule{{Site: "icn-drop", Rate: 1, Count: 4}}}
	in := plan.Injector(0)
	var got []Site
	in.SetHook(func(s Site) { got = append(got, s) })
	for i := 0; i < 10; i++ {
		in.DropICN()
	}
	if len(got) != 4 {
		t.Fatalf("hook fired %d times", len(got))
	}
	for _, s := range got {
		if s != ICNDrop {
			t.Errorf("hook site %v", s)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var p *Plan
	in := p.Injector(0)
	if in != nil {
		t.Fatal("nil plan must yield nil injector")
	}
	if in.DropICN() || in.DupICN() || in.WedgeRun() {
		t.Error("nil injector fired")
	}
	if d, ok := in.DelayICN(); ok || d != 0 {
		t.Error("nil injector delayed")
	}
	if in.StallArb() != 0 || in.SlowRun() != 0 || in.Corrupting() != 0 || in.Total() != 0 {
		t.Error("nil injector counted")
	}
	in.SetHook(func(Site) {})
	if in.Stats() != nil {
		t.Error("nil injector stats")
	}
}

func TestStatsSnapshot(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Site: "icn-dup", Rate: 0.5}}}
	in := plan.Injector(0)
	for i := 0; i < 100; i++ {
		in.DupICN()
	}
	st := in.Stats()
	if len(st) != 1 || st[0].Site != "icn-dup" || st[0].Decisions != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Injected <= 0 || st[0].Injected >= 100 {
		t.Errorf("injected = %d", st[0].Injected)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/plan.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestErrInjectedWraps(t *testing.T) {
	err := errorsJoin()
	if !errors.Is(err, ErrInjected) {
		t.Fatal("wrapped ErrInjected not detected")
	}
}

func errorsJoin() error {
	return errors.Join(errors.New("run poisoned"), ErrInjected)
}
