// Package fault is the deterministic fault-injection layer for the
// simulated SNAP-1 hardware. A declarative Plan (a seed plus per-site
// rate/trigger rules) arms an Injector per machine replica; every
// injection decision is drawn from a seeded per-site splitmix64 stream,
// so a failure run is bit-reproducible: the same plan, replica, and
// decision order yield the same faults.
//
// Injection sites mirror the components that fail or stall in a real
// array deployment:
//
//   - icn-drop / icn-dup / icn-delay: a marker-activation message is
//     lost in transit, delivered twice, or delayed on its hop. The
//     simulated CU detects the corruption (the hardware's parity/CRC
//     role), so a run that suffered any of these reports ErrInjected
//     instead of silently returning wrong markers.
//   - arb-stall: a multiport-memory arbiter grant is delayed (host
//     time only; virtual time is unaffected).
//   - machine-wedge: a whole replica stops responding until its
//     caller's context deadline — the wedged-board failure mode.
//   - machine-slow: a replica serves, but late.
//
// The package is dependency-free so every hardware layer (icn, mpmem,
// machine) can consume an Injector without import cycles.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrInjected marks a run whose ICN traffic was corrupted by injected
// faults. It is retryable: re-running the same program on an unfaulted
// attempt yields the bit-identical fault-free result.
var ErrInjected = errors.New("fault: injected failure")

// Site identifies one injection point in the simulated hardware.
type Site uint8

// Injection sites.
const (
	ICNDrop      Site = iota // message lost in transit
	ICNDup                   // message delivered twice
	ICNDelay                 // message delayed on its hop
	ArbStall                 // multiport-memory arbiter grant delayed
	MachineWedge             // replica unresponsive until its deadline
	MachineSlow              // replica responds late
	numSites
)

var siteNames = [numSites]string{
	ICNDrop:      "icn-drop",
	ICNDup:       "icn-dup",
	ICNDelay:     "icn-delay",
	ArbStall:     "arb-stall",
	MachineWedge: "machine-wedge",
	MachineSlow:  "machine-slow",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site-%d", uint8(s))
}

// ParseSite resolves a plan-file site name.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown site %q", name)
}

// Default magnitudes for rules that omit them.
const (
	// DefaultDelayPs is icn-delay's added virtual transit time: ten
	// hop latencies (the paper's port-to-port transfer is 80 ns).
	DefaultDelayPs = 800_000
	// DefaultStall is the host-time stall for arb-stall/machine-slow.
	DefaultStall = 100 * time.Microsecond
)

// Rule schedules one site's injections. Rate is the per-decision
// probability; After skips the site's first decisions, and Count caps
// how many injections the rule may fire (0 = unlimited) — together they
// express trigger schedules like "wedge the third run, once".
type Rule struct {
	// Site names the injection point (see Site constants).
	Site string `json:"site"`
	// Rate is the per-decision injection probability in [0, 1].
	Rate float64 `json:"rate"`
	// After skips the site's first N decisions.
	After int64 `json:"after,omitempty"`
	// Count caps the rule's total injections; 0 means unlimited.
	Count int64 `json:"count,omitempty"`
	// Replica restricts the rule to one replica rank; nil arms it on
	// every replica.
	Replica *int `json:"replica,omitempty"`
	// DelayPs is icn-delay's added virtual transit time in picoseconds
	// (DefaultDelayPs when 0).
	DelayPs int64 `json:"delay_ps,omitempty"`
	// StallUs is the host stall for arb-stall/machine-slow in
	// microseconds (DefaultStall when 0).
	StallUs int64 `json:"stall_us,omitempty"`
}

// Plan is a declarative, seeded fault schedule. The zero value (and a
// nil *Plan) injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Parse decodes and validates a JSON plan.
func Parse(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and validates a JSON plan file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Validate reports every invalid rule joined into one error.
func (p *Plan) Validate() error {
	var errs []error
	for i, r := range p.Rules {
		if _, err := ParseSite(r.Site); err != nil {
			errs = append(errs, fmt.Errorf("rule %d: %w", i, err))
		}
		if r.Rate < 0 || r.Rate > 1 {
			errs = append(errs, fmt.Errorf("rule %d: rate %g outside [0, 1]", i, r.Rate))
		}
		if r.After < 0 {
			errs = append(errs, fmt.Errorf("rule %d: after %d negative", i, r.After))
		}
		if r.Count < 0 {
			errs = append(errs, fmt.Errorf("rule %d: count %d negative", i, r.Count))
		}
		if r.Replica != nil && *r.Replica < 0 {
			errs = append(errs, fmt.Errorf("rule %d: replica %d negative", i, *r.Replica))
		}
		if r.DelayPs < 0 || r.StallUs < 0 {
			errs = append(errs, fmt.Errorf("rule %d: negative delay/stall", i))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("fault: invalid plan: %w", errors.Join(errs...))
}

// Injector builds the runtime injector for one replica rank: the rules
// matching that replica, each armed with its own PRNG stream derived
// from (plan seed, site, replica). A nil plan returns a nil injector,
// which every hardware hook treats as "no faults".
func (p *Plan) Injector(replica int) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{replica: replica}
	for _, r := range p.Rules {
		if r.Replica != nil && *r.Replica != replica {
			continue
		}
		site, err := ParseSite(r.Site)
		if err != nil {
			continue // Validate rejects these; belt and braces
		}
		st := &in.sites[site]
		st.armed = true
		st.threshold = rateThreshold(r.Rate)
		st.rng = mixSeed(p.Seed, int64(site), int64(replica))
		st.after = r.After
		if r.Count > 0 {
			st.budget = r.Count
		} else {
			st.budget = -1
		}
		st.delayPs = r.DelayPs
		if st.delayPs == 0 {
			st.delayPs = DefaultDelayPs
		}
		st.stall = time.Duration(r.StallUs) * time.Microsecond
		if st.stall == 0 {
			st.stall = DefaultStall
		}
	}
	return in
}

// rateThreshold converts a probability to a uint64 comparison bound.
// Rate 1 maps to the sentinel ^uint64(0), checked before the draw so it
// always fires.
func rateThreshold(rate float64) uint64 {
	if rate >= 1 {
		return ^uint64(0)
	}
	if rate <= 0 {
		return 0
	}
	return uint64(rate * float64(1<<63) * 2)
}

// mixSeed derives one site stream's initial state (splitmix64 of the
// packed identifiers, so streams are independent across sites and
// replicas).
func mixSeed(seed, site, replica int64) uint64 {
	x := uint64(seed) ^ uint64(site)*0x9e3779b97f4a7c15 ^ uint64(replica)*0xd1342543de82ef95
	// One warm-up step decorrelates nearby seeds.
	splitmix(&x)
	return x
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Injector draws deterministic injection decisions for one replica.
// Each site has an independent seeded stream, so the decision sequence
// at a site depends only on the plan, the replica rank, and how many
// times that site has been consulted. Safe for concurrent use.
type Injector struct {
	replica int
	mu      sync.Mutex // guards hook; sites carry their own locks
	hook    func(Site)
	sites   [numSites]siteState
}

type siteState struct {
	armed bool // immutable after Plan.Injector

	mu        sync.Mutex
	threshold uint64
	rng       uint64
	after     int64
	budget    int64 // remaining injections; -1 = unlimited
	delayPs   int64
	stall     time.Duration
	decisions int64
	injected  int64
}

// SetHook installs a callback fired on every injection (outside the
// injector's locks); the machine layer uses it to emit perfmon
// fault-injected events. Must be set before decisions are drawn.
func (in *Injector) SetHook(fn func(Site)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.hook = fn
	in.mu.Unlock()
}

// decide draws one decision at site s, advancing its stream.
func (in *Injector) decide(s Site) bool {
	if in == nil {
		return false
	}
	st := &in.sites[s]
	if !st.armed {
		return false
	}
	st.mu.Lock()
	st.decisions++
	fire := false
	if st.decisions > st.after && st.budget != 0 {
		if st.threshold == ^uint64(0) || splitmix(&st.rng) < st.threshold {
			fire = true
			st.injected++
			if st.budget > 0 {
				st.budget--
			}
		}
	}
	st.mu.Unlock()
	if fire {
		in.mu.Lock()
		hook := in.hook
		in.mu.Unlock()
		if hook != nil {
			hook(s)
		}
	}
	return fire
}

// DropICN decides whether the next ICN message is lost in transit.
func (in *Injector) DropICN() bool { return in.decide(ICNDrop) }

// DupICN decides whether the next ICN message is delivered twice.
func (in *Injector) DupICN() bool { return in.decide(ICNDup) }

// DelayICN decides whether the next ICN message is delayed, returning
// the added virtual transit time in picoseconds.
func (in *Injector) DelayICN() (int64, bool) {
	if !in.decide(ICNDelay) {
		return 0, false
	}
	st := &in.sites[ICNDelay]
	st.mu.Lock()
	d := st.delayPs
	st.mu.Unlock()
	return d, true
}

// StallArb decides whether an arbiter grant is delayed, returning the
// host stall (0 = no stall).
func (in *Injector) StallArb() time.Duration { return in.stallAt(ArbStall) }

// WedgeRun decides whether a whole run wedges (no response until the
// caller's context deadline).
func (in *Injector) WedgeRun() bool { return in.decide(MachineWedge) }

// SlowRun decides whether a run is slowed, returning the host stall
// (0 = no slowdown).
func (in *Injector) SlowRun() time.Duration { return in.stallAt(MachineSlow) }

func (in *Injector) stallAt(s Site) time.Duration {
	if !in.decide(s) {
		return 0
	}
	st := &in.sites[s]
	st.mu.Lock()
	d := st.stall
	st.mu.Unlock()
	return d
}

// Corrupting reports how many result-corrupting ICN faults (drops,
// duplications, delays) have been injected so far. The machine layer
// snapshots it around a run to decide whether the run must be poisoned
// with ErrInjected.
func (in *Injector) Corrupting() int64 {
	if in == nil {
		return 0
	}
	var n int64
	for _, s := range []Site{ICNDrop, ICNDup, ICNDelay} {
		st := &in.sites[s]
		st.mu.Lock()
		n += st.injected
		st.mu.Unlock()
	}
	return n
}

// Total reports every injection fired so far across all sites.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	var n int64
	for i := range in.sites {
		st := &in.sites[i]
		st.mu.Lock()
		n += st.injected
		st.mu.Unlock()
	}
	return n
}

// SiteStats is one site's decision/injection counters.
type SiteStats struct {
	Site      string `json:"site"`
	Decisions int64  `json:"decisions"`
	Injected  int64  `json:"injected"`
}

// Stats snapshots every armed site's counters.
func (in *Injector) Stats() []SiteStats {
	if in == nil {
		return nil
	}
	var out []SiteStats
	for i := range in.sites {
		st := &in.sites[i]
		if !st.armed {
			continue
		}
		st.mu.Lock()
		out = append(out, SiteStats{Site: Site(i).String(), Decisions: st.decisions, Injected: st.injected})
		st.mu.Unlock()
	}
	return out
}
