package trace

import (
	"strings"
	"testing"

	"snap1/internal/barrier"
	"snap1/internal/isa"
	"snap1/internal/timing"
)

func sample() *Profile {
	p := &Profile{}
	p.Record(isa.OpPropagate, 100*timing.Microsecond)
	p.Record(isa.OpPropagate, 300*timing.Microsecond)
	p.Record(isa.OpSetMarker, 50*timing.Microsecond)
	p.Record(isa.OpAndMarker, 50*timing.Microsecond)
	p.AddBarrier(barrier.Stats{Messages: 10, Levels: 2, PerLevel: []int64{4, 6}})
	p.AddBarrier(barrier.Stats{Messages: 40, Levels: 3, PerLevel: []int64{10, 20, 10}})
	p.Overhead = Overhead{
		Broadcast:       1 * timing.Microsecond,
		Communication:   2 * timing.Microsecond,
		Synchronization: 3 * timing.Microsecond,
		Collection:      4 * timing.Microsecond,
	}
	return p
}

func TestRecordAndShares(t *testing.T) {
	p := sample()
	if p.TotalInstrs() != 4 {
		t.Fatalf("TotalInstrs = %d", p.TotalInstrs())
	}
	if p.TotalTime() != 500*timing.Microsecond {
		t.Fatalf("TotalTime = %v", p.TotalTime())
	}
	cf, tf := p.GroupShare(isa.GroupPropagate)
	if cf != 0.5 || tf != 0.8 {
		t.Fatalf("propagate shares = %v, %v", cf, tf)
	}
	if p.OpCount[isa.OpPropagate] != 2 {
		t.Fatal("op count")
	}
}

func TestBarrierSeries(t *testing.T) {
	p := sample()
	series := p.MessagesPerBarrier()
	if len(series) != 2 || series[0] != 10 || series[1] != 40 {
		t.Fatalf("series = %v", series)
	}
	if p.MeanMessagesPerBarrier() != 25 {
		t.Fatalf("mean = %v", p.MeanMessagesPerBarrier())
	}
	if p.BurstsOver(30) != 1 {
		t.Fatalf("bursts = %d", p.BurstsOver(30))
	}
	if p.PropMessages != 50 {
		t.Fatalf("PropMessages = %d", p.PropMessages)
	}
	if p.PropMaxDepth != 3 {
		t.Fatalf("PropMaxDepth = %d", p.PropMaxDepth)
	}
}

func TestEmptyProfileSafe(t *testing.T) {
	p := &Profile{}
	if p.MeanMessagesPerBarrier() != 0 {
		t.Error("empty mean")
	}
	cf, tf := p.GroupShare(isa.GroupPropagate)
	if cf != 0 || tf != 0 {
		t.Error("empty shares")
	}
	if p.Overhead.Total() != 0 {
		t.Error("empty overhead")
	}
}

func TestMerge(t *testing.T) {
	a, b := sample(), sample()
	a.Merge(b)
	if a.TotalInstrs() != 8 || a.TotalTime() != timing.Millisecond {
		t.Fatal("merged counts")
	}
	if len(a.Barriers) != 4 || a.PropMessages != 100 {
		t.Fatal("merged barriers")
	}
	if a.Overhead.Total() != 20*timing.Microsecond {
		t.Fatal("merged overheads")
	}
	a.Merge(nil) // must not panic
	if a.TotalInstrs() != 8 {
		t.Fatal("nil merge changed state")
	}
}

func TestString(t *testing.T) {
	p := sample()
	p.Elapsed = timing.Millisecond
	s := p.String()
	for _, want := range []string{"propagate", "overhead", "barriers"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
