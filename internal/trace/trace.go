// Package trace accumulates the measurements the paper's evaluation
// section reports: per-instruction-group counts and execution time
// (Figs. 6, 18, 19, 20), marker traffic per barrier synchronization point
// (Fig. 8), and the four parallel-overhead components — instruction
// broadcast, message communication, barrier synchronization, and result
// collection (Fig. 21).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"snap1/internal/barrier"
	"snap1/internal/isa"
	"snap1/internal/timing"
)

// Overhead is the Fig. 21 breakdown of parallel overheads.
type Overhead struct {
	Broadcast       timing.Time // configuration phase: global bus broadcasts
	Communication   timing.Time // propagation phase: inter-PE message time
	Synchronization timing.Time // propagation→accumulation transition barriers
	Collection      timing.Time // accumulation phase: COLLECT retrievals
}

// Total sums the four components.
func (o Overhead) Total() timing.Time {
	return o.Broadcast + o.Communication + o.Synchronization + o.Collection
}

// Profile is one program run's instrumentation record.
type Profile struct {
	// Per instruction-group counts and attributed simulated time.
	GroupCount [isa.NumGroups]int64
	GroupTime  [isa.NumGroups]timing.Time

	// Per opcode counts.
	OpCount [isa.NumOpcodes]int64

	// Per barrier-synchronization point: inter-cluster marker activation
	// messages (the Fig. 8 series) and tier depth.
	Barriers []barrier.Stats

	// PhaseDurations aligns with Barriers: each propagation phase's
	// simulated duration and overlap degree.
	PhaseDurations []timing.Time
	PhaseBetas     []int

	// Parallel overhead components.
	Overhead Overhead

	// Propagation detail.
	PropInstrs   int64 // PROPAGATE instructions executed
	PropSteps    int64 // individual link traversals
	PropMessages int64 // inter-cluster activations
	PropHops     int64 // port-to-port ICN transfers carrying them
	SendBursts   int64 // coalesced same-next-hop send groups
	PropMaxDepth int   // longest propagation path observed

	// Collection detail.
	CollectedNodes int64

	// End-to-end simulated execution time.
	Elapsed timing.Time
}

// Record attributes one executed instruction and its simulated duration.
func (p *Profile) Record(op isa.Opcode, d timing.Time) {
	g := isa.GroupOf(op)
	p.GroupCount[g]++
	p.GroupTime[g] += d
	p.OpCount[op]++
}

// AddBarrier appends one synchronization point's traffic statistics.
func (p *Profile) AddBarrier(s barrier.Stats) {
	p.Barriers = append(p.Barriers, s)
	p.PropMessages += s.Messages
	if s.Levels > p.PropMaxDepth {
		p.PropMaxDepth = s.Levels
	}
}

// Merge folds another profile into p (multi-program applications such as
// the two-stage parser report one combined profile).
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	for g := 0; g < isa.NumGroups; g++ {
		p.GroupCount[g] += o.GroupCount[g]
		p.GroupTime[g] += o.GroupTime[g]
	}
	for op := 0; op < isa.NumOpcodes; op++ {
		p.OpCount[op] += o.OpCount[op]
	}
	p.Barriers = append(p.Barriers, o.Barriers...)
	p.PhaseDurations = append(p.PhaseDurations, o.PhaseDurations...)
	p.PhaseBetas = append(p.PhaseBetas, o.PhaseBetas...)
	p.Overhead.Broadcast += o.Overhead.Broadcast
	p.Overhead.Communication += o.Overhead.Communication
	p.Overhead.Synchronization += o.Overhead.Synchronization
	p.Overhead.Collection += o.Overhead.Collection
	p.PropInstrs += o.PropInstrs
	p.PropSteps += o.PropSteps
	p.PropMessages += o.PropMessages
	p.PropHops += o.PropHops
	p.SendBursts += o.SendBursts
	if o.PropMaxDepth > p.PropMaxDepth {
		p.PropMaxDepth = o.PropMaxDepth
	}
	p.CollectedNodes += o.CollectedNodes
	p.Elapsed += o.Elapsed
}

// TotalInstrs reports the total instructions executed.
func (p *Profile) TotalInstrs() int64 {
	var n int64
	for _, c := range p.GroupCount {
		n += c
	}
	return n
}

// TotalTime reports the total attributed instruction time.
func (p *Profile) TotalTime() timing.Time {
	var t timing.Time
	for _, d := range p.GroupTime {
		t += d
	}
	return t
}

// GroupShare reports a group's fraction of instruction count and time,
// the two bars Fig. 6 plots per instruction class.
func (p *Profile) GroupShare(g isa.Group) (countFrac, timeFrac float64) {
	ti, tt := p.TotalInstrs(), p.TotalTime()
	if ti > 0 {
		countFrac = float64(p.GroupCount[g]) / float64(ti)
	}
	if tt > 0 {
		timeFrac = float64(p.GroupTime[g]) / float64(tt)
	}
	return countFrac, timeFrac
}

// MessagesPerBarrier returns the Fig. 8 series: one value per
// synchronization point.
func (p *Profile) MessagesPerBarrier() []int64 {
	out := make([]int64, len(p.Barriers))
	for i, b := range p.Barriers {
		out[i] = b.Messages
	}
	return out
}

// MeanMessagesPerBarrier reports the average of the Fig. 8 series
// (the paper measures 11.49 for its parse).
func (p *Profile) MeanMessagesPerBarrier() float64 {
	if len(p.Barriers) == 0 {
		return 0
	}
	var sum int64
	for _, b := range p.Barriers {
		sum += b.Messages
	}
	return float64(sum) / float64(len(p.Barriers))
}

// BurstsOver counts synchronization points whose traffic exceeded n
// messages (the paper notes "bursts of over 30 messages are typical").
func (p *Profile) BurstsOver(n int64) int {
	c := 0
	for _, b := range p.Barriers {
		if b.Messages > n {
			c++
		}
	}
	return c
}

// String renders a compact multi-line profile report.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed %s, %d instructions\n", p.Elapsed, p.TotalInstrs())
	type row struct {
		g isa.Group
		c int64
		t timing.Time
	}
	var rows []row
	for g := 0; g < isa.NumGroups; g++ {
		if p.GroupCount[g] > 0 {
			rows = append(rows, row{isa.Group(g), p.GroupCount[g], p.GroupTime[g]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].t > rows[j].t })
	for _, r := range rows {
		cf, tf := p.GroupShare(r.g)
		fmt.Fprintf(&b, "  %-12s %7d instrs (%5.1f%%)  %12s (%5.1f%%)\n",
			r.g, r.c, cf*100, r.t, tf*100)
	}
	fmt.Fprintf(&b, "  propagation: %d steps, %d messages, %d hops, max depth %d, %d barriers (mean %.2f msgs/barrier)\n",
		p.PropSteps, p.PropMessages, p.PropHops, p.PropMaxDepth, len(p.Barriers), p.MeanMessagesPerBarrier())
	fmt.Fprintf(&b, "  overhead: broadcast %s, comm %s, sync %s, collect %s\n",
		p.Overhead.Broadcast, p.Overhead.Communication,
		p.Overhead.Synchronization, p.Overhead.Collection)
	return b.String()
}
