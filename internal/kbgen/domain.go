package kbgen

import (
	"fmt"

	"snap1/internal/semnet"
)

// Domain is the hand-written newswire micro-domain: a small, exactly
// structured slice of the paper's "terrorism in Latin America" knowledge
// base, with the four evaluation sentences standing in for the Table III
// MUC-4 inputs (which are not redistributable).
type Domain struct {
	Sentences []Sentence

	// Named concept-sequence roots.
	AttackEvent, BombingEvent, MurderEvent, KidnapEvent semnet.NodeID
	LocationCase, TimeCase                              semnet.NodeID
}

// Sentence is one evaluation input with its expected parse.
type Sentence struct {
	ID     string
	Text   string
	Words  []string // lexicon tokens, in order
	Expect string   // the basic concept sequence that must win
	Aux    []string // auxiliary case sequences that must also complete
}

// domainClass describes one hand-built hierarchy node.
type domainClass struct {
	name, parent string
}

// The micro-domain concept hierarchy, topologically ordered. "thing" is
// the generated hierarchy root, so the domain shares the synthetic KB's
// upper structure.
var domainClasses = []domainClass{
	{"physical-thing", "thing"},
	{"animate", "physical-thing"},
	{"person", "animate"},
	{"mayor-class", "person"},
	{"civilian", "person"},
	{"group", "animate"},
	{"terrorist-group", "group"},
	{"police-force", "group"},
	{"army", "group"},
	{"government-org", "group"},
	{"inanimate", "physical-thing"},
	{"building", "inanimate"},
	{"embassy-class", "building"},
	{"home-class", "building"},
	{"office-class", "building"},
	{"vehicle", "inanimate"},
	{"car-class", "vehicle"},
	{"device", "inanimate"},
	{"bomb-class", "device"},
	{"abstract", "thing"},
	{"action", "abstract"},
	{"attack-act", "action"},
	{"bomb-act", "attack-act"},
	{"kill-act", "attack-act"},
	{"kidnap-act", "attack-act"},
	{"time-ref", "abstract"},
	{"yesterday-ref", "time-ref"},
	{"place", "abstract"},
	{"city", "place"},
	{"bogota-city", "city"},
	{"sansalvador-city", "city"},
	{"spatial-relation", "abstract"},
}

// domainWord maps a lexicon token to its semantic class and syntactic
// category.
type domainWord struct {
	word, class, cat string
}

var domainWords = []domainWord{
	{"terrorists", "terrorist-group", "noun"},
	{"guerrillas", "terrorist-group", "noun"},
	{"police", "police-force", "noun"},
	{"soldiers", "army", "noun"},
	{"government", "government-org", "noun"},
	{"mayor", "mayor-class", "noun"},
	{"embassy", "embassy-class", "noun"},
	{"home", "home-class", "noun"},
	{"office", "office-class", "noun"},
	{"car", "car-class", "noun"},
	{"bomb", "bomb-class", "noun"},
	{"attacked", "attack-act", "verb"},
	{"bombed", "bomb-act", "verb"},
	{"exploded", "bomb-act", "verb"},
	{"killed", "kill-act", "verb"},
	{"murdered", "kill-act", "verb"},
	{"kidnapped", "kidnap-act", "verb"},
	{"bogota", "bogota-city", "noun"},
	{"salvador", "sansalvador-city", "noun"},
	{"yesterday", "yesterday-ref", "adv"},
	{"in", "spatial-relation", "prep"},
	{"near", "spatial-relation", "prep"},
	{"the", "", "det"},
	{"a", "", "det"},
	{"was", "", "aux-verb"},
	{"of", "", "prep"},
	// Pronouns: the is-a class is the agreement constraint reference
	// resolution checks antecedents against (DMSNAP-style discourse).
	{"they", "group", "pronoun"}, // plural: animate collectives
	{"it", "inanimate", "pronoun"},
}

// domainSeq describes one hand-built concept sequence: a root and the
// semantic constraint class of each element (all with noun/verb syntax in
// slot order agent-act-target for the basic event sequences).
type domainSeq struct {
	name  string
	aux   bool // auxiliary case sequence: attaches to events, never competes
	elems []struct{ sem, syn string }
}

func seq(name string, elems ...[2]string) domainSeq {
	d := domainSeq{name: name}
	for _, e := range elems {
		d.elems = append(d.elems, struct{ sem, syn string }{e[0], e[1]})
	}
	return d
}

var domainSeqs = []domainSeq{
	seq("attack-event", [2]string{"group", "noun"}, [2]string{"attack-act", "verb"}, [2]string{"physical-thing", "noun"}),
	seq("bombing-event", [2]string{"group", "noun"}, [2]string{"bomb-act", "verb"}, [2]string{"building", "noun"}),
	seq("murder-event", [2]string{"group", "noun"}, [2]string{"kill-act", "verb"}, [2]string{"animate", "noun"}),
	seq("kidnap-event", [2]string{"group", "noun"}, [2]string{"kidnap-act", "verb"}, [2]string{"person", "noun"}),
	auxSeq("location-case", [2]string{"spatial-relation", "prep"}, [2]string{"place", "noun"}),
	auxSeq("time-case", [2]string{"time-ref", "adv"}),
}

func auxSeq(name string, elems ...[2]string) domainSeq {
	d := seq(name, elems...)
	d.aux = true
	return d
}

// EvaluationSentences returns the four inputs standing in for Table III's
// MUC-4 newswire sentences.
func EvaluationSentences() []Sentence {
	out := make([]Sentence, len(evaluationSentences))
	copy(out, evaluationSentences)
	return out
}

// evaluationSentences stand in for Table III's MUC-4 newswire inputs.
var evaluationSentences = []Sentence{
	{
		ID:     "S1",
		Text:   "Terrorists attacked the mayor's home in Bogota yesterday.",
		Words:  []string{"terrorists", "attacked", "the", "mayor", "home", "in", "bogota", "yesterday"},
		Expect: "attack-event",
		Aux:    []string{"location-case", "time-case"},
	},
	{
		ID:     "S2",
		Text:   "Guerrillas bombed the embassy.",
		Words:  []string{"guerrillas", "bombed", "the", "embassy"},
		Expect: "bombing-event",
	},
	{
		ID:     "S3",
		Text:   "The police killed the terrorists.",
		Words:  []string{"the", "police", "killed", "the", "terrorists"},
		Expect: "murder-event",
	},
	{
		ID:     "S4",
		Text:   "A car bomb exploded near the government office yesterday.",
		Words:  []string{"a", "car", "bomb", "exploded", "near", "the", "government", "office", "yesterday"},
		Expect: "bombing-event",
		Aux:    []string{"time-case"},
	},
}

// BuildDomain adds the micro-domain to a generated knowledge base whose
// syntax and hierarchy roots already exist. Domain link weights are 1 on
// is-a links and 0 on constraint reverse links, so a complex marker
// propagated with FuncAdd measures exactly the is-a distance from word to
// constraint — the specificity score hypothesis resolution minimizes.
func BuildDomain(g *Generated) (*Domain, error) {
	kb := g.KB
	for _, dc := range domainClasses {
		parent, ok := kb.Lookup(dc.parent)
		if !ok {
			return nil, fmt.Errorf("kbgen: domain parent %q missing", dc.parent)
		}
		id, err := kb.AddNode(dc.name, g.Col.Class)
		if err != nil {
			return nil, err
		}
		kb.MustAddLink(id, g.Rel.IsA, 1, parent)
		kb.MustAddLink(parent, g.Rel.Subsumes, 1, id)
		g.Classes = append(g.Classes, id)
		g.domainClasses = append(g.domainClasses, id)
	}
	for _, dw := range domainWords {
		id, err := kb.AddNode(dw.word, g.Col.Word)
		if err != nil {
			return nil, err
		}
		if dw.class != "" {
			class, ok := kb.Lookup(dw.class)
			if !ok {
				return nil, fmt.Errorf("kbgen: domain class %q missing", dw.class)
			}
			kb.MustAddLink(id, g.Rel.IsA, 1, class)
		}
		cat, ok := kb.Lookup(dw.cat)
		if !ok {
			return nil, fmt.Errorf("kbgen: syntax category %q missing", dw.cat)
		}
		kb.MustAddLink(id, g.Rel.IsA, 1, cat)
		g.Words = append(g.Words, id)
	}

	d := &Domain{Sentences: evaluationSentences}
	for _, ds := range domainSeqs {
		rootColor := g.Col.Root
		if ds.aux {
			rootColor = g.Col.Aux
		}
		root, err := kb.AddNode(ds.name, rootColor)
		if err != nil {
			return nil, err
		}
		g.Roots = append(g.Roots, root)
		var prev semnet.NodeID
		for e, el := range ds.elems {
			eid := kb.MustAddNode(fmt.Sprintf("%s.e%d", ds.name, e), g.Col.Element[e%MaxSeqElements])
			kb.MustAddLink(root, g.Rel.Elem, 0, eid)
			kb.MustAddLink(eid, g.Rel.ElemOf, 0, root)
			sem, ok := kb.Lookup(el.sem)
			if !ok {
				return nil, fmt.Errorf("kbgen: constraint class %q missing", el.sem)
			}
			kb.MustAddLink(eid, g.Rel.Sem, 0, sem)
			kb.MustAddLink(sem, g.Rel.SemOf, 0, eid)
			syn, ok := kb.Lookup(el.syn)
			if !ok {
				return nil, fmt.Errorf("kbgen: syntax category %q missing", el.syn)
			}
			kb.MustAddLink(eid, g.Rel.Syn, 0, syn)
			kb.MustAddLink(syn, g.Rel.SynOf, 0, eid)
			if e > 0 {
				kb.MustAddLink(prev, g.Rel.Next, 1, eid)
			}
			prev = eid
		}
		switch ds.name {
		case "attack-event":
			d.AttackEvent = root
		case "bombing-event":
			d.BombingEvent = root
		case "murder-event":
			d.MurderEvent = root
		case "kidnap-event":
			d.KidnapEvent = root
		case "location-case":
			d.LocationCase = root
		case "time-case":
			d.TimeCase = root
		}
	}
	// The auxiliary case sequences attach to every basic event sequence.
	for _, aux := range []semnet.NodeID{d.LocationCase, d.TimeCase} {
		for _, base := range []semnet.NodeID{d.AttackEvent, d.BombingEvent, d.MurderEvent, d.KidnapEvent} {
			kb.MustAddLink(aux, g.Rel.AuxOf, 0, base)
		}
	}
	return d, nil
}
