package kbgen

import (
	"fmt"
	"testing"

	"snap1/internal/semnet"
)

func TestGenerateLayerMix(t *testing.T) {
	g, err := Generate(Params{Nodes: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.KB.Validate(); err == nil {
		// Validate may fail before Preprocess on over-fanout hubs; both
		// outcomes are fine here, we check post-Preprocess below.
		_ = err
	}
	st := g.Summarize()
	total := float64(st.Nodes)
	// The lexicon is about a third of the network.
	lexFrac := float64(st.Words) / total
	if lexFrac < 0.25 || lexFrac > 0.42 {
		t.Errorf("lexicon fraction = %.2f, want ≈1/3", lexFrac)
	}
	// Concept sequences dominate the non-lexical nodes (paper: 75%).
	seqNodes := st.Nodes - st.Words - st.Classes - st.Syn - 8
	nonLex := st.Nodes - st.Words
	if frac := float64(seqNodes) / float64(nonLex); frac < 0.6 || frac > 0.9 {
		t.Errorf("concept-sequence fraction of non-lexical = %.2f, want ≈0.75", frac)
	}
	if st.Links == 0 || st.Roots == 0 || st.Leaves == 0 {
		t.Fatalf("degenerate network: %+v", st)
	}
	g.KB.Preprocess()
	if err := g.KB.Validate(); err != nil {
		t.Fatalf("post-preprocess validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Params{Nodes: 1000, Seed: 7})
	b := MustGenerate(Params{Nodes: 1000, Seed: 7})
	if a.KB.NumNodes() != b.KB.NumNodes() || a.KB.NumLinks() != b.KB.NumLinks() {
		t.Fatal("same seed must generate identical networks")
	}
	for i := 0; i < a.KB.NumNodes(); i++ {
		na, _ := a.KB.Node(semnet.NodeID(i))
		nb, _ := b.KB.Node(semnet.NodeID(i))
		if na.Name != nb.Name || na.Color != nb.Color || len(na.Out) != len(nb.Out) {
			t.Fatalf("node %d differs between runs", i)
		}
	}
	c := MustGenerate(Params{Nodes: 1000, Seed: 8})
	if c.KB.NumLinks() == a.KB.NumLinks() {
		t.Log("different seeds produced equal link counts (possible but unlikely)")
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := Generate(Params{Nodes: 10}); err == nil {
		t.Fatal("tiny budget must fail")
	}
}

func TestHierarchyBidirectional(t *testing.T) {
	g := MustGenerate(Params{Nodes: 2000, Seed: 3})
	// Every class (except the root) must have an upward is-a link whose
	// parent has the matching downward subsumes link.
	checked := 0
	for _, id := range g.Classes {
		if id == g.HierRoot {
			continue
		}
		node, _ := g.KB.Node(id)
		var parent semnet.NodeID = semnet.InvalidNode
		for _, l := range node.Out {
			if l.Rel == g.Rel.IsA {
				parent = l.To
			}
		}
		if parent == semnet.InvalidNode {
			t.Fatalf("class %s has no is-a parent", node.Name)
		}
		pn, _ := g.KB.Node(parent)
		found := false
		for _, l := range pn.Out {
			if l.Rel == g.Rel.Subsumes && l.To == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent %s lacks subsumes link to %s", pn.Name, node.Name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no classes checked")
	}
}

func TestSequenceStructure(t *testing.T) {
	g := MustGenerate(Params{Nodes: 2000, Seed: 3})
	for _, root := range g.Roots[:10] {
		node, _ := g.KB.Node(root)
		elems := 0
		for _, l := range node.Out {
			if l.Rel != g.Rel.Elem {
				continue
			}
			elems++
			el, _ := g.KB.Node(l.To)
			var hasElemOf, hasSem, hasSyn bool
			for _, ll := range el.Out {
				switch ll.Rel {
				case g.Rel.ElemOf:
					hasElemOf = ll.To == root
				case g.Rel.Sem:
					hasSem = true
				case g.Rel.Syn:
					hasSyn = true
				}
			}
			if !hasElemOf || !hasSem || !hasSyn {
				t.Fatalf("element %s incomplete: elemOf=%v sem=%v syn=%v",
					el.Name, hasElemOf, hasSem, hasSyn)
			}
		}
		if elems < 1 || elems > MaxSeqElements {
			t.Fatalf("root %s has %d elements", node.Name, elems)
		}
	}
}

func TestDomainEmbedding(t *testing.T) {
	g := MustGenerate(Params{Nodes: 1000, Seed: 5, WithDomain: true})
	d := g.Domain
	if d == nil {
		t.Fatal("domain missing")
	}
	if len(d.Sentences) != 4 {
		t.Fatalf("%d evaluation sentences", len(d.Sentences))
	}
	for _, s := range d.Sentences {
		for _, w := range s.Words {
			if _, ok := g.KB.Lookup(w); !ok {
				t.Errorf("%s: word %q missing from lexicon", s.ID, w)
			}
		}
		if _, ok := g.KB.Lookup(s.Expect); !ok {
			t.Errorf("%s: expected sequence %q missing", s.ID, s.Expect)
		}
	}
	// Named roots must carry the right colors: basic = Root, aux = Aux.
	for _, id := range []semnet.NodeID{d.AttackEvent, d.BombingEvent, d.MurderEvent, d.KidnapEvent} {
		n, _ := g.KB.Node(id)
		if n.Color != g.Col.Root {
			t.Errorf("basic sequence %s has color %d", n.Name, n.Color)
		}
	}
	for _, id := range []semnet.NodeID{d.LocationCase, d.TimeCase} {
		n, _ := g.KB.Node(id)
		if n.Color != g.Col.Aux {
			t.Errorf("aux sequence %s has color %d", n.Name, n.Color)
		}
	}
	if len(EvaluationSentences()) != 4 {
		t.Error("EvaluationSentences")
	}
}

func TestChainsWorkload(t *testing.T) {
	w := Chains(3, 5, 7, 1)
	if w.Nodes() != 3*5*(7+1) {
		t.Fatalf("nodes = %d", w.Nodes())
	}
	if len(w.Seeds) != 3 {
		t.Fatal("seed colors")
	}
	// Each chain must be a simple path of the given depth.
	for g := 0; g < 3; g++ {
		for a := 0; a < 5; a++ {
			for d := 0; d < 7; d++ {
				id, ok := w.KB.Lookup(fmt.Sprintf("c%d.%d.%d", g, a, d))
				if !ok {
					t.Fatalf("missing chain node %d.%d.%d", g, a, d)
				}
				n, _ := w.KB.Node(id)
				if len(n.Out) != 1 || n.Out[0].Rel != w.Rel {
					t.Fatalf("chain node %s has %d links", n.Name, len(n.Out))
				}
			}
		}
	}
}

func TestNestedChains(t *testing.T) {
	levels := []int{10, 100, 1000}
	w, err := NestedChains(levels, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Nodes() != 1000*7 {
		t.Fatalf("nodes = %d", w.Nodes())
	}
	// Counting seeds per color: activating colors 0..j must light
	// exactly levels[j] chains.
	counts := make([]int, 3)
	for a := 0; a < 1000; a++ {
		id, _ := w.KB.Lookup(fmt.Sprintf("n%d.0", a))
		n, _ := w.KB.Node(id)
		for j, c := range w.Seeds {
			if n.Color == c {
				counts[j]++
			}
		}
	}
	if counts[0] != 10 || counts[0]+counts[1] != 100 || counts[0]+counts[1]+counts[2] != 1000 {
		t.Fatalf("nested seed counts = %v", counts)
	}
}

func TestNestedChainsErrors(t *testing.T) {
	if _, err := NestedChains(nil, 5, 1); err == nil {
		t.Error("empty levels")
	}
	if _, err := NestedChains([]int{3, 1000}, 5, 1); err == nil {
		t.Error("non-divisible level")
	}
	if _, err := NestedChains([]int{100, 100}, 5, 1); err == nil {
		t.Error("non-ascending levels")
	}
}
