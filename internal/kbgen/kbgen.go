// Package kbgen generates linguistic knowledge bases with the structure
// the SNAP project used (Section I-B): a lexical layer at the bottom,
// semantic and syntactic constraints in the middle, and concept sequences
// at the top, mixed in the paper's measured proportions — of the
// non-lexical nodes roughly 75 % basic concept sequences, 15 % the
// concept-type hierarchy, 5 % syntactic patterns, and 5 % auxiliary
// concept storage, under a lexicon of about a third of the network.
//
// The original knowledge base (10K-word lexicon, 20K+ non-lexical
// concepts about "terrorism in Latin America", built by hand for MUC-4
// texts) is not redistributable; the generator reproduces its structural
// statistics deterministically from a seed, and can embed a hand-written
// micro-domain of the same genre so realistic sentences parse.
package kbgen

import (
	"fmt"
	"math/rand"

	"snap1/internal/semnet"
)

// MaxSeqElements is the largest concept-sequence element count generated.
const MaxSeqElements = 4

// Params controls generation.
type Params struct {
	// Nodes is the total node budget before preprocessor subnode
	// splitting. Minimum 64.
	Nodes int
	// Seed makes generation reproducible.
	Seed int64
	// Branching is the concept hierarchy's fan-out (default 4).
	Branching int
	// WithDomain embeds the newswire micro-domain (BuildDomain).
	WithDomain bool
}

// Relations is the interned relation vocabulary every generated KB uses.
type Relations struct {
	IsA      semnet.RelType // specific -> general (upward)
	Subsumes semnet.RelType // general -> specific (downward)
	Sem      semnet.RelType // element -> constraining semantic class
	SemOf    semnet.RelType // class -> constrained element (reverse)
	Syn      semnet.RelType // element -> constraining syntactic category
	SynOf    semnet.RelType // category -> constrained element (reverse)
	Elem     semnet.RelType // sequence root -> element
	ElemOf   semnet.RelType // element -> sequence root (reverse)
	Next     semnet.RelType // element -> following element
	AuxOf    semnet.RelType // auxiliary sequence -> base sequence
	Instance semnet.RelType // parse binding: winner -> utterance
}

// Colors is the interned color vocabulary.
type Colors struct {
	Word      semnet.Color
	Class     semnet.Color // interior concept-hierarchy node
	Leaf      semnet.Color // hierarchy leaf
	Syntax    semnet.Color
	Root      semnet.Color // concept-sequence root
	Aux       semnet.Color
	Utterance semnet.Color
	Element   [MaxSeqElements]semnet.Color // per element-slot index
}

// Generated is a knowledge base plus the handles experiments need.
type Generated struct {
	KB  *semnet.KB
	Rel Relations
	Col Colors

	HierRoot   semnet.NodeID
	SyntaxRoot semnet.NodeID
	Words      []semnet.NodeID
	Classes    []semnet.NodeID // interior hierarchy nodes (incl. root)
	Leaves     []semnet.NodeID
	Roots      []semnet.NodeID // concept-sequence roots
	SynCats    []semnet.NodeID
	Utterances []semnet.NodeID

	Domain *Domain // non-nil when Params.WithDomain

	domainClasses []semnet.NodeID // hand-built ontology classes, if any
}

// internRelations fills the relation vocabulary on kb.
func internRelations(kb *semnet.KB) Relations {
	return Relations{
		IsA:      kb.Relation("is-a"),
		Subsumes: kb.Relation("subsumes"),
		Sem:      kb.Relation("sem"),
		SemOf:    kb.Relation("sem-of"),
		Syn:      kb.Relation("syn"),
		SynOf:    kb.Relation("syn-of"),
		Elem:     kb.Relation("elem"),
		ElemOf:   kb.Relation("elem-of"),
		Next:     kb.Relation("next"),
		AuxOf:    kb.Relation("aux-of"),
		Instance: kb.Relation("instance-of"),
	}
}

func internColors(kb *semnet.KB) Colors {
	c := Colors{
		Word:      kb.ColorFor("word"),
		Class:     kb.ColorFor("class"),
		Leaf:      kb.ColorFor("leaf"),
		Syntax:    kb.ColorFor("syntax"),
		Root:      kb.ColorFor("cs-root"),
		Aux:       kb.ColorFor("aux"),
		Utterance: kb.ColorFor("utterance"),
	}
	for i := range c.Element {
		c.Element[i] = kb.ColorFor(fmt.Sprintf("element-%d", i))
	}
	return c
}

// coreSyntaxCats are the part-of-speech and phrase categories every
// generated lexicon references.
var coreSyntaxCats = []string{
	"noun", "verb", "adj", "det", "prep", "adv", "aux-verb", "pronoun",
	"np", "vp", "pp", "sentence",
}

// Generate builds a knowledge base of about p.Nodes nodes.
func Generate(p Params) (*Generated, error) {
	if p.Nodes < 64 {
		return nil, fmt.Errorf("kbgen: need at least 64 nodes, got %d", p.Nodes)
	}
	if p.Branching <= 1 {
		p.Branching = 4
	}
	rng := rand.New(rand.NewSource(p.Seed))
	kb := semnet.NewKB()
	g := &Generated{
		KB:  kb,
		Rel: internRelations(kb),
		Col: internColors(kb),
	}

	// Node budget, following the paper's layer proportions: a third
	// lexicon; of the remainder 75 % concept sequences, 15 % hierarchy,
	// 5 % syntax, 5 % auxiliary — with a handful of utterance anchors.
	const numUtterances = 8
	budget := p.Nodes - numUtterances
	nLex := budget / 3
	rest := budget - nLex
	nCS := rest * 75 / 100
	nHier := rest * 15 / 100
	nSyn := rest * 5 / 100
	nAux := rest - nCS - nHier - nSyn

	g.buildSyntax(rng, nSyn)
	g.buildHierarchy(rng, nHier, p.Branching)
	if p.WithDomain {
		d, err := BuildDomain(g)
		if err != nil {
			return nil, err
		}
		g.Domain = d
	}
	g.buildLexicon(rng, nLex)
	g.buildSequences(rng, nCS)
	g.buildAux(rng, nAux)
	for i := 0; i < numUtterances; i++ {
		g.Utterances = append(g.Utterances,
			kb.MustAddNode(fmt.Sprintf("utterance-%d", i), g.Col.Utterance))
	}
	return g, nil
}

// MustGenerate is Generate for construction code where failure is a bug.
func MustGenerate(p Params) *Generated {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Generated) buildSyntax(rng *rand.Rand, n int) {
	kb := g.KB
	g.SyntaxRoot = kb.MustAddNode("syntax-root", g.Col.Syntax)
	for _, name := range coreSyntaxCats {
		id := kb.MustAddNode(name, g.Col.Syntax)
		kb.MustAddLink(id, g.Rel.IsA, 1, g.SyntaxRoot)
		g.SynCats = append(g.SynCats, id)
	}
	for i := len(coreSyntaxCats) + 1; i < n; i++ {
		id := kb.MustAddNode(fmt.Sprintf("syn-%d", i), g.Col.Syntax)
		parent := g.SynCats[rng.Intn(len(g.SynCats))]
		kb.MustAddLink(id, g.Rel.IsA, 1, parent)
		g.SynCats = append(g.SynCats, id)
	}
}

// buildHierarchy grows the concept-type hierarchy breadth-first with the
// configured branching factor; every node gets an upward is-a link and a
// downward subsumes link so both inheritance directions propagate.
func (g *Generated) buildHierarchy(rng *rand.Rand, n, branching int) {
	kb := g.KB
	g.HierRoot = kb.MustAddNode("thing", g.Col.Class)
	g.Classes = append(g.Classes, g.HierRoot)
	frontier := []semnet.NodeID{g.HierRoot}
	made := 1
	for made < n {
		var next []semnet.NodeID
		for _, parent := range frontier {
			for b := 0; b < branching && made < n; b++ {
				w := 0.2 + rng.Float32()*0.8
				id := kb.MustAddNode(fmt.Sprintf("class-%d", made), g.Col.Class)
				kb.MustAddLink(id, g.Rel.IsA, w, parent)
				kb.MustAddLink(parent, g.Rel.Subsumes, w, id)
				next = append(next, id)
				made++
			}
			if made >= n {
				break
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
		g.Classes = append(g.Classes, next...)
	}
	// The final frontier is the leaf level.
	g.Leaves = frontier
	for _, id := range g.Leaves {
		node, _ := kb.Node(id)
		node.Color = g.Col.Leaf
	}
}

// pickSyn samples a syntactic category for an element constraint. Most
// constraints land on filler categories so that the fan-in of the core
// part-of-speech categories (and with it the activation burst per word)
// stays bounded as the knowledge base grows.
func (g *Generated) pickSyn(rng *rand.Rand) semnet.NodeID {
	nCore := len(coreSyntaxCats)
	if len(g.SynCats) > nCore && rng.Float64() < 0.7 {
		return g.SynCats[nCore+rng.Intn(len(g.SynCats)-nCore)]
	}
	return g.SynCats[rng.Intn(nCore)]
}

// pickClass samples a hierarchy node, biased toward the leaf level where
// specific concepts live. When a domain is embedded, a fraction of the
// constraints land on its classes: realistic knowledge bases have many
// concept sequences referencing the common ontology (person, place,
// group, …), which is what activates "irrelevant candidates" all over the
// array when a sentence is read.
func (g *Generated) pickClass(rng *rand.Rand) semnet.NodeID {
	if len(g.domainClasses) > 0 && rng.Float64() < 0.12 {
		return g.domainClasses[rng.Intn(len(g.domainClasses))]
	}
	if len(g.Leaves) > 0 && rng.Float64() < 0.6 {
		return g.Leaves[rng.Intn(len(g.Leaves))]
	}
	return g.Classes[rng.Intn(len(g.Classes))]
}

func (g *Generated) buildLexicon(rng *rand.Rand, n int) {
	kb := g.KB
	for i := 0; i < n; i++ {
		id := kb.MustAddNode(fmt.Sprintf("w-%d", i), g.Col.Word)
		kb.MustAddLink(id, g.Rel.IsA, 0.3+rng.Float32()*0.7, g.pickClass(rng))
		cat := g.SynCats[rng.Intn(len(g.SynCats))]
		kb.MustAddLink(id, g.Rel.IsA, 1, cat)
		g.Words = append(g.Words, id)
	}
}

// buildSequences creates concept sequences: a root plus 2..MaxSeqElements
// element nodes, each element carrying one semantic and one syntactic
// constraint with reverse links for downward activation.
func (g *Generated) buildSequences(rng *rand.Rand, budget int) {
	kb := g.KB
	i := 0
	for budget > 0 {
		k := 2 + rng.Intn(MaxSeqElements-1)
		if k+1 > budget {
			k = budget - 1
			if k < 1 {
				break
			}
		}
		root := kb.MustAddNode(fmt.Sprintf("cs-%d", i), g.Col.Root)
		g.Roots = append(g.Roots, root)
		var prev semnet.NodeID
		for e := 0; e < k; e++ {
			el := kb.MustAddNode(fmt.Sprintf("cs-%d.e%d", i, e), g.Col.Element[e%MaxSeqElements])
			w := 0.2 + rng.Float32()*0.8
			kb.MustAddLink(root, g.Rel.Elem, w, el)
			kb.MustAddLink(el, g.Rel.ElemOf, w, root)
			sem := g.pickClass(rng)
			kb.MustAddLink(el, g.Rel.Sem, w, sem)
			kb.MustAddLink(sem, g.Rel.SemOf, w, el)
			// A second, broader semantic constraint on half the elements:
			// elements often accept a disjunction of concept classes, and
			// the extra reverse links raise the activation width (α) of
			// the constraint-spread phase toward the paper's 100-1000
			// range.
			sem2 := g.pickClass(rng)
			if sem2 != sem && rng.Float64() < 0.5 {
				kb.MustAddLink(el, g.Rel.Sem, w, sem2)
				kb.MustAddLink(sem2, g.Rel.SemOf, w, el)
			}
			syn := g.pickSyn(rng)
			kb.MustAddLink(el, g.Rel.Syn, 1, syn)
			kb.MustAddLink(syn, g.Rel.SynOf, 1, el)
			if e > 0 {
				kb.MustAddLink(prev, g.Rel.Next, 1, el)
			}
			prev = el
		}
		budget -= k + 1
		i++
	}
}

func (g *Generated) buildAux(rng *rand.Rand, n int) {
	kb := g.KB
	for i := 0; i < n; i++ {
		id := kb.MustAddNode(fmt.Sprintf("aux-%d", i), g.Col.Aux)
		if len(g.Roots) > 0 {
			root := g.Roots[rng.Intn(len(g.Roots))]
			kb.MustAddLink(id, g.Rel.AuxOf, 1, root)
		}
	}
}

// Stats summarizes a generated network's layer composition.
type Stats struct {
	Nodes, Links                       int
	Words, Classes, Leaves, Roots, Syn int
	HierarchyDepth                     int
}

// Summarize computes layer statistics for reporting.
func (g *Generated) Summarize() Stats {
	depth := 0
	for n := len(g.Classes) + len(g.Leaves); n > 1; n = (n + 3) / 4 {
		depth++
	}
	return Stats{
		Nodes:          g.KB.NumNodes(),
		Links:          g.KB.NumLinks(),
		Words:          len(g.Words),
		Classes:        len(g.Classes),
		Leaves:         len(g.Leaves),
		Roots:          len(g.Roots),
		Syn:            len(g.SynCats),
		HierarchyDepth: depth,
	}
}
