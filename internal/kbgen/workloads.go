package kbgen

import (
	"fmt"
	"math/rand"

	"snap1/internal/semnet"
)

// Workload is a synthetic propagation benchmark network used for the
// α- and β-parallelism speedup experiments (Figs. 16 and 17): groups of
// independent propagation chains whose sources are found by color search.
type Workload struct {
	KB    *semnet.KB
	Rel   semnet.RelType // the chain relation
	Seeds []semnet.Color // one source color per overlappable group
	Alpha int            // sources per group
	Depth int            // chain length from each source
}

// Chains builds groups × alpha independent chains of the given depth.
// Group g's source nodes all carry color Seeds[g], so a single
// SEARCH-COLOR activates exactly α sources, and the groups use disjoint
// node sets so their PROPAGATEs are fully independent (β-overlappable).
//
// Chain nodes are emitted in an interleaved order so that block
// (sequential) partitioning still spreads every group across clusters.
func Chains(groups, alpha, depth int, seed int64) *Workload {
	if groups < 1 {
		groups = 1
	}
	if alpha < 1 {
		alpha = 1
	}
	if depth < 1 {
		depth = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kb := semnet.NewKB()
	w := &Workload{
		KB:    kb,
		Rel:   kb.Relation("link"),
		Alpha: alpha,
		Depth: depth,
	}
	for g := 0; g < groups; g++ {
		w.Seeds = append(w.Seeds, kb.ColorFor(fmt.Sprintf("seed-%d", g)))
	}
	body := kb.ColorFor("chain")

	// ids[g][a][d]: node d of chain a in group g.
	for d := 0; d <= depth; d++ {
		for g := 0; g < groups; g++ {
			for a := 0; a < alpha; a++ {
				color := body
				if d == 0 {
					color = w.Seeds[g]
				}
				kb.MustAddNode(fmt.Sprintf("c%d.%d.%d", g, a, d), color)
			}
		}
	}
	at := func(g, a, d int) semnet.NodeID {
		id, _ := kb.Lookup(fmt.Sprintf("c%d.%d.%d", g, a, d))
		return id
	}
	for g := 0; g < groups; g++ {
		for a := 0; a < alpha; a++ {
			for d := 0; d < depth; d++ {
				kb.MustAddLink(at(g, a, d), w.Rel, 0.1+rng.Float32()*0.9, at(g, a, d+1))
			}
		}
	}
	return w
}

// Nodes reports the workload's total node count.
func (w *Workload) Nodes() int { return w.KB.NumNodes() }

// NestedChains builds a fixed-size network of levels[len-1] chains where
// activating seed colors 0..j lights up exactly levels[j] sources. This
// keeps the knowledge base (and so the partition granularity) constant
// while α varies, as in the paper's Fig. 16 sweep. Levels must be
// ascending and divide evenly into the total. The level-j chains are
// strided across the chain index space so that connectivity-based
// partitioning spreads even the smallest activation set over many
// clusters.
func NestedChains(levels []int, depth int, seed int64) (*Workload, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("kbgen: NestedChains needs at least one level")
	}
	total := levels[len(levels)-1]
	for j, l := range levels {
		if l <= 0 || total%l != 0 {
			return nil, fmt.Errorf("kbgen: level %d (%d) must divide total %d", j, l, total)
		}
		if j > 0 && l <= levels[j-1] {
			return nil, fmt.Errorf("kbgen: levels must be strictly ascending")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	kb := semnet.NewKB()
	w := &Workload{
		KB:    kb,
		Rel:   kb.Relation("link"),
		Alpha: total,
		Depth: depth,
	}
	for j := range levels {
		w.Seeds = append(w.Seeds, kb.ColorFor(fmt.Sprintf("seed-%d", j)))
	}
	body := kb.ColorFor("chain")

	levelOf := func(chain int) int {
		for j, l := range levels {
			if chain%(total/l) == 0 {
				return j
			}
		}
		return len(levels) - 1
	}
	for d := 0; d <= depth; d++ {
		for a := 0; a < total; a++ {
			color := body
			if d == 0 {
				color = w.Seeds[levelOf(a)]
			}
			kb.MustAddNode(fmt.Sprintf("n%d.%d", a, d), color)
		}
	}
	at := func(a, d int) semnet.NodeID {
		id, _ := kb.Lookup(fmt.Sprintf("n%d.%d", a, d))
		return id
	}
	for a := 0; a < total; a++ {
		for d := 0; d < depth; d++ {
			kb.MustAddLink(at(a, d), w.Rel, 0.1+rng.Float32()*0.9, at(a, d+1))
		}
	}
	return w, nil
}
