package engine

import (
	"container/list"
	"sync"

	"snap1/internal/machine"
)

// lruCache is a mutex-guarded LRU used for both engine caches: compiled
// programs keyed by source content hash, and query results keyed by
// (program hash, KB generation). Cached values are shared by every
// query that hits them; both value types are immutable once published,
// so sharing is safe.
type lruCache[K comparable, V any] struct {
	mu       sync.Mutex
	cap      int
	order    *list.List          // front = most recently used
	byKey    map[K]*list.Element // value: *cacheEntry[K, V]
	evictTot uint64              // lifetime capacity + sweep evictions
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRUCache[K comparable, V any](capacity int) *lruCache[K, V] {
	return &lruCache[K, V]{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[K]*list.Element, capacity),
	}
}

func (c *lruCache[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[K, V]).val, true
}

func (c *lruCache[K, V]) put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry[K, V]).val = val
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry[K, V]{key: key, val: val})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry[K, V]).key)
		c.evictTot++
	}
}

// getOrPut returns the resident value for key, or inserts val and
// returns it. One atomic step, so concurrent fillers agree on a single
// shared value (the optimizer cache's contract).
func (c *lruCache[K, V]) getOrPut(key K, val V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry[K, V]).val, true
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry[K, V]{key: key, val: val})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry[K, V]).key)
		c.evictTot++
	}
	return val, false
}

// sweep removes every entry whose key the predicate selects, returning
// the number removed.
func (c *lruCache[K, V]) sweep(drop func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if key := el.Value.(*cacheEntry[K, V]).key; drop(key) {
			c.order.Remove(el)
			delete(c.byKey, key)
			c.evictTot++
			n++
		}
		el = next
	}
	return n
}

// len reports the resident entry count (test support).
func (c *lruCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evictions reports the lifetime eviction count (capacity + sweeps).
func (c *lruCache[K, V]) evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictTot
}

// resultKey identifies a memoized query result: the program's content
// hash plus the knowledge base's structural generation at execution
// time. A KB mutation bumps the generation, so stale results can never
// satisfy a post-mutation query — they simply stop being looked up and
// age out of the LRU.
type resultKey struct {
	hash uint64
	gen  uint64
}

// resultCache memoizes read-only query results. Every accepted query is
// a pure function of (program, topology): markers are cleared before
// each run and mutating programs are refused, so on the deterministic
// lockstep engine a cached Result — collections and virtual time both —
// is bit-identical to recomputation.
type resultCache struct {
	lru *lruCache[resultKey, *machine.Result]
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{lru: newLRUCache[resultKey, *machine.Result](capacity)}
}

func (c *resultCache) get(hash, gen uint64) (*machine.Result, bool) {
	return c.lru.get(resultKey{hash: hash, gen: gen})
}

func (c *resultCache) put(hash, gen uint64, res *machine.Result) {
	c.lru.put(resultKey{hash: hash, gen: gen}, res)
}

func (c *resultCache) len() int { return c.lru.len() }

// evictBefore sweeps out every entry memoized under a generation older
// than gen and returns the number removed. A write publish calls it so
// superseded-generation results — which can never be looked up again —
// free their memory immediately instead of lingering until LRU pressure
// pushes them out.
func (c *resultCache) evictBefore(gen uint64) int {
	return c.lru.sweep(func(k resultKey) bool { return k.gen < gen })
}
