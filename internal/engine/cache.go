package engine

import (
	"container/list"
	"sync"

	"snap1/internal/isa"
)

// lruCache memoizes assembled programs by source content hash. A program
// in the cache is shared by every query that hits it; compiled programs
// are immutable during execution, so sharing is safe.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	byKey map[uint64]*list.Element // value: *cacheEntry
}

type cacheEntry struct {
	key  uint64
	prog *isa.Program
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[uint64]*list.Element, capacity),
	}
}

func (c *lruCache) get(key uint64) (*isa.Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).prog, true
}

func (c *lruCache) put(key uint64, prog *isa.Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).prog = prog
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, prog: prog})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count (test support).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
