package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
)

// HealthPolicy governs replica quarantine and reintegration: a replica
// whose queries time out FailureThreshold times in a row is pulled from
// the shard ring, probed every ProbeInterval with an empty program, and
// restored after ProbeSuccesses consecutive passes. The zero value of
// any field selects its default.
type HealthPolicy struct {
	// FailureThreshold is the consecutive-timeout count that
	// quarantines a replica (default 3); negative disables quarantine.
	FailureThreshold int
	// ProbeInterval is how often a quarantined replica is probed
	// (default 100ms).
	ProbeInterval time.Duration
	// ProbeSuccesses is the consecutive probe passes that restore a
	// quarantined replica (default 2).
	ProbeSuccesses int
	// ProbeTimeout bounds one probe run (default QueryTimeout, or
	// 250ms when no query timeout is configured).
	ProbeTimeout time.Duration
}

// DefaultHealthPolicy returns the defaults quarantine operates under.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{FailureThreshold: 3, ProbeInterval: 100 * time.Millisecond, ProbeSuccesses: 2, ProbeTimeout: 250 * time.Millisecond}
}

func (p HealthPolicy) normalized(queryTimeout time.Duration) HealthPolicy {
	d := DefaultHealthPolicy()
	if p.FailureThreshold == 0 {
		p.FailureThreshold = d.FailureThreshold
	}
	if p.ProbeInterval == 0 {
		p.ProbeInterval = d.ProbeInterval
	}
	if p.ProbeSuccesses == 0 {
		p.ProbeSuccesses = d.ProbeSuccesses
	}
	if p.ProbeTimeout == 0 {
		if queryTimeout > 0 {
			p.ProbeTimeout = queryTimeout
		} else {
			p.ProbeTimeout = d.ProbeTimeout
		}
	}
	return p
}

func (p HealthPolicy) validate() []error {
	var errs []error
	if p.ProbeInterval < 0 {
		errs = append(errs, fmt.Errorf("Health.ProbeInterval must be >= 0, got %v", p.ProbeInterval))
	}
	if p.ProbeSuccesses < 0 {
		errs = append(errs, fmt.Errorf("Health.ProbeSuccesses must be >= 0, got %d", p.ProbeSuccesses))
	}
	if p.ProbeTimeout < 0 {
		errs = append(errs, fmt.Errorf("Health.ProbeTimeout must be >= 0, got %v", p.ProbeTimeout))
	}
	return errs
}

// replicaHealth is one replica's failure-tracking state. The state word
// is atomic so the submit path's shard selection reads it without a
// lock; the counters stay behind the mutex.
type replicaHealth struct {
	state          atomic.Int32 // 0 healthy, 1 quarantined
	mu             sync.Mutex
	consecTimeouts int
	quarantines    uint64
	restores       uint64
}

func (h *replicaHealth) isQuarantined() bool { return h.state.Load() == 1 }

// noteTimeout records one timed-out query on replica rank and
// quarantines it at the failure threshold.
func (e *Engine) noteTimeout(rank int) {
	if e.cfg.Health.FailureThreshold < 0 {
		return
	}
	h := e.health[rank]
	h.mu.Lock()
	h.consecTimeouts++
	n := h.consecTimeouts
	fire := n >= e.cfg.Health.FailureThreshold && h.state.Load() == 0
	if fire {
		h.state.Store(1)
		h.quarantines++
	}
	h.mu.Unlock()
	if fire {
		e.st.quarantine()
		e.emit(rank, perfmon.EvReplicaQuarantined, uint32(n), 0)
		// The quarantined shard's backlog is now steal-only; rouse the
		// healthy replicas to drain it.
		e.wakeAll()
	}
}

// noteSuccess resets replica rank's consecutive-timeout streak.
func (e *Engine) noteSuccess(rank int) {
	h := e.health[rank]
	h.mu.Lock()
	h.consecTimeouts = 0
	h.mu.Unlock()
}

// probeProgram is the health probe: an empty (and therefore read-only,
// instantly valid) program. A wedged replica still wedges on it — the
// whole-run fault decisions fire before the instruction stream — so a
// probe pass means the replica genuinely responds again.
var probeProgram = isa.NewProgram()

// probeQuarantined periodically probes rank's quarantined machine and
// reintegrates it after the policy's consecutive passes. It returns
// false when the engine shut down first.
func (e *Engine) probeQuarantined(rank int, m *machine.Machine) bool {
	hp := e.cfg.Health
	ticker := time.NewTicker(hp.ProbeInterval)
	defer ticker.Stop()
	streak := 0
	for {
		select {
		case <-e.done:
			return false
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), hp.ProbeTimeout)
		_, err := m.RunContext(ctx, probeProgram)
		cancel()
		if err != nil {
			streak = 0
			continue
		}
		if streak++; streak < hp.ProbeSuccesses {
			continue
		}
		h := e.health[rank]
		h.mu.Lock()
		h.consecTimeouts = 0
		h.restores++
		h.state.Store(0)
		h.mu.Unlock()
		e.st.restore()
		e.emit(rank, perfmon.EvReplicaRestored, uint32(streak), 0)
		e.wakeAll()
		return true
	}
}

// wakeAll hands every parked replica a token (e.g. after quarantine
// shifts who must drain which shard).
func (e *Engine) wakeAll() {
	for i := 0; i < cap(e.notify); i++ {
		select {
		case e.notify <- struct{}{}:
		default:
			return
		}
	}
}

// pickShard maps a query onto the shard ring, routing around
// quarantined replicas: the base shard rotates with the attempt number
// so a retry lands on a different replica, and a linear probe finds the
// next healthy owner. With every replica quarantined it falls back to
// the base shard — work stealing and reintegration still drain it.
func (e *Engine) pickShard(h uint64, attempt int) int {
	n := len(e.shards)
	base := int((h + uint64(attempt)) % uint64(n))
	for i := 0; i < n; i++ {
		s := base + i
		if s >= n {
			s -= n
		}
		if !e.health[s].isQuarantined() {
			return s
		}
	}
	return base
}

// healthyReplicas counts replicas currently in the shard ring.
func (e *Engine) healthyReplicas() int {
	n := 0
	for _, h := range e.health {
		if !h.isQuarantined() {
			n++
		}
	}
	return n
}

// ReplicaHealth is one replica's externally visible health state.
type ReplicaHealth struct {
	Rank                int    `json:"rank"`
	State               string `json:"state"` // "healthy" | "quarantined"
	ConsecutiveTimeouts int    `json:"consecutive_timeouts"`
	Quarantines         uint64 `json:"quarantines"`
	Restores            uint64 `json:"restores"`
}

// HealthReport is the engine's serving-capacity summary: "ok" with the
// full ring, "degraded" while quarantined replicas are being routed
// around, "unavailable" with none healthy.
type HealthReport struct {
	Status   string          `json:"status"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// Health snapshots per-replica health state.
func (e *Engine) Health() HealthReport {
	out := HealthReport{Replicas: make([]ReplicaHealth, len(e.health))}
	healthy := 0
	for i, h := range e.health {
		r := ReplicaHealth{Rank: i, State: "healthy"}
		if h.isQuarantined() {
			r.State = "quarantined"
		} else {
			healthy++
		}
		h.mu.Lock()
		r.ConsecutiveTimeouts = h.consecTimeouts
		r.Quarantines = h.quarantines
		r.Restores = h.restores
		h.mu.Unlock()
		out.Replicas[i] = r
	}
	switch {
	case healthy == len(e.health):
		out.Status = "ok"
	case healthy > 0:
		out.Status = "degraded"
	default:
		out.Status = "unavailable"
	}
	return out
}
