package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// heavyQuery is a deliberately long-running read-only query: many
// propagate rounds so a single execution spans a measurable window.
func heavyQuery(concept string, rounds int) string {
	src := "search-node node=" + concept + " marker=c1 value=0\n"
	for i := 0; i < rounds; i++ {
		src += "propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n"
	}
	src += "collect-node marker=c2\n"
	return src
}

// TestResultCacheBitIdentical is the tentpole acceptance check: a
// cache-hit query must return a machine.Result bit-identical — virtual
// time included — to uncached execution of the same program.
func TestResultCacheBitIdentical(t *testing.T) {
	g := fig15KB(t, 1600)
	cached, err := New(g.KB, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	uncached, err := New(g.KB, WithReplicas(2), WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer uncached.Close()

	src := inheritanceQuery(g, queryConcepts(g, 1)[0])
	first, err := cached.SubmitSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cached.SubmitSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if hit != first {
		t.Error("repeat submission did not return the memoized Result object")
	}
	if st := cached.Stats(); st.ResultHits != 1 || st.ResultMisses != 1 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/1", st.ResultHits, st.ResultMisses)
	}

	fresh, err := uncached.SubmitSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Time != fresh.Time {
		t.Errorf("cached virtual time %v != uncached %v", hit.Time, fresh.Time)
	}
	if !reflect.DeepEqual(hit.Collections, fresh.Collections) {
		t.Error("cached collections differ from uncached execution")
	}

	// And both must equal a sequential single-machine run.
	want := sequentialReference(t, uncached, []string{src})
	if hit.Time.String() != want[src].time || !sameNames(hit.Names(0), want[src].names) {
		t.Error("cached result diverged from sequential reference")
	}
}

// TestResultCacheGenerationKey pins the invalidation contract: a result
// memoized under one KB generation can never satisfy a lookup under
// another.
func TestResultCacheGenerationKey(t *testing.T) {
	c := newResultCache(4)
	c.put(42, 1, nil)
	if _, ok := c.get(42, 1); !ok {
		t.Error("same-generation lookup missed")
	}
	if _, ok := c.get(42, 2); ok {
		t.Error("lookup under a newer KB generation hit a stale entry")
	}
	if _, ok := c.get(7, 1); ok {
		t.Error("lookup under a different program hash hit")
	}
}

// TestSingleflightCollapse launches identical concurrent submissions at
// a single-replica engine: they must collapse onto few executions, and
// every caller must receive the identical result.
func TestSingleflightCollapse(t *testing.T) {
	g := fig15KB(t, 800)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	src := heavyQuery(queryConcepts(g, 1)[0], 60)
	const callers = 8
	var (
		start   sync.WaitGroup
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []string
	)
	start.Add(1)
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			res, err := e.SubmitSource(context.Background(), src)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			results = append(results, res.Time.String()+"/"+fmt.Sprint(res.Names(0)))
			mu.Unlock()
		}()
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("collapsed submissions disagreed: %q vs %q", r, results[0])
		}
	}
	st := e.Stats()
	if got := st.Completed + st.ResultHits + st.DedupedQueries; got != callers {
		t.Errorf("completed+hits+deduped = %d, want %d", got, callers)
	}
	if st.Completed == callers {
		t.Error("no submission collapsed: every caller executed")
	}
	if st.ResultHits+st.DedupedQueries == 0 {
		t.Error("neither singleflight nor result cache served any caller")
	}
}

// TestSingleflightLeaderCancelDoesNotPoison cancels the leader of an
// in-flight collapse; the follower must re-run the query under its own
// live context rather than inherit the leader's context error.
func TestSingleflightLeaderCancelDoesNotPoison(t *testing.T) {
	g := fig15KB(t, 800)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	src := heavyQuery(queryConcepts(g, 1)[0], 200)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.SubmitSource(leaderCtx, src)
		leaderDone <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the leader take flight

	followerDone := make(chan error, 1)
	go func() {
		_, err := e.SubmitSource(context.Background(), src)
		followerDone <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelLeader()

	if err := <-leaderDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want nil or context.Canceled", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower with a live context returned %v, want success", err)
	}
}

// TestOverloadShed exercises admission control: both the in-flight
// ceiling and the queue capacity must fail fast with ErrOverloaded, and
// the engine must keep serving once load drains. Programs are compiled
// up front so every timing-sensitive submission is microsecond-scale
// against a replica held busy for ~100ms.
func TestOverloadShed(t *testing.T) {
	g := fig15KB(t, 3200)

	waitFor := func(t *testing.T, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("condition not reached in time")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	concepts := queryConcepts(g, 4)

	t.Run("max-inflight", func(t *testing.T) {
		e, err := New(g.KB, WithReplicas(1), WithMaxInFlight(1), WithResultCache(0))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		heavy, err := e.Compile(heavyQuery(concepts[0], 10000))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := e.Compile(inheritanceQuery(g, concepts[1]))
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = e.Submit(ctx, heavy)
		}()
		waitFor(t, func() bool { return e.Stats().InFlight == 1 })

		if _, err := e.Submit(context.Background(), fast); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit beyond MaxInFlight returned %v, want ErrOverloaded", err)
		}
		if st := e.Stats(); st.Overloaded == 0 {
			t.Error("shed submission not counted in Stats.Overloaded")
		}
		cancel()
		<-done
		waitFor(t, func() bool { return e.Stats().InFlight == 0 })
		if _, err := e.Submit(context.Background(), fast); err != nil {
			t.Fatalf("engine unusable after shedding: %v", err)
		}
	})

	t.Run("queue-cap", func(t *testing.T) {
		e, err := New(g.KB, WithReplicas(1), WithMaxBatch(1), WithQueueCap(1), WithResultCache(0))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		// Result caching is off, so two submissions of the identical heavy
		// program both execute: the first occupies the replica, the second
		// fills the one-slot queue.
		heavy, err := e.Compile(heavyQuery(concepts[0], 10000))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := e.Compile(inheritanceQuery(g, concepts[2]))
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = e.Submit(ctx, heavy)
			}()
			if i == 0 {
				waitFor(t, func() bool {
					st := e.Stats()
					return st.InFlight == 1 && st.QueueDepth == 0
				})
			}
		}
		waitFor(t, func() bool { return e.Stats().QueueDepth == 1 })

		if _, err := e.Submit(context.Background(), fast); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit beyond QueueCap returned %v, want ErrOverloaded", err)
		}
		cancel()
		wg.Wait()
	})
}

// TestWorkStealing funnels every query onto one replica's shard and
// requires the other replica to steal from it.
func TestWorkStealing(t *testing.T) {
	g := fig15KB(t, 800)
	concepts := queryConcepts(g, 24)

	for attempt := 0; ; attempt++ {
		e, err := New(g.KB, WithReplicas(2), WithMaxBatch(1), WithResultCache(0))
		if err != nil {
			t.Fatal(err)
		}

		// Select programs that all hash onto shard 0, so replica 1 can
		// only ever run a query by stealing it.
		srcs := make([]string, 0, 12)
		for _, c := range concepts {
			src := heavyQuery(c, 20)
			prog, err := e.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if prog.Hash()%2 == 0 {
				srcs = append(srcs, src)
			}
		}
		if len(srcs) < 4 {
			t.Fatalf("only %d/%d candidate programs landed on shard 0", len(srcs), len(concepts))
		}

		var wg sync.WaitGroup
		errs := make(chan error, len(srcs))
		for _, src := range srcs {
			wg.Add(1)
			go func(src string) {
				defer wg.Done()
				if _, err := e.SubmitSource(context.Background(), src); err != nil {
					errs <- err
				}
			}(src)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		st := e.Stats()
		e.Close()
		if st.Steals > 0 {
			if st.StolenQueries == 0 {
				t.Error("steals recorded but no stolen queries counted")
			}
			return
		}
		// Scheduling can let replica 0 drain everything before replica 1
		// wakes; retry a bounded number of times before declaring failure.
		if attempt == 4 {
			t.Fatal("no steal observed in 5 attempts despite single-shard load")
		}
	}
}

// TestCompileLRUStorm hammers a 2-entry compile cache from concurrent
// submitters over 4 distinct sources, so evictions race lookups; run
// under -race this is the satellite coverage for the compile LRU, and
// the counters must stay consistent.
func TestCompileLRUStorm(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1), WithCacheCap(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	concepts := queryConcepts(g, 4)
	srcs := make([]string, 4)
	wantHash := make([]uint64, 4)
	for i, c := range concepts {
		srcs[i] = inheritanceQuery(g, c)
		prog, err := e.Compile(srcs[i])
		if err != nil {
			t.Fatal(err)
		}
		wantHash[i] = prog.Hash()
	}

	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Two back-to-back compiles of the same source: the second
				// usually hits, unless a concurrent eviction races it —
				// exactly the interleaving this storm is after.
				k := (w + i) % len(srcs)
				for rep := 0; rep < 2; rep++ {
					prog, err := e.Compile(srcs[k])
					if err != nil {
						errs <- err
						return
					}
					if prog.Hash() != wantHash[k] {
						errs <- fmt.Errorf("source %d compiled to hash %x, want %x", k, prog.Hash(), wantHash[k])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	total := uint64(len(srcs) + workers*iters*2)
	if st.CompileHits+st.CompileMisses != total {
		t.Errorf("hits+misses = %d, want %d", st.CompileHits+st.CompileMisses, total)
	}
	if st.CompileHits == 0 || st.CompileMisses < uint64(len(srcs)) {
		t.Errorf("implausible counters under storm: hits=%d misses=%d", st.CompileHits, st.CompileMisses)
	}
	if n := e.cache.len(); n > 2 {
		t.Errorf("cache resident entries = %d, want <= 2", n)
	}
}
