// Package engine is the query-serving layer over the SNAP-1 array: the
// role the paper's array controller plays for a terminal room full of
// users, grown to a concurrent serving surface.
//
// An Engine owns a pool of machine replicas that share one preprocessed,
// partitioned knowledge base (downloaded once, cloned per replica without
// re-partitioning) and a submit queue of marker-propagation queries. A
// dispatcher batches queued queries onto idle replicas; each query runs
// with fresh marker state and honors its context's cancellation and
// deadline between instructions. The request path is pipelined:
//
//	assembly → rule/program compilation (LRU-cached by content hash)
//	         → execution on a pooled replica → collection
//
// Only read-only programs are accepted: replicas share the downloaded
// network topology, so topology-mutating instructions (CREATE, DELETE,
// SET-COLOR, MARKER-CREATE, MARKER-DELETE, MARKER-SET-COLOR) are refused
// at submit with ErrMutatingProgram.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Sentinel errors of the serving surface.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrMutatingProgram rejects topology-mutating programs; it wraps
	// isa.ErrBadProgram so errors.Is(err, snap1.ErrBadProgram) holds.
	ErrMutatingProgram = fmt.Errorf("%w: engine: topology-mutating instruction in query", isa.ErrBadProgram)
)

// Config parameterizes an Engine. The zero value of any field selects
// its default.
type Config struct {
	// Replicas is the machine-pool size (default 4).
	Replicas int
	// MaxBatch bounds how many queued queries one dispatch round hands
	// to a single replica (default 8).
	MaxBatch int
	// QueueCap is the submit-queue capacity; Submit blocks (honoring
	// its context) when the queue is full (default 256).
	QueueCap int
	// CacheCap is the compile-cache entry bound (default 128).
	CacheCap int
	// Machine configures every replica. Zero value: the paper's
	// 16-cluster evaluation array with the deterministic lockstep
	// execution engine, so identical queries report identical virtual
	// times regardless of which replica serves them.
	Machine machine.Config
	// Monitor, when non-nil, receives engine-level performance events
	// (EvQuerySubmit, EvBatchDispatch, EvQueryDone, EvQueryCancel).
	Monitor *perfmon.Collector
}

// Option refines a Config.
type Option func(*Config)

// WithReplicas sets the machine-pool size.
func WithReplicas(n int) Option { return func(c *Config) { c.Replicas = n } }

// WithMaxBatch bounds the per-dispatch batch size.
func WithMaxBatch(n int) Option { return func(c *Config) { c.MaxBatch = n } }

// WithQueueCap sets the submit-queue capacity.
func WithQueueCap(n int) Option { return func(c *Config) { c.QueueCap = n } }

// WithCacheCap sets the compile-cache entry bound.
func WithCacheCap(n int) Option { return func(c *Config) { c.CacheCap = n } }

// WithMachineConfig replaces the replica configuration wholesale.
func WithMachineConfig(mc machine.Config) Option {
	return func(c *Config) { c.Machine = mc }
}

// WithMachineOptions refines the replica configuration with machine
// options, starting from the engine's default replica configuration.
func WithMachineOptions(opts ...machine.Option) Option {
	return func(c *Config) {
		if c.Machine.Clusters == 0 {
			c.Machine = defaultMachineConfig()
		}
		c.Machine = machine.ApplyOptions(c.Machine, opts...)
	}
}

// WithMonitor attaches a performance-collection board.
func WithMonitor(mon *perfmon.Collector) Option {
	return func(c *Config) { c.Monitor = mon }
}

func defaultMachineConfig() machine.Config {
	mc := machine.PaperConfig()
	mc.Deterministic = true
	return mc
}

// request is one queued query.
type request struct {
	ctx      context.Context
	prog     *isa.Program
	resp     chan response
	enqueued time.Time
}

type response struct {
	res *machine.Result
	err error
}

// Engine is a concurrent query-serving layer over a pool of machine
// replicas sharing one knowledge base. Safe for use from any number of
// goroutines.
type Engine struct {
	cfg Config
	kb  *semnet.KB
	asm *isa.Assembler
	mon *perfmon.Collector

	queue chan *request
	idle  chan *machine.Machine
	rank  map[*machine.Machine]int // replica index, for monitor events

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	cache *lruCache // assembly-source hash -> compiled *isa.Program
	valid sync.Map  // program content hash -> struct{}: validated

	st stats
}

// New builds an engine over kb: the knowledge base is preprocessed,
// partitioned, and downloaded once, then cloned to every pool replica.
// kb must not be mutated for the engine's lifetime.
func New(kb *semnet.KB, opts ...Option) (*Engine, error) {
	cfg := Config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 4
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 128
	}
	if cfg.Machine.Clusters == 0 {
		cfg.Machine = defaultMachineConfig()
	}
	kb.Preprocess()
	if need := (kb.NumNodes() + cfg.Machine.Clusters - 1) / cfg.Machine.Clusters; need > cfg.Machine.NodesPerCluster {
		cfg.Machine.NodesPerCluster = need
	}

	proto, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if err := proto.LoadKB(kb); err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:   cfg,
		kb:    kb,
		asm:   isa.NewAssembler(kb),
		mon:   cfg.Monitor,
		queue: make(chan *request, cfg.QueueCap),
		idle:  make(chan *machine.Machine, cfg.Replicas),
		rank:  make(map[*machine.Machine]int, cfg.Replicas),
		done:  make(chan struct{}),
		cache: newLRUCache(cfg.CacheCap),
	}
	e.st.replicas = cfg.Replicas

	e.rank[proto] = 0
	e.idle <- proto
	for i := 1; i < cfg.Replicas; i++ {
		r, err := proto.Clone()
		if err != nil {
			return nil, err
		}
		e.rank[r] = i
		e.idle <- r
	}

	e.wg.Add(1)
	go e.dispatch()
	return e, nil
}

// KB returns the engine's knowledge base (for name resolution).
func (e *Engine) KB() *semnet.KB { return e.kb }

// Submit enqueues a read-only program and blocks until its result, the
// context's cancellation/deadline, or engine shutdown. Each query runs
// on an idle pool replica with fresh marker state; results are identical
// to a sequential Machine.Run of the same program on a fresh machine.
func (e *Engine) Submit(ctx context.Context, prog *isa.Program) (*machine.Result, error) {
	if prog.Mutating() {
		e.st.reject()
		return nil, ErrMutatingProgram
	}
	h := prog.Hash()
	if _, ok := e.valid.Load(h); !ok {
		if err := prog.Validate(); err != nil {
			e.st.reject()
			return nil, err
		}
		e.valid.Store(h, struct{}{})
	}

	req := &request{ctx: ctx, prog: prog, resp: make(chan response, 1), enqueued: time.Now()}
	select {
	case e.queue <- req:
	case <-ctx.Done():
		e.st.cancel()
		return nil, ctx.Err()
	case <-e.done:
		return nil, ErrClosed
	}
	e.st.submit()
	e.emit(-1, perfmon.EvQuerySubmit, uint32(len(e.queue)), 0)

	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		e.st.cancel()
		return nil, ctx.Err()
	case <-e.done:
		return nil, ErrClosed
	}
}

// SubmitSource assembles SNAP assembly text (resolving names against the
// engine's knowledge base) and submits the program. Compilation is
// memoized in an LRU cache keyed by the source's content hash, so a hot
// query's assembly and rule compilation cost is paid once.
func (e *Engine) SubmitSource(ctx context.Context, src string) (*machine.Result, error) {
	prog, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	return e.Submit(ctx, prog)
}

// Compile assembles src through the engine's LRU compile cache and
// returns the shared compiled program. The returned program must be
// treated as immutable.
func (e *Engine) Compile(src string) (*isa.Program, error) {
	fh := fnv.New64a()
	fh.Write([]byte(src))
	key := fh.Sum64()
	if prog, ok := e.cache.get(key); ok {
		e.st.cacheHit()
		return prog, nil
	}
	start := time.Now()
	prog, err := e.asm.Assemble(strings.NewReader(src))
	if err != nil {
		e.st.reject()
		return nil, err
	}
	e.st.cacheMiss(time.Since(start))
	e.cache.put(key, prog)
	return prog, nil
}

// dispatch is the engine's single dispatcher: it claims an idle replica
// for the oldest queued query, greedily drains up to MaxBatch-1 more
// pending queries into the same dispatch round, and hands the batch to a
// worker goroutine. Batching amortizes replica hand-off and keeps every
// replica busy under load while an idle engine still serves a lone query
// immediately (batch of one).
func (e *Engine) dispatch() {
	defer e.wg.Done()
	for {
		var first *request
		select {
		case <-e.done:
			return
		case first = <-e.queue:
		}
		var m *machine.Machine
		select {
		case <-e.done:
			first.resp <- response{err: ErrClosed}
			return
		case m = <-e.idle:
		}
		batch := []*request{first}
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r := <-e.queue:
				batch = append(batch, r)
			default:
				goto full
			}
		}
	full:
		e.st.batch(len(batch))
		e.emit(e.rank[m], perfmon.EvBatchDispatch, uint32(len(batch)), 0)
		e.wg.Add(1)
		go e.runBatch(m, batch)
	}
}

// runBatch serves one dispatch round on one replica and returns the
// replica to the idle pool.
func (e *Engine) runBatch(m *machine.Machine, batch []*request) {
	defer e.wg.Done()
	rank := e.rank[m]
	for _, req := range batch {
		e.st.queueWait(time.Since(req.enqueued))
		if err := req.ctx.Err(); err != nil {
			e.st.cancel()
			e.emit(rank, perfmon.EvQueryCancel, uint32(len(e.queue)), 0)
			req.resp <- response{err: err}
			continue
		}
		m.ClearMarkers()
		start := time.Now()
		res, err := m.RunContext(req.ctx, req.prog)
		e.st.run(time.Since(start), err)
		switch {
		case err == nil:
			e.emit(rank, perfmon.EvQueryDone, uint32(res.Time), res.Time)
		case req.ctx.Err() != nil:
			e.emit(rank, perfmon.EvQueryCancel, uint32(len(e.queue)), 0)
		}
		req.resp <- response{res: res, err: err}
	}
	e.idle <- m
}

// emit forwards an engine-level event to the monitor, if attached, and
// counts it for Stats. pe -1 means "not yet on a replica"; now is the
// query's virtual time where one exists, else 0.
func (e *Engine) emit(pe int, code perfmon.EventCode, status uint32, now timing.Time) {
	e.st.event(code)
	if e.mon != nil {
		e.mon.Emit(pe, code, status, now)
	}
}

// Close stops the dispatcher, waits for in-flight batches, and releases
// the pool, including each replica's persistent propagation workers.
// Queued but undispatched queries fail with ErrClosed.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
	// Every replica is back in the idle channel once the dispatcher and
	// all batch workers have exited; retire their host resources.
	for {
		select {
		case m := <-e.idle:
			m.Close()
		default:
			return
		}
	}
}

// Stats returns a snapshot of the engine's serving counters.
func (e *Engine) Stats() Stats {
	return e.st.snapshot(len(e.queue), len(e.idle))
}
