// Package engine is the query-serving layer over the SNAP-1 array: the
// role the paper's array controller plays for a terminal room full of
// users, grown to a concurrent serving surface.
//
// An Engine owns a pool of machine replicas that share one preprocessed,
// partitioned knowledge base (downloaded once, then cloned per replica —
// concurrently, over shared-immutable topology tables — without
// re-partitioning). Each replica owns a private run-queue shard: Submit
// hashes the query onto a shard, the shard's owner drains it in batches,
// and idle replicas steal batches from loaded shards, so there is no
// central dispatcher lock between submitters and replicas. Each query
// runs with fresh marker state and honors its context's cancellation and
// deadline between instructions. The request path is pipelined:
//
//	assembly → rule/program compilation (LRU-cached by content hash)
//	         → result cache (by Program.Hash + KB generation)
//	         → singleflight (identical in-flight queries collapse)
//	         → program optimization (isa.Optimize, cached by content hash)
//	         → execution on a pooled replica → collection
//
// Admission control sheds load instead of queueing without bound: a
// full submit queue (QueueCap) or a reached in-flight ceiling
// (MaxInFlight) fails fast with ErrOverloaded.
//
// Submit accepts only read-only programs: replicas share the downloaded
// network topology, so topology-mutating instructions (CREATE, DELETE,
// SET-COLOR, MARKER-CREATE, MARKER-DELETE, MARKER-SET-COLOR) are refused
// at submit with ErrMutatingProgram.
//
// With Config.Writes enabled, mutating programs go through SubmitWrite
// instead: they execute serialized on a dedicated writer machine over
// the master KB and publish epoch-style (writer.go) — the KB generation
// bump retires result-cache entries, and each replica patches itself
// forward by replaying the KB's topology delta log at its next batch
// boundary, so reads never block on writes and no global pause exists.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Sentinel errors of the serving surface.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrOverloaded is returned when admission control sheds a query:
	// the submit queue is full (QueueCap) or the in-flight ceiling
	// (MaxInFlight) is reached. Retry after backoff; the HTTP surface
	// maps it to 503 with a Retry-After header.
	ErrOverloaded = errors.New("engine: overloaded")
	// ErrMutatingProgram rejects topology-mutating programs; it wraps
	// isa.ErrBadProgram so errors.Is(err, snap1.ErrBadProgram) holds.
	ErrMutatingProgram = fmt.Errorf("%w: engine: topology-mutating instruction in query", isa.ErrBadProgram)
)

// Config parameterizes an Engine. The zero value of any field selects
// its default.
type Config struct {
	// Replicas is the machine-pool size; one run-queue shard and one
	// serving goroutine per replica (default 4).
	Replicas int
	// MaxBatch bounds how many queued queries one replica drains (or
	// steals) per serving round (default 8).
	MaxBatch int
	// QueueCap bounds the queries queued across all shards; Submit
	// fails fast with ErrOverloaded when it is reached (default 256).
	QueueCap int
	// CacheCap is the compile-cache entry bound (default 128).
	CacheCap int
	// ResultCacheCap bounds the query result cache (default 1024).
	// Negative disables result caching and singleflight deduplication.
	// The cache only operates on deterministic replica configurations,
	// where a memoized Result (virtual time included) is bit-identical
	// to recomputation.
	ResultCacheCap int
	// MaxInFlight caps admitted-but-unfinished queries (queued plus
	// executing); submissions beyond it fail fast with ErrOverloaded.
	// 0 means no ceiling beyond QueueCap.
	MaxInFlight int
	// Machine configures every replica. Zero value: the paper's
	// 16-cluster evaluation array with the deterministic lockstep
	// execution engine, so identical queries report identical virtual
	// times regardless of which replica serves them.
	Machine machine.Config
	// Monitor, when non-nil, receives engine-level performance events
	// (EvQuerySubmit, EvBatchDispatch, EvQueryDone, EvQueryCancel,
	// EvWorkSteal, EvQueryShed, EvResultHit, and the resilience events
	// EvFaultInjected, EvReplicaQuarantined, EvQueryRetried,
	// EvReplicaRestored).
	Monitor *perfmon.Collector
	// QueryTimeout bounds each execution attempt (queue residency plus
	// the run). An attempt that exceeds it fails with
	// context.DeadlineExceeded, feeds replica health tracking, and is
	// retried under Retry while the caller's context allows. 0 disables
	// per-attempt deadlines.
	QueryTimeout time.Duration
	// Retry bounds re-execution of retryable failures: runs poisoned by
	// injected faults and per-attempt timeouts (see RetryPolicy).
	Retry RetryPolicy
	// Health governs replica quarantine and reintegration (see
	// HealthPolicy).
	Health HealthPolicy
	// FaultPlan, when non-nil, arms deterministic fault injection on
	// every replica, seeded per replica rank (soak testing).
	FaultPlan *fault.Plan
	// Fusion bounds how many mutually independent queries one serving
	// round may coalesce into a single fused machine run (marker-plane
	// query fusion). 0 selects the default (8); 1 or negative disables
	// fusion. Fusion is forced off while FaultPlan is armed: retry and
	// quarantine accounting are per-query, and a fused run would
	// spread one injected fault across unrelated queries.
	Fusion int
	// OptLevel selects the compile-tier program optimizer level applied
	// to every admitted query (isa.Optimize): 0 selects the default
	// (isa.OptFull), negative disables optimization, and OptBasic/OptFull
	// select the pass set explicitly. Optimization products are cached by
	// program content hash, so a hot query is rewritten once. The engine
	// optimizes under the serving profile (final marker state is not
	// observable across queries), which collections are immune to:
	// optimized results are bit-identical to the unoptimized program's,
	// while virtual times may only improve. An optimized run that trips
	// the machine's runtime origin-ambiguity backstop transparently
	// re-runs the unoptimized program (counted in Stats.OptFallbacks).
	OptLevel int
	// Writes enables the online mutation pipeline: SubmitWrite accepts
	// topology-mutating programs, executed serialized on a dedicated
	// writer machine and published epoch-style; replicas follow by
	// incremental delta replay (writer.go). Off by default — a
	// write-disabled engine serves a truly immutable snapshot.
	Writes bool
	// WriteQueueCap bounds writes queued for the serialized writer;
	// SubmitWrite beyond it fails fast with ErrOverloaded (default 64).
	WriteQueueCap int
	// WriteBatch bounds how many adjacent queued writes the writer
	// folds into one group commit — one epoch publish, one delta sync
	// per replica — amortizing publish cost under write bursts
	// (default 8).
	WriteBatch int
}

// Validate reports every invalid field of the configuration in one
// wrapped error (errors.Join) rather than stopping at the first, so a
// misconfigured caller learns all problems at once. Zero values are
// valid — they select defaults.
func (c Config) Validate() error {
	var errs []error
	nonNeg := func(name string, v int) {
		if v < 0 {
			errs = append(errs, fmt.Errorf("%s must be >= 0, got %d", name, v))
		}
	}
	nonNeg("Replicas", c.Replicas)
	nonNeg("MaxBatch", c.MaxBatch)
	nonNeg("QueueCap", c.QueueCap)
	nonNeg("CacheCap", c.CacheCap)
	nonNeg("MaxInFlight", c.MaxInFlight)
	nonNeg("WriteQueueCap", c.WriteQueueCap)
	nonNeg("WriteBatch", c.WriteBatch)
	if c.QueryTimeout < 0 {
		errs = append(errs, fmt.Errorf("QueryTimeout must be >= 0, got %v", c.QueryTimeout))
	}
	if c.OptLevel > isa.OptFull {
		errs = append(errs, fmt.Errorf("OptLevel must be <= %d (isa.OptFull), got %d", isa.OptFull, c.OptLevel))
	}
	errs = append(errs, c.Retry.validate()...)
	errs = append(errs, c.Health.validate()...)
	if c.Machine.Clusters != 0 {
		if err := c.Machine.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if c.FaultPlan != nil {
		if err := c.FaultPlan.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("engine: invalid configuration: %w", errors.Join(errs...))
}

// Option refines a Config.
type Option func(*Config)

// WithReplicas sets the machine-pool size.
func WithReplicas(n int) Option { return func(c *Config) { c.Replicas = n } }

// WithMaxBatch bounds the per-round batch size.
func WithMaxBatch(n int) Option { return func(c *Config) { c.MaxBatch = n } }

// WithQueueCap sets the submit-queue capacity.
func WithQueueCap(n int) Option { return func(c *Config) { c.QueueCap = n } }

// WithCacheCap sets the compile-cache entry bound.
func WithCacheCap(n int) Option { return func(c *Config) { c.CacheCap = n } }

// WithResultCache sets the query-result-cache entry bound; n <= 0
// disables result caching and singleflight deduplication.
func WithResultCache(n int) Option {
	return func(c *Config) {
		if n <= 0 {
			c.ResultCacheCap = -1
		} else {
			c.ResultCacheCap = n
		}
	}
}

// WithMaxInFlight caps admitted-but-unfinished queries; 0 removes the
// ceiling.
func WithMaxInFlight(n int) Option { return func(c *Config) { c.MaxInFlight = n } }

// WithMachineConfig replaces the replica configuration wholesale.
func WithMachineConfig(mc machine.Config) Option {
	return func(c *Config) { c.Machine = mc }
}

// WithMachineOptions refines the replica configuration with machine
// options, starting from the engine's default replica configuration.
func WithMachineOptions(opts ...machine.Option) Option {
	return func(c *Config) {
		if c.Machine.Clusters == 0 {
			c.Machine = defaultMachineConfig()
		}
		c.Machine = machine.ApplyOptions(c.Machine, opts...)
	}
}

// WithMonitor attaches a performance-collection board.
func WithMonitor(mon *perfmon.Collector) Option {
	return func(c *Config) { c.Monitor = mon }
}

// WithQueryTimeout bounds each execution attempt; 0 disables
// per-attempt deadlines.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *Config) { c.QueryTimeout = d }
}

// WithRetryPolicy sets the retry budget for retryable query failures.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Config) { c.Retry = p }
}

// WithHealthPolicy sets the replica quarantine/reintegration policy.
func WithHealthPolicy(p HealthPolicy) Option {
	return func(c *Config) { c.Health = p }
}

// WithFaultPlan arms deterministic fault injection on every replica.
func WithFaultPlan(p *fault.Plan) Option {
	return func(c *Config) { c.FaultPlan = p }
}

// WithFusion bounds queries coalesced per fused run; n <= 1 disables
// query fusion.
func WithFusion(n int) Option {
	return func(c *Config) {
		if n <= 1 {
			c.Fusion = -1
		} else {
			c.Fusion = n
		}
	}
}

// WithOptLevel sets the compile-tier optimizer level applied to every
// admitted query: isa.OptBasic (folding and dead-plane elimination) or
// isa.OptFull (adds marker-plane renaming and overlap scheduling, the
// default); n <= 0 disables optimization and queries run as written.
func WithOptLevel(n int) Option {
	return func(c *Config) {
		if n <= 0 {
			c.OptLevel = -1
		} else {
			c.OptLevel = n
		}
	}
}

// WithWrites enables (or disables) the online mutation pipeline:
// SubmitWrite and POST /v1/mutate.
func WithWrites(on bool) Option { return func(c *Config) { c.Writes = on } }

func defaultMachineConfig() machine.Config {
	mc := machine.PaperConfig()
	mc.Deterministic = true
	return mc
}

// request is one queued query.
type request struct {
	ctx      context.Context
	prog     *isa.Program
	opt      *isa.Optimized // optimization product; nil when disabled
	hash     uint64
	gen      uint64 // KB generation at admission; fusion groups within one
	resp     chan response
	enqueued time.Time
}

// runProg is the program the replica should execute: the optimizer's
// rewrite when one exists and actually changed something, else the
// program as submitted.
func (r *request) runProg() *isa.Program {
	if r.opt != nil && r.opt.Changed() {
		return r.opt.Program
	}
	return r.prog
}

type response struct {
	res *machine.Result
	err error
}

// Engine is a concurrent query-serving layer over a pool of machine
// replicas sharing one knowledge base. Safe for use from any number of
// goroutines.
type Engine struct {
	cfg   Config
	kb    *semnet.KB
	kbGen uint64 // KB generation at bring-up; result-cache key half
	asm   *isa.Assembler
	mon   *perfmon.Collector

	machines []*machine.Machine // index = replica rank = shard owner
	shards   []*shard
	health   []*replicaHealth // index = replica rank
	notify   chan struct{}    // wake tokens for parked replicas
	start    time.Time        // bring-up instant; drain-rate baseline

	queued   atomic.Int64 // requests resident in shards
	inflight atomic.Int64 // admitted and not yet answered
	busy     atomic.Int64 // replicas currently serving a batch

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	cache   *lruCache[uint64, *isa.Program]   // assembly-source hash -> program
	valid   sync.Map                          // program content hash -> struct{}: validated
	opts    *lruCache[uint64, *isa.Optimized] // program content hash -> optimization product
	results *resultCache                      // nil when disabled
	flights *flightGroup                      // nil when results is nil

	// Write path (nil/zero unless Config.Writes; see writer.go). pubGen
	// is the published KB generation — the epoch every new read
	// observes; writeMu serializes writer execution against full-reload
	// replica recovery, the one path that must see a quiescent KB.
	writer  *machine.Machine
	writeQ  chan *writeReq
	writeMu sync.Mutex
	pubGen  atomic.Uint64

	st stats
}

// New builds an engine over kb: the knowledge base is preprocessed,
// partitioned, and downloaded once into a prototype machine, which is
// then cloned to the remaining pool replicas concurrently (bounded by
// GOMAXPROCS) over shared-immutable topology tables. kb must not be
// mutated externally for the engine's lifetime: without Config.Writes
// it is a frozen snapshot, with it the engine's serialized writer is
// the only legal mutator.
func New(kb *semnet.KB, opts ...Option) (*Engine, error) {
	cfg := Config{}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 4
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 128
	}
	if cfg.ResultCacheCap == 0 {
		cfg.ResultCacheCap = 1024
	}
	if cfg.Fusion == 0 {
		cfg.Fusion = 8
	}
	if cfg.FaultPlan != nil {
		cfg.Fusion = 1
	}
	if cfg.OptLevel == 0 {
		cfg.OptLevel = isa.OptFull
	}
	if cfg.WriteQueueCap <= 0 {
		cfg.WriteQueueCap = 64
	}
	if cfg.WriteBatch <= 0 {
		cfg.WriteBatch = 8
	}
	if cfg.Machine.Clusters == 0 {
		cfg.Machine = defaultMachineConfig()
	}
	cfg.Retry = cfg.Retry.normalized()
	cfg.Health = cfg.Health.normalized(cfg.QueryTimeout)
	if cfg.Writes {
		// Start recording mutations before anything loads, so every
		// replica's bring-up generation is above the log's floor.
		kb.EnableDeltaLog(0)
	}
	kb.Preprocess()
	if need := (kb.NumNodes() + cfg.Machine.Clusters - 1) / cfg.Machine.Clusters; need > cfg.Machine.NodesPerCluster {
		cfg.Machine.NodesPerCluster = need
	}

	proto, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if err := proto.LoadKB(kb); err != nil {
		return nil, err
	}
	machines, err := clonePool(proto, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.FaultPlan != nil {
		for rank, m := range machines {
			m.SetFaultInjector(cfg.FaultPlan.Injector(rank))
		}
	}

	e := &Engine{
		cfg:      cfg,
		kb:       kb,
		kbGen:    kb.Generation(),
		asm:      isa.NewAssembler(kb),
		mon:      cfg.Monitor,
		machines: machines,
		shards:   make([]*shard, cfg.Replicas),
		health:   make([]*replicaHealth, cfg.Replicas),
		notify:   make(chan struct{}, cfg.Replicas),
		start:    time.Now(),
		done:     make(chan struct{}),
		cache:    newLRUCache[uint64, *isa.Program](cfg.CacheCap),
		opts:     newLRUCache[uint64, *isa.Optimized](cfg.CacheCap),
	}
	if cfg.ResultCacheCap > 0 && cfg.Machine.Deterministic {
		e.results = newResultCache(cfg.ResultCacheCap)
		e.flights = newFlightGroup()
	}
	for i := range e.shards {
		e.shards[i] = &shard{}
		e.health[i] = &replicaHealth{}
	}
	e.st.replicas = cfg.Replicas
	e.pubGen.Store(e.kbGen)

	if cfg.Writes {
		// The dedicated writer is one more topology-sharing clone; it
		// stays out of the serving ring and never arms fault injection,
		// so the master KB's mutation history is exactly the committed
		// write sequence.
		w, err := proto.Clone()
		if err != nil {
			for _, m := range machines {
				m.Close()
			}
			return nil, err
		}
		e.writer = w
		e.writeQ = make(chan *writeReq, cfg.WriteQueueCap)
		e.wg.Add(1)
		go e.writeLoop()
	}

	e.wg.Add(cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		go e.serve(i)
	}
	return e, nil
}

// clonePool stamps out the replica pool from the loaded prototype. The
// prototype itself serves as replica 0; clones are brought up
// concurrently, bounded by GOMAXPROCS, since a shared-topology clone is
// dominated by marker-state allocation, which parallelizes cleanly.
func clonePool(proto *machine.Machine, replicas int) ([]*machine.Machine, error) {
	machines := make([]*machine.Machine, replicas)
	machines[0] = proto
	if replicas == 1 {
		return machines, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > replicas-1 {
		workers = replicas - 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, workers)
	for i := 1; i < replicas; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := proto.Clone()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			machines[i] = r
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		for _, m := range machines {
			if m != nil {
				m.Close()
			}
		}
		return nil, firstErr
	}
	return machines, nil
}

// KB returns the engine's knowledge base (for name resolution).
func (e *Engine) KB() *semnet.KB { return e.kb }

// readGen is the KB generation a newly admitted read observes. With
// writes enabled this is the published epoch — the master KB may
// already be ahead inside an uncommitted write group — otherwise the
// KB's own (static) generation.
func (e *Engine) readGen() uint64 {
	if e.writeQ != nil {
		return e.pubGen.Load()
	}
	return e.kb.Generation()
}

// Submit enqueues a read-only program and blocks until its result, the
// context's cancellation/deadline, or engine shutdown. Each query runs
// on a pool replica with fresh marker state; collections are identical
// to a sequential Machine.Run of the same program on a fresh machine.
// The reported virtual time is that of the engine's optimized rewrite
// of the program (Config.OptLevel; run as written under WithOptLevel(0),
// where the time too matches the sequential run) — unless the serving
// round coalesced the query into a fused multi-query run
// (Config.Fusion): a fused member's Result carries the fused run's end
// time and is marked Fused. With
// result caching active (the default on deterministic pools), a repeat
// of a completed query returns the memoized Result — bit-identical,
// virtual time included — and concurrent identical submissions collapse
// onto one execution. The returned Result is shared and must be treated
// as immutable.
func (e *Engine) Submit(ctx context.Context, prog *isa.Program) (*machine.Result, error) {
	if prog.Mutating() {
		e.st.reject()
		return nil, ErrMutatingProgram
	}
	h := prog.Hash()
	if _, ok := e.valid.Load(h); !ok {
		if err := prog.Validate(); err != nil {
			e.st.reject()
			return nil, err
		}
		e.valid.Store(h, struct{}{})
	}
	if e.results == nil {
		return e.executeRetry(ctx, prog, h)
	}

	gen := e.readGen()
	if res, ok := e.results.get(h, gen); ok {
		e.st.resultHit()
		e.emit(-1, perfmon.EvResultHit, uint32(res.Time), res.Time)
		return res, nil
	}
	e.st.resultMiss()
	for {
		f, leader := e.flights.join(h)
		if leader {
			res, err := e.executeRetry(ctx, prog, h)
			if err == nil && !res.Fused {
				// A fused result reports the fused run's end time, not
				// the solo-reproducible time the cache's bit-identity
				// contract promises — serve it, but don't memoize it.
				// The entry is keyed by the generation the run actually
				// observed (under write churn the serving replica may
				// have synced past the admission epoch).
				e.results.put(h, res.KBGen, res)
			}
			e.flights.finish(h, f, res, err)
			return res, err
		}
		e.st.dedup()
		select {
		case <-f.done:
			if f.err != nil && retryable(f.err) {
				// The leader's own context expired; this caller's query
				// is still live — run the flight again.
				continue
			}
			if f.err == nil && f.res.KBGen < gen {
				// The leader ran against an epoch older than the one
				// this caller was admitted under (a write published in
				// between): its result would violate monotonic reads
				// for this caller — execute afresh.
				continue
			}
			return f.res, f.err
		case <-ctx.Done():
			e.st.cancel()
			return nil, ctx.Err()
		case <-e.done:
			return nil, ErrClosed
		}
	}
}

// execute admits a validated (and already optimized) query, enqueues
// it on its hash shard (rotated by the attempt number, skipping
// quarantined replicas), and waits for the serving replica's response.
func (e *Engine) execute(ctx context.Context, prog *isa.Program, opt *isa.Optimized, h uint64, attempt int) (*machine.Result, error) {
	select {
	case <-e.done:
		return nil, ErrClosed
	default:
	}
	if n := e.queued.Add(1); int(n) > e.cfg.QueueCap {
		e.queued.Add(-1)
		return nil, e.shed()
	}
	if e.cfg.MaxInFlight > 0 {
		if n := e.inflight.Add(1); int(n) > e.cfg.MaxInFlight {
			e.inflight.Add(-1)
			e.queued.Add(-1)
			return nil, e.shed()
		}
	} else {
		e.inflight.Add(1)
	}
	defer e.inflight.Add(-1)

	req := &request{
		ctx: ctx, prog: prog, opt: opt, hash: h, gen: e.readGen(),
		resp: make(chan response, 1), enqueued: time.Now(),
	}
	depth := e.shards[e.pickShard(h, attempt)].push(req)
	e.st.submit()
	e.emit(-1, perfmon.EvQuerySubmit, uint32(depth), 0)
	e.wake()

	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		e.st.cancel()
		return nil, ctx.Err()
	case <-e.done:
		return nil, ErrClosed
	}
}

// optimize runs the compile-tier optimizer over a validated program,
// memoized by content hash so a hot query is rewritten once. The engine
// optimizes for the serving profile: replicas clear marker state between
// queries, so only collections are observable and end-of-program marker
// writes are dead. Returns nil when optimization is disabled.
func (e *Engine) optimize(prog *isa.Program, h uint64) *isa.Optimized {
	if e.cfg.OptLevel <= isa.OptNone {
		return nil
	}
	if v, ok := e.opts.get(h); ok {
		return v
	}
	opt := isa.Optimize(prog, isa.OptConfig{Level: e.cfg.OptLevel})
	if v, loaded := e.opts.getOrPut(h, opt); loaded {
		return v
	}
	if opt.Changed() {
		e.st.optimized(opt.InstrsEliminated, opt.PlanesFreed)
		e.emit(-1, perfmon.EvProgramOptimized, uint32(opt.InstrsEliminated), 0)
	}
	return opt
}

// shed records an admission rejection and returns ErrOverloaded.
func (e *Engine) shed() error {
	e.st.shed()
	e.emit(-1, perfmon.EvQueryShed, uint32(e.inflight.Load()), 0)
	return ErrOverloaded
}

// wake hands a parked replica a token. The channel holds one token per
// replica, so a dropped send means every replica already has a pending
// wakeup; each woken replica rescans all shards (own queue, then steal)
// before parking again, so no queued request can be stranded.
func (e *Engine) wake() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// SubmitSource assembles SNAP assembly text (resolving names against the
// engine's knowledge base) and submits the program. Compilation is
// memoized in an LRU cache keyed by the source's content hash, so a hot
// query's assembly and rule compilation cost is paid once.
func (e *Engine) SubmitSource(ctx context.Context, src string) (*machine.Result, error) {
	prog, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	return e.Submit(ctx, prog)
}

// Compile assembles src through the engine's LRU compile cache and
// returns the shared compiled program. The returned program must be
// treated as immutable.
func (e *Engine) Compile(src string) (*isa.Program, error) {
	fh := fnv.New64a()
	fh.Write([]byte(src))
	key := fh.Sum64()
	if prog, ok := e.cache.get(key); ok {
		e.st.cacheHit()
		return prog, nil
	}
	start := time.Now()
	prog, err := e.asm.Assemble(strings.NewReader(src))
	if err != nil {
		e.st.reject()
		return nil, err
	}
	e.st.cacheMiss(time.Since(start))
	e.cache.put(key, prog)
	return prog, nil
}

// serve is replica rank's owner loop: drain the replica's own shard in
// MaxBatch rounds; when it is empty, steal a batch from the deepest
// other shard; when every shard is empty, park until a submission's
// wake token (or shutdown). There is no central dispatcher — under load
// each replica cycles on its own queue's lock, and the work-stealing
// scan only runs on the idle path.
func (e *Engine) serve(rank int) {
	defer e.wg.Done()
	m := e.machines[rank]
	own := e.shards[rank]
	batch := make([]*request, 0, e.cfg.MaxBatch)
	for {
		if e.health[rank].isQuarantined() {
			// Out of the ring: probe until healthy (or shutdown). The
			// shard's backlog is drained by the healthy replicas' steals.
			if !e.probeQuarantined(rank, m) {
				return
			}
			continue
		}
		batch = own.popN(e.cfg.MaxBatch, batch[:0])
		if len(batch) == 0 {
			batch = e.steal(rank, batch)
			if len(batch) > 0 {
				e.st.steal(len(batch))
				e.emit(rank, perfmon.EvWorkSteal, uint32(len(batch)), 0)
			}
		}
		if len(batch) == 0 {
			select {
			case <-e.notify:
				continue
			case <-e.done:
				return
			}
		}
		e.queued.Add(-int64(len(batch)))
		e.st.batch(len(batch))
		e.emit(rank, perfmon.EvBatchDispatch, uint32(len(batch)), 0)
		e.busy.Add(1)
		e.syncReplica(rank, m)
		e.runBatch(rank, m, batch)
		e.busy.Add(-1)
	}
}

// runBatch serves one round of queries back-to-back on one replica.
// Rounds with more than one mutually fusable query are coalesced into
// fused runs (see fusion.go); everything else runs solo.
func (e *Engine) runBatch(rank int, m *machine.Machine, batch []*request) {
	for len(batch) > 0 {
		group := e.fusionGroup(&batch)
		if len(group) > 1 && e.runFused(rank, m, group) {
			continue
		}
		for _, req := range group {
			e.runOne(rank, m, req)
		}
	}
}

// runOne serves a single query on the replica.
func (e *Engine) runOne(rank int, m *machine.Machine, req *request) {
	e.st.queueWait(time.Since(req.enqueued))
	if err := req.ctx.Err(); err != nil {
		e.st.cancel()
		e.emit(rank, perfmon.EvQueryCancel, uint32(e.queued.Load()), 0)
		req.resp <- response{err: err}
		return
	}
	m.ClearMarkers()
	start := time.Now()
	var res *machine.Result
	var err error
	if opt := req.opt; opt != nil && opt.Changed() {
		// Strict mode: the machine's origin-tie detector backstops the
		// optimizer's equivalence argument. A detected tie discards the
		// optimized run and re-runs the program as submitted.
		res, err = m.RunOptimized(req.ctx, opt.Program)
		if errors.Is(err, machine.ErrOptAmbiguous) {
			e.st.optFallback()
			m.ClearMarkers()
			res, err = m.RunContext(req.ctx, req.prog)
		} else if err == nil {
			res.RemapInstrs(opt.OrigIndex)
		}
	} else {
		res, err = m.RunContext(req.ctx, req.prog)
	}
	e.st.run(time.Since(start), err)
	switch {
	case err == nil:
		e.noteSuccess(rank)
		if p := res.Profile; p != nil {
			e.st.icn(p.PropMessages, p.PropHops, p.SendBursts)
		}
		e.emit(rank, perfmon.EvQueryDone, uint32(res.Time), res.Time)
	case errors.Is(err, context.DeadlineExceeded):
		// A deadline blown on this replica — possibly a wedged or
		// crawling array — counts toward its quarantine threshold.
		e.noteTimeout(rank)
		e.emit(rank, perfmon.EvQueryCancel, uint32(e.queued.Load()), 0)
	case req.ctx.Err() != nil:
		e.emit(rank, perfmon.EvQueryCancel, uint32(e.queued.Load()), 0)
	}
	req.resp <- response{res: res, err: err}
}

// emit forwards an engine-level event to the monitor, if attached, and
// counts it for Stats. pe -1 means "not yet on a replica"; now is the
// query's virtual time where one exists, else 0.
func (e *Engine) emit(pe int, code perfmon.EventCode, status uint32, now timing.Time) {
	e.st.event(code)
	if e.mon != nil {
		e.mon.Emit(pe, code, status, now)
	}
}

// Close stops the serving replicas and the writer, waits for in-flight
// batches, fails queued but unserved queries and writes with ErrClosed,
// and releases the pool, including each replica's persistent propagation
// workers.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
	for _, s := range e.shards {
		for _, req := range s.popN(int(^uint(0)>>1), nil) {
			e.queued.Add(-1)
			req.resp <- response{err: ErrClosed}
		}
	}
	if e.writeQ != nil {
		for {
			select {
			case w := <-e.writeQ:
				w.resp <- writeResp{err: ErrClosed}
				continue
			default:
			}
			break
		}
	}
	for _, m := range e.machines {
		m.Close()
	}
	if e.writer != nil {
		e.writer.Close()
	}
}

// Stats returns a snapshot of the engine's serving counters.
func (e *Engine) Stats() Stats {
	depth := 0
	for _, s := range e.shards {
		depth += s.depth()
	}
	idle := e.cfg.Replicas - int(e.busy.Load())
	resultEntries := 0
	if e.results != nil {
		resultEntries = e.results.len()
	}
	return e.st.snapshot(depth, idle, int(e.inflight.Load()), resultEntries,
		e.healthyReplicas(), e.opts.evictions(), e.readGen())
}
