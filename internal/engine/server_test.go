package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
)

func newTestServer(t *testing.T, nodes int) (*kbgen.Generated, *httptest.Server) {
	t.Helper()
	g := fig15KB(t, nodes)
	e, err := New(g.KB,
		WithReplicas(2),
		WithMonitor(perfmon.NewCollector(1024)))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return g, srv
}

func postQuery(t *testing.T, url, program string) QueryResponse {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Program: program})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("query status %d: %s: %s", resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerQueryAndStats exercises the full HTTP path: concurrent
// queries, then a stats snapshot that must report non-zero batch counts.
func TestServerQueryAndStats(t *testing.T) {
	g, srv := newTestServer(t, 800)
	concepts := queryConcepts(g, 8)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := postQuery(t, srv.URL, inheritanceQuery(g, concepts[w%len(concepts)]))
			if len(out.Collections) != 1 {
				t.Errorf("worker %d: %d collections, want 1", w, len(out.Collections))
				return
			}
			// Every leaf's is-a ancestry must include the hierarchy root.
			found := false
			for _, it := range out.Collections[0].Items {
				if it.Node == "thing" {
					found = true
				}
			}
			if !found {
				t.Errorf("worker %d: root missing from ancestry %v", w, out.Collections[0].Items)
			}
		}(w)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Batches == 0 {
		t.Error("stats report zero batches")
	}
	if st.Stats.Completed != 8 {
		t.Errorf("completed = %d, want 8", st.Stats.Completed)
	}
	if st.Stats.Run.Count == 0 {
		t.Error("run latency histogram empty")
	}
	if st.Monitor == nil {
		t.Error("monitor stats missing")
	}
	if st.Stats.Events["batch-dispatch"] == 0 {
		t.Error("no batch-dispatch events recorded")
	}
}

// TestServerRejectsBadProgram maps assembly errors to 400.
func TestServerRejectsBadProgram(t *testing.T) {
	_, srv := newTestServer(t, 400)
	resp, err := http.Post(srv.URL+"/v1/query", "text/plain",
		strings.NewReader("frobnicate node=thing"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad program status = %d, want 400", resp.StatusCode)
	}
}

// TestErrorEnvelopeGolden pins the wire format of the versioned error
// envelope byte-for-byte: key set, key order, and field types must not
// drift, because clients branch on code/retryable rather than message.
func TestErrorEnvelopeGolden(t *testing.T) {
	rec := httptest.NewRecorder()
	writeErrorCode(rec, http.StatusBadRequest, "bad_program", false, errors.New("boom"))
	const want = `{"error":{"code":"bad_program","message":"boom","retryable":false}}` + "\n"
	if got := rec.Body.String(); got != want {
		t.Fatalf("envelope drifted:\n got  %q\n want %q", got, want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestClassifySentinels pins the sentinel→(status, code, retryable)
// mapping the whole error surface rests on.
func TestClassifySentinels(t *testing.T) {
	cases := []struct {
		err       error
		status    int
		code      string
		retryable bool
	}{
		{isa.ErrBadProgram, http.StatusBadRequest, "bad_program", false},
		{machine.ErrNoKB, http.StatusConflict, "kb_not_loaded", false},
		{ErrOverloaded, http.StatusServiceUnavailable, "overloaded", true},
		{ErrClosed, http.StatusServiceUnavailable, "shutting_down", false},
		{fault.ErrInjected, http.StatusServiceUnavailable, "fault_injected", true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout", true},
		{context.Canceled, 499, "canceled", false},
		{errors.New("mystery"), http.StatusInternalServerError, "internal", false},
		// Wrapped sentinels must classify like the sentinel itself.
		{fmt.Errorf("replica 2: %w", fault.ErrInjected), http.StatusServiceUnavailable, "fault_injected", true},
	}
	for _, c := range cases {
		status, code, retryable := classify(c.err)
		if status != c.status || code != c.code || retryable != c.retryable {
			t.Errorf("classify(%v) = (%d, %q, %v), want (%d, %q, %v)",
				c.err, status, code, retryable, c.status, c.code, c.retryable)
		}
	}
}

// TestRetryAfterComputed checks the overload Retry-After is derived from
// queue depth and drain rate, not hardcoded.
func TestRetryAfterComputed(t *testing.T) {
	e := &Engine{start: time.Now().Add(-10 * time.Second)}
	// 10 completed over ~10s ≈ 1 q/s; 30 queued => ~30s to drain
	// (ceil of the true elapsed time may round one second up).
	e.st.completed = 10
	e.queued.Store(30)
	if got := e.retryAfterSeconds(); got < 30 || got > 31 {
		t.Errorf("retryAfterSeconds = %d, want ~30", got)
	}
	// Clamped to 60 even with a monster backlog.
	e.queued.Store(1_000_000)
	if got := e.retryAfterSeconds(); got != 60 {
		t.Errorf("clamp high: %d, want 60", got)
	}
	// Cold engine: nothing completed yet, fall back to 1.
	cold := &Engine{start: time.Now()}
	cold.queued.Store(5)
	if got := cold.retryAfterSeconds(); got != 1 {
		t.Errorf("cold engine: %d, want 1", got)
	}
	// Overload responses must carry the header.
	rec := httptest.NewRecorder()
	e.writeError(rec, ErrOverloaded)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload status = %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "60" {
		t.Errorf("Retry-After = %q, want \"60\"", ra)
	}
}

// TestServerHealthEndpoint exercises GET /v1/health on a healthy engine.
func TestServerHealthEndpoint(t *testing.T) {
	_, srv := newTestServer(t, 400)
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d, want 200", resp.StatusCode)
	}
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" {
		t.Errorf("status = %q, want ok", rep.Status)
	}
	if len(rep.Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(rep.Replicas))
	}
	for _, r := range rep.Replicas {
		if r.State != "healthy" {
			t.Errorf("replica %d state = %q", r.Rank, r.State)
		}
	}
}

// TestServerPlainTextBody accepts raw assembly without JSON framing.
func TestServerPlainTextBody(t *testing.T) {
	g, srv := newTestServer(t, 400)
	concept := queryConcepts(g, 1)[0]
	resp, err := http.Post(srv.URL+"/v1/query", "text/plain",
		strings.NewReader(inheritanceQuery(g, concept)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain-text query status = %d, want 200", resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.ProgramHash) != 16 {
		t.Errorf("program hash %q malformed", out.ProgramHash)
	}
	if out.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", out.Instructions)
	}
}

// TestServerQueryBatch exercises POST /v1/query/batch: per-element
// envelopes, order preservation, typed per-element errors, and the
// fusion counters surfacing in /v1/stats.
func TestServerQueryBatch(t *testing.T) {
	g, srv := newTestServer(t, 800)
	concepts := queryConcepts(g, 4)

	req := BatchQueryRequest{Programs: []string{
		inheritanceQuery(g, concepts[0]),
		"this is not snap assembly",
		inheritanceQuery(g, concepts[1]),
		inheritanceQuery(g, concepts[2]),
		inheritanceQuery(g, concepts[3]),
	}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out BatchQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(req.Programs) {
		t.Fatalf("%d elements, want %d", len(out.Results), len(req.Programs))
	}
	for i, el := range out.Results {
		if i == 1 {
			if el.Error == nil || el.Error.Code == "" {
				t.Errorf("element 1: want typed error envelope, got %+v", el)
			}
			if el.Result != nil {
				t.Error("element 1: both result and error set")
			}
			continue
		}
		if el.Error != nil {
			t.Errorf("element %d: %s: %s", i, el.Error.Code, el.Error.Message)
			continue
		}
		if el.Result == nil || len(el.Result.Collections) != 1 {
			t.Errorf("element %d: missing collections", i)
		}
		solo := postQuery(t, srv.URL, req.Programs[i])
		if fmt.Sprint(el.Result.Collections) != fmt.Sprint(solo.Collections) {
			t.Errorf("element %d: batch collections diverge from solo query", i)
		}
	}

	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.FusedBatches == 0 {
		t.Errorf("stats report no fused batches (rejects: %v)", st.Stats.FusionRejects)
	}
	if st.Stats.FusedQueries < 2 {
		t.Errorf("fused queries = %d, want >= 2", st.Stats.FusedQueries)
	}
}

// TestServerQueryBatchRejectsMalformed pins the whole-batch error
// envelopes: wrong method, bad JSON, empty and oversized batches.
func TestServerQueryBatchRejectsMalformed(t *testing.T) {
	_, srv := newTestServer(t, 400)
	post := func(body string) (int, ErrorEnvelope) {
		resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}
	if code, env := post("{not json"); code != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Errorf("bad JSON: %d/%s", code, env.Error.Code)
	}
	if code, _ := post(`{"programs":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", code)
	}
	big, _ := json.Marshal(BatchQueryRequest{Programs: make([]string, MaxBatchPrograms+1)})
	if code, _ := post(string(big)); code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/query/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d", resp.StatusCode)
	}
}

// TestServerMutateEndpoint exercises POST /v1/mutate end to end: a
// writes-enabled server commits a CREATE, reports the published
// generation, and every later query observes the link; a read-only
// server refuses with 403 writes_disabled.
func TestServerMutateEndpoint(t *testing.T) {
	kb, _ := writeTestKB(t)
	e, err := New(kb, WithReplicas(2), WithWrites(true), WithFusion(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e))
	defer func() { srv.Close(); e.Close() }()

	const readProg = "search-node node=a marker=c1 value=0\n" +
		"propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n" +
		"collect-node marker=c2\n"
	before := postQuery(t, srv.URL, readProg)
	if n := len(before.Collections[0].Items); n != 2 {
		t.Fatalf("pre-mutate ancestry has %d nodes, want 2", n)
	}

	resp, err := http.Post(srv.URL+"/v1/mutate", "text/plain",
		strings.NewReader("create src=c rel=is-a w=1 dst=d\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		t.Fatalf("mutate status %d: %s: %s", resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	var mut QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&mut); err != nil {
		t.Fatal(err)
	}
	if mut.KBGeneration == 0 {
		t.Error("mutate response carries no published generation")
	}

	after := postQuery(t, srv.URL, readProg)
	found := false
	for _, it := range after.Collections[0].Items {
		if it.Node == "d" {
			found = true
		}
	}
	if !found {
		t.Errorf("post-mutate query misses the committed link: %+v", after.Collections[0].Items)
	}
	if after.KBGeneration < mut.KBGeneration {
		t.Errorf("read observed generation %d, want >= %d (read-your-writes)",
			after.KBGeneration, mut.KBGeneration)
	}

	var st StatsResponse
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Writes != 1 || st.Stats.WriteCommits == 0 {
		t.Errorf("stats writes=%d commits=%d, want 1 and >0", st.Stats.Writes, st.Stats.WriteCommits)
	}

	// GET is not a mutate verb.
	if gresp, err := http.Get(srv.URL + "/v1/mutate"); err != nil {
		t.Fatal(err)
	} else {
		gresp.Body.Close()
		if gresp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/mutate: %d, want 405", gresp.StatusCode)
		}
	}

	// A read-only engine answers 403 with the typed code.
	kb2, _ := writeTestKB(t)
	ro, err := New(kb2, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	rosrv := httptest.NewServer(NewServer(ro))
	defer func() { rosrv.Close(); ro.Close() }()
	roresp, err := http.Post(rosrv.URL+"/v1/mutate", "text/plain",
		strings.NewReader("create src=c rel=is-a w=1 dst=d\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer roresp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(roresp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if roresp.StatusCode != http.StatusForbidden || env.Error.Code != "writes_disabled" {
		t.Errorf("read-only mutate: %d/%s, want 403/writes_disabled", roresp.StatusCode, env.Error.Code)
	}
}

// TestEnvelopeCodesDocumented asserts every stable envelope code —
// classify sentinels and request-shape rejections alike — has a row in
// docs/RESILIENCE.md, so a new code cannot ship undocumented.
func TestEnvelopeCodesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "RESILIENCE.md"))
	if err != nil {
		t.Fatalf("envelope documentation missing: %v", err)
	}
	for _, code := range envelopeCodes {
		if !bytes.Contains(doc, []byte("`"+code+"`")) {
			t.Errorf("envelope code %q undocumented in docs/RESILIENCE.md", code)
		}
	}
	// The classify mapping must not surface codes missing from the list.
	for _, err := range []error{
		isa.ErrBadProgram, machine.ErrNoKB, ErrOverloaded, ErrClosed,
		fault.ErrInjected, context.DeadlineExceeded, context.Canceled,
		ErrWritesDisabled, ErrWriteConflict, ErrWriteFailed,
		errors.New("mystery"),
	} {
		_, code, _ := classify(err)
		found := false
		for _, c := range envelopeCodes {
			if c == code {
				found = true
			}
		}
		if !found {
			t.Errorf("classify surfaces %q, absent from envelopeCodes", code)
		}
	}
}
