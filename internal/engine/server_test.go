package engine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/perfmon"
)

func newTestServer(t *testing.T, nodes int) (*kbgen.Generated, *httptest.Server) {
	t.Helper()
	g := fig15KB(t, nodes)
	e, err := New(g.KB,
		WithReplicas(2),
		WithMonitor(perfmon.NewCollector(1024)))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return g, srv
}

func postQuery(t *testing.T, url, program string) QueryResponse {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Program: program})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("query status %d: %s", resp.StatusCode, e.Error)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerQueryAndStats exercises the full HTTP path: concurrent
// queries, then a stats snapshot that must report non-zero batch counts.
func TestServerQueryAndStats(t *testing.T) {
	g, srv := newTestServer(t, 800)
	concepts := queryConcepts(g, 8)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := postQuery(t, srv.URL, inheritanceQuery(g, concepts[w%len(concepts)]))
			if len(out.Collections) != 1 {
				t.Errorf("worker %d: %d collections, want 1", w, len(out.Collections))
				return
			}
			// Every leaf's is-a ancestry must include the hierarchy root.
			found := false
			for _, it := range out.Collections[0].Items {
				if it.Node == "thing" {
					found = true
				}
			}
			if !found {
				t.Errorf("worker %d: root missing from ancestry %v", w, out.Collections[0].Items)
			}
		}(w)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Batches == 0 {
		t.Error("stats report zero batches")
	}
	if st.Stats.Completed != 8 {
		t.Errorf("completed = %d, want 8", st.Stats.Completed)
	}
	if st.Stats.Run.Count == 0 {
		t.Error("run latency histogram empty")
	}
	if st.Monitor == nil {
		t.Error("monitor stats missing")
	}
	if st.Stats.Events["batch-dispatch"] == 0 {
		t.Error("no batch-dispatch events recorded")
	}
}

// TestServerRejectsBadProgram maps assembly errors to 400.
func TestServerRejectsBadProgram(t *testing.T) {
	_, srv := newTestServer(t, 400)
	resp, err := http.Post(srv.URL+"/v1/query", "text/plain",
		strings.NewReader("frobnicate node=thing"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad program status = %d, want 400", resp.StatusCode)
	}
}

// TestServerPlainTextBody accepts raw assembly without JSON framing.
func TestServerPlainTextBody(t *testing.T) {
	g, srv := newTestServer(t, 400)
	concept := queryConcepts(g, 1)[0]
	resp, err := http.Post(srv.URL+"/v1/query", "text/plain",
		strings.NewReader(inheritanceQuery(g, concept)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain-text query status = %d, want 200", resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.ProgramHash) != 16 {
		t.Errorf("program hash %q malformed", out.ProgramHash)
	}
	if out.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", out.Instructions)
	}
}
