package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
)

// fig15KB generates the synthetic linguistic knowledge base of the
// paper's Fig. 15 scalability experiment.
func fig15KB(t testing.TB, nodes int) *kbgen.Generated {
	t.Helper()
	g, err := kbgen.Generate(kbgen.Params{Nodes: nodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// inheritanceQuery is a root-to-leaf style marker-propagation query in
// SNAP assembly: activate a concept, spread up the is-a chain summing
// link weights, collect the ancestry.
func inheritanceQuery(g *kbgen.Generated, concept string) string {
	_ = g
	return fmt.Sprintf(
		"search-node node=%s marker=c1 value=0\n"+
			"propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n"+
			"collect-node marker=c2\n", concept)
}

// queryConcepts picks a spread of distinct leaf concepts.
func queryConcepts(g *kbgen.Generated, n int) []string {
	names := make([]string, 0, n)
	for i := 0; len(names) < n && i < len(g.Leaves); i += 1 + len(g.Leaves)/n {
		names = append(names, g.KB.Name(g.Leaves[i]))
	}
	return names
}

type expectation struct {
	names []string
	time  string
}

// sequentialReference runs every query on one fresh machine, one at a
// time — the ground truth the concurrent engine must match exactly.
func sequentialReference(t *testing.T, e *Engine, sources []string) map[string]expectation {
	t.Helper()
	m, err := machine.New(e.cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(e.kb); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]expectation, len(sources))
	for _, src := range sources {
		prog, err := e.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		m.ClearMarkers()
		res, err := m.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		want[src] = expectation{names: res.Names(0), time: res.Time.String()}
	}
	return want
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentSubmitMatchesSequential drives ≥8 concurrent submitters
// through one engine over the Fig. 15 synthetic KB and requires every
// per-query result to be identical to sequential execution.
func TestConcurrentSubmitMatchesSequential(t *testing.T) {
	g := fig15KB(t, 1600)
	// Fusion off: this test pins the bit-identical serving mode, where
	// even virtual times match a sequential machine exactly. Fused
	// serving (which reports fused-run end times) is pinned by the
	// tests in fusion_test.go.
	e, err := New(g.KB, WithReplicas(4), WithMaxBatch(4), WithFusion(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sources := make([]string, 0, 16)
	for _, c := range queryConcepts(g, 16) {
		sources = append(sources, inheritanceQuery(g, c))
	}
	want := sequentialReference(t, e, sources)

	const submitters = 8
	const perSubmitter = 6
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				src := sources[(w*perSubmitter+i)%len(sources)]
				res, err := e.SubmitSource(context.Background(), src)
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %v", w, err)
					return
				}
				exp := want[src]
				if !sameNames(res.Names(0), exp.names) {
					errs <- fmt.Errorf("submitter %d: names diverge from sequential: got %v want %v",
						w, res.Names(0), exp.names)
					return
				}
				if res.Time.String() != exp.time {
					errs <- fmt.Errorf("submitter %d: virtual time diverged: got %v want %v",
						w, res.Time, exp.time)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := e.Stats()
	// Each unique source executes exactly once; every repeat submission
	// is served by the result cache or collapsed onto the in-flight
	// execution (singleflight).
	if st.Completed != uint64(len(sources)) {
		t.Errorf("completed = %d, want %d (one execution per unique source)", st.Completed, len(sources))
	}
	if got := st.Completed + st.ResultHits + st.DedupedQueries; got != submitters*perSubmitter {
		t.Errorf("completed+hits+deduped = %d, want %d", got, submitters*perSubmitter)
	}
	if st.ResultHits+st.DedupedQueries == 0 {
		t.Error("no submission was served by the result cache or singleflight")
	}
	if st.Batches == 0 {
		t.Error("no batches dispatched")
	}
	if st.BatchedQueries != st.Completed {
		t.Errorf("batched queries %d != completed %d", st.BatchedQueries, st.Completed)
	}
	if st.CompileHits == 0 {
		t.Error("compile cache never hit despite repeated sources")
	}
	if st.Run.Count != st.Completed {
		t.Errorf("run latency count %d != completed %d", st.Run.Count, st.Completed)
	}
}

// TestConcurrentSubmitUncached repeats the sequential-equivalence drive
// with result caching disabled: every submission must execute on a
// replica and still match the sequential reference exactly.
func TestConcurrentSubmitUncached(t *testing.T) {
	g := fig15KB(t, 1600)
	e, err := New(g.KB, WithReplicas(4), WithMaxBatch(4), WithResultCache(0), WithFusion(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sources := make([]string, 0, 8)
	for _, c := range queryConcepts(g, 8) {
		sources = append(sources, inheritanceQuery(g, c))
	}
	want := sequentialReference(t, e, sources)

	const submitters = 6
	const perSubmitter = 4
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				src := sources[(w*perSubmitter+i)%len(sources)]
				res, err := e.SubmitSource(context.Background(), src)
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %v", w, err)
					return
				}
				exp := want[src]
				if !sameNames(res.Names(0), exp.names) || res.Time.String() != exp.time {
					errs <- fmt.Errorf("submitter %d: diverged from sequential", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := e.Stats()
	if st.Completed != submitters*perSubmitter {
		t.Errorf("completed = %d, want %d with caching disabled", st.Completed, submitters*perSubmitter)
	}
	if st.ResultHits != 0 || st.DedupedQueries != 0 {
		t.Errorf("result cache active despite WithResultCache(0): hits=%d deduped=%d",
			st.ResultHits, st.DedupedQueries)
	}
}

// TestCancelMidRunLeavesPoolReusable cancels a query in flight on a
// single-replica engine and requires the replica to serve correct
// results afterwards.
func TestCancelMidRunLeavesPoolReusable(t *testing.T) {
	g := fig15KB(t, 800)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	concepts := queryConcepts(g, 4)
	// A long program: many alternating propagate/clear rounds.
	long := "search-node node=" + concepts[0] + " marker=c1 value=0\n"
	for i := 0; i < 200; i++ {
		long += "propagate m1=c1 m2=c2 rule=path(is-a) fn=add\n"
		long += "clear-marker marker=c2\n"
	}
	long += "collect-node marker=c2\n"

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.SubmitSource(ctx, long)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit returned %v", err)
	}

	// The pool must still serve fresh queries with sequential-identical
	// results.
	src := inheritanceQuery(g, concepts[1])
	want := sequentialReference(t, e, []string{src})
	res, err := e.SubmitSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNames(res.Names(0), want[src].names) {
		t.Errorf("post-cancel result diverged: got %v want %v", res.Names(0), want[src].names)
	}
}

// TestQueuedCancellation cancels a query while it waits behind another
// on a one-replica pool.
func TestQueuedCancellation(t *testing.T) {
	g := fig15KB(t, 800)
	e, err := New(g.KB, WithReplicas(1), WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	concept := queryConcepts(g, 1)[0]
	if _, err := e.SubmitSource(ctx, inheritanceQuery(g, concept)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submit returned %v, want context.Canceled", err)
	}
	if _, err := e.SubmitSource(context.Background(), inheritanceQuery(g, concept)); err != nil {
		t.Fatalf("engine unusable after canceled query: %v", err)
	}
}

// TestMutatingProgramRejected requires topology-mutating queries to be
// refused with the bad-program sentinel.
func TestMutatingProgramRejected(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	p := isa.NewProgram()
	p.SetColor(g.HierRoot, 1)
	if _, err := e.Submit(context.Background(), p); !errors.Is(err, ErrMutatingProgram) {
		t.Fatalf("mutating program returned %v, want ErrMutatingProgram", err)
	}
	if _, err := e.Submit(context.Background(), p); !errors.Is(err, isa.ErrBadProgram) {
		t.Fatalf("mutating program should wrap isa.ErrBadProgram, got %v", err)
	}
}

// TestCompileCacheLRU exercises hit/miss accounting and eviction.
func TestCompileCacheLRU(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1), WithCacheCap(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	concepts := queryConcepts(g, 3)
	q := func(i int) string { return inheritanceQuery(g, concepts[i]) }

	for _, i := range []int{0, 0, 1, 2, 0} { // 0 evicted before final use
		if _, err := e.Compile(q(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CompileHits != 1 || st.CompileMisses != 4 {
		t.Errorf("cache hits/misses = %d/%d, want 1/4", st.CompileHits, st.CompileMisses)
	}
	if n := e.cache.len(); n != 2 {
		t.Errorf("cache resident entries = %d, want 2", n)
	}
}

// TestSubmitAfterClose verifies the shutdown path.
func TestSubmitAfterClose(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	concept := queryConcepts(g, 1)[0]
	if _, err := e.SubmitSource(context.Background(), inheritanceQuery(g, concept)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close returned %v, want ErrClosed", err)
	}
}
