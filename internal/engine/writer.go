package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
)

// The online write path (Config.Writes). Mutating programs execute
// serialized on one dedicated writer machine — a lockstep replica over
// the master KB, outside the serving ring — and publish epoch-style:
//
//	SubmitWrite → write queue → writer goroutine (group commit)
//	            → RunContext on the writer machine
//	              (every store mutation mirrored into the KB, each
//	               tagged in the KB's topology delta log)
//	            → publish: pubGen := kb.Generation()
//	            → result-cache generation sweep, EvWriteCommitted
//	            → respond to the group's callers
//
// Reads never block on writes: admission reads the published epoch
// (pubGen) with one atomic load, and each serving replica patches its
// cluster tables forward by replaying the delta log at its next batch
// boundary (syncReplica) — cost proportional to the delta, with full
// re-download only as the truncation/rebuild fallback. Responses are
// sent after publish, so a caller whose write returned is guaranteed
// read-your-writes on every subsequently admitted query.

// Write-path sentinel errors.
var (
	// ErrWritesDisabled is returned by SubmitWrite (and mapped to HTTP
	// 403 writes_disabled) when the engine was built without
	// Config.Writes.
	ErrWritesDisabled = errors.New("engine: writes disabled (enable with WithWrites)")
	// ErrWriteConflict marks a write refused by the current topology
	// state — a relation-slot capacity overflow or an unknown node —
	// where retrying verbatim cannot succeed until the topology changes.
	// HTTP surface: 409 conflict.
	ErrWriteConflict = errors.New("engine: write conflict")
	// ErrWriteFailed marks a write whose execution failed after
	// admission for any other reason; the KB may hold a committed
	// prefix of the program's mutations (published like any commit).
	// HTTP surface: 500 write_failed.
	ErrWriteFailed = errors.New("engine: write failed")
)

// writeReq is one queued mutating program.
type writeReq struct {
	ctx  context.Context
	prog *isa.Program
	resp chan writeResp
}

type writeResp struct {
	res *machine.Result
	err error
}

// SubmitWrite enqueues a topology-mutating program for the serialized
// writer and blocks until it commits and its epoch is published (or the
// context/engine dies first). Read-only programs are legal too — they
// observe the master KB between writes — but Submit is the right door
// for them. Writes are not retried and their results are not memoized;
// the returned Result's KBGen is the generation the write produced.
//
// A write that fails mid-program (ErrWriteFailed) may leave a committed
// prefix of its mutations: the SNAP array has no transactional rollback,
// so partial effects publish like any commit. ErrWriteConflict means
// topology state refused the mutation (relation slots full, unknown
// node).
func (e *Engine) SubmitWrite(ctx context.Context, prog *isa.Program) (*machine.Result, error) {
	if e.writeQ == nil {
		e.st.reject()
		return nil, ErrWritesDisabled
	}
	if err := prog.Validate(); err != nil {
		e.st.reject()
		return nil, err
	}
	req := &writeReq{ctx: ctx, prog: prog, resp: make(chan writeResp, 1)}
	select {
	case e.writeQ <- req:
	case <-ctx.Done():
		e.st.cancel()
		return nil, ctx.Err()
	case <-e.done:
		return nil, ErrClosed
	default:
		// Queue full: shed rather than block the caller behind a burst.
		return nil, e.shed()
	}
	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		// The write may still commit; the caller only loses the ack.
		e.st.cancel()
		return nil, ctx.Err()
	case <-e.done:
		return nil, ErrClosed
	}
}

// writeLoop is the dedicated writer goroutine: it drains the write
// queue, folding up to WriteBatch adjacent writes into one group
// commit, and retires at engine shutdown.
func (e *Engine) writeLoop() {
	defer e.wg.Done()
	for {
		var first *writeReq
		select {
		case first = <-e.writeQ:
		case <-e.done:
			return
		}
		group := append(make([]*writeReq, 0, e.cfg.WriteBatch), first)
		for len(group) < e.cfg.WriteBatch {
			select {
			case w := <-e.writeQ:
				group = append(group, w)
				continue
			default:
			}
			break
		}
		e.commitGroup(group)
	}
}

// commitGroup runs a group of writes back-to-back on the writer machine
// and publishes one epoch covering all of them. Responses go out after
// the publish, so an acked write is visible to every later-admitted
// read.
func (e *Engine) commitGroup(group []*writeReq) {
	resps := make([]writeResp, len(group))
	e.writeMu.Lock()
	for i, w := range group {
		if err := w.ctx.Err(); err != nil {
			e.st.cancel()
			resps[i] = writeResp{err: err}
			continue
		}
		e.writer.ClearMarkers()
		start := time.Now()
		res, err := e.writer.RunContext(w.ctx, w.prog)
		e.st.write(time.Since(start), err)
		if err != nil {
			resps[i] = writeResp{err: classifyWriteErr(err)}
			continue
		}
		resps[i] = writeResp{res: res}
	}
	newGen := e.kb.Generation()
	e.writeMu.Unlock()

	if newGen != e.pubGen.Load() {
		e.pubGen.Store(newGen)
		if e.results != nil {
			if n := e.results.evictBefore(newGen); n > 0 {
				e.st.resultGenEvict(n)
			}
		}
		e.st.commit()
		e.emit(-1, perfmon.EvWriteCommitted, uint32(len(group)), 0)
	}
	for i, w := range group {
		w.resp <- resps[i]
	}
}

// classifyWriteErr maps a writer-run failure onto the write-path
// sentinels. Context errors and bad programs pass through untouched
// (they already classify); topology-state refusals become
// ErrWriteConflict, everything else ErrWriteFailed.
func classifyWriteErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, isa.ErrBadProgram),
		errors.Is(err, machine.ErrNoKB):
		return err
	case errors.Is(err, semnet.ErrCapacity),
		errors.Is(err, semnet.ErrUnknownNode):
		return fmt.Errorf("%w: %w", ErrWriteConflict, err)
	default:
		return fmt.Errorf("%w: %w", ErrWriteFailed, err)
	}
}

// syncReplica brings a serving replica's cluster tables up to the
// published epoch before it runs a batch: replay the KB's delta records
// in place — O(delta), partition-routed, marker state untouched — or,
// when the log was truncated or carries a non-replayable rebuild
// record, fall back to a full LoadKB re-download under the write lock
// (the one sync path that must see a quiescent master KB).
func (e *Engine) syncReplica(rank int, m *machine.Machine) {
	if e.writeQ == nil {
		return
	}
	to := e.pubGen.Load()
	from := m.KBGeneration()
	if from == to {
		return
	}
	if recs, ok := e.kb.DeltaRange(from, to); ok {
		replayable := true
		for i := range recs {
			if !recs[i].Replayable() {
				replayable = false
				break
			}
		}
		if replayable {
			if err := m.ApplyDelta(recs, to); err == nil {
				e.st.deltaApplied(len(recs))
				e.emit(rank, perfmon.EvKBDeltaApplied, uint32(len(recs)), 0)
				return
			}
			// Partial patch: the full re-download below rebuilds every
			// table from the master KB, erasing any half-applied state.
		}
	}
	e.writeMu.Lock()
	err := m.LoadKB(e.kb)
	e.writeMu.Unlock()
	if err != nil {
		// Keep serving the stale snapshot; the next boundary retries.
		return
	}
	e.st.fullReload()
}
