package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
)

// RetryPolicy bounds re-execution of retryable query failures: runs
// poisoned by injected faults and per-attempt timeouts. The zero value
// of any field selects its default.
type RetryPolicy struct {
	// MaxAttempts is the total execution attempts per query, the first
	// included; 1 disables retries (default 3).
	MaxAttempts int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy returns the defaults Submit retries under.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
}

func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts == 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

func (p RetryPolicy) validate() []error {
	var errs []error
	if p.MaxAttempts < 0 {
		errs = append(errs, fmt.Errorf("Retry.MaxAttempts must be >= 0, got %d", p.MaxAttempts))
	}
	if p.BaseBackoff < 0 {
		errs = append(errs, fmt.Errorf("Retry.BaseBackoff must be >= 0, got %v", p.BaseBackoff))
	}
	if p.MaxBackoff < 0 {
		errs = append(errs, fmt.Errorf("Retry.MaxBackoff must be >= 0, got %v", p.MaxBackoff))
	}
	return errs
}

// backoff returns the pause before retry attempt (attempt >= 1):
// exponential from BaseBackoff, capped at MaxBackoff, with ±25%
// deterministic jitter derived from the query hash and attempt number —
// reproducible runs, but collapsed retries of distinct queries still
// decorrelate.
func (p RetryPolicy) backoff(attempt int, h uint64) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff || d <= 0 {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	x := h ^ uint64(attempt)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	frac := int64(x%1000) - 500 // [-500, 499] thousandths of ±50% → ±25%
	return d + time.Duration(int64(d)*frac/2000)
}

// attemptRetryable reports whether a failed attempt may be re-executed:
// a run poisoned by injected ICN corruption re-runs bit-identically
// once unfaulted, and a per-attempt timeout may have been a wedged or
// slowed replica that the shard rotation will route around.
func attemptRetryable(err error) bool {
	return errors.Is(err, fault.ErrInjected) || errors.Is(err, context.DeadlineExceeded)
}

// executeRetry runs a query under the engine's deadline and retry
// policies: each attempt gets its own QueryTimeout-bounded context, and
// retryable failures re-execute (on a rotated shard) with exponential
// backoff until the budget or the caller's context runs out.
func (e *Engine) executeRetry(ctx context.Context, prog *isa.Program, h uint64) (*machine.Result, error) {
	// Optimization is compile-tier work: it runs (once per content hash)
	// before admission, so it never occupies a queue or in-flight slot.
	opt := e.optimize(prog, h)
	var lastErr error
	for attempt := 0; attempt < e.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(e.cfg.Retry.backoff(attempt, h))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-e.done:
				t.Stop()
				return nil, ErrClosed
			}
			e.st.retry()
			e.emit(-1, perfmon.EvQueryRetried, uint32(attempt), 0)
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if e.cfg.QueryTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		}
		res, err := e.execute(actx, prog, opt, h, attempt)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil || !attemptRetryable(err) {
			return nil, err
		}
	}
	e.st.retryExhausted()
	return nil, lastErr
}
