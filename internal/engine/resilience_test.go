package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"snap1/internal/fault"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/partition"
)

// faultTestMachine is a small round-robin-partitioned lockstep array:
// round-robin scatters the is-a chains across clusters, so every
// inheritance query crosses the ICN and fault rules on ICN sites bite
// deterministically.
func faultTestMachine() machine.Config {
	mc := machine.DefaultConfig()
	mc.Clusters = 4
	mc.ExtraMUClusters = 2
	mc.NodesPerCluster = 64
	mc.Deterministic = true
	mc.Partition = partition.RoundRobin
	return mc
}

func resilientEngine(t *testing.T, g *kbgen.Generated, plan *fault.Plan, opts ...Option) *Engine {
	t.Helper()
	all := append([]Option{
		WithMachineConfig(faultTestMachine()),
		WithFaultPlan(plan),
	}, opts...)
	e, err := New(g.KB, all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestNewReportsAllInvalidOptions requires New to surface every invalid
// option in one error, not just the first one it trips over.
func TestNewReportsAllInvalidOptions(t *testing.T) {
	g := fig15KB(t, 200)
	_, err := New(g.KB,
		WithReplicas(-2),
		WithQueueCap(-1),
		WithQueryTimeout(-time.Second),
		WithRetryPolicy(RetryPolicy{MaxAttempts: -3}),
		WithHealthPolicy(HealthPolicy{ProbeInterval: -time.Millisecond}),
	)
	if err == nil {
		t.Fatal("New accepted an invalid configuration")
	}
	for _, frag := range []string{
		"engine: invalid configuration",
		"Replicas", "QueueCap", "QueryTimeout",
		"Retry.MaxAttempts", "Health.ProbeInterval",
	} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

// TestConfigValidateFaultPlan folds fault-plan errors into the same
// joined configuration error.
func TestConfigValidateFaultPlan(t *testing.T) {
	cfg := Config{FaultPlan: &fault.Plan{Rules: []fault.Rule{{Site: "no-such-site", Rate: 2}}}}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("bad fault plan accepted")
	}
	if !strings.Contains(err.Error(), "no-such-site") {
		t.Errorf("error %q does not mention the bad site", err)
	}
}

// TestRetryRecoversFromInjectedFaults: every replica drops the first
// ICN messages it sees (bounded budget), so first attempts fail poisoned
// and the retry loop must land a clean re-execution with the exact
// sequential result.
func TestRetryRecoversFromInjectedFaults(t *testing.T) {
	g := fig15KB(t, 200)
	// Count 1: a dropped message halts the propagation wave, so each
	// poisoned run consumes exactly one budget unit — one poisoned run
	// per replica, then clean re-execution.
	plan := &fault.Plan{Seed: 42, Rules: []fault.Rule{
		{Site: "icn-drop", Rate: 1, Count: 1},
	}}
	e := resilientEngine(t, g, plan,
		WithReplicas(2),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}),
	)
	src := inheritanceQuery(g, queryConcepts(g, 1)[0])
	want := sequentialReference(t, e, []string{src})[src]

	res, err := e.SubmitSource(context.Background(), src)
	if err != nil {
		t.Fatalf("query did not recover: %v", err)
	}
	if !sameNames(res.Names(0), want.names) || res.Time.String() != want.time {
		t.Errorf("recovered result differs from sequential: %v / %v, want %v / %v",
			res.Names(0), res.Time, want.names, want.time)
	}
	st := e.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded despite guaranteed first-attempt poison")
	}
	if st.RetriesExhausted != 0 {
		t.Errorf("retry budget reported exhausted %d times", st.RetriesExhausted)
	}
}

// TestRetryGivesUpAfterBudget: with an unlimited full-rate drop rule on
// every replica, no attempt can succeed; Submit must fail with the
// poison sentinel after exactly MaxAttempts tries, never hang.
func TestRetryGivesUpAfterBudget(t *testing.T) {
	g := fig15KB(t, 200)
	plan := &fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Site: "icn-drop", Rate: 1},
	}}
	e := resilientEngine(t, g, plan,
		WithReplicas(2),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}),
	)
	src := inheritanceQuery(g, queryConcepts(g, 1)[0])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := e.SubmitSource(ctx, src)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("exhausted retries returned %v, want fault.ErrInjected", err)
	}
	st := e.Stats()
	if st.RetriesExhausted != 1 {
		t.Errorf("retries_exhausted = %d, want 1", st.RetriesExhausted)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2 (attempts 2 and 3)", st.Retries)
	}
}

// TestQuarantineAndReintegration walks the full replica lifecycle:
// replica 0 wedges its first runs (bounded budget), times out, is
// quarantined at the first failure, serves degraded from replica 1,
// and is probed back into the ring once the wedge budget is spent.
func TestQuarantineAndReintegration(t *testing.T) {
	g := fig15KB(t, 200)
	zero := 0
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Site: "machine-wedge", Rate: 1, Count: 2, Replica: &zero},
	}}
	e := resilientEngine(t, g, plan,
		WithReplicas(2),
		// No result cache: every submission must reach a machine, so
		// replica 0 is guaranteed to pick up a run eventually.
		WithResultCache(-1),
		WithQueryTimeout(50*time.Millisecond),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}),
		WithHealthPolicy(HealthPolicy{FailureThreshold: 1, ProbeInterval: 20 * time.Millisecond, ProbeSuccesses: 1, ProbeTimeout: 100 * time.Millisecond}),
	)
	srcs := make([]string, 0, 8)
	for _, c := range queryConcepts(g, 8) {
		srcs = append(srcs, inheritanceQuery(g, c))
	}

	// Submit until replica 0 trips its wedge and is quarantined. Work
	// stealing may let replica 1 grab a given query first, so keep
	// feeding distinct queries; replica 0 must run one eventually.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; e.Stats().Quarantines == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("replica 0 never quarantined")
		}
		if _, err := e.SubmitSource(context.Background(), srcs[i%len(srcs)]); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}

	// While quarantined (or just after restore) the engine keeps serving.
	rep := e.Health()
	if rep.Replicas[0].Quarantines == 0 {
		t.Errorf("health report shows no quarantine on replica 0: %+v", rep)
	}
	if _, err := e.SubmitSource(context.Background(), srcs[0]); err != nil {
		t.Fatalf("degraded engine failed a query: %v", err)
	}

	// The wedge budget (2) is consumed by the query run plus at most one
	// probe; the next probe passes and restores the replica.
	for e.Stats().Restores == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica 0 never restored")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep = e.Health()
	if rep.Status != "ok" {
		t.Errorf("post-restore status = %q, want ok", rep.Status)
	}
	if rep.Replicas[0].State != "healthy" || rep.Replicas[0].Restores == 0 {
		t.Errorf("replica 0 not restored: %+v", rep.Replicas[0])
	}
	st := e.Stats()
	if st.Quarantines == 0 || st.Restores == 0 || st.Degraded {
		t.Errorf("stats missed the lifecycle: %+v", st)
	}
}

// TestFaultSoak is the acceptance scenario: a seeded plan with 1% ICN
// drops everywhere plus one wedged replica. The engine must serve the
// whole mixed-query suite with zero failures, every result bit-identical
// to the fault-free sequential reference, and the health report must
// show the wedged replica quarantined.
func TestFaultSoak(t *testing.T) {
	g := fig15KB(t, 400)
	wedged := 2
	plan := &fault.Plan{Seed: 1234, Rules: []fault.Rule{
		{Site: "icn-drop", Rate: 0.01},
		{Site: "machine-wedge", Rate: 1, Replica: &wedged},
	}}
	e := resilientEngine(t, g, plan,
		WithReplicas(3),
		// No result cache: all rounds hit real hardware under the plan.
		WithResultCache(-1),
		WithQueryTimeout(500*time.Millisecond),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}),
		// Probe interval beyond the test horizon: the wedged replica
		// must still be quarantined when we read /v1/health state.
		WithHealthPolicy(HealthPolicy{FailureThreshold: 1, ProbeInterval: time.Hour, ProbeSuccesses: 1}),
	)
	srcs := make([]string, 0, 16)
	for _, c := range queryConcepts(g, 16) {
		srcs = append(srcs, inheritanceQuery(g, c))
	}
	want := sequentialReference(t, e, srcs)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const rounds = 4
	errc := make(chan error, rounds*len(srcs))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			for _, src := range srcs {
				res, err := e.SubmitSource(ctx, src)
				if err != nil {
					errc <- err
					return
				}
				w := want[src]
				if !sameNames(res.Names(0), w.names) || res.Time.String() != w.time {
					errc <- errors.New("result diverged from fault-free reference: " + src)
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("soak hung: queries stopped completing")
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	rep := e.Health()
	if rep.Status != "degraded" {
		t.Errorf("soak health status = %q, want degraded", rep.Status)
	}
	if rep.Replicas[wedged].State != "quarantined" {
		t.Errorf("replica %d state = %q, want quarantined", wedged, rep.Replicas[wedged].State)
	}
	st := e.Stats()
	if st.HealthyReplicas != 2 || !st.Degraded {
		t.Errorf("stats: healthy=%d degraded=%v, want 2/true", st.HealthyReplicas, st.Degraded)
	}
	if st.Failed != 0 && st.Retries == 0 {
		t.Errorf("failures without retries: %+v", st)
	}
}
