package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// soloReference runs prog on a fresh machine of the engine's replica
// configuration: the per-query ground truth a fused run must reproduce
// bit-exactly (collections; virtual time is solo time).
func soloReference(t *testing.T, e *Engine, prog *isa.Program) *machine.Result {
	t.Helper()
	m, err := machine.New(e.cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.LoadKB(e.kb); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSubmitBatchFusesAndMatchesSolo pins the fusion contract end to
// end: a batch of independent queries admitted together on a
// single-replica engine is served by one fused machine run, every
// member's collections are bit-identical to its solo execution, and
// every member reports the fused run's end time.
func TestSubmitBatchFusesAndMatchesSolo(t *testing.T) {
	g := fig15KB(t, 1600)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	concepts := queryConcepts(g, 4)
	progs := make([]*isa.Program, len(concepts))
	solo := make([]*machine.Result, len(concepts))
	for i, c := range concepts {
		progs[i], err = e.Compile(inheritanceQuery(g, c))
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = soloReference(t, e, progs[i])
	}

	results, errs := e.SubmitBatch(context.Background(), progs)
	for i := range progs {
		if errs[i] != nil {
			t.Fatalf("batch element %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Collections, solo[i].Collections) {
			t.Errorf("element %d: fused collections diverge from solo run", i)
		}
	}

	st := e.Stats()
	if st.FusedBatches == 0 {
		t.Fatalf("no fused run: stats %+v", st.FusionRejects)
	}
	if st.FusedQueries != uint64(len(progs)) {
		t.Errorf("fused queries = %d, want %d", st.FusedQueries, len(progs))
	}
	if !results[0].Fused {
		t.Error("result not marked Fused")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Time != results[0].Time {
			t.Errorf("member %d time %v != member 0 time %v (all must report the fused end)",
				i, results[i].Time, results[0].Time)
		}
	}
	if ev := st.Events["query-fused"]; ev == 0 {
		t.Error("no query-fused monitor event counted")
	}
}

// TestSubmitBatchFusionDisabled pins the opt-out: with fusion off the
// same batch runs solo, and every member's result — virtual time
// included — is bit-identical to a sequential machine run.
func TestSubmitBatchFusionDisabled(t *testing.T) {
	g := fig15KB(t, 800)
	e, err := New(g.KB, WithReplicas(1), WithFusion(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	concepts := queryConcepts(g, 3)
	progs := make([]*isa.Program, len(concepts))
	for i, c := range concepts {
		progs[i], err = e.Compile(inheritanceQuery(g, c))
		if err != nil {
			t.Fatal(err)
		}
	}
	results, errs := e.SubmitBatch(context.Background(), progs)
	for i := range progs {
		if errs[i] != nil {
			t.Fatalf("element %d: %v", i, errs[i])
		}
		solo := soloReference(t, e, progs[i])
		if results[i].Time != solo.Time {
			t.Errorf("element %d: time %v != solo %v", i, results[i].Time, solo.Time)
		}
		if !reflect.DeepEqual(results[i].Collections, solo.Collections) {
			t.Errorf("element %d: collections diverge from solo run", i)
		}
		if results[i].Fused {
			t.Errorf("element %d marked Fused with fusion disabled", i)
		}
	}
	if st := e.Stats(); st.FusedBatches != 0 {
		t.Errorf("fused batches = %d with fusion disabled", st.FusedBatches)
	}
}

// TestSubmitBatchPerElementErrors: invalid members fail individually
// with their own typed error; valid members are still served.
func TestSubmitBatchPerElementErrors(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	good, err := e.Compile(inheritanceQuery(g, queryConcepts(g, 1)[0]))
	if err != nil {
		t.Fatal(err)
	}
	mut := isa.NewProgram()
	mut.SearchColor(g.KB.ColorFor("concept"), 0, 1)
	mut.SetColor(0, g.KB.ColorFor("concept"))

	results, errs := e.SubmitBatch(context.Background(), []*isa.Program{mut, good})
	if !errors.Is(errs[0], ErrMutatingProgram) {
		t.Errorf("mutating element error = %v, want ErrMutatingProgram", errs[0])
	}
	if results[0] != nil {
		t.Error("mutating element returned a result")
	}
	if errs[1] != nil || results[1] == nil {
		t.Errorf("valid element failed: %v", errs[1])
	}
}

// TestFusionAmbiguityFallsBackToSolo: two queries whose propagation
// waves deliver equal final values from different origins to one node
// trip the machine's runtime ambiguity detector; the engine must fall
// back to solo execution and still answer both correctly.
func TestFusionAmbiguityFallsBackToSolo(t *testing.T) {
	kb := semnet.NewKB()
	r := kb.Relation("r")
	c := kb.ColorFor("seed")
	a := kb.MustAddNode("a", c)
	b := kb.MustAddNode("b", c)
	mid := kb.MustAddNode("mid", kb.ColorFor("other"))
	kb.MustAddLink(a, r, 1, mid)
	kb.MustAddLink(b, r, 1, mid)

	e, err := New(kb, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	mkProg := func() *isa.Program {
		p := isa.NewProgram()
		p.SearchColor(c, 0, 0)
		p.Propagate(0, 1, rules.Path(r), semnet.FuncAdd)
		p.Barrier()
		p.CollectNode(1)
		return p
	}
	progs := []*isa.Program{mkProg(), mkProg()}
	solo := soloReference(t, e, progs[0])

	results, errs := e.SubmitBatch(context.Background(), progs)
	for i := range progs {
		if errs[i] != nil {
			t.Fatalf("element %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Collections, solo.Collections) {
			t.Errorf("element %d: fallback collections diverge from solo", i)
		}
	}
	st := e.Stats()
	if st.FusedBatches != 0 {
		t.Errorf("ambiguous batch counted as fused (%d)", st.FusedBatches)
	}
	if st.FusionRejects["ambiguous"] == 0 {
		t.Errorf("no ambiguity reject counted: %v", st.FusionRejects)
	}
}

// TestConcurrentFusedSubmitsMatchSequential drives the default
// (fusion-enabled, cache-disabled) engine with concurrent distinct
// queries: whatever mix of fused and solo rounds the scheduler
// produces, every answer's collections must match the sequential
// reference.
func TestConcurrentFusedSubmitsMatchSequential(t *testing.T) {
	g := fig15KB(t, 1600)
	e, err := New(g.KB, WithReplicas(2), WithMaxBatch(8), WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sources := make([]string, 0, 8)
	for _, c := range queryConcepts(g, 8) {
		sources = append(sources, inheritanceQuery(g, c))
	}
	want := sequentialReference(t, e, sources)

	const submitters = 8
	var wg sync.WaitGroup
	errs := make(chan error, submitters*len(sources))
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range sources {
				src := sources[(w+i)%len(sources)]
				res, err := e.SubmitSource(context.Background(), src)
				if err != nil {
					errs <- err
					return
				}
				if !sameNames(res.Names(0), want[src].names) {
					errs <- fmt.Errorf("names diverged from sequential for %q", src)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
