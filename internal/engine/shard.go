package engine

import "sync"

// shard is one replica's private run queue. Submit hashes each query
// onto a shard; the shard's owner replica drains it in FIFO order, and
// idle replicas steal batches from loaded shards. Splitting the submit
// path across per-replica queues removes the single dispatcher and its
// global channel as a contention point: under load, each replica mostly
// touches only its own lock.
//
// The queue is a head-indexed slice rather than a channel so a stealer
// can take several requests under one critical section and so depth can
// be read without consuming.
type shard struct {
	mu   sync.Mutex
	head int
	q    []*request
}

// push appends a request and returns the shard's resulting depth.
func (s *shard) push(r *request) int {
	s.mu.Lock()
	s.q = append(s.q, r)
	n := len(s.q) - s.head
	s.mu.Unlock()
	return n
}

// pushAll appends a batch of requests under one critical section —
// guaranteeing they sit contiguously in the queue, so one serving round
// can drain (and fuse) them together — and returns the resulting depth.
func (s *shard) pushAll(rs []*request) int {
	s.mu.Lock()
	s.q = append(s.q, rs...)
	n := len(s.q) - s.head
	s.mu.Unlock()
	return n
}

// popN moves up to n oldest requests into dst and returns it. The
// consumed prefix is released for reuse once the queue empties.
func (s *shard) popN(n int, dst []*request) []*request {
	s.mu.Lock()
	avail := len(s.q) - s.head
	if avail < n {
		n = avail
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.q[s.head+i])
		s.q[s.head+i] = nil // release for GC
	}
	s.head += n
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	s.mu.Unlock()
	return dst
}

// depth reports the queued request count.
func (s *shard) depth() int {
	s.mu.Lock()
	n := len(s.q) - s.head
	s.mu.Unlock()
	return n
}

// steal scans every other shard and takes up to maxBatch requests from
// the deepest one (at most half its queue, at least one), so a stalled
// or hot shard's backlog is drained by whatever replicas are idle. It
// returns dst unchanged when every other shard is empty.
func (e *Engine) steal(self int, dst []*request) []*request {
	victim, deepest := -1, 0
	for i, s := range e.shards {
		if i == self {
			continue
		}
		if d := s.depth(); d > deepest {
			victim, deepest = i, d
		}
	}
	if victim < 0 {
		return dst
	}
	n := (deepest + 1) / 2
	if n > e.cfg.MaxBatch {
		n = e.cfg.MaxBatch
	}
	return e.shards[victim].popN(n, dst)
}
