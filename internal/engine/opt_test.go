package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// redundantChainQuery is the canonical chain query wrapped in the
// redundancy a defensive frontend emits: a scratch plane initialized
// with a SET/FUNC pair and a diagnostic PATH sweep onto it that nothing
// collects. Under the serving profile the optimizer deletes all of it,
// so the program exercises every integration seam: rewrite, remap,
// stats, and the virtual-time win. The variant value makes members hash
// distinctly at identical execution cost.
func redundantChainQuery(w *kbgen.Workload, variant int) *isa.Program {
	p := isa.NewProgram()
	p.Set(2, 0)
	p.Func(2, semnet.FuncAdd, 1)
	p.SearchColor(w.Seeds[0], 0, float32(variant))
	p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
	p.Propagate(0, 2, rules.Path(w.Rel), semnet.FuncAdd) // dead diagnostic sweep
	p.Barrier()
	p.CollectNode(1)
	return p
}

// newOptTestEngine builds a single-replica engine over w with fusion
// off (so virtual times are solo times) at the given optimizer level.
func newOptTestEngine(t *testing.T, w *kbgen.Workload, level int, extra ...Option) *Engine {
	t.Helper()
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	opts := append([]Option{
		WithReplicas(1), WithMachineConfig(cfg), WithFusion(1),
		WithOptLevel(level),
	}, extra...)
	e, err := New(w.KB, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestEngineOptimizedBitIdenticalAndFaster is the engine-integration
// acceptance check: serving at O2 must answer with collections
// bit-identical to O0 serving of the same queries — instruction indices
// included, remapped back onto the submitted program — while the
// reported virtual time strictly improves on a workload whose
// redundancy the optimizer deletes.
func TestEngineOptimizedBitIdenticalAndFaster(t *testing.T) {
	w := kbgen.Chains(1, 32, 8, 1)
	plain := newOptTestEngine(t, w, 0)
	tuned := newOptTestEngine(t, w, isa.OptFull)

	for variant := 0; variant < 8; variant++ {
		p := redundantChainQuery(w, variant)
		ref, err := plain.Submit(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tuned.Submit(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Collections, res.Collections) {
			t.Fatalf("variant %d: optimized collections differ from unoptimized", variant)
		}
		if want := p.Len() - 1; res.Collections[0].Instr != want {
			t.Fatalf("variant %d: collection Instr = %d, want the submitted program's index %d",
				variant, res.Collections[0].Instr, want)
		}
		if res.Time >= ref.Time {
			t.Fatalf("variant %d: optimized virtual time %v not better than unoptimized %v",
				variant, res.Time, ref.Time)
		}
	}

	st := tuned.Stats()
	if st.OptPrograms != 8 {
		t.Errorf("OptPrograms = %d, want 8 (one per distinct variant)", st.OptPrograms)
	}
	// Each variant loses the SET/FUNC pair and the dead sweep.
	if st.OptInstrsEliminated < 3*st.OptPrograms {
		t.Errorf("OptInstrsEliminated = %d, want >= %d", st.OptInstrsEliminated, 3*st.OptPrograms)
	}
	if st.OptPlanesFreed == 0 {
		t.Error("OptPlanesFreed = 0, want the dead scratch plane's row back")
	}
	if st.OptFallbacks != 0 {
		t.Errorf("OptFallbacks = %d on an unambiguous workload", st.OptFallbacks)
	}
	if plainStats := plain.Stats(); plainStats.OptPrograms != 0 {
		t.Errorf("O0 engine reports OptPrograms = %d, want 0", plainStats.OptPrograms)
	}
}

// TestEngineOptCachedPerHash pins the memoization seam: resubmitting
// the same program must not re-optimize (one counted rewrite, one
// program-optimized event), and the result cache must serve the
// optimized result bit-identically on the hit path.
func TestEngineOptCachedPerHash(t *testing.T) {
	w := kbgen.Chains(1, 16, 6, 1)
	mon := perfmon.NewCollector(128)
	e := newOptTestEngine(t, w, isa.OptFull, WithMonitor(mon))

	p := redundantChainQuery(w, 0)
	first, err := e.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("repeat submission differs from the first result")
	}
	if st := e.Stats(); st.OptPrograms != 1 {
		t.Errorf("OptPrograms = %d after resubmission, want 1", st.OptPrograms)
	}
	events := 0
	for _, rec := range mon.Drain() {
		if rec.Code == perfmon.EvProgramOptimized {
			events++
			if rec.Status == 0 {
				t.Error("program-optimized event carries zero eliminated instructions")
			}
		}
	}
	if events != 1 {
		t.Errorf("EvProgramOptimized emitted %d times, want 1", events)
	}
}

// TestEngineOptFusedRemap drives optimized programs through the fused
// path: a SubmitBatch round coalesces rewritten members, and each
// demultiplexed result must come back under the instruction indices of
// the program the caller submitted.
func TestEngineOptFusedRemap(t *testing.T) {
	w := kbgen.Chains(1, 16, 6, 1)
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	e, err := New(w.KB, WithReplicas(1), WithMachineConfig(cfg),
		WithOptLevel(isa.OptFull), WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	plain := newOptTestEngine(t, w, 0)

	batch := make([]*isa.Program, 4)
	for i := range batch {
		batch[i] = redundantChainQuery(w, i)
	}
	results, errs := e.SubmitBatch(context.Background(), batch)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	if st := e.Stats(); st.FusedQueries == 0 {
		t.Fatal("batch did not fuse; the test exercises the fused remap path")
	}
	for i, res := range results {
		ref, err := plain.Submit(context.Background(), batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Collections, res.Collections) {
			t.Errorf("member %d: fused optimized collections differ from solo unoptimized", i)
		}
		if want := batch[i].Len() - 1; res.Collections[0].Instr != want {
			t.Errorf("member %d: collection Instr = %d, want %d", i, res.Collections[0].Instr, want)
		}
	}
}

// TestEngineOptLevelConfig pins the configuration surface: out-of-range
// levels are rejected wholesale, WithOptLevel(0) disables rather than
// selecting the default, and a directly-constructed zero Config serves
// at full level.
func TestEngineOptLevelConfig(t *testing.T) {
	w := kbgen.Chains(1, 4, 3, 1)
	if _, err := New(w.KB, func(c *Config) { c.OptLevel = isa.OptFull + 1 }); err == nil {
		t.Error("OptLevel beyond OptFull accepted")
	} else if !strings.Contains(err.Error(), "OptLevel") {
		t.Errorf("invalid OptLevel error does not name the field: %v", err)
	}

	off := newOptTestEngine(t, w, 0)
	if off.cfg.OptLevel >= 0 {
		t.Errorf("WithOptLevel(0) left OptLevel = %d, want negative (disabled)", off.cfg.OptLevel)
	}
	p := redundantChainQuery(w, 0)
	if opt := off.optimize(p, p.Hash()); opt != nil {
		t.Error("disabled engine still produced an optimization product")
	}

	def, err := New(w.KB, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if def.cfg.OptLevel != isa.OptFull {
		t.Errorf("default OptLevel = %d, want isa.OptFull", def.cfg.OptLevel)
	}
}
