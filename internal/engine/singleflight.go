package engine

import (
	"context"
	"errors"
	"sync"

	"snap1/internal/machine"
)

// flight is one in-progress execution of a program hash. Followers that
// submit the same hash while it runs wait on done instead of queueing a
// duplicate execution.
type flight struct {
	done chan struct{}
	res  *machine.Result
	err  error
}

// flightGroup collapses concurrent submissions of identical programs
// onto one execution (singleflight). Replicas run deterministically and
// every query starts from cleared markers, so one execution's Result —
// virtual time included — is bit-identical to what each collapsed
// duplicate would have computed.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[uint64]*flight)}
}

// join returns the in-progress flight for key, or registers a new one.
// leader is true when the caller must execute and later call finish.
func (g *flightGroup) join(key uint64) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases every follower.
func (g *flightGroup) finish(key uint64, f *flight, res *machine.Result, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// retryable reports whether a follower should re-run the flight loop
// rather than adopt the leader's error: the leader's own context
// expiring says nothing about the follower's query.
func retryable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
