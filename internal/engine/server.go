package engine

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"snap1/internal/isa"
	"snap1/internal/machine"
)

// QueryRequest is the JSON body of POST /v1/query. A text/plain body is
// accepted too: the raw bytes are the assembly source.
type QueryRequest struct {
	// Program is SNAP assembly text (internal/isa Assembler syntax);
	// names resolve against the engine's knowledge base.
	Program string `json:"program"`
	// TimeoutMillis bounds the query's total residence (queue + run);
	// 0 means no per-query deadline beyond the server's.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// QueryItem is one retrieved row with names resolved.
type QueryItem struct {
	Node   string  `json:"node"`
	Value  float32 `json:"value,omitempty"`
	Origin string  `json:"origin,omitempty"`
	Rel    string  `json:"rel,omitempty"`
	Weight float32 `json:"weight,omitempty"`
	To     string  `json:"to,omitempty"`
	Color  string  `json:"color,omitempty"`
}

// QueryCollection is one retrieval instruction's rows.
type QueryCollection struct {
	Instr int         `json:"instr"`
	Op    string      `json:"op"`
	Items []QueryItem `json:"items"`
}

// QueryResponse is the JSON body answering POST /v1/query.
type QueryResponse struct {
	VirtualTime   string            `json:"virtual_time"`
	VirtualPicos  int64             `json:"virtual_ps"`
	WallMicros    int64             `json:"wall_us"`
	Collections   []QueryCollection `json:"collections"`
	ProgramHash   string            `json:"program_hash"`
	Instructions  int               `json:"instructions"`
	ServerMessage string            `json:"message,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewServer returns the engine's HTTP serving surface:
//
//	POST /v1/query  — run one SNAP assembly query (JSON or text/plain)
//	GET  /v1/stats  — serving counters, per-stage latency, monitor state
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", e.handleQuery)
	mux.HandleFunc("/v1/stats", e.handleStats)
	return mux
}

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req QueryRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		req.Program = string(body)
	}
	if strings.TrimSpace(req.Program) == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty program"))
		return
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	prog, err := e.Compile(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	res, err := e.Submit(ctx, prog)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			// Shed by admission control: tell well-behaved clients when
			// to come back instead of letting them hammer a full queue.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, e.queryResponse(prog, res, time.Since(start)))
}

func (e *Engine) queryResponse(prog *isa.Program, res *machine.Result, wall time.Duration) QueryResponse {
	kb := e.kb
	out := QueryResponse{
		VirtualTime:  res.Time.String(),
		VirtualPicos: int64(res.Time),
		WallMicros:   wall.Microseconds(),
		ProgramHash:  hashString(prog.Hash()),
		Instructions: prog.Len(),
	}
	for _, coll := range res.Collections {
		qc := QueryCollection{Instr: coll.Instr, Op: coll.Op.String()}
		for _, it := range coll.Items {
			qi := QueryItem{Node: kb.Name(kb.Canonical(it.Node))}
			switch coll.Op {
			case isa.OpCollectRelation:
				qi.Rel = kb.RelationName(it.Rel)
				qi.Weight = it.Weight
				qi.To = kb.Name(kb.Canonical(it.To))
			case isa.OpCollectColor:
				qi.Color = kb.ColorName(it.Color)
			default:
				qi.Value = it.Value
				qi.Origin = kb.Name(kb.Canonical(it.Origin))
			}
			qc.Items = append(qc.Items, qi)
		}
		out.Collections = append(out.Collections, qc)
	}
	return out
}

// StatsResponse is the JSON body answering GET /v1/stats.
type StatsResponse struct {
	Stats   Stats         `json:"stats"`
	Monitor *MonitorStats `json:"monitor,omitempty"`
}

// MonitorStats summarizes the perfmon collection board's state.
type MonitorStats struct {
	Buffered int   `json:"buffered"`
	Dropped  int64 `json:"dropped"`
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	resp := StatsResponse{Stats: e.Stats()}
	if e.mon != nil {
		resp.Monitor = &MonitorStats{Buffered: e.mon.Len(), Dropped: e.mon.Dropped()}
	}
	writeJSON(w, http.StatusOK, resp)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, isa.ErrBadProgram):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, ErrClosed), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func hashString(h uint64) string {
	const hexdig = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdig[h&0xf]
		h >>= 4
	}
	return string(buf[:])
}
