package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/machine"
)

// QueryRequest is the JSON body of POST /v1/query. A text/plain body is
// accepted too: the raw bytes are the assembly source.
type QueryRequest struct {
	// Program is SNAP assembly text (internal/isa Assembler syntax);
	// names resolve against the engine's knowledge base.
	Program string `json:"program"`
	// TimeoutMillis bounds the query's total residence (queue + run);
	// 0 means no per-query deadline beyond the server's.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// QueryItem is one retrieved row with names resolved.
type QueryItem struct {
	Node   string  `json:"node"`
	Value  float32 `json:"value,omitempty"`
	Origin string  `json:"origin,omitempty"`
	Rel    string  `json:"rel,omitempty"`
	Weight float32 `json:"weight,omitempty"`
	To     string  `json:"to,omitempty"`
	Color  string  `json:"color,omitempty"`
}

// QueryCollection is one retrieval instruction's rows.
type QueryCollection struct {
	Instr int         `json:"instr"`
	Op    string      `json:"op"`
	Items []QueryItem `json:"items"`
}

// QueryResponse is the JSON body answering POST /v1/query.
type QueryResponse struct {
	VirtualTime  string            `json:"virtual_time"`
	VirtualPicos int64             `json:"virtual_ps"`
	WallMicros   int64             `json:"wall_us"`
	Collections  []QueryCollection `json:"collections"`
	ProgramHash  string            `json:"program_hash"`
	Instructions int               `json:"instructions"`
	// Fused marks a query served from a fused multi-query run; its
	// virtual time is the fused run's end, not a solo-run time.
	Fused bool `json:"fused,omitempty"`
	// KBGeneration is the knowledge-base generation snapshot the run
	// observed — after its own mutations, for a /v1/mutate response.
	KBGeneration  uint64 `json:"kb_generation,omitempty"`
	ServerMessage string `json:"message,omitempty"`
}

// BatchQueryRequest is the JSON body of POST /v1/query/batch: up to
// MaxBatchPrograms independent read-only queries submitted together.
// Admitting a batch in one call lets the serving replica coalesce its
// members into a single fused machine run (marker-plane query fusion).
type BatchQueryRequest struct {
	// Programs are SNAP assembly texts; element order is preserved in
	// the response.
	Programs []string `json:"programs"`
	// TimeoutMillis bounds the whole batch's residence (queue + runs);
	// 0 means no deadline beyond the server's.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// MaxBatchPrograms bounds one /v1/query/batch request.
const MaxBatchPrograms = 64

// BatchElement is one positional outcome in a batch response: exactly
// one of Result and Error is set. Error carries the same typed envelope
// body a solo /v1/query request would have received for that program.
type BatchElement struct {
	Result *QueryResponse `json:"result,omitempty"`
	Error  *ErrorBody     `json:"error,omitempty"`
}

// BatchQueryResponse is the JSON body answering POST /v1/query/batch.
// The HTTP status is 200 whenever the batch itself was well-formed;
// per-program failures are reported in their elements.
type BatchQueryResponse struct {
	Results []BatchElement `json:"results"`
}

// ErrorBody is the versioned error payload carried by every non-2xx
// /v1/* response. Code is a stable machine-readable string; clients
// branch on it (and on Retryable) rather than matching Message text.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// ErrorEnvelope wraps ErrorBody as the response document:
//
//	{"error":{"code":"overloaded","message":"...","retryable":true}}
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// NewServer returns the engine's HTTP serving surface:
//
//	POST /v1/query       — run one SNAP assembly query (JSON or text/plain)
//	POST /v1/query/batch — run up to MaxBatchPrograms queries, fused when possible
//	POST /v1/mutate      — run one topology-mutating program (Config.Writes)
//	GET  /v1/stats       — serving counters, per-stage latency, monitor state
//	GET  /v1/health      — per-replica quarantine state and overall status
func NewServer(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", e.handleQuery)
	mux.HandleFunc("/v1/query/batch", e.handleQueryBatch)
	mux.HandleFunc("/v1/mutate", e.handleMutate)
	mux.HandleFunc("/v1/stats", e.handleStats)
	mux.HandleFunc("/v1/health", e.handleHealth)
	return mux
}

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", false, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
		return
	}
	var req QueryRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
			return
		}
	} else {
		req.Program = string(body)
	}
	if strings.TrimSpace(req.Program) == "" {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, errors.New("empty program"))
		return
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	prog, err := e.Compile(req.Program)
	if err != nil {
		e.writeError(w, err)
		return
	}
	start := time.Now()
	res, err := e.Submit(ctx, prog)
	if err != nil {
		e.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e.queryResponse(prog, res, time.Since(start)))
}

// handleMutate answers POST /v1/mutate: one topology-mutating SNAP
// program (same request shape as /v1/query), executed through the
// serialized write path. The response is a QueryResponse whose
// KBGeneration is the epoch the write published; by the time it is
// written, every subsequently admitted read observes the mutation.
// Engines without Config.Writes answer 403 writes_disabled.
func (e *Engine) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", false, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
		return
	}
	var req QueryRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
			return
		}
	} else {
		req.Program = string(body)
	}
	if strings.TrimSpace(req.Program) == "" {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, errors.New("empty program"))
		return
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	prog, err := e.Compile(req.Program)
	if err != nil {
		e.writeError(w, err)
		return
	}
	start := time.Now()
	res, err := e.SubmitWrite(ctx, prog)
	if err != nil {
		e.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e.queryResponse(prog, res, time.Since(start)))
}

func (e *Engine) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", false, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
		return
	}
	var req BatchQueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, err)
		return
	}
	if len(req.Programs) == 0 {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false, errors.New("empty batch"))
		return
	}
	if len(req.Programs) > MaxBatchPrograms {
		writeErrorCode(w, http.StatusBadRequest, "bad_request", false,
			fmt.Errorf("batch of %d exceeds the %d-program bound", len(req.Programs), MaxBatchPrograms))
		return
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	out := BatchQueryResponse{Results: make([]BatchElement, len(req.Programs))}
	progs := make([]*isa.Program, 0, len(req.Programs))
	indices := make([]int, 0, len(req.Programs)) // progs[j] answers element indices[j]
	for i, src := range req.Programs {
		prog, err := e.Compile(src)
		if err != nil {
			out.Results[i].Error = errorBody(err)
			continue
		}
		progs = append(progs, prog)
		indices = append(indices, i)
	}

	start := time.Now()
	results, errs := e.SubmitBatch(ctx, progs)
	wall := time.Since(start)
	for j, i := range indices {
		if errs[j] != nil {
			out.Results[i].Error = errorBody(errs[j])
			continue
		}
		resp := e.queryResponse(progs[j], results[j], wall)
		out.Results[i].Result = &resp
	}
	writeJSON(w, http.StatusOK, out)
}

// errorBody classifies err into the typed per-element envelope body.
func errorBody(err error) *ErrorBody {
	_, code, retryable := classify(err)
	return &ErrorBody{Code: code, Message: err.Error(), Retryable: retryable}
}

func (e *Engine) queryResponse(prog *isa.Program, res *machine.Result, wall time.Duration) QueryResponse {
	kb := e.kb
	out := QueryResponse{
		VirtualTime:  res.Time.String(),
		VirtualPicos: int64(res.Time),
		WallMicros:   wall.Microseconds(),
		ProgramHash:  hashString(prog.Hash()),
		Instructions: prog.Len(),
		Fused:        res.Fused,
		KBGeneration: res.KBGen,
	}
	for _, coll := range res.Collections {
		qc := QueryCollection{Instr: coll.Instr, Op: coll.Op.String()}
		for _, it := range coll.Items {
			qi := QueryItem{Node: kb.Name(kb.Canonical(it.Node))}
			switch coll.Op {
			case isa.OpCollectRelation:
				qi.Rel = kb.RelationName(it.Rel)
				qi.Weight = it.Weight
				qi.To = kb.Name(kb.Canonical(it.To))
			case isa.OpCollectColor:
				qi.Color = kb.ColorName(it.Color)
			default:
				qi.Value = it.Value
				qi.Origin = kb.Name(kb.Canonical(it.Origin))
			}
			qc.Items = append(qc.Items, qi)
		}
		out.Collections = append(out.Collections, qc)
	}
	return out
}

// StatsResponse is the JSON body answering GET /v1/stats.
type StatsResponse struct {
	Stats   Stats         `json:"stats"`
	Monitor *MonitorStats `json:"monitor,omitempty"`
}

// MonitorStats summarizes the perfmon collection board's state.
type MonitorStats struct {
	Buffered int   `json:"buffered"`
	Dropped  int64 `json:"dropped"`
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", false, errors.New("GET required"))
		return
	}
	resp := StatsResponse{Stats: e.Stats()}
	if e.mon != nil {
		resp.Monitor = &MonitorStats{Buffered: e.mon.Len(), Dropped: e.mon.Dropped()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth answers GET /v1/health with the per-replica quarantine
// report. A fully dark engine (every replica quarantined) answers 503 so
// load balancers fail the instance over without parsing the body.
func (e *Engine) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "method_not_allowed", false, errors.New("GET required"))
		return
	}
	rep := e.Health()
	status := http.StatusOK
	if rep.Status == "unavailable" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// classify maps an error from the compile/submit path onto its HTTP
// status, stable envelope code, and retryability. Every sentinel the
// engine can surface appears here; anything unrecognized is an opaque
// internal error.
func classify(err error) (status int, code string, retryable bool) {
	switch {
	case errors.Is(err, isa.ErrBadProgram):
		return http.StatusBadRequest, "bad_program", false
	case errors.Is(err, machine.ErrNoKB):
		return http.StatusConflict, "kb_not_loaded", false
	case errors.Is(err, ErrWritesDisabled):
		return http.StatusForbidden, "writes_disabled", false
	case errors.Is(err, ErrWriteConflict):
		return http.StatusConflict, "conflict", false
	case errors.Is(err, ErrWriteFailed):
		return http.StatusInternalServerError, "write_failed", false
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded", true
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "shutting_down", false
	case errors.Is(err, fault.ErrInjected):
		return http.StatusServiceUnavailable, "fault_injected", true
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout", true
	case errors.Is(err, context.Canceled):
		return 499, "canceled", false // client closed request
	default:
		return http.StatusInternalServerError, "internal", false
	}
}

// envelopeCodes is every stable code the typed error envelope can carry
// — the classify sentinels plus the request-shape rejections written via
// writeErrorCode. The envelope tests assert this list against the
// documentation table (docs/RESILIENCE.md), so a new code cannot ship
// undocumented.
var envelopeCodes = []string{
	"bad_program",
	"bad_request",
	"canceled",
	"conflict",
	"fault_injected",
	"internal",
	"kb_not_loaded",
	"method_not_allowed",
	"overloaded",
	"shutting_down",
	"timeout",
	"write_failed",
	"writes_disabled",
}

// retryAfterSeconds estimates when a shed client should come back:
// current queue depth over the engine's lifetime drain rate, clamped to
// [1, 60] seconds. A cold engine (nothing completed yet) answers 1.
func (e *Engine) retryAfterSeconds() int {
	depth := e.queued.Load()
	if depth <= 0 {
		return 1
	}
	done := e.st.completedCount()
	elapsed := time.Since(e.start).Seconds()
	if done == 0 || elapsed <= 0 {
		return 1
	}
	rate := float64(done) / elapsed // queries per second
	secs := int(math.Ceil(float64(depth) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError classifies err and writes the typed envelope. Overload
// sheds additionally carry a Retry-After estimated from the live queue
// depth and drain rate, so well-behaved clients back off just long
// enough instead of hammering a full queue.
func (e *Engine) writeError(w http.ResponseWriter, err error) {
	status, code, retryable := classify(err)
	if code == "overloaded" {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfterSeconds()))
	}
	writeErrorCode(w, status, code, retryable, err)
}

// writeErrorCode writes the typed envelope for paths with no engine
// sentinel to classify (malformed requests, wrong methods).
func writeErrorCode(w http.ResponseWriter, status int, code string, retryable bool, err error) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: err.Error(), Retryable: retryable}})
}

func hashString(h uint64) string {
	const hexdig = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdig[h&0xf]
		h >>= 4
	}
	return string(buf[:])
}
