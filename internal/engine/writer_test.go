package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Online write-path tests: SubmitWrite admission, epoch publish and
// read-your-writes, conflict classification, cache hygiene at commit,
// and the read/write soak asserting every concurrent read bit-identical
// to a reference machine replayed to the read's observed generation.

// writeTestKB builds a small chain a -is-a-> b -is-a-> c plus a detached
// node d, so a single committed CREATE visibly extends the ancestry.
func writeTestKB(t *testing.T) (*semnet.KB, map[string]semnet.NodeID) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("concept")
	rel := kb.Relation("is-a")
	ids := map[string]semnet.NodeID{}
	for _, n := range []string{"a", "b", "c", "d"} {
		ids[n] = kb.MustAddNode(n, col)
	}
	kb.MustAddLink(ids["a"], rel, 1, ids["b"])
	kb.MustAddLink(ids["b"], rel, 1, ids["c"])
	return kb, ids
}

func ancestryProg(kb *semnet.KB, from semnet.NodeID) *isa.Program {
	p := isa.NewProgram()
	p.SearchNode(from, 1, 0)
	p.Propagate(1, 2, rules.Path(kb.Relation("is-a")), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(2)
	return p
}

// TestSubmitWriteDisabled: an engine built without WithWrites refuses
// mutating submissions with the typed sentinel.
func TestSubmitWriteDisabled(t *testing.T) {
	kb, ids := writeTestKB(t)
	e, err := New(kb, WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	w := isa.NewProgram().Create(ids["c"], kb.Relation("is-a"), 1, ids["d"])
	if _, err := e.SubmitWrite(context.Background(), w); !errors.Is(err, ErrWritesDisabled) {
		t.Fatalf("SubmitWrite on a read-only engine: %v, want ErrWritesDisabled", err)
	}
}

// TestSubmitWriteReadYourWrites: once SubmitWrite returns, every
// subsequently admitted read observes the mutation, and the write
// counters and published generation advance.
func TestSubmitWriteReadYourWrites(t *testing.T) {
	kb, ids := writeTestKB(t)
	e, err := New(kb, WithReplicas(2), WithWrites(true), WithFusion(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	read := ancestryProg(kb, ids["a"])

	before, err := e.Submit(ctx, read)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(before.Collections[0].Items); n != 2 {
		t.Fatalf("pre-write ancestry has %d nodes, want 2 (b, c)", n)
	}
	gen0 := e.Stats().KBGeneration

	wres, err := e.SubmitWrite(ctx, isa.NewProgram().Create(ids["c"], kb.Relation("is-a"), 1, ids["d"]))
	if err != nil {
		t.Fatal(err)
	}
	if wres.KBGen <= gen0 {
		t.Errorf("write result generation %d not past pre-write %d", wres.KBGen, gen0)
	}

	after, err := e.Submit(ctx, read)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range after.Collections[0].Items {
		if it.Node == ids["d"] {
			found = true
		}
	}
	if !found {
		t.Errorf("post-write read misses the committed link: %+v", after.Collections[0].Items)
	}
	if after.KBGen < wres.KBGen {
		t.Errorf("post-write read observed generation %d, want >= %d", after.KBGen, wres.KBGen)
	}

	st := e.Stats()
	if st.Writes != 1 || st.WriteCommits == 0 {
		t.Errorf("writes=%d commits=%d, want 1 and >0", st.Writes, st.WriteCommits)
	}
	if st.KBGeneration <= gen0 {
		t.Errorf("published generation %d did not advance past %d", st.KBGeneration, gen0)
	}
	if st.DeltasApplied == 0 && st.FullReloads == 0 {
		t.Error("no replica ever synced (neither delta replay nor full reload)")
	}
}

// TestSubmitWriteConflict: a CREATE on a node whose relation slots are
// full is refused as a conflict — the loaded array cannot split subnodes
// at runtime — and the envelope code is the 409 "conflict".
func TestSubmitWriteConflict(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("concept")
	rel := kb.Relation("r")
	fat := kb.MustAddNode("fat", col)
	targets := make([]semnet.NodeID, semnet.RelationSlots+1)
	for i := range targets {
		targets[i] = kb.MustAddNode(fmt.Sprintf("t%d", i), col)
	}
	// Exactly RelationSlots links: below the preprocessor's split
	// threshold, but the store's slot bank is full.
	for i := 0; i < semnet.RelationSlots; i++ {
		kb.MustAddLink(fat, rel, 1, targets[i])
	}
	e, err := New(kb, WithReplicas(1), WithWrites(true))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	w := isa.NewProgram().Create(fat, rel, 1, targets[semnet.RelationSlots])
	_, err = e.SubmitWrite(context.Background(), w)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("overflow CREATE: %v, want ErrWriteConflict", err)
	}
	if status, code, retryable := classify(err); status != 409 || code != "conflict" || retryable {
		t.Errorf("conflict classifies as (%d, %q, %v), want (409, conflict, false)", status, code, retryable)
	}
	// The refused write must not have published a new epoch.
	if st := e.Stats(); st.WriteCommits != 0 {
		t.Errorf("refused write published a commit: %+v", st.WriteCommits)
	}
}

// TestWriteSweepsResultCache: a commit evicts every result memoized
// under a superseded generation, so the cache never pins dead epochs.
func TestWriteSweepsResultCache(t *testing.T) {
	kb, ids := writeTestKB(t)
	e, err := New(kb, WithReplicas(1), WithWrites(true), WithFusion(1), WithResultCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	read := ancestryProg(kb, ids["a"])

	// Memoize, then hit.
	if _, err := e.Submit(ctx, read); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(ctx, read); err != nil {
		t.Fatal(err)
	}
	if e.results.len() == 0 {
		t.Fatal("read was not memoized")
	}
	if _, err := e.SubmitWrite(ctx, isa.NewProgram().Create(ids["c"], kb.Relation("is-a"), 1, ids["d"])); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().ResultGenEvicted; got == 0 {
		t.Error("commit swept no superseded-generation results")
	}
	// The post-write read recomputes under the new generation and must
	// see the mutation (a stale hit would miss node d).
	res, err := e.Submit(ctx, read)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range res.Collections[0].Items {
		if it.Node == ids["d"] {
			found = true
		}
	}
	if !found {
		t.Error("post-write read served a stale cached result")
	}
}

// TestOptCacheBounded: the optimizer cache is a bounded LRU sharing
// CacheCap; overflowing it with distinct programs must evict, not grow
// without bound, and the eviction counter surfaces in Stats.
func TestOptCacheBounded(t *testing.T) {
	g := fig15KB(t, 400)
	e, err := New(g.KB, WithReplicas(1), WithCacheCap(4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	for _, c := range queryConcepts(g, 12) {
		prog, err := e.Compile(inheritanceQuery(g, c))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(ctx, prog); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.opts.len(); n > 4 {
		t.Errorf("optimizer cache holds %d entries, cap 4", n)
	}
	if got := e.Stats().OptCacheEvictions; got == 0 {
		t.Error("12 distinct programs through a cap-4 optimizer cache evicted nothing")
	}
}

// TestReadWriteSoak drives concurrent readers and writers through one
// engine, then proves every read was bit-identical — collections and
// lockstep virtual time — to a reference machine patched forward to
// exactly the generation that read observed. This is the acceptance
// criterion for epoch-versioned serving: a read never sees a torn or
// stale-beyond-its-epoch snapshot.
func TestReadWriteSoak(t *testing.T) {
	g := fig15KB(t, 800)
	// Fusion off and optimizer off: the reference machine runs programs
	// as written, solo, so engine results must match it exactly. Result
	// cache off so every read actually exercises replica delta sync.
	e, err := New(g.KB,
		WithReplicas(4),
		WithWrites(true),
		WithFusion(1),
		WithOptLevel(0),
		WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// The reference starts from the same post-preprocess topology and
	// partition the pool booted from.
	ref, err := machine.New(e.cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.LoadKB(e.kb); err != nil {
		t.Fatal(err)
	}

	kb := g.KB
	progs := make([]*isa.Program, 0, 4)
	for _, c := range queryConcepts(g, 4) {
		p, err := e.Compile(inheritanceQuery(g, c))
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}

	// Distinct per-writer links on low-fanout leaves, toggled
	// create/delete, keep every write conflict-free and the write volume
	// far below the delta log's truncation threshold.
	const writers, togglesPerWriter = 2, 30
	type toggle struct {
		src, dst semnet.NodeID
		rel      semnet.RelType
	}
	toggles := make([]toggle, writers)
	for w := range toggles {
		toggles[w] = toggle{
			src: g.Leaves[w],
			dst: g.Leaves[(w+10)%len(g.Leaves)],
			rel: kb.Relation(fmt.Sprintf("soak-%d", w)),
		}
	}

	type sample struct {
		prog *isa.Program
		gen  uint64
		got  string
	}
	render := func(res *machine.Result) string {
		out := res.Time.String()
		for _, c := range res.Collections {
			for _, it := range c.Items {
				out += fmt.Sprintf("|%d:%d=%v", c.Instr, it.Node, it.Value)
			}
		}
		return out
	}

	const readers, readsPerReader = 4, 40
	samples := make([][]sample, readers)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tg := toggles[w]
			for i := 0; i < togglesPerWriter; i++ {
				var p *isa.Program
				if i%2 == 0 {
					p = isa.NewProgram().Create(tg.src, tg.rel, 1, tg.dst)
				} else {
					p = isa.NewProgram().Delete(tg.src, tg.rel, tg.dst)
				}
				if _, err := e.SubmitWrite(ctx, p); err != nil {
					t.Errorf("writer %d toggle %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				p := progs[(r+i)%len(progs)]
				res, err := e.Submit(ctx, p)
				if err != nil {
					t.Errorf("reader %d read %d: %v", r, i, err)
					return
				}
				samples[r] = append(samples[r], sample{prog: p, gen: res.KBGen, got: render(res)})
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Replay: advance the reference through the delta log in ascending
	// generation order, running every sample at its observed epoch.
	all := make([]sample, 0, readers*readsPerReader)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].gen < all[j].gen })
	verified := 0
	for _, s := range all {
		if cur := ref.KBGeneration(); s.gen > cur {
			recs, ok := kb.DeltaRange(cur, s.gen)
			if !ok {
				t.Fatalf("DeltaRange(%d, %d) not ok: soak outran the delta log", cur, s.gen)
			}
			if err := ref.ApplyDelta(recs, s.gen); err != nil {
				t.Fatalf("reference replay to gen %d: %v", s.gen, err)
			}
		} else if s.gen < cur {
			t.Fatalf("sample at gen %d after reference advanced to %d (samples unsorted?)", s.gen, cur)
		}
		ref.ClearMarkers()
		res, err := ref.Run(s.prog)
		if err != nil {
			t.Fatal(err)
		}
		if want := render(res); s.got != want {
			t.Fatalf("read at gen %d diverges from reference:\n got  %s\n want %s", s.gen, s.got, want)
		}
		verified++
	}
	if verified != readers*readsPerReader {
		t.Fatalf("verified %d samples, want %d", verified, readers*readsPerReader)
	}
	st := e.Stats()
	if st.WriteCommits == 0 || st.Writes != writers*togglesPerWriter {
		t.Errorf("writes=%d commits=%d, want %d writes and >0 commits",
			st.Writes, st.WriteCommits, writers*togglesPerWriter)
	}
	if st.DeltasApplied == 0 {
		t.Error("soak exercised no incremental delta sync")
	}
	if st.FullReloads != 0 {
		t.Errorf("%d full reloads during a replayable-only soak, want 0", st.FullReloads)
	}
}
