package engine

import (
	"context"
	"errors"
	"time"

	"snap1/internal/isa"
	"snap1/internal/machine"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
)

// Marker-plane query fusion: a serving round that drained several
// mutually independent read-only queries coalesces them into ONE fused
// machine program — each query's markers renamed onto disjoint rows of
// the 128-row status slab — and executes them in a single run, paying
// the array bring-up (clear, broadcast, topology sweep) once instead of
// per query. The fused result is demultiplexed back into per-query
// results that are bit-identical, collections included, to what each
// query would have produced running alone; only the reported virtual
// time differs (every member reports the fused run's end).
//
// Fusion is transparent to callers of Submit: it engages whenever a
// replica's round happens to carry compatible queries. SubmitBatch
// (below) stacks the odds by admitting a caller's batch contiguously
// onto one shard. Any failure to fuse — ineligible program, plane
// exhaustion, rule-table overflow, or a runtime origin-ambiguity
// detection — falls back to solo execution of the same requests, so
// fusion can only add throughput, never answers.

// fusionGroup pops the head of the round and, when fusion is enabled
// and the head is fusable, pulls every compatible query from the rest
// of the round into its group: fusable programs admitted under the
// same KB generation whose combined marker demand still fits the
// status slab's 64 complex and 64 binary rows, up to cfg.Fusion
// members. Incompatible requests keep their relative order for the
// next iteration. Rejection reasons are counted in Stats.
func (e *Engine) fusionGroup(batch *[]*request) []*request {
	b := *batch
	first, rest := b[0], b[1:]
	*batch = rest
	if e.cfg.Fusion <= 1 || len(rest) == 0 {
		return b[:1:1]
	}
	if ok, reason := isa.Fusable(first.runProg()); !ok {
		e.st.fusionReject(reason)
		return b[:1:1]
	}
	group := []*request{first}
	// Fusion plans over the optimizer's rewrites (request.runProg): the
	// renaming pass packs each member's webs onto fewer planes, so an
	// optimized group fits more queries into the status slab's rows.
	cpx, bin := isa.PlaneDemand(first.runProg())
	keep := rest[:0]
	for _, req := range rest {
		if len(group) >= e.cfg.Fusion {
			keep = append(keep, req)
			continue
		}
		if req.gen != first.gen {
			e.st.fusionReject("generation")
			keep = append(keep, req)
			continue
		}
		if ok, reason := isa.Fusable(req.runProg()); !ok {
			e.st.fusionReject(reason)
			keep = append(keep, req)
			continue
		}
		cq, bq := isa.PlaneDemand(req.runProg())
		if cpx+cq > semnet.NumComplexMarkers || bin+bq > semnet.NumBinaryMarkers {
			e.st.fusionReject(isa.FuseReasonPlanes)
			keep = append(keep, req)
			continue
		}
		cpx, bin = cpx+cq, bin+bq
		group = append(group, req)
	}
	*batch = keep
	return group
}

// runFused executes a fusion group as one machine run and answers every
// member from the demultiplexed result. It returns false — without
// having answered anyone — when the group must fall back to solo
// execution: fusion planning failed, the run errored, or the machine
// detected an origin-ambiguous marker tie (ErrFusionAmbiguous), whose
// per-query attribution only a solo run can pin down.
func (e *Engine) runFused(rank int, m *machine.Machine, group []*request) bool {
	live := make([]*request, 0, len(group))
	for _, req := range group {
		e.st.queueWait(time.Since(req.enqueued))
		if err := req.ctx.Err(); err != nil {
			e.st.cancel()
			e.emit(rank, perfmon.EvQueryCancel, uint32(e.queued.Load()), 0)
			req.resp <- response{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) < 2 {
		for _, req := range live {
			e.runOne(rank, m, req)
		}
		return true
	}

	progs := make([]*isa.Program, len(live))
	for i, req := range live {
		progs[i] = req.runProg()
	}
	f, err := isa.Fuse(progs)
	if err != nil {
		var fe *isa.FuseError
		if errors.As(err, &fe) {
			e.st.fusionReject(fe.Reason)
		} else {
			e.st.fusionReject("error")
		}
		return false
	}

	// The run executes under the head member's context: the members
	// share one physical run, so one member's deadline bounds it. On
	// any error the whole group re-runs solo, each member under its
	// own context, so a head cancellation never answers for the rest.
	m.ClearMarkers()
	start := time.Now()
	res, err := m.RunFused(live[0].ctx, f)
	if err != nil {
		if errors.Is(err, machine.ErrFusionAmbiguous) {
			e.st.fusionReject("ambiguous")
		}
		return false
	}
	e.st.fusedRun(time.Since(start), len(live))
	e.noteSuccess(rank)
	if p := res.Profile; p != nil {
		// One physical run: the interconnect moved each message once,
		// however many queries rode it.
		e.st.icn(p.PropMessages, p.PropHops, p.SendBursts)
	}
	e.emit(rank, perfmon.EvQueryFused, uint32(len(live)), res.Time)
	parts := res.Demux(f)
	for i, req := range live {
		if req.opt != nil && req.opt.Changed() {
			// The member ran in its optimized form: hand collections
			// back under the instruction indices the caller submitted.
			parts[i].RemapInstrs(req.opt.OrigIndex)
		}
		e.emit(rank, perfmon.EvQueryDone, uint32(parts[i].Time), parts[i].Time)
		req.resp <- response{res: parts[i]}
	}
	return true
}

// SubmitBatch submits a set of independent read-only programs in one
// call, enqueuing every cache-missing member contiguously on a single
// shard so the serving replica drains them in one round and can fuse
// them into a single machine run. Results and errors are positional:
// errs[i] is non-nil exactly when results[i] is nil. Per-element
// admission matches Submit (validation, mutating-program rejection,
// result-cache hits); unlike Submit, members that execute are not
// retried and their results are not memoized (a fused result's virtual
// time is not solo-reproducible).
func (e *Engine) SubmitBatch(ctx context.Context, progs []*isa.Program) ([]*machine.Result, []error) {
	results := make([]*machine.Result, len(progs))
	errs := make([]error, len(progs))
	if len(progs) == 0 {
		return results, errs
	}
	select {
	case <-e.done:
		for i := range errs {
			errs[i] = ErrClosed
		}
		return results, errs
	default:
	}
	if e.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		defer cancel()
	}

	gen := e.readGen()
	pending := make([]int, 0, len(progs)) // indices awaiting execution
	for i, prog := range progs {
		if prog.Mutating() {
			e.st.reject()
			errs[i] = ErrMutatingProgram
			continue
		}
		h := prog.Hash()
		if _, ok := e.valid.Load(h); !ok {
			if err := prog.Validate(); err != nil {
				e.st.reject()
				errs[i] = err
				continue
			}
			e.valid.Store(h, struct{}{})
		}
		if e.results != nil {
			if res, ok := e.results.get(h, gen); ok {
				e.st.resultHit()
				e.emit(-1, perfmon.EvResultHit, uint32(res.Time), res.Time)
				results[i] = res
				continue
			}
			e.st.resultMiss()
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, errs
	}

	// Optimization is compile-tier work: run it (once per content hash)
	// before admission, so it never occupies queue or in-flight slots.
	opts := make([]*isa.Optimized, len(pending))
	for j, i := range pending {
		opts[j] = e.optimize(progs[i], progs[i].Hash())
	}

	// Admission control covers the whole pending set at once.
	n := int64(len(pending))
	if q := e.queued.Add(n); int(q) > e.cfg.QueueCap {
		e.queued.Add(-n)
		err := e.shed()
		for _, i := range pending {
			errs[i] = err
		}
		return results, errs
	}
	if e.cfg.MaxInFlight > 0 && int(e.inflight.Add(n)) > e.cfg.MaxInFlight {
		e.inflight.Add(-n)
		e.queued.Add(-n)
		err := e.shed()
		for _, i := range pending {
			errs[i] = err
		}
		return results, errs
	} else if e.cfg.MaxInFlight <= 0 {
		e.inflight.Add(n)
	}
	defer e.inflight.Add(-n)

	reqs := make([]*request, len(pending))
	for j, i := range pending {
		reqs[j] = &request{
			ctx: ctx, prog: progs[i], opt: opts[j], hash: progs[i].Hash(),
			gen:  gen,
			resp: make(chan response, 1), enqueued: time.Now(),
		}
	}
	sh := e.shards[e.pickShard(reqs[0].hash, 0)]
	depth := sh.pushAll(reqs)
	for range reqs {
		e.st.submit()
	}
	e.emit(-1, perfmon.EvQuerySubmit, uint32(depth), 0)
	e.wake()

	for j, i := range pending {
		select {
		case r := <-reqs[j].resp:
			results[i], errs[i] = r.res, r.err
		case <-ctx.Done():
			e.st.cancel()
			errs[i] = ctx.Err()
		case <-e.done:
			errs[i] = ErrClosed
		}
	}
	return results, errs
}
