package engine

import (
	"math/bits"
	"strconv"
	"sync"
	"time"

	"snap1/internal/perfmon"
)

// histBuckets is the per-stage latency histogram resolution: bucket i
// counts observations whose microsecond count has bit-length i, i.e.
// [2^(i-1), 2^i), with bucket 0 absorbing zero-microsecond observations.
const histBuckets = 32

// LatencyHist is a snapshot of one pipeline stage's wall-clock latency
// distribution in power-of-two microsecond buckets.
type LatencyHist struct {
	Count       uint64            `json:"count"`
	TotalMicros uint64            `json:"total_us"`
	MaxMicros   uint64            `json:"max_us"`
	Buckets     map[string]uint64 `json:"buckets,omitempty"` // "us<2^k" -> count
}

// MeanMicros reports the stage's mean latency in microseconds.
func (h LatencyHist) MeanMicros() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.TotalMicros) / float64(h.Count)
}

type hist struct {
	count, total, max uint64
	buckets           [histBuckets]uint64
}

func (h *hist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.count++
	h.total += us
	if us > h.max {
		h.max = us
	}
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b]++
}

func (h *hist) snapshot() LatencyHist {
	out := LatencyHist{Count: h.count, TotalMicros: h.total, MaxMicros: h.max}
	if h.count > 0 {
		out.Buckets = make(map[string]uint64)
		for i, n := range h.buckets {
			if n > 0 {
				out.Buckets["us<2^"+strconv.Itoa(i)] = n
			}
		}
	}
	return out
}

// Stats is a snapshot of the engine's serving counters.
type Stats struct {
	Replicas     int `json:"replicas"`
	IdleReplicas int `json:"idle_replicas"`
	QueueDepth   int `json:"queue_depth"`
	InFlight     int `json:"in_flight"`

	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
	// Overloaded counts submissions shed by admission control
	// (ErrOverloaded): queue full or in-flight ceiling reached.
	Overloaded uint64 `json:"overloaded"`

	// Batches counts serving rounds; BatchedQueries the queries they
	// carried. MaxBatchSize is the largest single round observed.
	// Steals counts rounds served off another replica's shard;
	// StolenQueries the queries those rounds carried.
	Batches        uint64 `json:"batches"`
	BatchedQueries uint64 `json:"batched_queries"`
	MaxBatchSize   int    `json:"max_batch_size"`
	Steals         uint64 `json:"steals"`
	StolenQueries  uint64 `json:"stolen_queries"`

	// Query-fusion counters: fused machine runs, the queries they
	// coalesced, and queries kept out of fusion groups by reason
	// ("mutating", "fn", "planes", "rules", "generation", "ambiguous",
	// "error").
	FusedBatches  uint64            `json:"fused_batches"`
	FusedQueries  uint64            `json:"fused_queries"`
	FusionRejects map[string]uint64 `json:"fusion_rejects,omitempty"`

	CompileHits   uint64 `json:"compile_cache_hits"`
	CompileMisses uint64 `json:"compile_cache_misses"`

	// Optimizer counters: distinct programs the compile-tier optimizer
	// rewrote, the instructions those rewrites deleted, the marker-plane
	// demand they handed back to the fusion planner, and optimized runs
	// that tripped the runtime origin-ambiguity backstop and re-ran the
	// program as submitted.
	OptPrograms         uint64 `json:"opt_programs"`
	OptInstrsEliminated uint64 `json:"opt_instrs_eliminated"`
	OptPlanesFreed      uint64 `json:"opt_planes_freed"`
	OptFallbacks        uint64 `json:"opt_fallbacks"`

	// Result-cache counters: hits served without touching a replica,
	// misses that went to execution, queries collapsed onto an
	// identical in-flight execution (singleflight), the cache's
	// resident entry count, and entries swept out eagerly because a
	// write publish superseded their generation.
	ResultHits       uint64 `json:"result_cache_hits"`
	ResultMisses     uint64 `json:"result_cache_misses"`
	DedupedQueries   uint64 `json:"deduped_queries"`
	ResultCacheSize  int    `json:"result_cache_size"`
	ResultGenEvicted uint64 `json:"result_gen_evicted"`

	// OptCacheEvictions counts optimizer-cache entries displaced by its
	// LRU bound (the cache is capped at the compile cache's capacity).
	OptCacheEvictions uint64 `json:"opt_cache_evictions"`

	// Write-path counters (zero unless Config.Writes): mutating
	// programs committed and failed; epoch publishes (group commit can
	// fold several writes into one); incremental replica delta
	// applications and the delta records they replayed; and replica
	// syncs that had to fall back to a full KB re-download (truncated
	// delta log or a non-replayable record). KBGeneration is the
	// currently published KB generation every new read observes.
	Writes        uint64 `json:"writes"`
	WriteFailures uint64 `json:"write_failures"`
	WriteCommits  uint64 `json:"write_commits"`
	DeltasApplied uint64 `json:"deltas_applied"`
	DeltaNodes    uint64 `json:"delta_nodes"`
	FullReloads   uint64 `json:"full_reloads"`
	KBGeneration  uint64 `json:"kb_generation"`

	// Resilience counters: retries issued and queries whose retry
	// budget ran out; replica quarantines and restorations; and the
	// current serving capacity — HealthyReplicas in the shard ring,
	// with Degraded true while any replica is quarantined.
	Retries          uint64 `json:"retries"`
	RetriesExhausted uint64 `json:"retries_exhausted"`
	Quarantines      uint64 `json:"quarantines"`
	Restores         uint64 `json:"restores"`
	HealthyReplicas  int    `json:"healthy_replicas"`
	Degraded         bool   `json:"degraded"`

	// Interconnect locality counters, summed over every successfully
	// served query's profile: inter-cluster marker activations, the
	// port-to-port hypercube transfers that carried them, and the
	// coalesced same-next-hop send groups those activations rode in.
	// ICNHops/ICNMessages is the served workload's mean hop distance —
	// the figure the partition placement stage drives toward 1.
	ICNMessages uint64 `json:"icn_messages"`
	ICNHops     uint64 `json:"icn_hops"`
	ICNBursts   uint64 `json:"icn_send_bursts"`

	// Per-stage wall-clock latency: assembly+rule compilation, submit
	// queue residency, execution (including collection), and write
	// commits (serialized writer run plus publish).
	Compile   LatencyHist `json:"compile_latency"`
	QueueWait LatencyHist `json:"queue_latency"`
	Run       LatencyHist `json:"run_latency"`
	Write     LatencyHist `json:"write_latency"`

	// Events counts engine-level monitoring events by name.
	Events map[string]uint64 `json:"events,omitempty"`
}

// stats is the engine's mutable counter set. One mutex guards it all:
// every critical section is a handful of integer updates, invisible next
// to a query's execution time.
type stats struct {
	mu sync.Mutex

	replicas int

	submitted, completed, failed, canceled, rejected uint64
	overloaded                                       uint64
	batches, batchedQueries                          uint64
	steals, stolenQueries                            uint64
	fusedBatches, fusedQueries                       uint64
	fusionRejects                                    map[string]uint64
	maxBatch                                         int
	cacheHits, cacheMisses                           uint64
	optPrograms, optInstrs, optPlanes, optFallbacks  uint64
	resultHits, resultMisses, deduped                uint64
	resultGenEvicted                                 uint64
	retries, retriesExhausted                        uint64
	quarantines, restores                            uint64
	icnMessages, icnHops, icnBursts                  uint64
	writes, writeFailures, writeCommits              uint64
	deltasApplied, deltaNodes, fullReloads           uint64

	compileH, queueH, runH, writeH hist

	events map[perfmon.EventCode]uint64
}

func (s *stats) submit() {
	s.mu.Lock()
	s.submitted++
	s.mu.Unlock()
}

func (s *stats) reject() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func (s *stats) cancel() {
	s.mu.Lock()
	s.canceled++
	s.mu.Unlock()
}

func (s *stats) batch(size int) {
	s.mu.Lock()
	s.batches++
	s.batchedQueries += uint64(size)
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.mu.Unlock()
}

func (s *stats) shed() {
	s.mu.Lock()
	s.overloaded++
	s.mu.Unlock()
}

func (s *stats) steal(size int) {
	s.mu.Lock()
	s.steals++
	s.stolenQueries += uint64(size)
	s.mu.Unlock()
}

func (s *stats) cacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

// optimized records one distinct program the optimizer rewrote and
// what the rewrite bought: instructions deleted and planes freed.
func (s *stats) optimized(instrs, planes int) {
	s.mu.Lock()
	s.optPrograms++
	s.optInstrs += uint64(instrs)
	s.optPlanes += uint64(planes)
	s.mu.Unlock()
}

// optFallback records one optimized run discarded by the machine's
// origin-ambiguity detector and re-run unoptimized.
func (s *stats) optFallback() {
	s.mu.Lock()
	s.optFallbacks++
	s.mu.Unlock()
}

func (s *stats) resultHit() {
	s.mu.Lock()
	s.resultHits++
	s.mu.Unlock()
}

func (s *stats) resultMiss() {
	s.mu.Lock()
	s.resultMisses++
	s.mu.Unlock()
}

func (s *stats) dedup() {
	s.mu.Lock()
	s.deduped++
	s.mu.Unlock()
}

func (s *stats) retry() {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}

func (s *stats) retryExhausted() {
	s.mu.Lock()
	s.retriesExhausted++
	s.mu.Unlock()
}

func (s *stats) quarantine() {
	s.mu.Lock()
	s.quarantines++
	s.mu.Unlock()
}

func (s *stats) restore() {
	s.mu.Lock()
	s.restores++
	s.mu.Unlock()
}

// icn accumulates a served query's interconnect traffic profile.
// fusedRun records one fused machine run answering n queries: one run
// latency observation, n completions.
func (s *stats) fusedRun(d time.Duration, n int) {
	s.mu.Lock()
	s.runH.observe(d)
	s.completed += uint64(n)
	s.fusedBatches++
	s.fusedQueries += uint64(n)
	s.mu.Unlock()
}

// fusionReject counts one query kept out of (or dropped from) a fusion
// group, by reason.
func (s *stats) fusionReject(reason string) {
	s.mu.Lock()
	if s.fusionRejects == nil {
		s.fusionRejects = make(map[string]uint64)
	}
	s.fusionRejects[reason]++
	s.mu.Unlock()
}

func (s *stats) icn(messages, hops, bursts int64) {
	s.mu.Lock()
	s.icnMessages += uint64(messages)
	s.icnHops += uint64(hops)
	s.icnBursts += uint64(bursts)
	s.mu.Unlock()
}

// completedCount reads the lifetime completed-query count (drain-rate
// numerator for the Retry-After estimate).
func (s *stats) completedCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

func (s *stats) cacheMiss(d time.Duration) {
	s.mu.Lock()
	s.cacheMisses++
	s.compileH.observe(d)
	s.mu.Unlock()
}

func (s *stats) queueWait(d time.Duration) {
	s.mu.Lock()
	s.queueH.observe(d)
	s.mu.Unlock()
}

func (s *stats) run(d time.Duration, err error) {
	s.mu.Lock()
	s.runH.observe(d)
	if err == nil {
		s.completed++
	} else {
		s.failed++
	}
	s.mu.Unlock()
}

// write records one serialized writer run: its wall-clock latency and
// whether the mutation committed.
func (s *stats) write(d time.Duration, err error) {
	s.mu.Lock()
	s.writeH.observe(d)
	if err == nil {
		s.writes++
	} else {
		s.writeFailures++
	}
	s.mu.Unlock()
}

// commit records one epoch publish (its member writes are counted
// individually by write()).
func (s *stats) commit() {
	s.mu.Lock()
	s.writeCommits++
	s.mu.Unlock()
}

// deltaApplied records one incremental replica sync that replayed n
// delta records.
func (s *stats) deltaApplied(n int) {
	s.mu.Lock()
	s.deltasApplied++
	s.deltaNodes += uint64(n)
	s.mu.Unlock()
}

// fullReload records one replica sync that fell back to a full KB
// re-download.
func (s *stats) fullReload() {
	s.mu.Lock()
	s.fullReloads++
	s.mu.Unlock()
}

// resultGenEvict records n result-cache entries swept by a publish.
func (s *stats) resultGenEvict(n int) {
	s.mu.Lock()
	s.resultGenEvicted += uint64(n)
	s.mu.Unlock()
}

func (s *stats) event(code perfmon.EventCode) {
	s.mu.Lock()
	if s.events == nil {
		s.events = make(map[perfmon.EventCode]uint64)
	}
	s.events[code]++
	s.mu.Unlock()
}

func (s *stats) snapshot(queueDepth, idle, inFlight, resultEntries, healthy int, optEvictions, kbGen uint64) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Replicas:            s.replicas,
		IdleReplicas:        idle,
		QueueDepth:          queueDepth,
		InFlight:            inFlight,
		Submitted:           s.submitted,
		Completed:           s.completed,
		Failed:              s.failed,
		Canceled:            s.canceled,
		Rejected:            s.rejected,
		Overloaded:          s.overloaded,
		Batches:             s.batches,
		BatchedQueries:      s.batchedQueries,
		MaxBatchSize:        s.maxBatch,
		Steals:              s.steals,
		StolenQueries:       s.stolenQueries,
		FusedBatches:        s.fusedBatches,
		FusedQueries:        s.fusedQueries,
		CompileHits:         s.cacheHits,
		CompileMisses:       s.cacheMisses,
		OptPrograms:         s.optPrograms,
		OptInstrsEliminated: s.optInstrs,
		OptPlanesFreed:      s.optPlanes,
		OptFallbacks:        s.optFallbacks,
		ResultHits:          s.resultHits,
		ResultMisses:        s.resultMisses,
		DedupedQueries:      s.deduped,
		ResultCacheSize:     resultEntries,
		ResultGenEvicted:    s.resultGenEvicted,
		OptCacheEvictions:   optEvictions,
		Writes:              s.writes,
		WriteFailures:       s.writeFailures,
		WriteCommits:        s.writeCommits,
		DeltasApplied:       s.deltasApplied,
		DeltaNodes:          s.deltaNodes,
		FullReloads:         s.fullReloads,
		KBGeneration:        kbGen,
		Retries:             s.retries,
		RetriesExhausted:    s.retriesExhausted,
		Quarantines:         s.quarantines,
		Restores:            s.restores,
		ICNMessages:         s.icnMessages,
		ICNHops:             s.icnHops,
		ICNBursts:           s.icnBursts,
		HealthyReplicas:     healthy,
		Degraded:            healthy < s.replicas,
		Compile:             s.compileH.snapshot(),
		QueueWait:           s.queueH.snapshot(),
		Run:                 s.runH.snapshot(),
		Write:               s.writeH.snapshot(),
	}
	if len(s.fusionRejects) > 0 {
		out.FusionRejects = make(map[string]uint64, len(s.fusionRejects))
		for reason, n := range s.fusionRejects {
			out.FusionRejects[reason] = n
		}
	}
	if len(s.events) > 0 {
		out.Events = make(map[string]uint64, len(s.events))
		for code, n := range s.events {
			out.Events[code.String()] = n
		}
	}
	return out
}
