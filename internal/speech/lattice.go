package speech

import (
	"fmt"
	"math/rand"

	"snap1/internal/kbgen"
	"snap1/internal/semnet"
)

// Confuse builds a noisy lattice from a true word sequence: each slot
// holds the true word plus up to MaxAlternatives-1 same-category
// confusions drawn from the lexicon, with randomized acoustic costs —
// confusions are frequently acoustically *better* than the truth, so a
// decoder that trusted acoustics alone would transcribe garbage.
func Confuse(g *kbgen.Generated, words []string, seed int64) (Lattice, error) {
	if len(words) > MaxSlots {
		return nil, fmt.Errorf("speech: %d words exceed %d lattice slots", len(words), MaxSlots)
	}
	rng := rand.New(rand.NewSource(seed))
	cats := lexiconByCategory(g)
	var lat Lattice
	for _, w := range words {
		id, ok := g.KB.Lookup(w)
		if !ok {
			return nil, fmt.Errorf("speech: word %q not in lexicon", w)
		}
		slot := Slot{{Word: w, Acoustic: 0.2 + 0.3*rng.Float32()}}
		// Confusions prefer hand-domain words (readable, semantically
		// plausible) over synthetic filler vocabulary.
		pool := cats[categoryOf(g, id)]
		var domainPool, fillerPool []string
		for _, cand := range pool {
			if cand == w {
				continue
			}
			if len(cand) > 2 && cand[0] == 'w' && cand[1] == '-' {
				fillerPool = append(fillerPool, cand)
			} else {
				domainPool = append(domainPool, cand)
			}
		}
		for _, cand := range append(shuffled(rng, domainPool), shuffled(rng, fillerPool)...) {
			if len(slot) >= MaxAlternatives {
				break
			}
			slot = append(slot, Alternative{Word: cand, Acoustic: 0.25 + 0.5*rng.Float32()})
		}
		lat = append(lat, slot)
	}
	return lat, nil
}

// categoryOf resolves a lexical node's syntactic category node.
func categoryOf(g *kbgen.Generated, word semnet.NodeID) semnet.NodeID {
	node, err := g.KB.Node(word)
	if err != nil {
		return semnet.InvalidNode
	}
	for _, l := range node.Out {
		if l.Rel != g.Rel.IsA {
			continue
		}
		target, err := g.KB.Node(l.To)
		if err != nil {
			continue
		}
		if target.Color == g.Col.Syntax {
			return l.To
		}
	}
	return semnet.InvalidNode
}

// lexiconByCategory groups every lexicon word name by its category node.
func lexiconByCategory(g *kbgen.Generated) map[semnet.NodeID][]string {
	out := make(map[semnet.NodeID][]string)
	for _, w := range g.Words {
		cat := categoryOf(g, w)
		if cat == semnet.InvalidNode {
			continue
		}
		out[cat] = append(out[cat], g.KB.Name(w))
	}
	return out
}

func shuffled(rng *rand.Rand, in []string) []string {
	out := append([]string(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
