// Package speech implements a PASS-style speech understanding workload,
// the second application the paper analyzes ("The PASS speech
// understanding program had β_min = 2.8 and β_max = 6").
//
// The input is a word lattice: for each time slot, several alternative
// word hypotheses with acoustic costs. All alternatives of all slots are
// activated under independent markers — the processing unit overlaps
// their constraint spreads (β-parallelism between competing hypotheses) —
// and the knowledge base's concept sequences rescore the lattice: the
// best-completing sequence selects, per slot, the alternative that
// satisfies its constraints most specifically, which can overturn the
// acoustically preferred word.
package speech

import (
	"fmt"
	"math"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// Capacity of the per-hypothesis marker allocation: three complex markers
// (activation, semantic spread, syntactic spread) per (slot, alternative).
const (
	MaxSlots        = 5
	MaxAlternatives = 3
)

// Alternative is one word hypothesis with its acoustic cost (lower is
// acoustically better).
type Alternative struct {
	Word     string
	Acoustic float32
}

// Slot is the competing hypotheses for one time position.
type Slot []Alternative

// Lattice is the recognizer output to be understood.
type Lattice []Slot

// Result is one decoded lattice.
type Result struct {
	Transcript []string // chosen word per slot
	Winner     string   // completed concept sequence
	Score      float32  // combined acoustic + specificity score

	Time         timing.Time
	Instructions int
	Profile      *trace.Profile
	MeanBeta     float64 // measured overlap across the decode's phases
}

// Marker allocation.
func mWord(i, j int) semnet.MarkerID { return semnet.MarkerID(i*MaxAlternatives + j) }      // 0..14
func mSem(i, j int) semnet.MarkerID  { return semnet.MarkerID(15 + i*MaxAlternatives + j) } // 15..29
func mSyn(i, j int) semnet.MarkerID  { return semnet.MarkerID(30 + i*MaxAlternatives + j) } // 30..44

const (
	mElem   = semnet.MarkerID(45) // merged element activation (min cost)
	mSat    = semnet.MarkerID(46) // gated, scored elements
	mRoot   = semnet.MarkerID(47) // candidate scores (max over elements)
	mFinal  = semnet.MarkerID(48) // complete candidates
	mSlotEx = semnet.MarkerID(49) // per-alternative extraction scratch
)

var (
	bElemK    = func(k int) semnet.MarkerID { return semnet.Binary(k) } // 0..3
	bAllElem  = semnet.Binary(4)
	bSlotTmp  = semnet.Binary(5)
	bSat      = func(i, j int) semnet.MarkerID { return semnet.Binary(8 + i*MaxAlternatives + j) } // 8..22
	bSatElems = semnet.Binary(24)
	bNotAct   = semnet.Binary(25)
	bCand     = semnet.Binary(26)
	bCandEl   = semnet.Binary(27)
	bUnsat    = semnet.Binary(28)
	bCancel   = semnet.Binary(29)
	bOK       = semnet.Binary(30)
	bWin1     = semnet.Binary(31)
	bWinSel   = semnet.Binary(32)
	bWinElems = semnet.Binary(33)
)

// Decoder binds the understanding pipeline to a machine holding a
// generated linguistic knowledge base.
type Decoder struct {
	m *machine.Machine
	g *kbgen.Generated
}

// NewDecoder returns a decoder over m, which must already hold g.KB.
func NewDecoder(m *machine.Machine, g *kbgen.Generated) *Decoder {
	return &Decoder{m: m, g: g}
}

// Decode understands one lattice.
func (d *Decoder) Decode(lat Lattice) (*Result, error) {
	if len(lat) == 0 || len(lat) > MaxSlots {
		return nil, fmt.Errorf("speech: lattice must have 1..%d slots, got %d", MaxSlots, len(lat))
	}
	words := make([][]semnet.NodeID, len(lat))
	for i, slot := range lat {
		if len(slot) == 0 || len(slot) > MaxAlternatives {
			return nil, fmt.Errorf("speech: slot %d has %d alternatives, want 1..%d",
				i, len(slot), MaxAlternatives)
		}
		for _, alt := range slot {
			id, ok := d.g.KB.Lookup(alt.Word)
			if !ok {
				return nil, fmt.Errorf("speech: hypothesis %q not in lexicon", alt.Word)
			}
			words[i] = append(words[i], id)
		}
	}

	res := &Result{Profile: &trace.Profile{}}
	p1 := d.matchProgram(lat, words)
	r1, err := d.m.Run(p1)
	if err != nil {
		return nil, err
	}
	res.accumulate(p1, r1)

	winner, score, ok := bestBasic(d.g, r1.Collected(0))
	if !ok {
		// Nothing completes: fall back to the acoustically best path.
		res.Transcript = acousticBest(lat)
		res.finish()
		return res, nil
	}
	res.Winner = d.g.KB.Name(d.g.KB.Canonical(winner))
	res.Score = score

	// Extraction: mark the winner's elements, then per (slot,
	// alternative) measure how specifically the hypothesis satisfied
	// them; the controller picks each slot's argmin.
	p2 := d.extractProgram(lat, winner)
	r2, err := d.m.Run(p2)
	if err != nil {
		return nil, err
	}
	res.accumulate(p2, r2)
	res.Transcript = d.pickTranscript(lat, r2)
	res.finish()
	return res, nil
}

func (r *Result) accumulate(p *isa.Program, run *machine.Result) {
	r.Time += run.Time
	r.Instructions += p.Len()
	r.Profile.Merge(run.Profile)
}

func (r *Result) finish() {
	if n := len(r.Profile.PhaseBetas); n > 0 {
		sum := 0
		for _, b := range r.Profile.PhaseBetas {
			sum += b
		}
		r.MeanBeta = float64(sum) / float64(n)
	}
}

// matchProgram activates every hypothesis with its acoustic cost as the
// marker's starting value, spreads constraints, gates by slot order, and
// scores candidate sequences: acoustic and semantic costs accumulate in
// the same complex-marker value.
func (d *Decoder) matchProgram(lat Lattice, words [][]semnet.NodeID) *isa.Program {
	g := d.g
	pr := isa.NewProgram()

	for i := range lat {
		for j := range lat[i] {
			pr.ClearM(mWord(i, j))
			pr.ClearM(mSem(i, j))
			pr.ClearM(mSyn(i, j))
			pr.ClearM(bSat(i, j))
		}
	}
	for _, m := range []semnet.MarkerID{
		mElem, mSat, mRoot, mFinal, mSlotEx,
		bElemK(0), bElemK(1), bElemK(2), bElemK(3), bAllElem, bSlotTmp,
		bSatElems, bNotAct, bCand, bCandEl, bUnsat, bCancel, bOK, bWin1,
		bWinSel, bWinElems,
	} {
		pr.ClearM(m)
	}

	// Hypothesis activation: the SEARCH value seeds the marker with the
	// acoustic cost, so constraint spread adds semantic distance on top.
	for i := range lat {
		for j, alt := range lat[i] {
			pr.SearchNode(words[i][j], mWord(i, j), alt.Acoustic)
		}
	}
	semRule := rules.Spread(g.Rel.IsA, g.Rel.SemOf)
	synRule := rules.Spread(g.Rel.IsA, g.Rel.SynOf)
	for i := range lat {
		for j := range lat[i] {
			pr.Propagate(mWord(i, j), mSem(i, j), semRule, semnet.FuncAdd)
			pr.Propagate(mWord(i, j), mSyn(i, j), synRule, semnet.FuncAdd)
		}
	}

	// Element masks and per-hypothesis strict satisfaction.
	for k := 0; k < kbgen.MaxSeqElements; k++ {
		pr.SearchColor(g.Col.Element[k], bElemK(k), 0)
	}
	pr.Or(bElemK(0), bElemK(1), bAllElem, semnet.FuncNop)
	pr.Or(bAllElem, bElemK(2), bAllElem, semnet.FuncNop)
	pr.Or(bAllElem, bElemK(3), bAllElem, semnet.FuncNop)
	for i := range lat {
		for j := range lat[i] {
			pr.And(mSem(i, j), mSyn(i, j), bSat(i, j), semnet.FuncNop)
		}
	}

	// Slot-order gating: element slot k accepts hypotheses from lattice
	// slot i >= k.
	for k := 0; k < kbgen.MaxSeqElements && k < len(lat); k++ {
		for i := k; i < len(lat); i++ {
			for j := range lat[i] {
				pr.And(bSat(i, j), bElemK(k), bSlotTmp, semnet.FuncNop)
				pr.Or(bSatElems, bSlotTmp, bSatElems, semnet.FuncNop)
			}
		}
	}

	// Combined scores: the cheapest (acoustic + semantic) hypothesis per
	// element survives the min-merge.
	first := true
	for i := range lat {
		for j := range lat[i] {
			if first {
				pr.Or(mSem(i, j), mSem(i, j), mElem, semnet.FuncMin)
				first = false
				continue
			}
			pr.Or(mElem, mSem(i, j), mElem, semnet.FuncMin)
		}
	}
	pr.And(mElem, bSatElems, mSat, semnet.FuncMax)

	// Candidates scored by their hardest element; incomplete candidates
	// cancelled exactly as in the text parser.
	pr.Propagate(mSat, mRoot, rules.Path(g.Rel.ElemOf), semnet.FuncMax)
	pr.And(mRoot, mRoot, bCand, semnet.FuncNop)
	pr.Propagate(bCand, bCandEl, rules.Path(g.Rel.Elem), semnet.FuncNop)
	pr.Not(bSatElems, bNotAct, 0, isa.CondNone)
	pr.And(bCandEl, bNotAct, bUnsat, semnet.FuncNop)
	pr.Propagate(bUnsat, bCancel, rules.Path(g.Rel.ElemOf), semnet.FuncNop)
	pr.Not(bCancel, bOK, 0, isa.CondNone)
	pr.And(bCand, bOK, bWin1, semnet.FuncNop)
	pr.And(mRoot, bWin1, mFinal, semnet.FuncMax)
	pr.CollectNode(mFinal)
	return pr
}

// extractProgram marks the winning sequence's elements and collects, per
// hypothesis, its satisfaction scores over the element whose slot index
// matches the hypothesis's lattice slot — an agent hypothesis cannot
// claim the target element.
func (d *Decoder) extractProgram(lat Lattice, winner semnet.NodeID) *isa.Program {
	g := d.g
	pr := isa.NewProgram()
	pr.ClearM(bWinSel)
	pr.ClearM(bWinElems)
	pr.SearchNode(winner, bWinSel, 0)
	pr.Propagate(bWinSel, bWinElems, rules.Step(g.Rel.Elem), semnet.FuncNop)
	for i := range lat {
		k := i
		if k >= kbgen.MaxSeqElements {
			k = kbgen.MaxSeqElements - 1
		}
		pr.ClearM(bSlotTmp)
		pr.And(bWinElems, bElemK(k), bSlotTmp, semnet.FuncNop)
		for j := range lat[i] {
			pr.ClearM(mSlotEx)
			pr.And(mSem(i, j), bSlotTmp, mSlotEx, semnet.FuncMax)
			pr.CollectNode(mSlotEx)
		}
	}
	return pr
}

// pickTranscript chooses each slot's alternative: the hypothesis whose
// best satisfaction score over the winner's elements is lowest, falling
// back to acoustics when no alternative touches the winner.
func (d *Decoder) pickTranscript(lat Lattice, run *machine.Result) []string {
	out := make([]string, len(lat))
	coll := 0
	for i, slot := range lat {
		best := float32(math.Inf(1))
		bestJ := -1
		for j := range slot {
			items := run.Collected(coll)
			coll++
			for _, it := range items {
				if it.Value < best {
					best, bestJ = it.Value, j
				}
			}
		}
		if bestJ < 0 {
			bestJ = acousticArgmin(slot)
		}
		out[i] = slot[bestJ].Word
	}
	return out
}

func acousticArgmin(slot Slot) int {
	best := 0
	for j := 1; j < len(slot); j++ {
		if slot[j].Acoustic < slot[best].Acoustic {
			best = j
		}
	}
	return best
}

func acousticBest(lat Lattice) []string {
	out := make([]string, len(lat))
	for i, slot := range lat {
		out[i] = slot[acousticArgmin(slot)].Word
	}
	return out
}

// bestBasic picks the lowest-scoring complete basic candidate.
func bestBasic(g *kbgen.Generated, items []machine.Item) (semnet.NodeID, float32, bool) {
	best := float32(math.Inf(1))
	var node semnet.NodeID
	found := false
	for _, it := range items {
		if it.Color != g.Col.Root {
			continue
		}
		if !found || it.Value < best || (it.Value == best && it.Node < node) {
			best, node, found = it.Value, it.Node, true
		}
	}
	return node, best, found
}
