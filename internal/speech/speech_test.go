package speech

import (
	"testing"

	"snap1/internal/kbgen"
	"snap1/internal/machine"
)

func newDecoder(t *testing.T, nodes int) (*Decoder, *kbgen.Generated) {
	t.Helper()
	g, err := kbgen.Generate(kbgen.Params{Nodes: nodes, Seed: 42, WithDomain: true})
	if err != nil {
		t.Fatal(err)
	}
	g.KB.Preprocess()
	cfg := machine.PaperConfig()
	cfg.Deterministic = true
	if need := (g.KB.NumNodes() + cfg.Clusters - 1) / cfg.Clusters; need > cfg.NodesPerCluster {
		cfg.NodesPerCluster = need
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(g.KB); err != nil {
		t.Fatal(err)
	}
	return NewDecoder(m, g), g
}

// The headline behaviour: an acoustically preferred wrong hypothesis is
// overturned by semantic constraints.
func TestSemanticsOverturnAcoustics(t *testing.T) {
	d, _ := newDecoder(t, 2000)
	lat := Lattice{
		{{Word: "guerrillas", Acoustic: 0.4}},
		{{Word: "mayor", Acoustic: 0.1}, {Word: "bombed", Acoustic: 0.6}}, // acoustics prefer "mayor"
		{{Word: "embassy", Acoustic: 0.3}, {Word: "office", Acoustic: 0.45}},
	}
	res, err := d.Decode(lat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "bombing-event" {
		t.Fatalf("winner = %q, want bombing-event", res.Winner)
	}
	want := []string{"guerrillas", "bombed", "embassy"}
	for i, w := range want {
		if res.Transcript[i] != w {
			t.Fatalf("transcript = %v, want %v", res.Transcript, want)
		}
	}
	if res.Time <= 0 || res.Instructions == 0 {
		t.Error("missing measurements")
	}
}

// With no semantic help, the decoder must fall back to acoustics.
func TestAcousticFallback(t *testing.T) {
	d, _ := newDecoder(t, 1000)
	lat := Lattice{
		{{Word: "the", Acoustic: 0.5}, {Word: "a", Acoustic: 0.2}},
		{{Word: "of", Acoustic: 0.3}, {Word: "in", Acoustic: 0.6}},
	}
	res, err := d.Decode(lat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "" {
		t.Fatalf("function words must not complete a sequence, got %q", res.Winner)
	}
	want := []string{"a", "of"}
	for i, w := range want {
		if res.Transcript[i] != w {
			t.Fatalf("fallback transcript = %v, want %v", res.Transcript, want)
		}
	}
}

// Competing hypotheses must overlap in the issue window: the decode's
// mean β must land in the multi-statement range the paper measured for
// PASS (β_min 2.8, β_max 6 — ours is bounded by the window drain points).
func TestHypothesesOverlap(t *testing.T) {
	d, _ := newDecoder(t, 2000)
	lat := Lattice{
		{{Word: "guerrillas", Acoustic: 0.4}, {Word: "police", Acoustic: 0.5}, {Word: "terrorists", Acoustic: 0.6}},
		{{Word: "bombed", Acoustic: 0.4}, {Word: "attacked", Acoustic: 0.5}, {Word: "killed", Acoustic: 0.6}},
		{{Word: "embassy", Acoustic: 0.4}, {Word: "home", Acoustic: 0.5}, {Word: "office", Acoustic: 0.6}},
	}
	res, err := d.Decode(lat)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBeta < 2 {
		t.Errorf("mean β = %.2f, hypothesis spreads did not overlap", res.MeanBeta)
	}
	if res.Winner == "" {
		t.Error("a fully sensible lattice must complete a sequence")
	}
}

func TestDecodeErrors(t *testing.T) {
	d, _ := newDecoder(t, 1000)
	if _, err := d.Decode(nil); err == nil {
		t.Error("empty lattice")
	}
	if _, err := d.Decode(Lattice{{}}); err == nil {
		t.Error("empty slot")
	}
	if _, err := d.Decode(Lattice{{{Word: "zxqj", Acoustic: 1}}}); err == nil {
		t.Error("unknown word")
	}
	big := make(Lattice, MaxSlots+1)
	for i := range big {
		big[i] = Slot{{Word: "the", Acoustic: 1}}
	}
	if _, err := d.Decode(big); err == nil {
		t.Error("too many slots")
	}
	wide := Lattice{make(Slot, MaxAlternatives+1)}
	for j := range wide[0] {
		wide[0][j] = Alternative{Word: "the", Acoustic: 1}
	}
	if _, err := d.Decode(wide); err == nil {
		t.Error("too many alternatives")
	}
}

func TestConfuseLattice(t *testing.T) {
	d, g := newDecoder(t, 2000)
	lat, err := Confuse(g, []string{"terrorists", "attacked", "embassy"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 3 {
		t.Fatalf("%d slots", len(lat))
	}
	for i, slot := range lat {
		if slot[0].Word != []string{"terrorists", "attacked", "embassy"}[i] {
			t.Fatalf("slot %d truth missing: %+v", i, slot)
		}
		if len(slot) < 2 {
			t.Errorf("slot %d has no confusions", i)
		}
	}
	if _, err := Confuse(g, []string{"zxqj"}, 1); err == nil {
		t.Error("unknown truth word")
	}
	if _, err := Confuse(g, make([]string, MaxSlots+1), 1); err == nil {
		t.Error("too many words")
	}
	// The decoder must handle generated lattices end to end.
	res, err := d.Decode(lat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcript) != 3 {
		t.Fatal("transcript length")
	}
}
