//go:build race

package machine

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it because the detector
// itself allocates shadow state on hot paths.
const raceEnabled = true
