package machine

import (
	"context"
	"errors"
	"math/bits"
	"sync/atomic"

	"snap1/internal/isa"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Fused-run support: executing an isa.Fused program (N renamed queries
// in one machine run) with two extra behaviors over a plain RunContext:
//
//   - Origin-tie detection. Fused scheduling perturbs task order, and
//     while final marker bits and values are order-free (the merge
//     functions are commutative/associative/idempotent), the origin
//     register of a complex marker records the source of the first
//     task delivering the final value — which is ambiguous when two
//     distinct-origin final contributions tie. The store-update path
//     detects exactly that tie during fused runs and the run fails
//     with ErrFusionAmbiguous so the caller can fall back to solo
//     dispatch. (Fuse already rejects the non-strict apply functions
//     for which the tie is undetectable.)
//
//   - Wide (plane-vectorized) execution. Clone PROPAGATEs from a
//     fused plane group — same rule FSM, same function, bit-equal
//     source rows — are executed by ONE task stream with a value lane
//     per member query: one task switch, one status-word access, one
//     relation-table walk and one queue operation serve all member
//     planes, which is the paper's 128-bit status word doing all
//     marker planes in a single access. Per-lane visit slots and
//     store updates keep each lane's delivery set identical to its
//     solo run; a lane whose parent delivery did not improve drops
//     out of the child mask. Wide execution runs only on the lockstep
//     engine with no fault injector armed; otherwise the fused
//     program executes scalar (same final state, different virtual
//     time attribution).

// ErrFusionAmbiguous reports that a fused run observed an equal-value,
// distinct-origin marker delivery tie — the one observable difference
// fused scheduling could introduce. The run's results are discarded and
// the caller re-runs the queries unfused.
var ErrFusionAmbiguous = errors.New("machine: fused run hit origin-ambiguous value tie")

// fusedRun is the per-RunFused context consulted by the store-update
// and flush paths.
type fusedRun struct {
	f       *isa.Fused
	groupOf []int16 // per fused instruction: plane-group index, -1 none
	amb     atomic.Bool
}

// maxWideLanes bounds a wide group's lane count to the task mask width.
const maxWideLanes = 16

// RunFused executes a fused program. On success the result is the
// fused run's (demultiplexing to per-query results is the caller's
// job, via f.InstrOf on each Collection.Instr). ErrFusionAmbiguous
// means the run detected an origin tie; any other error is as for
// RunContext.
func (m *Machine) RunFused(ctx context.Context, f *isa.Fused) (*Result, error) {
	fc := &fusedRun{f: f, groupOf: make([]int16, len(f.Program.Instrs))}
	for i := range fc.groupOf {
		fc.groupOf[i] = -1
	}
	for gi, g := range f.Groups {
		if len(g.Instrs) > maxWideLanes {
			continue // too wide for the task mask; runs scalar
		}
		for _, idx := range g.Instrs {
			fc.groupOf[idx] = int16(gi)
		}
	}
	m.fusedCtx = fc
	res, err := m.RunContext(ctx, f.Program)
	m.fusedCtx = nil
	m.widePlans = nil
	if err != nil {
		return nil, err
	}
	if fc.amb.Load() {
		return nil, ErrFusionAmbiguous
	}
	return res, nil
}

// laneVal is one wide lane's value/origin pair; a wide task's K lanes
// live as a contiguous block in the owning cluster's arena.
type laneVal struct {
	value  float32
	origin semnet.NodeID
}

// widePlan is one plane group scheduled wide in the current flush.
type widePlan struct {
	entries []batchEntry // the K member PROPAGATEs, lane order
	m2      []semnet.MarkerID
	rule    rules.Token
	fn      semnet.FuncCode
}

// planWide splits the overlap window into wide plans and a scalar
// remainder. A plane group goes wide only when every member is in this
// window, its source rows are bit-equal on every cluster (clone inputs
// verified at run time, not assumed), and its lane count fits the task
// mask. Everything else stays in the scalar entry list unchanged.
func (m *Machine) planWide(batch []batchEntry, fc *fusedRun) (scalar []batchEntry, plans []widePlan) {
	var members map[int16][]batchEntry
	for _, e := range batch {
		if g := fc.groupOf[e.idx]; g >= 0 {
			if members == nil {
				members = make(map[int16][]batchEntry)
			}
			members[g] = append(members[g], e)
		}
	}
	if members == nil {
		return batch, nil
	}
	wide := make(map[int16]bool, len(members))
	for g, es := range members {
		if len(es) != len(fc.f.Groups[g].Instrs) || len(es) < 2 {
			continue // group split across windows: scalar
		}
		equal := true
	verify:
		for k := 1; k < len(es); k++ {
			for _, c := range m.clusters {
				if !c.store.RowsEqual(es[0].in.M1, es[k].in.M1) {
					equal = false
					break verify
				}
			}
		}
		if !equal {
			continue
		}
		wide[g] = true
		p := widePlan{
			entries: es,
			m2:      make([]semnet.MarkerID, len(es)),
			rule:    es[0].in.Rule,
			fn:      es[0].in.Fn,
		}
		for k, e := range es {
			p.m2[k] = e.in.M2
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return batch, nil
	}
	scalar = batch[:0] // safe: keeps surviving entries in order
	for _, e := range batch {
		if g := fc.groupOf[e.idx]; g < 0 || !wide[g] {
			scalar = append(scalar, e)
		}
	}
	return scalar, plans
}

// injectWideSources scans each wide plan's shared source row once per
// cluster and queues wide source tasks: one task per source node with a
// lane per member query. The PU still decodes every member instruction,
// but the status-table scan is charged once — the per-node status word
// holds all member planes, so one access reads every lane's frontier.
func (c *cluster) injectWideSources(m *Machine, plans []widePlan) {
	for pi := range plans {
		p := &plans[pi]
		K := len(p.entries)
		var ready timing.Time
		for _, e := range p.entries {
			if r := c.decode(m, e.bAt); r > ready {
				ready = r
			}
		}
		scanCost := m.cost.PECost(m.cost.StatusWordCycles * int64(c.store.Words()))
		scanEnd := c.muRun(ready, scanCost)
		valRows := make([][]float32, K)
		for k, e := range p.entries {
			valRows[k] = c.store.ValueRow(e.in.M1) // nil for binary rows
		}
		globals := c.store.Globals()
		fullMask := uint16(1)<<K - 1
		for w, word := range c.store.StatusRow(p.entries[0].in.M1) {
			if word == 0 {
				continue
			}
			base := w * semnet.HostWordBits
			if bits.OnesCount64(word) >= denseSweepBits {
				for b := 0; word != 0; b, word = b+1, word>>1 {
					if word&1 != 0 {
						c.pushWideSource(int16(pi), p, base+b, valRows, globals, scanEnd, fullMask)
					}
				}
			} else {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << uint(b)
					c.pushWideSource(int16(pi), p, base+b, valRows, globals, scanEnd, fullMask)
				}
			}
		}
	}
}

func (c *cluster) pushWideSource(pi int16, p *widePlan, local int, valRows [][]float32, globals []semnet.NodeID, ready timing.Time, mask uint16) {
	off := int32(len(c.wideVals))
	for k := range p.entries {
		var v float32
		if valRows[k] != nil {
			v = valRows[k][local]
		}
		c.wideVals = append(c.wideVals, laneVal{value: v, origin: globals[local]})
	}
	c.pushSourceTask(task{
		local:    int32(local),
		rule:     p.rule,
		fn:       p.fn,
		ready:    ready,
		isSource: true,
		mask:     mask,
		wideGrp:  pi,
		wideIdx:  off,
	})
	c.stats.sources += int64(len(p.entries))
}

// expandWide is expand for a wide task: per-lane visit bookkeeping and
// store updates (bit-identical per lane to the scalar run), one shared
// relation-table walk, and the marker-unit cost of ONE scalar task —
// the status word and the per-plane marker units process every lane in
// the same access. It returns the shared children, the surviving lane
// mask (a lane whose delivery did not improve drops out), and the cost.
func (c *cluster) expandWide(m *Machine, t task) (children []childSpec, mask uint16, cost timing.Time) {
	children = c.childScratch[:0]
	p := &m.widePlans[t.wideGrp]
	K := len(p.entries)
	cm := &m.cost
	cycles := cm.TaskSwitchCycles
	rule := m.curRules.Rule(t.rule)
	mask = t.mask

	// Copy the lane block out of the arena: child appends below may
	// grow (reallocate) the arena, and the parent block is consumed by
	// this expansion anyway.
	var laneBuf [maxWideLanes]laneVal
	lanes := laneBuf[:K]
	copy(lanes, c.wideVals[t.wideIdx:int(t.wideIdx)+K])

	if !t.isSource {
		cycles += cm.StatusWordCycles // one RMW covers all lanes' planes
		var live uint16
		for k := 0; k < K; k++ {
			if mask&(1<<k) == 0 {
				continue
			}
			lv := &lanes[k]
			mk := p.m2[k]
			keep := true
			value := lv.value
			slot := c.visited.slot(packVisitKey(mk, t.rule, t.state), int(t.local))
			if slot.epoch == c.visited.epoch {
				merged := t.fn.Merge(slot.val, lv.value)
				if merged == slot.val {
					keep = false
				} else {
					slot.val = merged
					value = merged
				}
			} else {
				slot.epoch = c.visited.epoch
				slot.val = lv.value
			}

			newly := c.store.Set(int(t.local), mk)
			if mk.IsComplex() {
				if newly {
					c.store.SetValue(int(t.local), mk, value, lv.origin)
				} else {
					old := c.store.Value(int(t.local), mk)
					merged := t.fn.Merge(old, value)
					if merged != old {
						c.store.SetValue(int(t.local), mk, merged, lv.origin)
					} else if value == old && c.store.Origin(int(t.local), mk) != lv.origin {
						m.fusedCtx.amb.Store(true)
					}
				}
			}
			if keep {
				lv.value = value
				live |= 1 << k
			}
		}
		mask = live
	}

	if mask != 0 && int(t.level) >= m.cfg.MaxDepth {
		c.stats.dropDepth += int64(bits.OnesCount16(mask))
		mask = 0
	}
	if mask != 0 && rule != nil && !rule.Terminal(t.state) {
		links := c.store.Links(int(t.local))
		cycles += cm.RelSlotCycles * int64(len(links))
		for _, l := range links {
			if l.Rel == semnet.RelCont {
				off := int32(len(c.wideVals))
				c.wideVals = append(c.wideVals, lanes...)
				children = append(children, childSpec{to: l.To, state: t.state, level: t.level, wideOff: off})
				cycles += cm.ContHopCycles
				continue
			}
			next, follow := rule.Next(t.state, l.Rel)
			if !follow {
				continue
			}
			off := int32(len(c.wideVals))
			for k := 0; k < K; k++ {
				c.wideVals = append(c.wideVals, laneVal{
					value:  t.fn.Apply(lanes[k].value, l.Weight),
					origin: lanes[k].origin,
				})
			}
			children = append(children, childSpec{to: l.To, state: next, level: t.level + 1, wideOff: off})
			cycles += cm.PropUpdateCycles
		}
		c.stats.steps += int64(len(children))
	}
	c.childScratch = children
	return children, mask, cm.PECost(cycles)
}

// lockstepWideTask processes one wide task on the lockstep engine:
// local children push as wide tasks; a remote child crosses the ICN as
// ONE multi-plane activation (its lane block copied into the receiving
// cluster's arena) with a single send/hop/message charge. Wide runs
// never have a fault injector armed — planWide gates on that — so no
// fault decisions are drawn here.
func (m *Machine) lockstepWideTask(c *cluster, t task, perLevel *[]int64, total *int64) {
	children, mask, cost := c.expandWide(m, t)
	end := c.muRun(t.ready, cost)
	if mask == 0 || len(children) == 0 {
		return
	}
	K := len(m.widePlans[t.wideGrp].entries)
	asm := m.cost.PECost(m.cost.MsgAssembleCycles)
	prevNext := -1
	for _, ch := range children {
		dest := m.assign[ch.to]
		if dest == c.id {
			c.pushTask(task{
				local:   m.localIdx[ch.to],
				rule:    t.rule,
				state:   ch.state,
				fn:      t.fn,
				level:   ch.level,
				ready:   end,
				mask:    mask,
				wideGrp: t.wideGrp,
				wideIdx: ch.wideOff,
			})
			continue
		}
		cuCycles := m.cost.MsgAssembleCycles + m.cost.MailboxEnqueueCycles + m.cost.ArbiterGrantCycles
		sendEnd := c.cuRun(end, m.cost.PECost(cuCycles))
		hops := m.net.Hops(c.id, dest)
		transit := timing.Time(hops)*m.cost.HopLatency + timing.Time(hops-1)*asm
		dc := m.clusters[dest]

		c.stats.sends++
		c.destSends[dest]++
		c.stats.hops += int64(hops)
		if next := m.net.NextHop(c.id, dest); next != prevNext {
			c.stats.bursts++
			prevNext = next
		}
		c.stats.comm += m.cost.PECost(cuCycles) + transit + asm
		*total++
		for len(*perLevel) <= int(ch.level) {
			*perLevel = append(*perLevel, 0)
		}
		(*perLevel)[ch.level]++

		off := int32(len(dc.wideVals))
		dc.wideVals = append(dc.wideVals, c.wideVals[ch.wideOff:int(ch.wideOff)+K]...)
		ready := dc.cuRun(sendEnd+transit, asm)
		dc.pushTask(task{
			local:   m.localIdx[ch.to],
			rule:    t.rule,
			state:   ch.state,
			fn:      t.fn,
			level:   ch.level,
			ready:   ready,
			mask:    mask,
			wideGrp: t.wideGrp,
			wideIdx: off,
		})
	}
}

// Demux splits a fused run's result into per-query results. Every
// member reports the fused run's end time and shares its profile: the
// batch was one physical machine run, and attributing fractions of it
// below run granularity would fabricate precision the hardware model
// doesn't have. Collections are re-indexed onto each query's own
// instruction stream, so Collected(i) means the same thing it does on
// a solo result.
func (r *Result) Demux(f *isa.Fused) []*Result {
	out := make([]*Result, f.Queries)
	for q := range out {
		out[q] = &Result{Time: r.Time, Profile: r.Profile, Fused: true, KBGen: r.KBGen, kb: r.kb}
	}
	for _, col := range r.Collections {
		o := f.InstrOf(col.Instr)
		out[o.Query].Collections = append(out[o.Query].Collections, Collection{
			Instr: o.Index, Op: col.Op, Items: col.Items,
		})
	}
	return out
}
