package machine

import (
	"context"
	"fmt"
	"time"

	"snap1/internal/fault"
	"snap1/internal/icn"
	"snap1/internal/perfmon"
)

// SetFaultInjector arms deterministic fault injection on this machine's
// simulated hardware: ICN message drop/duplication/delay, multiport-
// memory arbiter stalls, and whole-run wedges/slowdowns (nil disarms).
// Injection decisions are drawn from the injector's seeded streams, so a
// lockstep (Deterministic) run under a plan is bit-reproducible.
//
// The ICN hooks keep the tiered-barrier accounting balanced: a dropped
// message is acknowledged as consumed (the CU's integrity check detects
// the loss), a duplicate is announced as created before it becomes
// visible, and the duplicate's receiver is woken. Any run whose ICN
// traffic was corrupted fails with an error wrapping fault.ErrInjected
// rather than returning silently wrong markers.
//
// Must be called while the machine is idle (no run in progress).
func (m *Machine) SetFaultInjector(inj *fault.Injector) {
	m.inj = inj
	if inj == nil {
		m.net.SetFaultInjector(nil, icn.FaultHooks{})
		for _, c := range m.clusters {
			c.arb.SetFaultInjector(nil)
		}
		return
	}
	if mon := m.cfg.Monitor; mon != nil {
		// Timestamp 0: the controller clock is not safe to read from
		// concurrent-phase workers; the collector's per-PE serial-link
		// serialization keeps arrival order deterministic regardless.
		inj.SetHook(func(site fault.Site) {
			mon.Emit(-1, perfmon.EvFaultInjected, uint32(site), 0)
		})
	}
	m.net.SetFaultInjector(inj, icn.FaultHooks{
		Created: func(lvl uint16) { m.bar.Created(int(lvl)) },
		Dropped: func(lvl uint16) { m.bar.Consumed(int(lvl)) },
		Wake:    func(cl int) { m.bar.Wake(cl) },
	})
	for _, c := range m.clusters {
		c.arb.SetFaultInjector(inj)
	}
}

// FaultInjector returns the armed injector (nil when faults are off).
func (m *Machine) FaultInjector() *fault.Injector { return m.inj }

// injectRunFaults applies whole-run fault decisions at run entry: a
// wedge holds the machine unresponsive until the caller's deadline; a
// slowdown stalls the response in host time.
func (m *Machine) injectRunFaults(ctx context.Context) error {
	inj := m.inj
	if inj == nil {
		return nil
	}
	if inj.WedgeRun() {
		<-ctx.Done()
		return ctx.Err()
	}
	if d := inj.SlowRun(); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return nil
}

// poisonIfCorrupted fails a completed run whose ICN traffic suffered
// corrupting injections since the given snapshot; the error is
// retryable, and an unfaulted re-run returns the bit-identical result.
func (m *Machine) poisonIfCorrupted(before int64) error {
	if m.inj == nil {
		return nil
	}
	if n := m.inj.Corrupting() - before; n > 0 {
		return fmt.Errorf("machine: %d ICN message(s) corrupted during run: %w", n, fault.ErrInjected)
	}
	return nil
}
