package machine

import (
	"strings"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// gridKB builds a small two-color network for opcode tests.
func gridKB(t *testing.T) (*semnet.KB, map[string]semnet.NodeID) {
	t.Helper()
	kb := semnet.NewKB()
	red, blue := kb.ColorFor("red"), kb.ColorFor("blue")
	rel := kb.Relation("r")
	ids := make(map[string]semnet.NodeID)
	for i, name := range []string{"r0", "r1", "r2", "b0", "b1"} {
		color := red
		if strings.HasPrefix(name, "b") {
			color = blue
		}
		ids[name] = kb.MustAddNode(name, color)
		_ = i
	}
	kb.MustAddLink(ids["r0"], rel, 1, ids["b0"])
	kb.MustAddLink(ids["r1"], rel, 2, ids["b1"])
	return kb, ids
}

func gridMachine(t *testing.T, det bool) (*Machine, *semnet.KB, map[string]semnet.NodeID) {
	t.Helper()
	kb, ids := gridKB(t)
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 8
	cfg.Deterministic = det
	cfg.Partition = partition.RoundRobin
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	return m, kb, ids
}

func TestSearchColorAndCollectColor(t *testing.T) {
	m, _, _ := gridMachine(t, true)
	p := isa.NewProgram()
	b := semnet.Binary(0)
	p.SearchColor(1, b, 0) // "blue" interned second => color 1
	p.CollectColor(b)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	items := res.Collected(0)
	if len(items) != 2 {
		t.Fatalf("collected %d blue nodes, want 2", len(items))
	}
	for _, it := range items {
		if it.Color != 1 {
			t.Errorf("item color %d", it.Color)
		}
	}
}

func TestSearchRelationAndCollectRelation(t *testing.T) {
	m, kb, ids := gridMachine(t, true)
	rel := kb.Relation("r")
	p := isa.NewProgram()
	b := semnet.Binary(1)
	p.SearchRelation(rel, b, 0)
	p.CollectRelation(b, rel)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MarkerCount(b); got != 2 {
		t.Fatalf("SEARCH-RELATION marked %d nodes, want 2 (r0, r1)", got)
	}
	items := res.Collected(0)
	if len(items) != 2 {
		t.Fatalf("COLLECT-RELATION returned %d rows", len(items))
	}
	for _, it := range items {
		if it.Rel != rel {
			t.Error("wrong relation in row")
		}
		if it.Node == ids["r0"] && (it.To != ids["b0"] || it.Weight != 1) {
			t.Errorf("row %+v", it)
		}
	}
}

func TestCreateDeleteSetColor(t *testing.T) {
	m, kb, ids := gridMachine(t, true)
	rel := kb.Relation("r")
	p := isa.NewProgram()
	p.Create(ids["r2"], rel, 0.5, ids["b1"])
	p.SetColor(ids["r2"], 7)
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	links := m.LinksOf(ids["r2"])
	if len(links) != 1 || links[0].To != ids["b1"] || links[0].Weight != 0.5 {
		t.Fatalf("CREATE result %+v", links)
	}
	p2 := isa.NewProgram()
	p2.Delete(ids["r2"], rel, ids["b1"])
	if _, err := m.Run(p2); err != nil {
		t.Fatal(err)
	}
	if len(m.LinksOf(ids["r2"])) != 0 {
		t.Fatal("DELETE left the link")
	}
	node, _ := kb.Node(ids["r2"])
	if node.Color != 7 {
		t.Fatal("SET-COLOR not mirrored to the logical KB")
	}
}

func TestMarkerCreateDeleteWithReverse(t *testing.T) {
	m, kb, ids := gridMachine(t, true)
	fwd, rev := kb.Relation("instance-of"), kb.Relation("has-instance")
	b := semnet.Binary(2)
	p := isa.NewProgram()
	p.SearchNode(ids["r0"], b, 0)
	p.SearchNode(ids["r1"], b, 0)
	p.MarkerCreate(b, fwd, ids["b0"], rev, true)
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(m.LinksOf(ids["r0"])) != 2 { // original r link + instance-of
		t.Fatalf("forward link missing: %+v", m.LinksOf(ids["r0"]))
	}
	revLinks := 0
	for _, l := range m.LinksOf(ids["b0"]) {
		if l.Rel == rev {
			revLinks++
		}
	}
	if revLinks != 2 {
		t.Fatalf("reverse links = %d, want 2", revLinks)
	}
	p2 := isa.NewProgram()
	p2.MarkerDelete(b, fwd, ids["b0"], rev, true)
	if _, err := m.Run(p2); err != nil {
		t.Fatal(err)
	}
	if len(m.LinksOf(ids["r0"])) != 1 || len(m.LinksOf(ids["b0"])) != 0 {
		t.Fatal("MARKER-DELETE did not reverse MARKER-CREATE")
	}
}

func TestMarkerSetColor(t *testing.T) {
	m, _, ids := gridMachine(t, true)
	b := semnet.Binary(3)
	p := isa.NewProgram()
	p.SearchNode(ids["b0"], b, 0)
	p.MarkerSetColor(b, 9)
	p.CollectColor(b)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collected(0)[0].Color != 9 {
		t.Fatal("MARKER-SET-COLOR")
	}
}

func TestNotMarkerConditional(t *testing.T) {
	m, _, ids := gridMachine(t, true)
	c0, b := semnet.MarkerID(0), semnet.Binary(4)
	p := isa.NewProgram()
	p.SearchNode(ids["r0"], c0, 1)
	p.SearchNode(ids["r1"], c0, 5)
	// b := NOT (c0 set AND value <= 2): marks everything except r0.
	p.Not(c0, b, 2, isa.CondLE)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if m.TestMarker(ids["r0"], b) {
		t.Error("r0 satisfies the condition and must be excluded")
	}
	if !m.TestMarker(ids["r1"], b) {
		t.Error("r1 fails the condition and must be set")
	}
	if !m.TestMarker(ids["b0"], b) {
		t.Error("unmarked nodes must be set")
	}
}

func TestSetFuncClear(t *testing.T) {
	m, _, ids := gridMachine(t, true)
	c := semnet.MarkerID(5)
	p := isa.NewProgram()
	p.Set(c, 2)
	p.Func(c, semnet.FuncMul, 3)
	p.CollectNode(c)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	items := res.Collected(0)
	if len(items) != 5 {
		t.Fatalf("SET-MARKER reached %d nodes", len(items))
	}
	for _, it := range items {
		if it.Value != 6 {
			t.Fatalf("FUNC-MARKER value %v, want 6", it.Value)
		}
	}
	p2 := isa.NewProgram()
	p2.ClearM(c)
	if _, err := m.Run(p2); err != nil {
		t.Fatal(err)
	}
	if m.MarkerCount(c) != 0 {
		t.Fatal("CLEAR-MARKER")
	}
	_ = ids
}

func TestCommEndIsHarmlessWhenQuiet(t *testing.T) {
	m, _, _ := gridMachine(t, true)
	p := isa.NewProgram()
	p.Barrier()
	p.Barrier()
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("barrier must still consume controller time")
	}
}

func TestRunErrors(t *testing.T) {
	m, kb, ids := gridMachine(t, true)
	rel := kb.Relation("r")

	// Unknown node operands.
	for _, p := range []*isa.Program{
		isa.NewProgram().SearchNode(semnet.NodeID(999), 0, 0),
		isa.NewProgram().Create(semnet.NodeID(999), rel, 0, ids["b0"]),
		isa.NewProgram().Delete(semnet.NodeID(999), rel, ids["b0"]),
		isa.NewProgram().SetColor(semnet.NodeID(999), 1),
		isa.NewProgram().MarkerCreate(0, rel, semnet.NodeID(999), 0, false),
	} {
		if _, err := m.Run(p); err == nil {
			t.Errorf("program %v must fail", isa.Disassemble(&p.Instrs[0], kb, p.Rules))
		}
	}

	// Relation slot overflow through MARKER-CREATE.
	p := isa.NewProgram()
	b := semnet.Binary(5)
	p.SearchNode(ids["r2"], b, 0)
	for i := 0; i < semnet.RelationSlots+1; i++ {
		p.MarkerCreate(b, rel, ids["b0"], 0, false)
	}
	if _, err := m.Run(p); err == nil {
		t.Error("slot overflow must surface")
	}
}

func TestSubnodePropagationAndCollect(t *testing.T) {
	// A hub with 40 out-links is split by the preprocessor; propagation
	// must reach all 40 destinations and COLLECT must canonicalize the
	// subnodes away.
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	hub := kb.MustAddNode("hub", col)
	for i := 0; i < 40; i++ {
		id := kb.MustAddNode(string(rune('A'+i/10))+string(rune('0'+i%10)), col)
		kb.MustAddLink(hub, rel, 1, id)
	}
	for _, det := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Clusters = 4
		cfg.NodesPerCluster = 16
		cfg.Deterministic = det
		cfg.Partition = partition.RoundRobin
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadKB(kb); err != nil {
			t.Fatal(err)
		}
		p := isa.NewProgram()
		src, dst := semnet.MarkerID(0), semnet.MarkerID(1)
		p.SearchNode(hub, src, 0)
		p.Propagate(src, dst, rules.Step(rel), semnet.FuncAdd)
		p.CollectNode(dst)
		res, err := m.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		names := res.Names(0)
		// All 40 leaves, and the canonicalized hub itself appears only if
		// a subnode was marked (it is: cont hops set dst on subnodes).
		leaves := 0
		for _, n := range names {
			if n != "hub" {
				leaves++
			}
		}
		if leaves != 40 {
			t.Fatalf("det=%v: propagation reached %d of 40 leaves: %v", det, leaves, names)
		}
	}
}

func TestClearMarkersResetsEverything(t *testing.T) {
	m, _, _ := gridMachine(t, true)
	p := isa.NewProgram()
	p.Set(3, 1)
	p.Set(semnet.Binary(9), 0)
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	m.ClearMarkers()
	if m.MarkerCount(3) != 0 || m.MarkerCount(semnet.Binary(9)) != 0 {
		t.Fatal("ClearMarkers")
	}
}
