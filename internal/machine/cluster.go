package machine

import (
	"snap1/internal/mpmem"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// cluster is one SNAP-1 multiprocessing cluster: a processing unit (PU)
// that decodes broadcast instructions, a pool of marker units (MUs) that
// process markers and search the knowledge base, and a communication unit
// (CU) that moves marker activations through the interconnect. The three
// functional-unit classes are modeled by separate virtual clocks; the MU
// pool is a set of free-at times so intra-cluster task parallelism is
// captured without simulating each MU as its own goroutine.
type cluster struct {
	id    int
	store *semnet.Store

	// Virtual clocks.
	puFree timing.Time   // instruction decode pipeline
	muFree []timing.Time // one free-at time per marker unit
	cuFree timing.Time   // message (dis)assembly pipeline
	last   timing.Time   // latest completion seen in this cluster

	// Multiport-memory discipline (exercised by the concurrent engine).
	arb  *mpmem.Arbiter
	sems *mpmem.Table

	// Per-propagation-phase state, owned by the cluster's goroutine
	// during a phase (or by the lockstep engine single-threaded). The
	// pending-task queue is split in two: srcRun holds the phase's
	// source tasks, which the status-table scan emits already sorted by
	// (ready, seq) and which therefore pop FIFO without any heap
	// discipline, and tasks is a min-heap for everything pushed while
	// the phase runs. popTask takes the smaller head of the two.
	tasks   []task    // min-heap payloads on (ready, seq)
	keys    []taskKey // heap keys, parallel to tasks: compares touch only this
	srcRun  []task    // sorted source run, consumed from srcHead
	srcHead int
	taskSeq uint64
	relayQ  relayRing
	visited visitTable
	stats   phaseStats

	// destSends counts remote activations injected per destination
	// cluster, accumulated across a whole run (reset with the clocks) —
	// the traffic matrix Machine.DestTraffic reports and the placement
	// stage aims to keep within one hop.
	destSends []int64

	// Reused host-side scratch, so the steady-state propagation loop
	// allocates nothing per task: expand's child list, the mailbox
	// drain buffer, and one task's outbound messages + tier levels.
	childScratch []childSpec
	recvBuf      []interMsg
	sendBuf      []interMsg
	lvlScratch   []uint16

	// wideVals is the per-phase lane arena for wide tasks: each wide
	// task's K value/origin lanes are a contiguous block, addressed by
	// task.wideIdx. Backing storage is pooled across phases.
	wideVals []laneVal
}

// icnRecvBatch bounds how many messages one mailbox drain grant moves.
const icnRecvBatch = 32

// semaphore table entries guarding cluster-shared control state.
const (
	semMarkerMem  = iota // marker processing memory allocation
	semActivation        // marker activation memory allocation
	numClusterSems
)

func newCluster(id int, cfg *Config) *cluster {
	return newClusterWithStore(id, cfg, semnet.NewStore(cfg.NodesPerCluster))
}

// newClusterWithStore builds a cluster around an existing store, so
// Machine.Clone can install a shared-topology replica store without
// allocating (and immediately discarding) a fresh empty one.
func newClusterWithStore(id int, cfg *Config, store *semnet.Store) *cluster {
	recvCap := cfg.MailboxCap
	if recvCap > icnRecvBatch {
		recvCap = icnRecvBatch
	}
	c := &cluster{
		id:        id,
		store:     store,
		muFree:    make([]timing.Time, cfg.musOf(id)),
		recvBuf:   make([]interMsg, recvCap),
		destSends: make([]int64, cfg.Clusters),
	}
	c.visited.cap = cfg.NodesPerCluster
	c.arb = mpmem.NewArbiter(cfg.Seed + int64(id))
	c.sems = mpmem.NewTable(numClusterSems, c.arb)
	return c
}

func (c *cluster) resetClocks() {
	c.puFree, c.cuFree, c.last = 0, 0, 0
	for i := range c.muFree {
		c.muFree[i] = 0
	}
	for i := range c.destSends {
		c.destSends[i] = 0
	}
}

// decode charges the PU pipeline for one broadcast instruction arriving at
// bAt and returns the time at which marker-unit work may begin.
func (c *cluster) decode(m *Machine, bAt timing.Time) timing.Time {
	start := timing.Max(c.puFree, bAt)
	end := start + m.cost.PECost(m.cost.DecodeCycles+m.cost.EnqueueCycles)
	c.puFree = end
	if end > c.last {
		c.last = end
	}
	return end
}

// muRun schedules one task on the earliest-free marker unit, starting no
// earlier than ready, and returns its completion time.
func (c *cluster) muRun(ready, cost timing.Time) timing.Time {
	best := 0
	for i, f := range c.muFree {
		if f < c.muFree[best] {
			best = i
		}
	}
	start := timing.Max(ready, c.muFree[best])
	end := start + cost
	c.muFree[best] = end
	if end > c.last {
		c.last = end
	}
	return end
}

// cuRun charges the CU pipeline for one message operation.
func (c *cluster) cuRun(ready, cost timing.Time) timing.Time {
	start := timing.Max(c.cuFree, ready)
	end := start + cost
	c.cuFree = end
	if end > c.last {
		c.last = end
	}
	return end
}

// task is one queued marker-propagation work unit in the cluster's marker
// processing memory.
type task struct {
	local    int32
	marker   semnet.MarkerID
	rule     rules.Token
	state    rules.State
	fn       semnet.FuncCode
	value    float32
	origin   semnet.NodeID
	level    uint16
	ready    timing.Time
	seq      uint64 // heap tie-break: FIFO among equally ready tasks
	isSource bool   // injected by PROPAGATE issue; does not mark its node
	fromMsg  bool   // arrived through the ICN; owes a Consumed count

	// Wide (plane-vectorized) execution of a fused plane group: mask is
	// the active lane bitmap (0 = ordinary scalar task), wideGrp indexes
	// the flush's wide plans, and wideIdx is the offset of this task's
	// per-lane value/origin block in the cluster's arena.
	mask    uint16
	wideGrp int16
	wideIdx int32
}

// transitMsg is a message awaiting relay by this cluster's CU.
type transitMsg struct {
	msg     interMsg
	arrival timing.Time
}

// relayRing is the CU's transit-message FIFO as a growable circular
// buffer. The seed's head-slicing queue (q = q[1:]) kept the backing
// array's consumed prefix unreachable-but-retained and regrew it every
// phase; the ring reuses one buffer for the machine's lifetime.
type relayRing struct {
	buf  []transitMsg
	head int
	n    int
}

func (r *relayRing) push(t transitMsg) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

func (r *relayRing) pop() (transitMsg, bool) {
	if r.n == 0 {
		return transitMsg{}, false
	}
	t := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t, true
}

func (r *relayRing) grow() {
	nb := make([]transitMsg, max(2*len(r.buf), 8))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *relayRing) len() int { return r.n }

func (r *relayRing) reset() { r.head, r.n = 0, 0 }

// visitTable is the per-phase (marker, rule, state, node) visit record.
// The seed used a Go map keyed by a four-field struct; its hashing and
// probing dominated the host profile (~40% of phase time). The table
// instead interns each phase's few (marker, rule, state) combinations
// into dense per-node lanes, stamped with a phase epoch so reset is O(1)
// and the lane storage is pooled for the machine's lifetime.
type visitTable struct {
	epoch  uint64
	combos []uint32 // packed (marker, rule, state), index = lane
	lanes  [][]visitEntry
	cap    int // node-table capacity; fixes every lane's length
}

type visitEntry struct {
	epoch uint64
	val   float32
}

func packVisitKey(marker semnet.MarkerID, rule rules.Token, state rules.State) uint32 {
	return uint32(marker)<<16 | uint32(rule)<<8 | uint32(state)
}

// slot returns the entry for (key, local), interning key's lane on first
// use this phase. A phase touches a handful of combinations (one per
// overlapped PROPAGATE and rule state), so the linear scan beats any
// hash. An entry is live only when its epoch matches the table's.
func (v *visitTable) slot(key uint32, local int) *visitEntry {
	for i, k := range v.combos {
		if k == key {
			return &v.lanes[i][local]
		}
	}
	v.combos = append(v.combos, key)
	if len(v.lanes) < len(v.combos) {
		v.lanes = append(v.lanes, make([]visitEntry, v.cap))
	}
	return &v.lanes[len(v.combos)-1][local]
}

// reset invalidates every entry and forgets the phase's lane interning;
// lane storage is retained for reuse.
func (v *visitTable) reset() {
	v.epoch++
	v.combos = v.combos[:0]
}

// phaseStats accumulates one cluster's contribution to a phase's
// measurements; summed by the machine at the barrier.
type phaseStats struct {
	steps     int64 // link traversals
	sends     int64 // inter-cluster activations injected
	bursts    int64 // coalesced same-next-hop send groups
	hops      int64 // port-to-port transfers (filled by the lockstep engine)
	sources   int64 // source activations (α contribution)
	dropDepth int64 // tasks cut off by the MaxDepth safety net
	comm      timing.Time
}

func (c *cluster) resetPhase() {
	c.tasks = c.tasks[:0] // backing arrays pooled across phases
	c.keys = c.keys[:0]
	c.srcRun = c.srcRun[:0]
	c.srcHead = 0
	c.taskSeq = 0
	c.relayQ.reset()
	c.visited.reset()
	c.stats = phaseStats{}
	c.wideVals = c.wideVals[:0]
}

// The task queue pops pending work in (ready, seq) order: marker units
// pull the earliest-available work first, so a late-arriving remote
// activation cannot head-of-line block tasks that are already runnable
// (the hardware MUs poll the marker processing memory for ready entries).
// seq is unique, so (ready, seq) is a total order and the pop sequence is
// fully determined no matter how the pending set is stored.
//
// Storage is split by origin. Source tasks arrive in one pre-sorted
// burst: the status scan emits them in ascending seq with nondecreasing
// ready (each PROPAGATE's sources share one scan-end time, and muRun end
// times are monotone across the overlap window), so they live in a flat
// run popped from the front — a dense frontier costs O(1) per source
// instead of the full-depth sift-down a heap degenerates to on equal
// keys. Tasks pushed while the phase runs (children, inbound messages)
// go to a 4-ary min-heap that sifts a hole instead of swapping, with the
// (ready, seq) keys held in an array parallel to the payloads: the four
// children of a heap node are 64 contiguous key bytes — one cache line —
// so a sift level is one line touch plus one payload move. popTask takes
// the smaller head of run and heap.

const heapArity = 4

// taskKey is a heap element's ordering key.
type taskKey struct {
	ready timing.Time
	seq   uint64
}

func (a taskKey) less(b taskKey) bool {
	return a.ready < b.ready || (a.ready == b.ready && a.seq < b.seq)
}

// pushSourceTask appends a scan-emitted source task to the sorted run.
// The scan invariant (nondecreasing ready, ascending seq) is what makes
// the plain append correct; the defensive fallback keeps pop order right
// even if a future caller breaks it.
func (c *cluster) pushSourceTask(t task) {
	t.seq = c.taskSeq
	c.taskSeq++
	if n := len(c.srcRun); n > 0 && t.ready < c.srcRun[n-1].ready {
		c.heapPush(t)
		return
	}
	c.srcRun = append(c.srcRun, t)
}

func (c *cluster) pushTask(t task) {
	t.seq = c.taskSeq
	c.taskSeq++
	c.heapPush(t)
}

func (c *cluster) heapPush(t task) {
	k := taskKey{ready: t.ready, seq: t.seq}
	c.tasks = append(c.tasks, t)
	c.keys = append(c.keys, k)
	i := len(c.tasks) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !k.less(c.keys[p]) {
			break
		}
		c.tasks[i], c.keys[i] = c.tasks[p], c.keys[p]
		i = p
	}
	c.tasks[i], c.keys[i] = t, k
}

func (c *cluster) popTask() (task, bool) {
	if c.srcHead < len(c.srcRun) {
		s := &c.srcRun[c.srcHead]
		if len(c.keys) == 0 || (taskKey{ready: s.ready, seq: s.seq}).less(c.keys[0]) {
			c.srcHead++
			if c.srcHead == len(c.srcRun) {
				c.srcRun, c.srcHead = c.srcRun[:0], 0
			}
			return *s, true
		}
		return c.heapPop(), true
	}
	if len(c.tasks) == 0 {
		return task{}, false
	}
	return c.heapPop(), true
}

func (c *cluster) heapPop() task {
	t := c.tasks[0]
	n := len(c.tasks) - 1
	last, lastKey := c.tasks[n], c.keys[n]
	c.tasks, c.keys = c.tasks[:n], c.keys[:n]
	if n > 0 {
		// Sift the displaced tail element down from the root hole.
		i := 0
		for {
			first := heapArity*i + 1
			if first >= n {
				break
			}
			end := first + heapArity
			if end > n {
				end = n
			}
			min, minKey := first, c.keys[first]
			for j := first + 1; j < end; j++ {
				if c.keys[j].less(minKey) {
					min, minKey = j, c.keys[j]
				}
			}
			if !minKey.less(lastKey) {
				break
			}
			c.tasks[i], c.keys[i] = c.tasks[min], c.keys[min]
			i = min
		}
		c.tasks[i], c.keys[i] = last, lastKey
	}
	return t
}

func (c *cluster) pendingTasks() int { return len(c.tasks) + len(c.srcRun) - c.srcHead }

// childSpec is one propagation step produced by expanding a task. For
// wide expansions, wideOff locates the child's per-lane value block in
// the cluster arena and value is unused.
type childSpec struct {
	to      semnet.NodeID
	state   rules.State
	value   float32
	level   uint16
	wideOff int32
}

// expand performs the functional half of task processing, shared by both
// engines: visited/merge bookkeeping, marker status and value-register
// updates, and the relation-table walk. It returns the children to
// dispatch and the marker-unit cost of the whole task. The returned
// slice aliases the cluster's reusable scratch and is valid only until
// the next expand on this cluster; both engines consume it immediately.
//
// Determinism: the value register converges to the Merge over all arriving
// values regardless of order; a (marker, rule, state, node) key re-expands
// only when its merged value strictly improves, so binary markers expand
// exactly once per key and cost markers settle Bellman-Ford style.
func (c *cluster) expand(m *Machine, t task) (children []childSpec, cost timing.Time) {
	children = c.childScratch[:0]
	cm := &m.cost
	cycles := cm.TaskSwitchCycles
	rule := m.curRules.Rule(t.rule)

	doExpand := true
	value := t.value
	if !t.isSource {
		cycles += cm.StatusWordCycles // marker status read-modify-write
		slot := c.visited.slot(packVisitKey(t.marker, t.rule, t.state), int(t.local))
		if slot.epoch == c.visited.epoch {
			merged := t.fn.Merge(slot.val, t.value)
			if merged == slot.val {
				doExpand = false
			} else {
				slot.val = merged
				value = merged
			}
		} else {
			slot.epoch = c.visited.epoch
			slot.val = t.value
		}

		newly := c.store.Set(int(t.local), t.marker)
		if t.marker.IsComplex() {
			if newly {
				c.store.SetValue(int(t.local), t.marker, value, t.origin)
			} else {
				old := c.store.Value(int(t.local), t.marker)
				merged := t.fn.Merge(old, value)
				if merged != old {
					c.store.SetValue(int(t.local), t.marker, merged, t.origin)
				} else if fc := m.fusedCtx; fc != nil && value == old &&
					c.store.Origin(int(t.local), t.marker) != t.origin {
					// Equal-value delivery from a different origin during a
					// fused run: the origin register is schedule-dependent
					// here, so flag the run for per-query fallback.
					fc.amb.Store(true)
				}
			}
		}
	}

	if doExpand && int(t.level) >= m.cfg.MaxDepth {
		doExpand = false
		c.stats.dropDepth++
	}
	if doExpand && rule != nil && !rule.Terminal(t.state) {
		links := c.store.Links(int(t.local))
		cycles += cm.RelSlotCycles * int64(len(links))
		for _, l := range links {
			if l.Rel == semnet.RelCont {
				// Preprocessor continuation: transparent hop — same rule
				// state, same value, no function application, same tier,
				// and only a pointer-chase charge.
				children = append(children, childSpec{to: l.To, state: t.state, value: value, level: t.level})
				cycles += cm.ContHopCycles
				continue
			}
			next, follow := rule.Next(t.state, l.Rel)
			if !follow {
				continue
			}
			children = append(children, childSpec{
				to:    l.To,
				state: next,
				value: t.fn.Apply(value, l.Weight),
				level: t.level + 1,
			})
			cycles += cm.PropUpdateCycles
		}
		c.stats.steps += int64(len(children))
	}
	c.childScratch = children // retain any growth for the next task
	return children, cm.PECost(cycles)
}
