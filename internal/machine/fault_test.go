package machine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"snap1/internal/fault"
	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/perfmon"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// faultChainKB builds a linear is-a style chain long enough that round-robin
// partitioning forces most propagation hops across clusters.
func faultChainKB(t *testing.T, n int) (*semnet.KB, semnet.RelType) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	for i := 0; i < n; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	for i := 0; i+1 < n; i++ {
		kb.MustAddLink(semnet.NodeID(i), rel, 1, semnet.NodeID(i+1))
	}
	return kb, rel
}

func faultMachine(t *testing.T, det bool, mon *perfmon.Collector, plan *fault.Plan) (*Machine, *isa.Program) {
	t.Helper()
	kb, rel := faultChainKB(t, 24)
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.NodesPerCluster = 16
	cfg.Deterministic = det
	cfg.Partition = partition.RoundRobin
	cfg.Monitor = mon
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	m.SetFaultInjector(plan.Injector(0))
	p := isa.NewProgram()
	p.SearchNode(0, 0, 0)
	p.Propagate(0, 1, rules.Path(rel), semnet.FuncAdd)
	p.Barrier()
	return m, p
}

// Same plan, same seed, lockstep engine: two independent machines must
// produce the identical perfmon event sequence, fault events included.
func TestFaultPlanDeterministicEvents(t *testing.T) {
	plan := &fault.Plan{Seed: 11, Rules: []fault.Rule{{Site: "icn-drop", Rate: 0.3}}}
	runOnce := func() []perfmon.Record {
		mon := perfmon.NewCollector(1 << 16)
		m, p := faultMachine(t, true, mon, plan)
		if _, err := m.Run(p); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("run under 30%% drops: %v", err)
		}
		return mon.Drain()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Code == perfmon.EvFaultInjected {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no fault-injected events recorded")
	}
}

// The concurrent engine must stay barrier-balanced under drops and
// duplications: runs terminate (no hung WaitGlobal) and report the
// corruption instead of returning silently wrong markers.
func TestConcurrentEngineTerminatesUnderFaults(t *testing.T) {
	for _, site := range []string{"icn-drop", "icn-dup", "icn-delay"} {
		plan := &fault.Plan{Seed: 5, Rules: []fault.Rule{{Site: site, Rate: 0.4}}}
		m, p := faultMachine(t, false, nil, plan)
		done := make(chan error, 1)
		go func() {
			_, err := m.Run(p)
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, fault.ErrInjected) {
				t.Errorf("%s: unexpected error %v", site, err)
			}
			if err == nil && m.inj.Corrupting() > 0 {
				t.Errorf("%s: corrupted run returned nil error", site)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: run hung (barrier imbalance?)", site)
		}
		m.Close()
	}
}

func TestWedgeHonorsDeadline(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Rules: []fault.Rule{{Site: "machine-wedge", Rate: 1}}}
	m, p := faultMachine(t, false, nil, plan)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.RunContext(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged run: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("wedge ignored the deadline")
	}
}

// Stalls and slowdowns cost host time only: the run succeeds with the
// same virtual-time result as an unfaulted machine.
func TestStallAndSlowDoNotPoison(t *testing.T) {
	clean, p := faultMachine(t, true, nil, nil)
	want, err := clean.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Site: "arb-stall", Rate: 0.05, StallUs: 1},
		{Site: "machine-slow", Rate: 1, StallUs: 100},
	}}
	slow, p2 := faultMachine(t, true, nil, plan)
	got, err := slow.Run(p2)
	if err != nil {
		t.Fatalf("stalled run must still succeed: %v", err)
	}
	if got.Time != want.Time {
		t.Errorf("virtual time perturbed by host stalls: %v vs %v", got.Time, want.Time)
	}
}

// A wedge consumed by one run must not leak into the next: with the
// count budget spent, the machine serves normally again.
func TestWedgeBudgetExpires(t *testing.T) {
	plan := &fault.Plan{Seed: 2, Rules: []fault.Rule{{Site: "machine-wedge", Rate: 1, Count: 1}}}
	m, p := faultMachine(t, true, nil, plan)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	_, err := m.RunContext(ctx, p)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first run should wedge: %v", err)
	}
	m.ClearMarkers()
	if _, err := m.Run(p); err != nil {
		t.Fatalf("second run should succeed: %v", err)
	}
}

func TestLoadKBRewiresInjector(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{{Site: "icn-drop", Rate: 1}}}
	m, p := faultMachine(t, true, nil, plan)
	kb2, rel2 := faultChainKB(t, 24)
	if err := m.LoadKB(kb2); err != nil {
		t.Fatal(err)
	}
	p2 := isa.NewProgram()
	p2.SearchNode(0, 0, 0)
	p2.Propagate(0, 1, rules.Path(rel2), semnet.FuncAdd)
	p2.Barrier()
	_ = p
	if _, err := m.Run(p2); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injector lost across LoadKB: %v", err)
	}
}

func TestCloneStartsUnarmed(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{{Site: "icn-drop", Rate: 1}}}
	m, p := faultMachine(t, true, nil, plan)
	r, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultInjector() != nil {
		t.Fatal("clone inherited the injector")
	}
	if _, err := r.Run(p); err != nil {
		t.Fatalf("unarmed clone must run clean: %v", err)
	}
}
