package machine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Differential testing for fused execution: a fused run must be
// bit-identical PER QUERY (markers via the rename table, demuxed
// collection rows) to running the same queries sequentially unfused —
// on both engines — unless it reports ErrFusionAmbiguous, in which
// case the caller falls back to solo dispatch and no result escapes.

// randomFusableProgram is randomProgram restricted to the fusion-
// eligible subset: no topology mutations, propagate functions strict
// on complex destinations (NOP/ADD/DEC), anything on binary ones.
// Markers draw from a small pool so pairs and triples fit the plane
// allocator.
func randomFusableProgram(rng *rand.Rand, kb *semnet.KB, rels []semnet.RelType, cols []semnet.Color) *isa.Program {
	p := isa.NewProgram()
	pool := make([]semnet.MarkerID, 0, 12)
	for i := 0; i < 8; i++ {
		pool = append(pool, semnet.MarkerID(rng.Intn(semnet.NumComplexMarkers)))
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, semnet.Binary(rng.Intn(semnet.NumMarkers-semnet.NumComplexMarkers)))
	}
	mk := func() semnet.MarkerID { return pool[rng.Intn(len(pool))] }
	strictFns := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncDec}
	anyFns := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncMin, semnet.FuncMax, semnet.FuncDec}
	rel := func() semnet.RelType { return rels[rng.Intn(len(rels))] }
	spec := func() rules.Spec {
		switch rng.Intn(5) {
		case 0:
			return rules.Step(rel())
		case 1:
			return rules.Path(rel())
		case 2:
			return rules.Spread(rel(), rel())
		case 3:
			return rules.Seq(rel(), rel())
		default:
			return rules.Comb(rel(), rel())
		}
	}
	node := func() semnet.NodeID { return semnet.NodeID(rng.Intn(kb.NumNodes())) }

	steps := 5 + rng.Intn(20)
	for i := 0; i < steps; i++ {
		switch rng.Intn(12) {
		case 0:
			p.SearchNode(node(), mk(), float32(rng.Intn(8)))
		case 1:
			p.SearchRelation(rel(), mk(), float32(rng.Intn(8)))
		case 2:
			p.SearchColor(cols[rng.Intn(len(cols))], mk(), float32(rng.Intn(8)))
		case 3, 4, 5:
			m2 := mk()
			fn := strictFns[rng.Intn(len(strictFns))]
			if !m2.IsComplex() {
				fn = anyFns[rng.Intn(len(anyFns))]
			}
			p.Propagate(mk(), m2, spec(), fn)
		case 6:
			p.And(mk(), mk(), mk(), strictFns[rng.Intn(len(strictFns))])
		case 7:
			p.Or(mk(), mk(), mk(), strictFns[rng.Intn(len(strictFns))])
		case 8:
			p.Not(mk(), mk(), float32(rng.Intn(8)), isa.Condition(rng.Intn(7)))
		case 9:
			p.Set(mk(), float32(rng.Intn(8)))
		case 10:
			p.ClearM(mk())
		default:
			p.Barrier()
		}
	}
	p.CollectNode(mk())
	return p
}

// newFusionMachine builds a machine over kb in the fuzz configuration.
func newFusionMachine(t testing.TB, kb *semnet.KB, det bool, clusters int) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Clusters = clusters
	cfg.NodesPerCluster = kb.NumNodes() + 32
	cfg.Deterministic = det
	cfg.MaxDepth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// queryView is one query's observable outcome: its markers (keyed by
// the query's own plane IDs) and its collection rows in program order.
type queryView struct {
	markers     map[string]string
	collections []string
}

func soloView(m *Machine, kb *semnet.KB, res *Result, p *isa.Program) queryView {
	v := queryView{markers: map[string]string{}}
	p.Markers().ForEach(func(mk semnet.MarkerID) {
		for id := 0; id < kb.NumNodes(); id++ {
			if m.TestMarker(semnet.NodeID(id), mk) {
				v.markers[fmt.Sprintf("%d/%d", id, mk)] = fmt.Sprintf("%v@%d",
					m.MarkerValue(semnet.NodeID(id), mk), m.MarkerOrigin(semnet.NodeID(id), mk))
			}
		}
	})
	for _, c := range res.Collections {
		for _, it := range c.Items {
			v.collections = append(v.collections, fmt.Sprintf("%d:%+v", c.Instr, it))
		}
	}
	return v
}

// fusedViews reads each query's outcome back out of a fused run,
// translating planes through the rename table and demuxing collections
// through InstrOf.
func fusedViews(m *Machine, kb *semnet.KB, f *isa.Fused, res *Result, progs []*isa.Program) []queryView {
	views := make([]queryView, len(progs))
	for q, p := range progs {
		views[q].markers = map[string]string{}
		p.Markers().ForEach(func(mk semnet.MarkerID) {
			fm := f.MarkerOf(q, mk)
			for id := 0; id < kb.NumNodes(); id++ {
				if m.TestMarker(semnet.NodeID(id), fm) {
					views[q].markers[fmt.Sprintf("%d/%d", id, mk)] = fmt.Sprintf("%v@%d",
						m.MarkerValue(semnet.NodeID(id), fm), m.MarkerOrigin(semnet.NodeID(id), fm))
				}
			}
		})
	}
	for _, c := range res.Collections {
		o := f.InstrOf(c.Instr)
		for _, it := range c.Items {
			views[o.Query].collections = append(views[o.Query].collections,
				fmt.Sprintf("%d:%+v", o.Index, it))
		}
	}
	return views
}

func viewsEqual(a, b queryView) bool {
	if len(a.markers) != len(b.markers) || len(a.collections) != len(b.collections) {
		return false
	}
	for k, v := range a.markers {
		if b.markers[k] != v {
			return false
		}
	}
	for i := range a.collections {
		if a.collections[i] != b.collections[i] {
			return false
		}
	}
	return true
}

// concurrentNoise reports whether a solo-vs-fused mismatch on the
// concurrent engine is schedule noise rather than a fusion defect. The
// concurrent engine makes no determinism promise: delivery sets are
// schedule-dependent (e.g. near the MaxDepth cutoff, or value races
// between equal-length waves), so outcomes legitimately vary run to
// run — solo AND fused alike. The differential therefore only fails
// when the solo view is stable across re-runs and the fused run
// diverges from it consistently; anything that wobbles on re-execution
// indicts the schedule, not fusion. (The lockstep engine's comparison
// has no such escape: there, bit-identity is unconditional.)
func concurrentNoise(t testing.TB, kb *semnet.KB, clusters int, p *isa.Program,
	f *isa.Fused, q int, progs []*isa.Program, view queryView) bool {
	for i := 0; i < 4; i++ {
		sm := newFusionMachine(t, kb, false, clusters)
		res, err := sm.Run(p)
		if err != nil {
			return true
		}
		if !viewsEqual(view, soloView(sm, kb, res, p)) {
			return true // solo itself is schedule-dependent
		}
	}
	for i := 0; i < 4; i++ {
		fm := newFusionMachine(t, kb, false, clusters)
		res, err := fm.RunFused(context.Background(), f)
		if err != nil {
			return true // incl. a late ambiguity detection: solo fallback
		}
		if viewsEqual(view, fusedViews(fm, kb, f, res, progs)[q]) {
			return true // fused reproduces solo on another schedule
		}
	}
	return false
}

func diffViews(t *testing.T, trial, q int, solo, fused queryView, what string) {
	t.Helper()
	if len(solo.markers) != len(fused.markers) {
		t.Fatalf("trial %d query %d (%s): %d vs %d set markers", trial, q, what, len(solo.markers), len(fused.markers))
	}
	for k, v := range solo.markers {
		if fused.markers[k] != v {
			t.Fatalf("trial %d query %d (%s): marker %s: solo %s fused %s", trial, q, what, k, v, fused.markers[k])
		}
	}
	if len(solo.collections) != len(fused.collections) {
		t.Fatalf("trial %d query %d (%s): %d vs %d collection rows", trial, q, what,
			len(solo.collections), len(fused.collections))
	}
	for i := range solo.collections {
		if solo.collections[i] != fused.collections[i] {
			t.Fatalf("trial %d query %d (%s): row %d: solo %s fused %s", trial, q, what,
				i, solo.collections[i], fused.collections[i])
		}
	}
}

func TestFusedBitIdenticalToSolo(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	compared := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		kb, rels, cols := randomKB(rng)
		n := 2 + rng.Intn(3) // pairs, triples, quads
		progs := make([]*isa.Program, n)
		for i := range progs {
			progs[i] = randomFusableProgram(rng, kb, rels, cols)
		}
		f, err := isa.Fuse(progs)
		if err != nil {
			t.Fatalf("trial %d: fuse: %v", trial, err)
		}
		clusters := 1 + rng.Intn(8)
		for _, det := range []bool{true, false} {
			// Solo reference: each query on a fresh machine.
			solos := make([]queryView, n)
			for q, p := range progs {
				sm := newFusionMachine(t, kb, det, clusters)
				res, err := sm.Run(p)
				if err != nil {
					t.Fatalf("trial %d query %d solo: %v", trial, q, err)
				}
				solos[q] = soloView(sm, kb, res, p)
			}
			fm := newFusionMachine(t, kb, det, clusters)
			res, err := fm.RunFused(context.Background(), f)
			if errors.Is(err, ErrFusionAmbiguous) {
				continue // caller falls back to solo; nothing escapes
			}
			if err != nil {
				t.Fatalf("trial %d fused (det=%v): %v", trial, det, err)
			}
			views := fusedViews(fm, kb, f, res, progs)
			for q := range progs {
				if !det && !viewsEqual(solos[q], views[q]) &&
					concurrentNoise(t, kb, clusters, progs[q], f, q, progs, solos[q]) {
					continue // schedule-dependent input, not fusion's doing
				}
				diffViews(t, trial, q, solos[q], views[q], fmt.Sprintf("det=%v", det))
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("every trial was origin-ambiguous; differential comparison is vacuous")
	}
	t.Logf("compared %d fused runs bit-exact", compared)
}

// FuzzFusedDifferential is the open-ended form of
// TestFusedBitIdenticalToSolo: any (seed, width) input derives a random
// knowledge base and 2-4 random fusable queries. On the deterministic
// lockstep engine the fused run must be bit-identical — markers,
// values, origins, collections — to each query's solo run; that arm
// exercises every fusion transform (plane renaming, merged rule
// tables, wide groups, demux) with no schedule to hide behind. The
// concurrent engine makes no reproducibility promise (delivery order
// near the MaxDepth cutoff legitimately varies outcomes, and fused
// load shifts the schedule systematically, so solo-vs-fused re-run
// voting cannot separate noise from defect), so its arm asserts what
// IS contractual: the fused run completes under -race and demuxes each
// collection to the owning query's original instruction. Value-level
// concurrent coverage lives in TestFusedBitIdenticalToSolo's fixed
// tame seeds behind the concurrentNoise guard. Origin-ambiguous inputs
// are skipped: the machine refuses them at runtime (ErrFusionAmbiguous)
// and the engine serves them solo, so nothing escapes unfused.
func FuzzFusedDifferential(fz *testing.F) {
	fz.Add(int64(7001), uint8(2))
	fz.Add(int64(7002), uint8(3))
	fz.Add(int64(7003), uint8(4))
	fz.Add(int64(-90210), uint8(0))
	fz.Fuzz(func(t *testing.T, seed int64, width uint8) {
		rng := rand.New(rand.NewSource(seed))
		kb, rels, cols := randomKB(rng)
		n := 2 + int(width%3)
		progs := make([]*isa.Program, n)
		for i := range progs {
			progs[i] = randomFusableProgram(rng, kb, rels, cols)
		}
		f, err := isa.Fuse(progs)
		if err != nil {
			t.Skip("not fusable:", err) // e.g. merged rule table overflow
		}
		clusters := 1 + rng.Intn(8)

		// Lockstep: hard bit-identity, no escape hatch.
		solos := make([]queryView, n)
		for q, p := range progs {
			sm := newFusionMachine(t, kb, true, clusters)
			res, err := sm.Run(p)
			if err != nil {
				t.Fatalf("query %d solo: %v", q, err)
			}
			solos[q] = soloView(sm, kb, res, p)
		}
		fm := newFusionMachine(t, kb, true, clusters)
		res, err := fm.RunFused(context.Background(), f)
		if err == nil {
			views := fusedViews(fm, kb, f, res, progs)
			for q := range progs {
				diffViews(t, 0, q, solos[q], views[q], "det=true")
			}
		} else if !errors.Is(err, ErrFusionAmbiguous) {
			t.Fatalf("fused (det=true): %v", err)
		}

		// Concurrent: structural contract only (see doc comment).
		cm := newFusionMachine(t, kb, false, clusters)
		cres, err := cm.RunFused(context.Background(), f)
		if errors.Is(err, ErrFusionAmbiguous) {
			return
		}
		if err != nil {
			t.Fatalf("fused (det=false): %v", err)
		}
		for q, part := range cres.Demux(f) {
			want := 0
			for i := range progs[q].Instrs {
				switch progs[q].Instrs[i].Op {
				case isa.OpCollectNode, isa.OpCollectRelation, isa.OpCollectColor:
					want++
				}
			}
			if len(part.Collections) != want {
				t.Fatalf("det=false query %d: %d collections demuxed, program has %d collect ops",
					q, len(part.Collections), want)
			}
			for _, col := range part.Collections {
				if col.Instr < 0 || col.Instr >= progs[q].Len() ||
					progs[q].Instrs[col.Instr].Op != col.Op {
					t.Fatalf("det=false query %d: collection demuxed to instr %d op %v, program op mismatch",
						q, col.Instr, col.Op)
				}
			}
		}
	})
}

// TestFusedWideGroups pins the plane-vectorized path: K clone queries
// (same shape, different seed values) must form a wide group, produce
// per-query results identical to solo runs, and actually share the
// topology sweep (fused PropSteps well below the solo sum).
func TestFusedWideGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kb, rels, cols := randomKB(rng)
	const K = 4
	progs := make([]*isa.Program, K)
	for q := 0; q < K; q++ {
		p := isa.NewProgram()
		p.SearchColor(cols[0], 0, float32(q))
		p.Propagate(0, 1, rules.Path(rels[0]), semnet.FuncAdd)
		p.Barrier()
		p.CollectNode(1)
		progs[q] = p
	}
	f, err := isa.Fuse(progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Groups) != 1 || len(f.Groups[0].Instrs) != K {
		t.Fatalf("groups = %+v, want one group of %d", f.Groups, K)
	}

	var soloSteps int64
	solos := make([]queryView, K)
	for q, p := range progs {
		sm := newFusionMachine(t, kb, true, 4)
		res, err := sm.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		soloSteps += res.Profile.PropSteps
		solos[q] = soloView(sm, kb, res, p)
	}

	fm := newFusionMachine(t, kb, true, 4)
	res, err := fm.RunFused(context.Background(), f)
	if errors.Is(err, ErrFusionAmbiguous) {
		t.Skip("workload produced an origin tie; wide path covered by fuzz")
	}
	if err != nil {
		t.Fatal(err)
	}
	views := fusedViews(fm, kb, f, res, progs)
	for q := range progs {
		diffViews(t, 0, q, solos[q], views[q], "wide")
	}
	if res.Profile.PropSteps*2 > soloSteps {
		t.Fatalf("fused PropSteps %d vs solo sum %d: wide sharing did not engage",
			res.Profile.PropSteps, soloSteps)
	}

	// Repeat runs of the same fused program are bit-identical,
	// including virtual time.
	fm2 := newFusionMachine(t, kb, true, 4)
	res2, err := fm2.RunFused(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Time != res.Time {
		t.Fatalf("fused virtual time not reproducible: %d vs %d", res.Time, res2.Time)
	}
	views2 := fusedViews(fm2, kb, f, res2, progs)
	for q := range progs {
		diffViews(t, 1, q, views[q], views2[q], "wide repeat")
	}
}

// TestFusedAmbiguousTie: two equal-value sources reaching one node over
// equal-weight links give distinct-origin final contributions that tie;
// the fused run must refuse (ErrFusionAmbiguous) rather than guess an
// origin.
func TestFusedAmbiguousTie(t *testing.T) {
	kb := semnet.NewKB()
	r := kb.Relation("r")
	c := kb.ColorFor("seed")
	a := kb.MustAddNode("a", c)
	b := kb.MustAddNode("b", c)
	mid := kb.MustAddNode("mid", kb.ColorFor("other"))
	kb.MustAddLink(a, r, 1, mid)
	kb.MustAddLink(b, r, 1, mid)

	mkProg := func(extra float32) *isa.Program {
		p := isa.NewProgram()
		p.SearchColor(c, 0, extra)
		p.Propagate(0, 1, rules.Path(r), semnet.FuncAdd)
		p.Barrier()
		p.CollectNode(1)
		return p
	}
	f, err := isa.Fuse([]*isa.Program{mkProg(0), mkProg(0)})
	if err != nil {
		t.Fatal(err)
	}
	m := newFusionMachine(t, kb, true, 2)
	if _, err := m.RunFused(context.Background(), f); !errors.Is(err, ErrFusionAmbiguous) {
		t.Fatalf("want ErrFusionAmbiguous, got %v", err)
	}
}

// TestMaskedClearCoversRuns: after any sequence of runs, ClearMarkers
// must leave no marker set anywhere (the dirty-plane tracking must not
// miss a written plane).
func TestMaskedClearCoversRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kb, rels, cols := randomKB(rng)
	m := newFusionMachine(t, kb, true, 4)
	for i := 0; i < 5; i++ {
		p := randomFusableProgram(rng, kb, rels, cols)
		if _, err := m.Run(p); err != nil {
			t.Fatal(err)
		}
		m.ClearMarkers()
		for mk := 0; mk < semnet.NumMarkers; mk++ {
			if n := m.MarkerCount(semnet.MarkerID(mk)); n != 0 {
				t.Fatalf("run %d: marker %d still set at %d nodes after ClearMarkers", i, mk, n)
			}
		}
	}
}
