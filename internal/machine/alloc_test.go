package machine

import (
	"testing"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Steady-state propagation must not allocate per task: the worker pool is
// persistent, relay queues and visit tables are reused across phases, and
// mailbox drains go through preallocated batch buffers. This test is the
// regression fence for that property — if a map, closure, or interface
// conversion sneaks back into the hot loop, allocs/task jumps by orders
// of magnitude and the bound below fails.
func TestPropagateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		name string
		det  bool
	}{
		{"concurrent", false},
		{"lockstep", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := kbgen.Chains(1, 128, 10, 1)
			cfg := PaperConfig()
			cfg.Deterministic = tc.det
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if err := m.LoadKB(w.KB); err != nil {
				t.Fatal(err)
			}

			p := isa.NewProgram()
			p.SearchColor(w.Seeds[0], 0, 0)
			p.Propagate(0, 1, rules.Path(w.Rel), semnet.FuncAdd)
			p.Barrier()

			var tasks int64
			run := func() {
				m.ClearMarkers()
				res, err := m.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				tasks = res.Profile.PropSteps
			}
			run() // warm up: lazily started workers, grown scratch buffers

			allocs := testing.AllocsPerRun(10, run)
			if tasks == 0 {
				t.Fatal("workload produced no propagation tasks")
			}
			perTask := allocs / float64(tasks)
			// A handful of fixed per-run allocations (Result, Profile,
			// instruction bookkeeping) amortized over >1000 tasks; the
			// old per-task paths sat at ~1 alloc/task.
			if perTask > 0.05 {
				t.Errorf("steady-state propagation allocates %.1f objects/run (%.4f per task over %d tasks); want ~0 per task",
					allocs, perTask, tasks)
			}
		})
	}
}
