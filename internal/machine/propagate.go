package machine

import (
	"math/bits"
	"runtime"

	"snap1/internal/barrier"
	"snap1/internal/icn"
	"snap1/internal/isa"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// interMsg is the inter-cluster marker activation message.
type interMsg = icn.Message

// flush launches the pending overlap window of PROPAGATE instructions as
// one MIMD phase, runs it to termination, and accounts the barrier.
func (m *Machine) flush(st *runState) {
	if len(st.batch) == 0 {
		return
	}
	firstBAt := st.batch[0].bAt
	var (
		bstats barrier.Stats
		agg    phaseStats
		end    timing.Time
	)
	if m.cfg.Deterministic {
		// Wide scheduling of fused plane groups: lockstep engine only,
		// and never with a fault injector armed (fault streams are
		// per-message, which wide multi-plane activations would skew).
		entries := st.batch
		m.widePlans = nil
		if fc := m.fusedCtx; fc != nil && m.inj == nil {
			entries, m.widePlans = m.planWide(st.batch, fc)
		}
		bstats, agg, end = m.runPhaseLockstep(entries, m.widePlans)
	} else {
		bstats, agg, end = m.runPhaseConcurrent(st.batch)
	}

	// Tiered synchronization: the SCP samples the AND-tree and reconciles
	// the per-level counter sums — cost grows (weakly) with cluster count
	// and tier depth, the Fig. 21 barrier component.
	syncCycles := m.cost.BarrierBaseCycles +
		m.cost.BarrierPerClusterCycles*int64(m.cfg.Clusters) +
		m.cost.BarrierPerLevelCycles*int64(bstats.Levels)
	m.ctrl.Sync(end)
	m.ctrl.Tick(syncCycles)

	st.prof.Overhead.Synchronization += m.cost.CtrlCost(syncCycles)
	st.prof.Overhead.Communication += agg.comm
	st.prof.AddBarrier(bstats)
	st.prof.PropSteps += agg.steps
	st.prof.PropInstrs += int64(len(st.batch))

	// Interconnect locality counters. The lockstep engine accounts hops
	// per message as it routes; the concurrent engine reads the live
	// network's port-transfer counter (the phase has terminated, so the
	// delta since the previous flush is exactly this phase's traffic).
	phaseHops := agg.hops
	if !m.cfg.Deterministic {
		_, _, total := m.net.Stats()
		phaseHops = total - m.hopBase
		m.hopBase = total
	}
	st.prof.PropHops += phaseHops
	st.prof.SendBursts += agg.bursts

	// Attribute the phase duration across the overlapped PROPAGATEs.
	dur := m.ctrl.Now() - firstBAt
	st.prof.PhaseDurations = append(st.prof.PhaseDurations, dur)
	st.prof.PhaseBetas = append(st.prof.PhaseBetas, len(st.batch))
	share := timing.Time(int64(dur) / int64(len(st.batch)))
	for range st.batch {
		st.prof.Record(isa.OpPropagate, share)
	}
	if mon := m.cfg.Monitor; mon != nil {
		mon.Emit(-1, perfmon.EvBarrierDone, uint32(bstats.Messages), m.ctrl.Now())
		mon.Emit(-1, perfmon.EvCutTraffic, uint32(agg.sends), m.ctrl.Now())
		mon.Emit(-1, perfmon.EvHopTraffic, uint32(phaseHops), m.ctrl.Now())
	}

	st.batch = st.batch[:0]
	st.batchR, st.batchW = isa.MarkerSet{}, isa.MarkerSet{}
}

// ---------------------------------------------------------------------
// Concurrent engine: one persistent worker per cluster, real mailboxes,
// live termination detection.
// ---------------------------------------------------------------------

func (m *Machine) runPhaseConcurrent(entries []batchEntry) (barrier.Stats, phaseStats, timing.Time) {
	m.bar.Reset()
	for _, c := range m.clusters {
		c.resetPhase()
	}
	if m.workers == nil {
		m.workers = m.startWorkers()
	}
	m.workers.beginPhase(entries, len(m.clusters))
	bstats := m.bar.WaitGlobal()
	m.workers.waitPhase()

	var agg phaseStats
	var end timing.Time
	for _, c := range m.clusters {
		agg.add(&c.stats)
		end = timing.Max(end, c.last)
	}
	return bstats, agg, end
}

func (s *phaseStats) add(o *phaseStats) {
	s.steps += o.steps
	s.sends += o.sends
	s.bursts += o.bursts
	s.hops += o.hops
	s.sources += o.sources
	s.dropDepth += o.dropDepth
	s.comm += o.comm
}

// phaseLoop is one cluster's MIMD propagation loop: drain the mailbox in
// batches, relay transit messages, process local tasks, and participate
// in the tiered termination-detection protocol when quiescent.
func (c *cluster) phaseLoop(m *Machine, entries []batchEntry) {
	c.injectSources(m, entries)
	for {
		worked := false
		for {
			n := m.net.TryRecvBatch(c.id, c.recvBuf)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				c.acceptMsg(m, c.recvBuf[i])
			}
			worked = true
			if n < len(c.recvBuf) {
				break
			}
		}
		if tm, ok := c.relayQ.pop(); ok {
			c.relay(m, tm)
			continue
		}
		if t, ok := c.popTask(); ok {
			c.processTaskConcurrent(m, t)
			continue
		}
		if worked {
			continue
		}
		// Quiescence candidacy: sample the wake sequence before the final
		// emptiness check so an arriving message cannot be lost.
		seq := m.bar.WakeSeq(c.id)
		if m.net.Pending(c.id) > 0 || c.pendingTasks() > 0 || c.relayQ.len() > 0 {
			continue
		}
		if m.bar.WaitQuiescent(c.id, seq) {
			return
		}
	}
}

// denseSweepBits is the per-word popcount at which the source scan flips
// from iterating set bits to walking every lane of the word in order —
// the frontier-adaptive sweep. Near-full words (a SET-MARKER-seeded
// frontier, a saturated closure) stream the status row, value row and
// global-ID column sequentially instead of re-deriving each position
// from the mask.
const denseSweepBits = semnet.HostWordBits / 4

// injectSources scans marker-1 of every PROPAGATE in the overlap window
// over this cluster's partition and queues the source tasks. The scan
// walks the packed status row directly: sparse words iterate set bits
// with TrailingZeros, dense words switch to a sequential lane walk. Both
// visit locals in ascending order, so task seq numbers — and the
// simulated timeline — are identical whichever path runs.
func (c *cluster) injectSources(m *Machine, entries []batchEntry) {
	for _, e := range entries {
		in := e.in
		ready := c.decode(m, e.bAt)
		scanCost := m.cost.PECost(m.cost.StatusWordCycles * int64(c.store.Words()))
		scanEnd := c.muRun(ready, scanCost)
		vals := c.store.ValueRow(in.M1) // nil for binary or never-written markers
		globals := c.store.Globals()
		for w, word := range c.store.StatusRow(in.M1) {
			if word == 0 {
				continue
			}
			base := w * semnet.HostWordBits
			if bits.OnesCount64(word) >= denseSweepBits {
				for b := 0; word != 0; b, word = b+1, word>>1 {
					if word&1 != 0 {
						c.pushSource(in, base+b, vals, globals, scanEnd)
					}
				}
			} else {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << uint(b)
					c.pushSource(in, base+b, vals, globals, scanEnd)
				}
			}
		}
	}
}

// pushSource queues one PROPAGATE source task found by the status scan.
// Sources go to the cluster's sorted run, not the heap: the scan emits
// them in (ready, seq) order already.
func (c *cluster) pushSource(in *isa.Instruction, local int, vals []float32, globals []semnet.NodeID, ready timing.Time) {
	var val float32
	if vals != nil {
		val = vals[local]
	}
	c.pushSourceTask(task{
		local:    int32(local),
		marker:   in.M2,
		rule:     in.Rule,
		fn:       in.Fn,
		value:    val,
		origin:   globals[local],
		ready:    ready,
		isSource: true,
	})
	c.stats.sources++
}

// acceptMsg disassembles an inbound message: transit messages queue for
// relay, terminal messages become local tasks.
func (c *cluster) acceptMsg(m *Machine, msg interMsg) {
	arrival := msg.SendTime + m.cost.HopLatency
	if int(msg.DestCluster) != c.id {
		c.relayQ.push(transitMsg{msg: msg, arrival: arrival})
		return
	}
	asm := m.cost.PECost(m.cost.MsgAssembleCycles)
	end := c.cuRun(arrival, asm)
	c.stats.comm += m.cost.HopLatency + asm
	c.pushTask(task{
		local:   m.localIdx[msg.Dest],
		marker:  msg.Marker,
		rule:    msg.Rule,
		state:   msg.State,
		fn:      msg.Fn,
		value:   msg.Value,
		origin:  msg.Origin,
		level:   msg.Level,
		ready:   end,
		fromMsg: true,
	})
	if mon := m.cfg.Monitor; mon != nil {
		mon.Emit(c.id, perfmon.EvMsgRecv, uint32(msg.Level), end)
	}
}

// relay forwards a transit message one digit-correction closer to its
// destination cluster.
func (c *cluster) relay(m *Machine, tm transitMsg) {
	asm := m.cost.PECost(m.cost.MsgAssembleCycles)
	end := c.cuRun(tm.arrival, asm)
	c.stats.comm += m.cost.HopLatency + asm
	msg := tm.msg
	msg.SendTime = end
	c.xmit(m, msg)
}

// xmit forwards a transit message with backpressure: while the next-hop
// mailbox region is full, the cluster services its own mailbox so the
// array cannot deadlock on mutually full buffers. (New injections go
// through xmitBatch; relays move one at a time because each carries its
// own CU relay timing.)
func (c *cluster) xmit(m *Machine, msg interMsg) {
	next := m.net.NextHop(c.id, int(msg.DestCluster))
	for {
		if m.net.TryForward(c.id, msg) {
			m.bar.Wake(next)
			return
		}
		if in, got := m.net.TryRecv(c.id); got {
			c.acceptMsg(m, in)
		} else {
			runtime.Gosched()
		}
	}
}

// processTaskConcurrent runs one task: expansion on a marker unit, local
// children into the task queue, remote children through the CU and ICN.
// Remote activations are assembled into the cluster's reusable outbound
// buffer (each with its own CU-pipelined virtual send time), counted at
// the barrier in one grant, and injected as a batch.
func (c *cluster) processTaskConcurrent(m *Machine, t task) {
	children, cost := c.expand(m, t)
	end := c.muRun(t.ready, cost)
	msgs, lvls := c.sendBuf[:0], c.lvlScratch[:0]
	for _, ch := range children {
		dest := m.assign[ch.to]
		if dest == c.id {
			c.pushTask(task{
				local:  m.localIdx[ch.to],
				marker: t.marker,
				rule:   t.rule,
				state:  ch.state,
				fn:     t.fn,
				value:  ch.value,
				origin: t.origin,
				level:  ch.level,
				ready:  end,
			})
			continue
		}
		// MU hands the activation to the CU through the arbitrated
		// marker activation memory, then the CU assembles and injects.
		c.sems.Lock(semActivation)
		c.sems.Unlock(semActivation)
		cuCycles := m.cost.MsgAssembleCycles + m.cost.MailboxEnqueueCycles + m.cost.ArbiterGrantCycles
		sendEnd := c.cuRun(end, m.cost.PECost(cuCycles))
		c.stats.sends++
		c.destSends[dest]++
		c.stats.comm += m.cost.PECost(cuCycles)
		msgs = append(msgs, interMsg{
			Marker:      t.marker,
			Value:       ch.value,
			Fn:          t.fn,
			Dest:        ch.to,
			Origin:      t.origin,
			Rule:        t.rule,
			State:       ch.state,
			DestCluster: uint8(dest),
			Level:       ch.level,
			SendTime:    sendEnd,
		})
		lvls = append(lvls, ch.level)
		if mon := m.cfg.Monitor; mon != nil {
			mon.Emit(c.id, perfmon.EvMsgSend, uint32(dest), sendEnd)
		}
	}
	if len(msgs) > 0 {
		// Coalescing accounting: consecutive messages sharing a next hop
		// ride one mailbox grant (TrySendBatch), so the number of runs is
		// the number of grants this task's burst costs at best.
		prev := -1
		for i := range msgs {
			if next := m.net.NextHop(c.id, int(msgs[i].DestCluster)); next != prev {
				c.stats.bursts++
				prev = next
			}
		}
		// Count the whole burst in flight before any message becomes
		// visible to a receiver (the barrier protocol invariant).
		m.bar.CreatedBatch(lvls)
		c.xmitBatch(m, msgs)
	}
	c.sendBuf, c.lvlScratch = msgs[:0], lvls[:0]
	if t.fromMsg {
		m.bar.Consumed(int(t.level))
	}
}

// xmitBatch injects one task's outbound messages with backpressure: the
// longest deliverable prefix is enqueued per attempt (consecutive
// same-next-hop messages share one mailbox grant); while the next-hop
// region is full the cluster services its own mailbox so the array
// cannot deadlock on mutually full buffers.
func (c *cluster) xmitBatch(m *Machine, msgs []interMsg) {
	i := 0
	for i < len(msgs) {
		n := m.net.TrySendBatch(c.id, msgs[i:])
		if n > 0 {
			lastWake := -1
			for j := i; j < i+n; j++ {
				next := m.net.NextHop(c.id, int(msgs[j].DestCluster))
				if next != lastWake {
					m.bar.Wake(next)
					lastWake = next
				}
			}
			i += n
			continue
		}
		if in, got := m.net.TryRecv(c.id); got {
			c.acceptMsg(m, in)
		} else {
			runtime.Gosched()
		}
	}
}

// ---------------------------------------------------------------------
// Lockstep engine: the same task causality graph processed in canonical
// order for exactly reproducible measurements.
// ---------------------------------------------------------------------

func (m *Machine) runPhaseLockstep(entries []batchEntry, plans []widePlan) (barrier.Stats, phaseStats, timing.Time) {
	for _, c := range m.clusters {
		c.resetPhase()
	}
	for _, c := range m.clusters {
		c.injectSources(m, entries)
		if len(plans) > 0 {
			c.injectWideSources(m, plans)
		}
	}

	var perLevel []int64
	var total int64
	pending := true
	for pending {
		pending = false
		for _, c := range m.clusters {
			for {
				t, ok := c.popTask()
				if !ok {
					break
				}
				pending = true
				m.lockstepTask(c, t, &perLevel, &total)
			}
		}
	}

	var agg phaseStats
	var end timing.Time
	for _, c := range m.clusters {
		agg.add(&c.stats)
		end = timing.Max(end, c.last)
	}
	return barrier.Stats{Messages: total, Levels: len(perLevel), PerLevel: perLevel}, agg, end
}

// lockstepTask processes one task, delivering remote children immediately
// with deterministic per-hop relay accounting (a fixed disassemble/
// reassemble charge per intermediate hop instead of live CU contention).
func (m *Machine) lockstepTask(c *cluster, t task, perLevel *[]int64, total *int64) {
	if t.mask != 0 {
		m.lockstepWideTask(c, t, perLevel, total)
		return
	}
	children, cost := c.expand(m, t)
	end := c.muRun(t.ready, cost)
	asm := m.cost.PECost(m.cost.MsgAssembleCycles)
	prevNext := -1 // burst accounting, mirroring the concurrent engine
	for _, ch := range children {
		dest := m.assign[ch.to]
		if dest == c.id {
			c.pushTask(task{
				local:  m.localIdx[ch.to],
				marker: t.marker,
				rule:   t.rule,
				state:  ch.state,
				fn:     t.fn,
				value:  ch.value,
				origin: t.origin,
				level:  ch.level,
				ready:  end,
			})
			continue
		}
		cuCycles := m.cost.MsgAssembleCycles + m.cost.MailboxEnqueueCycles + m.cost.ArbiterGrantCycles
		sendEnd := c.cuRun(end, m.cost.PECost(cuCycles))
		hops := m.net.Hops(c.id, dest)
		transit := timing.Time(hops)*m.cost.HopLatency + timing.Time(hops-1)*asm
		dc := m.clusters[dest]

		// The lockstep engine bypasses the live ICN, so the per-message
		// fault decisions are drawn here: a drop means the message left
		// the sender and died in transit (copies=0), a duplicate is
		// delivered twice, a delay lengthens the transit. Any of these
		// poisons the run via RunContext's corruption check.
		copies := 1
		if inj := m.inj; inj != nil {
			if inj.DropICN() {
				copies = 0
			} else {
				if d, ok := inj.DelayICN(); ok {
					transit += timing.Time(d)
				}
				if inj.DupICN() {
					copies = 2
				}
			}
		}

		c.stats.sends++
		c.destSends[dest]++
		c.stats.hops += int64(hops)
		if next := m.net.NextHop(c.id, dest); next != prevNext {
			c.stats.bursts++
			prevNext = next
		}
		c.stats.comm += m.cost.PECost(cuCycles) + transit + asm
		*total++
		for len(*perLevel) <= int(ch.level) {
			*perLevel = append(*perLevel, 0)
		}
		(*perLevel)[ch.level]++

		for k := 0; k < copies; k++ {
			ready := dc.cuRun(sendEnd+transit, asm)
			dc.pushTask(task{
				local:  m.localIdx[ch.to],
				marker: t.marker,
				rule:   t.rule,
				state:  ch.state,
				fn:     t.fn,
				value:  ch.value,
				origin: t.origin,
				level:  ch.level,
				ready:  ready,
			})
		}
	}
}
