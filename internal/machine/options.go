package machine

import (
	"fmt"

	"snap1/internal/partition"
	"snap1/internal/perfmon"
	"snap1/internal/timing"
)

// Option configures a machine under construction. Options apply in the
// order given, starting from DefaultConfig; a whole Config also satisfies
// Option (it replaces the accumulated configuration wholesale), so the
// legacy struct form composes with the functional form:
//
//	m, err := machine.NewFromOptions(machine.PaperConfig(),
//		machine.WithDeterministic(true))
type Option interface {
	applyOption(*Config)
}

// applyOption makes Config itself an Option: passing a Config replaces
// the accumulated configuration, so NewFromOptions(cfg) ≡ New(cfg).
func (c Config) applyOption(dst *Config) { *dst = c }

type optionFunc func(*Config)

func (f optionFunc) applyOption(c *Config) { f(c) }

// NewFromOptions constructs a machine from DefaultConfig refined by opts.
func NewFromOptions(opts ...Option) (*Machine, error) {
	return New(ApplyOptions(DefaultConfig(), opts...))
}

// ApplyOptions returns base refined by opts in order (for callers that
// assemble a Config to hand to another layer, e.g. the query engine).
func ApplyOptions(base Config, opts ...Option) Config {
	for _, o := range opts {
		o.applyOption(&base)
	}
	return base
}

// WithClusters sets the array size.
func WithClusters(n int) Option {
	return optionFunc(func(c *Config) { c.Clusters = n })
}

// WithMarkerUnits sets the per-cluster marker-unit count and how many of
// the lowest-numbered clusters get one extra MU.
func WithMarkerUnits(perCluster, extraClusters int) Option {
	return optionFunc(func(c *Config) {
		c.MUsPerCluster = perCluster
		c.ExtraMUClusters = extraClusters
	})
}

// WithNodesPerCluster sets each cluster's node-table capacity.
func WithNodesPerCluster(n int) Option {
	return optionFunc(func(c *Config) { c.NodesPerCluster = n })
}

// WithCapacityFor grows the per-cluster node-table capacity so that a
// knowledge base of totalNodes (post-preprocessing) fits the configured
// cluster count. Apply it after any option that changes Clusters.
func WithCapacityFor(totalNodes int) Option {
	return optionFunc(func(c *Config) {
		if c.Clusters <= 0 {
			return
		}
		if need := (totalNodes + c.Clusters - 1) / c.Clusters; need > c.NodesPerCluster {
			c.NodesPerCluster = need
		}
	})
}

// WithMailboxCap bounds each cluster's inbound ICN mailbox region.
func WithMailboxCap(n int) Option {
	return optionFunc(func(c *Config) { c.MailboxCap = n })
}

// WithMaxDepth bounds propagation path length.
func WithMaxDepth(n int) Option {
	return optionFunc(func(c *Config) { c.MaxDepth = n })
}

// WithCost installs a cycle-cost table.
func WithCost(cm timing.CostModel) Option {
	return optionFunc(func(c *Config) { c.Cost = cm })
}

// WithPartition selects the node-allocation strategy by name:
// "sequential", "round-robin", "semantic", or "refined". An unknown name
// surfaces as an error from New/NewFromOptions.
func WithPartition(name string) Option {
	return optionFunc(func(c *Config) {
		fn, err := partition.ByName(name)
		if err != nil {
			c.err = fmt.Errorf("machine: %w", err)
			return
		}
		c.Partition = fn
	})
}

// WithPlacement toggles the hop-aware placement stage that follows
// partitioning (see Config.Placement).
func WithPlacement(on bool) Option {
	return optionFunc(func(c *Config) { c.Placement = on })
}

// WithPartitionFunc installs a custom node-allocation function.
func WithPartitionFunc(fn partition.Func) Option {
	return optionFunc(func(c *Config) { c.Partition = fn })
}

// WithSeed sets the multiport-memory arbiter tie-break seed.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *Config) { c.Seed = seed })
}

// WithDeterministic selects the lockstep measurement engine.
func WithDeterministic(on bool) Option {
	return optionFunc(func(c *Config) { c.Deterministic = on })
}

// WithMonitor attaches a performance-collection board.
func WithMonitor(mon *perfmon.Collector) Option {
	return optionFunc(func(c *Config) { c.Monitor = mon })
}
