package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Randomized differential testing: arbitrary programs over arbitrary
// networks must (a) never error or hang, (b) produce identical marker
// state and collections on the lockstep and concurrent engines, and
// (c) produce identical results on repeated lockstep runs.

// randomKB builds a random network with interned relations and colors.
func randomKB(rng *rand.Rand) (*semnet.KB, []semnet.RelType, []semnet.Color) {
	kb := semnet.NewKB()
	nRels := 2 + rng.Intn(3)
	rels := make([]semnet.RelType, nRels)
	for i := range rels {
		rels[i] = kb.Relation(fmt.Sprintf("r%d", i))
	}
	nCols := 2 + rng.Intn(3)
	cols := make([]semnet.Color, nCols)
	for i := range cols {
		cols[i] = kb.ColorFor(fmt.Sprintf("col%d", i))
	}
	n := 6 + rng.Intn(50)
	for i := 0; i < n; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), cols[rng.Intn(nCols)])
	}
	for i := 0; i < n*3; i++ {
		kb.MustAddLink(
			semnet.NodeID(rng.Intn(n)), rels[rng.Intn(nRels)],
			float32(rng.Intn(5)), semnet.NodeID(rng.Intn(n)))
	}
	return kb, rels, cols
}

// randomProgram emits a random but valid instruction stream. Propagation
// uses order-free functions (nop/min/max are commutative-idempotent;
// add settles to min-merge) so engine comparison is exact.
func randomProgram(rng *rand.Rand, kb *semnet.KB, rels []semnet.RelType, cols []semnet.Color) *isa.Program {
	p := isa.NewProgram()
	mk := func() semnet.MarkerID { return semnet.MarkerID(rng.Intn(semnet.NumMarkers)) }
	fns := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncMin, semnet.FuncMax}
	fn := func() semnet.FuncCode { return fns[rng.Intn(len(fns))] }
	rel := func() semnet.RelType { return rels[rng.Intn(len(rels))] }
	spec := func() rules.Spec {
		switch rng.Intn(5) {
		case 0:
			return rules.Step(rel())
		case 1:
			return rules.Path(rel())
		case 2:
			return rules.Spread(rel(), rel())
		case 3:
			return rules.Seq(rel(), rel())
		default:
			return rules.Comb(rel(), rel())
		}
	}
	node := func() semnet.NodeID { return semnet.NodeID(rng.Intn(kb.NumNodes())) }

	steps := 5 + rng.Intn(25)
	for i := 0; i < steps; i++ {
		switch rng.Intn(12) {
		case 0:
			p.SearchNode(node(), mk(), float32(rng.Intn(8)))
		case 1:
			p.SearchRelation(rel(), mk(), float32(rng.Intn(8)))
		case 2:
			p.SearchColor(cols[rng.Intn(len(cols))], mk(), float32(rng.Intn(8)))
		case 3, 4, 5:
			p.Propagate(mk(), mk(), spec(), fn())
		case 6:
			p.And(mk(), mk(), mk(), fn())
		case 7:
			p.Or(mk(), mk(), mk(), fn())
		case 8:
			p.Not(mk(), mk(), float32(rng.Intn(8)), isa.Condition(rng.Intn(7)))
		case 9:
			p.Set(mk(), float32(rng.Intn(8)))
		case 10:
			p.ClearM(mk())
		default:
			p.Barrier()
		}
	}
	p.CollectNode(semnet.MarkerID(rng.Intn(semnet.NumMarkers)))
	return p
}

type machineState struct {
	markers     map[string]float32
	collections []string
}

func runProgram(t *testing.T, kb *semnet.KB, p *isa.Program, det bool, clusters int, seed int64) machineState {
	t.Helper()
	return runProgramPartitioned(t, kb, p, det, clusters, seed, partition.RoundRobin, false)
}

func runProgramPartitioned(t *testing.T, kb *semnet.KB, p *isa.Program, det bool, clusters int, seed int64, strat partition.Func, place bool) machineState {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Clusters = clusters
	cfg.NodesPerCluster = kb.NumNodes() + 32
	cfg.Deterministic = det
	cfg.Partition = strat
	cfg.Placement = place
	cfg.Seed = seed
	cfg.MaxDepth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(p)
	if err != nil {
		t.Fatalf("det=%v: %v", det, err)
	}
	st := machineState{markers: make(map[string]float32)}
	for id := 0; id < kb.NumNodes(); id++ {
		for mk := 0; mk < semnet.NumMarkers; mk++ {
			if m.TestMarker(semnet.NodeID(id), semnet.MarkerID(mk)) {
				key := fmt.Sprintf("%d/%d", id, mk)
				st.markers[key] = m.MarkerValue(semnet.NodeID(id), semnet.MarkerID(mk))
			}
		}
	}
	for _, c := range res.Collections {
		for _, it := range c.Items {
			st.collections = append(st.collections,
				fmt.Sprintf("%d:%d=%v", c.Instr, it.Node, it.Value))
		}
	}
	return st
}

func diffStates(t *testing.T, trial int, a, b machineState, what string) {
	t.Helper()
	if len(a.markers) != len(b.markers) {
		t.Fatalf("trial %d (%s): %d vs %d set markers", trial, what, len(a.markers), len(b.markers))
	}
	for k, v := range a.markers {
		if b.markers[k] != v {
			t.Fatalf("trial %d (%s): marker %s: %v vs %v", trial, what, k, v, b.markers[k])
		}
	}
	if len(a.collections) != len(b.collections) {
		t.Fatalf("trial %d (%s): collection sizes differ", trial, what)
	}
	for i := range a.collections {
		if a.collections[i] != b.collections[i] {
			t.Fatalf("trial %d (%s): collection row %d: %s vs %s",
				trial, what, i, a.collections[i], b.collections[i])
		}
	}
}

func TestRandomProgramsEngineEquivalence(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		kb, rels, cols := randomKB(rng)
		p := randomProgram(rng, kb, rels, cols)
		clusters := 1 + rng.Intn(8)

		lock := runProgram(t, kb, p, true, clusters, 1)
		conc := runProgram(t, kb, p, false, clusters, 1)
		diffStates(t, trial, lock, conc, "lockstep vs concurrent")

		// Lockstep re-runs reproduce exactly.
		lock2 := runProgram(t, kb, p, true, clusters, 2)
		diffStates(t, trial, lock, lock2, "lockstep repeat")

		// Cluster count must not change functional results.
		other := runProgram(t, kb, p, true, clusters%8+1, 1)
		diffStates(t, trial, lock, other, "cluster-count invariance")
	}
}

// randomPropagateProgram emits a propagation-dominated stream: long runs of
// back-to-back PROPAGATEs with only occasional barriers, so the overlap
// window stays wide and the batched mailbox-drain / flush paths of the
// concurrent engine see sustained multi-instruction load.
func randomPropagateProgram(rng *rand.Rand, kb *semnet.KB, rels []semnet.RelType, cols []semnet.Color) *isa.Program {
	p := isa.NewProgram()
	mk := func() semnet.MarkerID { return semnet.MarkerID(rng.Intn(semnet.NumMarkers)) }
	fns := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncMin, semnet.FuncMax}
	rel := func() semnet.RelType { return rels[rng.Intn(len(rels))] }
	spec := func() rules.Spec {
		switch rng.Intn(3) {
		case 0:
			return rules.Step(rel())
		case 1:
			return rules.Path(rel())
		default:
			return rules.Spread(rel(), rel())
		}
	}
	for i := 0; i < 2+rng.Intn(3); i++ {
		p.SearchColor(cols[rng.Intn(len(cols))], mk(), float32(rng.Intn(8)))
	}
	steps := 20 + rng.Intn(20)
	for i := 0; i < steps; i++ {
		p.Propagate(mk(), mk(), spec(), fns[rng.Intn(len(fns))])
		if rng.Intn(8) == 0 {
			p.Barrier()
		}
	}
	p.Barrier()
	p.CollectNode(semnet.MarkerID(rng.Intn(semnet.NumMarkers)))
	return p
}

// TestRandomPropagateHeavyEquivalence is the differential check for the
// batched host paths: propagation-heavy programs must produce identical
// marker sets, marker values, and collection rows on the lockstep engine
// and on the concurrent engine under several scheduling seeds.
func TestRandomPropagateHeavyEquivalence(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		kb, rels, cols := randomKB(rng)
		p := randomPropagateProgram(rng, kb, rels, cols)
		clusters := 1 + rng.Intn(8)

		lock := runProgram(t, kb, p, true, clusters, 1)
		for seed := int64(1); seed <= 3; seed++ {
			conc := runProgram(t, kb, p, false, clusters, seed)
			diffStates(t, trial, lock, conc,
				fmt.Sprintf("lockstep vs concurrent (seed %d)", seed))
		}
	}
}

// TestRandomProgramsPartitionInvariance pins the partitioner down as a
// pure performance knob: the same program over the same network must
// produce bit-identical marker state and collections under every
// partitioning strategy, with and without the hypercube placement
// stage, on both engines. The strategy under test and the engine pair
// are drawn from the fuzz tape so successive trials cover the product.
func TestRandomProgramsPartitionInvariance(t *testing.T) {
	strategies := []struct {
		name  string
		strat partition.Func
		place bool
	}{
		{"sequential", partition.Sequential, false},
		{"round-robin", partition.RoundRobin, false},
		{"semantic", partition.Semantic, false},
		{"refined", partition.Refined, false},
		{"refined+place", partition.Refined, true},
	}
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		kb, rels, cols := randomKB(rng)
		p := randomProgram(rng, kb, rels, cols)
		clusters := 1 + rng.Intn(8)

		// Reference: round-robin on the lockstep engine.
		ref := runProgram(t, kb, p, true, clusters, 1)

		// One tape-drawn challenger per trial keeps runtime linear
		// while covering every strategy across the trial sweep.
		s := strategies[rng.Intn(len(strategies))]
		det := rng.Intn(2) == 0
		got := runProgramPartitioned(t, kb, p, det, clusters, 1, s.strat, s.place)
		diffStates(t, trial, ref, got,
			fmt.Sprintf("round-robin vs %s (det=%v)", s.name, det))

		// Same strategy, fresh machine: per-strategy reproducibility.
		again := runProgramPartitioned(t, kb, p, true, clusters, 2, s.strat, s.place)
		ref2 := runProgramPartitioned(t, kb, p, true, clusters, 1, s.strat, s.place)
		diffStates(t, trial, ref2, again, s.name+" repeat")
	}
}

// TestLockstepVirtualTimeReproducible pins the bit-identity of the
// deterministic engine's simulated-time accounting: the same program on
// fresh machines must report the same virtual end time and step counts,
// regardless of host scheduling or arbiter seed.
func TestLockstepVirtualTimeReproducible(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		kb, rels, cols := randomKB(rng)
		p := randomPropagateProgram(rng, kb, rels, cols)

		run := func(seed int64) (timing.Time, int64, int64) {
			cfg := DefaultConfig()
			cfg.Clusters = 4
			cfg.NodesPerCluster = kb.NumNodes() + 32
			cfg.Deterministic = true
			cfg.Partition = partition.RoundRobin
			cfg.Seed = seed
			cfg.MaxDepth = 32
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if err := m.LoadKB(kb); err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			return res.Time, res.Profile.PropSteps, res.Profile.PropMessages
		}

		t1, s1, m1 := run(1)
		t2, s2, m2 := run(99)
		if t1 != t2 || s1 != s2 || m1 != m2 {
			t.Fatalf("trial %d: lockstep run not reproducible: time %d vs %d, steps %d vs %d, msgs %d vs %d",
				trial, t1, t2, s1, s2, m1, m2)
		}
	}
}
