package machine

import (
	"testing"

	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// chainKB builds a -isa-> b -isa-> c -isa-> d with weight 1 links.
func chainKB(t *testing.T) (*semnet.KB, []semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("concept")
	isaRel := kb.Relation("is-a")
	names := []string{"a", "b", "c", "d"}
	ids := make([]semnet.NodeID, len(names))
	for i, n := range names {
		ids[i] = kb.MustAddNode(n, col)
	}
	for i := 0; i+1 < len(ids); i++ {
		kb.MustAddLink(ids[i], isaRel, 1, ids[i+1])
	}
	return kb, ids, isaRel
}

func newSmall(t *testing.T, det bool, part partition.Func) (*Machine, []semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb, ids, rel := chainKB(t)
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.NodesPerCluster = 8
	cfg.Deterministic = det
	cfg.Partition = part
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatalf("LoadKB: %v", err)
	}
	return m, ids, rel
}

func TestPropagatePathBothEngines(t *testing.T) {
	for _, det := range []bool{false, true} {
		for _, part := range []partition.Func{partition.RoundRobin, partition.Sequential, partition.Semantic} {
			m, ids, rel := newSmall(t, det, part)
			p := isa.NewProgram()
			m1, m2 := semnet.MarkerID(1), semnet.MarkerID(2)
			p.SearchNode(ids[0], m1, 0)
			p.Propagate(m1, m2, rules.Path(rel), semnet.FuncAdd)
			p.CollectNode(m2)

			res, err := m.Run(p)
			if err != nil {
				t.Fatalf("det=%v Run: %v", det, err)
			}
			items := res.Collected(0)
			if len(items) != 3 {
				t.Fatalf("det=%v: collected %d items, want 3 (b,c,d): %+v", det, len(items), items)
			}
			// Path-cost accumulation: b=1, c=2, d=3.
			want := map[semnet.NodeID]float32{ids[1]: 1, ids[2]: 2, ids[3]: 3}
			for _, it := range items {
				if want[it.Node] != it.Value {
					t.Errorf("det=%v node %d: value %v, want %v", det, it.Node, it.Value, want[it.Node])
				}
				if it.Origin != ids[0] {
					t.Errorf("det=%v node %d: origin %d, want %d", det, it.Node, it.Origin, ids[0])
				}
			}
			if res.Time <= 0 {
				t.Errorf("det=%v: nonpositive simulated time %v", det, res.Time)
			}
		}
	}
}

func TestSpreadRuleSwitchesRelation(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	r1, r2 := kb.Relation("is-a"), kb.Relation("last")
	a := kb.MustAddNode("a", col)
	b := kb.MustAddNode("b", col)
	c := kb.MustAddNode("c", col)
	d := kb.MustAddNode("d", col)
	e := kb.MustAddNode("e", col)
	kb.MustAddLink(a, r1, 1, b) // followed (r1 chain)
	kb.MustAddLink(b, r2, 1, c) // switch to r2
	kb.MustAddLink(c, r2, 1, d) // continue on r2
	kb.MustAddLink(d, r1, 1, e) // NOT followed: after the switch only r2

	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 8
	cfg.Deterministic = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	p := isa.NewProgram()
	m1, m2 := semnet.Binary(0), semnet.Binary(1)
	p.SearchNode(a, m1, 0)
	p.Propagate(m1, m2, rules.Spread(r1, r2), semnet.FuncNop)
	p.CollectNode(m2)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(0)
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("collected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collected %v, want %v", got, want)
		}
	}
	if m.TestMarker(e, m2) {
		t.Error("marker leaked past the r2 switch onto an r1 link")
	}
}

func TestEnginesAgreeOnFinalState(t *testing.T) {
	build := func(det bool) map[semnet.NodeID]float32 {
		m, ids, rel := newSmall(t, det, partition.RoundRobin)
		p := isa.NewProgram()
		m1, m2 := semnet.MarkerID(0), semnet.MarkerID(3)
		p.SearchNode(ids[0], m1, 0)
		p.Propagate(m1, m2, rules.Path(rel), semnet.FuncAdd)
		p.Barrier()
		vals := make(map[semnet.NodeID]float32)
		if _, err := m.Run(p); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if m.TestMarker(id, m2) {
				vals[id] = m.MarkerValue(id, m2)
			}
		}
		return vals
	}
	conc, lock := build(false), build(true)
	if len(conc) != len(lock) {
		t.Fatalf("engines disagree: concurrent %v vs lockstep %v", conc, lock)
	}
	for id, v := range lock {
		if conc[id] != v {
			t.Errorf("node %d: concurrent %v, lockstep %v", id, conc[id], v)
		}
	}
}

func TestBooleanAndCollect(t *testing.T) {
	m, ids, rel := newSmall(t, true, partition.Sequential)
	_ = rel
	p := isa.NewProgram()
	b0, b1, b2 := semnet.Binary(0), semnet.Binary(1), semnet.Binary(2)
	p.SearchNode(ids[0], b0, 0)
	p.SearchNode(ids[1], b0, 0)
	p.SearchNode(ids[1], b1, 0)
	p.SearchNode(ids[2], b1, 0)
	p.And(b0, b1, b2, semnet.FuncNop)
	p.CollectNode(b2)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Names(0)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("AND intersection = %v, want [b]", got)
	}
}

func TestRunWithoutKB(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(isa.NewProgram()); err != ErrNoKB {
		t.Fatalf("Run without KB: err=%v, want ErrNoKB", err)
	}
}
