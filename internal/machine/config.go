// Package machine implements the SNAP-1 array machine: 32 multiprocessing
// clusters (each a processing unit, marker units, and a communication
// unit), the dual-processor central controller, the global broadcast bus,
// the 4-ary hypercube interconnect, and the tiered barrier synchronization
// scheme — executing programs written in the SNAP instruction set over a
// partitioned semantic network.
//
// Two execution engines share identical marker semantics:
//
//   - the concurrent engine (default) runs one goroutine per cluster with
//     real mailbox backpressure and the live termination-detection
//     protocol, modeling the prototype's MIMD propagation;
//   - the lockstep engine (Config.Deterministic) processes the same task
//     causality graph in canonical breadth-first order, giving exactly
//     reproducible virtual times and message counts for the measurement
//     harness.
//
// Final marker state is identical between engines; virtual times and
// message counts from the concurrent engine can vary slightly run-to-run
// with goroutine scheduling, exactly as wall-clock measurements on the
// hardware did.
package machine

import (
	"fmt"

	"snap1/internal/partition"
	"snap1/internal/perfmon"
	"snap1/internal/timing"
)

// Config sizes and parameterizes a machine.
type Config struct {
	// Clusters is the array size. The prototype has 32; the paper's
	// evaluation uses 16.
	Clusters int

	// MUsPerCluster is the marker-unit count in every cluster;
	// ExtraMUClusters of the lowest-numbered clusters get one more
	// (the prototype mixes four- and five-PE clusters).
	MUsPerCluster   int
	ExtraMUClusters int

	// NodesPerCluster is each cluster's node-table capacity (1024 in the
	// prototype, giving the 32K-node knowledge base).
	NodesPerCluster int

	// MailboxCap bounds each cluster's inbound ICN mailbox region;
	// senders block beyond it (the burst-absorption limit of Fig. 8).
	MailboxCap int

	// InstrQueueCap is the PU's circular instruction queue depth — the
	// maximum window of overlapped instructions ("up to 64 instructions
	// can be overlapped").
	InstrQueueCap int

	// MaxDepth bounds propagation path length as a safety net against
	// pathological rules (the paper's measured maxima are 10-15 steps).
	MaxDepth int

	// Cost is the calibrated cycle-cost table.
	Cost timing.CostModel

	// Partition allocates knowledge-base nodes to clusters.
	Partition partition.Func

	// Placement, when set, follows partitioning with the hop-aware
	// placement stage (partition.Place): regions are relabeled onto
	// hypercube addresses so heavy-traffic cluster pairs land few hops
	// apart. A pure performance knob — results are bit-identical with it
	// on or off; only communication charges change.
	Placement bool

	// Seed drives the multiport-memory arbiter's random tie-break.
	Seed int64

	// Deterministic selects the lockstep measurement engine.
	Deterministic bool

	// Monitor, when non-nil, receives performance-collection events.
	Monitor *perfmon.Collector

	// err records a deferred Option failure (e.g. an unknown partition
	// name); Validate surfaces it.
	err error
}

// DefaultConfig is the full 32-cluster prototype configuration:
// 16 five-PE clusters and 16 four-PE clusters, 144 PEs total.
func DefaultConfig() Config {
	return Config{
		Clusters:        32,
		MUsPerCluster:   2,
		ExtraMUClusters: 16,
		NodesPerCluster: 1024,
		MailboxCap:      64,
		InstrQueueCap:   64,
		MaxDepth:        256,
		Cost:            timing.DefaultCostModel(),
		Partition:       partition.Semantic,
		Seed:            1,
	}
}

// PaperConfig is the evaluation configuration of Section IV: a 16-cluster,
// 72-processor array (eight five-PE and eight four-PE clusters).
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Clusters = 16
	cfg.ExtraMUClusters = 8
	return cfg
}

// effExtra clamps ExtraMUClusters to the cluster count so configurations
// scaled down from a larger template stay valid.
func (c Config) effExtra() int {
	if c.ExtraMUClusters > c.Clusters {
		return c.Clusters
	}
	return c.ExtraMUClusters
}

// PEs reports the total processor count: per cluster one PU, one CU, and
// its marker units.
func (c Config) PEs() int {
	return c.Clusters*2 + c.MarkerUnits()
}

// MarkerUnits reports the array's total MU count (the paper's "80 marker
// units" for the full configuration).
func (c Config) MarkerUnits() int {
	return c.Clusters*c.MUsPerCluster + c.effExtra()
}

// musOf reports cluster i's marker-unit count.
func (c Config) musOf(i int) int {
	n := c.MUsPerCluster
	if i < c.ExtraMUClusters {
		n++
	}
	return n
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.err != nil {
		return c.err
	}
	switch {
	case c.Clusters <= 0:
		return fmt.Errorf("machine: Clusters must be positive, got %d", c.Clusters)
	case c.MUsPerCluster <= 0:
		return fmt.Errorf("machine: MUsPerCluster must be positive, got %d", c.MUsPerCluster)
	case c.ExtraMUClusters < 0:
		return fmt.Errorf("machine: ExtraMUClusters must be non-negative, got %d", c.ExtraMUClusters)
	case c.NodesPerCluster <= 0:
		return fmt.Errorf("machine: NodesPerCluster must be positive, got %d", c.NodesPerCluster)
	case c.MailboxCap <= 0:
		return fmt.Errorf("machine: MailboxCap must be positive, got %d", c.MailboxCap)
	case c.InstrQueueCap <= 0:
		return fmt.Errorf("machine: InstrQueueCap must be positive, got %d", c.InstrQueueCap)
	case c.MaxDepth <= 0:
		return fmt.Errorf("machine: MaxDepth must be positive, got %d", c.MaxDepth)
	case c.Partition == nil:
		return fmt.Errorf("machine: Partition function required")
	}
	return nil
}
