package machine

import (
	"fmt"
	"sort"

	"snap1/internal/isa"
	"snap1/internal/perfmon"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// exec runs one non-PROPAGATE instruction. Search, boolean, set/clear and
// marker-maintenance instructions execute data-parallel across the array
// (SIMD phase); node maintenance touches the owning cluster; retrieval
// runs on the controller against each cluster's dual-port memory.
func (m *Machine) exec(st *runState, idx int, in *isa.Instruction, bAt timing.Time) error {
	var end timing.Time // exclusive execution time of this instruction
	var err error
	switch in.Op {
	case isa.OpSearchNode:
		end, err = m.execSearchNode(in, bAt)
	case isa.OpSearchRelation:
		end = m.execScan(bAt, func(c *cluster) int64 {
			var extra int64
			for local := 0; local < c.store.NumNodes(); local++ {
				links := c.store.Links(local)
				extra += m.cost.RelSlotCycles * int64(len(links))
				for _, l := range links {
					if l.Rel == in.Rel {
						c.markSearch(local, in)
						break
					}
				}
			}
			return extra
		})
	case isa.OpSearchColor:
		end = m.execScan(bAt, func(c *cluster) int64 {
			for local := 0; local < c.store.NumNodes(); local++ {
				if c.store.Color(local) == in.Color {
					c.markSearch(local, in)
				}
			}
			return m.cost.NodeTestCycles * int64(c.store.NumNodes())
		})
	case isa.OpSetMarker:
		end = m.execScan(bAt, func(c *cluster) int64 {
			words := c.store.SetAll(in.M1, in.Value)
			return m.cost.StatusWordCycles * int64(words)
		})
	case isa.OpClearMarker:
		end = m.execScan(bAt, func(c *cluster) int64 {
			words := c.store.ClearAll(in.M1)
			return m.cost.StatusWordCycles * int64(words)
		})
	case isa.OpFuncMarker:
		end = m.execScan(bAt, func(c *cluster) int64 {
			words := c.store.FuncAll(in.M1, in.Fn, in.Value)
			return m.cost.StatusWordCycles * int64(words)
		})
	case isa.OpAndMarker:
		end = m.execScan(bAt, func(c *cluster) int64 {
			words := c.store.And(in.M1, in.M2, in.M3, in.Fn)
			return m.cost.StatusWordCycles * int64(words)
		})
	case isa.OpOrMarker:
		end = m.execScan(bAt, func(c *cluster) int64 {
			words := c.store.Or(in.M1, in.M2, in.M3, in.Fn)
			return m.cost.StatusWordCycles * int64(words)
		})
	case isa.OpNotMarker:
		end = m.execNotMarker(in, bAt)
	case isa.OpMarkerSetColor:
		end = m.execScan(bAt, func(c *cluster) int64 {
			var n int64
			words := c.store.ForEachSet(in.M1, func(local int) {
				_ = c.store.SetColor(local, in.Color)
				_ = m.kb.SetColor(c.store.Global(local), in.Color)
				n++
			})
			return m.cost.StatusWordCycles*int64(words) + m.cost.NodeTestCycles*n
		})
	case isa.OpCreate:
		end, err = m.execCreate(in, bAt)
	case isa.OpDelete:
		end, err = m.execDelete(in, bAt)
	case isa.OpSetColor:
		end, err = m.execSetColor(in, bAt)
	case isa.OpMarkerCreate, isa.OpMarkerDelete:
		end, err = m.execMarkerLinks(in, bAt)
	case isa.OpCollectNode, isa.OpCollectRelation, isa.OpCollectColor:
		end, err = m.execCollect(st, idx, in, bAt)
	case isa.OpCommEnd:
		// The overlap window was already flushed; only the controller's
		// barrier sampling cost remains.
		m.ctrl.Tick(m.cost.BarrierBaseCycles)
		st.prof.Overhead.Synchronization += m.cost.CtrlCost(m.cost.BarrierBaseCycles)
		end = m.cost.CtrlCost(m.cost.BarrierBaseCycles)
	default:
		return fmt.Errorf("machine: opcode %s not executable here", in.Op)
	}
	if err != nil {
		return err
	}
	st.prof.Record(in.Op, end)
	return nil
}

// markSearch activates a search hit: marker set with the search value.
func (c *cluster) markSearch(local int, in *isa.Instruction) {
	c.store.Set(local, in.M1)
	c.store.SetValue(local, in.M1, in.Value, c.store.Global(local))
}

// execScan runs a data-parallel sweep on every cluster: PU decode followed
// by one marker-unit pass whose extra cycle cost the callback reports.
// It returns the instruction's exclusive execution time — the slowest
// cluster's decode-plus-sweep cost, excluding any wait for earlier work
// still occupying the marker units (profiles attribute exclusive time, as
// the paper's instrumentation does).
func (m *Machine) execScan(bAt timing.Time, f func(c *cluster) int64) timing.Time {
	var excl timing.Time
	decode := m.cost.PECost(m.cost.DecodeCycles + m.cost.EnqueueCycles)
	for _, c := range m.clusters {
		ready := c.decode(m, bAt)
		cycles := f(c)
		c.muRun(ready, m.cost.PECost(cycles))
		excl = timing.Max(excl, decode+m.cost.PECost(cycles))
	}
	return excl
}

func (m *Machine) execSearchNode(in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	if int(in.Node) >= len(m.assign) {
		return 0, fmt.Errorf("node %d not in knowledge base", in.Node)
	}
	owner := m.assign[in.Node]
	for _, c := range m.clusters {
		ready := c.decode(m, bAt)
		var cycles int64
		if c.id == owner {
			cycles = m.cost.NodeTestCycles + m.cost.StatusWordCycles
			c.markSearch(int(m.localIdx[in.Node]), in)
		}
		c.muRun(ready, m.cost.PECost(cycles))
	}
	excl := m.cost.PECost(m.cost.DecodeCycles + m.cost.EnqueueCycles +
		m.cost.NodeTestCycles + m.cost.StatusWordCycles)
	return excl, nil
}

func (m *Machine) execNotMarker(in *isa.Instruction, bAt timing.Time) timing.Time {
	return m.execScan(bAt, func(c *cluster) int64 {
		words := int64(c.store.Words())
		if in.Cond == isa.CondNone {
			c.store.Not(in.M1, in.M2)
			return m.cost.StatusWordCycles * words
		}
		// Value-conditional complement: m2 is set where m1 is clear or
		// where m1's value fails the condition.
		var extra int64
		for local := 0; local < c.store.NumNodes(); local++ {
			fails := !c.store.Test(local, in.M1) ||
				!in.Cond.Eval(c.store.Value(local, in.M1), in.Value)
			if fails {
				c.store.Set(local, in.M2)
			} else {
				c.store.Clear(local, in.M2)
			}
			extra += m.cost.NodeTestCycles
		}
		return m.cost.StatusWordCycles*words + extra
	})
}

func (m *Machine) execCreate(in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	if int(in.Node) >= len(m.assign) || int(in.EndNode) >= len(m.assign) {
		return 0, fmt.Errorf("link %d->%d references missing node", in.Node, in.EndNode)
	}
	c := m.clusters[m.assign[in.Node]]
	l := semnet.Link{Rel: in.Rel, Weight: in.Weight, To: in.EndNode}
	if err := c.store.AddLink(int(m.localIdx[in.Node]), l); err != nil {
		return 0, err
	}
	if err := m.kb.AddLink(in.Node, in.Rel, in.Weight, in.EndNode); err != nil {
		return 0, err
	}
	ready := c.decode(m, bAt)
	cycles := m.cost.RelSlotCycles + m.cost.NodeTestCycles
	c.muRun(ready, m.cost.PECost(cycles))
	return m.cost.PECost(m.cost.DecodeCycles + m.cost.EnqueueCycles + cycles), nil
}

func (m *Machine) execDelete(in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	if int(in.Node) >= len(m.assign) {
		return 0, fmt.Errorf("node %d not in knowledge base", in.Node)
	}
	c := m.clusters[m.assign[in.Node]]
	if c.store.RemoveLink(int(m.localIdx[in.Node]), in.Rel, in.EndNode) {
		m.kb.RemoveLink(in.Node, in.Rel, in.EndNode)
	}
	ready := c.decode(m, bAt)
	cycles := m.cost.RelSlotCycles * semnet.RelationSlots
	c.muRun(ready, m.cost.PECost(cycles))
	return m.cost.PECost(m.cost.DecodeCycles + m.cost.EnqueueCycles + cycles), nil
}

func (m *Machine) execSetColor(in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	if int(in.Node) >= len(m.assign) {
		return 0, fmt.Errorf("node %d not in knowledge base", in.Node)
	}
	c := m.clusters[m.assign[in.Node]]
	if err := c.store.SetColor(int(m.localIdx[in.Node]), in.Color); err != nil {
		return 0, err
	}
	_ = m.kb.SetColor(in.Node, in.Color)
	ready := c.decode(m, bAt)
	c.muRun(ready, m.cost.PECost(m.cost.NodeTestCycles))
	return m.cost.PECost(m.cost.DecodeCycles + m.cost.EnqueueCycles + m.cost.NodeTestCycles), nil
}

// execMarkerLinks implements MARKER-CREATE and MARKER-DELETE: every node
// holding the marker gains (or loses) a forward link to the end node and,
// optionally, a reverse link from it.
func (m *Machine) execMarkerLinks(in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	if int(in.EndNode) >= len(m.assign) {
		return 0, fmt.Errorf("end node %d not in knowledge base", in.EndNode)
	}
	create := in.Op == isa.OpMarkerCreate
	endCluster := m.clusters[m.assign[in.EndNode]]
	var excl timing.Time
	var firstErr error
	for _, c := range m.clusters {
		ready := c.decode(m, bAt)
		var n int64
		words := c.store.ForEachSet(in.M1, func(local int) {
			if firstErr != nil {
				return
			}
			n++
			node := c.store.Global(local)
			if create {
				if err := c.store.AddLink(local, semnet.Link{Rel: in.Rel, Weight: 0, To: in.EndNode}); err != nil {
					firstErr = err
					return
				}
				m.kb.MustAddLink(node, in.Rel, 0, in.EndNode)
				if in.HasRev {
					if err := endCluster.store.AddLink(int(m.localIdx[in.EndNode]), semnet.Link{Rel: in.RevRel, Weight: 0, To: node}); err != nil {
						firstErr = err
						return
					}
					m.kb.MustAddLink(in.EndNode, in.RevRel, 0, node)
				}
			} else {
				if c.store.RemoveLink(local, in.Rel, in.EndNode) {
					m.kb.RemoveLink(node, in.Rel, in.EndNode)
				}
				if in.HasRev {
					if endCluster.store.RemoveLink(int(m.localIdx[in.EndNode]), in.RevRel, node) {
						m.kb.RemoveLink(in.EndNode, in.RevRel, node)
					}
				}
			}
		})
		cycles := m.cost.StatusWordCycles*int64(words) + 2*m.cost.RelSlotCycles*n
		c.muRun(ready, m.cost.PECost(cycles))
		excl = timing.Max(excl, m.cost.PECost(m.cost.DecodeCycles+m.cost.EnqueueCycles+cycles))
	}
	return excl, firstErr
}

// collectLess orders collection rows by (Node, To), the retrieval
// contract shared by the merge and the fallback comparison sort.
func collectLess(a, b *Item) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.To < b.To
}

// mergeCollectRuns merges len(runs)-1 presorted contiguous runs of
// items into one sorted slice. The run count is the cluster count
// (≤128, typically 16), so a linear scan of the run heads per output
// element beats a heap and needs no per-item allocation.
func mergeCollectRuns(items []Item, runs []int) []Item {
	nonEmpty := 0
	for r := 0; r+1 < len(runs); r++ {
		if runs[r+1] > runs[r] {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		return items
	}
	out := make([]Item, 0, len(items))
	heads := make([]int, len(runs)-1)
	for r := range heads {
		heads[r] = runs[r]
	}
	for len(out) < len(items) {
		best := -1
		for r := range heads {
			if heads[r] >= runs[r+1] {
				continue
			}
			if best < 0 || collectLess(&items[heads[r]], &items[heads[best]]) {
				best = r
			}
		}
		out = append(out, items[heads[best]])
		heads[best]++
	}
	return out
}

// execCollect implements the retrieval group: the controller switches to
// each cluster's dual-port memory in turn and pulls the matching rows —
// the cost component that grows proportionally to cluster count (Fig. 21).
func (m *Machine) execCollect(st *runState, idx int, in *isa.Instruction, bAt timing.Time) (timing.Time, error) {
	// The controller must see completed array state.
	m.ctrl.Sync(bAt)
	for _, c := range m.clusters {
		m.ctrl.Sync(c.last)
	}
	startCtrl := m.ctrl.Now()

	var items []Item
	emit := func(s *semnet.Store, local int) int64 {
		return emitCollect(in, s, local, &items)
	}

	// The result contract is (Node, To)-sorted rows. Two host paths
	// build that order without the seed's reflection sort; both charge
	// the identical virtual-time pattern (per-cluster setup plus
	// per-row transfer cycles).
	total := 0
	for _, c := range m.clusters {
		total += c.store.CountSet(in.M1)
	}
	if total*4 >= len(m.assign) {
		// Dense frontier: walk nodes in global-ID order, probing each
		// node's bit — already sorted, no merge. One probe per node
		// beats merging K runs once a quarter of the array is marked.
		counts := make([]int64, len(m.clusters))
		for id := range m.assign {
			ci := m.assign[id]
			c := m.clusters[ci]
			local := int(m.localIdx[id])
			if !c.store.Test(local, in.M1) {
				continue
			}
			counts[ci] += emit(c.store, local)
		}
		for ci := range m.clusters {
			m.ctrl.Tick(m.cost.CollectSetupPerCluster)
			m.ctrl.Tick(m.cost.CollectNodeCycles * counts[ci])
		}
	} else {
		// Sparse frontier: gather per cluster (skipping empty words via
		// the frontier-adaptive scan), then merge the presorted runs.
		// LoadKB buckets each cluster's members in ascending global-ID
		// order and ForEachSet yields ascending locals, so per-cluster
		// runs are almost always presorted; topology mutations can break
		// that, detected below, falling back to a comparison sort.
		runs := make([]int, 0, len(m.clusters)+1)
		sorted := true
		for _, c := range m.clusters {
			m.ctrl.Tick(m.cost.CollectSetupPerCluster)
			runs = append(runs, len(items))
			runStart := len(items)
			var n int64
			c.store.ForEachSet(in.M1, func(local int) {
				n += emit(c.store, local)
			})
			m.ctrl.Tick(m.cost.CollectNodeCycles * n)
			if sorted {
				for i := runStart + 1; i < len(items); i++ {
					if collectLess(&items[i], &items[i-1]) {
						sorted = false
						break
					}
				}
			}
		}
		runs = append(runs, len(items))
		if sorted {
			items = mergeCollectRuns(items, runs)
		} else {
			sort.Slice(items, func(i, j int) bool {
				return collectLess(&items[i], &items[j])
			})
		}
	}
	return m.finishCollect(st, idx, in, startCtrl, items), nil
}

// finishCollect records a collect's rows and controller-time attribution.
func (m *Machine) finishCollect(st *runState, idx int, in *isa.Instruction, startCtrl timing.Time, items []Item) timing.Time {
	st.res.Collections = append(st.res.Collections, Collection{Instr: idx, Op: in.Op, Items: items})
	st.prof.CollectedNodes += int64(len(items))

	end := m.ctrl.Now()
	st.prof.Overhead.Collection += end - startCtrl
	if mon := m.cfg.Monitor; mon != nil {
		mon.Emit(-1, perfmon.EvCollect, uint32(len(items)), end)
	}
	return end - startCtrl
}

// emitCollect appends local's rows for one collect instruction and
// returns the number of rows transferred (the virtual-time unit).
func emitCollect(in *isa.Instruction, s *semnet.Store, local int, items *[]Item) int64 {
	node := s.Global(local)
	switch in.Op {
	case isa.OpCollectNode:
		*items = append(*items, Item{
			Node:   node,
			Value:  s.Value(local, in.M1),
			Origin: s.Origin(local, in.M1),
			Color:  s.Color(local),
		})
		return 1
	case isa.OpCollectRelation:
		var n int64
		for _, l := range s.Links(local) {
			if l.Rel == in.Rel {
				*items = append(*items, Item{
					Node: node, Rel: l.Rel, Weight: l.Weight, To: l.To,
				})
				n++
			}
		}
		return n
	case isa.OpCollectColor:
		*items = append(*items, Item{Node: node, Color: s.Color(local)})
		return 1
	}
	return 0
}
