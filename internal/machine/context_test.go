package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"snap1/internal/isa"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// stepCtx is a deterministic context: it reports Canceled after its
// Err method has been consulted n times, letting tests cancel exactly
// mid-run without goroutine timing.
type stepCtx struct {
	context.Context
	remaining int
}

func (c *stepCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func buildContextKB(t *testing.T) (*semnet.KB, semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb := semnet.NewKB()
	class := kb.ColorFor("class")
	isaRel := kb.Relation("is-a")
	prev := kb.MustAddNode("n0", class)
	root := prev
	for i := 1; i < 20; i++ {
		n := kb.MustAddNode("n"+string(rune('a'+i)), class)
		kb.MustAddLink(n, isaRel, 1, prev)
		prev = n
	}
	_ = root
	return kb, prev, isaRel
}

func newLoaded(t *testing.T) (*Machine, *semnet.KB, semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb, leaf, rel := buildContextKB(t)
	cfg := PaperConfig()
	cfg.Deterministic = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	return m, kb, leaf, rel
}

// TestRunContextCancelMidRun cancels between instructions and requires
// the machine to stay usable after ClearMarkers.
func TestRunContextCancelMidRun(t *testing.T) {
	m, _, leaf, rel := newLoaded(t)
	p := newInheritProgram(leaf, rel)

	// The program has 3 instructions; allow 2 Err checks, so the run
	// aborts before its final instruction.
	ctx := &stepCtx{Context: context.Background(), remaining: 2}
	if _, err := m.RunContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}

	// After clearing markers the same machine must produce the full
	// result.
	m.ClearMarkers()
	res, err := m.RunContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collected(0)) != 19 {
		t.Errorf("post-cancel run collected %d nodes, want 19", len(res.Collected(0)))
	}
}

func newInheritProgram(leaf semnet.NodeID, rel semnet.RelType) *isa.Program {
	p := isa.NewProgram()
	p.SearchNode(leaf, 1, 0)
	p.Propagate(1, 2, rules.Path(rel), semnet.FuncAdd)
	p.CollectNode(2)
	return p
}

// TestRunContextDeadline honors an already-expired deadline.
func TestRunContextDeadline(t *testing.T) {
	m, _, leaf, rel := newLoaded(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := m.RunContext(ctx, newInheritProgram(leaf, rel)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
}

// TestCloneSharesTopologyNotMarkers verifies a clone reuses the loaded
// partition but runs with independent marker state.
func TestCloneSharesTopologyNotMarkers(t *testing.T) {
	m, _, leaf, rel := newLoaded(t)
	p := newInheritProgram(leaf, rel)

	// Dirty the original's markers.
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}

	r, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Clone starts with clean markers.
	if n := r.MarkerCount(2); n != 0 {
		t.Fatalf("clone starts with %d marked nodes, want 0", n)
	}
	// Same partition: every node lives in the same cluster.
	if r.ClusterOf(leaf) != m.ClusterOf(leaf) {
		t.Error("clone re-partitioned the knowledge base")
	}
	// Same results, independently.
	res, err := r.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := func() (*Result, error) { m.ClearMarkers(); return m.Run(p) }()
	if got, exp := res.Names(0), want.Names(0); len(got) != len(exp) {
		t.Fatalf("clone result %v, original %v", got, exp)
	}
	if res.Time != want.Time {
		t.Errorf("clone virtual time %v != original %v (deterministic engine)", res.Time, want.Time)
	}
}

// TestCloneBeforeLoadKB returns the KB sentinel.
func TestCloneBeforeLoadKB(t *testing.T) {
	cfg := PaperConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Clone(); !errors.Is(err, ErrNoKB) {
		t.Fatalf("Clone = %v, want ErrNoKB", err)
	}
}
