package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/perfmon"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// diamondKB: a -r-> b -r-> d, a -r-> c -r-> d with asymmetric weights, so
// two paths of different cost reach d.
func diamondKB(t *testing.T) (*semnet.KB, [4]semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	a := kb.MustAddNode("a", col)
	b := kb.MustAddNode("b", col)
	c := kb.MustAddNode("c", col)
	d := kb.MustAddNode("d", col)
	kb.MustAddLink(a, rel, 1, b)
	kb.MustAddLink(a, rel, 10, c)
	kb.MustAddLink(b, rel, 10, d)
	kb.MustAddLink(c, rel, 1, d)
	return kb, [4]semnet.NodeID{a, b, c, d}, rel
}

func TestAddCostsConvergeToCheapestPath(t *testing.T) {
	for _, det := range []bool{true, false} {
		kb, n, rel := diamondKB(t)
		cfg := DefaultConfig()
		cfg.Clusters = 2
		cfg.NodesPerCluster = 4
		cfg.Deterministic = det
		cfg.Partition = partition.RoundRobin
		m, _ := New(cfg)
		if err := m.LoadKB(kb); err != nil {
			t.Fatal(err)
		}
		p := isa.NewProgram()
		src, dst := semnet.MarkerID(0), semnet.MarkerID(1)
		p.SearchNode(n[0], src, 0)
		p.Propagate(src, dst, rules.Path(rel), semnet.FuncAdd)
		p.Barrier()
		if _, err := m.Run(p); err != nil {
			t.Fatal(err)
		}
		// Both paths cost 11; the merge keeps the minimum regardless of
		// arrival order (Bellman-Ford style settling).
		if got := m.MarkerValue(n[3], dst); got != 11 {
			t.Fatalf("det=%v: d's cost = %v, want 11", det, got)
		}
		if got := m.MarkerValue(n[1], dst); got != 1 {
			t.Fatalf("det=%v: b's cost = %v, want 1", det, got)
		}
	}
}

func TestMaxDepthSafetyNet(t *testing.T) {
	// A 2-cycle with FuncNop would loop forever without the visit-once
	// guard; with FuncAdd values strictly grow so the merge guard also
	// stops it — and MaxDepth is the final backstop. Exercise all three.
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	a := kb.MustAddNode("a", col)
	b := kb.MustAddNode("b", col)
	kb.MustAddLink(a, rel, 1, b)
	kb.MustAddLink(b, rel, 1, a)

	for _, fn := range []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncMax} {
		cfg := DefaultConfig()
		cfg.Clusters = 1
		cfg.NodesPerCluster = 4
		cfg.Deterministic = true
		cfg.MaxDepth = 16
		m, _ := New(cfg)
		if err := m.LoadKB(kb); err != nil {
			t.Fatal(err)
		}
		p := isa.NewProgram()
		p.SearchNode(a, 0, 0)
		p.Propagate(0, 1, rules.Path(rel), fn)
		p.Barrier()
		if _, err := m.Run(p); err != nil {
			t.Fatalf("fn=%v: %v", fn, err)
		}
		if !m.TestMarker(b, 1) || !m.TestMarker(a, 1) {
			t.Fatalf("fn=%v: cycle nodes not marked", fn)
		}
	}
}

func TestBetaOverlapWindow(t *testing.T) {
	// Two independent propagations must share one barrier; a dependent
	// pair must use two.
	kb, n, rel := diamondKB(t)
	build := func(m2 semnet.MarkerID) *isa.Program {
		p := isa.NewProgram()
		p.SearchNode(n[0], 0, 0)
		p.SearchNode(n[1], 4, 0)
		p.Propagate(0, 1, rules.Path(rel), semnet.FuncNop)
		p.Propagate(4, m2, rules.Path(rel), semnet.FuncNop)
		p.Barrier()
		return p
	}
	cfg := DefaultConfig()
	cfg.Clusters = 1
	cfg.NodesPerCluster = 8
	cfg.Deterministic = true
	m, _ := New(cfg)
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(build(5)) // disjoint markers: one overlap window
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.Barriers) != 1 {
		t.Fatalf("independent pair used %d barriers, want 1", len(res.Profile.Barriers))
	}
	if res.Profile.PhaseBetas[0] != 2 {
		t.Fatalf("overlap degree = %d, want 2", res.Profile.PhaseBetas[0])
	}
	m.ClearMarkers()
	res, err = m.Run(build(0)) // second writes first's source: dependent
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.Barriers) != 2 {
		t.Fatalf("dependent pair used %d barriers, want 2", len(res.Profile.Barriers))
	}
}

func TestInstrQueueCapBoundsWindow(t *testing.T) {
	kb, n, rel := diamondKB(t)
	cfg := DefaultConfig()
	cfg.Clusters = 1
	cfg.NodesPerCluster = 8
	cfg.InstrQueueCap = 2
	cfg.Deterministic = true
	m, _ := New(cfg)
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	p := isa.NewProgram()
	p.SearchNode(n[0], 0, 0)
	for i := 0; i < 6; i += 2 {
		p.Propagate(0, semnet.MarkerID(i+1), rules.Path(rel), semnet.FuncNop)
		// note: all read marker 0, mutually independent writes
		p.Propagate(0, semnet.MarkerID(i+2), rules.Path(rel), semnet.FuncNop)
	}
	p.Barrier()
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range res.Profile.PhaseBetas {
		if beta > 2 {
			t.Fatalf("window grew past InstrQueueCap: β=%d", beta)
		}
	}
}

func TestOriginBinding(t *testing.T) {
	kb, n, rel := diamondKB(t)
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 4
	cfg.Deterministic = true
	m, _ := New(cfg)
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	p := isa.NewProgram()
	p.SearchNode(n[0], 0, 0)
	p.Propagate(0, 1, rules.Path(rel), semnet.FuncAdd)
	p.CollectNode(1)
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Collected(0) {
		if it.Origin != n[0] {
			t.Fatalf("node %d origin = %d, want the first origin address %d", it.Node, it.Origin, n[0])
		}
	}
}

func TestPerfmonIntegration(t *testing.T) {
	kb, n, rel := diamondKB(t)
	mon := perfmon.NewCollector(1024)
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 4
	cfg.Partition = partition.RoundRobin
	cfg.Monitor = mon
	m, _ := New(cfg)
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	p := isa.NewProgram()
	p.SearchNode(n[0], 0, 0)
	p.Propagate(0, 1, rules.Path(rel), semnet.FuncAdd)
	p.CollectNode(1)
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	recs := mon.Drain()
	kinds := make(map[perfmon.EventCode]int)
	for _, r := range recs {
		kinds[r.Code]++
	}
	if kinds[perfmon.EvMsgSend] == 0 || kinds[perfmon.EvMsgRecv] == 0 {
		t.Errorf("missing message events: %v", kinds)
	}
	if kinds[perfmon.EvBarrierDone] == 0 || kinds[perfmon.EvCollect] == 0 {
		t.Errorf("missing phase events: %v", kinds)
	}
}

// Random graphs: both engines must agree on final marker state for every
// propagation function, partition, and cluster count.
func TestEnginesAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		kb := semnet.NewKB()
		col := kb.ColorFor("c")
		rel := kb.Relation("r")
		n := 8 + rng.Intn(60)
		for i := 0; i < n; i++ {
			kb.MustAddNode(fmt.Sprintf("n%d", i), col)
		}
		links := n * 2
		for i := 0; i < links; i++ {
			kb.MustAddLink(semnet.NodeID(rng.Intn(n)), rel,
				float32(1+rng.Intn(8)), semnet.NodeID(rng.Intn(n)))
		}
		fn := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncMin, semnet.FuncMax}[rng.Intn(4)]
		src := semnet.NodeID(rng.Intn(n))
		clusters := 1 + rng.Intn(7)

		type state map[semnet.NodeID]float32
		runOne := func(det bool) state {
			cfg := DefaultConfig()
			cfg.Clusters = clusters
			cfg.NodesPerCluster = n + 64
			cfg.Deterministic = det
			cfg.Partition = partition.RoundRobin
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadKB(kb); err != nil {
				t.Fatal(err)
			}
			p := isa.NewProgram()
			p.SearchNode(src, 0, 0)
			p.Propagate(0, 1, rules.Path(rel), fn)
			p.Barrier()
			if _, err := m.Run(p); err != nil {
				t.Fatal(err)
			}
			st := make(state)
			for i := 0; i < kb.NumNodes(); i++ {
				id := semnet.NodeID(i)
				if m.TestMarker(id, 1) {
					st[id] = m.MarkerValue(id, 1)
				}
			}
			return st
		}
		lock, conc := runOne(true), runOne(false)
		if len(lock) != len(conc) {
			t.Fatalf("trial %d (fn=%v, clusters=%d): reach sets differ: %d vs %d",
				trial, fn, clusters, len(lock), len(conc))
		}
		for id, v := range lock {
			if conc[id] != v {
				t.Fatalf("trial %d (fn=%v): node %d: lockstep %v, concurrent %v",
					trial, fn, id, v, conc[id])
			}
		}
	}
}

// Small mailboxes force the backpressure path; the system must not
// deadlock even with heavy all-to-all traffic.
func TestBackpressureNoDeadlock(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	rel := kb.Relation("r")
	const n = 64
	for i := 0; i < n; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			kb.MustAddLink(semnet.NodeID(i), rel, 1, semnet.NodeID(rng.Intn(n)))
		}
	}
	cfg := DefaultConfig()
	cfg.Clusters = 8
	cfg.NodesPerCluster = 16
	cfg.MailboxCap = 1 // worst case
	cfg.Partition = partition.RoundRobin
	m, _ := New(cfg)
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	p := isa.NewProgram()
	p.Set(0, 0) // every node is a source
	p.Propagate(0, semnet.Binary(0), rules.Path(rel), semnet.FuncNop)
	p.Barrier()
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := m.MarkerCount(semnet.Binary(0)); got == 0 {
		t.Fatal("nothing propagated")
	}
}
