package machine

import (
	"fmt"

	"snap1/internal/semnet"
)

// Incremental replica sync: a loaded machine tracks the KB generation
// its cluster tables reflect (kbGen) and can be patched forward to a
// newer generation by replaying the KB's topology delta log instead of
// re-running the full partition/placement/download pipeline. Each record
// is routed to the one cluster owning the touched node — partition-aware
// routing — so the cost is O(records · degree), proportional to the
// delta, not the knowledge base.

// KBGeneration reports the KB generation the machine's loaded cluster
// tables currently reflect (zero before LoadKB).
func (m *Machine) KBGeneration() uint64 { return m.kbGen }

// ApplyDelta replays a contiguous run of delta records onto the loaded
// cluster tables, advancing the machine's KB generation to `to`. The
// records must be exactly the KB's DeltaRange(m.KBGeneration(), to) —
// ascending, gap-free from the machine's current generation. Marker
// state is untouched: delta replay only rewrites node/relation tables,
// so marker-plane invariants (and the dirty-row mask) are preserved.
//
// A non-replayable record (semnet.ErrDeltaUnsupported: node creation or
// a preprocessor reshape moved the partition assignment) or a routing
// failure returns an error with the tables possibly partially patched;
// the caller must recover with a full LoadKB re-download.
func (m *Machine) ApplyDelta(recs []semnet.DeltaRec, to uint64) error {
	if m.kb == nil {
		return ErrNoKB
	}
	from := m.kbGen
	for i := range recs {
		rec := &recs[i]
		if !rec.Replayable() {
			return fmt.Errorf("machine: delta gen %d: %w", rec.Gen, semnet.ErrDeltaUnsupported)
		}
		if rec.Gen <= from || rec.Gen > to {
			return fmt.Errorf("machine: delta gen %d outside (%d, %d]", rec.Gen, from, to)
		}
		if int(rec.Node) >= len(m.assign) {
			return fmt.Errorf("machine: delta gen %d: node %d not in loaded assignment", rec.Gen, rec.Node)
		}
		c := m.clusters[m.assign[rec.Node]]
		if err := c.store.ApplyDelta(int(m.localIdx[rec.Node]), rec); err != nil {
			return fmt.Errorf("machine: delta gen %d (%s node %d): %w", rec.Gen, rec.Op, rec.Node, err)
		}
	}
	m.kbGen = to
	return nil
}
