package machine

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// workerPool is the concurrent engine's persistent per-cluster worker
// set. The seed engine spawned one goroutine per cluster per flush;
// under an overlap-window-heavy program that is thousands of goroutine
// create/destroy cycles per run. The pool starts each cluster's worker
// once (lazily, on the first concurrent phase) and parks it between
// flushes on a generation gate: the controller publishes the phase's
// overlap window and advances the generation, every worker runs its
// cluster's phaseLoop to quiescence, and the last worker to finish
// releases the controller. Nothing about simulated time changes — the
// pool is pure host machinery around the unchanged phaseLoop.
type workerPool struct {
	mu    sync.Mutex
	start *sync.Cond // workers park here between phases
	done  *sync.Cond // controller parks here while a phase runs

	gen     uint64       // phase generation; advancing it releases workers
	entries []batchEntry // the overlap window of the current phase
	running int          // workers still inside phaseLoop this phase
	stopped bool         // Close requested; workers exit at next park
}

// startWorkers builds the pool and launches one worker per cluster. Each
// worker goroutine carries pprof labels (phase=propagate, cluster=<id>)
// for its whole lifetime, so a snapsim -cpuprofile capture attributes
// propagation samples per cluster; labeling once at spawn keeps the
// steady-state phase loop allocation-free.
func (m *Machine) startWorkers() *workerPool {
	p := &workerPool{}
	p.start = sync.NewCond(&p.mu)
	p.done = sync.NewCond(&p.mu)
	for _, c := range m.clusters {
		go func(c *cluster) {
			labels := pprof.Labels("phase", "propagate", "cluster", strconv.Itoa(c.id))
			pprof.Do(context.Background(), labels, func(context.Context) {
				p.run(m, c)
			})
		}(c)
	}
	return p
}

// run is one cluster's persistent worker: park, run a phase, park.
func (p *workerPool) run(m *Machine, c *cluster) {
	var seen uint64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.stopped {
			p.start.Wait()
		}
		if p.stopped {
			p.mu.Unlock()
			return
		}
		seen = p.gen
		entries := p.entries
		p.mu.Unlock()

		c.phaseLoop(m, entries)

		p.mu.Lock()
		p.running--
		if p.running == 0 {
			p.done.Broadcast()
		}
		p.mu.Unlock()
	}
}

// beginPhase publishes the overlap window and releases all n workers.
func (p *workerPool) beginPhase(entries []batchEntry, n int) {
	p.mu.Lock()
	p.entries = entries
	p.running = n
	p.gen++
	p.start.Broadcast()
	p.mu.Unlock()
}

// waitPhase blocks until every worker has parked again. On return all
// per-cluster phase state (stats, clocks) is safely readable by the
// controller: each worker's final writes happen before its running
// decrement under the pool lock.
func (p *workerPool) waitPhase() {
	p.mu.Lock()
	for p.running > 0 {
		p.done.Wait()
	}
	p.entries = nil
	p.mu.Unlock()
}

// stop makes every parked worker exit. Must not be called mid-phase.
func (p *workerPool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.start.Broadcast()
	p.mu.Unlock()
}
