package machine

import (
	"errors"
	"fmt"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Incremental replica sync tests: a machine patched forward with
// ApplyDelta must be indistinguishable — bit-identical probe results,
// including lockstep virtual times — from a machine that re-downloaded
// the mutated KB in full. The equivalence rests on both paths preserving
// link order: KB.RemoveLink and Store.RemoveLink are first-match
// order-preserving, and both AddLink paths append.

// deltaTestKB builds a deterministic mid-size network: a few is-a trees
// plus cross links, small enough for a 4-cluster lockstep machine.
func deltaTestKB(t testing.TB) (*semnet.KB, []semnet.NodeID, semnet.RelType) {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("concept")
	rel := kb.Relation("is-a")
	const n = 24
	ids := make([]semnet.NodeID, n)
	for i := range ids {
		ids[i] = kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	for i := 1; i < n; i++ {
		kb.MustAddLink(ids[i], rel, 1, ids[(i-1)/2]) // binary tree toward ids[0]
	}
	for i := 0; i < n; i += 5 {
		kb.MustAddLink(ids[i], kb.Relation("sees"), 2, ids[(i+7)%n])
	}
	return kb, ids, rel
}

func deltaTestMachine(t testing.TB, kb *semnet.KB) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Clusters = 4
	cfg.NodesPerCluster = kb.NumNodes() + 32
	cfg.Deterministic = true
	cfg.MaxDepth = 32
	// Round-robin keeps the node→cluster assignment a function of node
	// order alone. The default semantic partitioner re-derives placement
	// from the (mutated) topology on a fresh LoadKB, while delta patching
	// deliberately keeps the serving assignment — placement-dependent
	// virtual times would then differ even though collections agree. The
	// engine never mixes the two inside one pool generation, so the
	// bit-identity claim is made where it holds: under a fixed assignment.
	cfg.Partition = partition.RoundRobin
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		t.Fatal(err)
	}
	return m
}

// deltaProbe is a probe program touching the mutated surface: propagate
// over the is-a tree and collect, so any table divergence shows up in
// the collections or the lockstep virtual time.
func deltaProbe(ids []semnet.NodeID, rel semnet.RelType, start int) *isa.Program {
	p := isa.NewProgram()
	p.SearchNode(ids[start%len(ids)], 1, 0)
	p.Propagate(1, 2, rules.Path(rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(2)
	return p
}

// probeState runs the probe on a cleared machine and renders the full
// observable outcome (virtual time + every collection row) as strings.
func probeState(t testing.TB, m *Machine, ids []semnet.NodeID, rel semnet.RelType, start int) string {
	t.Helper()
	m.ClearMarkers()
	res, err := m.Run(deltaProbe(ids, rel, start))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Time.String()
	for _, c := range res.Collections {
		for _, it := range c.Items {
			out += fmt.Sprintf("|%d:%d=%v", c.Instr, it.Node, it.Value)
		}
	}
	return out
}

// mutateKB applies a deterministic batch of replayable mutations
// directly to the KB: link toggles, color and function rewrites. Nodes
// near the relation-slot cap are skipped, mirroring the write path's
// capacity refusal (a loaded store cannot split subnodes at runtime).
func mutateKB(t testing.TB, kb *semnet.KB, ids []semnet.NodeID, rounds int) {
	t.Helper()
	rel := kb.Relation("delta-probe")
	col := kb.ColorFor("recolored")
	for r := 0; r < rounds; r++ {
		for i := range ids {
			src, dst := ids[i], ids[(i+3)%len(ids)]
			nd, err := kb.Node(src)
			if err != nil {
				t.Fatal(err)
			}
			if r%2 == 0 {
				if len(nd.Out) > semnet.RelationSlots-2 {
					continue
				}
				kb.MustAddLink(src, rel, float32(r+1), dst)
			} else {
				kb.RemoveLink(src, rel, dst)
			}
			if i%7 == 0 {
				if err := kb.SetColor(src, col); err != nil {
					t.Fatal(err)
				}
				if err := kb.SetFn(src, semnet.FuncMax); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestApplyDeltaMatchesReload is the core equivalence: after a mutation
// batch, a delta-patched machine and a freshly re-downloaded machine
// must produce bit-identical probe results from several start nodes.
func TestApplyDeltaMatchesReload(t *testing.T) {
	kb, ids, rel := deltaTestKB(t)
	patched := deltaTestMachine(t, kb)
	defer patched.Close()
	kb.EnableDeltaLog(0)

	for round := 0; round < 3; round++ {
		from := patched.KBGeneration()
		mutateKB(t, kb, ids, 2)
		to := kb.Generation()
		recs, ok := kb.DeltaRange(from, to)
		if !ok {
			t.Fatalf("round %d: DeltaRange(%d, %d) not ok", round, from, to)
		}
		if len(recs) == 0 {
			t.Fatalf("round %d: mutation batch produced no delta records", round)
		}
		if err := patched.ApplyDelta(recs, to); err != nil {
			t.Fatalf("round %d: ApplyDelta: %v", round, err)
		}
		if g := patched.KBGeneration(); g != to {
			t.Fatalf("round %d: patched generation %d, want %d", round, g, to)
		}

		reloaded := deltaTestMachine(t, kb)
		for start := 0; start < len(ids); start += 5 {
			got := probeState(t, patched, ids, rel, start)
			want := probeState(t, reloaded, ids, rel, start)
			if got != want {
				t.Errorf("round %d start %d: patched diverges from reloaded:\n got  %s\n want %s",
					round, start, got, want)
			}
		}
		reloaded.Close()
	}
}

// TestApplyDeltaErrors pins the failure contract: bad inputs error out
// without advancing the machine's generation, so the caller's full
// re-download fallback starts from an honest state.
func TestApplyDeltaErrors(t *testing.T) {
	kb, ids, _ := deltaTestKB(t)
	m := deltaTestMachine(t, kb)
	defer m.Close()
	kb.EnableDeltaLog(0)
	from := m.KBGeneration()

	// No KB loaded at all.
	empty, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if err := empty.ApplyDelta(nil, 1); !errors.Is(err, ErrNoKB) {
		t.Errorf("unloaded machine: %v, want ErrNoKB", err)
	}

	// A non-replayable rebuild record must be refused.
	rebuild := []semnet.DeltaRec{{Gen: from + 1, Op: semnet.DeltaRebuild}}
	if err := m.ApplyDelta(rebuild, from+1); !errors.Is(err, semnet.ErrDeltaUnsupported) {
		t.Errorf("rebuild record: %v, want ErrDeltaUnsupported", err)
	}
	if m.KBGeneration() != from {
		t.Error("failed ApplyDelta advanced the generation")
	}

	// Records outside (from, to] must be refused (stale or future).
	stale := []semnet.DeltaRec{{Gen: from, Op: semnet.DeltaAddLink, Node: ids[0]}}
	if err := m.ApplyDelta(stale, from+1); err == nil {
		t.Error("stale record (gen == from) applied")
	}
	future := []semnet.DeltaRec{{Gen: from + 2, Op: semnet.DeltaAddLink, Node: ids[0]}}
	if err := m.ApplyDelta(future, from+1); err == nil {
		t.Error("future record (gen > to) applied")
	}

	// A node outside the loaded assignment cannot be routed.
	ghost := []semnet.DeltaRec{{Gen: from + 1, Op: semnet.DeltaAddLink, Node: semnet.NodeID(1 << 20)}}
	if err := m.ApplyDelta(ghost, from+1); err == nil {
		t.Error("unassigned node routed")
	}
	if m.KBGeneration() != from {
		t.Error("failed ApplyDelta advanced the generation")
	}
}

// FuzzDeltaApply is the differential fuzz for incremental sync: an
// arbitrary byte string is decoded into a mutation script over a fixed
// network, applied once through the delta-replay path and once through a
// full re-download, and the two machines must agree bit-for-bit on probe
// results (lockstep virtual time included).
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x57, 0x9b, 0xdf})
	f.Add([]byte("add-remove-add"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x42, 0x42})
	f.Fuzz(func(t *testing.T, script []byte) {
		kb, ids, rel := deltaTestKB(t)
		patched := deltaTestMachine(t, kb)
		defer patched.Close()
		kb.EnableDeltaLog(0)
		from := patched.KBGeneration()

		// Decode: each byte is one mutation. Top two bits pick the op,
		// the rest address nodes. AddLink honors the relation-slot guard
		// the online write path enforces (a loaded store cannot split
		// subnodes at runtime), so every logged record stays replayable.
		fuzzRel := kb.Relation("fuzz")
		for k, b := range script {
			src := ids[int(b&0x1f)%len(ids)]
			dst := ids[(int(b&0x1f)+k)%len(ids)]
			switch b >> 6 {
			case 0, 1:
				nd, err := kb.Node(src)
				if err != nil {
					t.Fatal(err)
				}
				if len(nd.Out) > semnet.RelationSlots-2 {
					continue
				}
				kb.MustAddLink(src, fuzzRel, float32(b%7), dst)
			case 2:
				kb.RemoveLink(src, fuzzRel, dst)
			default:
				if err := kb.SetColor(src, kb.ColorFor(fmt.Sprintf("c%d", b%3))); err != nil {
					t.Fatal(err)
				}
			}
		}

		to := kb.Generation()
		recs, ok := kb.DeltaRange(from, to)
		if !ok {
			t.Fatalf("DeltaRange(%d, %d) not ok", from, to)
		}
		for i := range recs {
			if !recs[i].Replayable() {
				t.Fatalf("script produced non-replayable record %+v", recs[i])
			}
		}
		if err := patched.ApplyDelta(recs, to); err != nil {
			t.Fatalf("ApplyDelta(%d records): %v", len(recs), err)
		}

		reloaded := deltaTestMachine(t, kb)
		defer reloaded.Close()
		for start := 0; start < len(ids); start += 7 {
			got := probeState(t, patched, ids, rel, start)
			want := probeState(t, reloaded, ids, rel, start)
			if got != want {
				t.Fatalf("start %d: patched diverges from reloaded after %d records:\n got  %s\n want %s",
					start, len(recs), got, want)
			}
		}
	})
}
