//go:build !race

package machine

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
