package machine

import (
	"errors"
	"fmt"
	"testing"

	"snap1/internal/partition"
	"snap1/internal/semnet"
)

func TestDefaultConfigMatchesPrototype(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// "an array of 144 Digital Signal Processors organized as 32
	// multiprocessing clusters" with "80 marker units".
	if cfg.Clusters != 32 {
		t.Errorf("clusters = %d", cfg.Clusters)
	}
	if cfg.PEs() != 144 {
		t.Errorf("PEs = %d, want 144", cfg.PEs())
	}
	if cfg.MarkerUnits() != 80 {
		t.Errorf("marker units = %d, want 80", cfg.MarkerUnits())
	}
	// 32K-node capacity.
	if cfg.Clusters*cfg.NodesPerCluster != 32*1024 {
		t.Errorf("capacity = %d nodes", cfg.Clusters*cfg.NodesPerCluster)
	}
	// "Presently, 16 clusters are implemented in the full five PE
	// configuration while the remaining 16 clusters have four PE's each."
	fives, fours := 0, 0
	for i := 0; i < cfg.Clusters; i++ {
		switch 2 + cfg.musOf(i) {
		case 5:
			fives++
		case 4:
			fours++
		}
	}
	if fives != 16 || fours != 16 {
		t.Errorf("cluster mix = %d five-PE, %d four-PE", fives, fours)
	}
}

func TestPaperConfigMatchesEvaluation(t *testing.T) {
	cfg := PaperConfig()
	// "a 16 cluster (72 processor) array".
	if cfg.Clusters != 16 || cfg.PEs() != 72 {
		t.Fatalf("evaluation config: %d clusters, %d PEs", cfg.Clusters, cfg.PEs())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.MUsPerCluster = 0 },
		func(c *Config) { c.ExtraMUClusters = -1 },
		func(c *Config) { c.NodesPerCluster = 0 },
		func(c *Config) { c.MailboxCap = 0 },
		func(c *Config) { c.InstrQueueCap = 0 },
		func(c *Config) { c.MaxDepth = 0 },
		func(c *Config) { c.Partition = nil },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestExtraMUClampsWhenScaledDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 4 // ExtraMUClusters stays 16 from the template
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every cluster gets the extra MU; PEs = 4×(2+3).
	if cfg.PEs() != 20 || cfg.MarkerUnits() != 12 {
		t.Errorf("scaled config: %d PEs, %d MUs", cfg.PEs(), cfg.MarkerUnits())
	}
}

func TestLoadKBCapacityError(t *testing.T) {
	kb := semnet.NewKB()
	col := kb.ColorFor("c")
	for i := 0; i < 20; i++ {
		kb.MustAddNode(fmt.Sprintf("n%d", i), col)
	}
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); !errors.Is(err, partition.ErrTooLarge) {
		t.Fatalf("oversize load: %v", err)
	}
}

func TestLoadKBReplacesNetworkAndState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 8
	m, _ := New(cfg)

	kb1 := semnet.NewKB()
	a := kb1.MustAddNode("a", 0)
	if err := m.LoadKB(kb1); err != nil {
		t.Fatal(err)
	}
	// Dirty some marker state.
	c := m.clusters[m.assign[a]]
	c.store.Set(int(m.localIdx[a]), 3)

	kb2 := semnet.NewKB()
	kb2.MustAddNode("x", 0)
	kb2.MustAddNode("y", 0)
	if err := m.LoadKB(kb2); err != nil {
		t.Fatal(err)
	}
	if m.KB() != kb2 {
		t.Fatal("KB accessor")
	}
	if m.MarkerCount(3) != 0 {
		t.Fatal("marker state must not survive a reload")
	}
	total := 0
	for _, c := range m.clusters {
		total += c.store.NumNodes()
	}
	if total != 2 {
		t.Fatalf("array holds %d nodes after reload", total)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{}
	if r.Collected(0) != nil || r.Collected(-1) != nil {
		t.Error("out-of-range collections must be nil")
	}
}
