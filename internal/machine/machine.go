package machine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"snap1/internal/barrier"
	"snap1/internal/fault"
	"snap1/internal/icn"
	"snap1/internal/isa"
	"snap1/internal/partition"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// Machine is one SNAP-1 system instance: the cluster array, interconnect,
// barrier hardware, and central controller, with a loaded knowledge base.
type Machine struct {
	cfg  Config
	cost timing.CostModel

	kb       *semnet.KB
	assign   partition.Assignment
	localIdx []int32

	// kbGen is the KB generation the loaded cluster tables currently
	// reflect. LoadKB and ApplyDelta advance it; the gap between it and
	// kb.Generation() is the delta a replica still owes (delta.go).
	kbGen uint64

	clusters []*cluster
	net      *icn.Network
	bar      *barrier.Tiered
	ctrl     *timing.Clock

	// workers is the concurrent engine's persistent per-cluster worker
	// pool, started lazily on the first concurrent phase and parked
	// between flushes. Nil until then and after Close.
	workers *workerPool

	curRules *rules.Table // rule microcode for the program being run

	// hopBase is the live network's port-transfer counter as of the last
	// flush, so each concurrent phase's hop traffic is a delta read.
	hopBase int64

	// inj, when armed, injects deterministic hardware faults into runs
	// (see SetFaultInjector). Clones start unarmed.
	inj *fault.Injector

	// dirty is the set of marker planes a run since the last ClearMarkers
	// may have written (the union of each program's write set), so
	// ClearMarkers can clear just those rows instead of the whole slab.
	// Initialized full at construction/LoadKB/Clone out of caution —
	// tests may poke stores directly — and exact thereafter.
	dirty isa.MarkerSet

	// fusedCtx is non-nil while RunFused executes, carrying the plane-
	// group map and the origin-ambiguity flag; widePlans holds the
	// current flush's wide schedules (lockstep engine only).
	fusedCtx  *fusedRun
	widePlans []widePlan
}

// allDirty marks every marker plane dirty.
func allDirty() isa.MarkerSet { return isa.MarkerSetFromBits(^uint64(0), ^uint64(0)) }

// New constructs a machine from cfg. A knowledge base must be loaded with
// LoadKB before programs can run.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		cost:  cfg.Cost,
		net:   icn.New(cfg.Clusters, cfg.MailboxCap),
		bar:   barrier.New(cfg.Clusters),
		ctrl:  timing.NewClock(timing.ControllerClock),
		dirty: allDirty(),
	}
	m.clusters = make([]*cluster, cfg.Clusters)
	for i := range m.clusters {
		m.clusters[i] = newCluster(i, &cfg)
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// KB returns the loaded knowledge base (nil before LoadKB).
func (m *Machine) KB() *semnet.KB { return m.kb }

// LoadKB partitions and downloads a knowledge base into the array: the
// preprocessor splits over-fanout nodes, the partition function assigns
// nodes to clusters (followed by the hop-aware placement stage when
// Config.Placement is set), and each cluster's three tables are filled —
// in parallel, one download per cluster, since the per-cluster fills are
// independent once the assignment is fixed. Any previously loaded
// network and all marker state are discarded.
func (m *Machine) LoadKB(kb *semnet.KB) error {
	kb.Preprocess()
	if err := kb.Validate(); err != nil {
		return err
	}
	assign, err := m.cfg.Partition(kb, m.cfg.Clusters, m.cfg.NodesPerCluster)
	if err != nil {
		return err
	}
	if m.cfg.Placement {
		assign = partition.Place(kb, assign, m.cfg.Clusters)
	}
	n := kb.NumNodes()
	v := kb.CSR()
	// Bucket nodes per cluster in ascending global-ID order and fix every
	// local index up front; the per-cluster downloads then share nothing.
	counts := make([]int, m.cfg.Clusters)
	for id := 0; id < n; id++ {
		counts[assign[id]]++
	}
	members := make([][]semnet.NodeID, m.cfg.Clusters)
	for c := range members {
		members[c] = make([]semnet.NodeID, 0, counts[c])
	}
	localIdx := make([]int32, n)
	for id := 0; id < n; id++ {
		c := assign[id]
		localIdx[id] = int32(len(members[c]))
		members[c] = append(members[c], semnet.NodeID(id))
	}
	clusters := make([]*cluster, m.cfg.Clusters)
	errs := make([]error, m.cfg.Clusters)
	var wg sync.WaitGroup
	for ci := range clusters {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := newCluster(ci, &m.cfg)
			clusters[ci] = c
			for _, id := range members[ci] {
				node, err := kb.Node(id)
				if err != nil {
					errs[ci] = err
					return
				}
				if _, err := c.store.AddNode(id, node.Color, node.Fn); err != nil {
					errs[ci] = fmt.Errorf("cluster %d: %w", ci, err)
					return
				}
			}
			for _, id := range members[ci] {
				if err := c.store.SetLinks(int(localIdx[id]), v.Out(id)); err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	// The worker pool holds references to the old cluster array; retire
	// it so the next concurrent phase starts workers over the new one.
	m.Close()
	m.kb, m.assign, m.localIdx, m.clusters = kb, assign, localIdx, clusters
	m.kbGen = kb.Generation()
	m.dirty = allDirty()
	// The fresh clusters carry unarmed arbiters; rewire the injector.
	if m.inj != nil {
		m.SetFaultInjector(m.inj)
	}
	return nil
}

// Close releases the machine's host resources: the persistent concurrent-
// engine workers, if started. The machine must not be running a program.
// Close is idempotent and non-terminal — a later Run simply restarts the
// workers — so pools can Close replicas they retire.
func (m *Machine) Close() {
	if m.workers != nil {
		m.workers.stop()
		m.workers = nil
	}
}

// Clone returns a replica of the machine sharing the loaded knowledge
// base, partition assignment, and local index tables, with entirely
// fresh marker state. The preprocessing and partitioning work of LoadKB
// is not repeated, and the cluster node/relation tables are shared
// copy-on-write (semnet.Store.CloneTopologyShared): cloning allocates
// only marker state, so a query-serving pool can stamp out replicas in
// O(markers) per replica. The clone runs independently — the first
// topology mutation on either side materializes a private table copy,
// so nothing semantically mutable is shared.
func (m *Machine) Clone() (*Machine, error) {
	if m.kb == nil {
		return nil, ErrNoKB
	}
	r := &Machine{
		cfg:      m.cfg,
		cost:     m.cost,
		kb:       m.kb,
		assign:   m.assign,
		localIdx: m.localIdx,
		kbGen:    m.kbGen,
		net:      icn.New(m.cfg.Clusters, m.cfg.MailboxCap),
		bar:      barrier.New(m.cfg.Clusters),
		ctrl:     timing.NewClock(timing.ControllerClock),
		dirty:    allDirty(),
	}
	r.clusters = make([]*cluster, len(m.clusters))
	for i, c := range m.clusters {
		r.clusters[i] = newClusterWithStore(i, &m.cfg, c.store.CloneTopologyShared())
	}
	return r, nil
}

// Item is one retrieved result row. Fields beyond Node are populated
// according to the collecting opcode.
type Item struct {
	Node   semnet.NodeID
	Value  float32
	Origin semnet.NodeID
	Color  semnet.Color
	Rel    semnet.RelType
	Weight float32
	To     semnet.NodeID
}

// Collection is the result of one retrieval instruction.
type Collection struct {
	Instr int // index into the program's instruction stream
	Op    isa.Opcode
	Items []Item
}

// Result is one program run's outcome: total simulated time, the
// instrumentation profile, and every retrieval instruction's rows.
type Result struct {
	Time        timing.Time
	Profile     *trace.Profile
	Collections []Collection

	// Fused marks a result demultiplexed from a fused multi-query run:
	// Time is the fused run's end and Profile is shared with the other
	// members, so the result is not reproducible by a solo run of the
	// same program and must not enter bit-identity result caches.
	Fused bool

	// KBGen is the KB generation snapshot the run observed (after its
	// own mutations, for a mutating program). A result is reproducible
	// exactly against the topology of this generation; the engine keys
	// its result cache on it.
	KBGen uint64

	kb *semnet.KB
}

// Collected returns the items of the i'th retrieval instruction executed
// (in program order), or nil when fewer collections ran.
func (r *Result) Collected(i int) []Item {
	if i < 0 || i >= len(r.Collections) {
		return nil
	}
	return r.Collections[i].Items
}

// Names resolves a collection's items to sorted canonical concept names.
func (r *Result) Names(i int) []string {
	items := r.Collected(i)
	ids := make([]semnet.NodeID, len(items))
	for j, it := range items {
		ids[j] = it.Node
	}
	return r.kb.Names(ids)
}

// ErrNoKB is returned by Run before a knowledge base is loaded.
var ErrNoKB = errors.New("machine: no knowledge base loaded")

// Run executes a SNAP program to completion and returns its result.
// Marker state persists across runs (load-then-query programming); use
// ClearMarkers between independent experiments.
func (m *Machine) Run(prog *isa.Program) (*Result, error) {
	return m.RunContext(context.Background(), prog)
}

// RunContext executes a SNAP program, honoring ctx cancellation and
// deadline between instructions — the granularity at which the central
// controller's program control processor can abandon a broadcast stream.
// On cancellation it returns ctx's error; marker state is left partially
// updated (as after any aborted run) and the machine remains usable after
// ClearMarkers.
func (m *Machine) RunContext(ctx context.Context, prog *isa.Program) (*Result, error) {
	if m.kb == nil {
		return nil, ErrNoKB
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if err := m.injectRunFaults(ctx); err != nil {
		return nil, err
	}
	if prog.Mutating() {
		// The run advances the KB generation instruction by instruction;
		// the loaded tables track it exactly (exec mirrors every store
		// mutation into the KB), including down error paths that abandon
		// the run after a partial prefix.
		defer func() { m.kbGen = m.kb.Generation() }()
	}
	corruptBefore := m.inj.Corrupting()
	m.resetClocks()
	m.curRules = prog.Rules
	m.dirty = m.dirty.Union(prog.WriteSet())
	st := &runState{
		prof: &trace.Profile{},
		res:  &Result{kb: m.kb},
	}
	for i := range prog.Instrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in := &prog.Instrs[i]
		m.broadcast(st)
		bAt := m.ctrl.Now()
		if in.Op == isa.OpPropagate {
			if len(st.batch) >= m.cfg.InstrQueueCap || st.conflicts(in) {
				m.flush(st)
			}
			st.push(i, in, bAt)
			continue
		}
		if in.Serializing() || st.conflicts(in) {
			m.flush(st)
			bAt = timing.Max(bAt, m.ctrl.Now())
		}
		if err := m.exec(st, i, in, bAt); err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, in.Op, err)
		}
	}
	m.flush(st)

	end := m.ctrl.Now()
	for _, c := range m.clusters {
		end = timing.Max(end, c.last)
	}
	st.prof.Elapsed = end
	st.res.Time = end
	st.res.Profile = st.prof
	if prog.Mutating() {
		st.res.KBGen = m.kb.Generation()
	} else {
		st.res.KBGen = m.kbGen
	}
	if err := m.poisonIfCorrupted(corruptBefore); err != nil {
		return nil, err
	}
	return st.res, nil
}

// broadcast accounts one instruction's controller pipeline and global-bus
// time (PCP issue, SCP broadcast).
func (m *Machine) broadcast(st *runState) {
	cycles := m.cost.IssueCycles + m.cost.BroadcastCycles
	m.ctrl.Tick(cycles)
	st.prof.Overhead.Broadcast += m.cost.CtrlCost(cycles)
}

func (m *Machine) resetClocks() {
	m.ctrl.Reset()
	for _, c := range m.clusters {
		c.resetClocks()
	}
	m.net.ResetStats()
	m.hopBase = 0
}

// runState is the per-Run controller state: the instrumentation profile,
// accumulated results, and the PU overlap window of pending PROPAGATEs.
type runState struct {
	prof *trace.Profile
	res  *Result

	batch          []batchEntry
	batchR, batchW isa.MarkerSet
}

type batchEntry struct {
	idx int
	in  *isa.Instruction
	bAt timing.Time
}

func (st *runState) push(idx int, in *isa.Instruction, bAt timing.Time) {
	st.batch = append(st.batch, batchEntry{idx: idx, in: in, bAt: bAt})
	st.batchR = st.batchR.Union(in.Reads())
	st.batchW = st.batchW.Union(in.Writes())
}

// conflicts reports whether in has a marker data dependency with the
// pending overlap window.
func (st *runState) conflicts(in *isa.Instruction) bool {
	if len(st.batch) == 0 {
		return false
	}
	w := in.Writes()
	return w.Intersects(st.batchR) || w.Intersects(st.batchW) ||
		in.Reads().Intersects(st.batchW)
}

// ClearMarkers clears every marker at every node (between experiments).
// This host-level reset charges no virtual time (the per-instruction path
// is OpClearMarker). Only planes a run could have written since the last
// clear are touched — the masked per-plane clear that makes the reset
// between (fused) queries proportional to the planes used, not the whole
// 128-row slab.
func (m *Machine) ClearMarkers() {
	lo, hi := m.dirty.Bits()
	if lo == 0 && hi == 0 {
		return
	}
	if lo == ^uint64(0) && hi == ^uint64(0) {
		for _, c := range m.clusters {
			c.store.ClearAllMarkers()
		}
	} else {
		for _, c := range m.clusters {
			c.store.ClearRows(lo, hi)
		}
	}
	m.dirty = isa.MarkerSet{}
}

// TestMarker reports whether marker mk is set at global node id.
func (m *Machine) TestMarker(id semnet.NodeID, mk semnet.MarkerID) bool {
	c := m.clusters[m.assign[id]]
	return c.store.Test(int(m.localIdx[id]), mk)
}

// MarkerValue reads the complex-marker value register at global node id.
func (m *Machine) MarkerValue(id semnet.NodeID, mk semnet.MarkerID) float32 {
	c := m.clusters[m.assign[id]]
	return c.store.Value(int(m.localIdx[id]), mk)
}

// MarkerOrigin reads the complex-marker origin register at global node id.
func (m *Machine) MarkerOrigin(id semnet.NodeID, mk semnet.MarkerID) semnet.NodeID {
	c := m.clusters[m.assign[id]]
	return c.store.Origin(int(m.localIdx[id]), mk)
}

// MarkerCount reports how many nodes array-wide have mk set.
func (m *Machine) MarkerCount(mk semnet.MarkerID) int {
	n := 0
	for _, c := range m.clusters {
		n += c.store.CountSet(mk)
	}
	return n
}

// ClusterOf reports the cluster holding global node id.
func (m *Machine) ClusterOf(id semnet.NodeID) int { return m.assign[id] }

// DestTraffic returns the per-destination-cluster remote-activation
// counts accumulated since the last run started: row src, column dst is
// how many inter-cluster activations cluster src injected toward dst.
// This is the traffic matrix the placement stage (partition.Place)
// minimizes hop-weighted; diagonal entries are always zero.
func (m *Machine) DestTraffic() [][]int64 {
	out := make([][]int64, len(m.clusters))
	for i, c := range m.clusters {
		out[i] = append([]int64(nil), c.destSends...)
	}
	return out
}

// LinksOf returns a copy of the relation-table entries currently stored
// for global node id (inspection / test support).
func (m *Machine) LinksOf(id semnet.NodeID) []semnet.Link {
	c := m.clusters[m.assign[id]]
	links := c.store.Links(int(m.localIdx[id]))
	return append([]semnet.Link(nil), links...)
}
