package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"snap1/internal/isa"
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Differential testing for the ISA optimizer: an optimized program must
// be observationally identical to the program as written — same
// collections (nodes, values, origins, order, instruction attribution)
// and, in preserve mode, the same final marker state including value
// AND origin registers wherever a status bit is set. Virtual time may
// only improve.

// fullState captures everything the optimizer promises to preserve.
type fullState struct {
	markers     map[string]string // "node/plane" -> "value@origin"
	collections []string
}

func captureFull(m *Machine, kb *semnet.KB, res *Result) fullState {
	st := fullState{markers: make(map[string]string)}
	for id := 0; id < kb.NumNodes(); id++ {
		for mk := 0; mk < semnet.NumMarkers; mk++ {
			n, pl := semnet.NodeID(id), semnet.MarkerID(mk)
			if m.TestMarker(n, pl) {
				st.markers[fmt.Sprintf("%d/%d", id, mk)] =
					fmt.Sprintf("%v@%d", m.MarkerValue(n, pl), m.MarkerOrigin(n, pl))
			}
		}
	}
	for _, c := range res.Collections {
		for _, it := range c.Items {
			st.collections = append(st.collections,
				fmt.Sprintf("%d:%d=%v@%d/%d:%v", c.Instr, it.Node, it.Value,
					it.Origin, it.Color, it.Weight))
		}
	}
	return st
}

func diffFull(t *testing.T, label string, a, b fullState) {
	t.Helper()
	if len(a.markers) != len(b.markers) {
		t.Fatalf("%s: %d vs %d set markers", label, len(a.markers), len(b.markers))
	}
	for k, v := range a.markers {
		if b.markers[k] != v {
			t.Fatalf("%s: marker %s: %s vs %s", label, k, v, b.markers[k])
		}
	}
	if len(a.collections) != len(b.collections) {
		t.Fatalf("%s: %d vs %d collection rows", label, len(a.collections), len(b.collections))
	}
	for i := range a.collections {
		if a.collections[i] != b.collections[i] {
			t.Fatalf("%s: collection row %d: %s vs %s",
				label, i, a.collections[i], b.collections[i])
		}
	}
}

func newTestMachine(t *testing.T, kb *semnet.KB, clusters int) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Clusters = clusters
	cfg.NodesPerCluster = kb.NumNodes() + 32
	cfg.Deterministic = true
	cfg.MaxDepth = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadKB(kb); err != nil {
		m.Close()
		t.Fatal(err)
	}
	return m
}

// randomOptProgram is the tape-driven generator for optimizer fuzzing.
// It favors origin-safe propagate functions (so the optimizer usually
// engages) but still emits MIN/MAX onto complex destinations sometimes,
// exercising the bail-to-identity path; the plane pool is kept small so
// lifetimes collide and renaming has real hazards to chew on.
func randomOptProgram(rng *rand.Rand, kb *semnet.KB, rels []semnet.RelType, cols []semnet.Color) *isa.Program {
	p := isa.NewProgram()
	planes := []semnet.MarkerID{0, 1, 2, 3, 64, 65}
	mk := func() semnet.MarkerID { return planes[rng.Intn(len(planes))] }
	safeFns := []semnet.FuncCode{semnet.FuncNop, semnet.FuncAdd, semnet.FuncDec}
	fn := func() semnet.FuncCode {
		if rng.Intn(8) == 0 {
			return semnet.FuncMin // origin-unsafe on complex dests: bail path
		}
		return safeFns[rng.Intn(len(safeFns))]
	}
	rel := func() semnet.RelType { return rels[rng.Intn(len(rels))] }
	spec := func() rules.Spec {
		switch rng.Intn(3) {
		case 0:
			return rules.Step(rel())
		case 1:
			return rules.Path(rel())
		default:
			return rules.Spread(rel(), rel())
		}
	}
	steps := 8 + rng.Intn(24)
	for i := 0; i < steps; i++ {
		switch rng.Intn(14) {
		case 0:
			p.SearchNode(semnet.NodeID(rng.Intn(kb.NumNodes())), mk(), float32(rng.Intn(8)))
		case 1:
			p.SearchColor(cols[rng.Intn(len(cols))], mk(), float32(1+rng.Intn(7)))
		case 2, 3, 4:
			p.Propagate(mk(), mk(), spec(), fn())
		case 5:
			p.And(mk(), mk(), mk(), fn())
		case 6:
			p.Or(mk(), mk(), mk(), fn())
		case 7:
			p.Not(mk(), mk(), float32(rng.Intn(8)), isa.Condition(rng.Intn(7)))
		case 8:
			p.Set(mk(), float32(rng.Intn(8)))
		case 9:
			p.ClearM(mk())
		case 10:
			p.Func(mk(), safeFns[rng.Intn(len(safeFns))], float32(rng.Intn(4)))
		case 11:
			p.CollectNode(mk())
		case 12:
			p.CollectColor(mk())
		default:
			p.Barrier()
		}
	}
	p.CollectNode(mk())
	p.Barrier()
	return p
}

// optDifferential runs one seed's program unoptimized and optimized on
// fresh lockstep machines and requires bit-identical observables.
func optDifferential(t *testing.T, seed int64, level int, preserve bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kb, rels, cols := randomKB(rng)
	p := randomOptProgram(rng, kb, rels, cols)
	clusters := 1 + rng.Intn(6)

	opt := isa.Optimize(p, isa.OptConfig{Level: level, PreserveMarkers: preserve})

	mRef := newTestMachine(t, kb, clusters)
	defer mRef.Close()
	resRef, err := mRef.Run(p)
	if err != nil {
		t.Fatalf("seed %d: reference run: %v", seed, err)
	}
	ref := captureFull(mRef, kb, resRef)

	mOpt := newTestMachine(t, kb, clusters)
	defer mOpt.Close()
	resOpt, err := mOpt.RunOptimized(t.Context(), opt.Program)
	if err == ErrOptAmbiguous {
		// The strict-mode backstop fired: the caller would fall back to
		// the unoptimized program, so there is nothing to compare.
		return
	}
	if err != nil {
		t.Fatalf("seed %d: optimized run: %v", seed, err)
	}
	resOpt.RemapInstrs(opt.OrigIndex)
	got := captureFull(mOpt, kb, resOpt)

	label := fmt.Sprintf("seed %d level %d preserve %v (%d->%d instrs)",
		seed, level, preserve, p.Len(), opt.Program.Len())
	if preserve {
		diffFull(t, label, ref, got)
	} else {
		// Serving profile: dead final marker state is free game, but
		// collections stay bit-identical.
		refC := fullState{markers: map[string]string{}, collections: ref.collections}
		gotC := fullState{markers: map[string]string{}, collections: got.collections}
		diffFull(t, label, refC, gotC)
	}
	// No virtual-time assertion here: the optimizer never adds
	// instructions or window flushes, but any instruction removed or
	// moved shifts issue slots and flush points, which perturbs
	// per-cluster clock alignment by microseconds in either direction
	// on programs with nothing to overlap. The deterministic chain
	// tests (and the snapbench fence) assert strict improvement on
	// workloads with real structure to win.
}

// FuzzOptDifferential is the tape-driven bit-identity check for the
// optimizer: markers read back (value and origin registers included),
// collections, and instruction attribution must match the program as
// written at every opt level, and virtual time must never regress.
func FuzzOptDifferential(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(42), byte(1))
	f.Add(int64(-7), byte(2))
	f.Add(int64(987654), byte(3))
	f.Add(int64(-314159), byte(5))
	f.Fuzz(func(t *testing.T, seed int64, mode byte) {
		level := isa.OptBasic + int(mode)%2 // O1 or O2
		preserve := (mode/2)%2 == 0
		optDifferential(t, seed, level, preserve)
	})
}

// TestOptDifferentialSeeded pins a deterministic sweep of the same
// property so the suite exercises the optimizer without -fuzz.
func TestOptDifferentialSeeded(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(5000 + trial)
		optDifferential(t, seed, isa.OptBasic+trial%2, trial%4 < 2)
	}
}

// chainKB builds the depth-8 chain network: `chains` disjoint chains of
// `depth` nodes linked head to tail, each head carrying its own color.
func optChainKB(t *testing.T, chains, depth int) (*semnet.KB, semnet.RelType, []semnet.Color) {
	t.Helper()
	kb := semnet.NewKB()
	next := kb.Relation("next")
	body := kb.ColorFor("body")
	heads := make([]semnet.Color, chains)
	for i := range heads {
		heads[i] = kb.ColorFor(fmt.Sprintf("head%d", i))
	}
	for c := 0; c < chains; c++ {
		var prev semnet.NodeID
		for d := 0; d < depth; d++ {
			col := body
			if d == 0 {
				col = heads[c]
			}
			id := kb.MustAddNode(fmt.Sprintf("c%dn%d", c, d), col)
			if d > 0 {
				kb.MustAddLink(prev, next, 1, id)
			}
			prev = id
		}
	}
	return kb, next, heads
}

// chainWorkload is the naive depth-8 chain program: every sub-query
// reuses one scratch plane (WAR/WAW window flush per chain as written)
// and emits a dead diagnostic propagate that serving-mode DCE removes.
func chainWorkload(next semnet.RelType, heads []semnet.Color) *isa.Program {
	p := isa.NewProgram()
	scratch := semnet.MarkerID(semnet.NumComplexMarkers) // binary
	diag := semnet.MarkerID(semnet.NumComplexMarkers + 1)
	for i, h := range heads {
		p.ClearM(scratch)
		p.SearchColor(h, scratch, 1)
		p.Propagate(scratch, semnet.MarkerID(i), rules.Path(next), semnet.FuncNop)
		p.Propagate(scratch, diag, rules.Step(next), semnet.FuncNop) // never read
	}
	for i := range heads {
		p.CollectNode(semnet.MarkerID(i))
	}
	p.Barrier()
	return p
}

// TestOptimizedChainIdenticalAndFaster is the acceptance check at
// machine level: on the depth-8 chain workload the optimized program
// returns bit-identical collections and strictly lower virtual time.
func TestOptimizedChainIdenticalAndFaster(t *testing.T) {
	kb, next, heads := optChainKB(t, 8, 8)
	p := chainWorkload(next, heads)

	opt := isa.Optimize(p, isa.OptConfig{Level: isa.OptFull})
	if !opt.Changed() {
		t.Fatal("chain workload must optimize")
	}
	if opt.InstrsEliminated < len(heads) {
		t.Fatalf("expected the %d diagnostic propagates dead, eliminated %d",
			len(heads), opt.InstrsEliminated)
	}

	mRef := newTestMachine(t, kb, 4)
	defer mRef.Close()
	resRef, err := mRef.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	mOpt := newTestMachine(t, kb, 4)
	defer mOpt.Close()
	resOpt, err := mOpt.RunOptimized(t.Context(), opt.Program)
	if err != nil {
		t.Fatal(err)
	}
	resOpt.RemapInstrs(opt.OrigIndex)

	ref, got := captureFull(mRef, kb, resRef), captureFull(mOpt, kb, resOpt)
	refC := fullState{markers: map[string]string{}, collections: ref.collections}
	gotC := fullState{markers: map[string]string{}, collections: got.collections}
	diffFull(t, "chain collections", refC, gotC)

	if resOpt.Time >= resRef.Time {
		t.Fatalf("virtual time must strictly improve: %d -> %d", resRef.Time, resOpt.Time)
	}
	if mo, mn := meanDeg(p), meanDeg(opt.Program); mn <= mo {
		t.Fatalf("mean overlap degree must strictly increase: %0.3f -> %0.3f", mo, mn)
	}
}

func meanDeg(p *isa.Program) float64 {
	degs := isa.OverlapDegrees(p)
	sum := 0
	for _, d := range degs {
		sum += d
	}
	return float64(sum) / float64(len(degs))
}

// TestRunOptimizedPlainProgram: strict mode with no wide groups must
// behave exactly like RunContext for an unchanged program.
func TestRunOptimizedPlainProgram(t *testing.T) {
	kb, next, heads := optChainKB(t, 2, 4)
	p := chainWorkload(next, heads)
	mA := newTestMachine(t, kb, 2)
	defer mA.Close()
	resA, err := mA.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	mB := newTestMachine(t, kb, 2)
	defer mB.Close()
	resB, err := mB.RunOptimized(t.Context(), p)
	if err != nil {
		t.Fatal(err)
	}
	diffFull(t, "strict vs plain", captureFull(mA, kb, resA), captureFull(mB, kb, resB))
	if resA.Time != resB.Time {
		t.Fatalf("strict mode changed virtual time: %d vs %d", resA.Time, resB.Time)
	}
}
