package machine

import (
	"context"
	"errors"

	"snap1/internal/isa"
)

// ErrOptAmbiguous reports that an optimized run observed an equal-value,
// distinct-origin marker delivery tie — the one observable the
// optimizer's reordering could in principle perturb. The run's results
// are discarded and the caller re-runs the unoptimized program.
var ErrOptAmbiguous = errors.New("machine: optimized run hit origin-ambiguous value tie")

// RunOptimized executes an optimizer-rewritten program in strict mode:
// the origin-tie detector used by fused runs is armed (with no wide
// groups, so every instruction executes exactly as in a plain run), and
// a detected tie fails the run with ErrOptAmbiguous instead of
// committing a schedule-dependent origin register. The optimizer's
// passes preserve all same-plane orderings, so ties should resolve
// identically to the unoptimized program; the detector is the runtime
// backstop that turns any gap in that argument into a clean fallback
// rather than a silently different answer. Collection.Instr indices
// refer to the optimized instruction stream; callers remap them through
// Optimized.OrigIndex (Result.RemapInstrs).
func (m *Machine) RunOptimized(ctx context.Context, p *isa.Program) (*Result, error) {
	fc := &fusedRun{groupOf: make([]int16, len(p.Instrs))}
	for i := range fc.groupOf {
		fc.groupOf[i] = -1
	}
	m.fusedCtx = fc
	res, err := m.RunContext(ctx, p)
	m.fusedCtx = nil
	if err != nil {
		return nil, err
	}
	if fc.amb.Load() {
		return nil, ErrOptAmbiguous
	}
	return res, nil
}

// RemapInstrs rewrites every collection's Instr index through
// origIndex (optimized position → original position), so callers keep
// addressing collections by the program they submitted. Out-of-range
// indices are left untouched.
func (r *Result) RemapInstrs(origIndex []int) {
	for i := range r.Collections {
		if c := &r.Collections[i]; c.Instr >= 0 && c.Instr < len(origIndex) {
			c.Instr = origIndex[c.Instr]
		}
	}
}
