// Package timing provides the virtual time base and the calibrated
// cycle-cost model used by every simulated SNAP-1 component.
//
// The original SNAP-1 prototype ran its array PEs (TMS320C30 DSPs) at
// 25 MHz and its controller at 32 MHz. All simulated work is accounted in
// integer picoseconds so that both clock domains (40 ns and 31.25 ns
// periods) and the 80 ns interconnect hop latency are represented exactly.
package timing

import (
	"fmt"
	"math"
	"time"
)

// Time is a point (or span) of virtual time, in picoseconds.
//
// Picoseconds in an int64 cover roughly 106 virtual days, far beyond any
// simulated experiment, while keeping every clock-domain period integral.
type Time int64

// Common spans.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Nanoseconds returns t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 count of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration, rounding to nanoseconds.
func (t Time) Duration() time.Duration {
	return time.Duration(t/Nanosecond) * time.Nanosecond
}

// String formats t with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Hz is a clock frequency in cycles per second.
type Hz int64

// Paper clock rates (Section IV: "32 MHz controller and 25 MHz array PE
// clock speed").
const (
	PEClock         Hz = 25_000_000
	ControllerClock Hz = 32_000_000
)

// Period returns the duration of a single cycle at frequency f.
func (f Hz) Period() Time {
	if f <= 0 {
		return 0
	}
	return Time(int64(Second) / int64(f))
}

// Cycles returns the duration of n cycles at frequency f.
func (f Hz) Cycles(n int64) Time { return Time(n) * f.Period() }

// Clock is a monotone virtual clock owned by one simulated functional
// unit (PU, MU, CU, or controller processor). Clocks are not safe for
// concurrent use; each unit advances only its own clock and units
// reconcile through Sync at interaction points.
type Clock struct {
	freq Hz
	now  Time
}

// NewClock returns a clock at virtual time zero ticking at freq.
func NewClock(freq Hz) *Clock { return &Clock{freq: freq} }

// Now reports the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Freq reports the clock's frequency.
func (c *Clock) Freq() Hz { return c.freq }

// Advance moves the clock forward by d. Negative d is ignored and
// overflow saturates: virtual clocks are monotone.
func (c *Clock) Advance(d Time) {
	if d <= 0 {
		return
	}
	if c.now+d < c.now {
		c.now = Time(math.MaxInt64)
		return
	}
	c.now += d
}

// Tick advances the clock by n cycles of its own frequency.
func (c *Clock) Tick(n int64) { c.Advance(c.freq.Cycles(n)) }

// Sync advances the clock to t if t is later: the receive rule of the
// virtual-time model ("arrival time = max(local, sender + latency)").
func (c *Clock) Sync(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero (between experiment runs).
func (c *Clock) Reset() { c.now = 0 }

// CostModel carries every per-operation cycle cost used by the simulator.
// Costs are in cycles of the owning unit's clock domain unless the field
// documents otherwise. The default values are calibrated so the absolute
// magnitudes match the paper's reported figures:
//
//   - SET/CLEAR-MARKER over a 1K-node cluster ≈ 50 µs,
//   - PROPAGATE from several hundred µs depending on path length,
//   - 80 ns port-to-port ICN hop,
//   - broadcast overhead small and constant.
type CostModel struct {
	// PU (processing unit) costs.
	DecodeCycles  int64 // decode + task setup per SNAP instruction
	EnqueueCycles int64 // place one task in marker processing memory

	// MU (marker unit) costs.
	StatusWordCycles int64 // boolean/set/clear over one 32-node status word
	NodeTestCycles   int64 // per-node inspection during SEARCH
	RelSlotCycles    int64 // scan one relation-table slot
	PropUpdateCycles int64 // marker update incl. float op, per traversed link
	ContHopCycles    int64 // follow one preprocessor continuation link (no function)
	TaskSwitchCycles int64 // dequeue one propagation task

	// CU (communication unit) costs.
	MsgAssembleCycles    int64 // assemble or disassemble one 64-bit message
	HopLatency           Time  // ICN port-to-port latency per hop (80 ns)
	MailboxEnqueueCycles int64 // DMA of one message into an ICN mailbox

	// Controller costs (controller clock domain).
	BroadcastCycles        int64 // broadcast one instruction on the global bus
	IssueCycles            int64 // PCP→SCP FIFO transfer per instruction
	CollectNodeCycles      int64 // retrieve one node ID from a cluster dual-port
	CollectSetupPerCluster int64 // per-cluster dual-port switch during COLLECT

	// Barrier synchronization costs (controller clock domain).
	BarrierBaseCycles       int64 // AND-tree settle + SIGI sample
	BarrierPerClusterCycles int64 // read one cluster's level counters
	BarrierPerLevelCycles   int64 // reconcile one tier of the counter sum

	// Multiport memory arbitration.
	ArbiterGrantCycles int64 // request/grant round trip for a semaphore
}

// DefaultCostModel returns the calibrated cost table described above.
func DefaultCostModel() CostModel {
	return CostModel{
		DecodeCycles:  180,
		EnqueueCycles: 12,

		StatusWordCycles: 34,
		NodeTestCycles:   6,
		RelSlotCycles:    24,
		PropUpdateCycles: 430,
		ContHopCycles:    14,
		TaskSwitchCycles: 90,

		MsgAssembleCycles:    24,
		HopLatency:           80 * Nanosecond,
		MailboxEnqueueCycles: 10,

		BroadcastCycles:        64,
		IssueCycles:            16,
		CollectNodeCycles:      40,
		CollectSetupPerCluster: 220,

		BarrierBaseCycles:       90,
		BarrierPerClusterCycles: 24,
		BarrierPerLevelCycles:   12,

		ArbiterGrantCycles: 8,
	}
}

// PECost converts n PE-domain cycles to time.
func (m CostModel) PECost(n int64) Time { return PEClock.Cycles(n) }

// CtrlCost converts n controller-domain cycles to time.
func (m CostModel) CtrlCost(n int64) Time { return ControllerClock.Cycles(n) }
