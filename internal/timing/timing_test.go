package timing

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnitsExact(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := (2500 * Picosecond).Nanoseconds(); got != 2.5 {
		t.Errorf("2500ps = %vns, want 2.5", got)
	}
	if got := (3 * Millisecond).Seconds(); got != 0.003 {
		t.Errorf("3ms = %vs", got)
	}
	if got := (Second + 500*Millisecond).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
}

func TestClockDomainPeriodsExact(t *testing.T) {
	// The 25 MHz PE clock has a 40 ns period and the 32 MHz controller
	// clock 31.25 ns; both must be integral in picoseconds.
	if got := PEClock.Period(); got != 40*Nanosecond {
		t.Errorf("PE period = %v", got)
	}
	if got := ControllerClock.Period(); got != 31250*Picosecond {
		t.Errorf("controller period = %v", got)
	}
	if got := PEClock.Cycles(25_000_000); got != Second {
		t.Errorf("25M PE cycles = %v, want 1s", got)
	}
	if Hz(0).Period() != 0 {
		t.Error("zero frequency must have zero period")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{80 * Nanosecond, "80.00ns"},
		{50 * Microsecond, "50.00µs"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
		{-80 * Nanosecond, "-80.00ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d ps → %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock(PEClock)
	c.Tick(10)
	if c.Now() != 400*Nanosecond {
		t.Fatalf("10 PE cycles = %v", c.Now())
	}
	c.Advance(-time50())
	if c.Now() != 400*Nanosecond {
		t.Error("negative Advance must be ignored")
	}
	c.Sync(100 * Nanosecond)
	if c.Now() != 400*Nanosecond {
		t.Error("Sync to the past must be ignored")
	}
	c.Sync(1 * Microsecond)
	if c.Now() != Microsecond {
		t.Errorf("Sync forward failed: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset must rewind to zero")
	}
	if c.Freq() != PEClock {
		t.Error("Freq mismatch")
	}
}

func time50() Time { return 50 * Nanosecond }

func TestMaxProperty(t *testing.T) {
	f := func(a, b int64) bool {
		m := Max(Time(a), Time(b))
		return m >= Time(a) && m >= Time(b) && (m == Time(a) || m == Time(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostModelConversions(t *testing.T) {
	m := DefaultCostModel()
	// SET/CLEAR calibration: decode + 32 status words on a full
	// 1024-node cluster should land near the paper's 50 µs.
	cycles := m.DecodeCycles + m.EnqueueCycles + 32*m.StatusWordCycles
	got := m.PECost(cycles)
	if got < 40*Microsecond || got > 60*Microsecond {
		t.Errorf("SET-MARKER over 1K nodes = %v, want ≈50µs", got)
	}
	if m.HopLatency != 80*Nanosecond {
		t.Errorf("hop latency = %v, want 80ns", m.HopLatency)
	}
	if m.CtrlCost(32) != 32*ControllerClock.Period() {
		t.Error("CtrlCost mismatch")
	}
}

func TestClockSyncQuick(t *testing.T) {
	// A clock is monotone under any interleaving of operations.
	f := func(ops []int64) bool {
		c := NewClock(PEClock)
		prev := Time(0)
		for _, op := range ops {
			switch {
			case op%3 == 0:
				c.Advance(Time(op))
			case op%3 == 1:
				c.Sync(Time(op))
			default:
				c.Tick(op % 1000)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
