// Package barrier implements SNAP-1's tiered synchronization scheme
// (Section III-C, Figs. 13-14).
//
// The problem: in MIMD propagation no one has a global view of activity.
// The controller must decide that (1) every PE is idle and (2) no marker
// activation message is in transit. SNAP-1 solves this with an AND-tree
// that reports the array-wide idle state (the SIGI interlock signal) plus
// per-level marker message counters: every message creation increments and
// every termination decrements its propagation tier's counter, so the
// barrier completes exactly when all PEs are idle and every tier's
// created-minus-consumed count is zero. Tier separation prevents the false
// detection that a single counter would allow in hardware where counter
// reports race message delivery.
//
// Protocol invariants the callers must respect:
//
//   - Created is called BEFORE the message becomes visible to any
//     receiver (before the ICN enqueue).
//   - Consumed is called AFTER all of the message's spawned children have
//     been Created.
//   - A cluster declares itself quiescent only when its local task queue
//     and ICN mailbox are empty, using the WakeSeq/WaitQuiescent pair to
//     close the check-then-block race.
package barrier

import "sync"

// MaxLevels bounds the tier counters; propagation deeper than this folds
// into the last tier (the hardware has a fixed counter bank).
const MaxLevels = 64

// Stats describes one completed barrier.
type Stats struct {
	Messages int64   // inter-cluster marker activations this barrier
	Levels   int     // deepest tier used (1-based), 0 if no messages
	PerLevel []int64 // creations per tier
}

// Tiered is one phase's synchronization state shared by the array
// clusters and the sequence control processor.
type Tiered struct {
	mu   sync.Mutex
	cond *sync.Cond

	clusters int
	idle     []bool
	wakeSeq  []uint64

	inFlight  int64 // sum over tiers of created - consumed
	created   []int64
	consumed  []int64
	maxLevel  int
	totalMsgs int64

	done bool
}

// New returns a barrier for the given cluster count with every cluster
// initially busy.
func New(clusters int) *Tiered {
	b := &Tiered{
		clusters: clusters,
		idle:     make([]bool, clusters),
		wakeSeq:  make([]uint64, clusters),
		created:  make([]int64, MaxLevels),
		consumed: make([]int64, MaxLevels),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= MaxLevels {
		return MaxLevels - 1
	}
	return level
}

// Created records a marker message entering flight at the given tier.
func (b *Tiered) Created(level int) {
	l := clampLevel(level)
	b.mu.Lock()
	b.created[l]++
	b.inFlight++
	b.totalMsgs++
	if l+1 > b.maxLevel {
		b.maxLevel = l + 1
	}
	b.mu.Unlock()
}

// CreatedBatch records a burst of marker messages entering flight, one
// per entry of levels, under a single counter-bank grant. It is exactly
// equivalent to calling Created for each level in order — the tier
// counters and statistics are updated identically — but the concurrent
// engine pays one lock round-trip per task instead of one per message.
// The same visibility invariant applies: the whole batch must be counted
// before any of its messages becomes visible to a receiver.
func (b *Tiered) CreatedBatch(levels []uint16) {
	if len(levels) == 0 {
		return
	}
	b.mu.Lock()
	for _, lv := range levels {
		l := clampLevel(int(lv))
		b.created[l]++
		if l+1 > b.maxLevel {
			b.maxLevel = l + 1
		}
	}
	b.inFlight += int64(len(levels))
	b.totalMsgs += int64(len(levels))
	b.mu.Unlock()
}

// Consumed records a marker message leaving flight at the given tier.
// Completion is re-checked because this may be the last outstanding count.
func (b *Tiered) Consumed(level int) {
	l := clampLevel(level)
	b.mu.Lock()
	b.consumed[l]++
	b.inFlight--
	if b.inFlight < 0 {
		b.mu.Unlock()
		panic("barrier: consumed more messages than created")
	}
	b.checkLocked()
	b.mu.Unlock()
}

// Wake marks cluster c busy (a message was just enqueued for it) and
// advances its wake sequence, releasing a WaitQuiescent in progress.
func (b *Tiered) Wake(c int) {
	b.mu.Lock()
	b.idle[c] = false
	b.wakeSeq[c]++
	b.cond.Broadcast()
	b.mu.Unlock()
}

// WakeSeq samples cluster c's wake sequence. A cluster reads this before
// its final empty-queue check; passing it to WaitQuiescent guarantees a
// message arriving between the check and the block is not lost.
func (b *Tiered) WakeSeq(c int) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wakeSeq[c]
}

// WaitQuiescent declares cluster c idle and blocks until either the
// barrier completes globally (returns true) or the cluster is woken by new
// work (returns false). If the wake sequence has moved past seq the call
// returns false immediately.
func (b *Tiered) WaitQuiescent(c int, seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.wakeSeq[c] != seq {
		return false
	}
	b.idle[c] = true
	b.checkLocked()
	for !b.done && b.wakeSeq[c] == seq {
		b.cond.Wait()
	}
	if b.done {
		return true
	}
	b.idle[c] = false
	return false
}

// checkLocked fires the barrier when the AND-tree is high and every tier
// counter balances.
func (b *Tiered) checkLocked() {
	if b.done || b.inFlight != 0 {
		return
	}
	for _, idle := range b.idle {
		if !idle {
			return
		}
	}
	b.done = true
	b.cond.Broadcast()
}

// WaitGlobal blocks the controller until the barrier completes, then
// returns the barrier's traffic statistics.
func (b *Tiered) WaitGlobal() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.done {
		b.cond.Wait()
	}
	per := make([]int64, b.maxLevel)
	copy(per, b.created[:b.maxLevel])
	return Stats{Messages: b.totalMsgs, Levels: b.maxLevel, PerLevel: per}
}

// Done reports (without blocking) whether the barrier has completed.
func (b *Tiered) Done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done
}

// Reset rearms the barrier for the next phase: counters zeroed, clusters
// marked busy. Any goroutine still blocked in WaitQuiescent from the
// previous phase is released by the phase-end broadcast before Reset is
// called; callers must not Reset while clusters are still waiting.
func (b *Tiered) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.done = false
	b.inFlight = 0
	b.totalMsgs = 0
	b.maxLevel = 0
	for i := range b.created {
		b.created[i] = 0
		b.consumed[i] = 0
	}
	for i := range b.idle {
		b.idle[i] = false
		b.wakeSeq[i]++
	}
}

// Snapshot returns the current created/consumed tier counters (diagnostic
// view of the counter bank).
func (b *Tiered) Snapshot() (created, consumed []int64, inFlight int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := make([]int64, b.maxLevel)
	copy(c, b.created[:b.maxLevel])
	t := make([]int64, b.maxLevel)
	copy(t, b.consumed[:b.maxLevel])
	return c, t, b.inFlight
}
