package barrier

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestImmediateCompletionWhenAllIdle(t *testing.T) {
	b := New(2)
	done := make(chan Stats, 1)
	go func() { done <- b.WaitGlobal() }()
	for c := 0; c < 2; c++ {
		go func(c int) {
			seq := b.WakeSeq(c)
			b.WaitQuiescent(c, seq)
		}(c)
	}
	select {
	case s := <-done:
		if s.Messages != 0 || s.Levels != 0 {
			t.Fatalf("empty barrier stats = %+v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier did not complete")
	}
}

func TestCountersBlockCompletion(t *testing.T) {
	b := New(1)
	b.Created(1)
	idle := make(chan bool, 1)
	go func() {
		seq := b.WakeSeq(0)
		idle <- b.WaitQuiescent(0, seq)
	}()
	select {
	case <-idle:
		t.Fatal("barrier completed with a message in flight")
	case <-time.After(50 * time.Millisecond):
	}
	// Wake the cluster (message delivery), consume, and go idle again.
	b.Wake(0)
	if <-idle {
		t.Fatal("wake must not report completion")
	}
	b.Consumed(1)
	done := make(chan Stats, 1)
	go func() { done <- b.WaitGlobal() }()
	go func() {
		seq := b.WakeSeq(0)
		b.WaitQuiescent(0, seq)
	}()
	s := <-done
	if s.Messages != 1 || s.Levels != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PerLevel[1] != 1 {
		t.Fatalf("per-level = %v", s.PerLevel)
	}
}

func TestWakeSeqClosesRace(t *testing.T) {
	b := New(1)
	seq := b.WakeSeq(0)
	b.Wake(0) // message arrives between the check and the block
	if b.WaitQuiescent(0, seq) {
		t.Fatal("stale sequence must return immediately with false")
	}
}

func TestConsumedUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Consumed below zero must panic")
		}
	}()
	New(1).Consumed(0)
}

func TestLevelClamping(t *testing.T) {
	b := New(1)
	b.Created(-5)
	b.Created(MaxLevels + 100)
	created, _, inFlight := b.Snapshot()
	if inFlight != 2 {
		t.Fatalf("inFlight = %d", inFlight)
	}
	if created[0] != 1 || created[MaxLevels-1] != 1 {
		t.Fatalf("clamping failed: %v", created)
	}
	b.Consumed(-5)
	b.Consumed(MaxLevels + 100)
	if b.Done() {
		t.Fatal("not all idle yet")
	}
}

func TestReset(t *testing.T) {
	b := New(1)
	b.Created(0)
	b.Consumed(0)
	go func() {
		seq := b.WakeSeq(0)
		b.WaitQuiescent(0, seq)
	}()
	b.WaitGlobal()
	b.Reset()
	if b.Done() {
		t.Fatal("Reset must rearm")
	}
	_, _, inFlight := b.Snapshot()
	if inFlight != 0 {
		t.Fatal("Reset must zero counters")
	}
}

// A randomized message storm: N workers create/consume messages through
// the protocol; termination must be detected exactly once, only after all
// messages balance, under the race detector.
func TestTerminationDetectionStorm(t *testing.T) {
	const clusters = 8
	for trial := 0; trial < 5; trial++ {
		b := New(clusters)
		queues := make([]chan int, clusters) // message level per entry
		for i := range queues {
			queues[i] = make(chan int, 1024)
		}
		// Seed initial work.
		rng := rand.New(rand.NewSource(int64(trial)))
		for i := 0; i < 20; i++ {
			dst := rng.Intn(clusters)
			b.Created(1)
			queues[dst] <- 1
			b.Wake(dst)
		}
		var wg sync.WaitGroup
		var processed sync.Map
		for c := 0; c < clusters; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c + 100)))
				for {
					select {
					case lvl := <-queues[c]:
						// Probabilistically spawn children BEFORE consuming,
						// per the protocol invariant.
						if lvl < 6 && rng.Intn(3) == 0 {
							dst := rng.Intn(clusters)
							b.Created(lvl + 1)
							queues[dst] <- lvl + 1
							b.Wake(dst)
						}
						b.Consumed(lvl)
						processed.Store(rng.Int63(), true)
					default:
						seq := b.WakeSeq(c)
						if len(queues[c]) > 0 {
							continue
						}
						if b.WaitQuiescent(c, seq) {
							return
						}
					}
				}
			}(c)
		}
		s := b.WaitGlobal()
		wg.Wait()
		// After completion every queue must be empty and counters balanced.
		for c := range queues {
			if len(queues[c]) != 0 {
				t.Fatalf("trial %d: queue %d not drained at termination", trial, c)
			}
		}
		created, consumed, inFlight := b.Snapshot()
		if inFlight != 0 {
			t.Fatalf("trial %d: inFlight = %d", trial, inFlight)
		}
		for lvl := range created {
			if created[lvl] != consumed[lvl] {
				t.Fatalf("trial %d: level %d unbalanced: %d created, %d consumed",
					trial, lvl, created[lvl], consumed[lvl])
			}
		}
		if s.Messages < 20 {
			t.Fatalf("trial %d: only %d messages recorded", trial, s.Messages)
		}
	}
}

func TestCreatedBatchMatchesSequential(t *testing.T) {
	levels := []uint16{0, 1, 1, 2, 3, 7, 300} // 300 exercises tier clamping
	seq, bat := New(1), New(1)
	for _, l := range levels {
		seq.Created(int(l))
	}
	bat.CreatedBatch(levels)

	sc, _, sf := seq.Snapshot()
	bc, _, bf := bat.Snapshot()
	if sf != bf {
		t.Fatalf("inFlight: sequential %d vs batch %d", sf, bf)
	}
	if len(sc) != len(bc) {
		t.Fatalf("maxLevel: sequential %d vs batch %d tiers", len(sc), len(bc))
	}
	for l := range sc {
		if sc[l] != bc[l] {
			t.Fatalf("tier %d: sequential %d vs batch %d", l, sc[l], bc[l])
		}
	}

	// Both barriers must then complete identically once every message is
	// consumed and the cluster reports idle.
	for _, b := range []*Tiered{seq, bat} {
		for _, l := range levels {
			b.Consumed(int(l))
		}
		done := make(chan Stats, 1)
		go func(b *Tiered) { done <- b.WaitGlobal() }(b)
		seqNo := b.WakeSeq(0)
		go b.WaitQuiescent(0, seqNo)
		select {
		case s := <-done:
			if s.Messages != int64(len(levels)) {
				t.Fatalf("stats = %+v", s)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("barrier did not complete")
		}
	}
}

func TestCreatedBatchEmptyIsNoOp(t *testing.T) {
	b := New(1)
	b.CreatedBatch(nil)
	b.CreatedBatch([]uint16{})
	if _, _, inFlight := b.Snapshot(); inFlight != 0 {
		t.Fatalf("inFlight = %d after empty batches", inFlight)
	}
}

func TestCreatedBatchConcurrentStorm(t *testing.T) {
	const clusters, rounds = 4, 200
	b := New(clusters)
	var wg sync.WaitGroup
	for c := 0; c < clusters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			lvls := make([]uint16, 0, 8)
			for r := 0; r < rounds; r++ {
				lvls = lvls[:0]
				for i := 0; i < 1+rng.Intn(7); i++ {
					lvls = append(lvls, uint16(rng.Intn(6)))
				}
				b.CreatedBatch(lvls)
				for _, l := range lvls {
					b.Consumed(int(l))
				}
			}
			seq := b.WakeSeq(c)
			b.WaitQuiescent(c, seq)
		}(c)
	}
	done := make(chan Stats, 1)
	go func() { done <- b.WaitGlobal() }()
	select {
	case s := <-done:
		created, consumed, inFlight := b.Snapshot()
		if inFlight != 0 {
			t.Fatalf("inFlight = %d at completion", inFlight)
		}
		for l := range created {
			if created[l] != consumed[l] {
				t.Fatalf("tier %d unbalanced: %d vs %d", l, created[l], consumed[l])
			}
		}
		if s.Messages == 0 {
			t.Fatal("no messages recorded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("storm did not terminate")
	}
	wg.Wait()
}
