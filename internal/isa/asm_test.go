package isa

import (
	"strings"
	"testing"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func asmKB(t *testing.T) *semnet.KB {
	t.Helper()
	kb := semnet.NewKB()
	col := kb.ColorFor("class")
	kb.MustAddNode("we", col)
	kb.MustAddNode("animate", col)
	kb.Relation("is-a")
	kb.Relation("last")
	return kb
}

const sampleAsm = `
# configuration phase
clear-marker marker=c1
search-node node=we marker=c1 value=0
search-color color=class marker=b0 value=1.5

# propagation
propagate m1=c1 m2=c2 rule=spread(is-a,last) fn=add
propagate m1=c2 m2=b1 rule=path(is-a) fn=nop

# accumulation
and-marker m1=c1 m2=c2 m3=c3 fn=max
not-marker m1=c3 m2=b2 value=2 cond=le
collect-node marker=c3
comm-end
`

func TestAssembleProgram(t *testing.T) {
	kb := asmKB(t)
	p, err := NewAssembler(kb).Assemble(strings.NewReader(sampleAsm))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 9 {
		t.Fatalf("assembled %d instructions", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rules.Len() != 2 {
		t.Fatalf("rule table = %d", p.Rules.Len())
	}
	in := p.Instrs[1]
	if in.Op != OpSearchNode || in.M1 != semnet.MarkerID(1) {
		t.Fatalf("search-node parsed as %+v", in)
	}
	if p.Instrs[2].Value != 1.5 {
		t.Error("value operand")
	}
	if p.Instrs[6].Cond != CondLE || p.Instrs[6].Value != 2 {
		t.Error("not-marker operands")
	}
}

func TestAssembleErrors(t *testing.T) {
	kb := asmKB(t)
	cases := []string{
		"bogus-op marker=c1",
		"search-node node=missing marker=c1",
		"search-node node=we marker=z1",
		"search-node node=we marker=c99",
		"search-node node=we marker=b99",
		"propagate m1=c1 m2=c2 fn=add", // missing rule
		"propagate m1=c1 m2=c2 rule=warp(is-a) fn=add",
		"propagate m1=c1 m2=c2 rule=spread(is-a) fn=add", // arity
		"propagate m1=c1 m2=c2 rule=spread(is-a,last) fn=frobnicate",
		"search-node node=we marker=c1 value=abc",
		"search-node node=we marker",
		"search-node unknownkey=1",
		"not-marker m1=c1 m2=c2 cond=sideways",
	}
	for _, src := range cases {
		if _, err := NewAssembler(kb).Assemble(strings.NewReader(src)); err == nil {
			t.Errorf("%q should fail to assemble", src)
		}
	}
}

func TestAssembleNumericNode(t *testing.T) {
	kb := asmKB(t)
	p, err := NewAssembler(kb).Assemble(strings.NewReader("search-node node=1 marker=c0 value=0"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Node != semnet.NodeID(1) {
		t.Fatal("numeric node id")
	}
}

// Disassembling and re-assembling every instruction form must round-trip.
func TestAsmRoundTrip(t *testing.T) {
	kb := asmKB(t)
	we, _ := kb.Lookup("we")
	anim, _ := kb.Lookup("animate")
	isa := kb.Relation("is-a")
	last := kb.Relation("last")
	col := kb.ColorFor("class")

	p := NewProgram()
	p.Create(we, isa, 0.5, anim)
	p.Delete(we, isa, anim)
	p.SetColor(we, col)
	p.SearchNode(we, 1, 0.25)
	p.SearchRelation(isa, 2, 0)
	p.SearchColor(col, semnet.Binary(3), 1)
	p.Propagate(1, 2, rules.Spread(isa, last), semnet.FuncAdd)
	p.MarkerCreate(2, isa, anim, last, true)
	p.MarkerDelete(2, isa, anim, last, true)
	p.MarkerSetColor(2, col)
	p.And(1, 2, 3, semnet.FuncMax)
	p.Or(1, 2, 3, semnet.FuncMin)
	p.Not(1, semnet.Binary(2), 2, CondGT)
	p.Set(4, 9)
	p.ClearM(4)
	p.Func(4, semnet.FuncMul, 3)
	p.CollectNode(4)
	p.CollectRelation(4, isa)
	p.CollectColor(4)
	p.Barrier()

	var src strings.Builder
	for i := range p.Instrs {
		src.WriteString(Disassemble(&p.Instrs[i], kb, p.Rules))
		src.WriteByte('\n')
	}
	p2, err := NewAssembler(kb).Assemble(strings.NewReader(src.String()))
	if err != nil {
		t.Fatalf("reassemble:\n%s\n%v", src.String(), err)
	}
	if p2.Len() != p.Len() {
		t.Fatalf("round trip length %d != %d", p2.Len(), p.Len())
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], p2.Instrs[i]
		// Rule tokens may renumber; compare everything else.
		a.Rule, b.Rule = 0, 0
		if a != b {
			t.Errorf("instruction %d: %+v != %+v\nasm: %s", i, a, b,
				Disassemble(&p.Instrs[i], kb, p.Rules))
		}
	}
}
