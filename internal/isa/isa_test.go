package isa

import (
	"strings"
	"testing"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func TestTwentyOpcodes(t *testing.T) {
	// The paper formalizes 20 high-level instructions (Table II); the
	// twentieth slot here is the COMM-END barrier request.
	if NumOpcodes != 20 {
		t.Fatalf("NumOpcodes = %d, want 20", NumOpcodes)
	}
	seen := make(map[string]bool)
	for op := 0; op < NumOpcodes; op++ {
		name := Opcode(op).String()
		if name == "" || strings.HasPrefix(name, "OP(") {
			t.Errorf("opcode %d has no name", op)
		}
		if seen[name] {
			t.Errorf("duplicate opcode name %q", name)
		}
		seen[name] = true
	}
	// Table II names spot-check.
	for _, want := range []string{
		"CREATE", "DELETE", "SET-COLOR", "SEARCH-NODE", "SEARCH-RELATION",
		"SEARCH-COLOR", "PROPAGATE", "MARKER-CREATE", "MARKER-DELETE",
		"MARKER-SET-COLOR", "AND-MARKER", "OR-MARKER", "NOT-MARKER",
		"SET-MARKER", "CLEAR-MARKER", "FUNC-MARKER", "COLLECT-NODE",
		"COLLECT-RELATION", "COLLECT-COLOR", "COMM-END",
	} {
		if !seen[want] {
			t.Errorf("missing Table II instruction %q", want)
		}
	}
}

func TestGroupOfCoversAll(t *testing.T) {
	counts := make(map[Group]int)
	for op := 0; op < NumOpcodes; op++ {
		counts[GroupOf(Opcode(op))]++
	}
	want := map[Group]int{
		GroupNodeMaint:   3,
		GroupSearch:      3,
		GroupPropagate:   1,
		GroupMarkerMaint: 3,
		GroupBoolean:     3,
		GroupSetClear:    3,
		GroupCollect:     3,
		GroupSync:        1,
	}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %v has %d opcodes, want %d", g, counts[g], n)
		}
	}
}

func TestConditionEval(t *testing.T) {
	cases := []struct {
		c    Condition
		v, o float32
		want bool
	}{
		{CondNone, 1, 2, true},
		{CondLT, 1, 2, true},
		{CondLT, 2, 2, false},
		{CondLE, 2, 2, true},
		{CondGT, 3, 2, true},
		{CondGE, 2, 2, true},
		{CondEQ, 2, 2, true},
		{CondEQ, 1, 2, false},
		{CondNE, 1, 2, true},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.v, c.o); got != c.want {
			t.Errorf("%v.Eval(%v,%v) = %v", c.c, c.v, c.o, got)
		}
	}
	if Condition(40).Valid() {
		t.Error("condition 40 must be invalid")
	}
}

func TestValidateRejectsBadOperands(t *testing.T) {
	bad := []Instruction{
		{Op: OpSearchNode, M1: 200},
		{Op: OpPropagate, M1: 1, M2: 2, Rule: 0}, // missing rule token
		{Op: OpPropagate, M1: 200, M2: 2, Rule: 1},
		{Op: OpPropagate, M1: 1, M2: 2, Rule: 1, Fn: semnet.FuncCode(99)},
		{Op: OpAndMarker, M1: 1, M2: 2, M3: 200},
		{Op: OpNotMarker, M1: 1, M2: 2, Cond: Condition(99)},
		{Op: OpFuncMarker, M1: 1, Fn: semnet.FuncCode(99)},
		{Op: Opcode(77)},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%v) should fail validation", i, in.Op)
		}
	}
	good := Instruction{Op: OpPropagate, M1: 1, M2: 2, Rule: 1, Fn: semnet.FuncAdd}
	if err := good.Validate(); err != nil {
		t.Errorf("valid propagate rejected: %v", err)
	}
}

func buildProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	p.SearchNode(1, 1, 0).
		Propagate(1, 2, rules.Path(5), semnet.FuncAdd).
		And(1, 2, 3, semnet.FuncNop).
		CollectNode(3).
		Barrier()
	return p
}

func TestProgramBuilderAndValidate(t *testing.T) {
	p := buildProgram(t)
	if p.Len() != 5 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rules.Len() != 1 {
		t.Fatalf("rule table has %d rules", p.Rules.Len())
	}
	// Corrupt a rule token and re-validate.
	p.Instrs[1].Rule = 99
	if err := p.Validate(); err == nil {
		t.Error("dangling rule token must fail validation")
	}
}

func TestProgramAddRejectsInvalid(t *testing.T) {
	p := NewProgram()
	if err := p.Add(Instruction{Op: OpSearchNode, M1: 250}); err == nil {
		t.Fatal("Add must validate")
	}
	if p.Len() != 0 {
		t.Fatal("failed Add must not append")
	}
}

func TestAllEmittersValidate(t *testing.T) {
	p := NewProgram()
	p.Create(0, 1, 0.5, 1)
	p.Delete(0, 1, 1)
	p.SetColor(0, 3)
	p.SearchNode(0, 1, 0)
	p.SearchRelation(1, 2, 0)
	p.SearchColor(3, 3, 0)
	p.Propagate(1, 2, rules.Spread(1, 2), semnet.FuncMin)
	p.MarkerCreate(2, 4, 1, 5, true)
	p.MarkerDelete(2, 4, 1, 5, true)
	p.MarkerSetColor(2, 7)
	p.And(1, 2, 3, semnet.FuncAdd)
	p.Or(1, 2, 3, semnet.FuncAdd)
	p.Not(1, 2, 0.5, CondLE)
	p.Set(4, 1)
	p.ClearM(4)
	p.Func(4, semnet.FuncMul, 2)
	p.CollectNode(4)
	p.CollectRelation(4, 1)
	p.CollectColor(4)
	p.Barrier()
	if p.Len() != NumOpcodes {
		t.Fatalf("emitted %d instructions, want one per opcode", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every opcode must appear exactly once.
	seen := make(map[Opcode]int)
	for _, in := range p.Instrs {
		seen[in.Op]++
	}
	for op := 0; op < NumOpcodes; op++ {
		if seen[Opcode(op)] != 1 {
			t.Errorf("opcode %v emitted %d times", Opcode(op), seen[Opcode(op)])
		}
	}
}

func TestPropagateCustom(t *testing.T) {
	p := NewProgram()
	c, err := rules.NewBuilder("x").On(0, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	p.PropagateCustom(1, 2, c, semnet.FuncNop)
	if p.Rules.Rule(p.Instrs[0].Rule) != c {
		t.Fatal("custom rule not interned")
	}
}
