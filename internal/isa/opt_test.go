package isa

import (
	"testing"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func meanOverlap(p *Program) float64 {
	degs := OverlapDegrees(p)
	if len(degs) == 0 {
		return 0
	}
	sum := 0
	for _, d := range degs {
		sum += d
	}
	return float64(sum) / float64(len(degs))
}

// chainProgram is the depth-8 chain workload shape: one scratch plane
// reused for every sub-query (forcing a WAR/WAW window flush per
// iteration when compiled naively), one destination plane per chain,
// collects at the end.
func chainProgram(chains int) *Program {
	p := NewProgram()
	spec := rules.Path(1)
	scratch := semnet.MarkerID(semnet.NumComplexMarkers) // binary plane
	for i := 0; i < chains; i++ {
		p.ClearM(scratch)
		p.SearchColor(semnet.Color(i+1), scratch, 1)
		p.Propagate(scratch, semnet.MarkerID(i), spec, semnet.FuncNop)
	}
	for i := 0; i < chains; i++ {
		p.CollectNode(semnet.MarkerID(i))
	}
	p.Barrier()
	return p
}

func TestOptimizeIdentity(t *testing.T) {
	p := chainProgram(4)
	if o := Optimize(p, OptConfig{Level: OptNone}); o.Changed() || o.Program != p {
		t.Error("level 0 must be the identity")
	}
	mut := NewProgram().Create(1, 1, 1, 2)
	if o := Optimize(mut, OptConfig{Level: OptFull}); o.Changed() || o.Program != mut {
		t.Error("mutating programs must pass through unchanged")
	}
	// A complex-destination PROPAGATE with a merge-order-sensitive
	// function: a value tie could commit either origin depending on
	// schedule, undetectably — the optimizer must refuse.
	unsafe := NewProgram()
	unsafe.SearchColor(1, 0, 5)
	unsafe.Propagate(0, 1, rules.Path(1), semnet.FuncMin)
	unsafe.CollectNode(1)
	if o := Optimize(unsafe, OptConfig{Level: OptFull}); o.Changed() {
		t.Error("origin-unsafe propagate function must disable optimization")
	}
	// Identity products still carry a valid index map.
	o := Optimize(p, OptConfig{Level: OptNone})
	if len(o.OrigIndex) != p.Len() {
		t.Fatalf("OrigIndex len = %d, want %d", len(o.OrigIndex), p.Len())
	}
	for i, v := range o.OrigIndex {
		if v != i {
			t.Fatalf("identity OrigIndex[%d] = %d", i, v)
		}
	}
}

func TestPeepholeFolds(t *testing.T) {
	// FUNC on a binary plane is a no-op sweep.
	p := NewProgram()
	p.SearchColor(1, 70, 1)
	p.Func(70, semnet.FuncAdd, 2)
	p.CollectColor(70)
	p.Barrier()
	o := Optimize(p, OptConfig{Level: OptBasic, PreserveMarkers: true})
	if !o.Changed() || o.Program.Len() != 3 || o.InstrsEliminated != 1 {
		t.Fatalf("binary FUNC not folded: len=%d", o.Program.Len())
	}

	// SET v; FUNC add w folds to SET v+w.
	p = NewProgram()
	p.Set(3, 5)
	p.Func(3, semnet.FuncAdd, 2)
	p.CollectNode(3)
	p.Barrier()
	o = Optimize(p, OptConfig{Level: OptBasic, PreserveMarkers: true})
	if o.Program.Len() != 3 {
		t.Fatalf("SET/FUNC not folded: %d instrs", o.Program.Len())
	}
	if in := o.Program.Instrs[0]; in.Op != OpSetMarker || in.Value != 7 {
		t.Fatalf("folded SET = %+v, want value 7", in)
	}

	// AND m,m,m with NOP is the identity; with ADD it doubles values
	// and must survive.
	p = NewProgram()
	p.Set(4, 2)
	p.And(4, 4, 4, semnet.FuncNop)
	p.And(4, 4, 4, semnet.FuncAdd)
	p.CollectNode(4)
	p.Barrier()
	o = Optimize(p, OptConfig{Level: OptBasic, PreserveMarkers: true})
	kept := 0
	for _, in := range o.Program.Instrs {
		if in.Op == OpAndMarker {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("AND self-identity folding kept %d of 2", kept)
	}
}

func TestDeadPlaneElimination(t *testing.T) {
	spec := rules.Path(1)
	// A diagnostic propagate whose destination is never collected: dead
	// when markers are unobservable, live when they persist.
	p := NewProgram()
	p.SearchColor(1, 0, 1)
	p.Propagate(0, 1, spec, semnet.FuncNop)
	p.Propagate(0, 2, spec, semnet.FuncNop) // plane 2 never read again
	p.CollectNode(1)
	p.Barrier()
	serve := Optimize(p, OptConfig{Level: OptBasic})
	if serve.Program.Len() != 4 || serve.InstrsEliminated != 1 {
		t.Fatalf("dead propagate kept: %d instrs", serve.Program.Len())
	}
	lib := Optimize(p, OptConfig{Level: OptBasic, PreserveMarkers: true})
	if lib.Changed() {
		t.Fatal("with observable markers the propagate is live")
	}

	// Register-file liveness: SET overwrites status and values but not
	// origin registers, and COLLECT-NODE reports origins — the SEARCH
	// that wrote them is live even though a full-status kill follows.
	p = NewProgram()
	p.SearchColor(1, 5, 9)
	p.Set(5, 3)
	p.CollectNode(5)
	p.Barrier()
	o := Optimize(p, OptConfig{Level: OptBasic})
	if o.Changed() {
		t.Fatal("SEARCH origins observable through SET must not be eliminated")
	}
	// Same shape but CLEAR+SEARCH after: the first SEARCH is dead — the
	// second lifetime re-defines every register a reader can see.
	p = NewProgram()
	p.SearchColor(1, 5, 9)
	p.ClearM(5)
	p.SearchColor(2, 5, 4)
	p.CollectNode(5)
	p.Barrier()
	o = Optimize(p, OptConfig{Level: OptBasic})
	if o.InstrsEliminated != 1 || o.Program.Instrs[0].Op != OpClearMarker {
		t.Fatalf("shadowed SEARCH not eliminated: %d gone", o.InstrsEliminated)
	}
}

func TestRenamingSplitsHazardChain(t *testing.T) {
	p := chainProgram(8)
	o := Optimize(p, OptConfig{Level: OptFull})
	if !o.Changed() {
		t.Fatal("chain workload must change at O2")
	}
	before, after := meanOverlap(p), meanOverlap(o.Program)
	if after <= before {
		t.Fatalf("mean overlap %0.2f -> %0.2f: not improved", before, after)
	}
	// As written, every body instruction conflicts with its neighbor
	// (scratch reuse), so nothing overlaps and every PROPAGATE flushes
	// its own window. Renamed, only the true per-chain dependencies
	// remain and all 8 propagates share one overlap window.
	if before != 0 {
		t.Fatalf("naive chain should have zero overlap, got %0.2f", before)
	}
	if w := programWindows(p); w != 8 {
		t.Fatalf("naive chain should flush 8 windows, got %d", w)
	}
	if w := programWindows(o.Program); w != 1 {
		t.Fatalf("optimized chain should flush 1 window, got %d", w)
	}
}

// programWindows counts the PROPAGATE overlap windows a whole program
// would flush on the PU.
func programWindows(p *Program) int {
	batches := propBatches(p.Instrs)
	seen := make(map[int]bool)
	for _, b := range batches {
		if b >= 0 {
			seen[b] = true
		}
	}
	return len(seen)
}

func TestRenamingPacksDisjointRegions(t *testing.T) {
	// Two sub-queries separated by a serializing collect, each on its
	// own scratch plane: region-disjoint lifetimes pack onto one plane
	// and demand shrinks.
	spec := rules.Path(1)
	p := NewProgram()
	p.ClearM(10)
	p.SearchColor(1, 10, 1)
	p.Propagate(10, 0, spec, semnet.FuncNop)
	p.CollectNode(0)
	p.ClearM(11)
	p.SearchColor(2, 11, 1)
	p.Propagate(11, 1, spec, semnet.FuncNop)
	p.CollectNode(1)
	p.Barrier()
	o := Optimize(p, OptConfig{Level: OptFull})
	if !o.Changed() || o.PlanesFreed < 1 {
		t.Fatalf("expected demand reduction, PlanesFreed=%d changed=%v",
			o.PlanesFreed, o.Changed())
	}
	oc, ob := PlaneDemand(o.Program)
	c, b := PlaneDemand(p)
	if oc+ob >= c+b {
		t.Fatalf("demand %d+%d -> %d+%d", c, b, oc, ob)
	}
}

func TestRenamingPreserveModePinsFinalState(t *testing.T) {
	// With observable markers, the scratch plane's final lifetime stays
	// home and no untouched plane may host a guest. The chain program's
	// scratch webs are all CLEAR-started, so earlier lifetimes may
	// still relocate among used planes — but demand must not grow.
	p := chainProgram(4)
	o := Optimize(p, OptConfig{Level: OptFull, PreserveMarkers: true})
	oc, ob := PlaneDemand(o.Program)
	c, b := PlaneDemand(p)
	if oc > c || ob > b {
		t.Fatalf("preserve mode grew demand: %d+%d -> %d+%d", c, b, oc, ob)
	}
	pm := p.Markers()
	o.Program.Markers().ForEach(func(m semnet.MarkerID) {
		if !pm.Contains(m) {
			t.Fatalf("preserve mode touched unused plane %d", m)
		}
	})
}

func TestSchedulingMergesWindows(t *testing.T) {
	// Two true-dependence chains interleaved so that, as written, the
	// PU flushes three windows — {P0}, {P1,P2}, {P3} — even though the
	// chains are mutually independent: P1 reads P0's output while P2 is
	// still upstream. Renaming cannot help (every dependence is true);
	// only the level schedule {P0,P2},{P1,P3} merges a window, which is
	// exactly when the scheduler is allowed to reorder.
	spec := rules.Path(1)
	p := NewProgram()
	p.SearchColor(1, 10, 1)
	p.Propagate(10, 0, spec, semnet.FuncNop)
	p.Propagate(0, 1, spec, semnet.FuncNop)
	p.Propagate(10, 2, spec, semnet.FuncNop)
	p.Propagate(2, 3, spec, semnet.FuncNop)
	p.CollectNode(1)
	p.CollectNode(3)
	p.Barrier()
	if w := programWindows(p); w != 3 {
		t.Fatalf("source order should flush 3 windows, got %d", w)
	}
	o := Optimize(p, OptConfig{Level: OptFull})
	if !o.Changed() {
		t.Fatal("interleaved chains must be rescheduled")
	}
	if w := programWindows(o.Program); w != 2 {
		t.Fatalf("schedule should merge to 2 windows, got %d", w)
	}
	if before, after := meanOverlap(p), meanOverlap(o.Program); after <= before {
		t.Fatalf("mean overlap %0.2f -> %0.2f", before, after)
	}

	// An interleaving whose source order already forms one window must
	// NOT be reordered: there is no barrier to merge, and shifting
	// issue slots around is pure timing noise.
	q := NewProgram()
	q.SearchColor(1, 10, 1)
	q.Propagate(10, 0, spec, semnet.FuncNop)
	q.SearchColor(2, 11, 1)
	q.Propagate(11, 1, spec, semnet.FuncNop)
	q.CollectNode(0)
	q.CollectNode(1)
	q.Barrier()
	if w := programWindows(q); w != 1 {
		t.Fatalf("benign interleaving should already be 1 window, got %d", w)
	}
	if oq := Optimize(q, OptConfig{Level: OptFull}); oq.Changed() {
		t.Fatal("nothing to merge: program must pass through unchanged")
	}
}

func TestOptimizeKeepsSerializingOrder(t *testing.T) {
	p := chainProgram(6)
	o := Optimize(p, OptConfig{Level: OptFull})
	var want, got []Opcode
	for _, in := range p.Instrs {
		if in.Serializing() {
			want = append(want, in.Op)
		}
	}
	for _, in := range o.Program.Instrs {
		if in.Serializing() {
			got = append(got, in.Op)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("serializing count %d -> %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("serializing order changed at %d: %v -> %v", i, want, got)
		}
	}
}

func TestOrigIndexMapping(t *testing.T) {
	p := chainProgram(5)
	for _, cfg := range []OptConfig{
		{Level: OptBasic}, {Level: OptFull}, {Level: OptFull, PreserveMarkers: true},
	} {
		o := Optimize(p, cfg)
		if len(o.OrigIndex) != o.Program.Len() {
			t.Fatalf("cfg %+v: OrigIndex len %d != %d", cfg, len(o.OrigIndex), o.Program.Len())
		}
		seen := make(map[int]bool)
		for i, orig := range o.OrigIndex {
			if orig < 0 || orig >= p.Len() {
				t.Fatalf("cfg %+v: OrigIndex[%d]=%d out of range", cfg, i, orig)
			}
			if seen[orig] {
				t.Fatalf("cfg %+v: original instr %d mapped twice", cfg, orig)
			}
			seen[orig] = true
			if o.Program.Instrs[i].Op != p.Instrs[orig].Op {
				t.Fatalf("cfg %+v: opcode mismatch at %d", cfg, i)
			}
		}
	}
}

func TestRuleTableDedup(t *testing.T) {
	// Two identical rules added as separate custom entries: the
	// optimized table collapses them to one token.
	r1, err := rules.Compile(rules.Path(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rules.Compile(rules.Path(1))
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram()
	p.SearchColor(1, 0, 1)
	p.PropagateCustom(0, 1, r1, semnet.FuncNop)
	p.PropagateCustom(0, 2, r2, semnet.FuncNop)
	p.CollectNode(1)
	p.CollectNode(2)
	p.Barrier()
	if p.Rules.Len() < 2 {
		t.Skip("builder already de-duplicated; nothing to test")
	}
	o := Optimize(p, OptConfig{Level: OptBasic})
	if !o.Changed() {
		t.Fatal("rule dedup must mark the program changed")
	}
	if o.Program.Rules.Len() != 1 {
		t.Fatalf("optimized table has %d rules, want 1", o.Program.Rules.Len())
	}
	if o.Program.Instrs[1].Rule != o.Program.Instrs[2].Rule {
		t.Fatal("identical rules must share a token")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	progs := map[string]*Program{
		"chain4": chainProgram(4),
		"chain8": chainProgram(8),
	}
	spec := rules.Path(1)
	mixed := NewProgram()
	mixed.Set(3, 5)
	mixed.Func(3, semnet.FuncAdd, 1)
	mixed.SearchColor(1, 10, 1)
	mixed.Propagate(10, 0, spec, semnet.FuncNop)
	mixed.And(0, 3, 4, semnet.FuncNop)
	mixed.CollectNode(4)
	mixed.ClearM(10)
	mixed.SearchColor(2, 10, 1)
	mixed.Propagate(10, 5, spec, semnet.FuncAdd)
	mixed.CollectNode(5)
	mixed.Barrier()
	progs["mixed"] = mixed
	for name, p := range progs {
		for _, cfg := range []OptConfig{
			{Level: OptBasic}, {Level: OptFull}, {Level: OptFull, PreserveMarkers: true},
		} {
			once := Optimize(p, cfg)
			twice := Optimize(once.Program, cfg)
			if twice.Changed() {
				t.Fatalf("%s %+v: second optimization changed the program again\nonce:  %v\ntwice: %v",
					name, cfg, once.Program.Instrs, twice.Program.Instrs)
			}
		}
	}
}

func TestOptimizedProgramsValidate(t *testing.T) {
	for name, p := range map[string]*Program{
		"chain8": chainProgram(8),
		"chain1": chainProgram(1),
	} {
		for _, lvl := range []int{OptBasic, OptFull} {
			o := Optimize(p, OptConfig{Level: lvl})
			if err := o.Program.Validate(); err != nil {
				t.Fatalf("%s O%d: optimized program invalid: %v", name, lvl, err)
			}
		}
	}
}
