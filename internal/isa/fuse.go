package isa

import (
	"fmt"

	"snap1/internal/semnet"
)

// Query fusion: coalescing N mutually independent read-only programs
// into one fused program executed in a single machine run. Each
// sub-program's marker IDs are renamed onto disjoint rows of the
// 128-row status slab (complex markers onto complex rows, binary onto
// binary rows), the renamed instruction streams are interleaved so that
// corresponding propagation phases share one PU overlap window, and
// every retrieval instruction is tagged with its originating query so
// the engine can demultiplex the fused result. Disjointness is the
// MarkerDisjoint condition; each sub-program keeps its own COMM-END —
// fused programs never share one global barrier (Independent still
// treats COMM-END as serializing, so barrier semantics inside each
// sub-program are unchanged).

// ErrNotFusable wraps every fusion rejection; unwrap with
// errors.As(*FuseError) for the machine-readable reason.
var ErrNotFusable = fmt.Errorf("isa: not fusable")

// FuseError reports why a program or program set cannot be fused.
type FuseError struct {
	Reason string // "mutating" | "fn" | "planes" | "rules" | "count"
	Detail string
}

func (e *FuseError) Error() string {
	return fmt.Sprintf("%v: %s (%s)", ErrNotFusable, e.Detail, e.Reason)
}

func (e *FuseError) Unwrap() error { return ErrNotFusable }

// Fusion reject reasons, exported for counter labeling.
const (
	FuseReasonMutating = "mutating" // topology-mutating instruction
	FuseReasonFn       = "fn"       // origin-unsafe propagate function
	FuseReasonPlanes   = "planes"   // 128-row status slab exhausted
	FuseReasonRules    = "rules"    // merged rule table overflow
	FuseReasonCount    = "count"    // fewer than two programs
)

// originSafeFn reports whether a propagate with function fn writing
// complex destination marker m2 keeps origin attribution unambiguous
// under fused (reordered) scheduling. Final marker bits and values are
// schedule-independent for every FuncCode (the merge functions are
// commutative, associative and idempotent), but the origin register
// records the source whose task first delivered the winning value — and
// for non-strictly-monotone apply functions (MIN, MAX, MUL) one source
// can deliver the winning value under two different origins depending
// on arrival order, which fused scheduling perturbs. Strict functions
// (NOP, ADD, DEC) leave at most a same-value tie between distinct
// sources, which the machine detects at run time and reports for a
// per-query fallback. Binary destinations carry no origin register, so
// any function is safe there.
func originSafeFn(fn semnet.FuncCode, m2 semnet.MarkerID) bool {
	if !m2.IsComplex() {
		return true
	}
	switch fn {
	case semnet.FuncNop, semnet.FuncAdd, semnet.FuncDec:
		return true
	}
	return false
}

// Fusable reports whether p may participate in a fused run, and the
// reject reason when it may not. Plane exhaustion is a property of the
// whole fused set, not one program, and is reported by Fuse.
func Fusable(p *Program) (bool, string) {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Mutating() {
			return false, FuseReasonMutating
		}
		if in.Op == OpPropagate && !originSafeFn(in.Fn, in.M2) {
			return false, FuseReasonFn
		}
	}
	return true, ""
}

// PlaneDemand reports how many complex and binary marker rows p needs
// when fused — the size of its used-marker set, split by class.
func PlaneDemand(p *Program) (complex, binary int) {
	p.Markers().ForEach(func(m semnet.MarkerID) {
		if m.IsComplex() {
			complex++
		} else {
			binary++
		}
	})
	return complex, binary
}

// FusedOrigin locates a fused instruction in its source program.
type FusedOrigin struct {
	Query int // index into the fused program set
	Index int // instruction index within that program
}

// PlaneGroup is a set of PROPAGATE instructions in the fused program —
// one per member query, position-aligned clones sharing rule FSM and
// function — that the lockstep engine may execute as plane-parallel
// wide tasks: one task stream sweeping the topology once with a value
// lane per member, the 128-bit status word processing all member planes
// in one access. Membership here is advisory; the machine verifies at
// flush time that the members share one overlap window and bit-equal
// source rows before going wide, and falls back to scalar execution of
// the same fused program otherwise.
type PlaneGroup struct {
	Instrs []int // fused instruction indices, ascending, one per query
}

// Fused is a fusion product: the fused program plus the metadata needed
// to demultiplex its results and to run its clone groups plane-parallel.
type Fused struct {
	Program *Program
	Queries int
	Groups  []PlaneGroup

	origin  []FusedOrigin
	renames [][]semnet.MarkerID // [query][old marker] -> fused marker
}

// InstrOf locates fused instruction i in its source program.
func (f *Fused) InstrOf(i int) FusedOrigin { return f.origin[i] }

// MarkerOf translates query q's marker m to its fused plane. Markers
// the query never touches map to themselves.
func (f *Fused) MarkerOf(q int, m semnet.MarkerID) semnet.MarkerID {
	if q < 0 || q >= len(f.renames) || !m.Valid() {
		return m
	}
	return f.renames[q][m]
}

// groupKey aligns clone PROPAGATEs across queries: the n'th propagate
// of each query joins one group when rule FSM, function and marker
// classes agree.
type groupKey struct {
	ordinal int
	ruleFP  uint64
	fn      semnet.FuncCode
	m1c     bool
	m2c     bool
}

// Fuse renames each program's markers onto disjoint planes, interleaves
// the renamed streams phase-aligned, merges the rule tables, and
// returns the fused program with demux metadata and plane groups. It
// fails with a *FuseError when any program is unfusable, the combined
// plane demand exceeds the 128-row slab, or the merged rule table
// overflows.
func Fuse(progs []*Program) (*Fused, error) {
	if len(progs) < 2 {
		return nil, &FuseError{Reason: FuseReasonCount, Detail: fmt.Sprintf("%d program(s)", len(progs))}
	}
	for q, p := range progs {
		if ok, reason := Fusable(p); !ok {
			return nil, &FuseError{Reason: reason, Detail: fmt.Sprintf("query %d", q)}
		}
	}

	// Plane allocation: walk each program's used markers in ascending
	// order, assigning the next free row of the matching class.
	f := &Fused{
		Program: NewProgram(),
		Queries: len(progs),
		renames: make([][]semnet.MarkerID, len(progs)),
	}
	nextComplex, nextBinary := 0, semnet.NumComplexMarkers
	for q, p := range progs {
		rename := make([]semnet.MarkerID, semnet.NumMarkers)
		for m := range rename {
			rename[m] = semnet.MarkerID(m) // untouched planes keep their ID
		}
		var full bool
		p.Markers().ForEach(func(m semnet.MarkerID) {
			if m.IsComplex() {
				if nextComplex >= semnet.NumComplexMarkers {
					full = true
					return
				}
				rename[m] = semnet.MarkerID(nextComplex)
				nextComplex++
			} else {
				if nextBinary >= semnet.NumMarkers {
					full = true
					return
				}
				rename[m] = semnet.MarkerID(nextBinary)
				nextBinary++
			}
		})
		if full {
			return nil, &FuseError{Reason: FuseReasonPlanes, Detail: fmt.Sprintf("status slab exhausted at query %d", q)}
		}
		f.renames[q] = rename
	}

	// Phase-aligned interleave. Each program is a sequence of segments:
	// a (possibly empty) run of non-serializing instructions followed by
	// one serializing instruction. Round r emits every program's r'th
	// run back to back — putting all corresponding PROPAGATEs into one
	// shared overlap window, since the renamed planes are disjoint —
	// then every program's r'th serializer, so the first barrier of the
	// round drains the shared phase and each sub-program still executes
	// its own COMM-END and retrievals.
	cursors := make([]int, len(progs))
	emit := func(q, idx int) error {
		p := progs[q]
		in := p.Instrs[idx] // copy before renaming
		rename := f.renames[q]
		switch in.Op {
		case OpPropagate:
			in.M1, in.M2 = rename[in.M1], rename[in.M2]
			tok, err := f.Program.Rules.AddCustom(p.Rules.Rule(in.Rule))
			if err != nil {
				return &FuseError{Reason: FuseReasonRules, Detail: err.Error()}
			}
			in.Rule = tok
		case OpAndMarker, OpOrMarker:
			in.M1, in.M2, in.M3 = rename[in.M1], rename[in.M2], rename[in.M3]
		case OpNotMarker:
			in.M1, in.M2 = rename[in.M1], rename[in.M2]
		case OpCommEnd:
			// no marker operands
		default:
			in.M1 = rename[in.M1]
		}
		f.Program.Instrs = append(f.Program.Instrs, in)
		f.origin = append(f.origin, FusedOrigin{Query: q, Index: idx})
		return nil
	}
	for {
		done := true
		// Non-serializing runs of this round.
		for q, p := range progs {
			for cursors[q] < len(p.Instrs) && !p.Instrs[cursors[q]].Serializing() {
				if err := emit(q, cursors[q]); err != nil {
					return nil, err
				}
				cursors[q]++
			}
			if cursors[q] < len(p.Instrs) {
				done = false
			}
		}
		if done {
			break
		}
		// One serializing instruction per program.
		for q, p := range progs {
			if cursors[q] < len(p.Instrs) && p.Instrs[cursors[q]].Serializing() {
				if err := emit(q, cursors[q]); err != nil {
					return nil, err
				}
				cursors[q]++
			}
		}
	}

	f.Groups = planeGroups(progs, f)
	return f, nil
}

// planeGroups aligns clone PROPAGATEs across the fused queries: the
// n'th propagate of each query, grouped by (rule fingerprint, function,
// marker classes), forms a wide-execution candidate when at least two
// queries contribute.
func planeGroups(progs []*Program, f *Fused) []PlaneGroup {
	ordinals := make([]int, len(progs)) // propagates seen per query
	byKey := make(map[groupKey][]int)
	var order []groupKey // first-seen order, for deterministic output
	for i := range f.Program.Instrs {
		in := &f.Program.Instrs[i]
		if in.Op != OpPropagate {
			continue
		}
		o := f.origin[i]
		key := groupKey{
			ordinal: ordinals[o.Query],
			ruleFP:  f.Program.Rules.Rule(in.Rule).Fingerprint(),
			fn:      in.Fn,
			m1c:     in.M1.IsComplex(),
			m2c:     in.M2.IsComplex(),
		}
		ordinals[o.Query]++
		if _, seen := byKey[key]; !seen {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], i)
	}
	var groups []PlaneGroup
	for _, key := range order {
		if instrs := byKey[key]; len(instrs) >= 2 {
			groups = append(groups, PlaneGroup{Instrs: instrs})
		}
	}
	return groups
}
