package isa

import (
	"errors"
	"testing"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func chainQuery(rel semnet.RelType, color semnet.Color, v float32) *Program {
	p := NewProgram()
	p.SearchColor(color, 0, v)
	p.Propagate(0, 1, rules.Path(rel), semnet.FuncAdd)
	p.Barrier()
	p.CollectNode(1)
	return p
}

func TestFuseDisjointPlanes(t *testing.T) {
	progs := []*Program{
		chainQuery(1, 10, 1),
		chainQuery(1, 11, 2),
		chainQuery(2, 12, 3),
	}
	f, err := Fuse(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Program.Validate(); err != nil {
		t.Fatalf("fused program invalid: %v", err)
	}
	if got, want := len(f.Program.Instrs), 4*len(progs); got != want {
		t.Fatalf("fused length = %d, want %d", got, want)
	}

	// Per-query marker footprints must be pairwise disjoint, and every
	// pair of instructions from different queries marker-disjoint.
	var perQ [3]MarkerSet
	for i := range f.Program.Instrs {
		in := &f.Program.Instrs[i]
		q := f.InstrOf(i).Query
		perQ[q] = perQ[q].Union(in.Reads()).Union(in.Writes())
	}
	for a := 0; a < len(progs); a++ {
		for b := a + 1; b < len(progs); b++ {
			if perQ[a].Intersects(perQ[b]) {
				t.Fatalf("queries %d and %d share planes", a, b)
			}
		}
	}
	for i := range f.Program.Instrs {
		for j := i + 1; j < len(f.Program.Instrs); j++ {
			if f.InstrOf(i).Query == f.InstrOf(j).Query {
				continue
			}
			if !MarkerDisjoint(&f.Program.Instrs[i], &f.Program.Instrs[j]) {
				t.Fatalf("instrs %d and %d from different queries not disjoint", i, j)
			}
		}
	}

	// Demux metadata round-trips: each origin (query, index) appears
	// exactly once, and the renamed instruction matches the source
	// instruction's shape.
	seen := map[FusedOrigin]bool{}
	for i := range f.Program.Instrs {
		o := f.InstrOf(i)
		if seen[o] {
			t.Fatalf("origin %+v duplicated", o)
		}
		seen[o] = true
		src := progs[o.Query].Instrs[o.Index]
		got := f.Program.Instrs[i]
		if got.Op != src.Op || got.Fn != src.Fn {
			t.Fatalf("instr %d: op/fn mismatch with source %+v", i, o)
		}
		if got.Op != OpCommEnd && got.M1 != f.MarkerOf(o.Query, src.M1) {
			t.Fatalf("instr %d: M1 %d != rename(%d)", i, got.M1, src.M1)
		}
	}
	if len(seen) != 4*len(progs) {
		t.Fatalf("%d origins, want %d", len(seen), 4*len(progs))
	}

	// Queries 0 and 1 propagate over rel=1, query 2 over rel=2; the
	// relation is part of the rule FSM, so only the rel=1 pair forms a
	// plane group.
	if len(f.Groups) != 1 || len(f.Groups[0].Instrs) != 2 {
		t.Fatalf("groups = %+v, want one group of 2", f.Groups)
	}
	for _, gi := range f.Groups[0].Instrs {
		if q := f.InstrOf(gi).Query; q != 0 && q != 1 {
			t.Fatalf("group member from query %d, want 0 or 1", q)
		}
	}
}

// TestFusePerQueryCommEnd pins the COMM-END regression: fused programs
// must not share one global barrier — each sub-program keeps its own
// COMM-END, and COMM-END stays serializing (never Independent) while
// being marker-disjoint with everything.
func TestFusePerQueryCommEnd(t *testing.T) {
	progs := []*Program{
		chainQuery(1, 10, 1),
		chainQuery(1, 11, 2),
	}
	f, err := Fuse(progs)
	if err != nil {
		t.Fatal(err)
	}
	ends := map[int]int{} // query -> COMM-END count
	total := 0
	for i := range f.Program.Instrs {
		if f.Program.Instrs[i].Op == OpCommEnd {
			ends[f.InstrOf(i).Query]++
			total++
		}
	}
	if total != 2 || ends[0] != 1 || ends[1] != 1 {
		t.Fatalf("COMM-END per query = %v (total %d), want one each", ends, total)
	}

	ce := Instruction{Op: OpCommEnd}
	pr := prop(0, 1)
	if Independent(&ce, &pr) {
		t.Fatal("COMM-END must serialize (not Independent)")
	}
	if !MarkerDisjoint(&ce, &pr) {
		t.Fatal("COMM-END touches no markers; must be MarkerDisjoint with everything")
	}
	if !MarkerDisjoint(&ce, &ce) {
		t.Fatal("two COMM-ENDs must be MarkerDisjoint")
	}
}

func TestFuseRejects(t *testing.T) {
	good := func() *Program { return chainQuery(1, 10, 1) }

	t.Run("count", func(t *testing.T) {
		_, err := Fuse([]*Program{good()})
		wantReason(t, err, FuseReasonCount)
	})

	t.Run("mutating", func(t *testing.T) {
		bad := good()
		bad.Create(1, 2, 1.0, 3)
		_, err := Fuse([]*Program{good(), bad})
		wantReason(t, err, FuseReasonMutating)
		if ok, reason := Fusable(bad); ok || reason != FuseReasonMutating {
			t.Fatalf("Fusable = %v,%q", ok, reason)
		}
	})

	t.Run("fn", func(t *testing.T) {
		bad := NewProgram()
		bad.SearchColor(10, 0, 1)
		// MIN onto a complex plane: origin attribution is schedule-
		// dependent, so fusion must reject it.
		bad.Propagate(0, 1, rules.Path(1), semnet.FuncMin)
		bad.Barrier()
		bad.CollectNode(1)
		_, err := Fuse([]*Program{good(), bad})
		wantReason(t, err, FuseReasonFn)

		// The same function onto a binary plane has no origin register
		// and stays fusable.
		okP := NewProgram()
		okP.SearchColor(10, 0, 1)
		okP.Propagate(0, semnet.Binary(0), rules.Path(1), semnet.FuncMin)
		okP.Barrier()
		okP.CollectNode(semnet.Binary(0))
		if _, err := Fuse([]*Program{good(), okP}); err != nil {
			t.Fatalf("binary-destination MIN should fuse: %v", err)
		}
	})

	t.Run("planes", func(t *testing.T) {
		// Each chain query needs 2 complex rows; 33 of them exceed 64.
		progs := make([]*Program, 33)
		for i := range progs {
			progs[i] = good()
		}
		_, err := Fuse(progs)
		wantReason(t, err, FuseReasonPlanes)
		// 32 fit exactly.
		if _, err := Fuse(progs[:32]); err != nil {
			t.Fatalf("32x2 complex rows should fit: %v", err)
		}
	})
}

func wantReason(t *testing.T, err error, reason string) {
	t.Helper()
	if err == nil {
		t.Fatal("want error, got nil")
	}
	if !errors.Is(err, ErrNotFusable) {
		t.Fatalf("error %v does not wrap ErrNotFusable", err)
	}
	var fe *FuseError
	if !errors.As(err, &fe) || fe.Reason != reason {
		t.Fatalf("error %v, want reason %q", err, reason)
	}
}

func TestPlaneDemand(t *testing.T) {
	p := NewProgram()
	p.SearchColor(10, 5, 1)
	p.Propagate(5, semnet.Binary(3), rules.Path(1), semnet.FuncNop)
	p.Barrier()
	p.CollectNode(semnet.Binary(3))
	c, bn := PlaneDemand(p)
	if c != 1 || bn != 1 {
		t.Fatalf("PlaneDemand = %d complex, %d binary; want 1,1", c, bn)
	}
}

// TestFuseClassPreserved: renaming keeps marker class, so binary planes
// land on binary rows and complex on complex.
func TestFuseClassPreserved(t *testing.T) {
	mk := func(c semnet.Color) *Program {
		p := NewProgram()
		p.SearchColor(c, 7, 1)
		p.Propagate(7, semnet.Binary(9), rules.Path(1), semnet.FuncNop)
		p.Barrier()
		p.CollectNode(semnet.Binary(9))
		return p
	}
	f, err := Fuse([]*Program{mk(1), mk(2)})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if m := f.MarkerOf(q, 7); !m.IsComplex() {
			t.Fatalf("query %d complex marker renamed to binary %d", q, m)
		}
		if m := f.MarkerOf(q, semnet.Binary(9)); m.IsComplex() {
			t.Fatalf("query %d binary marker renamed to complex %d", q, m)
		}
	}
	if f.MarkerOf(0, 7) == f.MarkerOf(1, 7) {
		t.Fatal("complex planes collide")
	}
	if f.MarkerOf(0, semnet.Binary(9)) == f.MarkerOf(1, semnet.Binary(9)) {
		t.Fatal("binary planes collide")
	}
}
