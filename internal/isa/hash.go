package isa

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Hash returns a 64-bit FNV-1a digest of the program: every instruction's
// operands in stream order, followed by the fingerprint of each compiled
// rule the stream references. Two programs with equal hashes execute
// identically on the same knowledge base, so the digest is a safe cache
// key for compiled/validated programs in a query-serving engine.
//
// The digest covers rule *behavior* (the compiled FSM), not rule table
// tokens alone: the same token number bound to a different rule hashes
// differently.
func (p *Program) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		w32(uint32(in.Op) | uint32(in.Cond)<<8 | uint32(in.Fn)<<16 | uint32(in.Rule)<<24)
		w32(uint32(in.Node))
		w32(uint32(in.EndNode))
		w32(uint32(in.Rel) | uint32(in.RevRel)<<16)
		w32(uint32(in.M1) | uint32(in.M2)<<8 | uint32(in.M3)<<16 | boolBit(in.HasRev)<<24)
		w32(math.Float32bits(in.Weight))
		w32(math.Float32bits(in.Value))
		w32(uint32(in.Color))
		if in.Op == OpPropagate && p.Rules != nil {
			if rule := p.Rules.Rule(in.Rule); rule != nil {
				binary.LittleEndian.PutUint64(buf[:], rule.Fingerprint())
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
