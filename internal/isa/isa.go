// Package isa defines the SNAP-1 high-level instruction set for
// marker-propagation (the paper's Table II): twenty instructions across
// six groups — node maintenance, search, propagation, marker node
// maintenance, boolean, set/clear, and retrieval — plus the COMM-END
// barrier request that the processing units synchronize on.
//
// The programmer deals only with logical structures (markers, relations,
// nodes); physical allocation across clusters stays transparent, exactly
// as in the prototype.
package isa

import (
	"fmt"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Opcode identifies a SNAP instruction.
type Opcode uint8

// The twenty SNAP-1 opcodes (Table II) plus COMM-END.
const (
	// Node maintenance.
	OpCreate   Opcode = iota // source-node, relation, weight, end-node
	OpDelete                 // source-node, relation, end-node
	OpSetColor               // node, color

	// Search.
	OpSearchNode     // node, marker, value
	OpSearchRelation // relation, marker, value
	OpSearchColor    // color, marker, value

	// Propagation.
	OpPropagate // marker-1, marker-2, rule-type(r1,r2), function

	// Marker node maintenance.
	OpMarkerCreate   // marker, forward-relation, end-node, reverse-relation
	OpMarkerDelete   // marker, forward-relation, end-node, reverse-relation
	OpMarkerSetColor // marker, color

	// Boolean.
	OpAndMarker // marker-1, marker-2, marker-3, function
	OpOrMarker  // marker-1, marker-2, marker-3, function
	OpNotMarker // marker-1, marker-2, value, condition

	// Set/clear.
	OpSetMarker   // marker, value
	OpClearMarker // marker
	OpFuncMarker  // marker, function, operand

	// Retrieval.
	OpCollectNode     // marker
	OpCollectRelation // marker, relation
	OpCollectColor    // marker

	// Barrier request: block instruction issue until all propagation in
	// flight has terminated (tiered synchronization).
	OpCommEnd

	NumOpcodes = int(OpCommEnd) + 1
)

var opNames = [NumOpcodes]string{
	"CREATE", "DELETE", "SET-COLOR",
	"SEARCH-NODE", "SEARCH-RELATION", "SEARCH-COLOR",
	"PROPAGATE",
	"MARKER-CREATE", "MARKER-DELETE", "MARKER-SET-COLOR",
	"AND-MARKER", "OR-MARKER", "NOT-MARKER",
	"SET-MARKER", "CLEAR-MARKER", "FUNC-MARKER",
	"COLLECT-NODE", "COLLECT-RELATION", "COLLECT-COLOR",
	"COMM-END",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Group classifies opcodes into the categories the paper's instruction
// profiles (Figs. 6, 18, 19, 20) report on.
type Group uint8

// Instruction groups.
const (
	GroupNodeMaint Group = iota
	GroupSearch
	GroupPropagate
	GroupMarkerMaint
	GroupBoolean
	GroupSetClear
	GroupCollect
	GroupSync
	NumGroups = int(GroupSync) + 1
)

func (g Group) String() string {
	switch g {
	case GroupNodeMaint:
		return "node-maint"
	case GroupSearch:
		return "search"
	case GroupPropagate:
		return "propagate"
	case GroupMarkerMaint:
		return "marker-maint"
	case GroupBoolean:
		return "boolean"
	case GroupSetClear:
		return "set/clear"
	case GroupCollect:
		return "collect"
	case GroupSync:
		return "sync"
	default:
		return fmt.Sprintf("group(%d)", uint8(g))
	}
}

// GroupOf returns op's profile group.
func GroupOf(op Opcode) Group {
	switch op {
	case OpCreate, OpDelete, OpSetColor:
		return GroupNodeMaint
	case OpSearchNode, OpSearchRelation, OpSearchColor:
		return GroupSearch
	case OpPropagate:
		return GroupPropagate
	case OpMarkerCreate, OpMarkerDelete, OpMarkerSetColor:
		return GroupMarkerMaint
	case OpAndMarker, OpOrMarker, OpNotMarker:
		return GroupBoolean
	case OpSetMarker, OpClearMarker, OpFuncMarker:
		return GroupSetClear
	case OpCollectNode, OpCollectRelation, OpCollectColor:
		return GroupCollect
	default:
		return GroupSync
	}
}

// Condition is the comparison carried by NOT-MARKER: marker-2 is set where
// marker-1 is clear or where marker-1's value fails the condition against
// the instruction's Value operand.
type Condition uint8

// Conditions.
const (
	CondNone Condition = iota // ignore values: pure complement
	CondLT                    // marker value <  operand
	CondLE                    // marker value <= operand
	CondGT                    // marker value >  operand
	CondGE                    // marker value >= operand
	CondEQ                    // marker value == operand
	CondNE                    // marker value != operand
	numConds
)

// Valid reports whether c is a defined condition.
func (c Condition) Valid() bool { return c < numConds }

// Eval applies the condition to a marker value and the operand.
func (c Condition) Eval(v, operand float32) bool {
	switch c {
	case CondLT:
		return v < operand
	case CondLE:
		return v <= operand
	case CondGT:
		return v > operand
	case CondGE:
		return v >= operand
	case CondEQ:
		return v == operand
	case CondNE:
		return v != operand
	default:
		return true
	}
}

func (c Condition) String() string {
	switch c {
	case CondNone:
		return "none"
	case CondLT:
		return "lt"
	case CondLE:
		return "le"
	case CondGT:
		return "gt"
	case CondGE:
		return "ge"
	case CondEQ:
		return "eq"
	case CondNE:
		return "ne"
	default:
		return fmt.Sprintf("cond(%d)", uint8(c))
	}
}

// Instruction is one SNAP instruction. Fields are a union over the operand
// forms of Table II; each opcode documents which fields it consumes.
type Instruction struct {
	Op Opcode

	Node    semnet.NodeID  // CREATE/DELETE source, SET-COLOR, SEARCH-NODE
	EndNode semnet.NodeID  // CREATE/DELETE/MARKER-CREATE/MARKER-DELETE end-node
	Rel     semnet.RelType // CREATE/DELETE/SEARCH-RELATION/MARKER-*/COLLECT-RELATION
	RevRel  semnet.RelType // MARKER-CREATE/MARKER-DELETE reverse-relation
	HasRev  bool           // whether RevRel is present
	Weight  float32        // CREATE link weight
	Color   semnet.Color   // SET-COLOR/SEARCH-COLOR/MARKER-SET-COLOR

	M1, M2, M3 semnet.MarkerID // marker operands in Table II order
	Value      float32         // SEARCH value, SET-MARKER value, NOT-MARKER operand
	Fn         semnet.FuncCode // PROPAGATE/AND/OR/FUNC function
	Cond       Condition       // NOT-MARKER condition

	Rule rules.Token // PROPAGATE rule token (into the program's rule table)
}

// Validate checks operand ranges for the instruction's opcode. All
// failures wrap ErrBadProgram.
func (in *Instruction) Validate() error {
	switch in.Op {
	case OpSearchNode:
		if !in.M1.Valid() {
			return fmt.Errorf("%w: %s: invalid marker %d", ErrBadProgram, in.Op, in.M1)
		}
	case OpPropagate:
		if !in.M1.Valid() || !in.M2.Valid() {
			return fmt.Errorf("%w: %s: invalid markers %d,%d", ErrBadProgram, in.Op, in.M1, in.M2)
		}
		if !in.Fn.Valid() {
			return fmt.Errorf("%w: %s: invalid function %d", ErrBadProgram, in.Op, in.Fn)
		}
		if in.Rule == 0 {
			return fmt.Errorf("%w: %s: missing rule token", ErrBadProgram, in.Op)
		}
	case OpAndMarker, OpOrMarker:
		if !in.M1.Valid() || !in.M2.Valid() || !in.M3.Valid() {
			return fmt.Errorf("%w: %s: invalid markers", ErrBadProgram, in.Op)
		}
		if !in.Fn.Valid() {
			return fmt.Errorf("%w: %s: invalid function %d", ErrBadProgram, in.Op, in.Fn)
		}
	case OpNotMarker:
		if !in.M1.Valid() || !in.M2.Valid() {
			return fmt.Errorf("%w: %s: invalid markers", ErrBadProgram, in.Op)
		}
		if !in.Cond.Valid() {
			return fmt.Errorf("%w: %s: invalid condition %d", ErrBadProgram, in.Op, in.Cond)
		}
	case OpSetMarker, OpClearMarker, OpFuncMarker, OpCollectNode,
		OpCollectRelation, OpCollectColor, OpMarkerCreate, OpMarkerDelete,
		OpMarkerSetColor, OpSearchRelation, OpSearchColor:
		if !in.M1.Valid() {
			return fmt.Errorf("%w: %s: invalid marker %d", ErrBadProgram, in.Op, in.M1)
		}
		if in.Op == OpFuncMarker && !in.Fn.Valid() {
			return fmt.Errorf("%w: %s: invalid function %d", ErrBadProgram, in.Op, in.Fn)
		}
	case OpCreate, OpDelete, OpSetColor, OpCommEnd:
		// Node existence is checked at execution against the loaded KB.
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrBadProgram, in.Op)
	}
	return nil
}

// Mutating reports whether the instruction alters network topology (node
// or link maintenance) rather than only marker state. A query-serving
// pool refuses mutating programs: replicas share one downloaded network
// and only marker state is per-replica.
func (in *Instruction) Mutating() bool {
	switch in.Op {
	case OpCreate, OpDelete, OpSetColor,
		OpMarkerCreate, OpMarkerDelete, OpMarkerSetColor:
		return true
	}
	return false
}
