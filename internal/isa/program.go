package isa

import (
	"fmt"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Program is a straight-line stream of SNAP instructions plus the rule
// microcode table referenced by its PROPAGATE instructions. Application
// loop and branch flow runs on the controller's program control processor
// (in this reproduction: in the caller's Go code), so the broadcast stream
// itself carries no control transfer.
type Program struct {
	Instrs []Instruction
	Rules  *rules.Table
}

// NewProgram returns an empty program with a fresh rule table.
func NewProgram() *Program {
	return &Program{Rules: rules.NewTable()}
}

// Len reports the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Add appends an already-formed instruction after validating it.
func (p *Program) Add(in Instruction) error {
	if err := in.Validate(); err != nil {
		return err
	}
	p.Instrs = append(p.Instrs, in)
	return nil
}

func (p *Program) mustAdd(in Instruction) *Program {
	if err := p.Add(in); err != nil {
		panic(err)
	}
	return p
}

// Create emits CREATE source-node, relation, weight, end-node.
func (p *Program) Create(src semnet.NodeID, rel semnet.RelType, w float32, end semnet.NodeID) *Program {
	return p.mustAdd(Instruction{Op: OpCreate, Node: src, Rel: rel, Weight: w, EndNode: end})
}

// Delete emits DELETE source-node, relation, end-node.
func (p *Program) Delete(src semnet.NodeID, rel semnet.RelType, end semnet.NodeID) *Program {
	return p.mustAdd(Instruction{Op: OpDelete, Node: src, Rel: rel, EndNode: end})
}

// SetColor emits SET-COLOR node, color.
func (p *Program) SetColor(node semnet.NodeID, c semnet.Color) *Program {
	return p.mustAdd(Instruction{Op: OpSetColor, Node: node, Color: c})
}

// SearchNode emits SEARCH-NODE node, marker, value.
func (p *Program) SearchNode(node semnet.NodeID, m semnet.MarkerID, v float32) *Program {
	return p.mustAdd(Instruction{Op: OpSearchNode, Node: node, M1: m, Value: v})
}

// SearchRelation emits SEARCH-RELATION relation, marker, value.
func (p *Program) SearchRelation(rel semnet.RelType, m semnet.MarkerID, v float32) *Program {
	return p.mustAdd(Instruction{Op: OpSearchRelation, Rel: rel, M1: m, Value: v})
}

// SearchColor emits SEARCH-COLOR color, marker, value.
func (p *Program) SearchColor(c semnet.Color, m semnet.MarkerID, v float32) *Program {
	return p.mustAdd(Instruction{Op: OpSearchColor, Color: c, M1: m, Value: v})
}

// Propagate emits PROPAGATE marker-1, marker-2, rule, function, interning
// the rule spec in the program's rule table.
func (p *Program) Propagate(m1, m2 semnet.MarkerID, spec rules.Spec, fn semnet.FuncCode) *Program {
	tok, err := p.Rules.Add(spec)
	if err != nil {
		panic(err)
	}
	return p.mustAdd(Instruction{Op: OpPropagate, M1: m1, M2: m2, Rule: tok, Fn: fn})
}

// PropagateCustom emits PROPAGATE with a custom-built rule FSM.
func (p *Program) PropagateCustom(m1, m2 semnet.MarkerID, rule *rules.Compiled, fn semnet.FuncCode) *Program {
	tok, err := p.Rules.AddCustom(rule)
	if err != nil {
		panic(err)
	}
	return p.mustAdd(Instruction{Op: OpPropagate, M1: m1, M2: m2, Rule: tok, Fn: fn})
}

// MarkerCreate emits MARKER-CREATE marker, forward-relation, end-node,
// reverse-relation. Pass hasRev=false to omit the reverse link.
func (p *Program) MarkerCreate(m semnet.MarkerID, rel semnet.RelType, end semnet.NodeID, rev semnet.RelType, hasRev bool) *Program {
	return p.mustAdd(Instruction{Op: OpMarkerCreate, M1: m, Rel: rel, EndNode: end, RevRel: rev, HasRev: hasRev})
}

// MarkerDelete emits MARKER-DELETE marker, forward-relation, end-node,
// reverse-relation.
func (p *Program) MarkerDelete(m semnet.MarkerID, rel semnet.RelType, end semnet.NodeID, rev semnet.RelType, hasRev bool) *Program {
	return p.mustAdd(Instruction{Op: OpMarkerDelete, M1: m, Rel: rel, EndNode: end, RevRel: rev, HasRev: hasRev})
}

// MarkerSetColor emits MARKER-SET-COLOR marker, color.
func (p *Program) MarkerSetColor(m semnet.MarkerID, c semnet.Color) *Program {
	return p.mustAdd(Instruction{Op: OpMarkerSetColor, M1: m, Color: c})
}

// And emits AND-MARKER marker-1, marker-2, marker-3, function.
func (p *Program) And(m1, m2, m3 semnet.MarkerID, fn semnet.FuncCode) *Program {
	return p.mustAdd(Instruction{Op: OpAndMarker, M1: m1, M2: m2, M3: m3, Fn: fn})
}

// Or emits OR-MARKER marker-1, marker-2, marker-3, function.
func (p *Program) Or(m1, m2, m3 semnet.MarkerID, fn semnet.FuncCode) *Program {
	return p.mustAdd(Instruction{Op: OpOrMarker, M1: m1, M2: m2, M3: m3, Fn: fn})
}

// Not emits NOT-MARKER marker-1, marker-2, value, condition.
func (p *Program) Not(m1, m2 semnet.MarkerID, v float32, cond Condition) *Program {
	return p.mustAdd(Instruction{Op: OpNotMarker, M1: m1, M2: m2, Value: v, Cond: cond})
}

// Set emits SET-MARKER marker, value.
func (p *Program) Set(m semnet.MarkerID, v float32) *Program {
	return p.mustAdd(Instruction{Op: OpSetMarker, M1: m, Value: v})
}

// ClearM emits CLEAR-MARKER marker.
func (p *Program) ClearM(m semnet.MarkerID) *Program {
	return p.mustAdd(Instruction{Op: OpClearMarker, M1: m})
}

// Func emits FUNC-MARKER marker, function, operand.
func (p *Program) Func(m semnet.MarkerID, fn semnet.FuncCode, operand float32) *Program {
	return p.mustAdd(Instruction{Op: OpFuncMarker, M1: m, Fn: fn, Value: operand})
}

// CollectNode emits COLLECT-NODE marker.
func (p *Program) CollectNode(m semnet.MarkerID) *Program {
	return p.mustAdd(Instruction{Op: OpCollectNode, M1: m})
}

// CollectRelation emits COLLECT-RELATION marker, relation.
func (p *Program) CollectRelation(m semnet.MarkerID, rel semnet.RelType) *Program {
	return p.mustAdd(Instruction{Op: OpCollectRelation, M1: m, Rel: rel})
}

// CollectColor emits COLLECT-COLOR marker.
func (p *Program) CollectColor(m semnet.MarkerID) *Program {
	return p.mustAdd(Instruction{Op: OpCollectColor, M1: m})
}

// Barrier emits COMM-END, forcing all in-flight propagation to terminate
// before the next instruction issues.
func (p *Program) Barrier() *Program {
	return p.mustAdd(Instruction{Op: OpCommEnd})
}

// Validate re-checks every instruction and rule token. All failures wrap
// ErrBadProgram.
func (p *Program) Validate() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		if in.Op == OpPropagate && p.Rules.Rule(in.Rule) == nil {
			return fmt.Errorf("instruction %d: %w: rule token %d not in table", i, ErrBadProgram, in.Rule)
		}
	}
	return nil
}

// Mutating reports whether any instruction alters network topology.
func (p *Program) Mutating() bool {
	for i := range p.Instrs {
		if p.Instrs[i].Mutating() {
			return true
		}
	}
	return false
}
