package isa

import "errors"

// ErrBadProgram is the sentinel wrapped by every program rejection: an
// instruction with out-of-range operands, a PROPAGATE referencing a rule
// token missing from the table, or assembly text that does not parse.
// Callers branch with errors.Is(err, isa.ErrBadProgram).
var ErrBadProgram = errors.New("isa: bad program")
