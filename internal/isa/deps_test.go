package isa

import (
	"testing"
	"testing/quick"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func prop(m1, m2 semnet.MarkerID) Instruction {
	return Instruction{Op: OpPropagate, M1: m1, M2: m2, Rule: 1, Fn: semnet.FuncNop}
}

func TestMarkerSetBasics(t *testing.T) {
	var s MarkerSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	for _, m := range []semnet.MarkerID{0, 63, 64, 127} {
		if !s.Contains(m) {
			t.Errorf("missing %d", m)
		}
	}
	if s.Contains(1) || s.Contains(200) {
		t.Error("spurious membership")
	}
	s.Remove(63)
	s.Remove(64)
	if s.Count() != 2 || s.Contains(63) || s.Contains(64) {
		t.Errorf("after Remove: count=%d", s.Count())
	}
	if !s.Contains(0) || !s.Contains(127) {
		t.Error("Remove deleted the wrong markers")
	}
}

// Out-of-range marker IDs must panic rather than be silently dropped:
// a dropped bit under-reports dependencies, which would let the overlap
// window (or the optimizer's plane renaming) reorder conflicting
// instructions without any visible failure.
func TestMarkerSetBounds(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on out-of-range marker did not panic", name)
			}
		}()
		f()
	}
	var s MarkerSet
	mustPanic("Add", func() { s.Add(semnet.NumMarkers) })
	mustPanic("Add", func() { s.Add(200) })
	mustPanic("Remove", func() { s.Remove(semnet.NumMarkers) })
	if !s.Empty() {
		t.Error("failed Add mutated the set")
	}
	// The boundary IDs themselves are fine.
	s.Add(semnet.NumMarkers - 1)
	if !s.Contains(semnet.NumMarkers - 1) {
		t.Error("highest valid marker rejected")
	}
}

func TestMarkerSetOpsQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		var sa, sb MarkerSet
		ref := make(map[semnet.MarkerID]bool)
		for _, m := range a {
			sa.Add(semnet.MarkerID(m % 128))
			ref[semnet.MarkerID(m%128)] = true
		}
		shared := false
		for _, m := range b {
			sb.Add(semnet.MarkerID(m % 128))
			if ref[semnet.MarkerID(m%128)] {
				shared = true
			}
		}
		if sa.Intersects(sb) != shared {
			return false
		}
		u := sa.Union(sb)
		for m := 0; m < 128; m++ {
			id := semnet.MarkerID(m)
			if u.Contains(id) != (sa.Contains(id) || sb.Contains(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropagateReadsWrites(t *testing.T) {
	in := prop(3, 9)
	r, w := in.Reads(), in.Writes()
	if !r.Contains(3) || !r.Contains(9) {
		t.Error("propagate reads its source and (for merge) destination")
	}
	if !w.Contains(9) || w.Contains(3) {
		t.Error("propagate writes only its destination")
	}
}

func TestIndependence(t *testing.T) {
	a := prop(1, 2)
	b := prop(3, 4)
	if !Independent(&a, &b) {
		t.Error("disjoint marker pairs must be independent")
	}
	c := prop(2, 5) // reads a's output
	if Independent(&a, &c) {
		t.Error("read-after-write dependency missed")
	}
	d := prop(6, 2) // writes a's output
	if Independent(&a, &d) {
		t.Error("write-after-write dependency missed")
	}
	e := prop(5, 1) // writes a's input
	if Independent(&a, &e) {
		t.Error("write-after-read dependency missed")
	}
	coll := Instruction{Op: OpCollectNode, M1: 60}
	if Independent(&a, &coll) {
		t.Error("retrieval serializes the window")
	}
	barrier := Instruction{Op: OpCommEnd}
	if Independent(&a, &barrier) {
		t.Error("COMM-END serializes the window")
	}
}

func TestIndependentSymmetricQuick(t *testing.T) {
	f := func(m1, m2, m3, m4 uint8) bool {
		a := prop(semnet.MarkerID(m1%128), semnet.MarkerID(m2%128))
		b := prop(semnet.MarkerID(m3%128), semnet.MarkerID(m4%128))
		return Independent(&a, &b) == Independent(&b, &a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializingSet(t *testing.T) {
	serializing := []Opcode{
		OpCollectNode, OpCollectRelation, OpCollectColor, OpCommEnd,
		OpCreate, OpDelete, OpSetColor, OpMarkerCreate, OpMarkerDelete,
	}
	for _, op := range serializing {
		in := Instruction{Op: op}
		if !in.Serializing() {
			t.Errorf("%v must serialize", op)
		}
	}
	for _, op := range []Opcode{OpPropagate, OpSetMarker, OpAndMarker, OpSearchColor} {
		in := Instruction{Op: op}
		if in.Serializing() {
			t.Errorf("%v must not serialize", op)
		}
	}
}

func TestOverlapDegrees(t *testing.T) {
	p := NewProgram()
	spec := rules.Path(1)
	p.Propagate(1, 2, spec, semnet.FuncNop)   // deg 0
	p.Propagate(3, 4, spec, semnet.FuncNop)   // deg 1 (independent of #0)
	p.Propagate(5, 6, spec, semnet.FuncNop)   // deg 2
	p.Propagate(2, 7, spec, semnet.FuncNop)   // reads #0's output: overlaps #2,#1 only
	p.Propagate(10, 11, spec, semnet.FuncNop) // independent of all four
	degs := OverlapDegrees(p)
	want := []int{0, 1, 2, 2, 4}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("degs = %v, want %v", degs, want)
		}
	}
}

// A serializing instruction contributes degree zero itself AND caps the
// lookback of everything after it: the window drains at the boundary,
// so overlap never reaches across.
func TestOverlapDegreesSerializingBoundary(t *testing.T) {
	spec := rules.Path(1)
	p := NewProgram()
	p.Propagate(1, 2, spec, semnet.FuncNop)   // deg 0
	p.Propagate(3, 4, spec, semnet.FuncNop)   // deg 1
	p.CollectNode(70)                         // serializing: deg 0
	p.Propagate(5, 6, spec, semnet.FuncNop)   // deg 0: blocked by the collect
	p.Propagate(7, 8, spec, semnet.FuncNop)   // deg 1: window restarts after it
	p.Barrier()                               // COMM-END: deg 0
	p.Propagate(10, 11, spec, semnet.FuncNop) // deg 0 again
	degs := OverlapDegrees(p)
	want := []int{0, 1, 0, 0, 1, 0, 0}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("degs = %v, want %v", degs, want)
		}
	}
}

// M3-writing ops (AND/OR) must conflict through their destination in
// every hazard direction, and NOT-MARKER through M2.
func TestIndependentM3Writes(t *testing.T) {
	and := Instruction{Op: OpAndMarker, M1: 1, M2: 2, M3: 3, Fn: semnet.FuncNop}
	raw := prop(3, 9) // reads AND's destination
	if Independent(&and, &raw) {
		t.Error("RAW through an AND destination missed")
	}
	war := prop(8, 1) // writes AND's operand
	if Independent(&and, &war) {
		t.Error("WAR against an AND operand missed")
	}
	waw := Instruction{Op: OpOrMarker, M1: 4, M2: 5, M3: 3, Fn: semnet.FuncNop}
	if Independent(&and, &waw) {
		t.Error("WAW between boolean destinations missed")
	}
	not := Instruction{Op: OpNotMarker, M1: 6, M2: 3}
	if Independent(&and, &not) {
		t.Error("NOT writes M2: WAW with the AND destination missed")
	}
	okA := Instruction{Op: OpAndMarker, M1: 4, M2: 5, M3: 6, Fn: semnet.FuncNop}
	if !Independent(&and, &okA) {
		t.Error("fully disjoint boolean ops must be independent")
	}
}
