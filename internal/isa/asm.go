package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Assembler parses the textual SNAP assembly accepted by cmd/snapsim.
//
// One instruction per line, lower- or upper-case opcode followed by
// key=value operands; '#' starts a comment. Node, relation and color
// operands are resolved by name against the knowledge base. Markers are
// written c0..c63 (complex), b0..b63 (binary), or m<k> as an alias for
// c<k>. Example:
//
//	search-node node=we marker=c1 value=0
//	propagate m1=c1 m2=c2 rule=spread(is-a,last) fn=add
//	collect-node marker=c2
type Assembler struct {
	kb *semnet.KB
}

// NewAssembler returns an assembler resolving names against kb.
func NewAssembler(kb *semnet.KB) *Assembler { return &Assembler{kb: kb} }

// Assemble parses a full program from r.
func (a *Assembler) Assemble(r io.Reader) (*Program, error) {
	p := NewProgram()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.assembleLine(p, line); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadProgram, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := 0; op < NumOpcodes; op++ {
		m[strings.ToLower(Opcode(op).String())] = Opcode(op)
	}
	m["collect-marker"] = OpCollectNode // Table II name for COLLECT-NODE
	return m
}()

func (a *Assembler) assembleLine(p *Program, line string) error {
	fields := strings.Fields(line)
	op, ok := opByName[strings.ToLower(fields[0])]
	if !ok {
		return fmt.Errorf("unknown opcode %q", fields[0])
	}
	in := Instruction{Op: op}
	var ruleSpec *rules.Spec
	for _, f := range fields[1:] {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return fmt.Errorf("operand %q is not key=value", f)
		}
		if err := a.setOperand(&in, &ruleSpec, key, val); err != nil {
			return err
		}
	}
	if op == OpPropagate {
		if ruleSpec == nil {
			return fmt.Errorf("propagate requires rule=")
		}
		tok, err := p.Rules.Add(*ruleSpec)
		if err != nil {
			return err
		}
		in.Rule = tok
	}
	return p.Add(in)
}

func (a *Assembler) setOperand(in *Instruction, ruleSpec **rules.Spec, key, val string) error {
	switch strings.ToLower(key) {
	case "node", "source-node", "src":
		id, err := a.node(val)
		if err != nil {
			return err
		}
		in.Node = id
	case "end-node", "end", "dst":
		id, err := a.node(val)
		if err != nil {
			return err
		}
		in.EndNode = id
	case "relation", "rel", "forward-relation":
		in.Rel = a.kb.Relation(val)
	case "reverse-relation", "rev":
		in.RevRel = a.kb.Relation(val)
		in.HasRev = true
	case "color":
		in.Color = a.kb.ColorFor(val)
	case "marker", "m1", "marker-1":
		m, err := parseMarker(val)
		if err != nil {
			return err
		}
		in.M1 = m
	case "m2", "marker-2":
		m, err := parseMarker(val)
		if err != nil {
			return err
		}
		in.M2 = m
	case "m3", "marker-3":
		m, err := parseMarker(val)
		if err != nil {
			return err
		}
		in.M3 = m
	case "value", "operand":
		v, err := strconv.ParseFloat(val, 32)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", val, err)
		}
		in.Value = float32(v)
	case "weight", "w":
		v, err := strconv.ParseFloat(val, 32)
		if err != nil {
			return fmt.Errorf("bad weight %q: %v", val, err)
		}
		in.Weight = float32(v)
	case "fn", "function":
		fn, err := parseFunc(val)
		if err != nil {
			return err
		}
		in.Fn = fn
	case "cond", "condition":
		c, err := parseCond(val)
		if err != nil {
			return err
		}
		in.Cond = c
	case "rule":
		spec, err := a.parseRule(val)
		if err != nil {
			return err
		}
		*ruleSpec = &spec
	default:
		return fmt.Errorf("unknown operand key %q", key)
	}
	return nil
}

func (a *Assembler) node(name string) (semnet.NodeID, error) {
	if id, ok := a.kb.Lookup(name); ok {
		return id, nil
	}
	if n, err := strconv.ParseUint(name, 10, 32); err == nil {
		return semnet.NodeID(n), nil
	}
	return semnet.InvalidNode, fmt.Errorf("unknown node %q", name)
}

func parseMarker(s string) (semnet.MarkerID, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad marker %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad marker %q", s)
	}
	switch s[0] {
	case 'c', 'm':
		if n < 0 || n >= semnet.NumComplexMarkers {
			return 0, fmt.Errorf("complex marker %q out of range", s)
		}
		return semnet.MarkerID(n), nil
	case 'b':
		if n < 0 || n >= semnet.NumBinaryMarkers {
			return 0, fmt.Errorf("binary marker %q out of range", s)
		}
		return semnet.Binary(n), nil
	}
	return 0, fmt.Errorf("bad marker %q (want c#, b#, or m#)", s)
}

func parseFunc(s string) (semnet.FuncCode, error) {
	switch strings.ToLower(s) {
	case "nop":
		return semnet.FuncNop, nil
	case "add":
		return semnet.FuncAdd, nil
	case "min":
		return semnet.FuncMin, nil
	case "max":
		return semnet.FuncMax, nil
	case "mul":
		return semnet.FuncMul, nil
	case "dec":
		return semnet.FuncDec, nil
	}
	return 0, fmt.Errorf("unknown function %q", s)
}

func parseCond(s string) (Condition, error) {
	switch strings.ToLower(s) {
	case "none":
		return CondNone, nil
	case "lt":
		return CondLT, nil
	case "le":
		return CondLE, nil
	case "gt":
		return CondGT, nil
	case "ge":
		return CondGE, nil
	case "eq":
		return CondEQ, nil
	case "ne":
		return CondNE, nil
	}
	return 0, fmt.Errorf("unknown condition %q", s)
}

func (a *Assembler) parseRule(s string) (rules.Spec, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return rules.Spec{}, fmt.Errorf("bad rule %q (want kind(r1[,r2]))", s)
	}
	kindName := s[:open]
	args := strings.Split(s[open+1:len(s)-1], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	var kind rules.Kind
	two := false
	switch strings.ToLower(kindName) {
	case "step":
		kind = rules.KindStep
	case "path":
		kind = rules.KindPath
	case "spread":
		kind, two = rules.KindSpread, true
	case "seq":
		kind, two = rules.KindSeq, true
	case "comb":
		kind, two = rules.KindComb, true
	default:
		return rules.Spec{}, fmt.Errorf("unknown rule kind %q", kindName)
	}
	if two && len(args) != 2 || !two && len(args) != 1 {
		return rules.Spec{}, fmt.Errorf("rule %q has wrong arity", s)
	}
	spec := rules.Spec{Kind: kind, R1: a.kb.Relation(args[0])}
	if two {
		spec.R2 = a.kb.Relation(args[1])
	}
	return spec, nil
}

// Disassemble renders in as one line of assembly, resolving names via kb.
// Rule tokens render through the accompanying table (nil table allowed).
func Disassemble(in *Instruction, kb *semnet.KB, tbl *rules.Table) string {
	var b strings.Builder
	b.WriteString(strings.ToLower(in.Op.String()))
	emit := func(k, v string) { fmt.Fprintf(&b, " %s=%s", k, v) }
	mk := func(m semnet.MarkerID) string {
		if m.IsComplex() {
			return fmt.Sprintf("c%d", m)
		}
		return fmt.Sprintf("b%d", m-semnet.NumComplexMarkers)
	}
	switch in.Op {
	case OpCreate:
		emit("src", kb.Name(in.Node))
		emit("rel", kb.RelationName(in.Rel))
		emit("w", trimFloat(in.Weight))
		emit("dst", kb.Name(in.EndNode))
	case OpDelete:
		emit("src", kb.Name(in.Node))
		emit("rel", kb.RelationName(in.Rel))
		emit("dst", kb.Name(in.EndNode))
	case OpSetColor:
		emit("node", kb.Name(in.Node))
		emit("color", kb.ColorName(in.Color))
	case OpSearchNode:
		emit("node", kb.Name(in.Node))
		emit("marker", mk(in.M1))
		emit("value", trimFloat(in.Value))
	case OpSearchRelation:
		emit("rel", kb.RelationName(in.Rel))
		emit("marker", mk(in.M1))
		emit("value", trimFloat(in.Value))
	case OpSearchColor:
		emit("color", kb.ColorName(in.Color))
		emit("marker", mk(in.M1))
		emit("value", trimFloat(in.Value))
	case OpPropagate:
		emit("m1", mk(in.M1))
		emit("m2", mk(in.M2))
		name := fmt.Sprintf("token%d", in.Rule)
		if tbl != nil {
			if r := tbl.Rule(in.Rule); r != nil {
				name = r.Name()
			}
		}
		emit("rule", name)
		emit("fn", in.Fn.String())
	case OpMarkerCreate, OpMarkerDelete:
		emit("marker", mk(in.M1))
		emit("rel", kb.RelationName(in.Rel))
		emit("dst", kb.Name(in.EndNode))
		if in.HasRev {
			emit("rev", kb.RelationName(in.RevRel))
		}
	case OpMarkerSetColor:
		emit("marker", mk(in.M1))
		emit("color", kb.ColorName(in.Color))
	case OpAndMarker, OpOrMarker:
		emit("m1", mk(in.M1))
		emit("m2", mk(in.M2))
		emit("m3", mk(in.M3))
		emit("fn", in.Fn.String())
	case OpNotMarker:
		emit("m1", mk(in.M1))
		emit("m2", mk(in.M2))
		emit("value", trimFloat(in.Value))
		emit("cond", in.Cond.String())
	case OpSetMarker:
		emit("marker", mk(in.M1))
		emit("value", trimFloat(in.Value))
	case OpClearMarker, OpCollectNode, OpCollectColor:
		emit("marker", mk(in.M1))
	case OpFuncMarker:
		emit("marker", mk(in.M1))
		emit("fn", in.Fn.String())
		emit("operand", trimFloat(in.Value))
	case OpCollectRelation:
		emit("marker", mk(in.M1))
		emit("rel", kb.RelationName(in.Rel))
	case OpCommEnd:
	}
	return b.String()
}

func trimFloat(f float32) string {
	return strconv.FormatFloat(float64(f), 'g', -1, 32)
}
