package isa

import (
	"testing"

	"snap1/internal/rules"
	"snap1/internal/semnet"
)

func hashProg(rel semnet.RelType, spec rules.Spec, v float32) *Program {
	p := NewProgram()
	p.SearchNode(3, 1, v)
	p.Propagate(1, 2, spec, semnet.FuncAdd)
	p.CollectNode(2)
	_ = rel
	return p
}

func TestProgramHashStable(t *testing.T) {
	a := hashProg(5, rules.Path(5), 0)
	b := hashProg(5, rules.Path(5), 0)
	if a.Hash() != b.Hash() {
		t.Error("identical programs hash differently")
	}
	if a.Hash() != a.Hash() {
		t.Error("hash not deterministic across calls")
	}
}

func TestProgramHashDiscriminates(t *testing.T) {
	base := hashProg(5, rules.Path(5), 0)
	cases := map[string]*Program{
		"different operand value": hashProg(5, rules.Path(5), 1),
		"different rule kind":     hashProg(5, rules.Step(5), 0),
		"different rule relation": hashProg(5, rules.Path(6), 0),
	}
	for name, p := range cases {
		if p.Hash() == base.Hash() {
			t.Errorf("%s: hash collides with base", name)
		}
	}
	longer := hashProg(5, rules.Path(5), 0)
	longer.CollectNode(2)
	if longer.Hash() == base.Hash() {
		t.Error("longer program hashes like its prefix")
	}
}

func TestProgramHashSeesRuleBody(t *testing.T) {
	// Same token number, different compiled FSM: hashes must differ.
	a := NewProgram()
	a.Propagate(1, 2, rules.Path(7), semnet.FuncAdd)
	b := NewProgram()
	b.Propagate(1, 2, rules.Spread(7, 8), semnet.FuncAdd)
	if a.Instrs[0].Rule != b.Instrs[0].Rule {
		t.Fatal("test premise broken: tokens differ")
	}
	if a.Hash() == b.Hash() {
		t.Error("programs with equal tokens but different rule FSMs collide")
	}
}
