package isa

import (
	"snap1/internal/rules"
	"snap1/internal/semnet"
)

// Program optimizer: a deterministic compile-tier pass pipeline that
// rewrites a straight-line SNAP program into an equivalent one that the
// processing unit can overlap more aggressively (β-parallelism) at a
// lower marker-plane footprint. Four passes, in order:
//
//  1. Peephole folding — SET/FUNC sweeps fold into one SET, AND/OR of a
//     plane with itself into itself drops when value-neutral, FUNC on a
//     binary plane (no value registers) drops, and the rebuilt rule
//     table de-duplicates behaviorally identical PROPAGATE rules by
//     compiled-FSM fingerprint.
//  2. Dead-plane elimination — instructions whose written planes are
//     never read again (before a retrieval, COMM-END, or — when final
//     marker state is observable — the end of the program) are dropped.
//     Liveness is tracked per plane and per register file (status bits,
//     value registers, origin registers), because the ISA's writes are
//     not uniform: SET-MARKER rewrites status and values but leaves
//     origin registers readable through it, CLEAR-MARKER touches status
//     only, NOT-MARKER writes status without touching registers.
//  3. Marker-plane renaming — SSA-style re-allocation of write
//     lifetimes ("webs") onto planes, eliminating WAR/WAW false
//     dependencies inside an overlap region and packing webs onto fewer
//     planes (lower PlaneDemand admits more queries to the fusion
//     planner).
//  4. List scheduling — within each region (the span between
//     serializing instructions, which the PU drains on), instructions
//     reorder subject to true dependencies so that independent
//     PROPAGATEs become adjacent: the issue window only counts
//     immediately preceding independent instructions, so order decides
//     the overlap degree actually achieved.
//
// Equivalence contract. For an eligible program the optimized program
// produces bit-identical collections (nodes, values, origins, order)
// on both execution engines, and — with PreserveMarkers — bit-identical
// final marker state under the machine's observability model: status
// bits everywhere, value and origin registers wherever the status bit
// is set. Virtual time may only improve structurally: no pass adds
// instructions, renaming only deletes window flushes, and the scheduler
// reorders solely when it merges propagate windows the source order
// split (each merge deletes a whole barrier synchronization); when no
// window merges, the region keeps source order. Issue-slot alignment
// across clusters can still drift a run by a small fraction either
// way; programs with mergeable windows win far more than that.
// The one schedule-dependent observable in the
// ISA is the origin register of an equal-value delivery tie during
// propagation; the optimizer refuses programs whose propagate functions
// make such ties undetectable (exactly fusion's originSafeFn gate), and
// the machine's strict run mode detects the detectable ties at run time
// so callers can fall back to the unoptimized program.
//
// Ineligible programs — topology-mutating ones, programs with
// origin-unsafe propagate functions, or an opt level of zero — pass
// through unchanged (Changed reports false); Optimize never fails.

// Optimization levels.
const (
	// OptNone disables the optimizer: the program runs as written.
	OptNone = 0
	// OptBasic runs peephole folding and dead-plane elimination.
	OptBasic = 1
	// OptFull adds marker-plane renaming and overlap list scheduling.
	OptFull = 2
)

// OptConfig parameterizes Optimize.
type OptConfig struct {
	// Level selects the pass set: OptNone, OptBasic, or OptFull.
	// Out-of-range values clamp into [OptNone, OptFull].
	Level int
	// PreserveMarkers keeps the final marker state of every plane
	// bit-identical to the unoptimized program (library/simulator
	// profile: markers persist after Run and may be read back). When
	// false, only collections are observable (query-serving profile:
	// the engine clears dirtied planes between queries), which unlocks
	// end-of-program dead-write elimination and frees every plane's
	// final lifetime for renaming.
	PreserveMarkers bool
}

// Optimized is an optimization product: the rewritten program plus the
// metadata needed to map its results back onto the original
// instruction stream.
type Optimized struct {
	// Program is the optimized program. When Changed is false it is
	// the original *Program, untouched.
	Program *Program
	// OrigIndex maps optimized instruction indices to original ones,
	// so Collection.Instr can be remapped and callers keep indexing
	// collections against the program they wrote.
	OrigIndex []int
	// InstrsEliminated counts instructions removed by folding and
	// dead-plane elimination.
	InstrsEliminated int
	// PlanesFreed is the plane-demand reduction (complex plus binary
	// rows) achieved by renaming — capacity handed back to the fusion
	// planner.
	PlanesFreed int
	// Level and PreserveMarkers echo the effective configuration.
	Level           int
	PreserveMarkers bool

	changed bool
}

// Changed reports whether optimization rewrote the program at all.
// When false, Program is the original program and running the
// "optimized" form is pointless.
func (o *Optimized) Changed() bool { return o.changed }

// Optimize rewrites p under cfg. The returned product's Program is
// freshly built (own rule table) whenever Changed is true; p itself is
// never modified.
func Optimize(p *Program, cfg OptConfig) *Optimized {
	if cfg.Level > OptFull {
		cfg.Level = OptFull
	}
	id := &Optimized{Program: p, Level: cfg.Level, PreserveMarkers: cfg.PreserveMarkers}
	id.OrigIndex = identityIndex(len(p.Instrs))
	if cfg.Level <= OptNone || len(p.Instrs) == 0 {
		return id
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Mutating() || int(in.Op) >= NumOpcodes {
			// Replica pools refuse mutating programs anyway, and
			// MARKER-SET-COLOR writes node colors that searches read —
			// a hazard outside the marker dependence model.
			return id
		}
		if in.Op == OpPropagate && !originSafeFn(in.Fn, in.M2) {
			// A non-strict apply function can deliver one final value
			// under two origins depending on arrival order, which any
			// reordering perturbs undetectably. Same gate as fusion.
			return id
		}
	}

	stream := make([]wInstr, len(p.Instrs))
	for i := range p.Instrs {
		stream[i] = wInstr{in: p.Instrs[i], orig: i}
	}
	stream = peephole(stream)
	stream = deadPlanes(stream, cfg.PreserveMarkers)
	if cfg.Level >= OptFull {
		// Renaming never reorders and only deletes window conflicts, so
		// the PU's flush count can only shrink; the scheduler's own
		// merge gate (scheduleRegion) keeps source order unless the
		// reorder deletes a window outright. Between them, no O2 pass
		// ever adds a barrier synchronization.
		renamePlanes(stream, cfg.PreserveMarkers)
		stream = scheduleOverlap(stream)
	}

	// Would rebuilding the rule table merge tokens? Two distinct
	// tokens whose compiled FSMs share a fingerprint count as a real
	// change even when the instruction stream is untouched.
	dedups := false
	{
		byFP := make(map[uint64]rules.Token)
		for i := range stream {
			in := &stream[i].in
			if in.Op != OpPropagate {
				continue
			}
			fp := p.Rules.Rule(in.Rule).Fingerprint()
			if prev, ok := byFP[fp]; ok {
				if prev != in.Rule {
					dedups = true
					break
				}
			} else {
				byFP[fp] = in.Rule
			}
		}
	}

	// Unchanged stream (rule-token relabeling aside): hand back the
	// original program so callers skip the optimized path entirely.
	if !dedups && len(stream) == len(p.Instrs) {
		same := true
		for i := range stream {
			a, b := stream[i].in, p.Instrs[i]
			a.Rule, b.Rule = 0, 0
			if stream[i].orig != i || a != b {
				same = false
				break
			}
		}
		if same {
			return id
		}
	}

	out := &Optimized{
		Program:         &Program{Rules: rules.NewTable()},
		OrigIndex:       make([]int, len(stream)),
		Level:           cfg.Level,
		PreserveMarkers: cfg.PreserveMarkers,
		changed:         true,
	}
	// Rebuild the rule table with behavioral de-duplication: two
	// PROPAGATEs whose compiled FSMs share a fingerprint share one
	// token in the optimized table.
	byFP := make(map[uint64]rules.Token)
	for i := range stream {
		in := stream[i].in
		if in.Op == OpPropagate {
			rule := p.Rules.Rule(in.Rule)
			fp := rule.Fingerprint()
			tok, ok := byFP[fp]
			if !ok {
				var err error
				tok, err = out.Program.Rules.AddCustom(rule)
				if err != nil {
					// Table overflow cannot happen (the rebuilt table
					// is no larger than the original), but fail safe.
					return id
				}
				byFP[fp] = tok
			}
			in.Rule = tok
		}
		out.Program.Instrs = append(out.Program.Instrs, in)
		out.OrigIndex[i] = stream[i].orig
	}
	out.InstrsEliminated = len(p.Instrs) - len(stream)
	oc, ob := PlaneDemand(p)
	nc, nb := PlaneDemand(out.Program)
	if freed := (oc + ob) - (nc + nb); freed > 0 {
		out.PlanesFreed = freed
	}
	return out
}

func identityIndex(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// wInstr is one working instruction: the (mutable) instruction plus
// its index in the original program.
type wInstr struct {
	in   Instruction
	orig int
}

// ---------------------------------------------------------------------
// Pass 1: peephole folding.

// peephole applies local strength reductions to fixpoint. Every fold
// removes a full array sweep; none adds one.
func peephole(stream []wInstr) []wInstr {
	for changed := true; changed; {
		changed = false
		next := stream[:0]
		for i := 0; i < len(stream); i++ {
			w := stream[i]
			in := &w.in
			// FUNC-MARKER on a binary plane: no value registers to
			// apply the function to — a pure sweep charge.
			if in.Op == OpFuncMarker && !in.M1.IsComplex() {
				changed = true
				continue
			}
			// AND/OR of a plane with itself into itself: status bits
			// are unchanged; values and origins are rewritten in place
			// only when the destination is complex, and then the
			// rewrite is the identity exactly when the combining
			// function is NOP (v = nop(v, v), origin = own origin).
			if (in.Op == OpAndMarker || in.Op == OpOrMarker) &&
				in.M1 == in.M2 && in.M2 == in.M3 &&
				(!in.M3.IsComplex() || in.Fn == semnet.FuncNop) {
				changed = true
				continue
			}
			// SET m, v immediately followed by FUNC m, fn, op: SET
			// leaves every node set, so the FUNC sweep applies fn at
			// every node — fold into SET m, fn(v, op). Neither
			// instruction touches origin registers.
			if in.Op == OpSetMarker && i+1 < len(stream) {
				n := &stream[i+1].in
				if n.Op == OpFuncMarker && n.M1 == in.M1 && in.M1.IsComplex() {
					w.in.Value = n.Fn.Apply(in.Value, n.Value)
					next = append(next, w)
					i++
					changed = true
					continue
				}
			}
			next = append(next, w)
		}
		stream = next
	}
	return stream
}

// ---------------------------------------------------------------------
// Pass 2: dead-plane elimination.

// deadPlanes drops instructions whose writes can never be observed.
// Liveness runs backward over three per-plane facts — status bits,
// value registers, origin registers — because the ISA's full-array
// writes overwrite different subsets of them: SET-MARKER defines
// status and values but origin registers stay readable through it (a
// later COLLECT-NODE reports them), CLEAR-MARKER defines only status,
// AND/OR define status plus values at every surviving bit, NOT-MARKER
// defines status alone.
//
// Registers are only ever read where a status bit is set, so a CLEAR
// also ends the registers' liveness — unless some later instruction
// can set bits WITHOUT defining the register (NOT sets bits touching
// no registers; SET and AND/OR leave origins), re-exposing whatever
// was underneath. The expV/expO sets track, from the program end
// backward, whether such an exposing instruction exists; register
// liveness survives a CLEAR only on exposed planes. Serializing
// instructions (retrievals, barriers) are never removed. With preserve
// set, every plane is live at program end — but exposure still starts
// empty: the final state only shows registers under final set bits.
func deadPlanes(stream []wInstr, preserve bool) []wInstr {
	var sLive, vLive, oLive, expV, expO MarkerSet
	if preserve {
		sLive = MarkerSetFromBits(^uint64(0), ^uint64(0))
		vLive, oLive = sLive, sLive
	}
	addRead := func(m semnet.MarkerID, status, value, origin bool) {
		if status {
			sLive.Add(m)
		}
		if m.IsComplex() {
			if value {
				vLive.Add(m)
			}
			if origin {
				oLive.Add(m)
			}
		}
	}
	reads := func(in *Instruction) {
		switch in.Op {
		case OpPropagate:
			// The frontier scan reads M1's bits and values; merge
			// delivery reads M2's prior bits and values. Task origins
			// come from the source nodes themselves, never from M1's
			// origin registers.
			addRead(in.M1, true, true, false)
			addRead(in.M2, true, true, false)
		case OpAndMarker, OpOrMarker:
			regs := in.M3.IsComplex() // operand registers combine only then
			addRead(in.M1, true, regs, regs)
			addRead(in.M2, true, regs, regs)
		case OpNotMarker:
			addRead(in.M1, true, in.Cond != CondNone, false)
		case OpFuncMarker:
			addRead(in.M1, true, true, false)
		case OpCollectNode:
			addRead(in.M1, true, true, true)
		case OpCollectRelation, OpCollectColor:
			addRead(in.M1, true, false, false)
		}
	}
	complexLive := func(m semnet.MarkerID, value, origin bool) bool {
		if !m.IsComplex() {
			return false
		}
		return (value && vLive.Contains(m)) || (origin && oLive.Contains(m))
	}
	keep := make([]bool, len(stream))
	kept := 0
	for i := len(stream) - 1; i >= 0; i-- {
		in := &stream[i].in
		if in.Serializing() {
			keep[i] = true
			kept++
			reads(in)
			continue
		}
		dead := false
		switch in.Op {
		case OpSetMarker:
			dead = !sLive.Contains(in.M1) && !complexLive(in.M1, true, false)
		case OpClearMarker:
			dead = !sLive.Contains(in.M1)
		case OpNotMarker:
			dead = !sLive.Contains(in.M2)
		case OpAndMarker, OpOrMarker:
			dead = !sLive.Contains(in.M3) && !complexLive(in.M3, true, true)
		case OpSearchNode, OpSearchRelation, OpSearchColor:
			dead = !sLive.Contains(in.M1) && !complexLive(in.M1, true, true)
		case OpPropagate:
			dead = !sLive.Contains(in.M2) && !complexLive(in.M2, true, true)
		case OpFuncMarker:
			dead = !complexLive(in.M1, true, false)
		}
		if dead {
			continue
		}
		keep[i] = true
		kept++
		switch in.Op {
		case OpSetMarker:
			sLive.Remove(in.M1)
			vLive.Remove(in.M1)
			if in.M1.IsComplex() {
				expO.Add(in.M1) // sets every bit, origins left stale
			}
		case OpClearMarker:
			sLive.Remove(in.M1)
			if !expV.Contains(in.M1) {
				vLive.Remove(in.M1)
			}
			if !expO.Contains(in.M1) {
				oLive.Remove(in.M1)
			}
		case OpNotMarker:
			sLive.Remove(in.M2)
			if in.M2.IsComplex() {
				expV.Add(in.M2) // sets bits touching no registers
				expO.Add(in.M2)
			}
		case OpAndMarker, OpOrMarker:
			sLive.Remove(in.M3)
			// Values are rewritten only at RESULT-set bits; registers
			// under cleared bits keep their old content, so a later
			// exposing write (NOT) can still surface pre-AND values.
			if !expV.Contains(in.M3) {
				vLive.Remove(in.M3)
			}
			if in.M3.IsComplex() {
				expO.Add(in.M3) // surviving bits keep stale origins
			}
		}
		reads(in)
	}
	if kept == len(stream) {
		return stream
	}
	out := stream[:0]
	for i := range stream {
		if keep[i] {
			out = append(out, stream[i])
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Pass 3: marker-plane renaming.

// A web is one write lifetime of a plane: the chain from a full-status
// definition (SET, CLEAR, NOT destination, AND/OR destination) through
// every read and read-modify-write of that content, ending at the next
// full definition. The program-entry content of a plane forms an entry
// web with no defining instruction.
//
// Relocating a web onto another plane is the rename that removes
// WAR/WAW false dependencies and packs lifetimes. It is sound only
// when nothing observable depends on the register history the web's
// home plane would otherwise carry. The ISA reads value/origin
// registers only where status bits are set, so a web whose member
// instructions define the registers at every bit they can leave set is
// insulated from history:
//
//   - CLEAR-started webs gain bits only via SEARCH hits and PROPAGATE
//     deliveries, which write value and origin — fully insulated.
//   - SET-started webs define every value but leave origin registers;
//     insulated unless a member reads origins (COLLECT-NODE, or an
//     AND/OR operand feeding a complex destination).
//   - AND/OR-started webs likewise define values but not all origins.
//   - NOT-started webs set bits without touching registers at all;
//     insulated only if no member reads values or origins.
//   - Binary planes have no registers: every non-entry web is
//     insulated.
//
// A web may leave home only if every later web of the home plane is
// insulated (they would otherwise observe the content the web no
// longer deposits), and a plane accepts a guest only if every one of
// its own webs after the guest's lifetime is insulated, for the
// mirrored reason. With preserve set, the last web of every plane is
// additionally pinned home and both planes' final lifetimes must
// re-establish the observable end state from scratch (endInsulated).
//
// Webs are placed at region granularity — regions (spans between
// serializing instructions) never reorder, so region-disjoint
// lifetimes can share a plane without creating any new in-window
// conflict — greedily onto the lowest-numbered plane of the same class
// the program already uses, so packing can only shrink demand. The one
// exception runs the other way: a web that shares a region with
// another lifetime of its own plane is a live WAR/WAW window conflict,
// and when no used plane can absorb it, serving mode splits it onto a
// fresh plane — each split trades one plane of demand for one fewer
// overlap-window flush on every execution.
type web struct {
	plane        semnet.MarkerID
	target       semnet.MarkerID
	def          defKind
	r0, r1       int // region interval (inclusive)
	entry        bool
	insulated    bool
	endInsulated bool
	final        bool // last web of its home plane
}

// defKind classifies a web's defining kill, which decides what the
// definition leaves in a well-defined state.
type defKind uint8

const (
	defEntry defKind = iota // program-entry content: nothing defined
	defClear                // CLEAR: no bit survives the definition itself
	defSet                  // SET: status+values defined, origins stale
	defBool                 // AND/OR: status+values defined, origins partial
	defNot                  // NOT: status defined, registers untouched
)

// valueDefined reports whether every bit the web's definition can
// leave set carries a freshly written value register.
func (d defKind) valueDefined() bool {
	return d == defClear || d == defSet || d == defBool
}

// originDefined is the same question for origin registers.
func (d defKind) originDefined() bool { return d == defClear }

// planeRole identifies which marker operand of an instruction an
// access went through, so rewriting can target the right field.
type planeRole uint8

const (
	roleM1 planeRole = iota
	roleM2
	roleM3
	numRoles
)

// killRole reports the operand slot that fully (re)defines its plane's
// status row, if any, and the kind of definition.
func killRole(in *Instruction) (planeRole, defKind, bool) {
	switch in.Op {
	case OpSetMarker:
		return roleM1, defSet, true
	case OpClearMarker:
		return roleM1, defClear, true
	case OpNotMarker:
		return roleM2, defNot, true
	case OpAndMarker, OpOrMarker:
		return roleM3, defBool, true
	}
	return 0, defEntry, false
}

// accessRoles lists the operand slots that read or read-modify-write
// their plane (everything except the kill slot); -1 marks unused.
func accessRoles(in *Instruction) [2]int8 {
	switch in.Op {
	case OpSearchNode, OpSearchRelation, OpSearchColor, OpFuncMarker,
		OpCollectNode, OpCollectRelation, OpCollectColor, OpNotMarker:
		return [2]int8{int8(roleM1), -1}
	case OpPropagate, OpAndMarker, OpOrMarker:
		return [2]int8{int8(roleM1), int8(roleM2)}
	}
	return [2]int8{-1, -1}
}

func planeOf(in *Instruction, r planeRole) semnet.MarkerID {
	switch r {
	case roleM2:
		return in.M2
	case roleM3:
		return in.M3
	}
	return in.M1
}

func setPlane(in *Instruction, r planeRole, m semnet.MarkerID) {
	switch r {
	case roleM2:
		in.M2 = m
	case roleM3:
		in.M3 = m
	default:
		in.M1 = m
	}
}

// regionize assigns every instruction a region number: runs of
// non-serializing instructions share one, every serializing
// instruction gets its own. No pass moves an instruction across a
// region boundary, and the PU's overlap window never spans one (the
// boundary instruction drains it), so two lifetimes in different
// regions can never be interleaved.
func regionize(stream []wInstr) []int {
	regions := make([]int, len(stream))
	r := 0
	for i := range stream {
		if stream[i].in.Serializing() {
			r++
			regions[i] = r
			r++
		} else {
			regions[i] = r
		}
	}
	return regions
}

const maxRegion = int(^uint(0) >> 1)

// renamePlanes rewrites marker operands in place.
func renamePlanes(stream []wInstr, preserve bool) {
	regions := regionize(stream)

	// Build webs in one forward walk. webOf[i][role] is the web each
	// access belongs to; cur[plane] is the plane's open web.
	var webs []*web
	webOf := make([][numRoles]int32, len(stream))
	for i := range webOf {
		webOf[i] = [numRoles]int32{-1, -1, -1}
	}
	cur := make([]int32, semnet.NumMarkers)
	lastOf := make([]int32, semnet.NumMarkers)
	for m := range cur {
		cur[m], lastOf[m] = -1, -1
	}
	open := func(m semnet.MarkerID, i int, kind defKind) int32 {
		w := &web{plane: m, target: m, def: kind, r0: regions[i], r1: regions[i]}
		switch {
		case kind == defEntry:
			w.entry = true
			w.r0 = 0 // entry content is live from the program's start
		case !m.IsComplex():
			w.insulated, w.endInsulated = true, true // no registers
		case kind == defClear:
			w.insulated, w.endInsulated = true, true
		default:
			// SET/AND/OR: values defined everywhere a bit can be set,
			// origins stale — insulated until a member reads origins,
			// and the end state still exposes origins at set bits.
			// NOT: registers untouched — insulated until any register
			// read.
			w.insulated = true
		}
		webs = append(webs, w)
		id := int32(len(webs) - 1)
		cur[m], lastOf[m] = id, id
		return id
	}
	touch := func(m semnet.MarkerID, i int) int32 {
		id := cur[m]
		if id < 0 {
			id = open(m, i, defEntry)
		}
		if r := regions[i]; r > webs[id].r1 {
			webs[id].r1 = r
		}
		return id
	}
	for i := range stream {
		in := &stream[i].in
		// Reads and read-modify-writes extend the plane's open web.
		for _, rr := range accessRoles(in) {
			if rr < 0 {
				continue
			}
			role := planeRole(rr)
			m := planeOf(in, role)
			id := touch(m, i)
			webOf[i][role] = id
			w := webs[id]
			// Register-observing members de-insulate webs whose
			// definition left that register file stale.
			if m.IsComplex() && !w.entry {
				readsOrigin := in.Op == OpCollectNode ||
					((in.Op == OpAndMarker || in.Op == OpOrMarker) && in.M3.IsComplex())
				readsValue := readsOrigin || in.Op == OpFuncMarker ||
					in.Op == OpPropagate ||
					(in.Op == OpNotMarker && in.Cond != CondNone)
				if readsOrigin && !w.def.originDefined() {
					w.insulated = false
				}
				if readsValue && !w.def.valueDefined() {
					w.insulated = false
				}
			}
		}
		// A kill closes the old web and opens a new one.
		if role, kind, ok := killRole(in); ok {
			webOf[i][role] = open(planeOf(in, role), i, kind)
		}
	}

	perPlane := make([][]int32, semnet.NumMarkers)
	for id := int32(0); int(id) < len(webs); id++ {
		w := webs[id]
		w.final = lastOf[w.plane] == id
		perPlane[w.plane] = append(perPlane[w.plane], id)
	}
	// suffixOK: every web of the home plane from this one on (in
	// lifetime order) is insulated — the leave-home condition.
	suffixOK := make([]bool, len(webs))
	for _, ids := range perPlane {
		ok := true
		for k := len(ids) - 1; k >= 0; k-- {
			ok = ok && webs[ids[k]].insulated
			suffixOK[ids[k]] = ok
		}
	}
	// insulatedAfter: every web of q starting strictly after region r
	// is insulated — the host-side mirror (a guest changes what those
	// webs would read through their stale registers).
	insulatedAfter := func(q semnet.MarkerID, r int) bool {
		for _, id := range perPlane[q] {
			if w := webs[id]; w.r0 > r && !w.insulated {
				return false
			}
		}
		return true
	}
	// endStateSafe: with preserve, a plane's observable end state must
	// be re-established from scratch by its final lifetime before any
	// web may move onto or off of the plane.
	endStateSafe := func(q semnet.MarkerID) bool {
		if !preserve {
			return true
		}
		last := lastOf[q]
		return last >= 0 && webs[last].endInsulated
	}

	// Occupancy: every web starts at home; relocation moves its region
	// interval to the target plane.
	occ := make([][]int32, semnet.NumMarkers)
	for id := int32(0); int(id) < len(webs); id++ {
		occ[webs[id].plane] = append(occ[webs[id].plane], id)
	}
	free := func(q semnet.MarkerID, w *web, self int32) bool {
		for _, id := range occ[q] {
			if id == self {
				continue
			}
			o := webs[id]
			hi := o.r1
			if preserve && o.final {
				hi = maxRegion // pinned end state: no guests after it
			}
			if w.r0 <= hi && o.r0 <= w.r1 {
				return false
			}
		}
		return true
	}

	// Candidate targets: planes the program already uses, per class —
	// demand never grows. Webs relocate in lifetime order (interval
	// start, then home plane), which is stable across re-optimization:
	// running the allocator on its own output reproduces it.
	var used MarkerSet
	for m := semnet.MarkerID(0); m < semnet.NumMarkers; m++ {
		if len(perPlane[m]) > 0 {
			used.Add(m)
		}
	}
	order := make([]int32, 0, len(webs))
	for id := int32(0); int(id) < len(webs); id++ {
		order = append(order, id)
	}
	for i := 1; i < len(order); i++ { // insertion sort: tiny n, stable
		for j := i; j > 0; j-- {
			a, b := webs[order[j-1]], webs[order[j]]
			if a.r0 > b.r0 || (a.r0 == b.r0 && a.plane > b.plane) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	relocate := func(id int32, q semnet.MarkerID) {
		w := webs[id]
		home := occ[w.plane][:0]
		for _, o := range occ[w.plane] {
			if o != id {
				home = append(home, o)
			}
		}
		occ[w.plane] = home
		occ[q] = append(occ[q], id)
		w.target = q
	}
	for _, id := range order {
		w := webs[id]
		if w.entry || !suffixOK[id] || !endStateSafe(w.plane) ||
			(preserve && w.final) {
			continue // pinned home
		}
		placed := false
		used.ForEach(func(q semnet.MarkerID) {
			if placed || q.IsComplex() != w.plane.IsComplex() {
				return
			}
			if q != w.plane &&
				(!endStateSafe(q) || !insulatedAfter(q, w.r1)) {
				return
			}
			if !free(q, w, id) {
				return
			}
			if q != w.plane {
				relocate(id, q)
			}
			placed = true
		})
		if placed || preserve || free(w.plane, w, id) {
			continue
		}
		// The web shares a region with another lifetime of its home
		// plane: a real WAR/WAW window conflict that no used plane can
		// absorb. Split it onto a fresh plane — worth the extra demand,
		// since every removed conflict removes an overlap-window flush.
		// Serving mode only: a guest on an untouched plane would break
		// a preserved final state, and the engine's dirty-mask clear
		// covers whatever the optimized program writes.
		for q := semnet.MarkerID(0); q < semnet.NumMarkers; q++ {
			if q.IsComplex() != w.plane.IsComplex() || used.Contains(q) {
				continue
			}
			if !free(q, w, id) {
				continue
			}
			relocate(id, q)
			used.Add(q) // later webs may pack onto it
			break
		}
	}

	// Rewrite operands through the web assignment.
	for i := range stream {
		in := &stream[i].in
		for role := planeRole(0); role < numRoles; role++ {
			if id := webOf[i][role]; id >= 0 {
				setPlane(in, role, webs[id].target)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Pass 4: overlap list scheduling.

// scheduleOverlap reorders each region so that independent PROPAGATEs
// become adjacent. Dependencies are the pairwise MarkerDisjoint
// condition on the (renamed) operands — exactly what the PU's issue
// window checks — so the reorder can only widen windows, never change
// plane contents. Instructions are levelized ASAP over the dependence
// DAG and emitted level by level, propagates before non-propagates,
// source order within each class: every level's propagates land as one
// contiguous run inside a single overlap window, issued early enough
// that the phase overlaps the level's scalar ops.
func scheduleOverlap(stream []wInstr) []wInstr {
	regions := regionize(stream)
	out := make([]wInstr, 0, len(stream))
	for lo := 0; lo < len(stream); {
		hi := lo
		for hi < len(stream) && regions[hi] == regions[lo] {
			hi++
		}
		if stream[lo].in.Serializing() || hi-lo <= 2 {
			out = append(out, stream[lo:hi]...)
		} else {
			out = append(out, scheduleRegion(stream[lo:hi])...)
		}
		lo = hi
	}
	return out
}

// maxScheduleRegion bounds the list scheduler's O(n²) levelization.
// Serving-sized queries sit orders of magnitude under it; a
// pathological multi-thousand-instruction region would pay whole
// seconds of compile time chasing window merges its dependence chains
// rarely allow, so such a region keeps source order instead.
const maxScheduleRegion = 512

func scheduleRegion(run []wInstr) []wInstr {
	n := len(run)
	if n > maxScheduleRegion {
		return run
	}
	level := make([]int, n)
	maxLevel := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if !MarkerDisjoint(&run[i].in, &run[j].in) && level[i]+1 > level[j] {
				level[j] = level[i] + 1
			}
		}
		if level[j] > maxLevel {
			maxLevel = level[j]
		}
	}
	// Two instructions on one level never conflict (a conflict forces
	// the later one a level down), so any within-level order is valid.
	// Propagates go first: a pushed PROPAGATE stays pending in the PU's
	// window while later non-conflicting scalar ops execute, so issuing
	// the level's propagates before its scalars overlaps the propagation
	// phase with the scalar work instead of serializing behind it.
	out := make([]wInstr, 0, n)
	for l := 0; l <= maxLevel; l++ {
		for i := 0; i < n; i++ { // the level's propagates, adjacent
			if level[i] == l && run[i].in.Op == OpPropagate {
				out = append(out, run[i])
			}
		}
		for i := 0; i < n; i++ { // then non-propagates, source order
			if level[i] == l && run[i].in.Op != OpPropagate {
				out = append(out, run[i])
			}
		}
	}
	// Reordering is only worth its issue-slot perturbation (every
	// instruction a reorder delays starts its cluster work one broadcast
	// later) when it merges propagate windows the source order split: a
	// merge deletes a whole barrier synchronization and lets the merged
	// phases share their duration. No merge, no reorder.
	if regionWindows(out) >= regionWindows(run) {
		return run
	}
	return out
}

// regionWindows counts the propagate overlap windows a region would
// flush, replayed with the same conflict rule the PU applies.
func regionWindows(run []wInstr) int {
	flat := make([]Instruction, len(run))
	for i := range run {
		flat[i] = run[i].in
	}
	batches := propBatches(flat)
	seen := make(map[int]bool)
	for i := range flat {
		if batches[i] >= 0 {
			seen[batches[i]] = true
		}
	}
	return len(seen)
}

// ---------------------------------------------------------------------
// The no-worse guard.

// guardQueueCap mirrors the PU's default circular instruction queue
// depth (Config.InstrQueueCap); the guard assumes it when replaying
// window formation.
const guardQueueCap = 64

// propBatches replays the PU's greedy overlap-window formation over a
// stream and returns each instruction's window ordinal (-1 for
// instructions that never join the PROPAGATE batch). This mirrors the
// machine's dispatch loop exactly: only PROPAGATEs enter the window; a
// conflicting or serializing instruction — or a full queue — flushes it.
func propBatches(instrs []Instruction) []int {
	out := make([]int, len(instrs))
	batch, n := 0, 0
	var bR, bW MarkerSet
	flush := func() {
		if n > 0 {
			batch++
			n = 0
			bR, bW = MarkerSet{}, MarkerSet{}
		}
	}
	for i := range instrs {
		in := &instrs[i]
		out[i] = -1
		conf := false
		if n > 0 {
			w := in.Writes()
			conf = w.Intersects(bR) || w.Intersects(bW) || in.Reads().Intersects(bW)
		}
		if in.Op == OpPropagate {
			if n >= guardQueueCap || conf {
				flush()
			}
			out[i] = batch
			n++
			bR = bR.Union(in.Reads())
			bW = bW.Union(in.Writes())
			continue
		}
		if in.Serializing() || conf {
			flush()
		}
	}
	return out
}
