package isa

import (
	"fmt"

	"snap1/internal/semnet"
)

// MarkerSet is a bitset over the 128 marker registers, used for the data
// dependency analysis that lets the processing unit overlap independent
// PROPAGATE statements (β-parallelism, Section II-C).
type MarkerSet struct{ lo, hi uint64 }

// Add inserts marker m. An out-of-range ID panics: silently dropping it
// would under-report dependencies and let the overlap window or the
// optimizer's renaming corrupt results without a trace. Marker IDs come
// from validated instructions, so a bad one here is a compiler bug, not
// user input.
func (s *MarkerSet) Add(m semnet.MarkerID) {
	if m < 64 {
		s.lo |= 1 << m
	} else if m < semnet.NumMarkers {
		s.hi |= 1 << (m - 64)
	} else {
		panic(fmt.Sprintf("isa: MarkerSet.Add: marker %d out of range [0,%d)", m, semnet.NumMarkers))
	}
}

// Remove deletes marker m from the set. Out-of-range IDs panic, as in
// Add.
func (s *MarkerSet) Remove(m semnet.MarkerID) {
	if m < 64 {
		s.lo &^= 1 << m
	} else if m < semnet.NumMarkers {
		s.hi &^= 1 << (m - 64)
	} else {
		panic(fmt.Sprintf("isa: MarkerSet.Remove: marker %d out of range [0,%d)", m, semnet.NumMarkers))
	}
}

// Contains reports whether m is in the set.
func (s MarkerSet) Contains(m semnet.MarkerID) bool {
	if m < 64 {
		return s.lo&(1<<m) != 0
	}
	if m < semnet.NumMarkers {
		return s.hi&(1<<(m-64)) != 0
	}
	return false
}

// Intersects reports whether the two sets share any marker.
func (s MarkerSet) Intersects(o MarkerSet) bool {
	return s.lo&o.lo != 0 || s.hi&o.hi != 0
}

// Union returns the combined set.
func (s MarkerSet) Union(o MarkerSet) MarkerSet {
	return MarkerSet{lo: s.lo | o.lo, hi: s.hi | o.hi}
}

// Empty reports whether the set holds no markers.
func (s MarkerSet) Empty() bool { return s.lo == 0 && s.hi == 0 }

// Bits exposes the set as two 64-bit rows — bit i of lo is complex
// marker i, bit i of hi is binary marker 64+i — matching the status
// slab's row order so plane-masked store operations (semnet.Store
// ClearRows) can take the mask without importing this package.
func (s MarkerSet) Bits() (lo, hi uint64) { return s.lo, s.hi }

// MarkerSetFromBits is the inverse of Bits.
func MarkerSetFromBits(lo, hi uint64) MarkerSet { return MarkerSet{lo: lo, hi: hi} }

// ForEach calls f for every marker in the set in ascending order.
func (s MarkerSet) ForEach(f func(m semnet.MarkerID)) {
	for w, word := range [2]uint64{s.lo, s.hi} {
		base := semnet.MarkerID(w * 64)
		for b := 0; word != 0; b, word = b+1, word>>1 {
			if word&1 != 0 {
				f(base + semnet.MarkerID(b))
			}
		}
	}
}

// Count reports the number of markers in the set.
func (s MarkerSet) Count() int { return popcount64(s.lo) + popcount64(s.hi) }

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Reads returns the set of markers whose status or value the instruction
// consumes.
func (in *Instruction) Reads() MarkerSet {
	var s MarkerSet
	switch in.Op {
	case OpPropagate:
		s.Add(in.M1)
		s.Add(in.M2) // merge semantics read the destination marker too
	case OpAndMarker, OpOrMarker:
		s.Add(in.M1)
		s.Add(in.M2)
	case OpNotMarker:
		s.Add(in.M1)
	case OpFuncMarker, OpCollectNode, OpCollectRelation, OpCollectColor,
		OpMarkerCreate, OpMarkerDelete, OpMarkerSetColor:
		s.Add(in.M1)
	}
	return s
}

// Writes returns the set of markers whose status or value the instruction
// produces.
func (in *Instruction) Writes() MarkerSet {
	var s MarkerSet
	switch in.Op {
	case OpSearchNode, OpSearchRelation, OpSearchColor,
		OpSetMarker, OpClearMarker, OpFuncMarker:
		s.Add(in.M1)
	case OpPropagate, OpNotMarker:
		s.Add(in.M2)
	case OpAndMarker, OpOrMarker:
		s.Add(in.M3)
	}
	return s
}

// Serializing reports whether the instruction forces the processing unit
// to drain its overlap window before (and while) executing: COLLECT-NODE
// and COMM-END per Section III-A ("The PU continues processing until any
// of the following occur: a COLLECT-NODE opcode is received, a COMM-END
// barrier synchronization is requested, or the queue is full").
func (in *Instruction) Serializing() bool {
	switch in.Op {
	case OpCollectNode, OpCollectRelation, OpCollectColor, OpCommEnd,
		OpCreate, OpDelete, OpSetColor, OpMarkerCreate, OpMarkerDelete:
		// Retrieval and barrier per the paper; structural (topology-
		// mutating) instructions also serialize because in-flight
		// propagation reads the relation table they modify.
		return true
	}
	return false
}

// Independent reports whether instructions a and b have no marker data
// dependency in either direction, and so may overlap in the PU's issue
// window (the β-parallelism condition: "there are no data dependencies in
// the markers used").
//
// Serializing instructions — including COMM-END — are never independent:
// they drain the window by definition, even though COMM-END itself
// touches no markers. Query fusion must therefore NOT merge the
// sub-programs' COMM-ENDs into one shared global barrier (which would
// serialize against every plane); each fused sub-program keeps its own
// termination, and the plane-level disjointness question is answered by
// MarkerDisjoint instead.
func Independent(a, b *Instruction) bool {
	if a.Serializing() || b.Serializing() {
		return false
	}
	return MarkerDisjoint(a, b)
}

// MarkerDisjoint reports whether a and b touch disjoint marker planes:
// no write of either intersects the reads or writes of the other. Unlike
// Independent it ignores the serializing property, so COMM-END (which
// uses no markers) is disjoint with everything — the condition under
// which renamed sub-programs may be concatenated into one fused program
// without their instructions interfering.
func MarkerDisjoint(a, b *Instruction) bool {
	aw, bw := a.Writes(), b.Writes()
	return !aw.Intersects(b.Reads()) && !aw.Intersects(bw) &&
		!bw.Intersects(a.Reads())
}

// Markers returns the set of marker planes the program reads or writes.
func (p *Program) Markers() MarkerSet {
	var s MarkerSet
	for i := range p.Instrs {
		in := &p.Instrs[i]
		s = s.Union(in.Reads()).Union(in.Writes())
	}
	return s
}

// WriteSet returns the set of marker planes the program writes — the
// rows a run of the program can dirty, used by the machine's masked
// per-plane marker clear.
func (p *Program) WriteSet() MarkerSet {
	var s MarkerSet
	for i := range p.Instrs {
		s = s.Union(p.Instrs[i].Writes())
	}
	return s
}

// OverlapDegrees computes, for each instruction in the program, how many
// immediately preceding instructions it can overlap with — the measured
// β value per issue point. The returned slice aligns with p.Instrs.
func OverlapDegrees(p *Program) []int {
	degs := make([]int, len(p.Instrs))
	for i := range p.Instrs {
		d := 0
		for j := i - 1; j >= 0; j-- {
			if !Independent(&p.Instrs[i], &p.Instrs[j]) {
				break
			}
			d++
		}
		degs[i] = d
	}
	return degs
}
