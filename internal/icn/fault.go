package icn

import (
	"snap1/internal/fault"
	"snap1/internal/timing"
)

// FaultHooks lets the machine layer keep its tiered-barrier accounting
// balanced when the network injects faults. The termination protocol
// counts every message Created before it enters the ICN and Consumed
// after processing; a drop or duplication would skew that balance and
// hang (or prematurely release) the global wait, so:
//
//   - Dropped is invoked when a message (or a duplicate) dies in
//     transit — the simulated CU's integrity check notices the loss and
//     acknowledges the message as consumed.
//   - Created is invoked before a duplicate becomes visible, matching
//     the create-before-send protocol rule.
//   - Wake is invoked after a duplicate is enqueued, so the receiving
//     cluster's quiescence wait notices the extra arrival.
//
// Any hook may be nil.
type FaultHooks struct {
	Created func(level uint16)
	Dropped func(level uint16)
	Wake    func(cluster int)
}

// SetFaultInjector arms deterministic per-message fault injection on
// every send path (nil disarms). It must be called before traffic
// flows; the injector is read without synchronization on the hot path.
func (n *Network) SetFaultInjector(inj *fault.Injector, hooks FaultHooks) {
	n.inj = inj
	n.hooks = hooks
}

// FaultStats reports messages dropped, duplicated, and delayed by the
// armed injector since construction.
func (n *Network) FaultStats() (dropped, dupped, delayed int64) {
	return n.dropped.Load(), n.dupped.Load(), n.delayed.Load()
}

// applyFaults draws this message's fault decisions. drop means the
// message is lost in transit (the caller pretends the port transfer
// succeeded); dup means a duplicate copy must also be enqueued — its
// barrier Created has already been announced.
func (n *Network) applyFaults(m *Message) (drop, dup bool) {
	if n.inj.DropICN() {
		n.dropped.Add(1)
		if n.hooks.Dropped != nil {
			n.hooks.Dropped(m.Level)
		}
		return true, false
	}
	if d, ok := n.inj.DelayICN(); ok {
		n.delayed.Add(1)
		m.SendTime += timing.Time(d)
	}
	if n.inj.DupICN() {
		if n.hooks.Created != nil {
			n.hooks.Created(m.Level)
		}
		return false, true
	}
	return false, false
}

// cancelDup retires a duplicate that was announced (Created) but could
// not be enqueued: it dies in the port buffer like a drop.
func (n *Network) cancelDup(level uint16) {
	n.dropped.Add(1)
	if n.hooks.Dropped != nil {
		n.hooks.Dropped(level)
	}
}

// sendFaulty is the injection-armed variant of Send/Forward/TrySend/
// TryForward. block selects Put vs TryPut; forward selects which
// traffic counter the transfer lands in.
func (n *Network) sendFaulty(at int, m Message, forward, block bool) bool {
	drop, dup := n.applyFaults(&m)
	count := func() {
		if forward {
			n.forwarded.Add(1)
		} else {
			n.sent.Add(1)
		}
		n.hopTotal.Add(1)
	}
	if drop {
		// Lost in transit: the sender's port transfer completed, so it
		// proceeds as if delivered.
		count()
		return true
	}
	next := n.NextHop(at, int(m.DestCluster))
	m.Hops++
	ok := false
	if block {
		ok = n.mailbox[next].Put(m)
	} else {
		ok = n.mailbox[next].TryPut(m)
	}
	if !ok {
		if dup {
			n.cancelDup(m.Level)
		}
		return false
	}
	count()
	if dup {
		if n.mailbox[next].TryPut(m) {
			n.dupped.Add(1)
			count()
			if n.hooks.Wake != nil {
				n.hooks.Wake(next)
			}
		} else {
			n.cancelDup(m.Level)
		}
	}
	return true
}
