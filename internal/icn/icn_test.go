package icn

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDigits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 1, 5: 2, 16: 2, 17: 3, 32: 3, 64: 3}
	for n, want := range cases {
		if got := Digits(n); got != want {
			t.Errorf("Digits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHops32Clusters(t *testing.T) {
	n := New(32, 8)
	if got := n.Hops(0, 0); got != 0 {
		t.Errorf("self hops = %d", got)
	}
	// Clusters differing in exactly one base-4 digit are one hop apart.
	if got := n.Hops(0, 3); got != 1 { // L digit
		t.Errorf("L-neighbour hops = %d", got)
	}
	if got := n.Hops(0, 12); got != 1 { // X digit (12 = 3<<2)
		t.Errorf("X-neighbour hops = %d", got)
	}
	if got := n.Hops(0, 16); got != 1 { // Y digit
		t.Errorf("Y-neighbour hops = %d", got)
	}
	// Paper: "32 clusters can be accommodated with at most three
	// intermediate hops".
	for from := 0; from < 32; from++ {
		for to := 0; to < 32; to++ {
			if h := n.Hops(from, to); h > 3 {
				t.Fatalf("hops(%d,%d) = %d > 3", from, to, h)
			}
		}
	}
}

func TestRouteCorrectsOneDigitPerHop(t *testing.T) {
	n := New(32, 8)
	for from := 0; from < 32; from++ {
		for to := 0; to < 32; to++ {
			route := n.Route(from, to)
			if len(route) != n.Hops(from, to) {
				t.Fatalf("route %d->%d length %d, hops %d", from, to, len(route), n.Hops(from, to))
			}
			at := from
			for _, next := range route {
				if n.Hops(at, next) != 1 {
					t.Fatalf("route %d->%d jumps %d->%d", from, to, at, next)
				}
				at = next
			}
			if at != to {
				t.Fatalf("route %d->%d ends at %d", from, to, at)
			}
		}
	}
}

func TestNextHopReducesDistanceQuick(t *testing.T) {
	n := New(32, 8)
	f := func(from, to uint8) bool {
		f32, t32 := int(from%32), int(to%32)
		if f32 == t32 {
			return n.NextHop(f32, t32) == t32
		}
		next := n.NextHop(f32, t32)
		return n.Hops(next, t32) == n.Hops(f32, t32)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionNames(t *testing.T) {
	for digit, want := range []string{"L", "X", "Y", "D3"} {
		if got := DimensionName(digit); got != want {
			t.Errorf("DimensionName(%d) = %q", digit, got)
		}
	}
}

func TestSendRecvAndStats(t *testing.T) {
	n := New(4, 8) // single digit: all clusters adjacent
	msg := Message{Dest: 7, DestCluster: 2, Marker: 5, Value: 1.5, Level: 3}
	if !n.Send(0, msg) {
		t.Fatal("Send failed")
	}
	got, ok := n.Recv(2)
	if !ok || got.Dest != 7 || got.Marker != 5 || got.Hops != 1 {
		t.Fatalf("Recv = %+v, %v", got, ok)
	}
	sent, fwd, hops := n.Stats()
	if sent != 1 || fwd != 0 || hops != 1 {
		t.Fatalf("stats = %d,%d,%d", sent, fwd, hops)
	}
	n.ResetStats()
	if s, _, _ := n.Stats(); s != 0 {
		t.Fatal("ResetStats")
	}
}

func TestMultiHopRelay(t *testing.T) {
	n := New(32, 8)
	// 0 -> 31 differs in three digits; relay manually like the CUs do.
	msg := Message{DestCluster: 31}
	if !n.Send(0, msg) {
		t.Fatal("send")
	}
	at := n.NextHop(0, 31)
	for hops := 1; ; hops++ {
		m, ok := n.TryRecv(at)
		if !ok {
			t.Fatalf("no message at cluster %d", at)
		}
		if int(m.DestCluster) == at {
			if hops != 3 || m.Hops != 3 {
				t.Fatalf("delivered after %d hops (msg says %d), want 3", hops, m.Hops)
			}
			break
		}
		next := n.NextHop(at, int(m.DestCluster))
		if !n.Forward(at, m) {
			t.Fatal("forward")
		}
		at = next
	}
	_, fwd, hops := n.Stats()
	if fwd != 2 || hops != 3 {
		t.Fatalf("fwd=%d hops=%d", fwd, hops)
	}
}

func TestTrySendBackpressure(t *testing.T) {
	n := New(2, 1)
	m := Message{DestCluster: 1}
	if !n.TrySend(0, m) {
		t.Fatal("first TrySend")
	}
	if n.TrySend(0, m) {
		t.Fatal("TrySend into a full mailbox must fail")
	}
	sent, _, hops := n.Stats()
	if sent != 1 || hops != 1 {
		t.Fatal("failed TrySend must not count")
	}
	if _, ok := n.TryRecv(1); !ok {
		t.Fatal("drain")
	}
	if !n.TryForward(0, m) {
		t.Fatal("TryForward after drain")
	}
}

func TestCloseUnblocks(t *testing.T) {
	n := New(2, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := n.Recv(0); ok {
			t.Error("Recv must fail after Close")
		}
	}()
	n.Close()
	wg.Wait()
}

func TestPending(t *testing.T) {
	n := New(4, 8)
	n.Send(0, Message{DestCluster: 1})
	n.Send(0, Message{DestCluster: 1})
	if n.Pending(1) != 2 {
		t.Fatalf("Pending = %d", n.Pending(1))
	}
}
