package icn

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"snap1/internal/semnet"
)

func TestDigits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 1, 5: 2, 16: 2, 17: 3, 32: 3, 64: 3}
	for n, want := range cases {
		if got := Digits(n); got != want {
			t.Errorf("Digits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHops32Clusters(t *testing.T) {
	n := New(32, 8)
	if got := n.Hops(0, 0); got != 0 {
		t.Errorf("self hops = %d", got)
	}
	// Clusters differing in exactly one base-4 digit are one hop apart.
	if got := n.Hops(0, 3); got != 1 { // L digit
		t.Errorf("L-neighbour hops = %d", got)
	}
	if got := n.Hops(0, 12); got != 1 { // X digit (12 = 3<<2)
		t.Errorf("X-neighbour hops = %d", got)
	}
	if got := n.Hops(0, 16); got != 1 { // Y digit
		t.Errorf("Y-neighbour hops = %d", got)
	}
	// Paper: "32 clusters can be accommodated with at most three
	// intermediate hops".
	for from := 0; from < 32; from++ {
		for to := 0; to < 32; to++ {
			if h := n.Hops(from, to); h > 3 {
				t.Fatalf("hops(%d,%d) = %d > 3", from, to, h)
			}
		}
	}
}

func TestRouteCorrectsOneDigitPerHop(t *testing.T) {
	n := New(32, 8)
	for from := 0; from < 32; from++ {
		for to := 0; to < 32; to++ {
			route := n.Route(from, to)
			if len(route) != n.Hops(from, to) {
				t.Fatalf("route %d->%d length %d, hops %d", from, to, len(route), n.Hops(from, to))
			}
			at := from
			for _, next := range route {
				if n.Hops(at, next) != 1 {
					t.Fatalf("route %d->%d jumps %d->%d", from, to, at, next)
				}
				at = next
			}
			if at != to {
				t.Fatalf("route %d->%d ends at %d", from, to, at)
			}
		}
	}
}

func TestNextHopReducesDistanceQuick(t *testing.T) {
	n := New(32, 8)
	f := func(from, to uint8) bool {
		f32, t32 := int(from%32), int(to%32)
		if f32 == t32 {
			return n.NextHop(f32, t32) == t32
		}
		next := n.NextHop(f32, t32)
		return n.Hops(next, t32) == n.Hops(f32, t32)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimensionNames(t *testing.T) {
	for digit, want := range []string{"L", "X", "Y", "D3"} {
		if got := DimensionName(digit); got != want {
			t.Errorf("DimensionName(%d) = %q", digit, got)
		}
	}
}

func TestSendRecvAndStats(t *testing.T) {
	n := New(4, 8) // single digit: all clusters adjacent
	msg := Message{Dest: 7, DestCluster: 2, Marker: 5, Value: 1.5, Level: 3}
	if !n.Send(0, msg) {
		t.Fatal("Send failed")
	}
	got, ok := n.Recv(2)
	if !ok || got.Dest != 7 || got.Marker != 5 || got.Hops != 1 {
		t.Fatalf("Recv = %+v, %v", got, ok)
	}
	sent, fwd, hops := n.Stats()
	if sent != 1 || fwd != 0 || hops != 1 {
		t.Fatalf("stats = %d,%d,%d", sent, fwd, hops)
	}
	n.ResetStats()
	if s, _, _ := n.Stats(); s != 0 {
		t.Fatal("ResetStats")
	}
}

func TestMultiHopRelay(t *testing.T) {
	n := New(32, 8)
	// 0 -> 31 differs in three digits; relay manually like the CUs do.
	msg := Message{DestCluster: 31}
	if !n.Send(0, msg) {
		t.Fatal("send")
	}
	at := n.NextHop(0, 31)
	for hops := 1; ; hops++ {
		m, ok := n.TryRecv(at)
		if !ok {
			t.Fatalf("no message at cluster %d", at)
		}
		if int(m.DestCluster) == at {
			if hops != 3 || m.Hops != 3 {
				t.Fatalf("delivered after %d hops (msg says %d), want 3", hops, m.Hops)
			}
			break
		}
		next := n.NextHop(at, int(m.DestCluster))
		if !n.Forward(at, m) {
			t.Fatal("forward")
		}
		at = next
	}
	_, fwd, hops := n.Stats()
	if fwd != 2 || hops != 3 {
		t.Fatalf("fwd=%d hops=%d", fwd, hops)
	}
}

func TestTrySendBackpressure(t *testing.T) {
	n := New(2, 1)
	m := Message{DestCluster: 1}
	if !n.TrySend(0, m) {
		t.Fatal("first TrySend")
	}
	if n.TrySend(0, m) {
		t.Fatal("TrySend into a full mailbox must fail")
	}
	sent, _, hops := n.Stats()
	if sent != 1 || hops != 1 {
		t.Fatal("failed TrySend must not count")
	}
	if _, ok := n.TryRecv(1); !ok {
		t.Fatal("drain")
	}
	if !n.TryForward(0, m) {
		t.Fatal("TryForward after drain")
	}
}

func TestCloseUnblocks(t *testing.T) {
	n := New(2, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := n.Recv(0); ok {
			t.Error("Recv must fail after Close")
		}
	}()
	n.Close()
	wg.Wait()
}

func TestPending(t *testing.T) {
	n := New(4, 8)
	n.Send(0, Message{DestCluster: 1})
	n.Send(0, Message{DestCluster: 1})
	if n.Pending(1) != 2 {
		t.Fatalf("Pending = %d", n.Pending(1))
	}
}

func TestBatchSendRecvSingleHop(t *testing.T) {
	n := New(4, 8) // single digit: every cluster is one hop away
	msgs := make([]Message, 5)
	for i := range msgs {
		msgs[i] = Message{Dest: semnet.NodeID(i), DestCluster: 2, Marker: 1}
	}
	if sent := n.TrySendBatch(0, msgs); sent != 5 {
		t.Fatalf("TrySendBatch = %d, want 5", sent)
	}
	buf := make([]Message, 8)
	got := n.TryRecvBatch(2, buf)
	if got != 5 {
		t.Fatalf("TryRecvBatch = %d, want 5", got)
	}
	for i := 0; i < got; i++ {
		if buf[i].Dest != semnet.NodeID(i) || buf[i].Hops != 1 {
			t.Fatalf("message %d = %+v", i, buf[i])
		}
	}
	sent, fwd, hops := n.Stats()
	if sent != 5 || fwd != 0 || hops != 5 {
		t.Fatalf("stats = %d,%d,%d", sent, fwd, hops)
	}
	if n.TryRecvBatch(2, buf) != 0 {
		t.Fatal("drained mailbox must report 0")
	}
}

func TestBatchSendGroupsByNextHop(t *testing.T) {
	n := New(32, 8)
	// Destinations 1 and 2 differ from 0 in the L digit only (distinct
	// next hops); 16 differs in the Y digit. Consecutive runs with the
	// same next hop must land as one put each.
	msgs := []Message{
		{DestCluster: 1}, {DestCluster: 1}, // next hop 1
		{DestCluster: 2},                   // next hop 2
		{DestCluster: 16}, {DestCluster: 16}, // next hop 16
	}
	if sent := n.TrySendBatch(0, msgs); sent != 5 {
		t.Fatalf("TrySendBatch = %d, want 5", sent)
	}
	if n.Pending(1) != 2 || n.Pending(2) != 1 || n.Pending(16) != 2 {
		t.Fatalf("pending = %d,%d,%d", n.Pending(1), n.Pending(2), n.Pending(16))
	}
	buf := make([]Message, 4)
	if got := n.TryRecvBatch(16, buf); got != 2 || buf[0].Hops != 1 {
		t.Fatalf("recv at 16 = %d (%+v)", got, buf[0])
	}
}

func TestBatchSendBackpressureRestoresHops(t *testing.T) {
	n := New(2, 2)
	msgs := []Message{{DestCluster: 1}, {DestCluster: 1}, {DestCluster: 1}, {DestCluster: 1}}
	if sent := n.TrySendBatch(0, msgs); sent != 2 {
		t.Fatalf("TrySendBatch into capacity-2 mailbox sent %d", sent)
	}
	// The unaccepted suffix must be untouched so the caller can retry it.
	if msgs[2].Hops != 0 || msgs[3].Hops != 0 {
		t.Fatalf("unsent messages mutated: %+v %+v", msgs[2], msgs[3])
	}
	sent, _, hops := n.Stats()
	if sent != 2 || hops != 2 {
		t.Fatalf("stats count unsent messages: sent=%d hops=%d", sent, hops)
	}
	buf := make([]Message, 4)
	if n.TryRecvBatch(1, buf) != 2 {
		t.Fatal("drain")
	}
	if got := n.TrySendBatch(0, msgs[2:]); got != 2 {
		t.Fatalf("retry sent %d", got)
	}
}

func TestBatchEquivalentToSingleSends(t *testing.T) {
	// Property: a batch send is observationally equivalent to the same
	// sequence of TrySend calls — same mailbox contents, same stats.
	a, b := New(32, 64), New(32, 64)
	rng := rand.New(rand.NewSource(42))
	msgs := make([]Message, 40)
	for i := range msgs {
		msgs[i] = Message{Dest: semnet.NodeID(i), DestCluster: uint8(rng.Intn(32))}
	}
	batch := append([]Message(nil), msgs...)
	if sent := a.TrySendBatch(5, batch); sent != len(msgs) {
		t.Fatalf("batch sent %d", sent)
	}
	for _, m := range msgs {
		if !b.TrySend(5, m) {
			t.Fatal("single send")
		}
	}
	as, af, ah := a.Stats()
	bs, bf, bh := b.Stats()
	if as != bs || af != bf || ah != bh {
		t.Fatalf("stats diverge: batch %d,%d,%d vs single %d,%d,%d", as, af, ah, bs, bf, bh)
	}
	buf1 := make([]Message, 64)
	buf2 := make([]Message, 64)
	for c := 0; c < 32; c++ {
		n1 := a.TryRecvBatch(c, buf1)
		n2 := b.TryRecvBatch(c, buf2)
		if n1 != n2 {
			t.Fatalf("cluster %d: %d vs %d messages", c, n1, n2)
		}
		for i := 0; i < n1; i++ {
			if buf1[i] != buf2[i] {
				t.Fatalf("cluster %d msg %d: %+v vs %+v", c, i, buf1[i], buf2[i])
			}
		}
	}
}
