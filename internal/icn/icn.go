// Package icn implements SNAP-1's 4-ary hypercube interconnection
// network: a spanning-bus hypercube whose buses are replaced by four-port
// memories (the board-local L memory and the off-board X and Y memories).
//
// Cluster addresses are split into base-4 digits; clusters that differ in
// exactly one digit share a four-port memory and exchange messages in one
// 80 ns port-to-port transfer. Routing corrects one digit per hop, so an
// N-cluster array needs at most ⌈log₄N⌉ hops (three for 32 clusters).
// Messages are fixed-size marker activations; propagation rules live in
// the pre-downloaded microcode table, so a message carries only a
// single-byte rule token.
package icn

import (
	"fmt"
	"sync/atomic"

	"snap1/internal/fault"
	"snap1/internal/mpmem"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
)

// Message is one 64-bit marker activation message (Section III-B: "The
// length of the message is 64 b and includes the marker, value, function,
// destination address, first origin address, and propagation rule").
// SendTime and Level are simulation bookkeeping: the virtual timestamp for
// the receive-time rule and the propagation tier for the tiered
// synchronization protocol.
type Message struct {
	Marker semnet.MarkerID
	Value  float32
	Fn     semnet.FuncCode
	Dest   semnet.NodeID // destination node (global ID)
	Origin semnet.NodeID // first origin address, for binding
	Rule   rules.Token
	State  rules.State

	DestCluster uint8
	Level       uint16      // propagation tier (termination protocol)
	Hops        uint8       // accumulated hops so far
	SendTime    timing.Time // virtual time the message entered the ICN
}

// Digits reports the number of base-4 address digits needed for n
// clusters (the hypercube dimension count).
func Digits(n int) int {
	d := 0
	for c := 1; c < n; c *= 4 {
		d++
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Topology is the spanning-bus hypercube's routing arithmetic as a
// standalone value: cluster count, base-4 address digits, next-hop and
// hop-count computation. It carries no buffers or statistics, so layers
// that only need to COST routes — the partition placement stage, the
// benchmark harness — can share the exact arithmetic the live Network
// routes with, without constructing mailboxes.
type Topology struct {
	clusters int
	digits   int
}

// NewTopology returns the routing arithmetic for an n-cluster array.
func NewTopology(n int) Topology {
	if n <= 0 {
		panic("icn: need at least one cluster")
	}
	return Topology{clusters: n, digits: Digits(n)}
}

// Clusters reports the cluster count.
func (t Topology) Clusters() int { return t.clusters }

// NextHop reports the neighbouring cluster one digit-correction closer to
// dest (lowest differing digit first), or dest itself when adjacent.
// When the array does not fill its hypercube (a cluster count that is not
// a power of four), a correction that would land on a nonexistent cluster
// falls through to direct delivery, modeling the incomplete backplane's
// extra wiring.
func (t Topology) NextHop(from, dest int) int {
	for d := 0; d < t.digits; d++ {
		shift := uint(2 * d)
		if (from>>shift)&3 != (dest>>shift)&3 {
			next := from&^(3<<shift) | dest&(3<<shift)
			if next >= t.clusters {
				return dest
			}
			return next
		}
	}
	return dest
}

// Hops reports the number of port-to-port transfers between two clusters
// along the route NextHop takes: the count of differing base-4 address
// digits, except where the incomplete-array fallback shortens the path.
func (t Topology) Hops(from, to int) int {
	h := 0
	for at := from; at != to; at = t.NextHop(at, to) {
		h++
	}
	return h
}

// Route returns the full hop sequence from -> ... -> dest (excluding from,
// including dest). The empty route means from == dest.
func (t Topology) Route(from, dest int) []int {
	var route []int
	for at := from; at != dest; {
		at = t.NextHop(at, dest)
		route = append(route, at)
	}
	return route
}

// Network is the array-wide interconnect: one inbound mailbox region per
// cluster plus routing arithmetic and traffic statistics.
type Network struct {
	Topology
	mailbox []*mpmem.Queue[Message]

	sent      atomic.Int64 // end-to-end messages injected
	forwarded atomic.Int64 // intermediate relays
	hopTotal  atomic.Int64 // total port-to-port transfers

	// Fault injection (see fault.go); inj nil = no faults, zero cost.
	inj     *fault.Injector
	hooks   FaultHooks
	dropped atomic.Int64
	dupped  atomic.Int64
	delayed atomic.Int64
}

// New returns a network for the given cluster count; each cluster's
// mailbox region buffers up to mailboxCap messages (senders block beyond
// that, modeling the bounded four-port buffering).
func New(clusters, mailboxCap int) *Network {
	if clusters <= 0 {
		panic("icn: need at least one cluster")
	}
	n := &Network{
		Topology: NewTopology(clusters),
		mailbox:  make([]*mpmem.Queue[Message], clusters),
	}
	for i := range n.mailbox {
		n.mailbox[i] = mpmem.NewQueue[Message](mailboxCap)
	}
	return n
}

// Dimension names for diagnostics: digit 0 is the board-local L memory,
// digits 1 and 2 are the off-board X and Y memories.
func DimensionName(digit int) string {
	switch digit {
	case 0:
		return "L"
	case 1:
		return "X"
	case 2:
		return "Y"
	default:
		return fmt.Sprintf("D%d", digit)
	}
}

// Send injects a new message at cluster from, enqueueing it in the
// next-hop cluster's mailbox. It blocks if that mailbox region is full and
// reports false only if the network has been shut down.
func (n *Network) Send(from int, m Message) bool {
	if n.inj != nil {
		return n.sendFaulty(from, m, false, true)
	}
	next := n.NextHop(from, int(m.DestCluster))
	m.Hops++
	n.sent.Add(1)
	n.hopTotal.Add(1)
	return n.mailbox[next].Put(m)
}

// Forward relays a transit message from an intermediate cluster toward its
// destination (the CU disassembles and relays incoming transit messages).
func (n *Network) Forward(at int, m Message) bool {
	if n.inj != nil {
		return n.sendFaulty(at, m, true, true)
	}
	next := n.NextHop(at, int(m.DestCluster))
	m.Hops++
	n.forwarded.Add(1)
	n.hopTotal.Add(1)
	return n.mailbox[next].Put(m)
}

// TrySend is Send without blocking: it reports false (with no state
// change) when the next-hop mailbox region is full, letting the sender
// service its own mailbox instead of deadlocking on mutually full buffers.
func (n *Network) TrySend(from int, m Message) bool {
	if n.inj != nil {
		return n.sendFaulty(from, m, false, false)
	}
	next := n.NextHop(from, int(m.DestCluster))
	m.Hops++
	if !n.mailbox[next].TryPut(m) {
		return false
	}
	n.sent.Add(1)
	n.hopTotal.Add(1)
	return true
}

// TryForward is Forward without blocking, with the same contract as
// TrySend.
func (n *Network) TryForward(at int, m Message) bool {
	if n.inj != nil {
		return n.sendFaulty(at, m, true, false)
	}
	next := n.NextHop(at, int(m.DestCluster))
	m.Hops++
	if !n.mailbox[next].TryPut(m) {
		return false
	}
	n.forwarded.Add(1)
	n.hopTotal.Add(1)
	return true
}

// Recv blocks for the next message addressed to (or transiting) cluster c.
func (n *Network) Recv(c int) (Message, bool) { return n.mailbox[c].Get() }

// TryRecv polls cluster c's mailbox without blocking.
func (n *Network) TryRecv(c int) (Message, bool) { return n.mailbox[c].TryGet() }

// TryRecvBatch drains up to len(buf) messages from cluster c's mailbox
// region in one arbiter grant and reports how many were received. The
// four-port memory serves a whole burst per grant; the per-message
// virtual-time accounting stays with the caller, which processes each
// drained message individually.
func (n *Network) TryRecvBatch(c int, buf []Message) int {
	return n.mailbox[c].TryGetBatch(buf)
}

// TrySendBatch injects the longest deliverable prefix of msgs at cluster
// from, grouping consecutive messages that share a next-hop mailbox into
// one enqueue grant, and reports how many messages were consumed. It
// stops (with no state change for the remainder) at the first message
// whose next-hop region is full, so the caller can service its own
// mailbox and retry — the same non-blocking contract as TrySend. All
// messages are new injections (they count toward the sent statistic).
func (n *Network) TrySendBatch(from int, msgs []Message) int {
	if n.inj != nil {
		// Per-message decisions are required under injection; the
		// burst-grant fast path would skip them.
		sent := 0
		for sent < len(msgs) {
			if !n.sendFaulty(from, msgs[sent], false, false) {
				break
			}
			sent++
		}
		return sent
	}
	sent := 0
	for sent < len(msgs) {
		next := n.NextHop(from, int(msgs[sent].DestCluster))
		run := sent + 1
		for run < len(msgs) && n.NextHop(from, int(msgs[run].DestCluster)) == next {
			run++
		}
		for i := sent; i < run; i++ {
			msgs[i].Hops++
		}
		k := n.mailbox[next].TryPutBatch(msgs[sent:run])
		for i := sent + k; i < run; i++ {
			msgs[i].Hops-- // not accepted: restore
		}
		if k > 0 {
			n.sent.Add(int64(k))
			n.hopTotal.Add(int64(k))
			sent += k
		}
		if sent < run {
			break // next-hop region full
		}
	}
	return sent
}

// Pending reports the queue depth at cluster c's mailbox.
func (n *Network) Pending(c int) int { return n.mailbox[c].Len() }

// Close shuts down every mailbox, releasing blocked senders and receivers.
func (n *Network) Close() {
	for _, q := range n.mailbox {
		q.Close()
	}
}

// Stats reports injected messages, intermediate relays, and total
// port-to-port transfers since construction.
func (n *Network) Stats() (sent, forwarded, hops int64) {
	return n.sent.Load(), n.forwarded.Load(), n.hopTotal.Load()
}

// ResetStats zeroes the traffic counters (between experiment phases).
func (n *Network) ResetStats() {
	n.sent.Store(0)
	n.forwarded.Store(0)
	n.hopTotal.Store(0)
}
