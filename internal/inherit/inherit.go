// Package inherit implements the basic inferencing operations the paper
// benchmarks in Fig. 15: inheritance of attributes from concepts in the
// knowledge-base hierarchy (root-to-leaf propagation) and concept
// classification by constraint intersection.
package inherit

import (
	"fmt"

	"snap1/internal/isa"
	"snap1/internal/kbgen"
	"snap1/internal/machine"
	"snap1/internal/rules"
	"snap1/internal/semnet"
	"snap1/internal/timing"
	"snap1/internal/trace"
)

// Marker allocation for the inference programs.
const (
	mSrc  = semnet.MarkerID(0) // activation at the property source
	mInh  = semnet.MarkerID(1) // inherited-property marker (path cost)
	mLeaf = semnet.MarkerID(2) // inherited property at leaf concepts
)

var (
	bLeaf = semnet.Binary(0)
	bTmp  = semnet.Binary(1)
	bAll  = semnet.Binary(2)
)

// Result reports one inference run.
type Result struct {
	Time      timing.Time
	Reached   int // concepts that inherited the property
	Leaves    int // leaf concepts that inherited it
	MaxDepth  int
	Collected []machine.Item
	Profile   *trace.Profile
}

// Inheritance runs root-to-leaf property inheritance: the root concept's
// property spreads down every subsumes chain, accumulating link weights as
// the inheritance distance, and the leaf-level results are retrieved.
func Inheritance(m *machine.Machine, g *kbgen.Generated) (*Result, error) {
	p := isa.NewProgram()
	p.ClearM(mSrc)
	p.ClearM(mInh)
	p.ClearM(mLeaf)
	p.ClearM(bLeaf)
	p.SearchNode(g.HierRoot, mSrc, 0)
	p.Propagate(mSrc, mInh, rules.Path(g.Rel.Subsumes), semnet.FuncAdd)
	p.SearchColor(g.Col.Leaf, bLeaf, 0)
	p.And(mInh, bLeaf, mLeaf, semnet.FuncMax)
	p.CollectNode(mLeaf)

	res, err := m.Run(p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Time:      res.Time,
		Reached:   m.MarkerCount(mInh),
		Leaves:    len(res.Collected(0)),
		MaxDepth:  res.Profile.PropMaxDepth,
		Collected: res.Collected(0),
		Profile:   res.Profile,
	}, nil
}

// Classification finds the concepts subsumed by every one of the given
// property classes: each property spreads downward under its own marker
// and a global AND intersects them (the paper's concept classification
// application [6]).
func Classification(m *machine.Machine, g *kbgen.Generated, props []semnet.NodeID) (*Result, error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("inherit: classification needs at least one property")
	}
	if len(props) > 16 {
		return nil, fmt.Errorf("inherit: at most 16 properties, got %d", len(props))
	}
	p := isa.NewProgram()
	for i := range props {
		p.ClearM(semnet.MarkerID(8 + 2*i))
		p.ClearM(semnet.MarkerID(8 + 2*i + 1))
	}
	p.ClearM(bAll)
	p.ClearM(bTmp)

	// Independent downward spreads: one marker pair per property
	// (β-overlappable).
	down := rules.Path(g.Rel.Subsumes)
	for i, prop := range props {
		src := semnet.MarkerID(8 + 2*i)
		dst := semnet.MarkerID(8 + 2*i + 1)
		p.SearchNode(prop, src, 0)
		p.Propagate(src, dst, down, semnet.FuncAdd)
	}

	// Intersection: concepts under every property.
	first := semnet.MarkerID(8 + 1)
	p.And(first, first, bAll, semnet.FuncNop)
	for i := 1; i < len(props); i++ {
		p.And(bAll, semnet.MarkerID(8+2*i+1), bAll, semnet.FuncNop)
	}
	p.CollectNode(bAll)

	res, err := m.Run(p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Time:      res.Time,
		Reached:   len(res.Collected(0)),
		MaxDepth:  res.Profile.PropMaxDepth,
		Collected: res.Collected(0),
		Profile:   res.Profile,
	}, nil
}
